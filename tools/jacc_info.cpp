// jacc_info: prints the configured backend, the preference-resolution
// chain, and the device-model table — the "what am I running on?" CLI.
#include <cstdio>
#include <string>

#include "core/auto_backend.hpp"
#include "core/jacc.hpp"
#include "support/env.hpp"

int main() {
  jacc::initialize();
  std::printf("JACC-CXX backend resolution\n");
  if (const auto env = jaccx::get_env("JACC_BACKEND")) {
    std::printf("  JACC_BACKEND          : %s (wins)\n", env->c_str());
  } else {
    std::printf("  JACC_BACKEND          : (unset)\n");
  }
  if (const auto p = jaccx::get_env("JACC_PREFERENCES_FILE")) {
    std::printf("  JACC_PREFERENCES_FILE : %s\n", p->c_str());
  } else {
    std::printf("  JACC_PREFERENCES_FILE : (unset; ./LocalPreferences.toml)\n");
  }
  std::printf("  resolved backend      : %s\n\n",
              std::string(jacc::to_string(jacc::current_backend())).c_str());

  std::printf("%-9s %-5s %6s %9s %9s %9s %8s %8s\n", "model", "kind",
              "units", "dram GB/s", "cache MiB", "flop GF/s", "launch",
              "xfer lat");
  for (const auto& name : jaccx::sim::builtin_model_names()) {
    const auto& m = jaccx::sim::builtin_model(name);
    std::printf("%-9s %-5s %6d %9.0f %9zu %9.0f %6.1fus %6.1fus\n",
                m.name.c_str(),
                m.kind == jaccx::sim::device_kind::cpu ? "cpu" : "gpu",
                m.parallel_units, m.dram_bw_gbps, m.cache_bytes >> 20,
                m.flops_gflops, m.launch_overhead_us, m.xfer_latency_us);
  }

  std::printf("\ntransparent selection on an MI100 node (sKokkos-style):\n");
  const auto show = [](const char* what, const jacc::workload& w) {
    std::printf("  %-34s -> %s\n", what,
                std::string(jacc::to_string(jacc::auto_select_node(
                                jacc::backend::hip_mi100, w)))
                    .c_str());
  };
  show("DOT, 4K elements",
       {.indices = 4096, .bytes_per_index = 16, .flops_per_index = 2,
        .is_reduce = true});
  show("DOT, 4M elements",
       {.indices = 1 << 22, .bytes_per_index = 16, .flops_per_index = 2,
        .is_reduce = true});
  show("AXPY, 4M elements",
       {.indices = 1 << 22, .bytes_per_index = 16, .flops_per_index = 2});
  return 0;
}
