// jacc_info: prints the configured backend, the preference-resolution
// chain, the resolved runtime tuning state, and the device-model table —
// the "what am I running on?" CLI.
#include <cstdio>
#include <string>
#include <thread>

#include "core/auto_backend.hpp"
#include "core/jacc.hpp"
#include "mem/pool.hpp"
#include "prof/prof.hpp"
#include "sim/device_model.hpp"
#include "support/env.hpp"
#include "threadpool/thread_pool.hpp"

namespace {

/// Prints one env var plus the value the runtime resolves from it, without
/// instantiating the pool or profiler (inspection must not change state).
void print_tuning(const char* var, const std::string& resolved) {
  if (const auto v = jaccx::get_env(var)) {
    std::printf("  %-17s : %-14s -> %s\n", var, v->c_str(),
                resolved.c_str());
  } else {
    std::printf("  %-17s : %-14s -> %s\n", var, "(unset)", resolved.c_str());
  }
}

void print_runtime_tuning() {
  std::printf("runtime tuning\n");

  unsigned width = std::thread::hardware_concurrency();
  if (width == 0) {
    width = 1;
  }
  if (const auto n = jaccx::get_env_long("JACC_NUM_THREADS"); n && *n > 0) {
    width = static_cast<unsigned>(*n);
  }
  print_tuning("JACC_NUM_THREADS",
               "pool width " + std::to_string(width) +
                   (jaccx::get_env_long("JACC_NUM_THREADS")
                        ? ""
                        : " (hardware concurrency)"));

  const unsigned cores = std::thread::hardware_concurrency();
  long spin = (cores != 0 && width > cores) ? 0 : 50;
  if (const auto us = jaccx::get_env_long("JACC_SPIN_US"); us && *us >= 0) {
    spin = *us;
  }
  print_tuning("JACC_SPIN_US", "spin " + std::to_string(spin) +
                                   " us before futex park");

  std::string sched = "static (default)";
  if (const auto spec = jaccx::get_env("JACC_SCHEDULE")) {
    if (const auto s = jaccx::pool::parse_schedule(*spec)) {
      sched = s->kind == jaccx::pool::schedule_kind::static_chunks
                  ? "static"
                  : (s->grain > 0
                         ? "dynamic, grain " + std::to_string(s->grain)
                         : "dynamic, auto grain");
    } else {
      sched = "unparseable; static";
    }
  }
  print_tuning("JACC_SCHEDULE", sched);

  std::string prof = "off";
  if (const auto spec = jaccx::get_env("JACC_PROFILE")) {
    if (const auto bits = jaccx::prof::parse_mode_spec(*spec)) {
      prof.clear();
      if ((*bits & jaccx::prof::mode_summary) != 0) {
        prof = "summary";
      }
      if ((*bits & jaccx::prof::mode_trace) != 0) {
        prof += prof.empty() ? "trace" : "+trace";
      }
      if ((*bits & jaccx::prof::mode_roofline) != 0) {
        prof += prof.empty() ? "roofline" : "+roofline";
      }
      if (prof.empty()) {
        prof = (*bits & jaccx::prof::mode_collect) != 0 ? "collect" : "off";
      }
    } else {
      prof = "unparseable; off";
    }
  }
  print_tuning("JACC_PROFILE", prof);

  const auto trace = jaccx::get_env("JACC_TRACE_FILE");
  print_tuning("JACC_TRACE_FILE",
               trace ? *trace : std::string("jacc_trace.json when tracing"));

  // initialize() already installed the env+TOML resolution, so mode() is
  // the authoritative answer here.
  std::string pool = std::string(jaccx::mem::to_string(jaccx::mem::mode()));
  if (pool == "bucket") {
    pool += " (caching allocator + persistent reduce workspaces)";
  } else {
    pool += " (seed-fidelity passthrough)";
  }
  print_tuning("JACC_MEM_POOL", pool);

  // Resolve the lane policy from the same width the pool would use, without
  // instantiating the pool or the lane threads.
  const int lanes = jacc::resolve_queue_lanes(width);
  std::string qcfg = std::to_string(lanes) + " async lane(s)";
  if (lanes > 1) {
    qcfg += ", " + std::to_string(width / static_cast<unsigned>(lanes) > 0
                                      ? width / static_cast<unsigned>(lanes)
                                      : 1) +
            " worker(s) each";
  } else {
    qcfg += " (queued work degrades to synchronous)";
  }
  if (!jaccx::get_env_long("JACC_QUEUES")) {
    qcfg += lanes > 1 ? " (width heuristic)" : "";
  }
  print_tuning("JACC_QUEUES", qcfg);
  std::printf("\n");
}

void print_mem_pools() {
  const auto rows = jaccx::mem::stats();
  if (rows.empty()) {
    return;
  }
  std::printf("memory pools (this process)\n");
  std::printf("  %-8s %8s %8s %12s %12s %12s\n", "pool", "hits", "misses",
              "cached KiB", "wspace KiB", "hi-water KiB");
  for (const auto& r : rows) {
    std::printf("  %-8s %8llu %8llu %12.1f %12.1f %12.1f\n", r.label.c_str(),
                static_cast<unsigned long long>(r.hits),
                static_cast<unsigned long long>(r.misses),
                static_cast<double>(r.bytes_cached) / 1024.0,
                static_cast<double>(r.workspace_bytes) / 1024.0,
                static_cast<double>(r.high_water_bytes) / 1024.0);
  }
  std::printf("\n");
}

} // namespace

int main() {
  jacc::initialize();
  std::printf("JACC-CXX backend resolution\n");
  if (const auto env = jaccx::get_env("JACC_BACKEND")) {
    std::printf("  JACC_BACKEND          : %s (wins)\n", env->c_str());
  } else {
    std::printf("  JACC_BACKEND          : (unset)\n");
  }
  if (const auto p = jaccx::get_env("JACC_PREFERENCES_FILE")) {
    std::printf("  JACC_PREFERENCES_FILE : %s\n", p->c_str());
  } else {
    std::printf("  JACC_PREFERENCES_FILE : (unset; ./LocalPreferences.toml)\n");
  }
  std::printf("  resolved backend      : %s\n\n",
              std::string(jacc::to_string(jacc::current_backend())).c_str());

  print_runtime_tuning();
  print_mem_pools();

  std::printf("%-9s %-5s %6s %9s %9s %9s %8s %8s\n", "model", "kind",
              "units", "dram GB/s", "cache MiB", "flop GF/s", "launch",
              "xfer lat");
  for (const auto& name : jaccx::sim::builtin_model_names()) {
    const auto& m = jaccx::sim::builtin_model(name);
    std::printf("%-9s %-5s %6d %9.0f %9zu %9.0f %6.1fus %6.1fus\n",
                m.name.c_str(),
                m.kind == jaccx::sim::device_kind::cpu ? "cpu" : "gpu",
                m.parallel_units, m.dram_bw_gbps, m.cache_bytes >> 20,
                m.flops_gflops, m.launch_overhead_us, m.xfer_latency_us);
  }

  // The same ceilings JACC_PROFILE=roofline places kernels against: sim
  // models via jaccx::sim::model_peak_rates, the host ("serial"/"threads")
  // via JACC_HOST_ROOF or the configured default.  Ridge = GF/s / GB/s, the
  // arithmetic intensity where a kernel stops being memory-bound.
  std::printf("\nroofline ceilings (JACC_PROFILE=roofline)\n");
  std::printf("  %-9s %10s %10s %10s\n", "target", "peak GB/s", "peak GF/s",
              "ridge f/B");
  const auto host = jaccx::prof::host_roof();
  std::printf("  %-9s %10.0f %10.0f %10.2f  (host: serial/threads%s)\n",
              "host", host.gbps, host.gflops,
              host.gbps > 0.0 ? host.gflops / host.gbps : 0.0,
              jaccx::get_env("JACC_HOST_ROOF") ? ", JACC_HOST_ROOF"
                                               : ", configured default");
  for (const auto& name : jaccx::sim::builtin_model_names()) {
    if (const auto peak = jaccx::sim::model_peak_rates(name)) {
      std::printf("  %-9s %10.0f %10.0f %10.2f\n", name.c_str(),
                  peak->dram_gbps, peak->gflops,
                  peak->dram_gbps > 0.0 ? peak->gflops / peak->dram_gbps
                                        : 0.0);
    }
  }

  std::printf("\ntransparent selection on an MI100 node (sKokkos-style):\n");
  const auto show = [](const char* what, const jacc::workload& w) {
    std::printf("  %-34s -> %s\n", what,
                std::string(jacc::to_string(jacc::auto_select_node(
                                jacc::backend::hip_mi100, w)))
                    .c_str());
  };
  show("DOT, 4K elements",
       {.indices = 4096, .bytes_per_index = 16, .flops_per_index = 2,
        .is_reduce = true});
  show("DOT, 4M elements",
       {.indices = 1 << 22, .bytes_per_index = 16, .flops_per_index = 2,
        .is_reduce = true});
  show("AXPY, 4M elements",
       {.indices = 1 << 22, .bytes_per_index = 16, .flops_per_index = 2});
  return 0;
}
