file(REMOVE_RECURSE
  "CMakeFiles/lbm_pulse.dir/lbm_pulse.cpp.o"
  "CMakeFiles/lbm_pulse.dir/lbm_pulse.cpp.o.d"
  "lbm_pulse"
  "lbm_pulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbm_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
