# Empty dependencies file for lbm_pulse.
# This may be replaced when dependencies are built.
