# Empty compiler generated dependencies file for backend_tour.
# This may be replaced when dependencies are built.
