file(REMOVE_RECURSE
  "CMakeFiles/backend_tour.dir/backend_tour.cpp.o"
  "CMakeFiles/backend_tour.dir/backend_tour.cpp.o.d"
  "backend_tour"
  "backend_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
