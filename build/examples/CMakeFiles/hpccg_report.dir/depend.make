# Empty dependencies file for hpccg_report.
# This may be replaced when dependencies are built.
