file(REMOVE_RECURSE
  "CMakeFiles/hpccg_report.dir/hpccg_report.cpp.o"
  "CMakeFiles/hpccg_report.dir/hpccg_report.cpp.o.d"
  "hpccg_report"
  "hpccg_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpccg_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
