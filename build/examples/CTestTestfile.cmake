# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_quickstart_cuda]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart_cuda]=] PROPERTIES  ENVIRONMENT "JACC_BACKEND=cuda" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_lbm_pulse]=] "/root/repo/build/examples/lbm_pulse" "32" "12")
set_tests_properties([=[example_lbm_pulse]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cg_solver]=] "/root/repo/build/examples/cg_solver" "20000" "8" "8" "8")
set_tests_properties([=[example_cg_solver]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_backend_tour]=] "/root/repo/build/examples/backend_tour" "50000")
set_tests_properties([=[example_backend_tour]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_heat2d]=] "/root/repo/build/examples/heat2d" "48" "1500")
set_tests_properties([=[example_heat2d]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_multi_gpu]=] "/root/repo/build/examples/multi_gpu" "262144")
set_tests_properties([=[example_multi_gpu]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_hpccg_report]=] "/root/repo/build/examples/hpccg_report" "12" "12" "12")
set_tests_properties([=[example_hpccg_report]=] PROPERTIES  ENVIRONMENT "JACC_BACKEND=amdgpu" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
