file(REMOVE_RECURSE
  "CMakeFiles/tests_apps.dir/auto_backend_test.cpp.o"
  "CMakeFiles/tests_apps.dir/auto_backend_test.cpp.o.d"
  "CMakeFiles/tests_apps.dir/blas_test.cpp.o"
  "CMakeFiles/tests_apps.dir/blas_test.cpp.o.d"
  "CMakeFiles/tests_apps.dir/cg_test.cpp.o"
  "CMakeFiles/tests_apps.dir/cg_test.cpp.o.d"
  "CMakeFiles/tests_apps.dir/dist_test.cpp.o"
  "CMakeFiles/tests_apps.dir/dist_test.cpp.o.d"
  "CMakeFiles/tests_apps.dir/extensions_test.cpp.o"
  "CMakeFiles/tests_apps.dir/extensions_test.cpp.o.d"
  "CMakeFiles/tests_apps.dir/integration_test.cpp.o"
  "CMakeFiles/tests_apps.dir/integration_test.cpp.o.d"
  "CMakeFiles/tests_apps.dir/lbm_test.cpp.o"
  "CMakeFiles/tests_apps.dir/lbm_test.cpp.o.d"
  "CMakeFiles/tests_apps.dir/model_behavior_test.cpp.o"
  "CMakeFiles/tests_apps.dir/model_behavior_test.cpp.o.d"
  "CMakeFiles/tests_apps.dir/multi_test.cpp.o"
  "CMakeFiles/tests_apps.dir/multi_test.cpp.o.d"
  "tests_apps"
  "tests_apps.pdb"
  "tests_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
