
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/auto_backend_test.cpp" "tests/CMakeFiles/tests_apps.dir/auto_backend_test.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/auto_backend_test.cpp.o.d"
  "/root/repo/tests/blas_test.cpp" "tests/CMakeFiles/tests_apps.dir/blas_test.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/blas_test.cpp.o.d"
  "/root/repo/tests/cg_test.cpp" "tests/CMakeFiles/tests_apps.dir/cg_test.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/cg_test.cpp.o.d"
  "/root/repo/tests/dist_test.cpp" "tests/CMakeFiles/tests_apps.dir/dist_test.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/dist_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/tests_apps.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/tests_apps.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/integration_test.cpp.o.d"
  "/root/repo/tests/lbm_test.cpp" "tests/CMakeFiles/tests_apps.dir/lbm_test.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/lbm_test.cpp.o.d"
  "/root/repo/tests/model_behavior_test.cpp" "tests/CMakeFiles/tests_apps.dir/model_behavior_test.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/model_behavior_test.cpp.o.d"
  "/root/repo/tests/multi_test.cpp" "tests/CMakeFiles/tests_apps.dir/multi_test.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/multi_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blas/CMakeFiles/jaccx_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/lbm/CMakeFiles/jaccx_lbm.dir/DependInfo.cmake"
  "/root/repo/build/src/cg/CMakeFiles/jaccx_cg.dir/DependInfo.cmake"
  "/root/repo/build/src/multi/CMakeFiles/jaccx_multi.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/jaccx_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jaccx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/jaccx_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/toml/CMakeFiles/jaccx_toml.dir/DependInfo.cmake"
  "/root/repo/build/src/threadpool/CMakeFiles/jaccx_threadpool.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jaccx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/jaccx_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jaccx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
