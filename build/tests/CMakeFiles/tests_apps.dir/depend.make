# Empty dependencies file for tests_apps.
# This may be replaced when dependencies are built.
