file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/array_test.cpp.o"
  "CMakeFiles/tests_core.dir/array_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/backend_test.cpp.o"
  "CMakeFiles/tests_core.dir/backend_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/ka_test.cpp.o"
  "CMakeFiles/tests_core.dir/ka_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/parallel_for_test.cpp.o"
  "CMakeFiles/tests_core.dir/parallel_for_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/parallel_reduce_test.cpp.o"
  "CMakeFiles/tests_core.dir/parallel_reduce_test.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
