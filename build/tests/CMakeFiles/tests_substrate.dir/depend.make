# Empty dependencies file for tests_substrate.
# This may be replaced when dependencies are built.
