
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fiber_test.cpp" "tests/CMakeFiles/tests_substrate.dir/fiber_test.cpp.o" "gcc" "tests/CMakeFiles/tests_substrate.dir/fiber_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/tests_substrate.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/tests_substrate.dir/support_test.cpp.o.d"
  "/root/repo/tests/threadpool_test.cpp" "tests/CMakeFiles/tests_substrate.dir/threadpool_test.cpp.o" "gcc" "tests/CMakeFiles/tests_substrate.dir/threadpool_test.cpp.o.d"
  "/root/repo/tests/toml_test.cpp" "tests/CMakeFiles/tests_substrate.dir/toml_test.cpp.o" "gcc" "tests/CMakeFiles/tests_substrate.dir/toml_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/jaccx_support.dir/DependInfo.cmake"
  "/root/repo/build/src/toml/CMakeFiles/jaccx_toml.dir/DependInfo.cmake"
  "/root/repo/build/src/threadpool/CMakeFiles/jaccx_threadpool.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/jaccx_fiber.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
