file(REMOVE_RECURSE
  "CMakeFiles/tests_substrate.dir/fiber_test.cpp.o"
  "CMakeFiles/tests_substrate.dir/fiber_test.cpp.o.d"
  "CMakeFiles/tests_substrate.dir/support_test.cpp.o"
  "CMakeFiles/tests_substrate.dir/support_test.cpp.o.d"
  "CMakeFiles/tests_substrate.dir/threadpool_test.cpp.o"
  "CMakeFiles/tests_substrate.dir/threadpool_test.cpp.o.d"
  "CMakeFiles/tests_substrate.dir/toml_test.cpp.o"
  "CMakeFiles/tests_substrate.dir/toml_test.cpp.o.d"
  "tests_substrate"
  "tests_substrate.pdb"
  "tests_substrate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
