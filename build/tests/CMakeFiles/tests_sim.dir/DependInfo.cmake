
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache_model_test.cpp" "tests/CMakeFiles/tests_sim.dir/cache_model_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/cache_model_test.cpp.o.d"
  "/root/repo/tests/cost_model_test.cpp" "tests/CMakeFiles/tests_sim.dir/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/cost_model_test.cpp.o.d"
  "/root/repo/tests/memspace_test.cpp" "tests/CMakeFiles/tests_sim.dir/memspace_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/memspace_test.cpp.o.d"
  "/root/repo/tests/sim_device_test.cpp" "tests/CMakeFiles/tests_sim.dir/sim_device_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/sim_device_test.cpp.o.d"
  "/root/repo/tests/simt_launch_test.cpp" "tests/CMakeFiles/tests_sim.dir/simt_launch_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/simt_launch_test.cpp.o.d"
  "/root/repo/tests/stream_test.cpp" "tests/CMakeFiles/tests_sim.dir/stream_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/stream_test.cpp.o.d"
  "/root/repo/tests/vendor_api_test.cpp" "tests/CMakeFiles/tests_sim.dir/vendor_api_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/vendor_api_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/jaccx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/jaccx_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/jaccx_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/threadpool/CMakeFiles/jaccx_threadpool.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jaccx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
