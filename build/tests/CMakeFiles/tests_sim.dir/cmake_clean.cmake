file(REMOVE_RECURSE
  "CMakeFiles/tests_sim.dir/cache_model_test.cpp.o"
  "CMakeFiles/tests_sim.dir/cache_model_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/cost_model_test.cpp.o"
  "CMakeFiles/tests_sim.dir/cost_model_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/memspace_test.cpp.o"
  "CMakeFiles/tests_sim.dir/memspace_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/sim_device_test.cpp.o"
  "CMakeFiles/tests_sim.dir/sim_device_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/simt_launch_test.cpp.o"
  "CMakeFiles/tests_sim.dir/simt_launch_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/stream_test.cpp.o"
  "CMakeFiles/tests_sim.dir/stream_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/vendor_api_test.cpp.o"
  "CMakeFiles/tests_sim.dir/vendor_api_test.cpp.o.d"
  "tests_sim"
  "tests_sim.pdb"
  "tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
