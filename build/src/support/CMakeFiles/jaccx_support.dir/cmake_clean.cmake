file(REMOVE_RECURSE
  "CMakeFiles/jaccx_support.dir/env.cpp.o"
  "CMakeFiles/jaccx_support.dir/env.cpp.o.d"
  "CMakeFiles/jaccx_support.dir/error.cpp.o"
  "CMakeFiles/jaccx_support.dir/error.cpp.o.d"
  "CMakeFiles/jaccx_support.dir/stopwatch.cpp.o"
  "CMakeFiles/jaccx_support.dir/stopwatch.cpp.o.d"
  "libjaccx_support.a"
  "libjaccx_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaccx_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
