file(REMOVE_RECURSE
  "libjaccx_support.a"
)
