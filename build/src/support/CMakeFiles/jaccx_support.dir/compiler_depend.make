# Empty compiler generated dependencies file for jaccx_support.
# This may be replaced when dependencies are built.
