file(REMOVE_RECURSE
  "CMakeFiles/jaccx_threadpool.dir/thread_pool.cpp.o"
  "CMakeFiles/jaccx_threadpool.dir/thread_pool.cpp.o.d"
  "libjaccx_threadpool.a"
  "libjaccx_threadpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaccx_threadpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
