file(REMOVE_RECURSE
  "libjaccx_threadpool.a"
)
