# Empty compiler generated dependencies file for jaccx_threadpool.
# This may be replaced when dependencies are built.
