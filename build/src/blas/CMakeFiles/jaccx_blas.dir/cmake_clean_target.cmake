file(REMOVE_RECURSE
  "libjaccx_blas.a"
)
