file(REMOVE_RECURSE
  "CMakeFiles/jaccx_blas.dir/jacc_blas.cpp.o"
  "CMakeFiles/jaccx_blas.dir/jacc_blas.cpp.o.d"
  "CMakeFiles/jaccx_blas.dir/native_cpu.cpp.o"
  "CMakeFiles/jaccx_blas.dir/native_cpu.cpp.o.d"
  "libjaccx_blas.a"
  "libjaccx_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaccx_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
