# Empty compiler generated dependencies file for jaccx_blas.
# This may be replaced when dependencies are built.
