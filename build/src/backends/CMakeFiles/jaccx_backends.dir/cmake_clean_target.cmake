file(REMOVE_RECURSE
  "libjaccx_backends.a"
)
