file(REMOVE_RECURSE
  "CMakeFiles/jaccx_backends.dir/vendors.cpp.o"
  "CMakeFiles/jaccx_backends.dir/vendors.cpp.o.d"
  "libjaccx_backends.a"
  "libjaccx_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaccx_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
