# Empty compiler generated dependencies file for jaccx_backends.
# This may be replaced when dependencies are built.
