# Empty compiler generated dependencies file for jaccx_sim.
# This may be replaced when dependencies are built.
