file(REMOVE_RECURSE
  "CMakeFiles/jaccx_sim.dir/cache_model.cpp.o"
  "CMakeFiles/jaccx_sim.dir/cache_model.cpp.o.d"
  "CMakeFiles/jaccx_sim.dir/cost.cpp.o"
  "CMakeFiles/jaccx_sim.dir/cost.cpp.o.d"
  "CMakeFiles/jaccx_sim.dir/device.cpp.o"
  "CMakeFiles/jaccx_sim.dir/device.cpp.o.d"
  "CMakeFiles/jaccx_sim.dir/device_model.cpp.o"
  "CMakeFiles/jaccx_sim.dir/device_model.cpp.o.d"
  "CMakeFiles/jaccx_sim.dir/timeline.cpp.o"
  "CMakeFiles/jaccx_sim.dir/timeline.cpp.o.d"
  "libjaccx_sim.a"
  "libjaccx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaccx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
