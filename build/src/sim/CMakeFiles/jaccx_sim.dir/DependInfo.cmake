
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_model.cpp" "src/sim/CMakeFiles/jaccx_sim.dir/cache_model.cpp.o" "gcc" "src/sim/CMakeFiles/jaccx_sim.dir/cache_model.cpp.o.d"
  "/root/repo/src/sim/cost.cpp" "src/sim/CMakeFiles/jaccx_sim.dir/cost.cpp.o" "gcc" "src/sim/CMakeFiles/jaccx_sim.dir/cost.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/jaccx_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/jaccx_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/device_model.cpp" "src/sim/CMakeFiles/jaccx_sim.dir/device_model.cpp.o" "gcc" "src/sim/CMakeFiles/jaccx_sim.dir/device_model.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/sim/CMakeFiles/jaccx_sim.dir/timeline.cpp.o" "gcc" "src/sim/CMakeFiles/jaccx_sim.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/jaccx_support.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/jaccx_fiber.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
