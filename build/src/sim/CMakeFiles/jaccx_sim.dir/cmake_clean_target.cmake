file(REMOVE_RECURSE
  "libjaccx_sim.a"
)
