file(REMOVE_RECURSE
  "libjaccx_fiber.a"
)
