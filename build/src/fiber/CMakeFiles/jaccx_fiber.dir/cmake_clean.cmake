file(REMOVE_RECURSE
  "CMakeFiles/jaccx_fiber.dir/context_switch.S.o"
  "CMakeFiles/jaccx_fiber.dir/fiber.cpp.o"
  "CMakeFiles/jaccx_fiber.dir/fiber.cpp.o.d"
  "libjaccx_fiber.a"
  "libjaccx_fiber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/jaccx_fiber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
