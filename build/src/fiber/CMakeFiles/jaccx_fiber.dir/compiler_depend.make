# Empty compiler generated dependencies file for jaccx_fiber.
# This may be replaced when dependencies are built.
