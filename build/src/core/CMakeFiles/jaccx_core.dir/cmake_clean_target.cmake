file(REMOVE_RECURSE
  "libjaccx_core.a"
)
