file(REMOVE_RECURSE
  "CMakeFiles/jaccx_core.dir/auto_backend.cpp.o"
  "CMakeFiles/jaccx_core.dir/auto_backend.cpp.o.d"
  "CMakeFiles/jaccx_core.dir/backend.cpp.o"
  "CMakeFiles/jaccx_core.dir/backend.cpp.o.d"
  "libjaccx_core.a"
  "libjaccx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaccx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
