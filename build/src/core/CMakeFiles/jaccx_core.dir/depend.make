# Empty dependencies file for jaccx_core.
# This may be replaced when dependencies are built.
