file(REMOVE_RECURSE
  "CMakeFiles/jaccx_cg.dir/csr.cpp.o"
  "CMakeFiles/jaccx_cg.dir/csr.cpp.o.d"
  "CMakeFiles/jaccx_cg.dir/native.cpp.o"
  "CMakeFiles/jaccx_cg.dir/native.cpp.o.d"
  "CMakeFiles/jaccx_cg.dir/solver.cpp.o"
  "CMakeFiles/jaccx_cg.dir/solver.cpp.o.d"
  "libjaccx_cg.a"
  "libjaccx_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaccx_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
