# Empty dependencies file for jaccx_cg.
# This may be replaced when dependencies are built.
