file(REMOVE_RECURSE
  "libjaccx_cg.a"
)
