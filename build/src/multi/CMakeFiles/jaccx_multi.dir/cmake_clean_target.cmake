file(REMOVE_RECURSE
  "libjaccx_multi.a"
)
