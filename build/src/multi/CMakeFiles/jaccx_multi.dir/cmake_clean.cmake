file(REMOVE_RECURSE
  "CMakeFiles/jaccx_multi.dir/multi.cpp.o"
  "CMakeFiles/jaccx_multi.dir/multi.cpp.o.d"
  "libjaccx_multi.a"
  "libjaccx_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaccx_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
