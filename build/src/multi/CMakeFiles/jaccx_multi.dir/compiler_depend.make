# Empty compiler generated dependencies file for jaccx_multi.
# This may be replaced when dependencies are built.
