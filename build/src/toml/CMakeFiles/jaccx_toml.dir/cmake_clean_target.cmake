file(REMOVE_RECURSE
  "libjaccx_toml.a"
)
