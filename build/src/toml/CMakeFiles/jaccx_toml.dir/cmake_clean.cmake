file(REMOVE_RECURSE
  "CMakeFiles/jaccx_toml.dir/parser.cpp.o"
  "CMakeFiles/jaccx_toml.dir/parser.cpp.o.d"
  "CMakeFiles/jaccx_toml.dir/writer.cpp.o"
  "CMakeFiles/jaccx_toml.dir/writer.cpp.o.d"
  "libjaccx_toml.a"
  "libjaccx_toml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaccx_toml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
