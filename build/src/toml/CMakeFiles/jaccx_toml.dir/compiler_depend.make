# Empty compiler generated dependencies file for jaccx_toml.
# This may be replaced when dependencies are built.
