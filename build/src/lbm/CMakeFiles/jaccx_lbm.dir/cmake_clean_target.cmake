file(REMOVE_RECURSE
  "libjaccx_lbm.a"
)
