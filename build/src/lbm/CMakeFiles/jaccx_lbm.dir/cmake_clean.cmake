file(REMOVE_RECURSE
  "CMakeFiles/jaccx_lbm.dir/native.cpp.o"
  "CMakeFiles/jaccx_lbm.dir/native.cpp.o.d"
  "CMakeFiles/jaccx_lbm.dir/simulation.cpp.o"
  "CMakeFiles/jaccx_lbm.dir/simulation.cpp.o.d"
  "CMakeFiles/jaccx_lbm.dir/simulation3d.cpp.o"
  "CMakeFiles/jaccx_lbm.dir/simulation3d.cpp.o.d"
  "libjaccx_lbm.a"
  "libjaccx_lbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaccx_lbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
