# Empty dependencies file for jaccx_lbm.
# This may be replaced when dependencies are built.
