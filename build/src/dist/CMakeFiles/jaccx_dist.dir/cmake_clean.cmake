file(REMOVE_RECURSE
  "CMakeFiles/jaccx_dist.dir/comm.cpp.o"
  "CMakeFiles/jaccx_dist.dir/comm.cpp.o.d"
  "CMakeFiles/jaccx_dist.dir/dist_cg.cpp.o"
  "CMakeFiles/jaccx_dist.dir/dist_cg.cpp.o.d"
  "libjaccx_dist.a"
  "libjaccx_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaccx_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
