file(REMOVE_RECURSE
  "libjaccx_dist.a"
)
