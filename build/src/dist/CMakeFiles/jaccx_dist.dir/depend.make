# Empty dependencies file for jaccx_dist.
# This may be replaced when dependencies are built.
