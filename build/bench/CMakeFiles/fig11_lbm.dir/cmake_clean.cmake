file(REMOVE_RECURSE
  "CMakeFiles/fig11_lbm.dir/fig11_lbm.cpp.o"
  "CMakeFiles/fig11_lbm.dir/fig11_lbm.cpp.o.d"
  "fig11_lbm"
  "fig11_lbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_lbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
