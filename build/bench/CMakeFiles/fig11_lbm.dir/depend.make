# Empty dependencies file for fig11_lbm.
# This may be replaced when dependencies are built.
