
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig_common.cpp" "bench/CMakeFiles/jaccx_bench_common.dir/fig_common.cpp.o" "gcc" "bench/CMakeFiles/jaccx_bench_common.dir/fig_common.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blas/CMakeFiles/jaccx_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/lbm/CMakeFiles/jaccx_lbm.dir/DependInfo.cmake"
  "/root/repo/build/src/cg/CMakeFiles/jaccx_cg.dir/DependInfo.cmake"
  "/root/repo/build/src/multi/CMakeFiles/jaccx_multi.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/jaccx_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jaccx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/jaccx_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/toml/CMakeFiles/jaccx_toml.dir/DependInfo.cmake"
  "/root/repo/build/src/threadpool/CMakeFiles/jaccx_threadpool.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jaccx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/jaccx_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jaccx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
