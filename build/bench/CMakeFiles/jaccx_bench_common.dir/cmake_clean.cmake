file(REMOVE_RECURSE
  "CMakeFiles/jaccx_bench_common.dir/fig_common.cpp.o"
  "CMakeFiles/jaccx_bench_common.dir/fig_common.cpp.o.d"
  "libjaccx_bench_common.a"
  "libjaccx_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaccx_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
