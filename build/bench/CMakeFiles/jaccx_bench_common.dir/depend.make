# Empty dependencies file for jaccx_bench_common.
# This may be replaced when dependencies are built.
