file(REMOVE_RECURSE
  "libjaccx_bench_common.a"
)
