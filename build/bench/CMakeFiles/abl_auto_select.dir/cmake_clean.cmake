file(REMOVE_RECURSE
  "CMakeFiles/abl_auto_select.dir/abl_auto_select.cpp.o"
  "CMakeFiles/abl_auto_select.dir/abl_auto_select.cpp.o.d"
  "abl_auto_select"
  "abl_auto_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_auto_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
