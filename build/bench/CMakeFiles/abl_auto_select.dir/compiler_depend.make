# Empty compiler generated dependencies file for abl_auto_select.
# This may be replaced when dependencies are built.
