file(REMOVE_RECURSE
  "CMakeFiles/abl_lbm_fusion.dir/abl_lbm_fusion.cpp.o"
  "CMakeFiles/abl_lbm_fusion.dir/abl_lbm_fusion.cpp.o.d"
  "abl_lbm_fusion"
  "abl_lbm_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lbm_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
