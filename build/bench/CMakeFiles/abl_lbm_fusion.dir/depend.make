# Empty dependencies file for abl_lbm_fusion.
# This may be replaced when dependencies are built.
