file(REMOVE_RECURSE
  "CMakeFiles/fig08_blas1_1d.dir/fig08_blas1_1d.cpp.o"
  "CMakeFiles/fig08_blas1_1d.dir/fig08_blas1_1d.cpp.o.d"
  "fig08_blas1_1d"
  "fig08_blas1_1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_blas1_1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
