# Empty compiler generated dependencies file for fig08_blas1_1d.
# This may be replaced when dependencies are built.
