file(REMOVE_RECURSE
  "CMakeFiles/abl_ka_granularity.dir/abl_ka_granularity.cpp.o"
  "CMakeFiles/abl_ka_granularity.dir/abl_ka_granularity.cpp.o.d"
  "abl_ka_granularity"
  "abl_ka_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ka_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
