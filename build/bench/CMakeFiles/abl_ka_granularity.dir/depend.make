# Empty dependencies file for abl_ka_granularity.
# This may be replaced when dependencies are built.
