# Empty compiler generated dependencies file for abl_reduction.
# This may be replaced when dependencies are built.
