file(REMOVE_RECURSE
  "CMakeFiles/abl_reduction.dir/abl_reduction.cpp.o"
  "CMakeFiles/abl_reduction.dir/abl_reduction.cpp.o.d"
  "abl_reduction"
  "abl_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
