# Empty compiler generated dependencies file for abl_dispatch_overhead.
# This may be replaced when dependencies are built.
