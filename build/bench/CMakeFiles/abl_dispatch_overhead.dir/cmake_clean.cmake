file(REMOVE_RECURSE
  "CMakeFiles/abl_dispatch_overhead.dir/abl_dispatch_overhead.cpp.o"
  "CMakeFiles/abl_dispatch_overhead.dir/abl_dispatch_overhead.cpp.o.d"
  "abl_dispatch_overhead"
  "abl_dispatch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dispatch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
