# Empty compiler generated dependencies file for abl_multi_scaling.
# This may be replaced when dependencies are built.
