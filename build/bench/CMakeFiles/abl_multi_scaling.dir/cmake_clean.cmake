file(REMOVE_RECURSE
  "CMakeFiles/abl_multi_scaling.dir/abl_multi_scaling.cpp.o"
  "CMakeFiles/abl_multi_scaling.dir/abl_multi_scaling.cpp.o.d"
  "abl_multi_scaling"
  "abl_multi_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multi_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
