# Empty compiler generated dependencies file for abl_dist_scaling.
# This may be replaced when dependencies are built.
