file(REMOVE_RECURSE
  "CMakeFiles/abl_dist_scaling.dir/abl_dist_scaling.cpp.o"
  "CMakeFiles/abl_dist_scaling.dir/abl_dist_scaling.cpp.o.d"
  "abl_dist_scaling"
  "abl_dist_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dist_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
