# Empty compiler generated dependencies file for fig13_cg.
# This may be replaced when dependencies are built.
