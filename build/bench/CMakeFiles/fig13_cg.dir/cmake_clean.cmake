file(REMOVE_RECURSE
  "CMakeFiles/fig13_cg.dir/fig13_cg.cpp.o"
  "CMakeFiles/fig13_cg.dir/fig13_cg.cpp.o.d"
  "fig13_cg"
  "fig13_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
