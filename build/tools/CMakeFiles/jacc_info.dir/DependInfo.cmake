
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/jacc_info.cpp" "tools/CMakeFiles/jacc_info.dir/jacc_info.cpp.o" "gcc" "tools/CMakeFiles/jacc_info.dir/jacc_info.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/jaccx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/toml/CMakeFiles/jaccx_toml.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/jaccx_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/threadpool/CMakeFiles/jaccx_threadpool.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jaccx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/jaccx_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jaccx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
