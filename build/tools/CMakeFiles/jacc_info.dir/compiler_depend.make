# Empty compiler generated dependencies file for jacc_info.
# This may be replaced when dependencies are built.
