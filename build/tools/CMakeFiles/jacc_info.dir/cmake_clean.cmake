file(REMOVE_RECURSE
  "CMakeFiles/jacc_info.dir/jacc_info.cpp.o"
  "CMakeFiles/jacc_info.dir/jacc_info.cpp.o.d"
  "jacc_info"
  "jacc_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacc_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
