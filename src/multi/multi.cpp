#include "multi/multi.hpp"

namespace jaccx::multi {

// The shim's entire runtime surface lives in jacc::device_set now; only the
// deprecated constructor needs a body (defining it out of line keeps the
// [[deprecated]] diagnostics on callers, not on this TU).
context::context(jacc::backend be, int devices) : set_(be, devices) {}

} // namespace jaccx::multi
