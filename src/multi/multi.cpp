#include "multi/multi.hpp"

#include <algorithm>

namespace jaccx::multi {
namespace {

std::string model_of(jacc::backend be) {
  switch (be) {
  case jacc::backend::cuda_a100: return "a100";
  case jacc::backend::hip_mi100: return "mi100";
  case jacc::backend::oneapi_max1550: return "max1550";
  default:
    throw_usage_error("jacc::multi targets the simulated GPU back ends "
                      "(cuda_a100, hip_mi100, oneapi_max1550)");
  }
}

} // namespace

context::context(jacc::backend be, int devices) : be_(be) {
  if (devices < 1) {
    throw_usage_error("multi::context needs at least one device");
  }
  const std::string model = model_of(be);
  devs_.reserve(static_cast<std::size_t>(devices));
  for (int d = 0; d < devices; ++d) {
    devs_.push_back(&sim::get_device_instance(model, d));
  }
}

double context::now_us() const {
  double t = 0.0;
  for (const auto* d : devs_) {
    t = std::max(t, d->tl().now_us());
  }
  return t;
}

double context::sync() {
  for (std::size_t d = 0; d < streams_.size(); ++d) {
    if (streams_[d] != nullptr) {
      sim::join(*devs_[d], {streams_[d].get()});
    }
  }
  const double t = now_us();
  for (auto* d : devs_) {
    const double behind = t - d->tl().now_us();
    if (behind > 0.0) {
      d->tl().record("multi.sync", sim::event_kind::kernel, behind);
    }
  }
  return t;
}

void context::reset_clocks() {
  streams_.clear(); // recreated lazily at the new time origin
  for (auto* d : devs_) {
    d->reset_clock();
    d->cache().reset();
  }
}

sim::stream& context::shard_stream(int d) {
  JACCX_ASSERT(d >= 0 && d < devices());
  if (streams_.size() != devs_.size()) {
    streams_.resize(devs_.size());
  }
  auto& s = streams_[static_cast<std::size_t>(d)];
  if (s == nullptr) {
    auto& dev = *devs_[static_cast<std::size_t>(d)];
    s = std::make_unique<sim::stream>(
        dev, dev.model().name + ".shard" + std::to_string(d));
  }
  return *s;
}

} // namespace jaccx::multi
