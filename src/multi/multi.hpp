// DEPRECATED jacc::multi-style multi-device extension.
//
// The paper's Sec. VII names "heterogeneous multi-device nodes" as JACC's
// next step, and JACC.jl later shipped a JACC.multi module along those
// lines.  This module implemented the idea on the simulator with explicit
// sharding: a context owns N instances of one GPU model, marrays are
// sharded contiguously across them, and kernels receive SHARD-LOCAL
// indices plus raw device_spans over each shard (ghosts included).
//
// That front end is superseded by the auto-sharding layer (docs/
// SHARDING.md): `jacc::device_set` + `jacc::array(jacc::sharded(ds), ...)`
// runs plain global-index jacc::parallel_for / parallel_reduce across the
// set, with halo exchange inferred from hints::stencil.  Everything here is
// now a thin [[deprecated]] compatibility shim kept for one release:
// context forwards to device_set (identical timing semantics, identical
// stream labels), marray keeps the old equal-block decomposition and
// shard-local kernel convention bit for bit, but its shard storage now
// routes through mem::acquire/release like every other allocation path.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/device_set.hpp"
#include "core/parallel_reduce.hpp"
#include "mem/typed_buffer.hpp"
#include "sim/launch.hpp"
#include "sim/memspace.hpp"
#include "sim/stream.hpp"
#include "threadpool/partition.hpp"

namespace jaccx::multi {

using jacc::index_t;

/// N same-model simulated GPUs acting as one resource set.  Deprecated
/// shim: the devices, clocks and shard streams are a jacc::device_set's —
/// migrate by constructing that directly (set() eases the transition).
class context {
public:
  /// `be` must be one of the simulated GPU back ends; `devices` >= 1.
  [[deprecated("use jacc::device_set (auto-sharding; docs/SHARDING.md)")]]
  context(jacc::backend be, int devices);

  int devices() const { return set_.devices(); }
  jacc::backend target() const { return set_.target(); }
  sim::device& dev(int d) const { return set_.dev(d); }

  /// Wall clock of the set: the furthest-ahead device.
  double now_us() const { return set_.now_us(); }

  /// Barrier: folds every shard stream into its device clock, then aligns
  /// every device clock to now_us() and returns it.
  double sync() { return set_.sync(); }

  /// Rewinds all device clocks/logs (benchmarks).  Shard streams are
  /// discarded and recreated lazily at the new time origin.
  void reset_clocks() { set_.reset_clocks(); }

  /// Shard d's queue: an independent sim stream ("<model>.shard<d>" in the
  /// Chrome trace) created on first use.  Charges issued through it — e.g.
  /// exchange_halos_async() — overlap across shards and rejoin the device
  /// clocks at sync().
  sim::stream& shard_stream(int d) { return set_.shard_stream(d); }

  /// The underlying device_set (migration aid: hand this to
  /// jacc::device_set_scope and drop the context).
  jacc::device_set& set() { return set_; }

private:
  jacc::device_set set_;
};

/// 1D array sharded contiguously across the context's devices, each shard
/// padded with `ghost` cells on both sides.  Deprecated shim: the modern
/// spelling is `jacc::array<T>(jacc::sharded(ds), ...)`, whose kernels use
/// global indices and whose halos follow hints::stencil automatically.
template <class T>
class marray {
  /// Tag for the real (non-deprecated) initialization path, so the public
  /// deprecated ctors can delegate without warning about each other.
  struct internal_t {};

  marray(internal_t, context& ctx, index_t n, index_t ghost)
      : ctx_(&ctx), n_(n), ghost_(ghost) {
    JACCX_ASSERT(n >= 0 && ghost >= 0);
    shards_.reserve(static_cast<std::size_t>(ctx.devices()));
    for (int d = 0; d < ctx.devices(); ++d) {
      const auto r = shard_range(d);
      shards_.emplace_back(ctx.dev(d), r.size() + 2 * ghost, "multi.shard");
      // Pool-recycled blocks carry the previous tenant's bits; ghosts and
      // unwritten cells must read as T{} like the arena path guaranteed.
      shards_.back().fill_untracked(T{});
    }
  }

public:
  [[deprecated("use jacc::array with jacc::sharded placement "
               "(docs/SHARDING.md)")]]
  marray(context& ctx, index_t n, index_t ghost = 0)
      : marray(internal_t{}, ctx, n, ghost) {}

  /// Scatter construction: each device is charged the H2D of its shard.
  [[deprecated("use jacc::array with jacc::sharded placement "
               "(docs/SHARDING.md)")]]
  marray(context& ctx, const std::vector<T>& host, index_t ghost = 0)
      : marray(internal_t{}, ctx, static_cast<index_t>(host.size()), ghost) {
    for (int d = 0; d < ctx.devices(); ++d) {
      const auto r = shard_range(d);
      if (r.empty()) {
        continue;
      }
      // Interior copy: ghosts stay zero until exchange_halos().
      auto& buf = shards_[static_cast<std::size_t>(d)];
      std::copy(host.begin() + r.begin, host.begin() + r.end,
                buf.data() + ghost_);
      ctx.dev(d).charge_h2d(static_cast<std::uint64_t>(r.size()) * sizeof(T),
                            "multi.scatter");
    }
  }

  index_t size() const { return n_; }
  index_t ghost() const { return ghost_; }
  int shards() const { return static_cast<int>(shards_.size()); }

  /// Global index range owned by shard d.
  pool::range shard_range(int d) const {
    return pool::static_chunk(n_, ctx_->devices(), d);
  }

  index_t shard_len(int d) const { return shard_range(d).size(); }

  /// Tracked view over shard d including its ghost cells
  /// ([0, len + 2*ghost); owned data starts at index ghost()).
  sim::device_span<T> shard(int d) {
    return shards_[static_cast<std::size_t>(d)].span();
  }

  /// Gathers the owned (non-ghost) elements of every shard, charging one
  /// D2H per device.
  std::vector<T> gather() const {
    std::vector<T> out(static_cast<std::size_t>(n_));
    for (int d = 0; d < ctx_->devices(); ++d) {
      const auto r = shard_range(d);
      if (r.empty()) {
        continue;
      }
      const auto& buf = shards_[static_cast<std::size_t>(d)];
      std::copy(buf.data() + ghost_, buf.data() + ghost_ + r.size(),
                out.begin() + r.begin);
      ctx_->dev(d).charge_d2h(static_cast<std::uint64_t>(r.size()) *
                                  sizeof(T),
                              "multi.gather");
    }
    return out;
  }

  /// Exchanges boundary cells with neighbouring shards: shard d's right
  /// ghost receives shard d+1's first owned cells and vice versa.  Each
  /// peer copy charges transfer cost on both devices (a device-to-device
  /// hop over the node's link).
  void exchange_halos(std::string_view name = "multi.halo") {
    if (ghost_ == 0 || ctx_->devices() < 2) {
      return;
    }
    for (int d = 0; d + 1 < ctx_->devices(); ++d) {
      auto& left = shards_[static_cast<std::size_t>(d)];
      auto& right = shards_[static_cast<std::size_t>(d + 1)];
      const index_t left_len = shard_len(d);
      const index_t right_len = shard_len(d + 1);
      const index_t g =
          std::min({ghost_, left_len, right_len}); // clipped at tiny shards
      if (g == 0) {
        continue;
      }
      const auto bytes = static_cast<std::uint64_t>(g) * sizeof(T);
      // left's last owned g cells -> right's left ghost
      std::copy(left.data() + ghost_ + left_len - g,
                left.data() + ghost_ + left_len, right.data() + ghost_ - g);
      // right's first owned g cells -> left's right ghost
      std::copy(right.data() + ghost_, right.data() + ghost_ + g,
                left.data() + ghost_ + left_len);
      ctx_->dev(d).charge_d2h(bytes, name);
      ctx_->dev(d + 1).charge_h2d(bytes, name);
      ctx_->dev(d + 1).charge_d2h(bytes, name);
      ctx_->dev(d).charge_h2d(bytes, name);
    }
  }

  /// exchange_halos on the per-shard queues: each boundary's four transfer
  /// charges land on the two adjacent shard streams instead of the device
  /// clocks, so non-adjacent exchanges (and any compute still on the device
  /// clocks) overlap in simulated time.  Data movement is identical to
  /// exchange_halos(); call ctx.sync() to fold the streams back before
  /// reading wall time.
  void exchange_halos_async(std::string_view name = "multi.halo") {
    if (ghost_ == 0 || ctx_->devices() < 2) {
      return;
    }
    for (int d = 0; d + 1 < ctx_->devices(); ++d) {
      auto& left = shards_[static_cast<std::size_t>(d)];
      auto& right = shards_[static_cast<std::size_t>(d + 1)];
      const index_t left_len = shard_len(d);
      const index_t right_len = shard_len(d + 1);
      const index_t g = std::min({ghost_, left_len, right_len});
      if (g == 0) {
        continue;
      }
      const auto bytes = static_cast<std::uint64_t>(g) * sizeof(T);
      std::copy(left.data() + ghost_ + left_len - g,
                left.data() + ghost_ + left_len, right.data() + ghost_ - g);
      std::copy(right.data() + ghost_, right.data() + ghost_ + g,
                left.data() + ghost_ + left_len);
      {
        const sim::stream_scope on(ctx_->shard_stream(d));
        ctx_->dev(d).charge_d2h(bytes, name);
        ctx_->dev(d).charge_h2d(bytes, name);
      }
      {
        const sim::stream_scope on(ctx_->shard_stream(d + 1));
        ctx_->dev(d + 1).charge_h2d(bytes, name);
        ctx_->dev(d + 1).charge_d2h(bytes, name);
      }
    }
  }

  /// Host mirror of shard d's full buffer (tests).
  const T* shard_host_data(int d) const {
    return shards_[static_cast<std::size_t>(d)].data();
  }

private:
  context* ctx_;
  index_t n_ = 0;
  index_t ghost_ = 0;
  std::vector<mem::pooled_buffer<T>> shards_; ///< via mem::acquire/release
};

/// Placeholder argument: expands, per shard, to the global index of that
/// shard's first owned element.  Stencil kernels use it to recognize the
/// true domain boundary:
///
///   multi::parallel_for(ctx, n, kernel, u, next, multi::with_base);
///   void kernel(index_t i, span u, span next, index_t base) {
///     const index_t g = base + i;  // global position
///     ...
///   }
struct with_base_t {};
inline constexpr with_base_t with_base{};

namespace detail {

/// marray arguments become that shard's span, with_base the shard's global
/// offset; everything else is forwarded.
template <class T>
sim::device_span<T> shard_arg(index_t, int d, marray<T>& a) {
  return a.shard(d);
}
inline index_t shard_arg(index_t base, int, with_base_t) { return base; }
template <class A>
A&& shard_arg(index_t, int, A&& a) {
  return std::forward<A>(a);
}

} // namespace detail

/// Runs f(i, args...) for every global index, sharded: device d executes
/// the local indices [0, shard_len(d)).  Devices advance concurrently; call
/// ctx.sync() for the region's wall time.
template <class F, class... Args>
[[deprecated("use jacc::parallel_for inside a jacc::device_set_scope — "
             "global indices, sharding and halos applied by the runtime")]]
void parallel_for(context& ctx, index_t n, F&& f, Args&&... args) {
  JACCX_ASSERT(n >= 0);
  for (int d = 0; d < ctx.devices(); ++d) {
    const auto owned = pool::static_chunk(n, ctx.devices(), d);
    const index_t local_n = owned.size();
    if (local_n == 0) {
      continue;
    }
    auto& dev = ctx.dev(d);
    sim::launch_config cfg;
    const std::int64_t maxt = dev.model().max_threads_per_block;
    const std::int64_t threads = local_n < maxt ? local_n : maxt;
    cfg.block = sim::dim3{threads};
    cfg.grid = sim::dim3{sim::ceil_div(local_n, threads)};
    cfg.name = "multi.parallel_for";
    cfg.flavor.via_jacc = true;
    sim::launch(dev, cfg, [&, local_n, d, owned](sim::kernel_ctx& c) {
      const index_t i = c.global_x();
      if (i < local_n) {
        f(i, detail::shard_arg(owned.begin, d, args)...);
      }
    });
  }
}

/// Sum-reduction across all shards: per-device two-kernel tree reductions
/// (each charging its scalar D2H) combined on the host.
template <class F, class... Args>
[[deprecated("use jacc::parallel_reduce inside a jacc::device_set_scope — "
             "global indices, identical partial combination order")]]
double parallel_reduce(context& ctx, index_t n, F&& f, Args&&... args) {
  JACCX_ASSERT(n >= 0);
  double total = 0.0;
  for (int d = 0; d < ctx.devices(); ++d) {
    const auto owned = pool::static_chunk(n, ctx.devices(), d);
    if (owned.empty()) {
      continue;
    }
    total += jacc::detail::reduce_sim_gpu<double>(
        ctx.dev(d), jacc::hints{.name = "multi.parallel_reduce"},
        owned.size(), jacc::plus_reducer{}, [&, d, owned](index_t i) {
          return f(i, detail::shard_arg(owned.begin, d, args)...);
        });
  }
  return total;
}

} // namespace jaccx::multi
