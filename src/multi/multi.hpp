// jacc::multi-style multi-device extension.
//
// The paper's Sec. VII names "heterogeneous multi-device nodes" as JACC's
// next step, and JACC.jl later shipped a JACC.multi module along those
// lines.  This module implements the idea on the simulator: a context owns
// N instances of one GPU model, arrays are sharded contiguously across
// them (optionally with ghost cells), parallel_for runs each shard on its
// own device, and parallel_reduce combines per-device partials on the host.
//
// Timing semantics: each device has its own clock; an operation advances
// every participating clock independently, so devices overlap exactly as a
// multi-GPU node's would.  sync() is the barrier that aligns all clocks to
// the maximum — the wall time of the preceding region.
//
// Kernel convention: f(i, args...) with i the shard-local OWNED index in
// [0, shard_len); marray arguments arrive as device_span over the full
// shard INCLUDING ghost cells, so a stencil kernel indexes span[i + ghost]
// and may reach ghost cells at [i + ghost +- g] after exchange_halos().
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/parallel_reduce.hpp"
#include "sim/launch.hpp"
#include "sim/memspace.hpp"
#include "sim/stream.hpp"
#include "threadpool/partition.hpp"

namespace jaccx::multi {

using jacc::index_t;

/// N same-model simulated GPUs acting as one resource set.
class context {
public:
  /// `be` must be one of the simulated GPU back ends; `devices` >= 1.
  context(jacc::backend be, int devices);

  int devices() const { return static_cast<int>(devs_.size()); }
  jacc::backend target() const { return be_; }
  sim::device& dev(int d) const {
    JACCX_ASSERT(d >= 0 && d < devices());
    return *devs_[static_cast<std::size_t>(d)];
  }

  /// Wall clock of the set: the furthest-ahead device.
  double now_us() const;

  /// Barrier: folds every shard stream into its device clock, then aligns
  /// every device clock to now_us() and returns it.
  double sync();

  /// Rewinds all device clocks/logs (benchmarks).  Shard streams are
  /// discarded and recreated lazily at the new time origin.
  void reset_clocks();

  /// Shard d's queue: an independent sim stream ("<model>.shard<d>" in the
  /// Chrome trace) created on first use.  Charges issued through it — e.g.
  /// exchange_halos_async() — overlap across shards and rejoin the device
  /// clocks at sync().
  sim::stream& shard_stream(int d);

private:
  jacc::backend be_;
  std::vector<sim::device*> devs_;
  std::vector<std::unique_ptr<sim::stream>> streams_; // lazily per shard
};

/// 1D array sharded contiguously across the context's devices, each shard
/// padded with `ghost` cells on both sides.
template <class T>
class marray {
public:
  marray(context& ctx, index_t n, index_t ghost = 0)
      : ctx_(&ctx), n_(n), ghost_(ghost) {
    JACCX_ASSERT(n >= 0 && ghost >= 0);
    shards_.reserve(static_cast<std::size_t>(ctx.devices()));
    for (int d = 0; d < ctx.devices(); ++d) {
      const auto r = shard_range(d);
      shards_.emplace_back(ctx.dev(d), r.size() + 2 * ghost, "multi.shard");
      shards_.back().fill_untracked(T{});
    }
  }

  /// Scatter construction: each device is charged the H2D of its shard.
  marray(context& ctx, const std::vector<T>& host, index_t ghost = 0)
      : marray(ctx, static_cast<index_t>(host.size()), ghost) {
    for (int d = 0; d < ctx.devices(); ++d) {
      const auto r = shard_range(d);
      if (r.empty()) {
        continue;
      }
      // Interior copy: ghosts stay zero until exchange_halos().
      auto& buf = shards_[static_cast<std::size_t>(d)];
      std::copy(host.begin() + r.begin, host.begin() + r.end,
                buf.data() + ghost_);
      ctx.dev(d).charge_h2d(static_cast<std::uint64_t>(r.size()) * sizeof(T),
                            "multi.scatter");
    }
  }

  index_t size() const { return n_; }
  index_t ghost() const { return ghost_; }
  int shards() const { return static_cast<int>(shards_.size()); }

  /// Global index range owned by shard d.
  pool::range shard_range(int d) const {
    return pool::static_chunk(n_, ctx_->devices(), d);
  }

  index_t shard_len(int d) const { return shard_range(d).size(); }

  /// Tracked view over shard d including its ghost cells
  /// ([0, len + 2*ghost); owned data starts at index ghost()).
  sim::device_span<T> shard(int d) {
    return shards_[static_cast<std::size_t>(d)].span();
  }

  /// Gathers the owned (non-ghost) elements of every shard, charging one
  /// D2H per device.
  std::vector<T> gather() const {
    std::vector<T> out(static_cast<std::size_t>(n_));
    for (int d = 0; d < ctx_->devices(); ++d) {
      const auto r = shard_range(d);
      if (r.empty()) {
        continue;
      }
      const auto& buf = shards_[static_cast<std::size_t>(d)];
      std::copy(buf.data() + ghost_, buf.data() + ghost_ + r.size(),
                out.begin() + r.begin);
      ctx_->dev(d).charge_d2h(static_cast<std::uint64_t>(r.size()) *
                                  sizeof(T),
                              "multi.gather");
    }
    return out;
  }

  /// Exchanges boundary cells with neighbouring shards: shard d's right
  /// ghost receives shard d+1's first owned cells and vice versa.  Each
  /// peer copy charges transfer cost on both devices (a device-to-device
  /// hop over the node's link).
  void exchange_halos(std::string_view name = "multi.halo") {
    if (ghost_ == 0 || ctx_->devices() < 2) {
      return;
    }
    for (int d = 0; d + 1 < ctx_->devices(); ++d) {
      auto& left = shards_[static_cast<std::size_t>(d)];
      auto& right = shards_[static_cast<std::size_t>(d + 1)];
      const index_t left_len = shard_len(d);
      const index_t right_len = shard_len(d + 1);
      const index_t g =
          std::min({ghost_, left_len, right_len}); // clipped at tiny shards
      if (g == 0) {
        continue;
      }
      const auto bytes = static_cast<std::uint64_t>(g) * sizeof(T);
      // left's last owned g cells -> right's left ghost
      std::copy(left.data() + ghost_ + left_len - g,
                left.data() + ghost_ + left_len, right.data() + ghost_ - g);
      // right's first owned g cells -> left's right ghost
      std::copy(right.data() + ghost_, right.data() + ghost_ + g,
                left.data() + ghost_ + left_len);
      ctx_->dev(d).charge_d2h(bytes, name);
      ctx_->dev(d + 1).charge_h2d(bytes, name);
      ctx_->dev(d + 1).charge_d2h(bytes, name);
      ctx_->dev(d).charge_h2d(bytes, name);
    }
  }

  /// exchange_halos on the per-shard queues: each boundary's four transfer
  /// charges land on the two adjacent shard streams instead of the device
  /// clocks, so non-adjacent exchanges (and any compute still on the device
  /// clocks) overlap in simulated time.  Data movement is identical to
  /// exchange_halos(); call ctx.sync() to fold the streams back before
  /// reading wall time.
  void exchange_halos_async(std::string_view name = "multi.halo") {
    if (ghost_ == 0 || ctx_->devices() < 2) {
      return;
    }
    for (int d = 0; d + 1 < ctx_->devices(); ++d) {
      auto& left = shards_[static_cast<std::size_t>(d)];
      auto& right = shards_[static_cast<std::size_t>(d + 1)];
      const index_t left_len = shard_len(d);
      const index_t right_len = shard_len(d + 1);
      const index_t g = std::min({ghost_, left_len, right_len});
      if (g == 0) {
        continue;
      }
      const auto bytes = static_cast<std::uint64_t>(g) * sizeof(T);
      std::copy(left.data() + ghost_ + left_len - g,
                left.data() + ghost_ + left_len, right.data() + ghost_ - g);
      std::copy(right.data() + ghost_, right.data() + ghost_ + g,
                left.data() + ghost_ + left_len);
      {
        const sim::stream_scope on(ctx_->shard_stream(d));
        ctx_->dev(d).charge_d2h(bytes, name);
        ctx_->dev(d).charge_h2d(bytes, name);
      }
      {
        const sim::stream_scope on(ctx_->shard_stream(d + 1));
        ctx_->dev(d + 1).charge_h2d(bytes, name);
        ctx_->dev(d + 1).charge_d2h(bytes, name);
      }
    }
  }

  /// Host mirror of shard d's full buffer (tests).
  const T* shard_host_data(int d) const {
    return shards_[static_cast<std::size_t>(d)].data();
  }

private:
  context* ctx_;
  index_t n_ = 0;
  index_t ghost_ = 0;
  std::vector<sim::device_buffer<T>> shards_;
};

/// Placeholder argument: expands, per shard, to the global index of that
/// shard's first owned element.  Stencil kernels use it to recognize the
/// true domain boundary:
///
///   multi::parallel_for(ctx, n, kernel, u, next, multi::with_base);
///   void kernel(index_t i, span u, span next, index_t base) {
///     const index_t g = base + i;  // global position
///     ...
///   }
struct with_base_t {};
inline constexpr with_base_t with_base{};

namespace detail {

/// marray arguments become that shard's span, with_base the shard's global
/// offset; everything else is forwarded.
template <class T>
sim::device_span<T> shard_arg(index_t, int d, marray<T>& a) {
  return a.shard(d);
}
inline index_t shard_arg(index_t base, int, with_base_t) { return base; }
template <class A>
A&& shard_arg(index_t, int, A&& a) {
  return std::forward<A>(a);
}

} // namespace detail

/// Runs f(i, args...) for every global index, sharded: device d executes
/// the local indices [0, shard_len(d)).  Devices advance concurrently; call
/// ctx.sync() for the region's wall time.
template <class F, class... Args>
void parallel_for(context& ctx, index_t n, F&& f, Args&&... args) {
  JACCX_ASSERT(n >= 0);
  for (int d = 0; d < ctx.devices(); ++d) {
    const auto owned = pool::static_chunk(n, ctx.devices(), d);
    const index_t local_n = owned.size();
    if (local_n == 0) {
      continue;
    }
    auto& dev = ctx.dev(d);
    sim::launch_config cfg;
    const std::int64_t maxt = dev.model().max_threads_per_block;
    const std::int64_t threads = local_n < maxt ? local_n : maxt;
    cfg.block = sim::dim3{threads};
    cfg.grid = sim::dim3{sim::ceil_div(local_n, threads)};
    cfg.name = "multi.parallel_for";
    cfg.flavor.via_jacc = true;
    sim::launch(dev, cfg, [&, local_n, d, owned](sim::kernel_ctx& c) {
      const index_t i = c.global_x();
      if (i < local_n) {
        f(i, detail::shard_arg(owned.begin, d, args)...);
      }
    });
  }
}

/// Sum-reduction across all shards: per-device two-kernel tree reductions
/// (each charging its scalar D2H) combined on the host.
template <class F, class... Args>
double parallel_reduce(context& ctx, index_t n, F&& f, Args&&... args) {
  JACCX_ASSERT(n >= 0);
  double total = 0.0;
  for (int d = 0; d < ctx.devices(); ++d) {
    const auto owned = pool::static_chunk(n, ctx.devices(), d);
    if (owned.empty()) {
      continue;
    }
    total += jacc::detail::reduce_sim_gpu<double>(
        ctx.dev(d), jacc::hints{.name = "multi.parallel_reduce"},
        owned.size(), jacc::plus_reducer{}, [&, d, owned](index_t i) {
          return f(i, detail::shard_arg(owned.begin, d, args)...);
        });
  }
  return total;
}

} // namespace jaccx::multi
