// jaccx::serve — a multi-tenant job scheduler over the queue/lane pool.
//
// ROADMAP item 5, the "millions of users" scenario made concrete: N
// concurrent solver/LBM jobs are submitted as work items to one shared
// scheduler that owns the execution slots (jacc::queue per slot), instead
// of each caller building private queues and fighting over the machine.
// The shape follows the original JACC OpenACC runtime (arXiv:2110.14340):
// asynchronous kernel-level scheduling behind a simple submission API.
//
//   jaccx::serve::scheduler sched({.slots = 4});
//   auto a = sched.open_tenant("alice", /*weight=*/2.0);
//   auto b = sched.open_tenant("bob");
//   auto h = sched.submit(a, [&](jacc::queue& q) {
//     jacc::parallel_for(q, n, kernel, xs, ys);
//   });
//   h.wait();
//   sched.drain();
//
// Scheduling model
//   * Strict priority classes (high > normal > low): a ready high job
//     always dispatches before a ready normal one.
//   * Within a class, weighted fair queueing by virtual time: each tenant
//     accumulates vtime = Σ measured_job_us / weight, and the tenant with
//     the smallest vtime dispatches next, so long-run slot time divides
//     proportionally to weight and no tenant starves.  A tenant going
//     idle forfeits unused credit (its vtime is clamped up to the global
//     virtual clock when it becomes active again).
//   * Jobs of one tenant dispatch in submission order.
//
// Execution model
//   * `threads` back end: one worker thread per slot, each owning a
//     labeled queue ("serve.s<k>") pinned round-robin to the dispatcher
//     lanes — the capped lane pool (lanes never exceed the worker-pool
//     width, docs/ASYNC.md) bounds oversubscription.  Worker concurrency
//     is clamped to the lane count: with one lane queue ops degrade to
//     synchronous calls on the shared default pool, which admits only one
//     runner at a time.
//   * simulated back ends: devices execute functionally at enqueue and are
//     not thread-safe, so one runner thread executes jobs in submission
//     order, but each job is bound to its *tenant's* slot queue
//     (tenant index mod slots) — per-tenant sim streams — so independent
//     tenants' charges overlap in simulated time exactly as concurrent
//     CUDA streams would.
//   * serial: one worker thread per slot running the loops inline.
//
// Admission control (long-running servers): with a memory budget set,
// a job is admitted only while live + cached pool bytes plus the byte
// hints of every in-flight job stay under the budget; otherwise it parks
// on a deferred FIFO and re-enters admission when a job completes or the
// pool reports memory pressure (mem::add_pressure_callback — fired by the
// trim-and-retry allocation path).  When nothing is running and nothing
// else is ready, the head deferred job is force-admitted after a
// trim-to-budget so the server always makes progress; the pool's
// trim-once-and-retry on std::bad_alloc is the backstop underneath.
//
// Env rows (docs/SERVING.md; explicit options fields win over env):
//   JACC_SERVE_SLOTS        execution slots (default: lane count on
//                           threads, 4 otherwise)
//   JACC_SERVE_MEM_MB       admission budget in MiB (0 = no admission
//                           control, the default)
//   JACC_SERVE_MAX_PENDING  max queued+deferred jobs before submissions
//                           are rejected (0 = unbounded, the default)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/graph.hpp"
#include "core/queue.hpp"
#include "prof/prof.hpp"

namespace jaccx::serve {

namespace detail {
struct scheduler_state;
struct tenant_state;
struct job_state;
} // namespace detail

/// Strict dispatch classes: a ready higher-class job always beats a ready
/// lower-class one.  Fairness (weights) applies within a class.
enum class priority : int { low = 0, normal = 1, high = 2 };

struct options {
  /// Execution slots (concurrent jobs the scheduler aims for).  0 = auto:
  /// the dispatcher lane count on `threads`, 4 otherwise.
  int slots = 0;
  /// Admission budget in bytes against mem::live_bytes() +
  /// mem::cached_bytes() + in-flight byte hints.  0 = no admission control.
  std::uint64_t mem_budget_bytes = 0;
  /// Queued + deferred jobs beyond which submissions are rejected
  /// (overload shedding).  0 = unbounded.
  std::size_t max_pending = 0;
};

enum class job_status : int {
  queued,   ///< admitted, waiting for a slot
  deferred, ///< parked by admission control
  running,
  done,
  failed,   ///< the job body threw; error() carries the message
  rejected, ///< shed at submission (max_pending)
};

/// Cheap shared handle to one submitted job.
class job_handle {
public:
  job_handle() = default;
  explicit operator bool() const { return s_ != nullptr; }

  job_status status() const;
  /// Blocks until the job reaches done, failed, or rejected.
  void wait() const;
  /// True once the job finished in any terminal state.
  bool terminal() const;
  /// Submission -> slot-pickup latency (0 until the job starts).
  double queue_wait_us() const;
  /// True when admission control parked this job at least once.
  bool was_deferred() const;
  /// The exception message for a failed job ("" otherwise).
  std::string error() const;

private:
  friend class scheduler;
  std::shared_ptr<detail::job_state> s_;
};

/// Cheap shared handle to one tenant, minted by scheduler::open_tenant.
class tenant {
public:
  tenant() = default;
  explicit operator bool() const { return s_ != nullptr; }
  const std::string& name() const;
  double weight() const;
  priority prio() const;

private:
  friend class scheduler;
  std::shared_ptr<detail::tenant_state> s_;
};

class scheduler {
public:
  explicit scheduler(options opt = {});
  /// Drains outstanding jobs, stops the workers, unregisters the prof
  /// source and the pool pressure callback.
  ~scheduler();
  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  /// Registers a tenant.  `weight` scales its fair share within its
  /// priority class (2.0 = twice the slot time of a weight-1.0 peer).
  tenant open_tenant(std::string name, double weight = 1.0,
                     priority p = priority::normal);

  /// Submits a job: a callable issuing work on the queue it is handed
  /// (use the jacc::parallel_* overloads taking a queue, or graph
  /// launches).  `bytes_hint` is the job's expected peak pool footprint,
  /// consulted by admission control.  Returns immediately.
  job_handle submit(const tenant& t, std::function<void(jacc::queue&)> work,
                    std::uint64_t bytes_hint = 0);

  /// Submits a pre-captured graph as a job: replays g.launch(q) on the
  /// slot queue.  The caller must not submit the SAME graph again while a
  /// previous replay of it may still be running (one replay of a given
  /// graph at a time — graphs from different submissions may interleave
  /// freely).
  job_handle submit(const tenant& t, jacc::graph g,
                    std::uint64_t bytes_hint = 0);

  /// Blocks until every submitted job reached a terminal state.
  void drain();

  /// Live per-tenant and per-slot counters (also registered as prof's
  /// serve source, so JACC_PROFILE=summary prints them at finalize).
  prof::serve_stats stats() const;

  int slots() const;
  /// Worker threads actually running jobs (see the execution model above:
  /// 1 on simulated back ends, min(slots, lanes) on threads).
  int workers() const;

private:
  std::shared_ptr<detail::scheduler_state> s_;
};

} // namespace jaccx::serve
