#include "serve/serve.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/backend.hpp"
#include "mem/pool.hpp"
#include "support/env.hpp"
#include "support/error.hpp"

namespace jaccx::serve {
namespace detail {
namespace {

using sched_clock = std::chrono::steady_clock;

double us_between(sched_clock::time_point a, sched_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Nearest-rank percentile over a scratch copy.
double percentile(std::vector<double> v, double p) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  idx = std::min(v.size(), std::max<std::size_t>(idx, 1)) - 1;
  return v[idx];
}

long env_long_or(const char* name, long fallback) {
  if (const auto v = jaccx::get_env_long(name); v && *v >= 0) {
    return *v;
  }
  return fallback;
}

} // namespace

struct job_state {
  std::shared_ptr<tenant_state> owner;
  std::function<void(jacc::queue&)> work;
  std::uint64_t bytes_hint = 0;
  sched_clock::time_point submit_tp;

  // Terminal-state signalling for job_handle: its own leaf mutex, so
  // waiters never touch the scheduler lock.
  mutable std::mutex mu;
  mutable std::condition_variable cv;
  job_status status = job_status::queued;
  bool deferred_once = false;
  double wait_us = 0.0;
  std::string error;

  void set_status(job_status st) {
    const std::lock_guard lock(mu);
    status = st;
  }
  void finish(job_status st, std::string err) {
    {
      const std::lock_guard lock(mu);
      status = st;
      error = std::move(err);
    }
    cv.notify_all();
  }
};

struct tenant_state {
  std::string name;
  double weight = 1.0;
  priority prio = priority::normal;
  std::size_t index = 0;

  // Everything below is guarded by scheduler_state::mu.
  double vtime = 0.0;
  std::deque<std::shared_ptr<job_state>> ready;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t deferred = 0;
  std::uint64_t deferred_admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double busy_us = 0.0;
  std::vector<double> wait_samples;
};

struct slot_stat {
  std::uint64_t jobs = 0;
  double busy_us = 0.0;
};

struct scheduler_state {
  options opt;
  int slots = 1;
  int workers = 1;
  bool sim = false;
  sched_clock::time_point start_tp;

  std::mutex mu;
  std::condition_variable cv;       ///< workers: dispatchable work arrived
  std::condition_variable drain_cv; ///< drain(): outstanding hit zero
  bool stop = false;
  std::size_t outstanding = 0; ///< submitted jobs not yet terminal
  std::size_t pending = 0;     ///< ready + deferred (max_pending gate)
  std::size_t running = 0;
  std::uint64_t inflight_hints = 0; ///< Σ bytes_hint, admission -> terminal
  double vclock = 0.0;              ///< global virtual clock (WFQ)
  std::vector<std::shared_ptr<tenant_state>> tenants;
  std::deque<std::shared_ptr<job_state>> deferred;
  std::vector<slot_stat> slot_stats;
  std::vector<std::thread> threads;
  std::uint64_t pressure_token = 0;
};

namespace {

bool admissible_locked(scheduler_state& s, std::uint64_t hint) {
  if (s.opt.mem_budget_bytes == 0) {
    return true;
  }
  // Lock order: the scheduler mutex is always taken before the pool's
  // (the pool fires its pressure callbacks with no lock held).
  const std::uint64_t used =
      mem::live_bytes() + mem::cached_bytes() + s.inflight_hints;
  return used + hint <= s.opt.mem_budget_bytes;
}

/// Moves one admitted job onto its tenant's ready deque.  An idle tenant
/// re-activating is clamped up to the global virtual clock so banked idle
/// time cannot starve the others.
void enqueue_ready_locked(scheduler_state& s,
                          const std::shared_ptr<job_state>& j) {
  tenant_state& t = *j->owner;
  if (t.ready.empty()) {
    t.vtime = std::max(t.vtime, s.vclock);
  }
  t.ready.push_back(j);
  s.inflight_hints += j->bytes_hint;
  ++t.admitted;
}

/// Re-runs admission over the deferred FIFO head-first; stops at the first
/// job that still does not fit (order preserved so a large job cannot be
/// starved by small ones slipping past it).  Returns how many were
/// admitted.
std::size_t readmit_locked(scheduler_state& s) {
  std::size_t n = 0;
  while (!s.deferred.empty() &&
         admissible_locked(s, s.deferred.front()->bytes_hint)) {
    std::shared_ptr<job_state> j = s.deferred.front();
    s.deferred.pop_front();
    ++j->owner->deferred_admitted;
    j->set_status(job_status::queued);
    enqueue_ready_locked(s, j);
    ++n;
  }
  return n;
}

/// Last-resort progress guarantee: nothing ready, nothing running, jobs
/// deferred.  Trim the pool down to the budget and admit the head even if
/// the budget is still formally exceeded — the allocator's own
/// trim-and-retry is the backstop below this point.
void force_admit_locked(scheduler_state& s) {
  if (s.deferred.empty()) {
    return;
  }
  mem::trim(s.opt.mem_budget_bytes);
  if (readmit_locked(s) > 0) {
    return;
  }
  std::shared_ptr<job_state> j = s.deferred.front();
  s.deferred.pop_front();
  ++j->owner->deferred_admitted;
  j->set_status(job_status::queued);
  enqueue_ready_locked(s, j);
}

bool any_ready_locked(const scheduler_state& s) {
  for (const auto& t : s.tenants) {
    if (!t->ready.empty()) {
      return true;
    }
  }
  return false;
}

bool dispatchable_locked(const scheduler_state& s) {
  return any_ready_locked(s) ||
         (s.running == 0 && !s.deferred.empty());
}

/// Strict priority, then smallest virtual time, then tenant order.
std::shared_ptr<job_state> pick_locked(scheduler_state& s) {
  tenant_state* best = nullptr;
  for (const auto& t : s.tenants) {
    if (t->ready.empty()) {
      continue;
    }
    if (best == nullptr || t->prio > best->prio ||
        (t->prio == best->prio && t->vtime < best->vtime)) {
      best = t.get();
    }
  }
  if (best == nullptr) {
    return nullptr;
  }
  std::shared_ptr<job_state> j = best->ready.front();
  best->ready.pop_front();
  --s.pending;
  s.vclock = std::max(s.vclock, best->vtime);
  return j;
}

void worker_loop(scheduler_state& s, int worker_index) {
  // Each worker owns its slot queue; the single simulated-backend runner
  // owns ALL slot queues and binds each job to its tenant's slot, so
  // independent tenants charge to distinct sim streams.
  std::vector<jacc::queue> queues;
  if (s.sim) {
    queues.reserve(static_cast<std::size_t>(s.slots));
    for (int k = 0; k < s.slots; ++k) {
      queues.emplace_back("serve.s" + std::to_string(k));
    }
  } else {
    queues.emplace_back("serve.s" + std::to_string(worker_index));
  }

  for (;;) {
    std::shared_ptr<job_state> j;
    int slot = worker_index;
    {
      std::unique_lock lock(s.mu);
      s.cv.wait(lock, [&] { return s.stop || dispatchable_locked(s); });
      if (!any_ready_locked(s)) {
        if (s.running == 0 && !s.deferred.empty()) {
          force_admit_locked(s);
        }
        if (!any_ready_locked(s)) {
          if (s.stop) {
            return;
          }
          continue;
        }
      }
      j = pick_locked(s);
      ++s.running;
      if (s.sim) {
        slot = static_cast<int>(j->owner->index %
                                static_cast<std::size_t>(s.slots));
      }
      const double waited = us_between(j->submit_tp, sched_clock::now());
      j->owner->wait_samples.push_back(waited);
      {
        const std::lock_guard jlock(j->mu);
        j->status = job_status::running;
        j->wait_us = waited;
      }
    }

    jacc::queue& q = queues[s.sim ? static_cast<std::size_t>(slot) : 0];
    const auto t0 = sched_clock::now();
    std::string error;
    bool failed = false;
    try {
      j->work(q);
      q.synchronize();
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    } catch (...) {
      failed = true;
      error = "unknown exception";
    }
    const double elapsed = us_between(t0, sched_clock::now());

    // Publish the terminal status before touching the drain accounting:
    // once `outstanding` hits zero a drain()er may return and read
    // handle statuses, so the flip must already be visible.
    j->finish(failed ? job_status::failed : job_status::done,
              std::move(error));

    {
      const std::lock_guard lock(s.mu);
      tenant_state& t = *j->owner;
      t.vtime += elapsed / std::max(t.weight, 1e-9);
      s.vclock = std::max(s.vclock, t.vtime);
      t.busy_us += elapsed;
      if (failed) {
        ++t.failed;
      } else {
        ++t.completed;
      }
      slot_stat& ss = s.slot_stats[static_cast<std::size_t>(slot)];
      ++ss.jobs;
      ss.busy_us += elapsed;
      JACCX_ASSERT(s.running > 0 && s.outstanding > 0);
      --s.running;
      --s.outstanding;
      JACCX_ASSERT(s.inflight_hints >= j->bytes_hint);
      s.inflight_hints -= j->bytes_hint;
      readmit_locked(s);
    }
    s.cv.notify_all();
    s.drain_cv.notify_all();
  }
}

prof::serve_stats snapshot(scheduler_state& s) {
  prof::serve_stats out;
  const std::lock_guard lock(s.mu);
  out.uptime_us = us_between(s.start_tp, sched_clock::now());
  out.tenants.reserve(s.tenants.size());
  for (const auto& t : s.tenants) {
    prof::serve_tenant_stats row;
    row.name = t->name;
    row.weight = t->weight;
    row.priority = static_cast<int>(t->prio);
    row.submitted = t->submitted;
    row.admitted = t->admitted;
    row.deferred = t->deferred;
    row.deferred_admitted = t->deferred_admitted;
    row.rejected = t->rejected;
    row.completed = t->completed;
    row.failed = t->failed;
    row.busy_us = t->busy_us;
    row.wait_p50_us = percentile(t->wait_samples, 50.0);
    row.wait_p99_us = percentile(t->wait_samples, 99.0);
    out.tenants.push_back(std::move(row));
  }
  out.slots.reserve(s.slot_stats.size());
  for (std::size_t k = 0; k < s.slot_stats.size(); ++k) {
    prof::serve_slot_stats row;
    row.slot = static_cast<int>(k);
    row.jobs = s.slot_stats[k].jobs;
    row.busy_us = s.slot_stats[k].busy_us;
    out.slots.push_back(row);
  }
  return out;
}

} // namespace
} // namespace detail

// --- job_handle -------------------------------------------------------------

job_status job_handle::status() const {
  JACCX_ASSERT(s_ != nullptr);
  const std::lock_guard lock(s_->mu);
  return s_->status;
}

void job_handle::wait() const {
  JACCX_ASSERT(s_ != nullptr);
  std::unique_lock lock(s_->mu);
  s_->cv.wait(lock, [&] {
    return s_->status == job_status::done ||
           s_->status == job_status::failed ||
           s_->status == job_status::rejected;
  });
}

bool job_handle::terminal() const {
  const job_status st = status();
  return st == job_status::done || st == job_status::failed ||
         st == job_status::rejected;
}

double job_handle::queue_wait_us() const {
  JACCX_ASSERT(s_ != nullptr);
  const std::lock_guard lock(s_->mu);
  return s_->wait_us;
}

bool job_handle::was_deferred() const {
  JACCX_ASSERT(s_ != nullptr);
  const std::lock_guard lock(s_->mu);
  return s_->deferred_once;
}

std::string job_handle::error() const {
  JACCX_ASSERT(s_ != nullptr);
  const std::lock_guard lock(s_->mu);
  return s_->error;
}

// --- tenant -----------------------------------------------------------------

const std::string& tenant::name() const {
  JACCX_ASSERT(s_ != nullptr);
  return s_->name;
}

double tenant::weight() const {
  JACCX_ASSERT(s_ != nullptr);
  return s_->weight;
}

priority tenant::prio() const {
  JACCX_ASSERT(s_ != nullptr);
  return s_->prio;
}

// --- scheduler --------------------------------------------------------------

scheduler::scheduler(options opt) : s_(std::make_shared<detail::scheduler_state>()) {
  detail::scheduler_state& s = *s_;
  s.opt = opt;
  if (s.opt.mem_budget_bytes == 0) {
    s.opt.mem_budget_bytes = static_cast<std::uint64_t>(
        detail::env_long_or("JACC_SERVE_MEM_MB", 0)) << 20;
  }
  if (s.opt.max_pending == 0) {
    s.opt.max_pending = static_cast<std::size_t>(
        detail::env_long_or("JACC_SERVE_MAX_PENDING", 0));
  }

  const jacc::backend b = jacc::current_backend();
  s.sim = jacc::backend_device(b) != nullptr;
  int lanes = 1;
  if (b == jacc::backend::threads) {
    lanes = std::max(1, jacc::queue_lane_count());
  }
  int slots = opt.slots;
  if (slots <= 0) {
    slots = static_cast<int>(detail::env_long_or("JACC_SERVE_SLOTS", 0));
  }
  if (slots <= 0) {
    slots = b == jacc::backend::threads ? lanes : 4;
  }
  s.slots = std::clamp(slots, 1, 64);
  if (s.sim) {
    // Simulated devices execute functionally at enqueue and are not
    // thread-safe: one runner, per-tenant slot streams (see serve.hpp).
    s.workers = 1;
  } else if (b == jacc::backend::threads) {
    // Real concurrency only exists across dispatcher lanes; with one lane
    // queued work degrades to synchronous calls on the shared default
    // pool, which admits one runner at a time.
    s.workers = std::max(1, std::min(s.slots, lanes));
  } else {
    s.workers = s.slots;
  }
  s.slot_stats.resize(static_cast<std::size_t>(s.slots));
  s.start_tp = detail::sched_clock::now();

  std::weak_ptr<detail::scheduler_state> w = s_;
  s.pressure_token = mem::add_pressure_callback([w] {
    if (const auto p = w.lock()) {
      std::size_t admitted = 0;
      {
        const std::lock_guard lock(p->mu);
        admitted = detail::readmit_locked(*p);
      }
      if (admitted > 0) {
        p->cv.notify_all();
      }
    }
  });
  prof::register_serve_source([w]() -> prof::serve_stats {
    if (const auto p = w.lock()) {
      return detail::snapshot(*p);
    }
    return {};
  });

  s.threads.reserve(static_cast<std::size_t>(s.workers));
  for (int k = 0; k < s.workers; ++k) {
    s.threads.emplace_back([state = s_.get(), k] {
      detail::worker_loop(*state, k);
    });
  }
}

scheduler::~scheduler() {
  drain();
  mem::remove_pressure_callback(s_->pressure_token);
  prof::register_serve_source({});
  {
    const std::lock_guard lock(s_->mu);
    s_->stop = true;
  }
  s_->cv.notify_all();
  for (std::thread& t : s_->threads) {
    t.join();
  }
}

tenant scheduler::open_tenant(std::string name, double weight, priority p) {
  if (!(weight > 0.0)) {
    jaccx::throw_usage_error("serve: tenant weight must be > 0");
  }
  auto t = std::make_shared<detail::tenant_state>();
  t->name = std::move(name);
  t->weight = weight;
  t->prio = p;
  const std::lock_guard lock(s_->mu);
  t->index = s_->tenants.size();
  t->vtime = s_->vclock;
  s_->tenants.push_back(t);
  tenant out;
  out.s_ = std::move(t);
  return out;
}

job_handle scheduler::submit(const tenant& t,
                             std::function<void(jacc::queue&)> work,
                             std::uint64_t bytes_hint) {
  JACCX_ASSERT(t.s_ != nullptr);
  auto j = std::make_shared<detail::job_state>();
  j->owner = t.s_;
  j->work = std::move(work);
  j->bytes_hint = bytes_hint;
  j->submit_tp = detail::sched_clock::now();

  job_handle h;
  h.s_ = j;
  bool notify = false;
  {
    const std::lock_guard lock(s_->mu);
    detail::tenant_state& ts = *t.s_;
    ++ts.submitted;
    if (s_->stop ||
        (s_->opt.max_pending != 0 && s_->pending >= s_->opt.max_pending)) {
      ++ts.rejected;
      j->status = job_status::rejected;
      return h;
    }
    ++s_->outstanding;
    ++s_->pending;
    if (detail::admissible_locked(*s_, bytes_hint)) {
      detail::enqueue_ready_locked(*s_, j);
      notify = true;
    } else {
      j->status = job_status::deferred;
      j->deferred_once = true;
      ++ts.deferred;
      s_->deferred.push_back(j);
      // A worker may still need to wake: if nothing is running it must
      // apply the force-admission progress guarantee.
      notify = s_->running == 0;
    }
  }
  if (notify) {
    s_->cv.notify_all();
  }
  return h;
}

job_handle scheduler::submit(const tenant& t, jacc::graph g,
                             std::uint64_t bytes_hint) {
  return submit(
      t,
      [g = std::move(g)](jacc::queue& q) mutable { g.launch(q).wait(); },
      bytes_hint);
}

void scheduler::drain() {
  std::unique_lock lock(s_->mu);
  s_->drain_cv.wait(lock, [&] { return s_->outstanding == 0; });
}

prof::serve_stats scheduler::stats() const { return detail::snapshot(*s_); }

int scheduler::slots() const { return s_->slots; }

int scheduler::workers() const { return s_->workers; }

} // namespace jaccx::serve
