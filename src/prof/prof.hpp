// jaccx::prof — a KokkosP-style profiling layer for the JACC front end.
//
// The paper's central claim (Sec. V) is that the portable layer adds
// near-zero overhead over device-specific code.  This subsystem makes that
// claim observable from the inside without recompiling user code, the way
// Kokkos Tools does for Kokkos:
//
//   * a hook registry (begin/end_parallel_for, begin/end_parallel_reduce,
//     alloc/free/copy, region_push/pop) invoked from the core dispatch and
//     jacc::array, carrying the launch hints (name, flops, bytes);
//   * per-thread lock-free event rings (see ring.hpp) plus fork/join pool
//     counters (busy vs spin vs park time, chunks claimed);
//   * an aggregator producing the per-kernel stats table printed at
//     jacc::finalize() under JACC_PROFILE=summary, and a unified
//     Chrome-trace JSON (JACC_PROFILE=trace + JACC_TRACE_FILE=...) merging
//     real wall-clock events with every simulated device's timeline so one
//     Perfetto view shows both worlds.
//
// Cost contract: everything is compiled in but branch-gated.  With
// JACC_PROFILE unset and no tool registered, an instrumented site costs one
// relaxed atomic load and a predictable not-taken branch — no allocation,
// no time read (verified by bench/abl_dispatch_overhead and
// tests/prof_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "prof/ring.hpp"

namespace jaccx::prof {

// --- mode / gating ----------------------------------------------------------

/// Bit flags resolved from JACC_PROFILE (or set_mode).  `collect` fills the
/// event rings; `summary`, `trace`, and `roofline` imply collect and choose
/// what finalize() does with the data.
inline constexpr unsigned mode_off = 0u;
inline constexpr unsigned mode_collect = 1u;
inline constexpr unsigned mode_summary = 2u;
inline constexpr unsigned mode_trace = 4u;
inline constexpr unsigned mode_roofline = 8u;

/// Parses a JACC_PROFILE spec: "off", "summary", "trace", "roofline",
/// "collect", or a comma list ("summary,trace").  Returns nullopt for
/// unknown values.
std::optional<unsigned> parse_mode_spec(std::string_view spec);

namespace detail {
extern std::atomic<unsigned> g_mode;
extern std::atomic<bool> g_enabled;
} // namespace detail

/// True when any instrumentation consumer exists (collection mode on or an
/// external tool registered).  This is THE hot-path gate: one relaxed load.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline unsigned mode() {
  return detail::g_mode.load(std::memory_order_relaxed);
}
inline bool collecting() { return (mode() & mode_collect) != 0; }
inline bool trace_enabled() { return (mode() & mode_trace) != 0; }
inline bool roofline_enabled() { return (mode() & mode_roofline) != 0; }

/// Installs a mode programmatically (tests, benches).  `trace_path` is only
/// consulted when `bits` includes mode_trace; empty keeps the current path.
void set_mode(unsigned bits, std::string_view trace_path = {});

/// ORs mode_collect into the current mode (benches force collection so the
/// per-kernel JSON is populated regardless of JACC_PROFILE).
void enable_collection();

std::string trace_path();

// --- tool hook registry (KokkosP analogue) ----------------------------------

/// Metadata handed to kernel hooks: the dispatch-site hints plus the
/// resolved backend and the iteration count.
struct kernel_info {
  std::string_view name;
  construct kind = construct::parallel_for;
  std::uint64_t indices = 0;
  double flops_per_index = 0.0;
  double bytes_per_index = 0.0;
  std::string_view backend;
};

/// External tool callbacks.  Null members are skipped.  Mirrors KokkosP:
/// begin hooks receive a kernel id that the matching end hook repeats.
struct callbacks {
  void* user = nullptr;
  void (*begin_parallel_for)(void* user, const kernel_info&,
                             std::uint64_t kid) = nullptr;
  void (*end_parallel_for)(void* user, std::uint64_t kid) = nullptr;
  void (*begin_parallel_reduce)(void* user, const kernel_info&,
                                std::uint64_t kid) = nullptr;
  void (*end_parallel_reduce)(void* user, std::uint64_t kid) = nullptr;
  void (*alloc)(void* user, std::string_view name,
                std::uint64_t bytes) = nullptr;
  void (*free_)(void* user, std::uint64_t bytes) = nullptr;
  void (*copy)(void* user, std::string_view name, bool to_device,
               std::uint64_t bytes) = nullptr;
  void (*region_push)(void* user, std::string_view name) = nullptr;
  void (*region_pop)(void* user) = nullptr;
};

/// Registers a tool; returns its id.  Registration flips enabled() on.
std::uint64_t register_callbacks(const callbacks& cb);
void unregister_callbacks(std::uint64_t id);

// --- instrumentation entry points (cold paths, called only when enabled) ---

std::uint64_t now_ns();

// `cold` keeps the never-taken call blocks out of the dispatch hot path's
// register allocation and code layout (part of the disabled-cost contract).
[[gnu::cold]] std::uint64_t begin_kernel(const kernel_info& info);
[[gnu::cold]] void end_kernel(std::uint64_t kid, construct kind);

void region_push(std::string_view name);
void region_pop();

void note_alloc(std::string_view name, std::uint64_t bytes);
void note_free(std::uint64_t bytes);
void note_copy(std::string_view name, bool to_device, std::uint64_t bytes);

/// Names the calling thread's event ring in trace output ("pool.worker.3").
void label_this_thread(std::string_view label);

/// Fork/join pool worker slice (busy with chunk count, or park).
void emit_pool_slice(construct kind, unsigned worker, std::uint64_t t0_ns,
                     std::uint64_t t1_ns, std::uint64_t chunks);

/// Tee for one simulated-timeline event; called by sim::timeline::record
/// when trace or roofline mode is on so bench-time logging toggles and
/// clock resets cannot lose the events the user asked to export (roofline
/// needs the modeled DRAM/flop tallies at simulated time — host wall-clock
/// rates are meaningless for the sim backends).
void note_sim_event(std::string_view device_label, std::string_view name,
                    std::string_view category, double ts_us, double dur_us,
                    std::uint64_t dram_bytes, std::uint64_t cache_bytes,
                    std::uint64_t flops, std::uint64_t indices);

// --- async-substrate instrumentation (queues, graphs, futures, dist) --------

/// Mints a process-unique flow id linking one queue submission to the lane
/// task that executes it (Chrome-trace flow events).
std::uint64_t next_flow_id();

/// Instant on the submitting thread: work entered `queue_id`'s deque (or
/// degraded to an inline run).  `flow_id` 0 means no matching task span.
void note_queue_submit(std::uint64_t queue_id, std::uint64_t flow_id);

/// Span on the lane dispatcher thread: one task of `queue_id` executed on
/// `lane` between t0 and t1.
void note_queue_task(std::uint64_t queue_id, std::uint64_t flow_id,
                     unsigned lane, std::uint64_t t0_ns, std::uint64_t t1_ns);

/// Span: one graph::launch replay of `nodes` nodes (`kernels` of them
/// kernel nodes).
void note_graph_replay(std::uint64_t nodes, std::uint64_t kernels,
                       std::uint64_t t0_ns, std::uint64_t t1_ns);

/// Span: the host blocked in future::get between t0 and t1 (t0 == t1 for a
/// ready future).  Also folded into the wait-latency histogram.
void note_future_wait(std::uint64_t t0_ns, std::uint64_t t1_ns);

/// Instant: `bytes` of dist payload charged to the wire under `name`
/// (per charged transfer; an exchange's two directions share one charge).
void note_comm(std::string_view name, std::uint64_t bytes);

/// Future-wait latency histogram: bucket 0 counts waits under 1 us, bucket
/// k >= 1 counts waits in [2^(k-1), 2^k) us; the last bucket is open-ended.
inline constexpr std::size_t future_wait_buckets = 20;
std::vector<std::uint64_t> future_wait_histogram();

// --- RAII helpers used by the dispatch layer --------------------------------

/// Brackets one parallel_for / parallel_reduce.  Disabled cost: one relaxed
/// load in the constructor and a predictable branch in each of ctor/dtor.
class kernel_scope {
public:
  kernel_scope(construct kind, std::string_view name, std::uint64_t indices,
               double flops_per_index, double bytes_per_index,
               std::string_view backend)
      : armed_(enabled()), kind_(kind) {
    if (armed_) [[unlikely]] {
      kid_ = begin_kernel(kernel_info{name, kind, indices, flops_per_index,
                                      bytes_per_index, backend});
    }
  }
  ~kernel_scope() {
    if (armed_) [[unlikely]] {
      end_kernel(kid_, kind_);
    }
  }
  kernel_scope(const kernel_scope&) = delete;
  kernel_scope& operator=(const kernel_scope&) = delete;

private:
  bool armed_;
  construct kind_;
  std::uint64_t kid_; // only written/read when armed_; no eager zeroing
};

/// Brackets one graph::launch replay; same disabled-cost shape as
/// kernel_scope (one relaxed load + predictable branch per end).
class graph_replay_scope {
public:
  graph_replay_scope(std::uint64_t nodes, std::uint64_t kernels)
      : armed_(enabled()), nodes_(nodes), kernels_(kernels) {
    if (armed_) [[unlikely]] {
      t0_ = now_ns();
    }
  }
  ~graph_replay_scope() {
    if (armed_) [[unlikely]] {
      note_graph_replay(nodes_, kernels_, t0_, now_ns());
    }
  }
  graph_replay_scope(const graph_replay_scope&) = delete;
  graph_replay_scope& operator=(const graph_replay_scope&) = delete;

private:
  bool armed_;
  std::uint64_t nodes_;
  std::uint64_t kernels_;
  std::uint64_t t0_; // only written/read when armed_
};

/// User-facing named region (nests).
class scoped_region {
public:
  explicit scoped_region(std::string_view name) : armed_(enabled()) {
    if (armed_) [[unlikely]] {
      region_push(name);
    }
  }
  ~scoped_region() {
    if (armed_) [[unlikely]] {
      region_pop();
    }
  }
  scoped_region(const scoped_region&) = delete;
  scoped_region& operator=(const scoped_region&) = delete;

private:
  bool armed_;
};

// --- pool statistics --------------------------------------------------------

struct pool_worker_stat {
  unsigned worker = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t spin_ns = 0;
  std::uint64_t park_ns = 0;
  std::uint64_t parks = 0;
  std::uint64_t chunks = 0;
  std::uint64_t regions = 0;
};

struct pool_stats {
  std::string label = "pool"; ///< "pool" (default) or "queue.lane<N>"
  unsigned width = 0;
  std::string schedule;
  std::uint64_t regions = 0; ///< barrier regions run (sub-width ones inline)
  std::vector<pool_worker_stat> workers;
};

/// A thread pool registers a stats fetcher at construction and unregisters
/// at destruction; unregistering freezes a final snapshot so a pool that
/// dies before finalize() still appears in the report.
void register_pool(const void* owner, std::function<pool_stats()> fetch);
void unregister_pool(const void* owner);

// --- memory-pool statistics -------------------------------------------------

/// Counters for one jaccx::mem caching pool: one row per backing store
/// ("host" plus each simulated device by model name).  Hit/miss count
/// free-list lookups; bytes_cached is parked on free lists right now;
/// high_water_bytes is the peak of live + cached + workspace bytes.
struct mem_pool_stats {
  std::string label;
  std::string mode; ///< resolved JACC_MEM_POOL mode ("bucket" / "none")
  std::uint64_t hits = 0;
  std::uint64_t stalls = 0; ///< hits reusing another queue's released block
  std::uint64_t misses = 0;
  std::uint64_t bytes_cached = 0;
  std::uint64_t bytes_live = 0;
  std::uint64_t high_water_bytes = 0;
  std::uint64_t workspace_bytes = 0; ///< persistent reduction workspaces
  std::uint64_t live_blocks = 0;
};

/// The mem subsystem registers one process-wide fetcher (an empty function
/// clears it); prof stays independent of the allocator layer the same way
/// register_pool keeps it independent of the thread pool.
void register_mem_pool_source(std::function<std::vector<mem_pool_stats>()> fetch);

/// Current mem-pool rows (fetched now, outside the profiler lock); empty
/// when no source is registered or no pool has been touched.
std::vector<mem_pool_stats> aggregate_mem_pools();

// --- queue statistics -------------------------------------------------------

/// Counters for one jacc::queue: operations enqueued, async lane traffic,
/// and the furthest simulated stream clock the queue reached.
struct queue_stats {
  std::uint64_t id = 0;
  std::string label; ///< "default" or "q<id>"
  std::uint64_t launches = 0;    ///< parallel_for / parallel_reduce enqueues
  std::uint64_t copies = 0;      ///< queued jacc::array copies
  std::uint64_t async_tasks = 0; ///< operations routed through a threads lane
  std::uint64_t waits = 0;       ///< queue.wait(event) dependencies
  std::uint64_t syncs = 0;       ///< queue.synchronize() calls
  int lane = -1;                 ///< threads lane the queue is pinned to
  double sim_us = 0.0;           ///< furthest simulated stream clock reached
};

/// The queue subsystem registers one process-wide fetcher, mirroring
/// register_mem_pool_source (an empty function clears it).
void register_queue_source(std::function<std::vector<queue_stats>()> fetch);

/// Current per-queue rows (fetched now, outside the profiler lock); empty
/// when no source is registered or no queue has done work.
std::vector<queue_stats> aggregate_queues();

// --- serving statistics -----------------------------------------------------

/// Per-tenant counters from a jaccx::serve scheduler (docs/SERVING.md):
/// admission outcomes plus queue-wait latency quantiles measured from
/// submission to the instant a slot picks the job up.
struct serve_tenant_stats {
  std::string name;
  double weight = 1.0;
  int priority = 1; ///< serve::priority as an int (0 low .. 2 high)
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t deferred = 0;          ///< parked by admission control
  std::uint64_t deferred_admitted = 0; ///< deferred, later admitted
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0; ///< job body threw
  double wait_p50_us = 0.0;
  double wait_p99_us = 0.0;
  double busy_us = 0.0; ///< Σ job execution wall time
};

/// Utilization of one scheduler slot (its queue / lane share).
struct serve_slot_stats {
  int slot = 0;
  std::uint64_t jobs = 0;
  double busy_us = 0.0;
};

/// One scheduler's aggregate view; uptime_us normalizes slot busy time
/// into utilization.
struct serve_stats {
  std::vector<serve_tenant_stats> tenants;
  std::vector<serve_slot_stats> slots;
  double uptime_us = 0.0;
};

/// The serve subsystem registers one process-wide fetcher, mirroring
/// register_mem_pool_source (an empty function clears it).
void register_serve_source(std::function<serve_stats()> fetch);

/// Current serving rows (fetched now, outside the profiler lock); empty
/// when no scheduler is live.
serve_stats aggregate_serve();

// --- roofline ---------------------------------------------------------------

/// Roofline ceilings for one execution target: peak DRAM bandwidth and peak
/// double-precision rate.
struct roof_rates {
  double gbps = 0.0;
  double gflops = 0.0;
};

/// The sim layer registers a resolver mapping a device-model name
/// ("a100"...) to its peak rates (an empty function clears it); prof stays
/// independent of the model tables the same way register_pool keeps it
/// independent of the thread pool.
void register_roof_source(
    std::function<std::optional<roof_rates>(std::string_view)> fetch);

/// Peak rates for one device-model name via the registered source; nullopt
/// for unknown names or when no source is registered.
std::optional<roof_rates> model_roof(std::string_view model);

/// The host (serial/threads) ceilings used for roofline placement:
/// JACC_HOST_ROOF="<GB/s>,<GF/s>" when set, else a conservative configured
/// estimate (DRAM 16 GB/s, 2 GF/s per hardware thread).  set_host_roof
/// overrides programmatically (benches that measured a STREAM figure).
roof_rates host_roof();
void set_host_roof(roof_rates r);

/// One (kernel, target) roofline placement.  Host targets ("serial",
/// "threads") are built from the ring aggregates' launch hints and real
/// wall-clock; simulated targets (model names) from the teed sim events'
/// modeled DRAM/flop tallies at simulated time.
struct roofline_stats {
  std::string name;       ///< kernel name
  std::string target;     ///< "serial", "threads", or a sim model name
  bool simulated = false;
  std::uint64_t count = 0;
  double time_us = 0.0;
  double flops = 0.0;
  double bytes = 0.0;              ///< DRAM bytes (hinted or modeled)
  double intensity = 0.0;          ///< arithmetic intensity, flop / DRAM byte
  roof_rates peak;                 ///< ceilings for `target`
  double ridge = 0.0;              ///< peak.gflops / peak.gbps
  double achieved_gbps = 0.0;
  double achieved_gflops = 0.0;
  double attainable_gflops = 0.0;  ///< min(peak.gflops, intensity*peak.gbps)
  double pct_of_roof = 0.0;        ///< achieved as % of its roof
  bool memory_bound = true;        ///< intensity < ridge
};

/// Roofline rows for everything recorded so far, sorted by target then
/// descending time.  Unhinted host kernels (no flops/bytes) are dropped.
std::vector<roofline_stats> aggregate_roofline();

/// The JACC_PROFILE=roofline report.
std::string roofline_text();

// --- achieved-rate feedback -------------------------------------------------

/// Consumer of achieved-rate observations: (target, kernel, GB/s, GF/s).
/// Targets are execution-target names as roofline rows use them ("serial",
/// "threads", a sim model "a100") plus per-instance forms ("a100#2") from
/// the sharding layer.  auto_backend registers the process-wide consumer
/// (install_rate_feedback); an empty function clears it.  prof stays
/// independent of the selection layer the same way register_mem_pool_source
/// keeps it independent of the allocator.
using rate_sink = std::function<void(
    std::string_view target, std::string_view kernel, double gbps,
    double gflops)>;
void register_rate_sink(rate_sink sink);

/// Forwards one observation to the registered sink (no-op without one).
/// jacc::device_set calls this after every per-shard launch; nothing is
/// recorded in the profiler itself.
void note_rate(std::string_view target, std::string_view kernel, double gbps,
               double gflops);

/// Pushes every current roofline row's achieved rates into the sink
/// (target = the row's target).  finalize() calls this, so any profiled run
/// feeds the measured placement policies without bench cooperation.
void publish_roofline_feedback();

// --- async-substrate aggregation --------------------------------------------

struct lane_util {
  std::string label; ///< "queue.task.lane<N>"
  std::uint64_t tasks = 0;
  double busy_us = 0.0;
};

struct comm_stat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

/// Folded async-substrate counters (exact across ring overflow).
struct async_stats {
  std::uint64_t queue_submits = 0;
  std::uint64_t queue_tasks = 0;
  double queue_task_us = 0.0;
  std::vector<lane_util> lanes;
  std::uint64_t graph_replays = 0;
  std::uint64_t graph_nodes = 0;   ///< Σ nodes over all replays
  std::uint64_t graph_kernels = 0; ///< Σ kernel nodes over all replays
  double graph_replay_us = 0.0;
  std::uint64_t future_waits = 0;
  double future_wait_us = 0.0;
  std::vector<comm_stat> comms;
};

async_stats aggregate_async();

// --- aggregation / output ---------------------------------------------------

struct kernel_stats {
  std::string name;
  construct kind = construct::parallel_for;
  std::string backend;
  std::uint64_t count = 0;
  std::uint64_t units = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
  double gflops_per_s = 0.0; ///< from the flops_per_index hints; 0 if unhinted
  double gbytes_per_s = 0.0; ///< from the bytes_per_index hints; 0 if unhinted
};

struct memory_stats {
  std::uint64_t allocs = 0, alloc_bytes = 0;
  std::uint64_t frees = 0, free_bytes = 0;
  std::uint64_t h2d_copies = 0, h2d_bytes = 0;
  std::uint64_t d2h_copies = 0, d2h_bytes = 0;
};

/// Per-kernel/region rows folded across every thread ring (exact even past
/// ring capacity), sorted by total time descending.
std::vector<kernel_stats> aggregate_kernels();
memory_stats aggregate_memory();
/// Live pools (fetched now) plus frozen snapshots, zero-region ones dropped.
std::vector<pool_stats> aggregate_pools();

/// The JACC_PROFILE=summary report.
std::string summary_text();

/// The unified Chrome-trace JSON: host rings as pid 1 (one tid per thread),
/// each simulated device as its own pid, Perfetto/about:tracing loadable.
/// Queue submissions and their lane tasks are linked with flow events.
std::string chrome_trace_json();

/// Expands "%p" in a JACC_TRACE_FILE path to the current pid, so parallel
/// ctest invocations with trace mode on don't clobber each other's JSON.
std::string expand_trace_path(std::string_view path);

/// Acts on the current mode: prints the summary (stdout) and/or writes the
/// trace file.  Idempotent until new events arrive; called by
/// jacc::finalize() and from an atexit hook when JACC_PROFILE requested
/// output, so programs that never call finalize still get their report.
void finalize();

/// Test support: drops all collected events, sim tees, and frozen pool
/// snapshots.  Must be called while no kernels are in flight.
void reset();

/// Test support: number of thread rings ever created (the disabled path
/// must never create one) and events evicted from trace windows.
std::size_t debug_ring_count();
std::uint64_t debug_trace_dropped();

} // namespace jaccx::prof
