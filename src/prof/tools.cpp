// dlopen loader adapting jaccp_* tool libraries onto the hook registry.
#include "prof/tools.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#ifndef _WIN32
#include <dlfcn.h>
#endif

#include "prof/prof.hpp"
#include "support/env.hpp"

namespace jaccx::prof {

namespace {

/// One loaded tool: the dlopen handle, its resolved symbols, and the
/// registry id its adapters are registered under.  Instances are leaked on
/// purpose — a tool's code may be running on another thread during process
/// teardown, and the handle must outlive every possible callback.
struct tool_lib {
  std::string path;
  void* handle = nullptr;
  std::uint64_t cb_id = 0;
  bool active = false;

  void (*init)(int, std::uint64_t, std::uint32_t, void*) = nullptr;
  void (*fini)() = nullptr;
  void (*begin_for)(const char*, std::uint32_t, std::uint64_t*) = nullptr;
  void (*end_for)(std::uint64_t) = nullptr;
  void (*begin_reduce)(const char*, std::uint32_t, std::uint64_t*) = nullptr;
  void (*end_reduce)(std::uint64_t) = nullptr;
  void (*alloc)(const char*, std::uint64_t) = nullptr;
  void (*dealloc)(std::uint64_t) = nullptr;
  void (*copy)(const char*, int, std::uint64_t) = nullptr;
  void (*push)(const char*) = nullptr;
  void (*pop)() = nullptr;
};

std::mutex g_mu;
std::vector<tool_lib*> g_tools;
int g_load_seq = 0;
bool g_env_parsed = false;

// --- adapters: registry callbacks → C ABI -----------------------------------
// Hook names arrive as string_views into interned storage; the C ABI wants
// NUL-terminated strings, so adapters copy.  This only runs when a tool is
// loaded — the disabled path never reaches here.

void a_begin_for(void* user, const kernel_info& info, std::uint64_t kid) {
  auto* t = static_cast<tool_lib*>(user);
  const std::string name(info.name);
  std::uint64_t k = kid;
  t->begin_for(name.c_str(), 0, &k);
}

void a_end_for(void* user, std::uint64_t kid) {
  static_cast<tool_lib*>(user)->end_for(kid);
}

void a_begin_reduce(void* user, const kernel_info& info, std::uint64_t kid) {
  auto* t = static_cast<tool_lib*>(user);
  const std::string name(info.name);
  std::uint64_t k = kid;
  t->begin_reduce(name.c_str(), 0, &k);
}

void a_end_reduce(void* user, std::uint64_t kid) {
  static_cast<tool_lib*>(user)->end_reduce(kid);
}

void a_alloc(void* user, std::string_view name, std::uint64_t bytes) {
  const std::string n(name);
  static_cast<tool_lib*>(user)->alloc(n.c_str(), bytes);
}

void a_free(void* user, std::uint64_t bytes) {
  static_cast<tool_lib*>(user)->dealloc(bytes);
}

void a_copy(void* user, std::string_view name, bool to_device,
            std::uint64_t bytes) {
  const std::string n(name);
  static_cast<tool_lib*>(user)->copy(n.c_str(), to_device ? 1 : 0, bytes);
}

void a_push(void* user, std::string_view name) {
  const std::string n(name);
  static_cast<tool_lib*>(user)->push(n.c_str());
}

void a_pop(void* user) { static_cast<tool_lib*>(user)->pop(); }

} // namespace

std::uint64_t load_tool_library(const std::string& path, std::string* error) {
#ifdef _WIN32
  (void)path;
  if (error != nullptr) {
    *error = "tool libraries are not supported on this platform";
  }
  return 0;
#else
  void* handle = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    if (error != nullptr) {
      const char* why = dlerror();
      *error = why != nullptr ? why : "dlopen failed";
    }
    return 0;
  }

  auto* t = new tool_lib; // leaked; see tool_lib comment
  t->path = path;
  t->handle = handle;
  const auto sym = [&](const char* name) { return dlsym(handle, name); };
  t->init = reinterpret_cast<decltype(t->init)>(sym("jaccp_init_library"));
  t->fini = reinterpret_cast<decltype(t->fini)>(sym("jaccp_finalize_library"));
  t->begin_for = reinterpret_cast<decltype(t->begin_for)>(
      sym("jaccp_begin_parallel_for"));
  t->end_for =
      reinterpret_cast<decltype(t->end_for)>(sym("jaccp_end_parallel_for"));
  t->begin_reduce = reinterpret_cast<decltype(t->begin_reduce)>(
      sym("jaccp_begin_parallel_reduce"));
  t->end_reduce = reinterpret_cast<decltype(t->end_reduce)>(
      sym("jaccp_end_parallel_reduce"));
  t->alloc =
      reinterpret_cast<decltype(t->alloc)>(sym("jaccp_allocate_data"));
  t->dealloc =
      reinterpret_cast<decltype(t->dealloc)>(sym("jaccp_deallocate_data"));
  t->copy = reinterpret_cast<decltype(t->copy)>(sym("jaccp_copy_data"));
  t->push = reinterpret_cast<decltype(t->push)>(
      sym("jaccp_push_profile_region"));
  t->pop =
      reinterpret_cast<decltype(t->pop)>(sym("jaccp_pop_profile_region"));

  const bool any_hook = t->begin_for != nullptr || t->end_for != nullptr ||
                        t->begin_reduce != nullptr ||
                        t->end_reduce != nullptr || t->alloc != nullptr ||
                        t->dealloc != nullptr || t->copy != nullptr ||
                        t->push != nullptr || t->pop != nullptr;
  if (!any_hook && t->init == nullptr) {
    if (error != nullptr) {
      *error = "no jaccp_* symbols found in " + path;
    }
    delete t;
    dlclose(handle);
    return 0;
  }

  int seq = 0;
  {
    const std::lock_guard<std::mutex> lock(g_mu);
    seq = g_load_seq++;
  }
  if (t->init != nullptr) {
    t->init(seq, tools_interface_version, 0, nullptr);
  }

  callbacks cb;
  cb.user = t;
  if (t->begin_for != nullptr) {
    cb.begin_parallel_for = a_begin_for;
  }
  if (t->end_for != nullptr) {
    cb.end_parallel_for = a_end_for;
  }
  if (t->begin_reduce != nullptr) {
    cb.begin_parallel_reduce = a_begin_reduce;
  }
  if (t->end_reduce != nullptr) {
    cb.end_parallel_reduce = a_end_reduce;
  }
  if (t->alloc != nullptr) {
    cb.alloc = a_alloc;
  }
  if (t->dealloc != nullptr) {
    cb.free_ = a_free;
  }
  if (t->copy != nullptr) {
    cb.copy = a_copy;
  }
  if (t->push != nullptr) {
    cb.region_push = a_push;
  }
  if (t->pop != nullptr) {
    cb.region_pop = a_pop;
  }
  t->cb_id = register_callbacks(cb);
  t->active = true;
  {
    const std::lock_guard<std::mutex> lock(g_mu);
    g_tools.push_back(t);
    // KokkosP semantics: tools still loaded at exit get their finalize call
    // (where they print summaries / flush output files) even if nobody
    // unloads them explicitly.  Registered on first load so the handler
    // runs before prof's own atexit report (atexit is LIFO and prof's state
    // is created before any tool can be loaded through it).
    static const int registered = std::atexit([] { finalize_tool_libraries(); });
    (void)registered;
  }
  return t->cb_id;
#endif
}

void finalize_tool_libraries() {
  std::vector<tool_lib*> active;
  {
    const std::lock_guard<std::mutex> lock(g_mu);
    for (tool_lib* t : g_tools) {
      if (t->active) {
        t->active = false;
        active.push_back(t);
      }
    }
  }
  for (tool_lib* t : active) {
    unregister_callbacks(t->cb_id);
    if (t->fini != nullptr) {
      t->fini();
    }
  }
}

bool unload_tool_library(std::uint64_t id) {
  tool_lib* found = nullptr;
  {
    const std::lock_guard<std::mutex> lock(g_mu);
    for (tool_lib* t : g_tools) {
      if (t->active && t->cb_id == id) {
        t->active = false;
        found = t;
        break;
      }
    }
  }
  if (found == nullptr) {
    return false;
  }
  unregister_callbacks(id);
  if (found->fini != nullptr) {
    found->fini();
  }
  return true;
}

std::size_t load_tools_from_env() {
  {
    const std::lock_guard<std::mutex> lock(g_mu);
    if (g_env_parsed) {
      return 0;
    }
    g_env_parsed = true;
  }
  const auto spec = get_env("JACC_TOOLS_LIBS");
  if (!spec || spec->empty()) {
    return 0;
  }
  std::size_t loaded = 0;
  std::size_t begin = 0;
  while (begin <= spec->size()) {
    const std::size_t end = spec->find(':', begin);
    const std::string path =
        spec->substr(begin, end == std::string::npos ? end : end - begin);
    begin = end == std::string::npos ? spec->size() + 1 : end + 1;
    if (path.empty()) {
      continue;
    }
    std::string error;
    if (load_tool_library(path, &error) != 0) {
      ++loaded;
    } else {
      std::fprintf(stderr, "jaccx::prof: cannot load tool '%s': %s\n",
                   path.c_str(), error.c_str());
    }
  }
  return loaded;
}

std::size_t loaded_tool_count() {
  const std::lock_guard<std::mutex> lock(g_mu);
  std::size_t n = 0;
  for (const tool_lib* t : g_tools) {
    n += t->active ? 1 : 0;
  }
  return n;
}

} // namespace jaccx::prof
