// Per-thread event storage for the jaccx::prof profiling layer.
//
// Each thread that emits profiling events owns one event_ring: a
// fixed-capacity single-producer buffer written with plain stores and
// published with one release increment per event, so the hot path never
// takes a lock and never allocates after the ring exists.  When the ring
// wraps, the evicted record is folded into a per-ring aggregate before
// being overwritten — summaries therefore stay exact over arbitrarily long
// runs while traces keep the most recent `capacity` events per thread.
//
// Rings are created lazily on a thread's first profiled event, registered
// with the process-wide profiler state, and intentionally never freed:
// a pool worker may emit its final park/busy accounting during process
// teardown, after the profiler has already been drained, and a leaked ring
// is the only lifetime that makes that unconditionally safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace jaccx::prof {

/// What a profiling record describes.  The first three mirror the public
/// constructs; the pool_* kinds are fork/join worker slices; alloc..copy_d2h
/// are memory-traffic markers from jacc::array; the rest are async-substrate
/// markers (queues, graph replay, futures, dist collectives).
enum class construct : unsigned char {
  parallel_for,
  parallel_reduce,
  region,
  pool_busy,
  pool_park,
  alloc,
  free_,
  copy_h2d,
  copy_d2h,
  queue_submit, ///< instant: work handed to a queue (units = queue id,
                ///< aux = flow id linking to the executing queue_task)
  queue_task,   ///< span: one lane task executing (worker = lane index,
                ///< units = queue id, aux = flow id)
  graph_replay, ///< span: one graph::launch replay (units = node count,
                ///< aux = kernel-node count)
  future_wait,  ///< span: host blocked in future::get / event wait
  comm,         ///< instant: dist payload on the wire (units = bytes)
};

const char* to_string(construct c);

/// One profiled interval (or instant, when t0 == t1).  `name` points into
/// the profiler's intern table and `backend` into static storage, so the
/// record itself is trivially copyable.
struct record {
  const std::string* name = nullptr;
  construct kind = construct::parallel_for;
  std::uint16_t worker = 0;     ///< pool worker index for pool_* records
  std::string_view backend;     ///< dispatching backend; empty for non-kernels
  std::uint64_t t0_ns = 0;      ///< steady-clock, relative to the trace epoch
  std::uint64_t t1_ns = 0;
  std::uint64_t units = 0;      ///< indices (kernels), bytes (memory),
                                ///< chunks (pool_busy), queue id (queue_*),
                                ///< nodes (graph_replay)
  std::uint64_t aux = 0;        ///< flow id (queue_*), kernel-node count
                                ///< (graph_replay); 0 elsewhere
  double flops_per_index = 0.0;
  double bytes_per_index = 0.0;
};

/// Aggregation key: one row of the per-kernel stats table.  Interned name
/// and literal backend pointers make pointer equality sufficient.
struct agg_key {
  const std::string* name = nullptr;
  construct kind = construct::parallel_for;
  const void* backend = nullptr;

  friend bool operator==(const agg_key&, const agg_key&) = default;
};

struct agg_key_hash {
  std::size_t operator()(const agg_key& k) const {
    const auto a = reinterpret_cast<std::uintptr_t>(k.name);
    const auto b = reinterpret_cast<std::uintptr_t>(k.backend);
    return static_cast<std::size_t>(a * 0x9e3779b97f4a7c15ull) ^
           static_cast<std::size_t>(b >> 3) ^
           static_cast<std::size_t>(k.kind);
  }
};

/// Folded statistics for one key.
struct agg_value {
  std::uint64_t count = 0;
  std::uint64_t units = 0;
  std::uint64_t aux = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = ~std::uint64_t{0};
  std::uint64_t max_ns = 0;
  double flops = 0.0; ///< Σ units · flops_per_index
  double bytes = 0.0; ///< Σ units · bytes_per_index

  void fold(const record& r) {
    const std::uint64_t d = r.t1_ns - r.t0_ns;
    ++count;
    units += r.units;
    aux += r.aux;
    total_ns += d;
    min_ns = d < min_ns ? d : min_ns;
    max_ns = d > max_ns ? d : max_ns;
    flops += static_cast<double>(r.units) * r.flops_per_index;
    bytes += static_cast<double>(r.units) * r.bytes_per_index;
  }

  void merge(const agg_value& o) {
    count += o.count;
    units += o.units;
    aux += o.aux;
    total_ns += o.total_ns;
    min_ns = o.min_ns < min_ns ? o.min_ns : min_ns;
    max_ns = o.max_ns > max_ns ? o.max_ns : max_ns;
    flops += o.flops;
    bytes += o.bytes;
  }
};

using agg_map = std::unordered_map<agg_key, agg_value, agg_key_hash>;

class event_ring {
public:
  /// 16K records ≈ 1 MiB per emitting thread; summaries never lose data
  /// (overflow folds into overflow_), traces keep the newest `capacity`.
  static constexpr std::uint64_t capacity = std::uint64_t{1} << 14;

  event_ring(unsigned tid, std::string label)
      : buf_(capacity), label_(std::move(label)), tid_(tid) {}

  /// Single-producer append.  The release store publishes the record to a
  /// quiescent-time drain (acquire on count()).
  void push(const record& r) {
    const std::uint64_t c = count_.load(std::memory_order_relaxed);
    if (c >= capacity) {
      const record& evicted = buf_[c % capacity];
      overflow_[agg_key{evicted.name, evicted.kind, evicted.backend.data()}]
          .fold(evicted);
    }
    buf_[c % capacity] = r;
    count_.store(c + 1, std::memory_order_release);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_acquire);
  }
  const record& at(std::uint64_t i) const { return buf_[i % capacity]; }

  /// Records currently resident (the newest min(count, capacity)).
  std::uint64_t resident() const {
    const std::uint64_t c = count();
    return c < capacity ? c : capacity;
  }
  std::uint64_t dropped_from_trace() const {
    const std::uint64_t c = count();
    return c > capacity ? c - capacity : 0;
  }

  const agg_map& overflow() const { return overflow_; }
  const std::string& label() const { return label_; }
  void set_label(std::string l) { label_ = std::move(l); }
  unsigned tid() const { return tid_; }

  /// Test-only rewind; caller guarantees the owning thread is not pushing.
  void clear() {
    count_.store(0, std::memory_order_release);
    overflow_.clear();
  }

private:
  std::vector<record> buf_;
  std::atomic<std::uint64_t> count_{0};
  agg_map overflow_;
  std::string label_;
  unsigned tid_ = 0;
};

} // namespace jaccx::prof
