// Bridge between prof.cpp (state owner) and report.cpp (aggregation and
// output).  Not installed as public API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prof/prof.hpp"
#include "prof/ring.hpp"

namespace jaccx::prof::internal {

/// Copies (not references) of the teed simulated-timeline events.
struct sim_event_view {
  std::string device;
  std::string name;
  std::string category;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint64_t dram_bytes = 0, cache_bytes = 0, flops = 0, indices = 0;
};

std::vector<event_ring*> ring_snapshot();
std::vector<sim_event_view> sim_snapshot();
std::vector<pool_stats> pool_snapshot();

/// Records `sig` as the last reported signature; returns true when it
/// differs from the previous one (i.e. a report should be produced).
bool report_signature_changed(std::uint64_t sig);

} // namespace jaccx::prof::internal
