// Loadable profiling tools for jaccx::prof — the KokkosP dlopen analogue.
//
// JACC_TOOLS_LIBS names one or more shared libraries (colon-separated, like
// KOKKOS_TOOLS_LIBS).  Each is dlopen'd at jacc::initialize(); any resolved
// jaccp_* callback symbols are adapted onto the in-process hook registry
// (prof::register_callbacks), so an external tool observes an unmodified
// binary exactly the way a Kokkos Tools connector does.
//
// The C ABI a tool exports (all optional; unresolved symbols are skipped):
//
//   void jaccp_init_library(int load_seq, uint64_t interface_version,
//                           uint32_t device_count, void* device_info);
//   void jaccp_finalize_library(void);
//   void jaccp_begin_parallel_for(const char* name, uint32_t device_id,
//                                 uint64_t* kernel_id);   // *kernel_id is
//   void jaccp_end_parallel_for(uint64_t kernel_id);      // pre-set by jacc
//   void jaccp_begin_parallel_reduce(const char* name, uint32_t device_id,
//                                    uint64_t* kernel_id);
//   void jaccp_end_parallel_reduce(uint64_t kernel_id);
//   void jaccp_allocate_data(const char* name, uint64_t bytes);
//   void jaccp_deallocate_data(uint64_t bytes);
//   void jaccp_copy_data(const char* name, int to_device, uint64_t bytes);
//   void jaccp_push_profile_region(const char* name);
//   void jaccp_pop_profile_region(void);
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace jaccx::prof {

/// Interface version handed to jaccp_init_library.
inline constexpr std::uint64_t tools_interface_version = 1;

/// Loads one tool library, resolves its jaccp_* symbols, calls its init
/// hook, and registers the adapted callbacks.  Returns the callback id
/// (nonzero) on success; 0 on failure with a diagnostic in *error.
std::uint64_t load_tool_library(const std::string& path,
                                std::string* error = nullptr);

/// Unregisters a tool loaded by load_tool_library and calls its
/// jaccp_finalize_library hook.  The dlopen handle intentionally stays open
/// (tool code may still be referenced from in-flight callbacks).  Returns
/// false when `id` names no active tool.
bool unload_tool_library(std::uint64_t id);

/// Loads every library named in JACC_TOOLS_LIBS (colon-separated).
/// Idempotent: only the first call parses the variable.  Returns the number
/// of tools loaded by this call; failures are reported on stderr and
/// skipped so one bad path cannot take down the run.
std::size_t load_tools_from_env();

/// Number of currently active (loaded and not unloaded) tools.
std::size_t loaded_tool_count();

/// Unregisters and finalizes every still-active tool (KokkosP semantics:
/// jaccp_finalize_library fires at process exit).  Runs automatically from
/// an atexit handler registered on first load; safe to call again — already
/// finalized tools are skipped.
void finalize_tool_libraries();

} // namespace jaccx::prof
