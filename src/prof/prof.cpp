#include "prof/prof.hpp"

#include "prof/internal.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>

#include "support/env.hpp"

namespace jaccx::prof {

namespace detail {
std::atomic<unsigned> g_mode{mode_off};
std::atomic<bool> g_enabled{false};
} // namespace detail

const char* to_string(construct c) {
  switch (c) {
  case construct::parallel_for:
    return "parallel_for";
  case construct::parallel_reduce:
    return "parallel_reduce";
  case construct::region:
    return "region";
  case construct::pool_busy:
    return "pool.busy";
  case construct::pool_park:
    return "pool.park";
  case construct::alloc:
    return "alloc";
  case construct::free_:
    return "free";
  case construct::copy_h2d:
    return "copy.h2d";
  case construct::copy_d2h:
    return "copy.d2h";
  case construct::queue_submit:
    return "queue.submit";
  case construct::queue_task:
    return "queue.task";
  case construct::graph_replay:
    return "graph.replay";
  case construct::future_wait:
    return "future.wait";
  case construct::comm:
    return "comm";
  }
  return "?";
}

namespace {

/// One simulated-timeline event teed from sim::timeline::record.
struct sim_event {
  std::string device;
  std::string name;
  std::string category;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint64_t dram_bytes = 0, cache_bytes = 0, flops = 0, indices = 0;
};

struct registered_tool {
  std::uint64_t id = 0;
  callbacks cb;
};

/// Process-wide profiler state.  Intentionally leaked: pool workers may
/// emit their final accounting during static destruction, and an atexit
/// finalize() runs after other static destructors — both need this alive.
struct state_t {
  std::mutex mu;

  /// Interned kernel/region names.  node-based container: element
  /// addresses are stable, so records hold plain `const std::string*`.
  std::unordered_set<std::string> names;

  std::vector<event_ring*> rings; ///< leaked, one per emitting thread
  std::vector<sim_event> sim_events;

  std::shared_ptr<const std::vector<registered_tool>> tools =
      std::make_shared<const std::vector<registered_tool>>();
  std::uint64_t next_tool_id = 1;

  struct pool_entry {
    const void* owner = nullptr;
    std::function<pool_stats()> fetch;
  };
  std::vector<pool_entry> pools;
  std::vector<pool_stats> frozen_pools;

  std::function<std::vector<mem_pool_stats>()> mem_pool_source;
  std::function<std::vector<queue_stats>()> queue_source;
  std::function<serve_stats()> serve_source;
  std::function<std::optional<roof_rates>(std::string_view)> roof_source;

  /// Host roofline ceilings; resolved lazily from JACC_HOST_ROOF (or the
  /// configured default) on first read, overridable via set_host_roof.
  bool host_roof_set = false;
  roof_rates host_roof;

  std::string trace_path;

  /// finalize() idempotence: the event signature last acted upon.
  std::uint64_t last_report_signature = ~std::uint64_t{0};

  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

state_t& st() {
  static state_t* s = new state_t();
  return *s;
}

void refresh_enabled_locked(state_t& s) {
  const bool on = detail::g_mode.load(std::memory_order_relaxed) != mode_off ||
                  !s.tools->empty();
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::shared_ptr<const std::vector<registered_tool>> tool_snapshot() {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.tools;
}

const std::string* intern(std::string_view name) {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  return &*s.names.emplace(name).first;
}

/// The calling thread's ring, created (and leaked) on first use.
event_ring& my_ring() {
  thread_local event_ring* ring = nullptr;
  if (ring == nullptr) {
    state_t& s = st();
    std::lock_guard<std::mutex> lock(s.mu);
    const unsigned tid = static_cast<unsigned>(s.rings.size());
    ring = new event_ring(tid, tid == 0 ? "main"
                                        : "thread." + std::to_string(tid));
    s.rings.push_back(ring);
  }
  return *ring;
}

/// Per-thread stack of in-flight kernels/regions; begin/end pair LIFO on
/// the launching thread because the constructs are synchronous.
struct inflight {
  const std::string* name = nullptr;
  construct kind = construct::parallel_for;
  std::uint64_t units = 0;
  double flops_per_index = 0.0;
  double bytes_per_index = 0.0;
  std::string_view backend;
  std::uint64_t t0_ns = 0;
  std::uint64_t kid = 0;
};

std::vector<inflight>& my_stack() {
  thread_local std::vector<inflight> stack;
  return stack;
}

std::atomic<std::uint64_t> g_next_kid{1};
std::atomic<std::uint64_t> g_next_flow{1};

/// Future-wait latency histogram (lock-free: get() may run on any thread).
std::array<std::atomic<std::uint64_t>, future_wait_buckets> g_wait_hist{};

std::size_t wait_bucket(std::uint64_t wait_ns) {
  std::uint64_t us = wait_ns / 1000;
  std::size_t b = 0;
  while (us != 0 && b + 1 < future_wait_buckets) {
    us >>= 1;
    ++b;
  }
  return b;
}

/// Registered during static initialization, i.e. before main() and before
/// any function-local static (default_pool, sim devices) is constructed —
/// so it runs after their destructors, once every producer is gone.
struct env_init {
  env_init() {
    if (const auto spec = get_env("JACC_PROFILE")) {
      if (const auto bits = parse_mode_spec(*spec)) {
        unsigned m = *bits;
        if (m != mode_off) {
          m |= mode_collect;
        }
        detail::g_mode.store(m, std::memory_order_relaxed);
        detail::g_enabled.store(m != mode_off, std::memory_order_relaxed);
      }
    }
    if (const auto path = get_env("JACC_TRACE_FILE")) {
      st().trace_path = *path;
    }
    std::atexit([] { finalize(); });
  }
};
env_init g_env_init;

} // namespace

std::optional<unsigned> parse_mode_spec(std::string_view spec) {
  unsigned bits = mode_off;
  while (!spec.empty()) {
    const auto comma = spec.find(',');
    const std::string_view word = spec.substr(0, comma);
    if (word == "off" || word == "0" || word.empty()) {
      // no-op
    } else if (word == "collect" || word == "1" || word == "on") {
      bits |= mode_collect;
    } else if (word == "summary") {
      bits |= mode_summary | mode_collect;
    } else if (word == "trace") {
      bits |= mode_trace | mode_collect;
    } else if (word == "roofline") {
      bits |= mode_roofline | mode_collect;
    } else {
      return std::nullopt;
    }
    if (comma == std::string_view::npos) {
      break;
    }
    spec.remove_prefix(comma + 1);
  }
  return bits;
}

void set_mode(unsigned bits, std::string_view trace_path) {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  detail::g_mode.store(bits, std::memory_order_relaxed);
  if (!trace_path.empty()) {
    s.trace_path = std::string(trace_path);
  }
  s.last_report_signature = ~std::uint64_t{0};
  refresh_enabled_locked(s);
}

void enable_collection() {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  detail::g_mode.fetch_or(mode_collect, std::memory_order_relaxed);
  refresh_enabled_locked(s);
}

std::string trace_path() {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.trace_path;
}

std::uint64_t register_callbacks(const callbacks& cb) {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  auto next = std::make_shared<std::vector<registered_tool>>(*s.tools);
  const std::uint64_t id = s.next_tool_id++;
  next->push_back(registered_tool{id, cb});
  s.tools = std::move(next);
  refresh_enabled_locked(s);
  return id;
}

void unregister_callbacks(std::uint64_t id) {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  auto next = std::make_shared<std::vector<registered_tool>>(*s.tools);
  std::erase_if(*next, [id](const registered_tool& t) { return t.id == id; });
  s.tools = std::move(next);
  refresh_enabled_locked(s);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - st().epoch)
          .count());
}

std::uint64_t begin_kernel(const kernel_info& info) {
  const std::uint64_t kid =
      g_next_kid.fetch_add(1, std::memory_order_relaxed);
  const auto tools = tool_snapshot();
  for (const auto& t : *tools) {
    if (info.kind == construct::parallel_reduce) {
      if (t.cb.begin_parallel_reduce != nullptr) {
        t.cb.begin_parallel_reduce(t.cb.user, info, kid);
      }
    } else if (t.cb.begin_parallel_for != nullptr) {
      t.cb.begin_parallel_for(t.cb.user, info, kid);
    }
  }
  if (collecting()) {
    // Intern the backend name too: to_string(backend) is inline, so the
    // literal's address may differ per TU — aggregation keys on pointer
    // identity and needs one canonical copy.
    my_stack().push_back(inflight{intern(info.name), info.kind, info.indices,
                                  info.flops_per_index, info.bytes_per_index,
                                  std::string_view(*intern(info.backend)),
                                  now_ns(), kid});
  }
  return kid;
}

void end_kernel(std::uint64_t kid, construct kind) {
  if (collecting()) {
    auto& stack = my_stack();
    // Match by id from the top: set_mode mid-flight can leave unmatched
    // frames below, which are dropped rather than mispaired.
    while (!stack.empty()) {
      const inflight f = stack.back();
      stack.pop_back();
      if (f.kid != kid) {
        continue;
      }
      record r;
      r.name = f.name;
      r.kind = f.kind;
      r.backend = f.backend;
      r.t0_ns = f.t0_ns;
      r.t1_ns = now_ns();
      r.units = f.units;
      r.flops_per_index = f.flops_per_index;
      r.bytes_per_index = f.bytes_per_index;
      my_ring().push(r);
      break;
    }
  }
  const auto tools = tool_snapshot();
  for (const auto& t : *tools) {
    if (kind == construct::parallel_reduce) {
      if (t.cb.end_parallel_reduce != nullptr) {
        t.cb.end_parallel_reduce(t.cb.user, kid);
      }
    } else if (t.cb.end_parallel_for != nullptr) {
      t.cb.end_parallel_for(t.cb.user, kid);
    }
  }
}

void region_push(std::string_view name) {
  const auto tools = tool_snapshot();
  for (const auto& t : *tools) {
    if (t.cb.region_push != nullptr) {
      t.cb.region_push(t.cb.user, name);
    }
  }
  if (collecting()) {
    my_stack().push_back(
        inflight{intern(name), construct::region, 0, 0.0, 0.0, {}, now_ns(),
                 g_next_kid.fetch_add(1, std::memory_order_relaxed)});
  }
}

void region_pop() {
  if (collecting()) {
    auto& stack = my_stack();
    if (!stack.empty()) {
      const inflight f = stack.back();
      stack.pop_back();
      record r;
      r.name = f.name;
      r.kind = construct::region;
      r.t0_ns = f.t0_ns;
      r.t1_ns = now_ns();
      my_ring().push(r);
    }
  }
  const auto tools = tool_snapshot();
  for (const auto& t : *tools) {
    if (t.cb.region_pop != nullptr) {
      t.cb.region_pop(t.cb.user);
    }
  }
}

namespace {

void note_memory(construct kind, std::string_view name, std::uint64_t bytes) {
  if (!collecting()) {
    return;
  }
  record r;
  r.name = intern(name);
  r.kind = kind;
  r.t0_ns = r.t1_ns = now_ns();
  r.units = bytes;
  my_ring().push(r);
}

} // namespace

void note_alloc(std::string_view name, std::uint64_t bytes) {
  const auto tools = tool_snapshot();
  for (const auto& t : *tools) {
    if (t.cb.alloc != nullptr) {
      t.cb.alloc(t.cb.user, name, bytes);
    }
  }
  note_memory(construct::alloc, name, bytes);
}

void note_free(std::uint64_t bytes) {
  const auto tools = tool_snapshot();
  for (const auto& t : *tools) {
    if (t.cb.free_ != nullptr) {
      t.cb.free_(t.cb.user, bytes);
    }
  }
  note_memory(construct::free_, "device.free", bytes);
}

void note_copy(std::string_view name, bool to_device, std::uint64_t bytes) {
  const auto tools = tool_snapshot();
  for (const auto& t : *tools) {
    if (t.cb.copy != nullptr) {
      t.cb.copy(t.cb.user, name, to_device, bytes);
    }
  }
  note_memory(to_device ? construct::copy_h2d : construct::copy_d2h, name,
              bytes);
}

void label_this_thread(std::string_view label) {
  my_ring().set_label(std::string(label));
}

void emit_pool_slice(construct kind, unsigned worker, std::uint64_t t0_ns,
                     std::uint64_t t1_ns, std::uint64_t chunks) {
  if (!collecting()) {
    return;
  }
  record r;
  r.name = intern(to_string(kind));
  r.kind = kind;
  r.worker = static_cast<std::uint16_t>(worker);
  r.t0_ns = t0_ns;
  r.t1_ns = t1_ns;
  r.units = chunks;
  my_ring().push(r);
}

void note_sim_event(std::string_view device_label, std::string_view name,
                    std::string_view category, double ts_us, double dur_us,
                    std::uint64_t dram_bytes, std::uint64_t cache_bytes,
                    std::uint64_t flops, std::uint64_t indices) {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  sim_event ev;
  ev.device = std::string(device_label);
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.dram_bytes = dram_bytes;
  ev.cache_bytes = cache_bytes;
  ev.flops = flops;
  ev.indices = indices;
  s.sim_events.push_back(std::move(ev));
}

std::uint64_t next_flow_id() {
  return g_next_flow.fetch_add(1, std::memory_order_relaxed);
}

void note_queue_submit(std::uint64_t queue_id, std::uint64_t flow_id) {
  if (!collecting()) {
    return;
  }
  record r;
  r.name = intern("queue.submit");
  r.kind = construct::queue_submit;
  r.t0_ns = r.t1_ns = now_ns();
  r.units = queue_id;
  r.aux = flow_id;
  my_ring().push(r);
}

void note_queue_task(std::uint64_t queue_id, std::uint64_t flow_id,
                     unsigned lane, std::uint64_t t0_ns, std::uint64_t t1_ns) {
  if (!collecting()) {
    return;
  }
  record r;
  // The lane index lives in the interned name so the fold keys produce one
  // per-lane utilization row for free (worker carries it for trace args).
  r.name = intern("queue.task.lane" + std::to_string(lane));
  r.kind = construct::queue_task;
  r.worker = static_cast<std::uint16_t>(lane);
  r.t0_ns = t0_ns;
  r.t1_ns = t1_ns;
  r.units = queue_id;
  r.aux = flow_id;
  my_ring().push(r);
}

void note_graph_replay(std::uint64_t nodes, std::uint64_t kernels,
                       std::uint64_t t0_ns, std::uint64_t t1_ns) {
  if (!collecting()) {
    return;
  }
  record r;
  r.name = intern("graph.replay");
  r.kind = construct::graph_replay;
  r.t0_ns = t0_ns;
  r.t1_ns = t1_ns;
  r.units = nodes;
  r.aux = kernels;
  my_ring().push(r);
}

void note_future_wait(std::uint64_t t0_ns, std::uint64_t t1_ns) {
  if (!collecting()) {
    return;
  }
  g_wait_hist[wait_bucket(t1_ns - t0_ns)].fetch_add(
      1, std::memory_order_relaxed);
  record r;
  r.name = intern("future.wait");
  r.kind = construct::future_wait;
  r.t0_ns = t0_ns;
  r.t1_ns = t1_ns;
  my_ring().push(r);
}

void note_comm(std::string_view name, std::uint64_t bytes) {
  if (!collecting()) {
    return;
  }
  record r;
  r.name = intern(name);
  r.kind = construct::comm;
  r.t0_ns = r.t1_ns = now_ns();
  r.units = bytes;
  my_ring().push(r);
}

std::vector<std::uint64_t> future_wait_histogram() {
  std::vector<std::uint64_t> out(future_wait_buckets, 0);
  for (std::size_t i = 0; i < future_wait_buckets; ++i) {
    out[i] = g_wait_hist[i].load(std::memory_order_relaxed);
  }
  return out;
}

void register_roof_source(
    std::function<std::optional<roof_rates>(std::string_view)> fetch) {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  s.roof_source = std::move(fetch);
}

std::optional<roof_rates> model_roof(std::string_view model) {
  state_t& s = st();
  std::function<std::optional<roof_rates>(std::string_view)> fetch;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    fetch = s.roof_source;
  }
  return fetch ? fetch(model) : std::nullopt;
}

roof_rates host_roof() {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.host_roof_set) {
    roof_rates r;
    // Configured defaults: a conservative DDR4 stream figure and 2 GF/s
    // per hardware thread.  JACC_HOST_ROOF="<GB/s>,<GF/s>" overrides.
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    r.gbps = 16.0;
    r.gflops = 2.0 * static_cast<double>(hw);
    if (const auto spec = get_env("JACC_HOST_ROOF")) {
      double gbps = 0.0, gflops = 0.0;
      if (std::sscanf(spec->c_str(), "%lf,%lf", &gbps, &gflops) == 2 &&
          gbps > 0.0 && gflops > 0.0) {
        r.gbps = gbps;
        r.gflops = gflops;
      }
    }
    s.host_roof = r;
    s.host_roof_set = true;
  }
  return s.host_roof;
}

void set_host_roof(roof_rates r) {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  s.host_roof = r;
  s.host_roof_set = true;
}

void register_pool(const void* owner, std::function<pool_stats()> fetch) {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  s.pools.push_back(state_t::pool_entry{owner, std::move(fetch)});
}

void unregister_pool(const void* owner) {
  state_t& s = st();
  std::function<pool_stats()> fetch;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto it = s.pools.begin(); it != s.pools.end(); ++it) {
      if (it->owner == owner) {
        fetch = std::move(it->fetch);
        s.pools.erase(it);
        break;
      }
    }
  }
  if (fetch) {
    pool_stats snap = fetch(); // outside the lock: fetch may touch the pool
    std::lock_guard<std::mutex> lock(s.mu);
    s.frozen_pools.push_back(std::move(snap));
  }
}

void register_mem_pool_source(
    std::function<std::vector<mem_pool_stats>()> fetch) {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  s.mem_pool_source = std::move(fetch);
}

std::vector<mem_pool_stats> aggregate_mem_pools() {
  state_t& s = st();
  std::function<std::vector<mem_pool_stats>()> fetch;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    fetch = s.mem_pool_source;
  }
  // Outside the lock: the fetcher takes the allocator's own mutex, and the
  // allocator charges devices (which can tee back into prof) under it.
  return fetch ? fetch() : std::vector<mem_pool_stats>{};
}

void register_queue_source(std::function<std::vector<queue_stats>()> fetch) {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  s.queue_source = std::move(fetch);
}

std::vector<queue_stats> aggregate_queues() {
  state_t& s = st();
  std::function<std::vector<queue_stats>()> fetch;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    fetch = s.queue_source;
  }
  // Outside the lock: the fetcher takes the queue registry's own mutexes.
  return fetch ? fetch() : std::vector<queue_stats>{};
}

void register_serve_source(std::function<serve_stats()> fetch) {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  s.serve_source = std::move(fetch);
}

serve_stats aggregate_serve() {
  state_t& s = st();
  std::function<serve_stats()> fetch;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    fetch = s.serve_source;
  }
  // Outside the lock: the fetcher takes the scheduler's own mutex.
  return fetch ? fetch() : serve_stats{};
}

void reset() {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  for (event_ring* ring : s.rings) {
    ring->clear();
  }
  s.sim_events.clear();
  s.frozen_pools.clear();
  s.last_report_signature = ~std::uint64_t{0};
  for (auto& b : g_wait_hist) {
    b.store(0, std::memory_order_relaxed);
  }
}

std::size_t debug_ring_count() {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.rings.size();
}

std::uint64_t debug_trace_dropped() {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t dropped = 0;
  for (const event_ring* ring : s.rings) {
    dropped += ring->dropped_from_trace();
  }
  return dropped;
}

// Internal bridge used by report.cpp (same TU-family, not public API).
namespace internal {

std::vector<event_ring*> ring_snapshot() {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.rings;
}

std::vector<sim_event_view> sim_snapshot() {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<sim_event_view> out;
  out.reserve(s.sim_events.size());
  for (const sim_event& ev : s.sim_events) {
    out.push_back(sim_event_view{ev.device, ev.name, ev.category, ev.ts_us,
                                 ev.dur_us, ev.dram_bytes, ev.cache_bytes,
                                 ev.flops, ev.indices});
  }
  return out;
}

std::vector<pool_stats> pool_snapshot() {
  state_t& s = st();
  std::vector<std::function<pool_stats()>> fetchers;
  std::vector<pool_stats> out;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    out = s.frozen_pools;
    fetchers.reserve(s.pools.size());
    for (const auto& p : s.pools) {
      fetchers.push_back(p.fetch);
    }
  }
  for (const auto& fetch : fetchers) {
    out.push_back(fetch());
  }
  return out;
}

bool report_signature_changed(std::uint64_t sig) {
  state_t& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.last_report_signature == sig) {
    return false;
  }
  s.last_report_signature = sig;
  return true;
}

} // namespace internal

} // namespace jaccx::prof
