// Aggregation and output for jaccx::prof: the per-kernel stats table
// (JACC_PROFILE=summary) and the unified Chrome-trace JSON exporter
// (JACC_PROFILE=trace + JACC_TRACE_FILE).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "prof/internal.hpp"
#include "prof/prof.hpp"

namespace jaccx::prof {

namespace {

bool is_kernel_kind(construct c) {
  return c == construct::parallel_for || c == construct::parallel_reduce ||
         c == construct::region;
}

/// Folds every ring (resident window + overflow aggregates) into one map.
agg_map fold_all_rings() {
  agg_map out;
  for (const event_ring* ring : internal::ring_snapshot()) {
    for (const auto& [key, value] : ring->overflow()) {
      out[key].merge(value);
    }
    const std::uint64_t count = ring->count();
    const std::uint64_t resident = ring->resident();
    for (std::uint64_t i = count - resident; i < count; ++i) {
      const record& r = ring->at(i);
      out[agg_key{r.name, r.kind, r.backend.data()}].fold(r);
    }
  }
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\t':
      out += "\\t";
      break;
    case '\r':
      out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
  return out;
}

/// Chrome traces key on pid/tid; pid 1 is the host (real wall clock, one
/// tid per event ring), and each simulated device gets its own pid so its
/// simulated-microsecond timeline reads as a separate process track.
constexpr int host_pid = 1;

void append_meta(std::ostringstream& os, bool& first, int pid, int tid,
                 std::string_view what, std::string_view name) {
  if (!first) {
    os << ",\n";
  }
  first = false;
  os << "  {\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
     << json_escape(name) << "\"}}";
}

/// Signature of "what data exists right now" for finalize idempotence.
std::uint64_t current_signature() {
  std::uint64_t sig = 0x9e3779b97f4a7c15ull;
  for (const event_ring* ring : internal::ring_snapshot()) {
    sig = sig * 1099511628211ull + ring->count();
  }
  sig = sig * 1099511628211ull + internal::sim_snapshot().size();
  return sig;
}

} // namespace

std::vector<kernel_stats> aggregate_kernels() {
  std::vector<kernel_stats> out;
  for (const auto& [key, value] : fold_all_rings()) {
    if (!is_kernel_kind(key.kind)) {
      continue;
    }
    kernel_stats row;
    row.name = key.name != nullptr ? *key.name : std::string("?");
    row.kind = key.kind;
    row.backend = key.backend != nullptr
                      ? std::string(static_cast<const char*>(key.backend))
                      : std::string();
    row.count = value.count;
    row.units = value.units;
    row.total_us = static_cast<double>(value.total_ns) * 1e-3;
    row.min_us = value.count != 0
                     ? static_cast<double>(value.min_ns) * 1e-3
                     : 0.0;
    row.max_us = static_cast<double>(value.max_ns) * 1e-3;
    if (value.total_ns != 0) {
      // flops/ns == Gflop/s, bytes/ns == GB/s.
      row.gflops_per_s = value.flops / static_cast<double>(value.total_ns);
      row.gbytes_per_s = value.bytes / static_cast<double>(value.total_ns);
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const kernel_stats& a, const kernel_stats& b) {
              if (a.total_us != b.total_us) {
                return a.total_us > b.total_us;
              }
              return a.name < b.name;
            });
  return out;
}

memory_stats aggregate_memory() {
  memory_stats m;
  for (const auto& [key, value] : fold_all_rings()) {
    switch (key.kind) {
    case construct::alloc:
      m.allocs += value.count;
      m.alloc_bytes += value.units;
      break;
    case construct::free_:
      m.frees += value.count;
      m.free_bytes += value.units;
      break;
    case construct::copy_h2d:
      m.h2d_copies += value.count;
      m.h2d_bytes += value.units;
      break;
    case construct::copy_d2h:
      m.d2h_copies += value.count;
      m.d2h_bytes += value.units;
      break;
    default:
      break;
    }
  }
  return m;
}

std::vector<pool_stats> aggregate_pools() {
  std::vector<pool_stats> out = internal::pool_snapshot();
  std::erase_if(out, [](const pool_stats& p) { return p.regions == 0; });
  return out;
}

std::string summary_text() {
  std::ostringstream os;
  os << "== jaccx::prof summary ==\n";

  const auto kernels = aggregate_kernels();
  if (kernels.empty()) {
    os << "(no kernels recorded)\n";
  } else {
    char line[256];
    std::snprintf(line, sizeof line, "%-28s %-16s %-12s %8s %12s %10s %10s %10s %8s %8s\n",
                  "kernel", "construct", "backend", "count", "total_us",
                  "min_us", "mean_us", "max_us", "GB/s", "GF/s");
    os << line;
    for (const kernel_stats& k : kernels) {
      const double mean =
          k.count != 0 ? k.total_us / static_cast<double>(k.count) : 0.0;
      std::snprintf(line, sizeof line,
                    "%-28s %-16s %-12s %8" PRIu64
                    " %12.1f %10.2f %10.2f %10.2f %8.2f %8.2f\n",
                    k.name.c_str(), to_string(k.kind),
                    k.backend.empty() ? "-" : k.backend.c_str(), k.count,
                    k.total_us, k.min_us, mean, k.max_us, k.gbytes_per_s,
                    k.gflops_per_s);
      os << line;
    }
  }

  const memory_stats m = aggregate_memory();
  if (m.allocs + m.frees + m.h2d_copies + m.d2h_copies != 0) {
    os << "-- memory --\n";
    char line[192];
    std::snprintf(line, sizeof line,
                  "alloc %" PRIu64 "x / %.1f MiB   free %" PRIu64
                  "x / %.1f MiB   h2d %" PRIu64 "x / %.1f MiB   d2h %" PRIu64
                  "x / %.1f MiB\n",
                  m.allocs, static_cast<double>(m.alloc_bytes) / (1 << 20),
                  m.frees, static_cast<double>(m.free_bytes) / (1 << 20),
                  m.h2d_copies, static_cast<double>(m.h2d_bytes) / (1 << 20),
                  m.d2h_copies, static_cast<double>(m.d2h_bytes) / (1 << 20));
    os << line;
  }

  const auto mem_pools = aggregate_mem_pools();
  if (!mem_pools.empty()) {
    os << "-- memory pool (mode " << mem_pools.front().mode << ") --\n";
    char line[224];
    for (const mem_pool_stats& p : mem_pools) {
      const std::uint64_t lookups = p.hits + p.misses;
      const double rate =
          lookups != 0 ? 100.0 * static_cast<double>(p.hits) /
                             static_cast<double>(lookups)
                       : 0.0;
      std::snprintf(line, sizeof line,
                    "%-10s hits %8" PRIu64 "  stalls %4" PRIu64 "  misses %6"
                    PRIu64
                    "  hit-rate %5.1f%%  cached %8.1f KiB  live %8.1f KiB  "
                    "workspace %8.1f KiB  high-water %8.1f KiB\n",
                    p.label.c_str(), p.hits, p.stalls, p.misses, rate,
                    static_cast<double>(p.bytes_cached) / 1024.0,
                    static_cast<double>(p.bytes_live) / 1024.0,
                    static_cast<double>(p.workspace_bytes) / 1024.0,
                    static_cast<double>(p.high_water_bytes) / 1024.0);
      os << line;
    }
  }

  const auto queues = aggregate_queues();
  if (!queues.empty()) {
    os << "-- queues --\n";
    char line[224];
    for (const queue_stats& q : queues) {
      std::snprintf(line, sizeof line,
                    "%-8s launches %6" PRIu64 "  copies %6" PRIu64
                    "  async %6" PRIu64 "  waits %4" PRIu64 "  syncs %4" PRIu64
                    "  lane %2d  sim %10.1f us\n",
                    q.label.c_str(), q.launches, q.copies, q.async_tasks,
                    q.waits, q.syncs, q.lane, q.sim_us);
      os << line;
    }
  }

  for (const pool_stats& p : aggregate_pools()) {
    os << "-- pool " << p.label << " (width " << p.width << ", schedule "
       << p.schedule << ", " << p.regions << " regions) --\n";
    char line[192];
    for (const pool_worker_stat& w : p.workers) {
      std::snprintf(line, sizeof line,
                    "worker %-3u busy %10.1f us  spin %10.1f us  park %10.1f "
                    "us  parks %6" PRIu64 "  chunks %8" PRIu64 "\n",
                    w.worker, static_cast<double>(w.busy_ns) * 1e-3,
                    static_cast<double>(w.spin_ns) * 1e-3,
                    static_cast<double>(w.park_ns) * 1e-3, w.parks, w.chunks);
      os << line;
    }
  }
  return os.str();
}

std::string chrome_trace_json() {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  append_meta(os, first, host_pid, 0, "process_name", "jacc host (wall clock)");

  const auto rings = internal::ring_snapshot();
  for (const event_ring* ring : rings) {
    append_meta(os, first, host_pid, static_cast<int>(ring->tid()),
                "thread_name", ring->label());
  }

  for (const event_ring* ring : rings) {
    const int tid = static_cast<int>(ring->tid());
    const std::uint64_t count = ring->count();
    const std::uint64_t resident = ring->resident();
    for (std::uint64_t i = count - resident; i < count; ++i) {
      const record& r = ring->at(i);
      if (!first) {
        os << ",\n";
      }
      first = false;
      const double ts = static_cast<double>(r.t0_ns) * 1e-3;
      const double dur = static_cast<double>(r.t1_ns - r.t0_ns) * 1e-3;
      const char* name = r.name != nullptr ? r.name->c_str() : "?";
      if (r.t1_ns == r.t0_ns) {
        os << "  {\"ph\":\"i\",\"s\":\"t\",\"pid\":" << host_pid
           << ",\"tid\":" << tid << ",\"ts\":" << ts << ",\"name\":\""
           << json_escape(name) << "\",\"cat\":\"" << to_string(r.kind)
           << "\",\"args\":{\"bytes\":" << r.units << "}}";
        continue;
      }
      os << "  {\"ph\":\"X\",\"pid\":" << host_pid << ",\"tid\":" << tid
         << ",\"ts\":" << ts << ",\"dur\":" << dur << ",\"name\":\""
         << json_escape(name) << "\",\"cat\":\"" << to_string(r.kind)
         << "\",\"args\":{";
      if (r.kind == construct::pool_busy || r.kind == construct::pool_park) {
        os << "\"worker\":" << r.worker << ",\"chunks\":" << r.units;
      } else {
        os << "\"indices\":" << r.units
           << ",\"flops_per_index\":" << r.flops_per_index
           << ",\"bytes_per_index\":" << r.bytes_per_index;
        if (!r.backend.empty()) {
          os << ",\"backend\":\"" << json_escape(r.backend) << "\"";
        }
      }
      os << "}}";
    }
  }

  // Simulated devices: one pid per device label, events at their simulated
  // timestamps (already microseconds, the trace's native unit).
  const auto sims = internal::sim_snapshot();
  std::vector<std::string> device_order;
  for (const auto& ev : sims) {
    if (std::find(device_order.begin(), device_order.end(), ev.device) ==
        device_order.end()) {
      device_order.push_back(ev.device);
    }
  }
  for (std::size_t d = 0; d < device_order.size(); ++d) {
    append_meta(os, first, host_pid + 1 + static_cast<int>(d), 0,
                "process_name", "sim:" + device_order[d]);
  }
  for (const auto& ev : sims) {
    const auto it =
        std::find(device_order.begin(), device_order.end(), ev.device);
    const int pid =
        host_pid + 1 +
        static_cast<int>(std::distance(device_order.begin(), it));
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "  {\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":0,\"ts\":" << ev.ts_us
       << ",\"dur\":" << ev.dur_us << ",\"name\":\"" << json_escape(ev.name)
       << "\",\"cat\":\"sim." << json_escape(ev.category)
       << "\",\"args\":{\"dram_bytes\":" << ev.dram_bytes
       << ",\"cache_bytes\":" << ev.cache_bytes << ",\"flops\":" << ev.flops
       << ",\"indices\":" << ev.indices << "}}";
  }

  os << "\n]}\n";
  return os.str();
}

void finalize() {
  const unsigned m = mode();
  if ((m & (mode_summary | mode_trace)) == 0) {
    return;
  }
  if (!internal::report_signature_changed(current_signature())) {
    return;
  }
  if ((m & mode_summary) != 0) {
    const std::string text = summary_text();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
  }
  if ((m & mode_trace) != 0) {
    std::string path = trace_path();
    if (path.empty()) {
      path = "jacc_trace.json";
    }
    std::ofstream out(path, std::ios::trunc);
    if (out) {
      out << chrome_trace_json();
    } else {
      std::fprintf(stderr, "jaccx::prof: cannot write trace file '%s'\n",
                   path.c_str());
    }
  }
}

} // namespace jaccx::prof
