// Aggregation and output for jaccx::prof: the per-kernel stats table
// (JACC_PROFILE=summary) and the unified Chrome-trace JSON exporter
// (JACC_PROFILE=trace + JACC_TRACE_FILE).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "prof/internal.hpp"
#include "prof/prof.hpp"

namespace jaccx::prof {

namespace {

bool is_kernel_kind(construct c) {
  return c == construct::parallel_for || c == construct::parallel_reduce ||
         c == construct::region;
}

/// Folds every ring (resident window + overflow aggregates) into one map.
agg_map fold_all_rings() {
  agg_map out;
  for (const event_ring* ring : internal::ring_snapshot()) {
    for (const auto& [key, value] : ring->overflow()) {
      out[key].merge(value);
    }
    const std::uint64_t count = ring->count();
    const std::uint64_t resident = ring->resident();
    for (std::uint64_t i = count - resident; i < count; ++i) {
      const record& r = ring->at(i);
      out[agg_key{r.name, r.kind, r.backend.data()}].fold(r);
    }
  }
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\t':
      out += "\\t";
      break;
    case '\r':
      out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
  return out;
}

/// Chrome traces key on pid/tid; pid 1 is the host (real wall clock, one
/// tid per event ring), and each simulated device gets its own pid so its
/// simulated-microsecond timeline reads as a separate process track.
constexpr int host_pid = 1;

void append_meta(std::ostringstream& os, bool& first, int pid, int tid,
                 std::string_view what, std::string_view name) {
  if (!first) {
    os << ",\n";
  }
  first = false;
  os << "  {\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
     << json_escape(name) << "\"}}";
}

/// Signature of "what data exists right now" for finalize idempotence.
std::uint64_t current_signature() {
  std::uint64_t sig = 0x9e3779b97f4a7c15ull;
  for (const event_ring* ring : internal::ring_snapshot()) {
    sig = sig * 1099511628211ull + ring->count();
  }
  sig = sig * 1099511628211ull + internal::sim_snapshot().size();
  return sig;
}

} // namespace

std::vector<kernel_stats> aggregate_kernels() {
  std::vector<kernel_stats> out;
  for (const auto& [key, value] : fold_all_rings()) {
    if (!is_kernel_kind(key.kind)) {
      continue;
    }
    kernel_stats row;
    row.name = key.name != nullptr ? *key.name : std::string("?");
    row.kind = key.kind;
    row.backend = key.backend != nullptr
                      ? std::string(static_cast<const char*>(key.backend))
                      : std::string();
    row.count = value.count;
    row.units = value.units;
    row.total_us = static_cast<double>(value.total_ns) * 1e-3;
    row.min_us = value.count != 0
                     ? static_cast<double>(value.min_ns) * 1e-3
                     : 0.0;
    row.max_us = static_cast<double>(value.max_ns) * 1e-3;
    if (value.total_ns != 0) {
      // flops/ns == Gflop/s, bytes/ns == GB/s.
      row.gflops_per_s = value.flops / static_cast<double>(value.total_ns);
      row.gbytes_per_s = value.bytes / static_cast<double>(value.total_ns);
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const kernel_stats& a, const kernel_stats& b) {
              if (a.total_us != b.total_us) {
                return a.total_us > b.total_us;
              }
              return a.name < b.name;
            });
  return out;
}

memory_stats aggregate_memory() {
  memory_stats m;
  for (const auto& [key, value] : fold_all_rings()) {
    switch (key.kind) {
    case construct::alloc:
      m.allocs += value.count;
      m.alloc_bytes += value.units;
      break;
    case construct::free_:
      m.frees += value.count;
      m.free_bytes += value.units;
      break;
    case construct::copy_h2d:
      m.h2d_copies += value.count;
      m.h2d_bytes += value.units;
      break;
    case construct::copy_d2h:
      m.d2h_copies += value.count;
      m.d2h_bytes += value.units;
      break;
    default:
      break;
    }
  }
  return m;
}

std::vector<pool_stats> aggregate_pools() {
  std::vector<pool_stats> out = internal::pool_snapshot();
  std::erase_if(out, [](const pool_stats& p) { return p.regions == 0; });
  return out;
}

async_stats aggregate_async() {
  async_stats a;
  std::map<std::string, comm_stat> comms;
  std::map<std::string, lane_util> lanes;
  for (const auto& [key, value] : fold_all_rings()) {
    const std::string name = key.name != nullptr ? *key.name : std::string();
    switch (key.kind) {
    case construct::queue_submit:
      a.queue_submits += value.count;
      break;
    case construct::queue_task: {
      a.queue_tasks += value.count;
      a.queue_task_us += static_cast<double>(value.total_ns) * 1e-3;
      lane_util& l = lanes[name];
      l.label = name;
      l.tasks += value.count;
      l.busy_us += static_cast<double>(value.total_ns) * 1e-3;
      break;
    }
    case construct::graph_replay:
      a.graph_replays += value.count;
      a.graph_nodes += value.units;
      a.graph_kernels += value.aux;
      a.graph_replay_us += static_cast<double>(value.total_ns) * 1e-3;
      break;
    case construct::future_wait:
      a.future_waits += value.count;
      a.future_wait_us += static_cast<double>(value.total_ns) * 1e-3;
      break;
    case construct::comm: {
      comm_stat& c = comms[name];
      c.name = name;
      c.count += value.count;
      c.bytes += value.units;
      break;
    }
    default:
      break;
    }
  }
  for (auto& [_, l] : lanes) {
    a.lanes.push_back(std::move(l));
  }
  for (auto& [_, c] : comms) {
    a.comms.push_back(std::move(c));
  }
  return a;
}

namespace {

/// Fills the rate/placement fields from (flops, bytes, time, peaks).
void place_on_roof(roofline_stats& r) {
  if (r.time_us > 0.0) {
    // bytes/us == MB/s; /1e3 == GB/s.  flops/us/1e3 == GF/s.
    r.achieved_gbps = r.bytes / r.time_us * 1e-3;
    r.achieved_gflops = r.flops / r.time_us * 1e-3;
  }
  r.intensity = r.bytes > 0.0 ? r.flops / r.bytes : 0.0;
  if (r.peak.gbps > 0.0 && r.peak.gflops > 0.0) {
    r.ridge = r.peak.gflops / r.peak.gbps;
    r.memory_bound = r.intensity < r.ridge;
    r.attainable_gflops =
        std::min(r.peak.gflops, r.intensity * r.peak.gbps);
    if (r.flops > 0.0 && r.attainable_gflops > 0.0) {
      r.pct_of_roof = 100.0 * r.achieved_gflops / r.attainable_gflops;
    } else if (r.peak.gbps > 0.0) {
      // Pure data-movement kernel: place it against the bandwidth roof.
      r.pct_of_roof = 100.0 * r.achieved_gbps / r.peak.gbps;
    }
  }
}

} // namespace

std::vector<roofline_stats> aggregate_roofline() {
  std::vector<roofline_stats> out;

  // Host rows: real wall-clock rates from the ring aggregates' hints, only
  // for backends that actually execute on the host clock.
  for (const auto& [key, value] : fold_all_rings()) {
    if (key.kind != construct::parallel_for &&
        key.kind != construct::parallel_reduce) {
      continue;
    }
    const std::string backend =
        key.backend != nullptr
            ? std::string(static_cast<const char*>(key.backend))
            : std::string();
    if (backend != "serial" && backend != "threads") {
      continue;
    }
    if (value.flops <= 0.0 && value.bytes <= 0.0) {
      continue; // unhinted: nothing to place
    }
    roofline_stats r;
    r.name = key.name != nullptr ? *key.name : std::string("?");
    r.target = backend;
    r.count = value.count;
    r.time_us = static_cast<double>(value.total_ns) * 1e-3;
    r.flops = value.flops;
    r.bytes = value.bytes;
    r.peak = host_roof();
    place_on_roof(r);
    out.push_back(std::move(r));
  }

  // Simulated rows: modeled DRAM/flop tallies at simulated time, folded per
  // (model, kernel).  A stream label "a100.q1" / "a100.rank0" belongs to
  // model "a100"; labels that resolve to no known model are skipped.
  std::map<std::pair<std::string, std::string>, roofline_stats> sims;
  for (const auto& ev : internal::sim_snapshot()) {
    if (ev.category != "kernel") {
      continue; // transfers/allocs move bytes but are not roofline subjects
    }
    if (ev.dur_us <= 0.0 || (ev.flops == 0 && ev.dram_bytes == 0)) {
      continue; // stall/wait bookkeeping, not kernel work
    }
    const std::string model = ev.device.substr(0, ev.device.find('.'));
    const auto peak = model_roof(model);
    if (!peak) {
      continue;
    }
    roofline_stats& r = sims[{model, ev.name}];
    if (r.count == 0) {
      r.name = ev.name;
      r.target = model;
      r.simulated = true;
      r.peak = *peak;
    }
    ++r.count;
    r.time_us += ev.dur_us;
    r.flops += static_cast<double>(ev.flops);
    r.bytes += static_cast<double>(ev.dram_bytes);
  }
  for (auto& [_, r] : sims) {
    place_on_roof(r);
    out.push_back(std::move(r));
  }

  std::sort(out.begin(), out.end(),
            [](const roofline_stats& a, const roofline_stats& b) {
              if (a.target != b.target) {
                return a.target < b.target;
              }
              if (a.time_us != b.time_us) {
                return a.time_us > b.time_us;
              }
              return a.name < b.name;
            });
  return out;
}

namespace {

std::mutex& rate_sink_mutex() {
  static std::mutex m;
  return m;
}

rate_sink& rate_sink_slot() {
  static rate_sink sink;
  return sink;
}

} // namespace

void register_rate_sink(rate_sink sink) {
  const std::lock_guard<std::mutex> lock(rate_sink_mutex());
  rate_sink_slot() = std::move(sink);
}

void note_rate(std::string_view target, std::string_view kernel, double gbps,
               double gflops) {
  rate_sink sink;
  {
    const std::lock_guard<std::mutex> lock(rate_sink_mutex());
    sink = rate_sink_slot();
  }
  if (sink) {
    sink(target, kernel, gbps, gflops);
  }
}

void publish_roofline_feedback() {
  rate_sink sink;
  {
    const std::lock_guard<std::mutex> lock(rate_sink_mutex());
    sink = rate_sink_slot();
  }
  if (!sink) {
    return;
  }
  for (const roofline_stats& r : aggregate_roofline()) {
    if (r.achieved_gbps > 0.0 || r.achieved_gflops > 0.0) {
      sink(r.target, r.name, r.achieved_gbps, r.achieved_gflops);
    }
  }
}

std::string roofline_text() {
  std::ostringstream os;
  os << "== jaccx::prof roofline ==\n";
  const auto rows = aggregate_roofline();
  if (rows.empty()) {
    os << "(no hinted kernels recorded; sim rows need JACC_PROFILE=roofline "
          "at kernel time)\n";
    return os.str();
  }
  char line[256];
  std::snprintf(line, sizeof line,
                "%-10s %-28s %9s %9s %9s %10s %10s %-7s %7s\n", "target",
                "kernel", "AI f/B", "peak GB/s", "peak GF/s", "ach GB/s",
                "ach GF/s", "bound", "%roof");
  os << line;
  for (const roofline_stats& r : rows) {
    std::snprintf(line, sizeof line,
                  "%-10s %-28s %9.3f %9.0f %9.0f %10.2f %10.2f %-7s %6.1f%%\n",
                  r.target.c_str(), r.name.c_str(), r.intensity, r.peak.gbps,
                  r.peak.gflops, r.achieved_gbps, r.achieved_gflops,
                  r.memory_bound ? "memory" : "compute", r.pct_of_roof);
    os << line;
  }
  return os.str();
}

std::string summary_text() {
  std::ostringstream os;
  os << "== jaccx::prof summary ==\n";

  const auto kernels = aggregate_kernels();
  if (kernels.empty()) {
    os << "(no kernels recorded)\n";
  } else {
    char line[256];
    std::snprintf(line, sizeof line, "%-28s %-16s %-12s %8s %12s %10s %10s %10s %8s %8s\n",
                  "kernel", "construct", "backend", "count", "total_us",
                  "min_us", "mean_us", "max_us", "GB/s", "GF/s");
    os << line;
    for (const kernel_stats& k : kernels) {
      const double mean =
          k.count != 0 ? k.total_us / static_cast<double>(k.count) : 0.0;
      std::snprintf(line, sizeof line,
                    "%-28s %-16s %-12s %8" PRIu64
                    " %12.1f %10.2f %10.2f %10.2f %8.2f %8.2f\n",
                    k.name.c_str(), to_string(k.kind),
                    k.backend.empty() ? "-" : k.backend.c_str(), k.count,
                    k.total_us, k.min_us, mean, k.max_us, k.gbytes_per_s,
                    k.gflops_per_s);
      os << line;
    }
  }

  const memory_stats m = aggregate_memory();
  if (m.allocs + m.frees + m.h2d_copies + m.d2h_copies != 0) {
    os << "-- memory --\n";
    char line[192];
    std::snprintf(line, sizeof line,
                  "alloc %" PRIu64 "x / %.1f MiB   free %" PRIu64
                  "x / %.1f MiB   h2d %" PRIu64 "x / %.1f MiB   d2h %" PRIu64
                  "x / %.1f MiB\n",
                  m.allocs, static_cast<double>(m.alloc_bytes) / (1 << 20),
                  m.frees, static_cast<double>(m.free_bytes) / (1 << 20),
                  m.h2d_copies, static_cast<double>(m.h2d_bytes) / (1 << 20),
                  m.d2h_copies, static_cast<double>(m.d2h_bytes) / (1 << 20));
    os << line;
  }

  const auto mem_pools = aggregate_mem_pools();
  if (!mem_pools.empty()) {
    os << "-- memory pool (mode " << mem_pools.front().mode << ") --\n";
    char line[224];
    for (const mem_pool_stats& p : mem_pools) {
      const std::uint64_t lookups = p.hits + p.misses;
      const double rate =
          lookups != 0 ? 100.0 * static_cast<double>(p.hits) /
                             static_cast<double>(lookups)
                       : 0.0;
      std::snprintf(line, sizeof line,
                    "%-10s hits %8" PRIu64 "  stalls %4" PRIu64 "  misses %6"
                    PRIu64
                    "  hit-rate %5.1f%%  cached %8.1f KiB  live %8.1f KiB  "
                    "workspace %8.1f KiB  high-water %8.1f KiB\n",
                    p.label.c_str(), p.hits, p.stalls, p.misses, rate,
                    static_cast<double>(p.bytes_cached) / 1024.0,
                    static_cast<double>(p.bytes_live) / 1024.0,
                    static_cast<double>(p.workspace_bytes) / 1024.0,
                    static_cast<double>(p.high_water_bytes) / 1024.0);
      os << line;
    }
  }

  const auto queues = aggregate_queues();
  if (!queues.empty()) {
    os << "-- queues --\n";
    char line[224];
    for (const queue_stats& q : queues) {
      std::snprintf(line, sizeof line,
                    "%-8s launches %6" PRIu64 "  copies %6" PRIu64
                    "  async %6" PRIu64 "  waits %4" PRIu64 "  syncs %4" PRIu64
                    "  lane %2d  sim %10.1f us\n",
                    q.label.c_str(), q.launches, q.copies, q.async_tasks,
                    q.waits, q.syncs, q.lane, q.sim_us);
      os << line;
    }
  }

  const serve_stats serving = aggregate_serve();
  if (!serving.tenants.empty()) {
    os << "-- serve --\n";
    char line[256];
    for (const serve_tenant_stats& t : serving.tenants) {
      std::snprintf(line, sizeof line,
                    "%-12s w %4.1f prio %d  sub %6" PRIu64 "  adm %6" PRIu64
                    "  def %5" PRIu64 " (adm %5" PRIu64 ")  rej %4" PRIu64
                    "  done %6" PRIu64 "  wait p50 %9.1f us  p99 %9.1f us\n",
                    t.name.c_str(), t.weight, t.priority, t.submitted,
                    t.admitted, t.deferred, t.deferred_admitted, t.rejected,
                    t.completed, t.wait_p50_us, t.wait_p99_us);
      os << line;
    }
    for (const serve_slot_stats& sl : serving.slots) {
      const double util = serving.uptime_us > 0.0
                              ? 100.0 * sl.busy_us / serving.uptime_us
                              : 0.0;
      std::snprintf(line, sizeof line,
                    "  slot %-3d jobs %6" PRIu64 "  busy %10.1f us  (%5.1f%% "
                    "of uptime)\n",
                    sl.slot, sl.jobs, sl.busy_us, util);
      os << line;
    }
  }

  for (const pool_stats& p : aggregate_pools()) {
    os << "-- pool " << p.label << " (width " << p.width << ", schedule "
       << p.schedule << ", " << p.regions << " regions) --\n";
    char line[192];
    for (const pool_worker_stat& w : p.workers) {
      std::snprintf(line, sizeof line,
                    "worker %-3u busy %10.1f us  spin %10.1f us  park %10.1f "
                    "us  parks %6" PRIu64 "  chunks %8" PRIu64 "\n",
                    w.worker, static_cast<double>(w.busy_ns) * 1e-3,
                    static_cast<double>(w.spin_ns) * 1e-3,
                    static_cast<double>(w.park_ns) * 1e-3, w.parks, w.chunks);
      os << line;
    }
  }

  const async_stats a = aggregate_async();
  if (a.queue_submits + a.queue_tasks + a.graph_replays + a.future_waits != 0 ||
      !a.comms.empty()) {
    os << "-- async --\n";
    char line[224];
    std::snprintf(line, sizeof line,
                  "queue submits %8" PRIu64 "  tasks %8" PRIu64
                  "  busy %10.1f us\n",
                  a.queue_submits, a.queue_tasks, a.queue_task_us);
    os << line;
    for (const lane_util& l : a.lanes) {
      const double share =
          a.queue_task_us > 0.0 ? 100.0 * l.busy_us / a.queue_task_us : 0.0;
      std::snprintf(line, sizeof line,
                    "  %-22s tasks %8" PRIu64
                    "  busy %10.1f us  (%5.1f%% of queue busy)\n",
                    l.label.c_str(), l.tasks, l.busy_us, share);
      os << line;
    }
    if (a.graph_replays != 0) {
      std::snprintf(line, sizeof line,
                    "graph replays %8" PRIu64 "  nodes %8" PRIu64
                    "  kernels %8" PRIu64 "  span %10.1f us\n",
                    a.graph_replays, a.graph_nodes, a.graph_kernels,
                    a.graph_replay_us);
      os << line;
    }
    if (a.future_waits != 0) {
      std::snprintf(line, sizeof line,
                    "future waits  %8" PRIu64
                    "  blocked %10.1f us  mean %8.2f us\n",
                    a.future_waits, a.future_wait_us,
                    a.future_wait_us / static_cast<double>(a.future_waits));
      os << line;
      const auto hist = future_wait_histogram();
      os << "wait histogram:";
      for (std::size_t b = 0; b < hist.size(); ++b) {
        if (hist[b] == 0) {
          continue;
        }
        if (b == 0) {
          os << " <1us:" << hist[b];
        } else {
          os << " <" << (std::uint64_t{1} << b) << "us:" << hist[b];
        }
      }
      os << "\n";
    }
    for (const comm_stat& c : a.comms) {
      std::snprintf(line, sizeof line, "comm %-20s %8" PRIu64 "x  %12.1f KiB\n",
                    c.name.c_str(), c.count,
                    static_cast<double>(c.bytes) / 1024.0);
      os << line;
    }
  }
  return os.str();
}

std::string chrome_trace_json() {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  append_meta(os, first, host_pid, 0, "process_name", "jacc host (wall clock)");

  const auto rings = internal::ring_snapshot();
  for (const event_ring* ring : rings) {
    append_meta(os, first, host_pid, static_cast<int>(ring->tid()),
                "thread_name", ring->label());
  }

  for (const event_ring* ring : rings) {
    const int tid = static_cast<int>(ring->tid());
    const std::uint64_t count = ring->count();
    const std::uint64_t resident = ring->resident();
    for (std::uint64_t i = count - resident; i < count; ++i) {
      const record& r = ring->at(i);
      if (!first) {
        os << ",\n";
      }
      first = false;
      const double ts = static_cast<double>(r.t0_ns) * 1e-3;
      const double dur = static_cast<double>(r.t1_ns - r.t0_ns) * 1e-3;
      const char* name = r.name != nullptr ? r.name->c_str() : "?";
      if (r.t1_ns == r.t0_ns) {
        os << "  {\"ph\":\"i\",\"s\":\"t\",\"pid\":" << host_pid
           << ",\"tid\":" << tid << ",\"ts\":" << ts << ",\"name\":\""
           << json_escape(name) << "\",\"cat\":\"" << to_string(r.kind)
           << "\",\"args\":{";
        if (r.kind == construct::queue_submit) {
          os << "\"queue\":" << r.units << ",\"flow\":" << r.aux;
        } else {
          os << "\"bytes\":" << r.units;
        }
        os << "}}";
        if (r.kind == construct::queue_submit && r.aux != 0) {
          // Flow start: pairs with the "f" event on the executing lane task,
          // drawing the submission→execution arrow in the trace viewer.
          os << ",\n  {\"ph\":\"s\",\"id\":" << r.aux
             << ",\"pid\":" << host_pid << ",\"tid\":" << tid
             << ",\"ts\":" << ts
             << ",\"name\":\"queue.flow\",\"cat\":\"queue\"}";
        }
        continue;
      }
      os << "  {\"ph\":\"X\",\"pid\":" << host_pid << ",\"tid\":" << tid
         << ",\"ts\":" << ts << ",\"dur\":" << dur << ",\"name\":\""
         << json_escape(name) << "\",\"cat\":\"" << to_string(r.kind)
         << "\",\"args\":{";
      if (r.kind == construct::pool_busy || r.kind == construct::pool_park) {
        os << "\"worker\":" << r.worker << ",\"chunks\":" << r.units;
      } else if (r.kind == construct::queue_task) {
        os << "\"lane\":" << r.worker << ",\"queue\":" << r.units
           << ",\"flow\":" << r.aux;
      } else if (r.kind == construct::graph_replay) {
        os << "\"nodes\":" << r.units << ",\"kernels\":" << r.aux;
      } else if (r.kind == construct::future_wait) {
        os << "\"wait_us\":" << dur;
      } else {
        os << "\"indices\":" << r.units
           << ",\"flops_per_index\":" << r.flops_per_index
           << ",\"bytes_per_index\":" << r.bytes_per_index;
        if (!r.backend.empty()) {
          os << ",\"backend\":\"" << json_escape(r.backend) << "\"";
        }
      }
      os << "}}";
      if (r.kind == construct::queue_task && r.aux != 0) {
        // Flow finish bound to this span's start (bp:"e").
        os << ",\n  {\"ph\":\"f\",\"bp\":\"e\",\"id\":" << r.aux
           << ",\"pid\":" << host_pid << ",\"tid\":" << tid
           << ",\"ts\":" << ts
           << ",\"name\":\"queue.flow\",\"cat\":\"queue\"}";
      }
    }
  }

  // Simulated devices: one pid per device label, events at their simulated
  // timestamps (already microseconds, the trace's native unit).
  const auto sims = internal::sim_snapshot();
  std::vector<std::string> device_order;
  for (const auto& ev : sims) {
    if (std::find(device_order.begin(), device_order.end(), ev.device) ==
        device_order.end()) {
      device_order.push_back(ev.device);
    }
  }
  for (std::size_t d = 0; d < device_order.size(); ++d) {
    append_meta(os, first, host_pid + 1 + static_cast<int>(d), 0,
                "process_name", "sim:" + device_order[d]);
  }
  for (const auto& ev : sims) {
    const auto it =
        std::find(device_order.begin(), device_order.end(), ev.device);
    const int pid =
        host_pid + 1 +
        static_cast<int>(std::distance(device_order.begin(), it));
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "  {\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":0,\"ts\":" << ev.ts_us
       << ",\"dur\":" << ev.dur_us << ",\"name\":\"" << json_escape(ev.name)
       << "\",\"cat\":\"sim." << json_escape(ev.category)
       << "\",\"args\":{\"dram_bytes\":" << ev.dram_bytes
       << ",\"cache_bytes\":" << ev.cache_bytes << ",\"flops\":" << ev.flops
       << ",\"indices\":" << ev.indices << "}}";
  }

  os << "\n]}\n";
  return os.str();
}

std::string expand_trace_path(std::string_view path) {
#ifdef _WIN32
  const long pid = static_cast<long>(_getpid());
#else
  const long pid = static_cast<long>(getpid());
#endif
  std::string out;
  out.reserve(path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i] == '%' && i + 1 < path.size() && path[i + 1] == 'p') {
      out += std::to_string(pid);
      ++i;
    } else {
      out += path[i];
    }
  }
  return out;
}

void finalize() {
  // Feed measured placement (auto_backend) before any report is printed;
  // a no-op without a registered sink or collected data.
  publish_roofline_feedback();
  const unsigned m = mode();
  if ((m & (mode_summary | mode_trace | mode_roofline)) == 0) {
    return;
  }
  if (!internal::report_signature_changed(current_signature())) {
    return;
  }
  if ((m & mode_summary) != 0) {
    const std::string text = summary_text();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
  }
  if ((m & mode_roofline) != 0) {
    const std::string text = roofline_text();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
  }
  if ((m & mode_trace) != 0) {
    std::string path = trace_path();
    if (path.empty()) {
      path = "jacc_trace.json";
    }
    path = expand_trace_path(path);
    std::ofstream out(path, std::ios::trunc);
    if (out) {
      out << chrome_trace_json();
    } else {
      std::fprintf(stderr, "jaccx::prof: cannot write trace file '%s'\n",
                   path.c_str());
    }
  }
}

} // namespace jaccx::prof
