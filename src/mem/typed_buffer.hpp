// Typed, pool-backed device buffer: sim::device_buffer's interface on top
// of mem::acquire/release.
//
// sim::device_buffer talks to the device arena directly, which made the
// multi-GPU shard buffers the last allocation path that bypassed the pool
// (ROADMAP).  pooled_buffer<T> closes that: same charging semantics as
// device_buffer when the pool is off (mode `none` IS the seed arena path),
// free-list reuse when it is on, so a steady-state shard workload allocates
// device memory once and then runs at pool-miss zero.
#pragma once

#include <cstring>
#include <string_view>
#include <utility>

#include "mem/pool.hpp"
#include "sim/memspace.hpp"

namespace jaccx::mem {

/// Owning, move-only device allocation acquired from the mem pool.  All
/// transfer charging mirrors sim::device_buffer exactly; only the storage
/// provenance differs.
template <class T>
class pooled_buffer {
public:
  pooled_buffer() = default;

  pooled_buffer(sim::device& dev, index_t count,
                std::string_view name = "buffer", queue_ctx qc = {})
      : dev_(&dev), count_(count) {
    JACCX_ASSERT(count >= 0);
    blk_ = acquire(&dev, static_cast<std::size_t>(count) * sizeof(T), name,
                   qc);
  }

  pooled_buffer(const pooled_buffer&) = delete;
  pooled_buffer& operator=(const pooled_buffer&) = delete;
  pooled_buffer(pooled_buffer&& other) noexcept
      : dev_(std::exchange(other.dev_, nullptr)),
        blk_(std::exchange(other.blk_, block{})),
        count_(std::exchange(other.count_, 0)) {}
  pooled_buffer& operator=(pooled_buffer&& other) noexcept {
    if (this != &other) {
      reset();
      dev_ = std::exchange(other.dev_, nullptr);
      blk_ = std::exchange(other.blk_, block{});
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }

  ~pooled_buffer() { reset(); }

  /// Returns the storage to the pool (or the arena under mode `none`).
  void reset(queue_ctx qc = {}) noexcept {
    release(blk_, qc);
    dev_ = nullptr;
    count_ = 0;
  }

  /// Copies count() elements from host memory, charging an H2D transfer.
  void copy_from_host(const T* src, std::string_view name = "h2d") {
    JACCX_ASSERT(dev_ != nullptr);
    std::memcpy(data(), src, payload_bytes());
    dev_->charge_h2d(payload_bytes(), name);
  }

  /// Copies count() elements to host memory, charging a D2H transfer.
  void copy_to_host(T* dst, std::string_view name = "d2h") const {
    JACCX_ASSERT(dev_ != nullptr);
    std::memcpy(dst, data(), payload_bytes());
    dev_->charge_d2h(payload_bytes(), name);
  }

  /// Sets every element to `value` host-side without charging time.  A
  /// pool-recycled block carries the previous tenant's bits, so holders
  /// that relied on device_buffer's zeroed arena pages must call this.
  void fill_untracked(T value) {
    T* p = data();
    for (index_t i = 0; i < count_; ++i) {
      p[i] = value;
    }
  }

  sim::device_span<T> span() { return {data(), count_, dev_}; }

  T* data() { return static_cast<T*>(blk_.ptr); }
  const T* data() const { return static_cast<const T*>(blk_.ptr); }
  index_t size() const { return count_; }
  /// Bytes of live payload (the pool may have rounded the backing block up).
  std::uint64_t payload_bytes() const {
    return static_cast<std::uint64_t>(count_) * sizeof(T);
  }
  bool empty() const { return count_ == 0; }
  sim::device* owner() const { return dev_; }
  /// Whether this acquire was served from the pool's free list without
  /// touching the backing store (the shard steady-state pin reads this).
  bool from_cache() const { return blk_.from_cache; }

private:
  sim::device* dev_ = nullptr;
  block blk_{};
  index_t count_ = 0;
};

} // namespace jaccx::mem
