#include "mem/pool.hpp"
#include "mem/workspace.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <new>
#include <utility>

#include "sim/device.hpp"
#include "support/env.hpp"
#include "support/error.hpp"

namespace jaccx::mem {
namespace {

constexpr std::size_t host_align = 64;    // matches jaccx::aligned_buffer
constexpr std::size_t device_align = 256; // matches the device arena

std::size_t round_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

void* host_alloc(std::size_t bytes) {
  void* p = std::aligned_alloc(host_align, round_up(bytes, host_align));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

std::atomic<std::uint64_t> g_alloc_retries{0};

/// Memory-pressure subscribers (admission control).  Guarded by their own
/// mutex, never invoked with any pool lock held.
struct pressure_registry {
  std::mutex mu;
  std::uint64_t next_token = 1;
  std::map<std::uint64_t, std::function<void()>> callbacks;
};

pressure_registry& pressure_reg() {
  static pressure_registry* r = new pressure_registry();
  return *r;
}

/// Fires every registered pressure callback.  Must be called with NO pool
/// lock held: subscribers are allowed to call back into the pool.
void notify_pressure() {
  std::vector<std::function<void()>> fns;
  {
    pressure_registry& r = pressure_reg();
    const std::lock_guard lock(r.mu);
    fns.reserve(r.callbacks.size());
    for (const auto& [token, fn] : r.callbacks) {
      fns.push_back(fn);
    }
  }
  for (const auto& fn : fns) {
    fn();
  }
}

/// One parked free-list block, tagged with the queue that released it and
/// that queue's simulated clock at release time (stream-ordered reuse).
struct cached_block {
  void* ptr = nullptr;
  std::uint64_t queue = 0;
  double released_us = 0.0;
  /// Monotonic release order across ALL pools — the LRU eviction key for
  /// the bytes_cached cap.  Never consulted by acquire's pick logic, so
  /// an uncapped pool behaves exactly as before stamps existed.
  std::uint64_t stamp = 0;
};

/// Counters + free lists for one backing store.  All fields are guarded by
/// state_t::mu; `dev == nullptr` is the shared host pool.
struct backing_pool {
  sim::device* dev = nullptr;
  /// Cached blocks keyed by backing size (power-of-two buckets and
  /// exact-size large blocks share one map — the key IS the size class).
  std::map<std::size_t, std::vector<cached_block>> free_lists;
  std::uint64_t hits = 0;
  std::uint64_t stalls = 0; ///< hits served from another queue's releases
  std::uint64_t misses = 0;
  std::uint64_t bytes_cached = 0;
  std::uint64_t bytes_live = 0;
  std::uint64_t live_blocks = 0;
  std::uint64_t workspace_bytes = 0;
  std::uint64_t high_water = 0;

  bool touched() const {
    return hits + misses + live_blocks + workspace_bytes + high_water != 0;
  }
  void bump_high_water() {
    high_water = std::max(high_water, bytes_live + bytes_cached + workspace_bytes);
  }
};

struct workspace_entry {
  void* partials = nullptr;
  std::size_t partial_bytes = 0;
  void* result = nullptr;
  std::size_t result_bytes = 0;
};

/// One parked host reduction scratch slab (workspace.hpp lease pool).
struct scratch_slab {
  void* ptr = nullptr;
  std::size_t capacity = 0;
};

struct state_t {
  std::mutex mu;
  backing_pool host;
  std::map<sim::device*, backing_pool> device_pools;
  std::map<std::pair<sim::device*, std::size_t>, workspace_entry> workspaces;
  std::uint64_t next_stamp = 0; ///< LRU clock for cached_block::stamp

  /// Parked host reduction scratch slabs (guarded by mu, held only for the
  /// park/unpark instants — leased slabs are owned by their lease, so
  /// concurrent reductions never serialize on a shared buffer).
  std::vector<scratch_slab> scratch_free;
  /// Capacity across parked AND leased slabs (mirrors host.workspace_bytes).
  std::size_t scratch_total = 0;

  state_t() {
    prof::register_mem_pool_source([] { return stats(); });
  }
};

// Leaked (never destroyed): release() runs from array destructors that may
// outlive any static destruction order.
state_t& st() {
  static state_t* s = new state_t();
  return *s;
}

backing_pool& pool_for_locked(state_t& s, sim::device* dev) {
  if (dev == nullptr) {
    return s.host;
  }
  backing_pool& p = s.device_pools[dev];
  p.dev = dev;
  return p;
}

std::atomic<int> g_mode{-1}; // -1: not yet resolved

pool_mode resolve_env_mode() {
  if (const auto env = get_env("JACC_MEM_POOL")) {
    if (const auto m = parse_mode(*env)) {
      return *m;
    }
    // Lazy path stays non-throwing (it runs inside allocation calls);
    // jacc::initialize() rejects unknown values loudly.
  }
  return pool_mode::bucket;
}

// -1: unresolved (first cache_cap() query reads JACC_MEM_CAP_MB);
// 0: uncapped; > 0: cap in bytes.
std::atomic<long long> g_cache_cap{-1};
std::atomic<bool> g_cache_cap_pinned{false};

long long resolve_env_cap() {
  if (const auto env = get_env("JACC_MEM_CAP_MB")) {
    char* end = nullptr;
    const long long mb = std::strtoll(env->c_str(), &end, 10);
    if (end != env->c_str() && *end == '\0' && mb > 0) {
      return mb * (1ll << 20);
    }
    // Lazy path stays non-throwing; jacc::initialize() rejects garbage.
  }
  return 0;
}

std::uint64_t total_cached_locked(state_t& s) {
  std::uint64_t n = s.host.bytes_cached;
  for (const auto& [dev, p] : s.device_pools) {
    n += p.bytes_cached;
  }
  return n;
}

/// Frees the single oldest-released cached block across every pool back to
/// its backing store.  Returns the bytes it occupied (0 when nothing is
/// cached anywhere).
std::uint64_t evict_oldest_locked(state_t& s) {
  backing_pool* best_pool = nullptr;
  std::size_t best_size = 0;
  std::size_t best_idx = 0;
  std::uint64_t best_stamp = 0;
  const auto scan = [&](backing_pool& p) {
    for (auto& [size, list] : p.free_lists) {
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (best_pool == nullptr || list[i].stamp < best_stamp) {
          best_pool = &p;
          best_size = size;
          best_idx = i;
          best_stamp = list[i].stamp;
        }
      }
    }
  };
  scan(s.host);
  for (auto& [dev, p] : s.device_pools) {
    scan(p);
  }
  if (best_pool == nullptr) {
    return 0;
  }
  auto& list = best_pool->free_lists[best_size];
  const cached_block cb = list[best_idx];
  list.erase(list.begin() + static_cast<std::ptrdiff_t>(best_idx));
  if (list.empty()) {
    best_pool->free_lists.erase(best_size);
  }
  if (best_pool->dev != nullptr) {
    best_pool->dev->charge_free(best_size);
    best_pool->dev->arena_release();
  } else {
    std::free(cb.ptr);
  }
  best_pool->bytes_cached -= best_size;
  return best_size;
}

void trim_locked(state_t& s, std::uint64_t target) {
  while (total_cached_locked(s) > target) {
    if (evict_oldest_locked(s) == 0) {
      break;
    }
  }
}

/// Runs `attempt` once; on std::bad_alloc, empties every free list back to
/// the backing stores (cached device blocks drop their arena live-refs, so
/// a fully-parked arena rewinds) and retries exactly once.  The second
/// failure propagates.  Caller holds s.mu and must set `pressured` so the
/// pressure callbacks fire after the lock is dropped.
template <typename F>
auto alloc_with_retry_locked(state_t& s, bool& pressured, F&& attempt) {
  try {
    return attempt();
  } catch (const std::bad_alloc&) {
    trim_locked(s, 0);
    g_alloc_retries.fetch_add(1, std::memory_order_relaxed);
    pressured = true;
    return attempt();
  }
}

void drain_locked(state_t& s) {
  const auto drain_pool = [](backing_pool& p) {
    for (auto& [size, list] : p.free_lists) {
      for (const cached_block& cb : list) {
        if (p.dev != nullptr) {
          p.dev->charge_free(size);
          p.dev->arena_release();
        } else {
          std::free(cb.ptr);
        }
      }
      p.bytes_cached -= size * list.size();
    }
    p.free_lists.clear();
    JACCX_ASSERT(p.bytes_cached == 0);
  };
  drain_pool(s.host);
  for (auto& [dev, p] : s.device_pools) {
    drain_pool(p);
  }
  for (auto& [key, ws] : s.workspaces) {
    sim::device* dev = key.first;
    backing_pool& p = pool_for_locked(s, dev);
    if (ws.partials != nullptr) {
      dev->charge_free(ws.partial_bytes);
      dev->arena_release();
      p.workspace_bytes -= ws.partial_bytes;
    }
    if (ws.result != nullptr) {
      dev->charge_free(ws.result_bytes);
      dev->arena_release();
      p.workspace_bytes -= ws.result_bytes;
    }
  }
  s.workspaces.clear();
  // Parked scratch slabs are freed; leased slabs stay with their lease (a
  // lease returning after drain re-parks its slab, caught by the next
  // drain), so their capacity stays counted.
  for (const scratch_slab& slab : s.scratch_free) {
    std::free(slab.ptr);
    JACCX_ASSERT(s.scratch_total >= slab.capacity);
    s.scratch_total -= slab.capacity;
  }
  s.scratch_free.clear();
  s.host.workspace_bytes = s.scratch_total;
}

} // namespace

std::optional<pool_mode> parse_mode(std::string_view spec) {
  if (spec == "bucket" || spec == "pool" || spec == "on") {
    return pool_mode::bucket;
  }
  if (spec == "none" || spec == "off") {
    return pool_mode::none;
  }
  return std::nullopt;
}

pool_mode mode() {
  int m = g_mode.load(std::memory_order_acquire);
  if (m < 0) {
    int expected = -1;
    g_mode.compare_exchange_strong(expected,
                                   static_cast<int>(resolve_env_mode()),
                                   std::memory_order_acq_rel);
    m = g_mode.load(std::memory_order_acquire);
  }
  return static_cast<pool_mode>(m);
}

void set_mode(pool_mode m) {
  const int prev = g_mode.exchange(static_cast<int>(m),
                                   std::memory_order_acq_rel);
  if (prev != static_cast<int>(m)) {
    drain();
  }
}

void set_default_mode(pool_mode m) {
  // No drain needed on success: an unresolved mode means no allocation has
  // gone through the pool yet (mode() resolves on first acquire).
  int expected = -1;
  g_mode.compare_exchange_strong(expected, static_cast<int>(m),
                                 std::memory_order_acq_rel);
}

std::size_t bucket_bytes(std::size_t bytes) {
  if (bytes <= min_bucket_bytes) {
    return min_bucket_bytes;
  }
  if (bytes <= max_pow2_bucket_bytes) {
    return std::bit_ceil(bytes);
  }
  return round_up(bytes, device_align);
}

block acquire(sim::device* dev, std::size_t bytes, std::string_view name,
              queue_ctx qc) {
  block b;
  b.dev = dev;
  if (mode() == pool_mode::none || bytes == 0) {
    // Seed-exact passthrough (also the zero-byte degenerate case in
    // bucket mode: the arena still hands out a distinct address, matching
    // the seed, and a null host pointer stays null).  Exhaustion still
    // gets the trim-once-and-retry treatment: the success path is
    // bit-identical to the seed, only the failure path changes.
    b.bytes = bytes;
    const auto with_retry = [](auto&& attempt) {
      try {
        return attempt();
      } catch (const std::bad_alloc&) {
        trim(0);
        g_alloc_retries.fetch_add(1, std::memory_order_relaxed);
        auto* p = attempt();
        notify_pressure();
        return p;
      }
    };
    if (dev != nullptr) {
      b.ptr = with_retry([&] { return dev->arena_allocate(bytes); });
      dev->charge_alloc(bytes, name);
    } else if (bytes != 0) {
      b.ptr = with_retry([&] { return host_alloc(bytes); });
    }
    if (b.ptr != nullptr || dev != nullptr) {
      state_t& s = st();
      const std::lock_guard lock(s.mu);
      backing_pool& p = pool_for_locked(s, dev);
      p.bytes_live += bytes;
      ++p.live_blocks;
      p.bump_high_water();
    }
    return b;
  }

  const std::size_t rounded = bucket_bytes(bytes);
  b.bytes = rounded;
  b.pooled = true;
  bool pressured = false;
  state_t& s = st();
  std::unique_lock lock(s.mu);
  backing_pool& p = pool_for_locked(s, dev);
  if (const auto it = p.free_lists.find(rounded);
      it != p.free_lists.end() && !it->second.empty()) {
    // Stream-ordered preference: newest block released on the SAME queue
    // first (no synchronization implied).  With only the default queue in
    // play every entry matches and this is exactly the old LIFO pop_back.
    auto& list = it->second;
    auto pick = list.end();
    for (auto e = list.rbegin(); e != list.rend(); ++e) {
      if (e->queue == qc.queue) {
        pick = std::prev(e.base());
        break;
      }
    }
    if (pick == list.end()) {
      // Cross-queue reuse: take the newest block and surface the implied
      // sync — the consumer cannot touch it before the release instant.
      pick = std::prev(list.end());
      if (pick->released_us > qc.now_us) {
        b.stall_us = pick->released_us;
        ++p.stalls;
      }
    }
    b.ptr = pick->ptr;
    list.erase(pick);
    b.from_cache = true;
    ++p.hits;
    p.bytes_cached -= rounded;
  } else {
    // Miss: the backing store is charged for the full size class, exactly
    // as a caching allocator requests rounded blocks from the driver.  On
    // exhaustion the free lists are trimmed to zero and the allocation
    // retried once before std::bad_alloc reaches the caller.
    b.ptr = alloc_with_retry_locked(s, pressured, [&] {
      return dev != nullptr ? dev->arena_allocate(rounded)
                            : host_alloc(rounded);
    });
    if (dev != nullptr) {
      dev->charge_alloc(rounded, name);
    }
    ++p.misses;
  }
  p.bytes_live += rounded;
  ++p.live_blocks;
  p.bump_high_water();
  if (pressured) {
    lock.unlock();
    notify_pressure();
  }
  return b;
}

void release(block& b, queue_ctx qc) noexcept {
  if (b.ptr == nullptr && b.dev == nullptr) {
    b = block{};
    return;
  }
  state_t& s = st();
  const std::lock_guard lock(s.mu);
  backing_pool& p = pool_for_locked(s, b.dev);
  if (b.pooled && mode() == pool_mode::bucket) {
    p.free_lists[b.bytes].push_back({b.ptr, qc.queue, qc.now_us,
                                     ++s.next_stamp});
    p.bytes_cached += b.bytes;
    // LRU cap: evict the oldest parked blocks (possibly the one just
    // parked, if it alone exceeds the cap) until the total fits.
    if (const std::uint64_t cap = cache_cap(); cap != 0) {
      trim_locked(s, cap);
    }
  } else if (b.dev != nullptr) {
    // Unpooled (none mode / zero-byte) or pooled-but-mode-switched blocks
    // go straight back; either way the charge matches what acquire took.
    b.dev->charge_free(b.bytes);
    b.dev->arena_release();
  } else {
    std::free(b.ptr);
  }
  JACCX_ASSERT(p.live_blocks > 0 && p.bytes_live >= b.bytes);
  p.bytes_live -= b.bytes;
  --p.live_blocks;
  b = block{};
}

std::uint64_t cache_cap() {
  long long c = g_cache_cap.load(std::memory_order_acquire);
  if (c < 0) {
    long long expected = -1;
    g_cache_cap.compare_exchange_strong(expected, resolve_env_cap(),
                                        std::memory_order_acq_rel);
    c = g_cache_cap.load(std::memory_order_acquire);
  }
  return static_cast<std::uint64_t>(c);
}

void set_cache_cap(std::uint64_t bytes) {
  g_cache_cap_pinned.store(true, std::memory_order_release);
  g_cache_cap.store(static_cast<long long>(bytes), std::memory_order_release);
  if (bytes != 0) {
    trim(bytes);
  }
}

void set_default_cache_cap(std::uint64_t bytes) {
  if (!g_cache_cap_pinned.load(std::memory_order_acquire)) {
    g_cache_cap.store(static_cast<long long>(bytes),
                      std::memory_order_release);
  }
}

void trim(std::size_t target_bytes) {
  state_t& s = st();
  const std::lock_guard lock(s.mu);
  trim_locked(s, target_bytes);
}

void drain() {
  state_t& s = st();
  // One lock suffices for the scratch slabs too: a concurrent lease owns
  // its slab outright (it is off the free list), so drain can only free
  // parked storage.
  const std::lock_guard lock(s.mu);
  drain_locked(s);
}

std::uint64_t alloc_retries() {
  return g_alloc_retries.load(std::memory_order_relaxed);
}

std::uint64_t add_pressure_callback(std::function<void()> fn) {
  pressure_registry& r = pressure_reg();
  const std::lock_guard lock(r.mu);
  const std::uint64_t token = r.next_token++;
  r.callbacks.emplace(token, std::move(fn));
  return token;
}

void remove_pressure_callback(std::uint64_t token) {
  pressure_registry& r = pressure_reg();
  const std::lock_guard lock(r.mu);
  r.callbacks.erase(token);
}

std::uint64_t live_blocks() {
  state_t& s = st();
  const std::lock_guard lock(s.mu);
  std::uint64_t n = s.host.live_blocks;
  for (const auto& [dev, p] : s.device_pools) {
    n += p.live_blocks;
  }
  return n;
}

std::uint64_t cached_bytes() {
  state_t& s = st();
  const std::lock_guard lock(s.mu);
  std::uint64_t n = s.host.bytes_cached;
  for (const auto& [dev, p] : s.device_pools) {
    n += p.bytes_cached;
  }
  return n;
}

std::uint64_t live_bytes() {
  state_t& s = st();
  const std::lock_guard lock(s.mu);
  std::uint64_t n = s.host.bytes_live;
  for (const auto& [dev, p] : s.device_pools) {
    n += p.bytes_live;
  }
  return n;
}

std::uint64_t host_scratch_bytes() {
  state_t& s = st();
  const std::lock_guard lock(s.mu);
  return s.scratch_total;
}

std::vector<prof::mem_pool_stats> stats() {
  state_t& s = st();
  const std::lock_guard lock(s.mu);
  std::vector<prof::mem_pool_stats> out;
  const auto row = [&out](const backing_pool& p, std::string label) {
    if (!p.touched()) {
      return;
    }
    prof::mem_pool_stats r;
    r.label = std::move(label);
    r.mode = std::string(to_string(mode()));
    r.hits = p.hits;
    r.stalls = p.stalls;
    r.misses = p.misses;
    r.bytes_cached = p.bytes_cached;
    r.bytes_live = p.bytes_live;
    r.high_water_bytes = p.high_water;
    r.workspace_bytes = p.workspace_bytes;
    r.live_blocks = p.live_blocks;
    out.push_back(std::move(r));
  };
  row(s.host, "host");
  for (const auto& [dev, p] : s.device_pools) {
    row(p, dev->model().name);
  }
  return out;
}

// --- persistent reduction workspaces (workspace.hpp) ------------------------

reduce_workspace device_reduce_workspace(sim::device& dev,
                                         std::size_t elem_size,
                                         std::int64_t min_elems) {
  JACCX_ASSERT(elem_size > 0 && min_elems >= 0);
  state_t& s = st();
  bool pressured = false;
  std::unique_lock lock(s.mu);
  backing_pool& p = pool_for_locked(s, &dev);
  workspace_entry& ws = s.workspaces[{&dev, elem_size}];
  const std::size_t need = static_cast<std::size_t>(min_elems) * elem_size;
  if (ws.partial_bytes < need) {
    std::size_t grown = std::max({need, ws.partial_bytes * 2,
                                  std::size_t{4096}});
    grown = round_up(grown, device_align);
    if (ws.partials != nullptr) {
      dev.charge_free(ws.partial_bytes);
      dev.arena_release();
      p.workspace_bytes -= ws.partial_bytes;
      // The entry must not dangle if the growth allocation below throws
      // even after the trim-and-retry.
      ws.partials = nullptr;
      ws.partial_bytes = 0;
    }
    ws.partials = alloc_with_retry_locked(
        s, pressured, [&] { return dev.arena_allocate(grown); });
    dev.charge_alloc(grown, "jacc.reduce.workspace");
    // Zero the whole buffer once at growth: the reduce kernel overwrites
    // [0, blocks) each call, so everything past any call's write extent
    // stays zero from here on (the invariant replacing per-call zeros).
    std::memset(ws.partials, 0, grown);
    ws.partial_bytes = grown;
    p.workspace_bytes += grown;
  }
  if (ws.result == nullptr) {
    ws.result = alloc_with_retry_locked(
        s, pressured, [&] { return dev.arena_allocate(elem_size); });
    dev.charge_alloc(elem_size, "jacc.reduce.result");
    std::memset(ws.result, 0, elem_size);
    ws.result_bytes = elem_size;
    p.workspace_bytes += elem_size;
  }
  p.bump_high_water();
  const reduce_workspace out{ws.partials, ws.result,
                             static_cast<std::int64_t>(ws.partial_bytes /
                                                       elem_size)};
  if (pressured) {
    lock.unlock();
    notify_pressure();
  }
  return out;
}

host_scratch_lease::host_scratch_lease(std::size_t bytes) {
  state_t& s = st();
  bool pressured = false;
  {
    std::unique_lock lock(s.mu);
    // Best fit: the smallest parked slab that covers the request, so one
    // big early reduction does not pin every later small one to an
    // oversized slab while fresh ones get allocated anyway.
    std::size_t best = s.scratch_free.size();
    for (std::size_t i = 0; i < s.scratch_free.size(); ++i) {
      if (s.scratch_free[i].capacity >= bytes &&
          (best == s.scratch_free.size() ||
           s.scratch_free[i].capacity < s.scratch_free[best].capacity)) {
        best = i;
      }
    }
    if (best != s.scratch_free.size()) {
      data_ = s.scratch_free[best].ptr;
      capacity_ = s.scratch_free[best].capacity;
      s.scratch_free.erase(s.scratch_free.begin() +
                           static_cast<std::ptrdiff_t>(best));
    } else {
      const std::size_t grown = round_up(std::max<std::size_t>(bytes, 1),
                                         host_align);
      data_ = alloc_with_retry_locked(s, pressured,
                                      [&] { return host_alloc(grown); });
      capacity_ = grown;
      s.scratch_total += grown;
      s.host.workspace_bytes = s.scratch_total;
      s.host.bump_high_water();
    }
  }
  if (pressured) {
    notify_pressure();
  }
}

host_scratch_lease::~host_scratch_lease() {
  state_t& s = st();
  const std::lock_guard lock(s.mu);
  s.scratch_free.push_back({data_, capacity_});
}

} // namespace jaccx::mem
