// Persistent reduction workspaces (bucket mode only).
//
// The paper's Fig. 3 reduction pays, per call: one partials allocation,
// one result allocation, and two <vendor>.zeros fill kernels.  The
// combine kernel only ever reads the partial slots the first kernel just
// wrote, so once the workspace persists the fills are pure overhead:
// reduce_sim_gpu reuses one geometrically-grown partials buffer and one
// result slot per (device, element size), skipping both zero fills on
// recycled calls.  The whole buffer is zeroed once when it grows, so the
// tail beyond any call's live slots stays zero — the invariant
// tests/mem_pool_test.cpp pins.
//
// The threads back end analogue: reduce_threads used to build a
// std::vector of cache-line-padded partial slots per call; host_scratch_lease
// hands out a persistent padded slot array instead, drawn from a free list
// of scratch slabs.  Each lease owns its slab exclusively for its lifetime
// (the seed's per-call vectors were private; a leased slab is too), but
// concurrent leases take DIFFERENT slabs — the pool mutex is held only for
// the park/unpark instants, so reductions racing on separate dispatcher
// lanes proceed in parallel instead of convoying on one buffer.
#pragma once

#include <cstddef>
#include <cstdint>

namespace jaccx::sim {
class device;
}

namespace jaccx::mem {

/// View of the persistent per-(device, element-size) reduction workspace.
/// `partials` holds `capacity` elements of `elem_size` bytes, all beyond
/// the last kernel's write extent guaranteed zero; `result` is one
/// element.  Both live until drain().
struct reduce_workspace {
  void* partials = nullptr;
  void* result = nullptr;
  std::int64_t capacity = 0; ///< partials capacity, in elements
};

/// Returns the workspace for `dev`/`elem_size`, grown (geometrically,
/// charged as "jacc.reduce.workspace"/"jacc.reduce.result" allocations and
/// zero-filled) so that capacity >= min_elems.
reduce_workspace device_reduce_workspace(sim::device& dev,
                                         std::size_t elem_size,
                                         std::int64_t min_elems);

/// Exclusive lease on one persistent host reduction scratch slab of at
/// least `bytes` (64-B aligned).  The ctor pops the smallest parked slab
/// that fits — or allocates a fresh one (with the pool's trim-and-retry on
/// exhaustion) — holding the pool mutex only for that instant; the dtor
/// parks the slab back on the free list.  Concurrent leases therefore hold
/// distinct slabs and never serialize on each other.
class host_scratch_lease {
public:
  explicit host_scratch_lease(std::size_t bytes);
  ~host_scratch_lease();
  host_scratch_lease(const host_scratch_lease&) = delete;
  host_scratch_lease& operator=(const host_scratch_lease&) = delete;

  void* data() const { return data_; }
  std::size_t capacity() const { return capacity_; }

private:
  void* data_ = nullptr;
  std::size_t capacity_ = 0;
};

} // namespace jaccx::mem
