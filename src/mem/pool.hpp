// jaccx::mem — a backend-aware caching allocator for the JACC front end.
//
// The paper's evaluation (Figs. 8/9) shows DOT trailing AXPY on every GPU
// because each parallel_reduce materializes fresh scratch (CUDA.zeros for
// partials + result: an allocation plus two fill kernels per call).  Real
// vendor runtimes — and CUDA.jl itself — hide that churn behind a
// stream-ordered caching allocator.  This subsystem supplies the analogue:
//
//   * size-bucketed free lists (power-of-two buckets >= 256 B, exact-size
//     list for large blocks) layered over BOTH backing stores — aligned
//     host memory for the serial/threads back ends and the per-device bump
//     arena for simulated devices — one pool per backing store, so a block
//     cached under cuda_a100 can never satisfy a threads allocation;
//   * persistent per-(device, element-size) reduction workspaces and a
//     persistent host slot array for the threads reduction (workspace.hpp).
//
// Mode selection: JACC_MEM_POOL=bucket|none (default bucket), read by
// jacc::initialize() alongside the backend preference (env beats the
// LocalPreferences.toml key `JACC.mem_pool`).  `none` is the
// paper-fidelity mode: every acquire/release degrades to exactly the seed
// allocation path (same arena calls, same sizes, same charge order), so
// the arena's deterministic-address guarantee and the measured small-size
// reduction overhead are preserved bit for bit.
//
// Charging model under `bucket`: a pool miss charges the device for the
// rounded bucket size; a hit charges nothing (the memory never went back
// to the "driver"); a pooled release charges nothing (the device still
// holds the bytes — they show up as bytes_cached until drain() returns
// them with charge_free).  Cached device blocks keep the arena's live
// count up, so the arena cannot rewind underneath a cached address.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "prof/prof.hpp"

namespace jaccx::sim {
class device;
}

namespace jaccx::mem {

enum class pool_mode {
  bucket, ///< caching free lists + persistent workspaces (the default)
  none,   ///< paper-fidelity passthrough: every call hits the backing store
};

constexpr std::string_view to_string(pool_mode m) {
  return m == pool_mode::bucket ? "bucket" : "none";
}

/// Parses a JACC_MEM_POOL spec; nullopt for unknown values.
std::optional<pool_mode> parse_mode(std::string_view spec);

/// The active mode.  Resolved lazily from JACC_MEM_POOL on first use;
/// jacc::initialize() installs the full env+TOML resolution explicitly.
pool_mode mode();
inline bool pooling() { return mode() == pool_mode::bucket; }

/// Installs a mode.  Switching modes drains every free list first so no
/// cached block can outlive the policy that created it.
void set_mode(pool_mode m);

/// Installs `m` only when no mode has been resolved yet.  Used by the lazy
/// backend-initialization path, so an explicit earlier set_mode (a test's
/// scoped_mode pin) is not clobbered by the first current_backend() call.
void set_default_mode(pool_mode m);

/// Smallest bucket (and host bucket alignment floor).
inline constexpr std::size_t min_bucket_bytes = 256;
/// Buckets are powers of two up to this; larger requests use an exact-size
/// large-block list (rounded to the 256-B device-arena granularity).
inline constexpr std::size_t max_pow2_bucket_bytes = std::size_t{64} << 20;

/// The backing size class a `bucket`-mode request of `bytes` maps to.
std::size_t bucket_bytes(std::size_t bytes);

/// Stream-ordering context for an acquire/release (CUDA.jl pool design:
/// the pool records the releasing stream so reuse on the SAME stream needs
/// no synchronization, while reuse on another stream implies one).  The
/// default-constructed value — queue 0 at time 0 — is the synchronous
/// model and reproduces the pre-queue pool behavior exactly.
struct queue_ctx {
  std::uint64_t queue = 0; ///< jacc::queue id (0 = default/sync)
  double now_us = 0.0;     ///< the queue's simulated clock at the call
};

/// One allocation handed out by acquire().  Value type; the pool is the
/// owner of the storage, the block is the claim ticket.
struct block {
  void* ptr = nullptr;
  std::size_t bytes = 0; ///< backing size: bucket-rounded when pooled
  sim::device* dev = nullptr; ///< nullptr = host (serial/threads) pool
  bool pooled = false;        ///< acquired through a free list
  bool from_cache = false;    ///< satisfied without touching the backing store
  /// When the block was reused across queues: the releasing queue's clock
  /// at release time.  The consumer must not use the storage before this
  /// simulated instant (jacc::detail::note_pool_stall applies the charge).
  double stall_us = 0.0;
  explicit operator bool() const { return ptr != nullptr; }
};

/// Acquires storage for `bytes` from the pool backing `dev` (nullptr =
/// host).  Under `none`, this is the exact seed path: arena_allocate +
/// charge_alloc(bytes, name) on a device, 64-B-aligned host memory (null
/// for zero bytes) otherwise.  Under `bucket`, the free list is consulted
/// first — preferring blocks released on qc.queue (no sync needed), then
/// any block (stall_us reports the implied cross-queue sync) — and a miss
/// allocates and charges the rounded bucket size.
block acquire(sim::device* dev, std::size_t bytes, std::string_view name,
              queue_ctx qc = {});

/// Returns a block to the free list, tagged with the releasing queue and
/// its clock (no device charge); unpooled blocks release to the backing
/// store exactly as the seed did.  Resets `b` to empty; empty blocks are a
/// no-op.
void release(block& b, queue_ctx qc = {}) noexcept;

/// LRU cap on the total bytes parked across all free lists, in bytes
/// (0 = uncapped, the default).  Resolved from JACC_MEM_CAP_MB (env >
/// TOML `JACC.mem_cap_mb`) by jacc::initialize(); lazily from the env on
/// first query otherwise.  Enforced at release time: after parking a
/// block, the oldest-released cached blocks (across every backing store)
/// are evicted back to their stores until the total is under the cap.
/// Live blocks and persistent workspaces are never touched, and an
/// uncapped pool behaves bit-for-bit as before the cap existed.
std::uint64_t cache_cap();
void set_cache_cap(std::uint64_t bytes);

/// Installs a cap only when none has been pinned yet (lazy backend path).
void set_default_cache_cap(std::uint64_t bytes);

/// Evicts oldest-released cached blocks until the total parked bytes is
/// <= target_bytes.  trim(0) empties every free list — like drain() for
/// the caches, but workspaces and live blocks stay put.  Long-running
/// servers call this from admission control under memory pressure.
void trim(std::size_t target_bytes);

/// Times a backing-store allocation failed, was answered by trimming every
/// free list to zero, and was retried.  Every allocation site (bucket
/// misses, workspace growth, scratch slabs, seed-path none-mode allocs)
/// retries exactly once after a trim; only the second failure propagates
/// std::bad_alloc to the caller.
std::uint64_t alloc_retries();

/// Registers a callback fired (outside every pool lock) whenever an
/// allocation hit backing-store exhaustion and forced a trim-to-zero —
/// the memory-pressure signal admission control subscribes to.  Returns a
/// token for remove_pressure_callback; callbacks may call back into the
/// pool but must not block on work that itself allocates.
std::uint64_t add_pressure_callback(std::function<void()> fn);
void remove_pressure_callback(std::uint64_t token);

/// RAII cap pin for tests/benches.
class scoped_cache_cap {
public:
  explicit scoped_cache_cap(std::uint64_t bytes) : prev_(cache_cap()) {
    set_cache_cap(bytes);
  }
  ~scoped_cache_cap() { set_cache_cap(prev_); }
  scoped_cache_cap(const scoped_cache_cap&) = delete;
  scoped_cache_cap& operator=(const scoped_cache_cap&) = delete;

private:
  std::uint64_t prev_;
};

/// Frees every cached free-list block and persistent workspace back to the
/// backing stores (device blocks charge_free + arena_release).  Live
/// (acquired, unreleased) blocks are untouched.  Called by
/// jacc::finalize() and on mode switches.
void drain();

/// Outstanding acquired-but-unreleased blocks across all pools (both
/// modes).  jacc::finalize() asserts this is zero after draining.
std::uint64_t live_blocks();

/// Bytes currently parked on free lists across all pools.
std::uint64_t cached_bytes();

/// Bytes in acquired-but-unreleased blocks across all pools.  Admission
/// control budgets against live_bytes() + cached_bytes().
std::uint64_t live_bytes();

/// Bytes held by the persistent host reduction scratch slabs, parked and
/// leased (workspace.hpp).
std::uint64_t host_scratch_bytes();

/// Per-pool counters in prof's reporting shape: one row per touched
/// backing store ("host" plus each simulated device by model name).  Also
/// registered with prof as the mem-pool source, so JACC_PROFILE=summary
/// and bench_session JSON pick the rows up without prof depending on mem.
std::vector<prof::mem_pool_stats> stats();

/// RAII mode pin for tests that assert seed-exact charging (`none`) or
/// pool behavior (`bucket`) regardless of the environment.
class scoped_mode {
public:
  explicit scoped_mode(pool_mode m) : prev_(mode()) { set_mode(m); }
  ~scoped_mode() { set_mode(prev_); }
  scoped_mode(const scoped_mode&) = delete;
  scoped_mode& operator=(const scoped_mode&) = delete;

private:
  pool_mode prev_;
};

} // namespace jaccx::mem
