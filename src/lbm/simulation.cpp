#include "lbm/simulation.hpp"

#include <cmath>

namespace jaccx::lbm {
namespace {

std::vector<double> lattice_constants(const std::array<double, q>& a) {
  return std::vector<double>(a.begin(), a.end());
}

} // namespace

simulation::simulation(const params& p)
    : cfg_(p), f_(p.size * p.size * q), f1_(p.size * p.size * q),
      f2_(p.size * p.size * q), w_(lattice_constants(weights)),
      cx_(lattice_constants(vel_x)), cy_(lattice_constants(vel_y)) {
  JACCX_ASSERT(p.size >= 3);
  JACCX_ASSERT(p.tau > 0.5);
  init_uniform();
}

void simulation::init_uniform(double rho0) {
  const index_t plane = cfg_.size * cfg_.size;
  double* f1 = f1_.host_data();
  double* f2 = f2_.host_data();
  for (int k = 0; k < q; ++k) {
    const double fk = weights[static_cast<std::size_t>(k)] * rho0;
    for (index_t s = 0; s < plane; ++s) {
      f1[k * plane + s] = fk;
      f2[k * plane + s] = fk;
    }
  }
  steps_ = 0;
}

void simulation::init_pulse(double rho0, double amplitude,
                            double radius_fraction) {
  const index_t size = cfg_.size;
  const index_t plane = size * size;
  const double cx0 = static_cast<double>(size - 1) / 2.0;
  const double cy0 = static_cast<double>(size - 1) / 2.0;
  const double r = radius_fraction * static_cast<double>(size);
  double* f1 = f1_.host_data();
  double* f2 = f2_.host_data();
  for (index_t x = 0; x < size; ++x) {
    for (index_t y = 0; y < size; ++y) {
      const double dx = static_cast<double>(x) - cx0;
      const double dy = static_cast<double>(y) - cy0;
      const double rho =
          rho0 + amplitude * std::exp(-(dx * dx + dy * dy) / (2.0 * r * r));
      for (int k = 0; k < q; ++k) {
        const double fk = equilibrium(k, rho, 0.0, 0.0);
        f1[k * plane + x * size + y] = fk;
        f2[k * plane + x * size + y] = fk;
      }
    }
  }
  steps_ = 0;
}

void simulation::step() {
  jacc::parallel_for(
      jacc::hints{.name = "jacc.lbm", .flops_per_index = site_flops,
                  .bytes_per_index = 144.0},
      jacc::dims2{cfg_.size, cfg_.size}, lbm_kernel, f_, f1_, f2_, cfg_.tau,
      w_, cx_, cy_, cfg_.size);
  std::swap(f1_, f2_);
  ++steps_;
}

void simulation::run(int steps) {
  for (int s = 0; s < steps; ++s) {
    step();
  }
}

double simulation::total_mass() {
  return jacc::parallel_reduce(
      jacc::hints{.name = "jacc.lbm.mass", .flops_per_index = 1.0,
                  .bytes_per_index = 8.0},
      f1_.size(),
      [](index_t i, const jacc::array<double>& f1) {
        return static_cast<double>(f1[i]);
      },
      f1_);
}

macro_fields simulation::macroscopics() const {
  const index_t size = cfg_.size;
  const index_t plane = size * size;
  macro_fields out;
  out.size = size;
  out.density.assign(static_cast<std::size_t>(plane), 0.0);
  out.velocity_x.assign(static_cast<std::size_t>(plane), 0.0);
  out.velocity_y.assign(static_cast<std::size_t>(plane), 0.0);
  const double* f1 = f1_.host_data();
  for (index_t s = 0; s < plane; ++s) {
    double p = 0.0;
    double u = 0.0;
    double v = 0.0;
    for (int k = 0; k < q; ++k) {
      const double fk = f1[k * plane + s];
      p += fk;
      u += fk * vel_x[static_cast<std::size_t>(k)];
      v += fk * vel_y[static_cast<std::size_t>(k)];
    }
    out.density[static_cast<std::size_t>(s)] = p;
    out.velocity_x[static_cast<std::size_t>(s)] = p > 0.0 ? u / p : 0.0;
    out.velocity_y[static_cast<std::size_t>(s)] = p > 0.0 ? v / p : 0.0;
  }
  return out;
}

} // namespace jaccx::lbm
