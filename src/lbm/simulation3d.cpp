#include "lbm/simulation3d.hpp"

#include <cmath>

namespace jaccx::lbm3 {
namespace {

std::vector<double> lattice_constants(const std::array<double, q>& a) {
  return std::vector<double>(a.begin(), a.end());
}

} // namespace

simulation3d::simulation3d(const params& p)
    : cfg_(p), f_(p.size * p.size * p.size * q),
      f1_(p.size * p.size * p.size * q), f2_(p.size * p.size * p.size * q),
      w_(lattice_constants(weights)), cx_(lattice_constants(vel_x)),
      cy_(lattice_constants(vel_y)), cz_(lattice_constants(vel_z)) {
  JACCX_ASSERT(p.size >= 3);
  JACCX_ASSERT(p.tau > 0.5);
  init_uniform();
}

void simulation3d::init_uniform(double rho0) {
  const index_t cube = cfg_.size * cfg_.size * cfg_.size;
  double* f1 = f1_.host_data();
  double* f2 = f2_.host_data();
  for (int k = 0; k < q; ++k) {
    const double fk = weights[static_cast<std::size_t>(k)] * rho0;
    for (index_t s = 0; s < cube; ++s) {
      f1[k * cube + s] = fk;
      f2[k * cube + s] = fk;
    }
  }
  steps_ = 0;
}

void simulation3d::init_pulse(double rho0, double amplitude,
                              double radius_fraction) {
  const index_t size = cfg_.size;
  const index_t cube = size * size * size;
  const double c0 = static_cast<double>(size - 1) / 2.0;
  const double r = radius_fraction * static_cast<double>(size);
  double* f1 = f1_.host_data();
  double* f2 = f2_.host_data();
  for (index_t x = 0; x < size; ++x) {
    for (index_t y = 0; y < size; ++y) {
      for (index_t z = 0; z < size; ++z) {
        const double dx = static_cast<double>(x) - c0;
        const double dy = static_cast<double>(y) - c0;
        const double dz = static_cast<double>(z) - c0;
        const double rho =
            rho0 + amplitude * std::exp(-(dx * dx + dy * dy + dz * dz) /
                                        (2.0 * r * r));
        const index_t s = x * size * size + y * size + z;
        for (int k = 0; k < q; ++k) {
          const double fk = equilibrium(k, rho, 0.0, 0.0, 0.0);
          f1[k * cube + s] = fk;
          f2[k * cube + s] = fk;
        }
      }
    }
  }
  steps_ = 0;
}

void simulation3d::step() {
  jacc::parallel_for(
      jacc::hints{.name = "jacc.lbm3", .flops_per_index = site_flops,
                  .bytes_per_index = 304.0},
      jacc::dims3{cfg_.size, cfg_.size, cfg_.size}, lbm3_kernel, f_, f1_,
      f2_, cfg_.tau, w_, cx_, cy_, cz_, cfg_.size);
  std::swap(f1_, f2_);
  ++steps_;
}

void simulation3d::run(int steps) {
  for (int s = 0; s < steps; ++s) {
    step();
  }
}

double simulation3d::total_mass() {
  return jacc::parallel_reduce(
      jacc::hints{.name = "jacc.lbm3.mass", .flops_per_index = 1.0,
                  .bytes_per_index = 8.0},
      f1_.size(),
      [](index_t i, const jacc::array<double>& f1) {
        return static_cast<double>(f1[i]);
      },
      f1_);
}

std::vector<double> simulation3d::density() const {
  const index_t size = cfg_.size;
  const index_t cube = size * size * size;
  std::vector<double> out(static_cast<std::size_t>(cube), 0.0);
  const double* f1 = f1_.host_data();
  for (index_t s = 0; s < cube; ++s) {
    double p = 0.0;
    for (int k = 0; k < q; ++k) {
      p += f1[k * cube + s];
    }
    out[static_cast<std::size_t>(s)] = p;
  }
  return out;
}

} // namespace jaccx::lbm3
