// D2Q9 lattice definition and the site-update body of the 2-lattice pull
// algorithm used by HARVEY (paper Sec. V-B, Fig. 10).
//
// The paper's kernel fuses pull-streaming, macroscopic moment computation,
// and BGK collision in one pass over a 9-plane distribution array indexed as
//
//   ind = k * SIZE * SIZE + x * SIZE + y        (0-based here)
//
// Interior sites stream from x - cx[k], y - cy[k]; boundary sites pass f1
// through unchanged (the paper's listing skips them; the pass-through keeps
// f2 well-defined so the buffers can swap).
//
// The body is a template over the array type so the exact same physics runs
// through jacc::array (the JACC series of Fig. 11), sim::device_span (the
// native GPU/CPU series), and plain pointers (the serial reference used in
// validation tests).
#pragma once

#include <array>

#include "support/span2d.hpp"

namespace jaccx::lbm {

using jaccx::index_t;

inline constexpr int q = 9;

/// BGK weights; order matches the velocity sets below.
inline constexpr std::array<double, q> weights = {
    4.0 / 9.0,  1.0 / 9.0,  1.0 / 9.0,  1.0 / 9.0, 1.0 / 9.0,
    1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0};

/// Discrete velocities: rest, the four axis directions, the four diagonals.
inline constexpr std::array<double, q> vel_x = {0, 1, -1, 0, 0, 1, -1, 1, -1};
inline constexpr std::array<double, q> vel_y = {0, 0, 0, 1, -1, 1, -1, -1, 1};

/// Equilibrium distribution for direction k at density p, velocity (u, v).
inline double equilibrium(int k, double p, double u, double v) {
  const double cu = vel_x[static_cast<std::size_t>(k)] * u +
                    vel_y[static_cast<std::size_t>(k)] * v;
  return weights[static_cast<std::size_t>(k)] * p *
         (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * (u * u + v * v));
}

/// Flop count of one interior site update (streaming index math excluded);
/// used as the simulator's per-index hint.
inline constexpr double site_flops = 160.0;

/// One site of the fused pull-stream + moments + BGK collision update
/// (paper Fig. 10).  A is any indexable array type whose operator[] yields a
/// readable/assignable element (jacc::array, sim::device_span, double*); CA
/// likewise for the read-only lattice constant vectors.
template <class FA, class F1A, class F2A, class CA>
inline void site_update(index_t x, index_t y, const FA& f, const F1A& f1,
                        const F2A& f2, double tau, const CA& w, const CA& cx,
                        const CA& cy, index_t size) {
  const index_t plane = size * size;
  if (x >= 1 && x < size - 1 && y >= 1 && y < size - 1) {
    // Pull streaming into the scratch lattice f.
    for (int k = 0; k < q; ++k) {
      const auto xs = x - static_cast<index_t>(static_cast<double>(cx[k]));
      const auto ys = y - static_cast<index_t>(static_cast<double>(cy[k]));
      const index_t ind = k * plane + x * size + y;
      const index_t iind = k * plane + xs * size + ys;
      f[ind] = static_cast<double>(f1[iind]);
    }
    // Macroscopic moments.
    double p = 0.0;
    double u = 0.0;
    double v = 0.0;
    for (int k = 0; k < q; ++k) {
      const index_t ind = k * plane + x * size + y;
      const double fk = static_cast<double>(f[ind]);
      p += fk;
      u += fk * static_cast<double>(cx[k]);
      v += fk * static_cast<double>(cy[k]);
    }
    u /= p;
    v /= p;
    // BGK collision into f2.
    for (int k = 0; k < q; ++k) {
      const double cu = static_cast<double>(cx[k]) * u +
                        static_cast<double>(cy[k]) * v;
      const double feq = static_cast<double>(w[k]) * p *
                         (1.0 + 3.0 * cu + 4.5 * cu * cu -
                          1.5 * (u * u + v * v));
      const index_t ind = k * plane + x * size + y;
      f2[ind] = static_cast<double>(f[ind]) * (1.0 - 1.0 / tau) + feq / tau;
    }
  } else {
    // Boundary pass-through keeps the swapped buffer consistent.
    for (int k = 0; k < q; ++k) {
      const index_t ind = k * plane + x * size + y;
      f2[ind] = static_cast<double>(f1[ind]);
    }
  }
}

/// Register-fused variant of site_update: the paper's Fig. 10 stages the
/// pulled distributions in a scratch lattice `f` and re-reads them twice
/// (moments, collision), costing ~18 extra global accesses per site.  This
/// version keeps the 9 pulled values in registers instead — same
/// mathematics, bit-identical results, less memory traffic.  The
/// abl_lbm_fusion benchmark quantifies what the paper's formulation leaves
/// on the table.
template <class F1A, class F2A, class CA>
inline void site_update_fused(index_t x, index_t y, const F1A& f1,
                              const F2A& f2, double tau, const CA& w,
                              const CA& cx, const CA& cy, index_t size) {
  const index_t plane = size * size;
  if (x >= 1 && x < size - 1 && y >= 1 && y < size - 1) {
    double fk[q];
    double p = 0.0;
    double u = 0.0;
    double v = 0.0;
    for (int k = 0; k < q; ++k) {
      const auto xs = x - static_cast<index_t>(static_cast<double>(cx[k]));
      const auto ys = y - static_cast<index_t>(static_cast<double>(cy[k]));
      fk[k] = static_cast<double>(f1[k * plane + xs * size + ys]);
      p += fk[k];
      u += fk[k] * static_cast<double>(cx[k]);
      v += fk[k] * static_cast<double>(cy[k]);
    }
    u /= p;
    v /= p;
    for (int k = 0; k < q; ++k) {
      const double cu = static_cast<double>(cx[k]) * u +
                        static_cast<double>(cy[k]) * v;
      const double feq = static_cast<double>(w[k]) * p *
                         (1.0 + 3.0 * cu + 4.5 * cu * cu -
                          1.5 * (u * u + v * v));
      f2[k * plane + x * size + y] = fk[k] * (1.0 - 1.0 / tau) + feq / tau;
    }
  } else {
    for (int k = 0; k < q; ++k) {
      const index_t ind = k * plane + x * size + y;
      f2[ind] = static_cast<double>(f1[ind]);
    }
  }
}

} // namespace jaccx::lbm
