// Portable D3Q19 LBM mini-app: one jacc::parallel_for over dims3 per step.
#pragma once

#include <vector>

#include "core/jacc.hpp"
#include "lbm/lattice3d.hpp"

namespace jaccx::lbm3 {

struct params {
  index_t size = 32; ///< cubic lattice edge
  double tau = 0.8;
};

/// The D3Q19 kernel in the paper's style.  The first (fast) index i maps to
/// the contiguous z coordinate, j to y, k to x — coalescing per Sec. IV.
inline void lbm3_kernel(index_t i, index_t j, index_t k,
                        jacc::array<double>& f,
                        const jacc::array<double>& f1,
                        jacc::array<double>& f2, double tau,
                        const jacc::array<double>& w,
                        const jacc::array<double>& cx,
                        const jacc::array<double>& cy,
                        const jacc::array<double>& cz, index_t size) {
  site_update(/*x=*/k, /*y=*/j, /*z=*/i, f, f1, f2, tau, w, cx, cy, cz,
              size);
}

class simulation3d {
public:
  explicit simulation3d(const params& p);

  /// Uniform equilibrium (exact fixed point).
  void init_uniform(double rho0 = 1.0);

  /// Gaussian density pulse centred in the box.
  void init_pulse(double rho0 = 1.0, double amplitude = 0.1,
                  double radius_fraction = 0.1);

  void step();
  void run(int steps);

  const params& config() const { return cfg_; }
  int steps_taken() const { return steps_; }

  /// Total mass via a JACC reduction over all 19 planes.
  double total_mass();

  /// Host density field, index x*S*S + y*S + z (untracked debug read).
  std::vector<double> density() const;

  const jacc::array<double>& distributions() const { return f1_; }

private:
  params cfg_;
  int steps_ = 0;
  jacc::array<double> f_, f1_, f2_;
  jacc::array<double> w_, cx_, cy_, cz_;
};

} // namespace jaccx::lbm3
