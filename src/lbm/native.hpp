// Device-specific LBM step implementations: the "device-specific" series of
// the paper's Fig. 11.  Same physics as the JACC path (both call
// lbm::site_update); only the launch vocabulary differs, as in the paper.
#pragma once

#include "backends/vendor_api.hpp"
#include "lbm/lattice.hpp"

namespace jaccx::lbm {

/// All distribution planes plus lattice constants as tracked device views.
struct native_state {
  sim::device_span<double> f;  // scratch
  sim::device_span<double> f1; // current
  sim::device_span<double> f2; // next
  sim::device_span<double> w, cx, cy;
  index_t size = 0;
  double tau = 0.8;
};

/// One step on the simulated Rome CPU (Base.Threads model), coarse
/// column-major decomposition, via_jacc = false.
void rome_step(sim::device& dev, const native_state& s);

/// One step on a simulated GPU through the vendor-specific wrapper: a single
/// fused 16x16-tile 2D kernel, as the paper's device-specific codes use.
template <class Api>
void native_gpu_step(const native_state& s) {
  const std::int64_t tile = 16;
  const std::int64_t mt = s.size < tile ? s.size : tile;
  const std::int64_t nt = s.size < tile ? s.size : tile;
  Api::launch2d(
      sim::dim3{sim::ceil_div(s.size, mt), sim::ceil_div(s.size, nt)},
      sim::dim3{mt, nt},
      [s](sim::kernel_ctx& ctx) {
        // Thread x sweeps the contiguous y coordinate (coalescing, paper
        // Sec. IV); thread y sweeps the strided x coordinate.
        const index_t y = ctx.global_x();
        const index_t x = ctx.global_y();
        if (x < s.size && y < s.size) {
          site_update(x, y, s.f, s.f1, s.f2, s.tau, s.w, s.cx, s.cy, s.size);
        }
      },
      "native.lbm", site_flops);
}

/// Serial host reference used by validation tests: plain pointers, no
/// tracking, no backend.  `f`, `f1`, `f2` are q*size*size doubles.
void reference_step(double* f, const double* f1, double* f2, double tau,
                    index_t size);

} // namespace jaccx::lbm
