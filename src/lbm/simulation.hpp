// Portable LBM mini-app over the JACC front end: the "JACC" series of the
// paper's Fig. 11, wrapped with initialization and diagnostics so it is a
// usable fluid solver, not just a kernel.
#pragma once

#include <vector>

#include "core/jacc.hpp"
#include "lbm/lattice.hpp"

namespace jaccx::lbm {

struct params {
  index_t size = 128;  ///< square lattice edge (paper uses up to 1000)
  double tau = 0.8;    ///< BGK relaxation time (> 0.5 for stability)
};

/// The paper's Fig. 10 kernel, verbatim in structure: a free function taking
/// (i, j) plus every array it touches, run through one multidimensional
/// parallel_for per time step.
///
/// Index mapping: the first parallel_for index (i) is the fast one — GPU
/// thread x, CPU inner loop — and the lattice layout stores y contiguously
/// (ind = k*S*S + x*S + y), so i maps to the site's y coordinate.  That is
/// the coalescing rule of the paper's Sec. IV: consecutive threads touch
/// consecutive memory.
inline void lbm_kernel(index_t i, index_t j, jacc::array<double>& f,
                       const jacc::array<double>& f1, jacc::array<double>& f2,
                       double tau, const jacc::array<double>& w,
                       const jacc::array<double>& cx,
                       const jacc::array<double>& cy, index_t size) {
  site_update(/*x=*/j, /*y=*/i, f, f1, f2, tau, w, cx, cy, size);
}

/// Velocity/density snapshot on the host.
struct macro_fields {
  index_t size = 0;
  std::vector<double> density;    // size*size, index x*size+y
  std::vector<double> velocity_x; // idem
  std::vector<double> velocity_y; // idem
};

class simulation {
public:
  /// Builds the lattice under the *current* JACC backend: all state lives in
  /// jacc::array, so on a simulated GPU the initial state is charged as H2D.
  explicit simulation(const params& p);

  /// Uniform equilibrium at density rho0, zero velocity (an exact fixed
  /// point of the update — used by correctness tests).
  void init_uniform(double rho0 = 1.0);

  /// Gaussian density pulse of the given amplitude centred in the box, at
  /// equilibrium with zero velocity.  Deterministic.
  void init_pulse(double rho0 = 1.0, double amplitude = 0.1,
                  double radius_fraction = 0.1);

  /// Advances one time step: one 2D parallel_for (paper Fig. 10) plus a
  /// buffer swap.
  void step();

  /// Advances `steps` time steps.
  void run(int steps);

  const params& config() const { return cfg_; }
  int steps_taken() const { return steps_; }

  /// Total mass of the current lattice, computed with a JACC 1D
  /// parallel_reduce over all 9 planes.
  double total_mass();

  /// Host snapshot of density and velocity (untracked debug read).
  macro_fields macroscopics() const;

  /// Untracked access to the current distributions (tests).
  const jacc::array<double>& distributions() const { return f1_; }
  jacc::array<double>& distributions() { return f1_; }

private:
  params cfg_;
  int steps_ = 0;
  jacc::array<double> f_;  // scratch (post-streaming)
  jacc::array<double> f1_; // current
  jacc::array<double> f2_; // next
  jacc::array<double> w_, cx_, cy_;
};

} // namespace jaccx::lbm
