#include "lbm/native.hpp"

#include "sim/launch.hpp"

namespace jaccx::lbm {

void rome_step(sim::device& dev, const native_state& s) {
  sim::cpu_region_config cfg;
  cfg.name = "threads.lbm";
  cfg.flops_per_index = site_flops;
  // Inner (contiguous) loop index is the site's y coordinate; the outer,
  // chunked-across-cores index is x — the coarse decomposition follows the
  // memory layout exactly as Base.Threads does for column-major arrays.
  sim::cpu_parallel_range_2d(dev, cfg, s.size, s.size,
                             [&](index_t inner, index_t outer) {
                               site_update(outer, inner, s.f, s.f1, s.f2,
                                           s.tau, s.w, s.cx, s.cy, s.size);
                             });
}

void reference_step(double* f, const double* f1, double* f2, double tau,
                    index_t size) {
  const std::array<double, q>& w = weights;
  const std::array<double, q>& cx = vel_x;
  const std::array<double, q>& cy = vel_y;
  for (index_t x = 0; x < size; ++x) {
    for (index_t y = 0; y < size; ++y) {
      site_update(x, y, f, f1, f2, tau, w, cx, cy, size);
    }
  }
}

} // namespace jaccx::lbm
