// D3Q19 lattice: the 3D counterpart of the paper's D2Q9 kernel, exercising
// JACC's third dimension (Sec. III: "up to three dimensions") on a real
// application.  Same fused pull-stream + moments + BGK structure as
// lattice.hpp; layout ind = k*S^3 + x*S^2 + y*S + z with z contiguous.
#pragma once

#include <array>

#include "support/span2d.hpp"

namespace jaccx::lbm3 {

using jaccx::index_t;

inline constexpr int q = 19;

/// D3Q19 weights: rest 1/3, six axis directions 1/18, twelve edge
/// diagonals 1/36.
inline constexpr std::array<double, q> weights = {
    1.0 / 3.0,  //
    1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0,
    1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
    1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0};

inline constexpr std::array<double, q> vel_x = {0, 1, -1, 0, 0,  0, 0, 1, -1,
                                                1, -1, 1, -1, 1, -1, 0, 0, 0,
                                                0};
inline constexpr std::array<double, q> vel_y = {0, 0, 0, 1, -1, 0, 0, 1, -1,
                                                -1, 1, 0, 0, 0, 0, 1, -1, 1,
                                                -1};
inline constexpr std::array<double, q> vel_z = {0, 0, 0, 0, 0, 1, -1, 0, 0,
                                                0, 0, 1, -1, -1, 1, 1, -1, -1,
                                                1};

/// Equilibrium distribution for direction k at density p, velocity (u,v,w).
inline double equilibrium(int k, double p, double u, double v, double w) {
  const auto ks = static_cast<std::size_t>(k);
  const double cu = vel_x[ks] * u + vel_y[ks] * v + vel_z[ks] * w;
  return weights[ks] * p *
         (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * (u * u + v * v + w * w));
}

/// Flop count of one interior site update (the simulator's roofline hint).
inline constexpr double site_flops = 420.0;

/// One fused D3Q19 pull site update; boundary sites pass through.
template <class FA, class F1A, class F2A, class CA>
inline void site_update(index_t x, index_t y, index_t z, const FA& f,
                        const F1A& f1, const F2A& f2, double tau, const CA& w,
                        const CA& cx, const CA& cy, const CA& cz,
                        index_t size) {
  const index_t plane = size * size * size;
  const auto at = [size, plane](int k, index_t xi, index_t yi, index_t zi) {
    return k * plane + xi * size * size + yi * size + zi;
  };
  if (x >= 1 && x < size - 1 && y >= 1 && y < size - 1 && z >= 1 &&
      z < size - 1) {
    for (int k = 0; k < q; ++k) {
      const auto xs = x - static_cast<index_t>(static_cast<double>(cx[k]));
      const auto ys = y - static_cast<index_t>(static_cast<double>(cy[k]));
      const auto zs = z - static_cast<index_t>(static_cast<double>(cz[k]));
      f[at(k, x, y, z)] = static_cast<double>(f1[at(k, xs, ys, zs)]);
    }
    double p = 0.0;
    double u = 0.0;
    double v = 0.0;
    double ww = 0.0;
    for (int k = 0; k < q; ++k) {
      const double fk = static_cast<double>(f[at(k, x, y, z)]);
      p += fk;
      u += fk * static_cast<double>(cx[k]);
      v += fk * static_cast<double>(cy[k]);
      ww += fk * static_cast<double>(cz[k]);
    }
    u /= p;
    v /= p;
    ww /= p;
    for (int k = 0; k < q; ++k) {
      const double cu = static_cast<double>(cx[k]) * u +
                        static_cast<double>(cy[k]) * v +
                        static_cast<double>(cz[k]) * ww;
      const double feq =
          static_cast<double>(w[k]) * p *
          (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * (u * u + v * v + ww * ww));
      f2[at(k, x, y, z)] =
          static_cast<double>(f[at(k, x, y, z)]) * (1.0 - 1.0 / tau) +
          feq / tau;
    }
  } else {
    for (int k = 0; k < q; ++k) {
      f2[at(k, x, y, z)] = static_cast<double>(f1[at(k, x, y, z)]);
    }
  }
}

} // namespace jaccx::lbm3
