// Thin environment-variable helpers used by the preferences loader.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace jaccx {

/// Returns the value of environment variable `name`, if set.
std::optional<std::string> get_env(std::string_view name);

/// Returns the value of `name` parsed as a long, or nullopt when unset or
/// unparseable.
std::optional<long> get_env_long(std::string_view name);

/// Parses `text` as a base-10 long; the whole string must be consumed.
/// Used for env values and for the numeric fields of compound specs like
/// JACC_SCHEDULE=dynamic,<grain>.
std::optional<long> parse_long(std::string_view text);

} // namespace jaccx
