#include "support/stopwatch.hpp"

namespace jaccx {

void stopwatch::reset() { start_ = std::chrono::steady_clock::now(); }

std::int64_t stopwatch::elapsed_ns() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
      .count();
}

} // namespace jaccx
