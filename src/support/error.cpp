#include "support/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace jaccx {

void throw_config_error(std::string_view what) {
  throw config_error(std::string(what));
}

void throw_usage_error(std::string_view what) {
  throw usage_error(std::string(what));
}

namespace detail {

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "jaccx assertion failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

} // namespace detail
} // namespace jaccx
