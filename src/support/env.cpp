#include "support/env.hpp"

#include <cstdlib>

namespace jaccx {

std::optional<std::string> get_env(std::string_view name) {
  const std::string key(name);
  if (const char* v = std::getenv(key.c_str())) {
    return std::string(v);
  }
  return std::nullopt;
}

std::optional<long> get_env_long(std::string_view name) {
  auto s = get_env(name);
  if (!s) {
    return std::nullopt;
  }
  return parse_long(*s);
}

std::optional<long> parse_long(std::string_view text) {
  const std::string s(text);
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return std::nullopt;
  }
  return v;
}

} // namespace jaccx
