// Error handling for JACC-CXX.
//
// The library reports contract violations and unrecoverable configuration
// errors through jaccx::error (derived from std::runtime_error).  Hot paths
// use JACCX_ASSERT, which compiles to a check in debug builds and to nothing
// when NDEBUG is set, per the C++ Core Guidelines (I.6, E.12).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace jaccx {

/// Base exception for all JACC-CXX errors.
class error : public std::runtime_error {
public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a configuration value (preferences file, env var, device
/// name) is malformed or references an unknown entity.
class config_error : public error {
public:
  explicit config_error(const std::string& what) : error(what) {}
};

/// Thrown when an API is used outside its contract (e.g. device access to a
/// buffer that was never allocated, mismatched extents).
class usage_error : public error {
public:
  explicit usage_error(const std::string& what) : error(what) {}
};

/// [[noreturn]] helper so call sites stay single-line.
[[noreturn]] void throw_config_error(std::string_view what);
[[noreturn]] void throw_usage_error(std::string_view what);

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
} // namespace detail

} // namespace jaccx

#ifdef NDEBUG
#define JACCX_ASSERT(expr) ((void)0)
#else
#define JACCX_ASSERT(expr) \
  ((expr) ? (void)0 : ::jaccx::detail::assert_fail(#expr, __FILE__, __LINE__))
#endif
