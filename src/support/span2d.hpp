// Non-owning 2D/3D views with Julia-style column-major layout.
//
// JACC (the paper, Sec. IV) stresses that Julia arrays are column-major and
// that the CPU back end must therefore decompose work column-wise while GPU
// back ends map thread x to the fastest-moving index for coalescing.  These
// views encode that layout once so kernels, back ends, and tests agree.
#pragma once

#include <cstddef>

#include "support/error.hpp"

namespace jaccx {

using index_t = std::ptrdiff_t;

/// Column-major 2D view: element (i, j) lives at data[i + j * rows].
/// i is the fast (within-column) index, matching Julia's A[i, j].
template <class T>
class span2d {
public:
  constexpr span2d() = default;
  constexpr span2d(T* data, index_t rows, index_t cols)
      : data_(data), rows_(rows), cols_(cols) {
    JACCX_ASSERT(rows >= 0 && cols >= 0);
  }

  constexpr T& operator()(index_t i, index_t j) const {
    JACCX_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * rows_];
  }

  constexpr T* data() const { return data_; }
  constexpr index_t rows() const { return rows_; }
  constexpr index_t cols() const { return cols_; }
  constexpr index_t size() const { return rows_ * cols_; }
  constexpr bool empty() const { return size() == 0; }

  /// Pointer to the start of column j (contiguous run of rows() elements).
  constexpr T* column(index_t j) const {
    JACCX_ASSERT(j >= 0 && j < cols_);
    return data_ + j * rows_;
  }

private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
};

/// Column-major 3D view: element (i, j, k) at data[i + rows*(j + cols*k)].
template <class T>
class span3d {
public:
  constexpr span3d() = default;
  constexpr span3d(T* data, index_t rows, index_t cols, index_t depth)
      : data_(data), rows_(rows), cols_(cols), depth_(depth) {
    JACCX_ASSERT(rows >= 0 && cols >= 0 && depth >= 0);
  }

  constexpr T& operator()(index_t i, index_t j, index_t k) const {
    JACCX_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_ && k >= 0 &&
                 k < depth_);
    return data_[i + rows_ * (j + cols_ * k)];
  }

  constexpr T* data() const { return data_; }
  constexpr index_t rows() const { return rows_; }
  constexpr index_t cols() const { return cols_; }
  constexpr index_t depth() const { return depth_; }
  constexpr index_t size() const { return rows_ * cols_ * depth_; }

private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t depth_ = 0;
};

} // namespace jaccx
