// Cache-line / page aligned owning buffer.
//
// Used for host mirrors of jacc::array and for simulated device memory so
// that the cache model sees addresses with realistic alignment (Per.19:
// access memory predictably), and so the real threads back end avoids false
// sharing of partial-reduction slots.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "support/error.hpp"

namespace jaccx {

inline constexpr std::size_t cache_line_bytes = 64;

/// Owning, aligned, uninitialized-on-construction buffer of trivially
/// copyable T.  Move-only.
template <class T>
class aligned_buffer {
public:
  aligned_buffer() = default;

  explicit aligned_buffer(std::size_t count, std::size_t alignment = 64)
      : count_(count) {
    if (count == 0) {
      return;
    }
    const std::size_t bytes = round_up(count * sizeof(T), alignment);
    data_ = static_cast<T*>(std::aligned_alloc(alignment, bytes));
    if (data_ == nullptr) {
      throw std::bad_alloc();
    }
  }

  aligned_buffer(const aligned_buffer&) = delete;
  aligned_buffer& operator=(const aligned_buffer&) = delete;

  aligned_buffer(aligned_buffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)) {}

  aligned_buffer& operator=(aligned_buffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }

  ~aligned_buffer() { release(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  T& operator[](std::size_t i) {
    JACCX_ASSERT(i < count_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    JACCX_ASSERT(i < count_);
    return data_[i];
  }

private:
  static std::size_t round_up(std::size_t n, std::size_t a) {
    return (n + a - 1) / a * a;
  }

  void release() {
    std::free(data_);
    data_ = nullptr;
    count_ = 0;
  }

  T* data_ = nullptr;
  std::size_t count_ = 0;
};

} // namespace jaccx
