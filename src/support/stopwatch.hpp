// Wall-clock stopwatch used by the real (non-simulated) back ends and by the
// dispatch-overhead benchmark.
#pragma once

#include <chrono>
#include <cstdint>

namespace jaccx {

class stopwatch {
public:
  stopwatch() { reset(); }

  void reset();

  /// Nanoseconds since construction or the last reset().
  std::int64_t elapsed_ns() const;

  double elapsed_us() const { return static_cast<double>(elapsed_ns()) / 1e3; }
  double elapsed_ms() const { return static_cast<double>(elapsed_ns()) / 1e6; }
  double elapsed_s() const { return static_cast<double>(elapsed_ns()) / 1e9; }

private:
  std::chrono::steady_clock::time_point start_;
};

} // namespace jaccx
