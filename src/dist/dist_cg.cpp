#include "dist/dist_cg.hpp"

#include <cmath>
#include <string>

#include "core/auto_backend.hpp"    // achieved rates for placement::measured
#include "core/parallel_reduce.hpp" // reduce_sim_gpu for the local dots
#include "mem/pool.hpp"
#include "sim/launch.hpp"

namespace jaccx::dist {
namespace {

/// Fine-grained local kernel launch on one rank's device: body(i) for the
/// owned local indices [0, local_n).
template <class Body>
void rank_launch(sim::device& dev, index_t local_n, std::string_view name,
                 double flops_per_index, const Body& body) {
  if (local_n == 0) {
    return;
  }
  sim::launch_config cfg;
  const std::int64_t maxt = dev.model().max_threads_per_block;
  const std::int64_t threads = local_n < maxt ? local_n : maxt;
  cfg.block = sim::dim3{threads};
  cfg.grid = sim::dim3{sim::ceil_div(local_n, threads)};
  cfg.name = name;
  cfg.flops_per_index = flops_per_index;
  sim::launch(dev, cfg, [&](sim::kernel_ctx& ctx) {
    const index_t i = ctx.global_x();
    if (i < local_n) {
      body(i);
    }
  });
}

} // namespace

tridiag_cg::tridiag_cg(communicator& comm, index_t n, placement_policy place)
    : comm_(&comm), n_(n) {
  JACCX_ASSERT(n >= 2);
  // Row boundaries are fixed here for the solver's lifetime.  Equal weights
  // make weighted_bounds delegate to static_chunk, so the default plan is
  // bit-identical to the historical one.
  std::vector<double> w(static_cast<std::size_t>(comm.ranks()), 1.0);
  if (place.k == placement_policy::kind::measured) {
    for (int r = 0; r < comm.ranks(); ++r) {
      const std::string target =
          comm.dev(r).model().name + "#" + std::to_string(r);
      const auto rate = jacc::achieved(target);
      w[static_cast<std::size_t>(r)] =
          rate.gbps > 0.0 ? rate.gbps : place.fallback_gbps;
    }
  }
  bounds_ = pool::weighted_bounds(n, w);
  ranks_.reserve(static_cast<std::size_t>(comm.ranks()));
  for (int r = 0; r < comm.ranks(); ++r) {
    const index_t local = rows_of(r).size();
    // +2: one ghost cell on each side; global-boundary ghosts stay zero.
    rank_state st{
        sim::device_buffer<double>(comm.dev(r), local + 2, "dist.r"),
        sim::device_buffer<double>(comm.dev(r), local + 2, "dist.p"),
        sim::device_buffer<double>(comm.dev(r), local + 2, "dist.s"),
        sim::device_buffer<double>(comm.dev(r), local + 2, "dist.x"),
        local};
    st.r.fill_untracked(0.0);
    st.p.fill_untracked(0.0);
    st.s.fill_untracked(0.0);
    st.x.fill_untracked(0.0);
    ranks_.push_back(std::move(st));
  }
}

void tridiag_cg::halo_exchange_p() {
  for (int r = 0; r + 1 < comm_->ranks(); ++r) {
    auto& left = ranks_[static_cast<std::size_t>(r)];
    auto& right = ranks_[static_cast<std::size_t>(r + 1)];
    if (left.local_n == 0 || right.local_n == 0) {
      continue;
    }
    // left's last owned <-> right's first owned, one double each way.
    comm_->exchange(r, left.p.data() + left.local_n,
                    left.p.data() + left.local_n + 1, r + 1,
                    right.p.data() + 1, right.p.data(), 1, "dist.halo");
  }
}

void tridiag_cg::local_matvec(int rank) {
  auto& st = ranks_[static_cast<std::size_t>(rank)];
  auto p = st.p.span();
  auto s = st.s.span();
  rank_launch(comm_->dev(rank), st.local_n, "dist.matvec", 5.0,
              [p, s](index_t i) {
                // Owned cell i lives at i+1; zero ghosts truncate the ends.
                s[i + 1] = static_cast<double>(p[i]) +
                           4.0 * static_cast<double>(p[i + 1]) +
                           static_cast<double>(p[i + 2]);
              });
}

void tridiag_cg::dot_local(vec_ptr a, vec_ptr b, const char* name,
                           double* partials) {
  for (int r = 0; r < comm_->ranks(); ++r) {
    auto& st = ranks_[static_cast<std::size_t>(r)];
    if (st.local_n == 0) {
      partials[r] = 0.0;
      continue;
    }
    auto sa = (st.*a).span();
    auto sb = (st.*b).span();
    partials[r] = jacc::detail::reduce_sim_gpu<double>(
        comm_->dev(r), jacc::hints{.name = name, .flops_per_index = 2.0},
        st.local_n, jacc::plus_reducer{}, [sa, sb](index_t i) {
          return static_cast<double>(sa[i + 1]) *
                 static_cast<double>(sb[i + 1]);
        });
  }
}

double tridiag_cg::dot_allreduce(vec_ptr a, vec_ptr b, const char* name) {
  // Pooled partials buffer: a CG iteration calls this three times, so a
  // per-call std::vector was steady-state allocation traffic on the host.
  auto blk = mem::acquire(
      nullptr, static_cast<std::size_t>(comm_->ranks()) * sizeof(double),
      "dist.partials");
  double* partials = static_cast<double*>(blk.ptr);
  dot_local(a, b, name, partials);
  const double total = comm_->allreduce_sum(partials, comm_->ranks(), name);
  mem::release(blk);
  return total;
}

void tridiag_cg::axpy_all(double alpha, vec_ptr x, vec_ptr y) {
  for (int r = 0; r < comm_->ranks(); ++r) {
    auto& st = ranks_[static_cast<std::size_t>(r)];
    auto sx = (st.*x).span();
    auto sy = (st.*y).span();
    rank_launch(comm_->dev(r), st.local_n, "dist.axpy", 2.0,
                [sx, sy, alpha](index_t i) {
                  sx[i + 1] += alpha * static_cast<double>(sy[i + 1]);
                });
  }
}

void tridiag_cg::xpay_all(double beta, vec_ptr r_vec, vec_ptr p_vec) {
  for (int r = 0; r < comm_->ranks(); ++r) {
    auto& st = ranks_[static_cast<std::size_t>(r)];
    auto sr = (st.*r_vec).span();
    auto sp = (st.*p_vec).span();
    rank_launch(comm_->dev(r), st.local_n, "dist.xpay", 2.0,
                [sr, sp, beta](index_t i) {
                  sp[i + 1] = static_cast<double>(sr[i + 1]) +
                              beta * static_cast<double>(sp[i + 1]);
                });
  }
}

cg_result tridiag_cg::solve(const std::vector<double>& b,
                            std::vector<double>& x, const cg_options& opts) {
  JACCX_ASSERT(static_cast<index_t>(b.size()) == n_);
  x.assign(static_cast<std::size_t>(n_), 0.0);

  // Scatter b into r (x0 = 0 so r = b), p = r.
  double bb = 0.0;
  for (int r = 0; r < comm_->ranks(); ++r) {
    auto& st = ranks_[static_cast<std::size_t>(r)];
    const auto rows = rows_of(r);
    for (index_t i = 0; i < st.local_n; ++i) {
      st.r.data()[i + 1] = b[static_cast<std::size_t>(rows.begin + i)];
      st.p.data()[i + 1] = st.r.data()[i + 1];
      st.x.data()[i + 1] = 0.0;
    }
    st.r.data()[0] = st.r.data()[st.local_n + 1] = 0.0;
    st.p.data()[0] = st.p.data()[st.local_n + 1] = 0.0;
    if (st.local_n > 0) {
      comm_->dev(r).charge_h2d(
          static_cast<std::uint64_t>(st.local_n) * sizeof(double),
          "dist.scatter");
    }
  }
  for (double v : b) {
    bb += v * v;
  }
  if (bb == 0.0) {
    return {0, 0.0, true};
  }

  double rr = dot_allreduce(&rank_state::r, &rank_state::r, "dist.dot_rr");
  const double stop = opts.tolerance * opts.tolerance * bb;

  cg_result out;
  while (out.iterations < opts.max_iterations && rr > stop) {
    halo_exchange_p();
    for (int r = 0; r < comm_->ranks(); ++r) {
      local_matvec(r);
    }
    const double ps =
        dot_allreduce(&rank_state::p, &rank_state::s, "dist.dot_ps");
    const double alpha = rr / ps;
    axpy_all(alpha, &rank_state::x, &rank_state::p);
    axpy_all(-alpha, &rank_state::r, &rank_state::s);
    const double rr_new =
        dot_allreduce(&rank_state::r, &rank_state::r, "dist.dot_rr");
    xpay_all(rr_new / rr, &rank_state::r, &rank_state::p);
    rr = rr_new;
    ++out.iterations;
  }

  // Gather the solution.
  for (int r = 0; r < comm_->ranks(); ++r) {
    auto& st = ranks_[static_cast<std::size_t>(r)];
    const auto rows = rows_of(r);
    for (index_t i = 0; i < st.local_n; ++i) {
      x[static_cast<std::size_t>(rows.begin + i)] = st.x.data()[i + 1];
    }
    if (st.local_n > 0) {
      comm_->dev(r).charge_d2h(
          static_cast<std::uint64_t>(st.local_n) * sizeof(double),
          "dist.gather");
    }
  }
  out.relative_residual = std::sqrt(rr / bb);
  out.converged = rr <= stop;
  return out;
}

std::vector<double> tridiag_cg::gather_vector(char which) const {
  vec_ptr v = nullptr;
  switch (which) {
  case 'r': v = &rank_state::r; break;
  case 'p': v = &rank_state::p; break;
  case 's': v = &rank_state::s; break;
  case 'x': v = &rank_state::x; break;
  default: throw_usage_error("gather_vector: unknown vector tag");
  }
  std::vector<double> out(static_cast<std::size_t>(n_), 0.0);
  for (int r = 0; r < comm_->ranks(); ++r) {
    const auto& st = ranks_[static_cast<std::size_t>(r)];
    const auto rows = rows_of(r);
    for (index_t i = 0; i < st.local_n; ++i) {
      out[static_cast<std::size_t>(rows.begin + i)] = (st.*v).data()[i + 1];
    }
  }
  return out;
}

void tridiag_cg::bench_reset() {
  for (auto& st : ranks_) {
    for (index_t i = 0; i < st.local_n + 2; ++i) {
      st.r.data()[i] = 0.5;
      st.p.data()[i] = 0.5;
      st.s.data()[i] = 0.0;
      st.x.data()[i] = 0.0;
    }
  }
}

void tridiag_cg::bench_iteration() {
  halo_exchange_p();
  for (int r = 0; r < comm_->ranks(); ++r) {
    local_matvec(r);
  }
  const double rr = dot_allreduce(&rank_state::r, &rank_state::r, "dist.dot");
  const double ps = dot_allreduce(&rank_state::p, &rank_state::s, "dist.dot");
  const double alpha = rr / ps;
  axpy_all(alpha, &rank_state::x, &rank_state::p);
  axpy_all(-alpha, &rank_state::r, &rank_state::s);
  const double rr_new =
      dot_allreduce(&rank_state::r, &rank_state::r, "dist.dot");
  xpay_all(rr_new / rr, &rank_state::r, &rank_state::p);
}

void tridiag_cg::bench_iteration_async() {
  const int R = comm_->ranks();
  const std::size_t pbytes = static_cast<std::size_t>(R) * sizeof(double);

  // Halo exchanges on the comm streams, red-black ordered: the even pairs
  // (0,1)(2,3)... are rank-disjoint and run concurrently, then the odd
  // pairs — two wire steps total instead of the (R-1)-step chain the
  // synchronous path walks (program order serializes adjacent pairs
  // through the shared middle rank).  This is what posting all the
  // nonblocking sends up front buys; the device clocks are untouched, so
  // the rr dot below hides both steps.
  std::vector<double> halo_done(static_cast<std::size_t>(R), 0.0);
  for (int parity = 0; parity < 2; ++parity) {
    for (int r = parity; r + 1 < R; r += 2) {
      auto& left = ranks_[static_cast<std::size_t>(r)];
      auto& right = ranks_[static_cast<std::size_t>(r + 1)];
      if (left.local_n == 0 || right.local_n == 0) {
        continue;
      }
      const jacc::event e = comm_->iexchange(
          r, left.p.data() + left.local_n, left.p.data() + left.local_n + 1,
          r + 1, right.p.data() + 1, right.p.data(), 1, "dist.halo");
      const double done = e.sim_time_us();
      halo_done[static_cast<std::size_t>(r)] =
          std::max(halo_done[static_cast<std::size_t>(r)], done);
      halo_done[static_cast<std::size_t>(r + 1)] =
          std::max(halo_done[static_cast<std::size_t>(r + 1)], done);
    }
  }

  // rr = r . r reads no ghosts: its kernels run on the device clocks while
  // the halo chain is in flight, and its allreduce rounds then ride the
  // comm lanes under the matvec.
  auto rr_blk = mem::acquire(nullptr, pbytes, "dist.partials");
  dot_local(&rank_state::r, &rank_state::r, "dist.dot",
            static_cast<double*>(rr_blk.ptr));
  jacc::future<double> f_rr = comm_->iallreduce_sum(
      static_cast<double*>(rr_blk.ptr), R, "dist.dot");
  mem::release(rr_blk); // summed inside iallreduce; slot free to recycle

  // The matvec needs the ghosts: hold each device only until *its* halo
  // traffic landed, then compute.
  for (int r = 0; r < R; ++r) {
    comm_->device_wait(r, halo_done[static_cast<std::size_t>(r)],
                       "dist.wait.halo");
    local_matvec(r);
  }

  auto ps_blk = mem::acquire(nullptr, pbytes, "dist.partials");
  dot_local(&rank_state::p, &rank_state::s, "dist.dot",
            static_cast<double*>(ps_blk.ptr));
  jacc::future<double> f_ps = comm_->iallreduce_sum(
      static_cast<double*>(ps_blk.ptr), R, "dist.dot");
  mem::release(ps_blk);

  // alpha needs both sums on every rank: each device waits for its comm
  // lane (which has now absorbed the rr and ps rounds).
  for (int r = 0; r < R; ++r) {
    comm_->wait_comm(r);
  }
  const double rr = f_rr.get();
  const double alpha = rr / f_ps.get();

  // Residual update first, so rr_new's allreduce starts as early as
  // possible; the independent x update then overlaps its rounds.  (The
  // sync iteration orders the axpys the other way; they touch disjoint
  // vectors, so the values are identical.)
  axpy_all(-alpha, &rank_state::r, &rank_state::s);
  auto rrn_blk = mem::acquire(nullptr, pbytes, "dist.partials");
  dot_local(&rank_state::r, &rank_state::r, "dist.dot",
            static_cast<double*>(rrn_blk.ptr));
  jacc::future<double> f_rrn = comm_->iallreduce_sum(
      static_cast<double*>(rrn_blk.ptr), R, "dist.dot");
  mem::release(rrn_blk);
  axpy_all(alpha, &rank_state::x, &rank_state::p);

  // beta needs rr_new: wait the comm lanes, then update the direction.
  for (int r = 0; r < R; ++r) {
    comm_->wait_comm(r);
  }
  xpay_all(f_rrn.get() / rr, &rank_state::r, &rank_state::p);
}

} // namespace jaccx::dist
