#include "dist/comm.hpp"

#include <algorithm>
#include <cstring>

namespace jaccx::dist {

communicator::communicator(int ranks, const std::string& gpu_model,
                           nic_model nic)
    : nic_(nic) {
  if (ranks < 1) {
    throw_usage_error("communicator needs at least one rank");
  }
  nodes_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    nodes_.push_back(&sim::get_device_instance(gpu_model, r));
  }
}

sim::device& communicator::dev(int rank) const {
  JACCX_ASSERT(rank >= 0 && rank < ranks());
  return *nodes_[static_cast<std::size_t>(rank)];
}

double communicator::time_of(int rank) const {
  return dev(rank).tl().now_us();
}

double communicator::now_us() const {
  double t = 0.0;
  for (const auto* n : nodes_) {
    t = std::max(t, n->tl().now_us());
  }
  return t;
}

double communicator::barrier() {
  const double t = now_us();
  for (auto* n : nodes_) {
    const double behind = t - n->tl().now_us();
    if (behind > 0.0) {
      n->tl().record("dist.barrier", sim::event_kind::kernel, behind);
    }
  }
  return t;
}

void communicator::reset() {
  for (auto* n : nodes_) {
    n->reset_clock();
    n->cache().reset();
  }
}

void communicator::charge_pair(int a, int b, std::uint64_t bytes,
                               std::string_view name) {
  auto& da = dev(a);
  auto& db = dev(b);
  const double start = std::max(da.tl().now_us(), db.tl().now_us());
  const double done = start + nic_.latency_us +
                      static_cast<double>(bytes) / (nic_.bandwidth_gbps * 1e3);
  da.tl().record(std::string(name), sim::event_kind::transfer_d2h,
                 done - da.tl().now_us());
  db.tl().record(std::string(name), sim::event_kind::transfer_h2d,
                 done - db.tl().now_us());
}

void communicator::send_recv(int src_rank, const double* src, int dst_rank,
                             double* dst, index_t count,
                             std::string_view name) {
  JACCX_ASSERT(count >= 0);
  if (src_rank == dst_rank) {
    std::memmove(dst, src, static_cast<std::size_t>(count) * sizeof(double));
    return;
  }
  std::memcpy(dst, src, static_cast<std::size_t>(count) * sizeof(double));
  charge_pair(src_rank, dst_rank,
              static_cast<std::uint64_t>(count) * sizeof(double), name);
}

void communicator::exchange(int rank_a, const double* a_out, double* a_in,
                            int rank_b, const double* b_out, double* b_in,
                            index_t count, std::string_view name) {
  JACCX_ASSERT(count >= 0);
  // Full-duplex links: both directions complete in one charged step.
  std::memcpy(b_in, a_out, static_cast<std::size_t>(count) * sizeof(double));
  std::memcpy(a_in, b_out, static_cast<std::size_t>(count) * sizeof(double));
  charge_pair(rank_a, rank_b,
              static_cast<std::uint64_t>(count) * sizeof(double), name);
}

int communicator::allreduce_rounds() const {
  int rounds = 0;
  int span = 1;
  while (span < ranks()) {
    span <<= 1;
    ++rounds;
  }
  return rounds;
}

double communicator::allreduce_sum(const std::vector<double>& per_rank,
                                   std::string_view name) {
  if (static_cast<int>(per_rank.size()) != ranks()) {
    throw_usage_error("allreduce_sum needs one value per rank");
  }
  double total = 0.0;
  for (double v : per_rank) {
    total += v;
  }
  // Recursive doubling: in round k, rank r exchanges 8 bytes with r ^ 2^k.
  // With equal per-round cost on every participating pair, the clocks all
  // advance by rounds * (latency + 8B/bw), serialized after the laggard.
  const int rounds = allreduce_rounds();
  if (rounds > 0) {
    const double start = now_us();
    const double per_round =
        nic_.latency_us + 8.0 / (nic_.bandwidth_gbps * 1e3);
    const double done = start + rounds * per_round;
    for (auto* n : nodes_) {
      n->tl().record(std::string(name), sim::event_kind::transfer_d2h,
                     done - n->tl().now_us());
    }
  }
  return total;
}

} // namespace jaccx::dist
