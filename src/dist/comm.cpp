#include "dist/comm.hpp"

#include <algorithm>
#include <cstring>

#include "core/queue.hpp"
#include "mem/pool.hpp"
#include "prof/prof.hpp"
#include "sim/stream.hpp"

namespace jaccx::dist {
namespace {

/// Pooled MPI-style bounce buffer: the async calls stage through host
/// memory drawn from jaccx::mem, so steady-state communication performs no
/// heap allocation (and JACC_MEM_POOL=none degrades to a plain aligned
/// alloc, matching what a real transport's first iteration pays).
void stage_copy(double* dst, const double* src, std::size_t bytes) {
  auto blk = mem::acquire(nullptr, bytes, "dist.stage");
  std::memcpy(blk.ptr, src, bytes);
  std::memcpy(dst, blk.ptr, bytes);
  mem::release(blk);
}

jacc::event make_done_event(double done_us, sim::device* dev) {
  auto es = std::make_shared<jacc::detail::event_state>();
  es->sim_done_us = done_us;
  es->dev = dev;
  es->complete.store(true, std::memory_order_release);
  return jacc::detail::event_access::make(std::move(es));
}

} // namespace

communicator::communicator(int ranks, const std::string& gpu_model,
                           nic_model nic)
    : nic_(nic) {
  if (ranks < 1) {
    throw_usage_error("communicator needs at least one rank");
  }
  nodes_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    nodes_.push_back(&sim::get_device_instance(gpu_model, r));
  }
}

communicator::~communicator() = default;

sim::device& communicator::dev(int rank) const {
  JACCX_ASSERT(rank >= 0 && rank < ranks());
  return *nodes_[static_cast<std::size_t>(rank)];
}

double communicator::time_of(int rank) const {
  return dev(rank).tl().now_us();
}

double communicator::now_us() const {
  double t = 0.0;
  for (const auto* n : nodes_) {
    t = std::max(t, n->tl().now_us());
  }
  return t;
}

double communicator::barrier() {
  const double t = now_us();
  for (auto* n : nodes_) {
    const double behind = t - n->tl().now_us();
    if (behind > 0.0) {
      n->tl().record("dist.barrier", sim::event_kind::kernel, behind);
    }
  }
  return t;
}

void communicator::reset() {
  // Comm queues first: their streams carry the old time origin, so they are
  // reborn (fresh, at t = 0) on next use after the rewind.
  queues_.clear();
  for (auto* n : nodes_) {
    n->reset_clock();
    n->cache().reset();
  }
}

void communicator::charge_pair(int a, int b, std::uint64_t bytes,
                               std::string_view name) {
  if (jaccx::prof::enabled()) [[unlikely]] {
    jaccx::prof::note_comm(name, bytes);
  }
  auto& da = dev(a);
  auto& db = dev(b);
  const double start = std::max(da.tl().now_us(), db.tl().now_us());
  const double done = start + nic_.latency_us +
                      static_cast<double>(bytes) / (nic_.bandwidth_gbps * 1e3);
  da.tl().record(std::string(name), sim::event_kind::transfer_d2h,
                 done - da.tl().now_us());
  db.tl().record(std::string(name), sim::event_kind::transfer_h2d,
                 done - db.tl().now_us());
}

void communicator::send_recv(int src_rank, const double* src, int dst_rank,
                             double* dst, index_t count,
                             std::string_view name) {
  JACCX_ASSERT(count >= 0);
  if (src_rank == dst_rank) {
    std::memmove(dst, src, static_cast<std::size_t>(count) * sizeof(double));
    return;
  }
  std::memcpy(dst, src, static_cast<std::size_t>(count) * sizeof(double));
  charge_pair(src_rank, dst_rank,
              static_cast<std::uint64_t>(count) * sizeof(double), name);
}

void communicator::exchange(int rank_a, const double* a_out, double* a_in,
                            int rank_b, const double* b_out, double* b_in,
                            index_t count, std::string_view name) {
  JACCX_ASSERT(count >= 0);
  // Full-duplex links: both directions complete in one charged step.
  std::memcpy(b_in, a_out, static_cast<std::size_t>(count) * sizeof(double));
  std::memcpy(a_in, b_out, static_cast<std::size_t>(count) * sizeof(double));
  charge_pair(rank_a, rank_b,
              static_cast<std::uint64_t>(count) * sizeof(double), name);
}

int communicator::allreduce_rounds() const {
  int rounds = 0;
  int span = 1;
  while (span < ranks()) {
    span <<= 1;
    ++rounds;
  }
  return rounds;
}

double communicator::allreduce_sum(const std::vector<double>& per_rank,
                                   std::string_view name) {
  return allreduce_sum(per_rank.data(), static_cast<int>(per_rank.size()),
                       name);
}

double communicator::allreduce_sum(const double* per_rank, int count,
                                   std::string_view name) {
  if (count != ranks()) {
    throw_usage_error("allreduce_sum needs one value per rank");
  }
  double total = 0.0;
  for (int r = 0; r < count; ++r) {
    total += per_rank[r];
  }
  // Recursive doubling: in round k, rank r exchanges 8 bytes with r ^ 2^k.
  // With equal per-round cost on every participating pair, the clocks all
  // advance by rounds * (latency + 8B/bw), serialized after the laggard.
  const int rounds = allreduce_rounds();
  if (rounds > 0) {
    if (jaccx::prof::enabled()) [[unlikely]] {
      // Wire volume of recursive doubling: one 8-byte exchange per rank per
      // round.
      jaccx::prof::note_comm(name, static_cast<std::uint64_t>(rounds) * 8 *
                                       static_cast<std::uint64_t>(ranks()));
    }
    const double start = now_us();
    const double per_round =
        nic_.latency_us + 8.0 / (nic_.bandwidth_gbps * 1e3);
    const double done = start + rounds * per_round;
    for (auto* n : nodes_) {
      n->tl().record(std::string(name), sim::event_kind::transfer_d2h,
                     done - n->tl().now_us());
    }
  }
  return total;
}

// --- async (queue-routed) ----------------------------------------------------

jacc::queue& communicator::rank_queue(int rank) {
  JACCX_ASSERT(rank >= 0 && rank < ranks());
  if (queues_.empty()) {
    queues_.resize(static_cast<std::size_t>(ranks()));
  }
  auto& q = queues_[static_cast<std::size_t>(rank)];
  if (q == nullptr) {
    q = std::make_unique<jacc::queue>("rank" + std::to_string(rank));
  }
  return *q;
}

sim::stream& communicator::rank_stream(int rank) {
  return *jacc::detail::queue_stream(rank_queue(rank), dev(rank));
}

double communicator::comm_time_of(int rank) {
  return rank_stream(rank).now_us();
}

double communicator::link_pair(int a, int b, double start, double cost) {
  // The NIC shares each node's host<->device link calendar: the message
  // occupies a slot on both endpoints, serializing against whatever
  // transfers those nodes already have in flight while compute streams keep
  // running.  The receiver's slot cannot begin before the sender's.
  const double done_a = dev(a).reserve_link(start, cost);
  const double done_b = dev(b).reserve_link(done_a - cost, cost);
  return std::max(done_a, done_b);
}

jacc::event communicator::isend_recv(int src_rank, const double* src,
                                     int dst_rank, double* dst, index_t count,
                                     std::string_view name) {
  JACCX_ASSERT(count >= 0);
  const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(double);
  if (src_rank == dst_rank) {
    std::memmove(dst, src, bytes);
    return jacc::event{};
  }
  if (bytes > 0) {
    stage_copy(dst, src, bytes);
  }
  if (jaccx::prof::enabled()) [[unlikely]] {
    jaccx::prof::note_comm(name, bytes);
  }
  auto& sa = rank_stream(src_rank);
  auto& sb = rank_stream(dst_rank);
  // Data readiness: the payload exists once the producing kernels on the
  // device clocks have run, so the message cannot enter the wire earlier.
  const double start =
      std::max({sa.now_us(), sb.now_us(), dev(src_rank).tl().now_us(),
                dev(dst_rank).tl().now_us()});
  const double cost =
      nic_.latency_us +
      static_cast<double>(bytes) / (nic_.bandwidth_gbps * 1e3);
  const double done = link_pair(src_rank, dst_rank, start, cost);
  sa.tl().record(std::string(name), sim::event_kind::transfer_d2h,
                 done - sa.now_us());
  sb.tl().record(std::string(name), sim::event_kind::transfer_h2d,
                 done - sb.now_us());
  return make_done_event(done, &dev(dst_rank));
}

jacc::event communicator::iexchange(int rank_a, const double* a_out,
                                    double* a_in, int rank_b,
                                    const double* b_out, double* b_in,
                                    index_t count, std::string_view name) {
  JACCX_ASSERT(count >= 0);
  const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(double);
  if (bytes > 0) {
    // Full-duplex: both directions move now and share one charged step.
    stage_copy(b_in, a_out, bytes);
    stage_copy(a_in, b_out, bytes);
  }
  if (jaccx::prof::enabled()) [[unlikely]] {
    jaccx::prof::note_comm(name, bytes);
  }
  auto& sa = rank_stream(rank_a);
  auto& sb = rank_stream(rank_b);
  const double start =
      std::max({sa.now_us(), sb.now_us(), dev(rank_a).tl().now_us(),
                dev(rank_b).tl().now_us()});
  const double cost =
      nic_.latency_us +
      static_cast<double>(bytes) / (nic_.bandwidth_gbps * 1e3);
  const double done = link_pair(rank_a, rank_b, start, cost);
  sa.tl().record(std::string(name), sim::event_kind::transfer_d2h,
                 done - sa.now_us());
  sb.tl().record(std::string(name), sim::event_kind::transfer_h2d,
                 done - sb.now_us());
  return make_done_event(done, &dev(rank_b));
}

jacc::future<double> communicator::iallreduce_sum(const double* per_rank,
                                                  int count,
                                                  std::string_view name) {
  if (count != ranks()) {
    throw_usage_error("iallreduce_sum needs one value per rank");
  }
  // Same summation order as the synchronous allreduce: bit-identical value.
  double total = 0.0;
  for (int r = 0; r < count; ++r) {
    total += per_rank[r];
  }
  const int rounds = allreduce_rounds();
  if (rounds == 0) {
    return jacc::detail::make_ready_future<double>(total);
  }
  if (jaccx::prof::enabled()) [[unlikely]] {
    jaccx::prof::note_comm(name, static_cast<std::uint64_t>(rounds) * 8 *
                                     static_cast<std::uint64_t>(ranks()));
  }
  // Recursive doubling charged pairwise on the comm streams: in round k,
  // rank r pairs with r ^ 2^k, each pair's step going through both link
  // calendars.  Unlike the synchronous lump charge, a rank only advances
  // with the pairs it actually joins, and device compute clocks are not
  // touched at all.
  std::vector<double> t(static_cast<std::size_t>(ranks()));
  for (int r = 0; r < ranks(); ++r) {
    // A rank enters round 0 once its comm lane is free AND its partial has
    // been produced on the device clock.
    t[static_cast<std::size_t>(r)] =
        std::max(rank_stream(r).now_us(), dev(r).tl().now_us());
  }
  const double per_round = nic_.latency_us + 8.0 / (nic_.bandwidth_gbps * 1e3);
  for (int k = 0; k < rounds; ++k) {
    const int span = 1 << k;
    for (int r = 0; r < ranks(); ++r) {
      const int peer = r ^ span;
      if (peer > r && peer < ranks()) {
        const auto ri = static_cast<std::size_t>(r);
        const auto pi = static_cast<std::size_t>(peer);
        const double done = link_pair(r, peer, std::max(t[ri], t[pi]),
                                      per_round);
        t[ri] = done;
        t[pi] = done;
      }
    }
  }
  double done_all = 0.0;
  for (int r = 0; r < ranks(); ++r) {
    auto& s = rank_stream(r);
    const double behind = t[static_cast<std::size_t>(r)] - s.now_us();
    if (behind > 0.0) {
      s.tl().record(std::string(name), sim::event_kind::transfer_d2h, behind);
    }
    done_all = std::max(done_all, s.now_us());
  }
  return jacc::detail::make_ready_future<double>(total, done_all,
                                                 nodes_.front());
}

void communicator::device_wait(int rank, double t_us, std::string_view name) {
  auto& d = dev(rank);
  const double behind = t_us - d.tl().now_us();
  if (behind > 0.0) {
    d.tl().record(std::string(name), sim::event_kind::kernel, behind);
  }
}

void communicator::wait_comm(int rank) {
  device_wait(rank, rank_stream(rank).now_us(), "dist.wait.comm");
}

double communicator::sync_comm() {
  double t = 0.0;
  for (int r = 0; r < ranks(); ++r) {
    const auto ri = static_cast<std::size_t>(r);
    if (queues_.empty() || queues_[ri] == nullptr) {
      t = std::max(t, time_of(r)); // rank never communicated asynchronously
      continue;
    }
    t = std::max(t, sim::join(dev(r), {&rank_stream(r)}));
  }
  return t;
}

} // namespace jaccx::dist
