// Distributed conjugate gradient on the communicator substrate: the HPCCG
// pattern at cluster scale — local sparse matvec with one-element halo
// exchanges, local BLAS-1, and allreduce for every dot product.
//
// The matrix is the paper's diagonally dominant tridiagonal (diag 4,
// off-diagonals 1), block-row distributed.  Each rank's vectors carry one
// ghost cell per side; global-boundary ghosts stay zero, which makes the
// truncated first/last rows fall out of the uniform interior kernel.
#pragma once

#include <vector>

#include "dist/comm.hpp"
#include "threadpool/partition.hpp"

namespace jaccx::dist {

struct cg_options {
  int max_iterations = 500;
  double tolerance = 1e-10; ///< on ||r|| / ||b||
};

struct cg_result {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// How tridiag_cg splits its block rows across ranks.  round_robin is the
/// historical equal-block plan, bit-identical to pool::static_chunk.
/// measured sizes each rank's block proportionally to the achieved GB/s
/// the rate-feedback registry holds for that rank's device instance
/// ("<model>#<rank>" — fed by jaccx::prof roofline feedback, device_set
/// launches, or jacc::note_achieved_rate directly); instances with no
/// samples yet weigh in at `fallback_gbps`, so a cold registry reproduces
/// the equal-block plan.
struct placement_policy {
  enum class kind { round_robin, measured };
  kind k = kind::round_robin;
  double fallback_gbps = 1.0;
};

namespace placement {
inline placement_policy round_robin() { return {}; }
inline placement_policy measured(double fallback_gbps = 1.0) {
  return {placement_policy::kind::measured, fallback_gbps};
}
} // namespace placement

/// Block-row-distributed tridiagonal CG solver.
class tridiag_cg {
public:
  tridiag_cg(communicator& comm, index_t n,
             placement_policy place = placement::round_robin());

  index_t size() const { return n_; }

  /// Rows owned by rank r, under the placement chosen at construction.
  pool::range rows_of(int rank) const {
    return pool::range{bounds_[static_cast<std::size_t>(rank)],
                       bounds_[static_cast<std::size_t>(rank) + 1]};
  }

  /// Solves A x = b.  `b` is the global right-hand side on the host
  /// (scattered, charging per-rank H2D); the solution is gathered back
  /// (charging D2H).  Communication and kernels advance the rank clocks.
  cg_result solve(const std::vector<double>& b, std::vector<double>& x,
                  const cg_options& opts = {});

  /// One halo exchange + matvec + 2 allreduce-dots + 2 axpys + direction
  /// update — the per-iteration communication/computation pattern, exposed
  /// for the scaling benchmark (state persists across calls).
  void bench_iteration();

  /// The same iteration, pipelined on the async communicator: halo
  /// exchanges and allreduce rounds ride the per-rank comm streams while
  /// the device clocks run independent kernels (rr dot under the halo,
  /// matvec under the rr allreduce, the x update under the rr_new
  /// allreduce).  Produces bit-identical vector values to
  /// bench_iteration(); only the simulated charge structure differs.
  /// Callers compare clocks after comm.sync_comm().
  void bench_iteration_async();

  /// Prepares bench_iteration state for problem vectors r = p = 0.5.
  void bench_reset();

  /// Gathers one distributed CG vector ('r', 'p', 's' or 'x') to the host,
  /// owned cells only, charging nothing.  Test/diagnostic hook — the
  /// bit-exactness pins compare sync and pipelined iterations through it.
  std::vector<double> gather_vector(char which) const;

private:
  struct rank_state {
    sim::device_buffer<double> r, p, s, x;
    index_t local_n = 0;
  };
  /// Selects one of the per-rank CG vectors.
  using vec_ptr = sim::device_buffer<double> rank_state::*;

  void halo_exchange_p();
  void local_matvec(int rank); // s = A p on this rank's rows
  /// Per-rank two-kernel device reductions into `partials` (one slot per
  /// rank, zero for empty ranks).
  void dot_local(vec_ptr a, vec_ptr b, const char* name, double* partials);
  /// Global dot: dot_local into a pooled partials buffer + allreduce.
  double dot_allreduce(vec_ptr a, vec_ptr b, const char* name);
  /// x += alpha * y on every rank (owned cells only).
  void axpy_all(double alpha, vec_ptr x, vec_ptr y);
  /// p = r + beta * p on every rank.
  void xpay_all(double beta, vec_ptr r, vec_ptr p);

  communicator* comm_;
  index_t n_ = 0;
  std::vector<index_t> bounds_; ///< ranks()+1 row boundaries (fixed at ctor)
  std::vector<rank_state> ranks_;
};

} // namespace jaccx::dist
