// Distributed-memory substrate: simulated nodes and an MPI-flavoured
// communicator.
//
// The paper situates JACC in an ecosystem where distributed runs go through
// MPI.jl / Distributed.jl (Sec. II) and lists distributed configurations as
// future work (Sec. VII).  This module models that layer: a cluster is N
// nodes, each owning one simulated GPU and a NIC (latency + bandwidth);
// point-to-point messages and collectives advance the participating nodes'
// clocks with the usual LogP-style cost
//
//   t_done = max(t_src, t_dst) + nic_latency + bytes / nic_bandwidth
//
// and an allreduce is recursive doubling: ceil(log2 N) rounds of pairwise
// exchanges.  Data moves for real (host memcpy), so algorithms built on the
// communicator are functionally exact; the clocks tell the scaling story
// (bench/abl_dist_scaling).
//
// Async layer (i-prefixed calls): each rank additionally owns a jacc::queue
// labeled "rank<r>" whose simulated stream ("<model>.rank<r>") is the
// rank's communication lane.  isend_recv / iexchange / iallreduce_sum move
// the data immediately (host memcpy through pooled staging buffers, as an
// MPI bounce buffer would) but charge the *streams* and the per-device
// link calendars, leaving the device compute clocks untouched — so
// communication overlaps local kernels until the algorithm explicitly
// waits (device_wait / wait_comm / sync_comm).  The synchronous calls
// above are charged exactly as before; the async layer never perturbs
// them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/future.hpp"
#include "sim/device.hpp"
#include "sim/memspace.hpp"

namespace jacc {
class queue;
}
namespace jaccx::sim {
class stream;
}

namespace jaccx::dist {

using jaccx::index_t;

/// Interconnect parameters.  Defaults approximate an InfiniBand-class HPC
/// fabric; ethernet_like() is the slow alternative the latency-sensitivity
/// bench sweeps.
struct nic_model {
  double latency_us = 1.5;
  double bandwidth_gbps = 25.0;

  static nic_model infiniband_like() { return {1.5, 25.0}; }
  static nic_model ethernet_like() { return {50.0, 1.2}; }
};

/// A cluster of N ranks, each bound to its own instance of one GPU model.
class communicator {
public:
  /// `gpu_model` is a built-in device-model name ("a100", ...); rank r gets
  /// device instance r of that model.
  communicator(int ranks, const std::string& gpu_model = "a100",
               nic_model nic = nic_model::infiniband_like());
  ~communicator(); // out of line: jacc::queue is forward-declared here

  int ranks() const { return static_cast<int>(nodes_.size()); }
  const nic_model& nic() const { return nic_; }
  sim::device& dev(int rank) const;

  /// Simulated time of rank r (its device clock).
  double time_of(int rank) const;

  /// Cluster wall clock: the furthest-ahead rank.
  double now_us() const;

  /// Aligns all rank clocks (an MPI_Barrier after the modeled rounds).
  double barrier();

  /// Rewinds every rank's clock/log and cache (benchmarks).
  void reset();

  // --- point to point ---------------------------------------------------------
  /// Moves `count` doubles from src_rank's buffer to dst_rank's, charging
  /// both clocks.  Buffers are raw host-backed device storage.
  void send_recv(int src_rank, const double* src, int dst_rank, double* dst,
                 index_t count, std::string_view name = "dist.sendrecv");

  /// Symmetric neighbour exchange (both directions in one overlapped step,
  /// as MPI_Sendrecv pairs would).
  void exchange(int rank_a, const double* a_out, double* a_in, int rank_b,
                const double* b_out, double* b_in, index_t count,
                std::string_view name = "dist.exchange");

  // --- collectives -------------------------------------------------------------
  /// Global sum of one double per rank.  Every rank's clock advances by the
  /// recursive-doubling rounds; returns the sum.
  double allreduce_sum(const std::vector<double>& per_rank,
                       std::string_view name = "dist.allreduce");

  /// Pointer form (same charging, same summation order) so callers can keep
  /// their per-rank partials in a pooled buffer instead of a per-call
  /// std::vector.
  double allreduce_sum(const double* per_rank, int count,
                       std::string_view name = "dist.allreduce");

  /// Number of recursive-doubling rounds for the current size.
  int allreduce_rounds() const;

  // --- async (queue-routed) ----------------------------------------------------
  /// Rank r's communication queue ("rank<r>"); created on first use.
  jacc::queue& rank_queue(int rank);

  /// Rank r's communication stream on its device — the "<model>.rank<r>"
  /// Chrome-trace lane every i-call charges.
  sim::stream& rank_stream(int rank);

  /// Simulated position of rank r's communication lane.
  double comm_time_of(int rank);

  /// Non-blocking send_recv: data moves now (through a pooled staging
  /// buffer), the cost lands on both ranks' comm streams serialized through
  /// their link calendars.  The returned event carries the completion time.
  jacc::event isend_recv(int src_rank, const double* src, int dst_rank,
                         double* dst, index_t count,
                         std::string_view name = "dist.isendrecv");

  /// Non-blocking symmetric neighbour exchange (one full-duplex step).
  jacc::event iexchange(int rank_a, const double* a_out, double* a_in,
                        int rank_b, const double* b_out, double* b_in,
                        index_t count, std::string_view name = "dist.iexchange");

  /// Non-blocking allreduce: the value is final immediately (functional
  /// execution, same summation order as allreduce_sum) but the
  /// recursive-doubling rounds are charged pairwise to the comm streams and
  /// link calendars, so local compute issued after this call overlaps the
  /// collective.  f.get() returns the sum; f.sim_time_us() the completion.
  jacc::future<double> iallreduce_sum(const double* per_rank, int count,
                                      std::string_view name =
                                          "dist.iallreduce");

  /// Holds rank r's *compute* clock until t_us (a stream-wait: the device
  /// cannot run dependent kernels before the communication lands).
  void device_wait(int rank, double t_us,
                   std::string_view name = "dist.wait");

  /// device_wait up to rank r's comm-stream position.
  void wait_comm(int rank);

  /// Joins every rank's comm stream with its device clock (the end-of-
  /// iteration synchronize); returns the cluster wall clock.
  double sync_comm();

private:
  void charge_pair(int a, int b, std::uint64_t bytes, std::string_view name);
  double link_pair(int a, int b, double start, double cost);

  nic_model nic_;
  std::vector<sim::device*> nodes_;
  std::vector<std::unique_ptr<jacc::queue>> queues_;
};

} // namespace jaccx::dist
