// Uniform policy types over the three vendor-style wrappers, so the native
// device-specific algorithms (the paper's comparator codes) can be written
// once and instantiated per vendor — the way the paper's Julia listings are
// structurally identical across CUDA.jl/AMDGPU.jl/oneAPI.jl and differ only
// in vocabulary.
#pragma once

#include "backends/cudasim.hpp"
#include "backends/hipsim.hpp"
#include "backends/onesim.hpp"

namespace jaccx::vendor {

struct cuda_api {
  static constexpr std::string_view name() { return "cuda"; }
  static sim::device& device() { return cudasim::device(); }
  static int max_threads() { return cudasim::max_block_dim_x(); }

  template <class T>
  static sim::device_buffer<T> to_device(const T* host, index_t n) {
    return cudasim::to_device<T>(host, n);
  }
  template <class T>
  static sim::device_buffer<T> zeros(index_t n) {
    return cudasim::zeros<T>(n);
  }
  template <class K>
  static void launch1d(std::int64_t blocks, std::int64_t threads,
                       const K& kernel, std::string_view kname,
                       double flops_per_index = 0.0) {
    cudasim::launch(blocks, threads, kernel, kname, 0, flops_per_index);
  }
  template <class K>
  static void launch2d(sim::dim3 blocks, sim::dim3 threads, const K& kernel,
                       std::string_view kname, double flops_per_index = 0.0) {
    cudasim::launch2d(blocks, threads, kernel, kname, flops_per_index);
  }
  template <class K>
  static void launch_shared(std::int64_t blocks, std::int64_t threads,
                            std::size_t shmem_bytes, const K& kernel,
                            std::string_view kname, bool is_reduce,
                            double flops_per_index = 0.0) {
    cudasim::launch_shared(blocks, threads, shmem_bytes, kernel, kname,
                           is_reduce, flops_per_index);
  }
};

struct hip_api {
  static constexpr std::string_view name() { return "amdgpu"; }
  static sim::device& device() { return hipsim::device(); }
  static int max_threads() { return hipsim::max_workgroup_dim_x(); }

  template <class T>
  static sim::device_buffer<T> to_device(const T* host, index_t n) {
    return hipsim::to_device<T>(host, n);
  }
  template <class T>
  static sim::device_buffer<T> zeros(index_t n) {
    return hipsim::zeros<T>(n);
  }
  template <class K>
  static void launch1d(std::int64_t blocks, std::int64_t threads,
                       const K& kernel, std::string_view kname,
                       double flops_per_index = 0.0) {
    hipsim::launch(blocks, threads, kernel, kname, 0, flops_per_index);
  }
  template <class K>
  static void launch2d(sim::dim3 blocks, sim::dim3 threads, const K& kernel,
                       std::string_view kname, double flops_per_index = 0.0) {
    hipsim::launch2d(blocks, threads, kernel, kname, flops_per_index);
  }
  template <class K>
  static void launch_shared(std::int64_t blocks, std::int64_t threads,
                            std::size_t shmem_bytes, const K& kernel,
                            std::string_view kname, bool is_reduce,
                            double flops_per_index = 0.0) {
    hipsim::launch_shared(blocks, threads, shmem_bytes, kernel, kname,
                          is_reduce, flops_per_index);
  }
};

struct oneapi_api {
  static constexpr std::string_view name() { return "oneapi"; }
  static sim::device& device() { return onesim::device(); }
  static int max_threads() { return onesim::max_total_group_size(); }

  template <class T>
  static sim::device_buffer<T> to_device(const T* host, index_t n) {
    return onesim::to_device<T>(host, n);
  }
  template <class T>
  static sim::device_buffer<T> zeros(index_t n) {
    return onesim::zeros<T>(n);
  }
  template <class K>
  static void launch1d(std::int64_t blocks, std::int64_t threads,
                       const K& kernel, std::string_view kname,
                       double flops_per_index = 0.0) {
    onesim::launch(blocks, threads, kernel, kname, 0, flops_per_index);
  }
  template <class K>
  static void launch2d(sim::dim3 blocks, sim::dim3 threads, const K& kernel,
                       std::string_view kname, double flops_per_index = 0.0) {
    onesim::launch2d(blocks, threads, kernel, kname, flops_per_index);
  }
  template <class K>
  static void launch_shared(std::int64_t blocks, std::int64_t threads,
                            std::size_t shmem_bytes, const K& kernel,
                            std::string_view kname, bool is_reduce,
                            double flops_per_index = 0.0) {
    onesim::launch_shared(blocks, threads, shmem_bytes, kernel, kname,
                          is_reduce, flops_per_index);
  }
};

} // namespace jaccx::vendor
