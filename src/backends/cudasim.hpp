// CUDA.jl-flavoured native API over the SIMT simulator.
//
// Device-specific comparator codes in the paper (Fig. 3, Fig. 6) are written
// directly against CUDA.jl: CuArray, CUDA.zeros, @cuda threads=.. blocks=..,
// attribute(device(), MAX_BLOCK_DIM_X), @cuDynamicSharedMem, sync_threads.
// This header provides the same vocabulary so the benchmark sources read
// like the paper's listings.  All launches are synchronous (CUDA.@sync).
#pragma once

#include <string_view>

#include "sim/launch.hpp"

namespace jaccx::cudasim {

using sim::dim3;
using sim::kernel_ctx;

template <class T>
using cu_array = sim::device_buffer<T>;

/// The simulated NVIDIA A100 this process talks to.
sim::device& device();

/// CUDA.DEVICE_ATTRIBUTE_MAX_BLOCK_DIM_X analogue.
int max_block_dim_x();

/// CuArray(host_data): allocate + H2D, as `dx = CuArray(x)`.
template <class T>
cu_array<T> to_device(const T* host, index_t n,
                      std::string_view name = "CuArray") {
  cu_array<T> buf(device(), n, name);
  buf.copy_from_host(host, name);
  return buf;
}

/// CUDA.zeros(Float64, n): allocates and runs a fill kernel (real work on
/// real hardware, so it is charged as a kernel here too).
template <class T>
cu_array<T> zeros(index_t n, std::string_view name = "CUDA.zeros") {
  cu_array<T> buf(device(), n, name);
  auto s = buf.span();
  sim::launch_config cfg;
  const std::int64_t threads =
      n < max_block_dim_x() ? (n > 0 ? n : 1) : max_block_dim_x();
  cfg.block = dim3{threads};
  cfg.grid = dim3{sim::ceil_div(n > 0 ? n : 1, threads)};
  cfg.name = name;
  sim::launch(device(), cfg, [s, n](kernel_ctx& ctx) {
    const auto i = ctx.global_x();
    if (i < n) {
      s[i] = T{};
    }
  });
  return buf;
}

/// `CUDA.@sync @cuda threads=.. blocks=.. shmem=..` for kernels without
/// barriers.
template <class K>
void launch(std::int64_t blocks, std::int64_t threads, const K& kernel,
            std::string_view name = "cuda_kernel",
            std::size_t shmem_bytes = 0, double flops_per_index = 0.0) {
  sim::launch_config cfg;
  cfg.grid = dim3{blocks};
  cfg.block = dim3{threads};
  cfg.shmem_bytes = shmem_bytes;
  cfg.name = name;
  cfg.flops_per_index = flops_per_index;
  sim::launch(device(), cfg, kernel);
}

/// 2D variant: threads/blocks given per dimension (paper Fig. 6 uses 16x16).
template <class K>
void launch2d(dim3 blocks, dim3 threads, const K& kernel,
              std::string_view name = "cuda_kernel2d",
              double flops_per_index = 0.0) {
  sim::launch_config cfg;
  cfg.grid = blocks;
  cfg.block = threads;
  cfg.name = name;
  cfg.flops_per_index = flops_per_index;
  sim::launch(device(), cfg, kernel);
}

/// Cooperative variant for kernels that use @cuDynamicSharedMem +
/// sync_threads (the Fig. 3 DOT reduction).
template <class K>
void launch_shared(std::int64_t blocks, std::int64_t threads,
                   std::size_t shmem_bytes, const K& kernel,
                   std::string_view name = "cuda_kernel_shared",
                   bool is_reduce = false, double flops_per_index = 0.0) {
  sim::launch_config cfg;
  cfg.grid = dim3{blocks};
  cfg.block = dim3{threads};
  cfg.shmem_bytes = shmem_bytes;
  cfg.name = name;
  cfg.flavor.is_reduce = is_reduce;
  cfg.flops_per_index = flops_per_index;
  sim::launch_cooperative(device(), cfg, kernel);
}

} // namespace jaccx::cudasim
