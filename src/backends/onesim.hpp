// oneAPI.jl-flavoured native API over the SIMT simulator (Max 1550 model).
//
// oneAPI.jl speaks in items/groups (@oneapi items=.. groups=..) with
// get_global_id(); note the paper's Fig. 7 maps dimension 0 to the SECOND
// loop index (j) and dimension 1 to the first (i) — the wrapper preserves
// that convention in launch2d.
#pragma once

#include <string_view>

#include "sim/launch.hpp"

namespace jaccx::onesim {

using sim::dim3;
using sim::kernel_ctx;

template <class T>
using one_array = sim::device_buffer<T>;

/// The simulated Intel Data Center Max 1550 this process talks to.
sim::device& device();

/// oneL0 compute_properties maxTotalGroupSize analogue.
int max_total_group_size();

/// oneArray(host_data): allocate + H2D.
template <class T>
one_array<T> to_device(const T* host, index_t n,
                       std::string_view name = "oneArray") {
  one_array<T> buf(device(), n, name);
  buf.copy_from_host(host, name);
  return buf;
}

/// oneAPI.zeros(Float64, n): allocate + fill kernel.
template <class T>
one_array<T> zeros(index_t n, std::string_view name = "oneAPI.zeros") {
  one_array<T> buf(device(), n, name);
  auto s = buf.span();
  sim::launch_config cfg;
  const std::int64_t items =
      n < max_total_group_size() ? (n > 0 ? n : 1) : max_total_group_size();
  cfg.block = dim3{items};
  cfg.grid = dim3{sim::ceil_div(n > 0 ? n : 1, items)};
  cfg.name = name;
  sim::launch(device(), cfg, [s, n](kernel_ctx& ctx) {
    const auto i = ctx.global_x();
    if (i < n) {
      s[i] = T{};
    }
  });
  return buf;
}

/// `oneAPI.@sync @oneapi items=.. groups=..` for barrier-free kernels.
template <class K>
void launch(std::int64_t groups, std::int64_t items, const K& kernel,
            std::string_view name = "oneapi_kernel",
            std::size_t shmem_bytes = 0, double flops_per_index = 0.0) {
  sim::launch_config cfg;
  cfg.grid = dim3{groups};
  cfg.block = dim3{items};
  cfg.shmem_bytes = shmem_bytes;
  cfg.name = name;
  cfg.flops_per_index = flops_per_index;
  sim::launch(device(), cfg, kernel);
}

/// 2D variant.
template <class K>
void launch2d(dim3 groups, dim3 items, const K& kernel,
              std::string_view name = "oneapi_kernel2d",
              double flops_per_index = 0.0) {
  sim::launch_config cfg;
  cfg.grid = groups;
  cfg.block = items;
  cfg.name = name;
  cfg.flops_per_index = flops_per_index;
  sim::launch(device(), cfg, kernel);
}

/// Cooperative variant for SLM + barrier kernels.
template <class K>
void launch_shared(std::int64_t groups, std::int64_t items,
                   std::size_t shmem_bytes, const K& kernel,
                   std::string_view name = "oneapi_kernel_shared",
                   bool is_reduce = false, double flops_per_index = 0.0) {
  sim::launch_config cfg;
  cfg.grid = dim3{groups};
  cfg.block = dim3{items};
  cfg.shmem_bytes = shmem_bytes;
  cfg.name = name;
  cfg.flavor.is_reduce = is_reduce;
  cfg.flops_per_index = flops_per_index;
  sim::launch_cooperative(device(), cfg, kernel);
}

} // namespace jaccx::onesim
