#include "backends/cudasim.hpp"
#include "backends/hipsim.hpp"
#include "backends/onesim.hpp"

namespace jaccx::cudasim {

sim::device& device() { return sim::get_device("a100"); }

int max_block_dim_x() { return device().model().max_threads_per_block; }

} // namespace jaccx::cudasim

namespace jaccx::hipsim {

sim::device& device() { return sim::get_device("mi100"); }

int max_workgroup_dim_x() { return device().model().max_threads_per_block; }

} // namespace jaccx::hipsim

namespace jaccx::onesim {

sim::device& device() { return sim::get_device("max1550"); }

int max_total_group_size() { return device().model().max_threads_per_block; }

} // namespace jaccx::onesim
