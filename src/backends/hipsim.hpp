// AMDGPU.jl-flavoured native API over the SIMT simulator (MI100 model).
//
// AMDGPU.jl speaks in workgroups/groupsize (@roc groupsize=.. gridsize=..)
// and ROCArray; semantics mirror the CUDA wrapper but run against the MI100
// device model, whose higher launch/transfer latencies reproduce the AMD
// results of the paper's Sec. V.
#pragma once

#include <string_view>

#include "sim/launch.hpp"

namespace jaccx::hipsim {

using sim::dim3;
using sim::kernel_ctx;

template <class T>
using roc_array = sim::device_buffer<T>;

/// The simulated AMD MI100 this process talks to.
sim::device& device();

/// Maximum workgroup size on the x dimension.
int max_workgroup_dim_x();

/// ROCArray(host_data): allocate + H2D.
template <class T>
roc_array<T> to_device(const T* host, index_t n,
                       std::string_view name = "ROCArray") {
  roc_array<T> buf(device(), n, name);
  buf.copy_from_host(host, name);
  return buf;
}

/// AMDGPU.zeros(Float64, n): allocate + fill kernel.
template <class T>
roc_array<T> zeros(index_t n, std::string_view name = "AMDGPU.zeros") {
  roc_array<T> buf(device(), n, name);
  auto s = buf.span();
  sim::launch_config cfg;
  const std::int64_t groupsize =
      n < max_workgroup_dim_x() ? (n > 0 ? n : 1) : max_workgroup_dim_x();
  cfg.block = dim3{groupsize};
  cfg.grid = dim3{sim::ceil_div(n > 0 ? n : 1, groupsize)};
  cfg.name = name;
  sim::launch(device(), cfg, [s, n](kernel_ctx& ctx) {
    const auto i = ctx.global_x();
    if (i < n) {
      s[i] = T{};
    }
  });
  return buf;
}

/// `AMDGPU.@sync @roc groupsize=.. gridsize=..` for barrier-free kernels.
template <class K>
void launch(std::int64_t gridsize, std::int64_t groupsize, const K& kernel,
            std::string_view name = "roc_kernel", std::size_t shmem_bytes = 0,
            double flops_per_index = 0.0) {
  sim::launch_config cfg;
  cfg.grid = dim3{gridsize};
  cfg.block = dim3{groupsize};
  cfg.shmem_bytes = shmem_bytes;
  cfg.name = name;
  cfg.flops_per_index = flops_per_index;
  sim::launch(device(), cfg, kernel);
}

/// 2D variant (16x16 workgroups in the paper's multidimensional mapping).
template <class K>
void launch2d(dim3 gridsize, dim3 groupsize, const K& kernel,
              std::string_view name = "roc_kernel2d",
              double flops_per_index = 0.0) {
  sim::launch_config cfg;
  cfg.grid = gridsize;
  cfg.block = groupsize;
  cfg.name = name;
  cfg.flops_per_index = flops_per_index;
  sim::launch(device(), cfg, kernel);
}

/// Cooperative variant for LDS + sync_workgroup kernels (shared-memory DOT).
template <class K>
void launch_shared(std::int64_t gridsize, std::int64_t groupsize,
                   std::size_t shmem_bytes, const K& kernel,
                   std::string_view name = "roc_kernel_shared",
                   bool is_reduce = false, double flops_per_index = 0.0) {
  sim::launch_config cfg;
  cfg.grid = dim3{gridsize};
  cfg.block = dim3{groupsize};
  cfg.shmem_bytes = shmem_bytes;
  cfg.name = name;
  cfg.flavor.is_reduce = is_reduce;
  cfg.flops_per_index = flops_per_index;
  sim::launch_cooperative(device(), cfg, kernel);
}

} // namespace jaccx::hipsim
