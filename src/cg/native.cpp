#include "cg/native.hpp"

#include "blas/native_cpu.hpp"
#include "sim/launch.hpp"

namespace jaccx::cg {
namespace {

void rome_matvec(sim::device& dev, const native_workset& st,
                 sim::device_span<double> x, sim::device_span<double> y) {
  sim::cpu_region_config cfg;
  cfg.name = "threads.tridiag_matvec";
  cfg.flops_per_index = 5.0;
  const index_t n = st.n;
  sim::cpu_parallel_range(dev, cfg, n, [&](index_t i) {
    if (i == 0) {
      y[i] = static_cast<double>(st.diag[i]) * static_cast<double>(x[i]) +
             static_cast<double>(st.super[i]) * static_cast<double>(x[i + 1]);
    } else if (i == n - 1) {
      y[i] = static_cast<double>(st.sub[i]) * static_cast<double>(x[i - 1]) +
             static_cast<double>(st.diag[i]) * static_cast<double>(x[i]);
    } else {
      y[i] = static_cast<double>(st.sub[i]) * static_cast<double>(x[i - 1]) +
             static_cast<double>(st.diag[i]) * static_cast<double>(x[i]) +
             static_cast<double>(st.super[i]) * static_cast<double>(x[i + 1]);
    }
  });
}

void rome_copy(sim::device& dev, index_t n, sim::device_span<double> src,
               sim::device_span<double> dst) {
  sim::cpu_region_config cfg;
  cfg.name = "threads.copy";
  sim::cpu_parallel_range(dev, cfg, n, [&](index_t i) {
    dst[i] = static_cast<double>(src[i]);
  });
}

} // namespace

void rome_iteration(sim::device& dev, const native_workset& st) {
  const index_t n = st.n;
  rome_copy(dev, n, st.r, st.r_old);
  rome_matvec(dev, st, st.p, st.s);
  const double alpha0 = blas::rome_dot(dev, n, st.r, st.r);
  const double alpha1 = blas::rome_dot(dev, n, st.p, st.s);
  const double alpha = alpha0 / alpha1;
  blas::rome_axpy(dev, n, -alpha, st.r, st.s);
  blas::rome_axpy(dev, n, alpha, st.x, st.p);
  const double beta0 = blas::rome_dot(dev, n, st.r, st.r);
  const double beta1 = blas::rome_dot(dev, n, st.r_old, st.r_old);
  const double beta = beta0 / beta1;
  rome_copy(dev, n, st.r, st.r_aux);
  blas::rome_axpy(dev, n, beta, st.r_aux, st.p);
  rome_copy(dev, n, st.r_aux, st.p);
  const double cond = blas::rome_dot(dev, n, st.r, st.r);
  static_cast<void>(cond);
}

} // namespace jaccx::cg
