// General sparse support: CSR storage, a JACC SpMV kernel, and the
// HPCCG-style 27-point problem generator.
//
// The paper's CG study stands in for MiniFE and the HPCCG benchmark; HPCCG's
// actual operator is a 27-point stencil on a structured 3D grid (diagonal
// 27, off-diagonals -1, exact solution of all ones).  This module builds
// that matrix so the solver can be exercised on the real benchmark problem
// as well as the paper's tridiagonal reduction of it.
#pragma once

#include <vector>

#include "core/jacc.hpp"

namespace jaccx::cg {

using jacc::index_t;
using darray = jacc::array<double>;
using iarray = jacc::array<index_t>;

/// Host-side CSR matrix (rows x rows, square).
struct csr_host {
  index_t rows = 0;
  std::vector<index_t> row_ptr; // rows + 1
  std::vector<index_t> col_idx; // nnz
  std::vector<double> values;   // nnz

  index_t nnz() const { return static_cast<index_t>(values.size()); }

  /// y = A x on the host (reference for tests).
  void apply_host(const double* x, double* y) const;

  /// b = A * ones (the HPCCG right-hand side convention).
  std::vector<double> rhs_for_ones() const;
};

/// HPCCG's 27-point operator on an nx x ny x nz grid: value 27 on the
/// diagonal, -1 for every structural neighbour (including diagonals of the
/// 3x3x3 cube), clipped at the boundary.
csr_host make_hpccg_27pt(index_t nx, index_t ny, index_t nz);

/// The paper's tridiagonal matrix in CSR form (for cross-validation against
/// the specialized tridiag path).
csr_host make_tridiag_csr(index_t n, double diag = 4.0, double off = 1.0);

/// CSR SpMV kernel in the paper's style: one row per index.
inline void csr_spmv_kernel(index_t i, const iarray& row_ptr,
                            const iarray& col_idx, const darray& values,
                            const darray& x, darray& y) {
  double acc = 0.0;
  const index_t begin = row_ptr[i];
  const index_t end = row_ptr[i + 1];
  for (index_t k = begin; k < end; ++k) {
    acc += static_cast<double>(values[k]) *
           static_cast<double>(x[col_idx[k]]);
  }
  y[i] = acc;
}

/// Device-resident CSR system bound to the current JACC backend.
struct csr_system {
  iarray row_ptr;
  iarray col_idx;
  darray values;
  index_t rows = 0;
  double avg_row_nnz = 0.0;

  explicit csr_system(const csr_host& h)
      : row_ptr(h.row_ptr.data(), static_cast<index_t>(h.row_ptr.size())),
        col_idx(h.col_idx.data(), static_cast<index_t>(h.col_idx.size())),
        values(h.values), rows(h.rows),
        avg_row_nnz(h.rows > 0 ? static_cast<double>(h.nnz()) /
                                     static_cast<double>(h.rows)
                               : 0.0) {}

  /// y = A x through the JACC front end.
  void apply(const darray& x, darray& y) const {
    jacc::parallel_for(
        jacc::hints{.name = "jacc.csr_spmv",
                    .flops_per_index = 2.0 * avg_row_nnz,
                    .bytes_per_index = 20.0 * avg_row_nnz + 24.0},
        rows, csr_spmv_kernel, row_ptr, col_idx, values, x, y);
  }
};

} // namespace jaccx::cg
