// Plain unpreconditioned conjugate gradient over the JACC front end
// (paper Sec. V-C, Fig. 12) — the HPCCG / MiniFE solve.
//
// Two entry points:
//   * cg_solve       — the mathematically correct solver (converges; used by
//                      tests and examples), built entirely from JACC
//                      constructs: a matvec parallel_for, dot
//                      parallel_reduces, and axpy/xpay parallel_fors.
//   * paper_iteration — performs exactly the per-iteration operation
//                      sequence of the paper's Fig. 12 listing (1 matvec,
//                      4 dots, 3 axpy-type updates, 2 copies), which is what
//                      Fig. 13 times.  Kept separate because the listing's
//                      algebra has typos (see tridiag.hpp) but its *cost
//                      structure* is what must be reproduced.
#pragma once

#include "blas/kernels.hpp"
#include "cg/csr.hpp"
#include "cg/tridiag.hpp"

namespace jaccx::cg {

struct cg_options {
  int max_iterations = 500;
  double tolerance = 1e-10; ///< on ||r|| / ||b||
};

struct cg_result {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// Solves A x = b for the specialized tridiagonal system.  x holds the
/// initial guess on entry and the solution on exit.
cg_result cg_solve(const tridiag_system& A, const darray& b, darray& x,
                   const cg_options& opts = {});

/// Solves A x = b for a CSR system.
cg_result cg_solve(const csr_system& A, const darray& b, darray& x,
                   const cg_options& opts = {});

/// Pipelined cg_solve: kernels ride a compute queue while every dot product
/// is a non-blocking jacc::future on a second queue, so the reduction +
/// scalar D2H that Fig. 13 shows trailing each iteration overlaps the next
/// independent kernel (the x update runs under the rr dot's rounds).
/// Iterates are bit-identical to cg_solve on the simulated back ends (same
/// operation order on the data; only the charge structure differs); on
/// real back ends the host genuinely overlaps lane work.
cg_result cg_solve_pipelined(const tridiag_system& A, const darray& b,
                             darray& x, const cg_options& opts = {});
cg_result cg_solve_pipelined(const csr_system& A, const darray& b, darray& x,
                             const cg_options& opts = {});

/// Graph-replay cg_solve: one iteration (matvec, two dots, the scalar
/// plumbing as future::then host nodes, three vector updates) is captured
/// into a jacc::graph once, then replayed to convergence — per iteration
/// the front end does no dispatch, capture-policy, or hint-resolution work
/// at all.  The operation sequence on the data is exactly cg_solve's, so
/// iterates are bit-identical on the serial and simulated back ends (and on
/// threads with one lane); across threads async lanes the dots run on a
/// narrower pool, giving the same association-order caveat as
/// cg_solve_pipelined.
cg_result cg_solve_graphed(const tridiag_system& A, const darray& b,
                           darray& x, const cg_options& opts = {});
cg_result cg_solve_graphed(const csr_system& A, const darray& b, darray& x,
                           const cg_options& opts = {});

/// Working set for paper_iteration, initialized per the paper's listing
/// (r = p = 0.5, s = x = r_old = r_aux = 0).
struct paper_state {
  tridiag_system A;
  darray r, p, s, x, r_old, r_aux;

  explicit paper_state(index_t n);
};

/// One iteration with the Fig. 12 operation sequence (see header comment).
void paper_iteration(paper_state& st);

} // namespace jaccx::cg
