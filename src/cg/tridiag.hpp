// Tridiagonal system support for the conjugate-gradient study (paper
// Sec. V-C, Fig. 12).
//
// The paper generates a diagonally dominant tridiagonal sparse matrix "as
// the one used in the MiniFE application and the HPCCG benchmark" and runs
// plain unpreconditioned CG on it.  (The listing in Fig. 12 contains two
// typos — the interior matvec row reuses a1 and the loop condition is
// inverted; the kernels here implement the intended mathematics, and
// EXPERIMENTS.md notes the deviation.)
#pragma once

#include "core/jacc.hpp"

namespace jaccx::cg {

using jacc::index_t;
using darray = jacc::array<double>;

/// y[i] = sub[i]*x[i-1] + diag[i]*x[i] + super[i]*x[i+1], ends clipped.
/// Kernel in the paper's style: loop index first, then parameters.
inline void tridiag_matvec_kernel(index_t i, const darray& sub,
                                  const darray& diag, const darray& super,
                                  const darray& x, darray& y, index_t n) {
  if (i == 0) {
    y[i] = static_cast<double>(diag[i]) * static_cast<double>(x[i]) +
           static_cast<double>(super[i]) * static_cast<double>(x[i + 1]);
  } else if (i == n - 1) {
    y[i] = static_cast<double>(sub[i]) * static_cast<double>(x[i - 1]) +
           static_cast<double>(diag[i]) * static_cast<double>(x[i]);
  } else {
    y[i] = static_cast<double>(sub[i]) * static_cast<double>(x[i - 1]) +
           static_cast<double>(diag[i]) * static_cast<double>(x[i]) +
           static_cast<double>(super[i]) * static_cast<double>(x[i + 1]);
  }
}

/// dst[i] = src[i]  (the r_old = copy(r) steps of Fig. 12)
inline void copy_kernel(index_t i, const darray& src, darray& dst) {
  dst[i] = static_cast<double>(src[i]);
}

/// p[i] = r[i] + beta * p[i]  (the search-direction update)
inline void xpay_kernel(index_t i, double beta, const darray& r, darray& p) {
  p[i] = static_cast<double>(r[i]) + beta * static_cast<double>(p[i]);
}

/// The paper's test matrix: symmetric positive definite tridiagonal with
/// diagonal 4 and off-diagonals 1 (diagonally dominant).  Arrays are built
/// under the current JACC backend.
struct tridiag_system {
  darray sub;   ///< sub[0] is unused
  darray diag;
  darray super; ///< super[n-1] is unused
  index_t n = 0;

  explicit tridiag_system(index_t size)
      : sub(size), diag(size), super(size), n(size) {
    JACCX_ASSERT(size >= 2);
    double* lo = sub.host_data();
    double* di = diag.host_data();
    double* hi = super.host_data();
    for (index_t i = 0; i < size; ++i) {
      lo[i] = 1.0;
      di[i] = 4.0;
      hi[i] = 1.0;
    }
  }

  /// y = A x through the JACC front end.
  void apply(const darray& x, darray& y) const {
    jacc::parallel_for(
        jacc::hints{.name = "jacc.tridiag_matvec", .flops_per_index = 5.0,
                    .bytes_per_index = 48.0},
        n,
        tridiag_matvec_kernel, sub, diag, super, x, y, n);
  }
};

} // namespace jaccx::cg
