// Device-specific CG iteration comparators for the Fig. 13 benchmark: same
// operation sequence as cg::paper_iteration, written against the native
// layers instead of the JACC front end.
#pragma once

#include "blas/native_gpu.hpp"
#include "cg/tridiag.hpp"

namespace jaccx::cg {

/// Working set on one simulated device (tridiagonal system + CG vectors).
struct native_workset {
  sim::device_span<double> sub, diag, super;
  sim::device_span<double> r, p, s, x, r_old, r_aux;
  index_t n = 0;
};

/// One Fig. 12 iteration on the simulated Rome CPU (Base.Threads model).
void rome_iteration(sim::device& dev, const native_workset& st);

namespace detail {

/// y = A x as one fine-grained native kernel.
template <class Api>
void gpu_tridiag_matvec(const native_workset& st,
                        sim::device_span<double> x,
                        sim::device_span<double> y) {
  const std::int64_t maxt = Api::max_threads();
  const index_t n = st.n;
  const std::int64_t threads = n < maxt ? n : maxt;
  auto sub = st.sub;
  auto diag = st.diag;
  auto super = st.super;
  Api::launch1d(
      sim::ceil_div(n, threads), threads,
      [=](sim::kernel_ctx& ctx) {
        const index_t i = ctx.global_x();
        if (i >= n) {
          return;
        }
        if (i == 0) {
          y[i] = static_cast<double>(diag[i]) * static_cast<double>(x[i]) +
                 static_cast<double>(super[i]) * static_cast<double>(x[i + 1]);
        } else if (i == n - 1) {
          y[i] = static_cast<double>(sub[i]) * static_cast<double>(x[i - 1]) +
                 static_cast<double>(diag[i]) * static_cast<double>(x[i]);
        } else {
          y[i] = static_cast<double>(sub[i]) * static_cast<double>(x[i - 1]) +
                 static_cast<double>(diag[i]) * static_cast<double>(x[i]) +
                 static_cast<double>(super[i]) * static_cast<double>(x[i + 1]);
        }
      },
      "native.tridiag_matvec", 5.0);
}

/// dst = src as one fine-grained native kernel.
template <class Api>
void gpu_copy(index_t n, sim::device_span<double> src,
              sim::device_span<double> dst) {
  const std::int64_t maxt = Api::max_threads();
  const std::int64_t threads = n < maxt ? n : maxt;
  Api::launch1d(
      sim::ceil_div(n, threads), threads,
      [=](sim::kernel_ctx& ctx) {
        const index_t i = ctx.global_x();
        if (i < n) {
          dst[i] = static_cast<double>(src[i]);
        }
      },
      "native.copy");
}

} // namespace detail

/// One Fig. 12 iteration on a simulated GPU via the vendor wrapper: the
/// matvec/copies are fine-grained kernels, the dots are the hand-written
/// two-kernel reduction of Fig. 3, the axpys the fine-grained native AXPY.
template <class Api>
void native_gpu_iteration(const native_workset& st) {
  const index_t n = st.n;
  detail::gpu_copy<Api>(n, st.r, st.r_old);
  detail::gpu_tridiag_matvec<Api>(st, st.p, st.s);
  const double alpha0 = blas::native_gpu_dot<Api>(n, st.r, st.r);
  const double alpha1 = blas::native_gpu_dot<Api>(n, st.p, st.s);
  const double alpha = alpha0 / alpha1;
  blas::native_gpu_axpy<Api>(n, -alpha, st.r, st.s);
  blas::native_gpu_axpy<Api>(n, alpha, st.x, st.p);
  const double beta0 = blas::native_gpu_dot<Api>(n, st.r, st.r);
  const double beta1 = blas::native_gpu_dot<Api>(n, st.r_old, st.r_old);
  const double beta = beta0 / beta1;
  detail::gpu_copy<Api>(n, st.r, st.r_aux);
  blas::native_gpu_axpy<Api>(n, beta, st.r_aux, st.p);
  detail::gpu_copy<Api>(n, st.r_aux, st.p);
  const double cond = blas::native_gpu_dot<Api>(n, st.r, st.r);
  static_cast<void>(cond);
}

} // namespace jaccx::cg
