#include "cg/solver.hpp"

#include <cmath>
#include <memory>

namespace jaccx::cg {
namespace {

/// The shared CG loop; Apply is `void(const darray& in, darray& out)`.
template <class Apply>
cg_result cg_loop(index_t n, const Apply& apply, const darray& b, darray& x,
                  const cg_options& opts) {
  // Iteration scratch is fully overwritten before its first read (s by
  // apply, r by cg.residual, p by cg.copy), so skip the zero fill; under
  // JACC_MEM_POOL=bucket the storage itself is recycled across solves.
  darray r(jacc::uninit, n);
  darray p(jacc::uninit, n);
  darray s(jacc::uninit, n);

  // r = b - A x;  p = r.  Under JACC_FUSE=expr|all the residual and the
  // copy share one sweep (the copy reads the residual just stored at the
  // same index — identical dataflow to the back-to-back kernels), and
  // every dot reduces through the expression layer without a workspace
  // pass over double-counted operands (docs/FUSION.md).
  apply(x, s);
  if (jacc::fuse_expr()) {
    jacc::eval("cg.setup", n, jacc::assign(r, jacc::ex(b) - jacc::ex(s)),
               jacc::assign(p, jacc::ex(r)));
  } else {
    jacc::parallel_for(
        jacc::hints{.name = "cg.residual", .flops_per_index = 2.0,
                    .bytes_per_index = 24.0},
        n,
        [](index_t i, const darray& b_, const darray& s_, darray& r_) {
          r_[i] = static_cast<double>(b_[i]) - static_cast<double>(s_[i]);
        },
        b, s, r);
    jacc::parallel_for(jacc::hints{.name = "cg.copy", .bytes_per_index = 16.0},
                       n, copy_kernel, r, p);
  }

  const double bb =
      jacc::fuse_expr()
          ? jacc::dot("cg.dot", n, jacc::ex(b), jacc::ex(b))
          : jacc::parallel_reduce(
                jacc::hints{.name = "cg.dot", .flops_per_index = 2.0,
                            .bytes_per_index = 16.0},
                n, blas::dot, b, b);
  if (bb == 0.0) {
    // b = 0: x = 0 is exact.
    jacc::parallel_for(
        jacc::hints{.name = "cg.zero", .bytes_per_index = 8.0}, n,
        [](index_t i, darray& x_) { x_[i] = 0.0; }, x);
    return {0, 0.0, true};
  }

  double rr = jacc::fuse_expr()
                  ? jacc::dot("cg.dot", n, jacc::ex(r), jacc::ex(r))
                  : jacc::parallel_reduce(
                        jacc::hints{.name = "cg.dot", .flops_per_index = 2.0,
                                    .bytes_per_index = 16.0},
                        n, blas::dot, r, r);
  const double stop = opts.tolerance * opts.tolerance * bb;

  cg_result out;
  while (out.iterations < opts.max_iterations && rr > stop) {
    apply(p, s);
    if (jacc::fuse_expr()) {
      // x += alpha p; r -= alpha s; rr = r . r — three eager sweeps (24 +
      // 24 + 16 B/index) collapse into one 48 B/index launch whose dot
      // term reads the post-update r, exactly as the unfused sequence
      // does.  Statement order and expression shapes match the eager
      // kernels, so iterates are bit-identical.
      const double ps = jacc::dot("cg.dot", n, jacc::ex(p), jacc::ex(s));
      const double alpha = rr / ps;
      const double rr_new = jacc::eval_dot(
          "cg.fused_update", n, jacc::ex(r), jacc::ex(r),
          jacc::assign(x, jacc::ex(x) + alpha * jacc::ex(p)),
          jacc::assign(r, jacc::ex(r) + (-alpha) * jacc::ex(s)));
      const double beta = rr_new / rr;
      jacc::eval("cg.xpay", n,
                 jacc::assign(p, jacc::ex(r) + beta * jacc::ex(p)));
      rr = rr_new;
      ++out.iterations;
      continue;
    }
    const double ps = jacc::parallel_reduce(
        jacc::hints{.name = "cg.dot", .flops_per_index = 2.0,
                    .bytes_per_index = 16.0},
        n, blas::dot, p, s);
    const double alpha = rr / ps;
    jacc::parallel_for(jacc::hints{.name = "cg.axpy", .flops_per_index = 2.0,
                                   .bytes_per_index = 24.0},
                       n, blas::axpy, alpha, x, p);
    jacc::parallel_for(jacc::hints{.name = "cg.axpy", .flops_per_index = 2.0,
                                   .bytes_per_index = 24.0},
                       n, blas::axpy, -alpha, r, s);
    const double rr_new = jacc::parallel_reduce(
        jacc::hints{.name = "cg.dot", .flops_per_index = 2.0,
                    .bytes_per_index = 16.0},
        n, blas::dot, r, r);
    const double beta = rr_new / rr;
    jacc::parallel_for(jacc::hints{.name = "cg.xpay", .flops_per_index = 2.0,
                                   .bytes_per_index = 24.0},
                       n, xpay_kernel, beta, r, p);
    rr = rr_new;
    ++out.iterations;
  }
  out.relative_residual = std::sqrt(rr / bb);
  out.converged = rr <= stop;
  return out;
}

/// The pipelined loop: `qc` carries the kernels, `qd` the dots.  Work edges
/// are explicit — qd.wait(qc.record()) before a dot that reads what qc just
/// wrote, qc.wait(future) before a kernel whose scalar depends on a dot —
/// and everything between the edges overlaps.
template <class Apply>
cg_result cg_loop_pipelined(index_t n, const Apply& apply, const darray& b,
                            darray& x, const cg_options& opts) {
  jacc::queue qc("cg.compute");
  jacc::queue qd("cg.dot");
  const jacc::hints dot_h{.name = "cg.dot", .flops_per_index = 2.0,
                          .bytes_per_index = 16.0};
  const jacc::hints axpy_h{.name = "cg.axpy", .flops_per_index = 2.0,
                           .bytes_per_index = 24.0};

  darray r(jacc::uninit, n);
  darray p(jacc::uninit, n);
  darray s(jacc::uninit, n);

  {
    const jacc::queue_scope in(qc);
    apply(x, s);
    jacc::parallel_for(
        jacc::hints{.name = "cg.residual", .flops_per_index = 2.0,
                    .bytes_per_index = 24.0},
        n,
        [](index_t i, const darray& b_, const darray& s_, darray& r_) {
          r_[i] = static_cast<double>(b_[i]) - static_cast<double>(s_[i]);
        },
        b, s, r);
    jacc::parallel_for(jacc::hints{.name = "cg.copy", .bytes_per_index = 16.0},
                       n, copy_kernel, r, p);
  }

  // b . b is independent of the setup kernels; r . r must follow them.
  auto f_bb = qd.parallel_reduce(dot_h, n, blas::dot, b, b);
  qd.wait(qc.record());
  auto f_rr = qd.parallel_reduce(dot_h, n, blas::dot, r, r);
  const double bb = f_bb.get();
  if (bb == 0.0) {
    qc.synchronize();
    qd.synchronize();
    jacc::parallel_for(
        jacc::hints{.name = "cg.zero", .bytes_per_index = 8.0}, n,
        [](index_t i, darray& x_) { x_[i] = 0.0; }, x);
    return {0, 0.0, true};
  }
  double rr = f_rr.get();
  const double stop = opts.tolerance * opts.tolerance * bb;

  cg_result out;
  while (out.iterations < opts.max_iterations && rr > stop) {
    {
      const jacc::queue_scope in(qc);
      apply(p, s);
    }
    qd.wait(qc.record()); // p . s reads the fresh s
    auto f_ps = qd.parallel_reduce(dot_h, n, blas::dot, p, s);
    const double alpha = rr / f_ps.get();
    qc.wait(f_ps); // the updates' scalar depends on the dot
    {
      // Residual update first so the rr dot can start; the independent x
      // update then runs under it.  (cg_loop orders the axpys the other
      // way; they touch disjoint vectors, so iterates are identical.)
      const jacc::queue_scope in(qc);
      jacc::parallel_for(axpy_h, n, blas::axpy, -alpha, r, s);
    }
    qd.wait(qc.record()); // r . r reads the fresh r
    auto f_rrn = qd.parallel_reduce(dot_h, n, blas::dot, r, r);
    {
      const jacc::queue_scope in(qc);
      jacc::parallel_for(axpy_h, n, blas::axpy, alpha, x, p);
    }
    const double rr_new = f_rrn.get();
    qc.wait(f_rrn); // beta dependency
    {
      const jacc::queue_scope in(qc);
      jacc::parallel_for(jacc::hints{.name = "cg.xpay",
                                     .flops_per_index = 2.0,
                                     .bytes_per_index = 24.0},
                         n, xpay_kernel, rr_new / rr, r, p);
    }
    rr = rr_new;
    ++out.iterations;
  }
  qc.synchronize();
  qd.synchronize();
  out.relative_residual = std::sqrt(rr / bb);
  out.converged = rr <= stop;
  return out;
}

/// The graph-replay loop.  Setup (residual, p, bb, rr) is the sync model,
/// identical to cg_loop; then ONE iteration is captured — with the
/// alpha/beta plumbing recorded as future::then host nodes writing
/// scalar_bindings the kernels read — and replayed to convergence.  The
/// per-iteration operation order on the data is exactly cg_loop's
/// (matvec, ps dot, x axpy, r axpy, rr dot, p xpay), so iterates match
/// bit for bit wherever the reduction tree matches.
template <class Apply>
cg_result cg_loop_graphed(index_t n, const Apply& apply, const darray& b,
                          darray& x, const cg_options& opts) {
  darray r(jacc::uninit, n);
  darray p(jacc::uninit, n);
  darray s(jacc::uninit, n);

  apply(x, s);
  jacc::parallel_for(
      jacc::hints{.name = "cg.residual", .flops_per_index = 2.0,
                  .bytes_per_index = 24.0},
      n,
      [](index_t i, const darray& b_, const darray& s_, darray& r_) {
        r_[i] = static_cast<double>(b_[i]) - static_cast<double>(s_[i]);
      },
      b, s, r);
  jacc::parallel_for(jacc::hints{.name = "cg.copy", .bytes_per_index = 16.0},
                     n, copy_kernel, r, p);

  const jacc::hints dot_h{.name = "cg.dot", .flops_per_index = 2.0,
                          .bytes_per_index = 16.0};
  // elementwise: the captured axpy/xpay launches are graph-fuser
  // candidates — under JACC_FUSE=graph|all the adjacent x/r updates
  // replay as one fused node.
  const jacc::hints axpy_h{.name = "cg.axpy", .flops_per_index = 2.0,
                           .bytes_per_index = 24.0, .elementwise = true};
  const double bb = jacc::parallel_reduce(dot_h, n, blas::dot, b, b);
  if (bb == 0.0) {
    jacc::parallel_for(
        jacc::hints{.name = "cg.zero", .bytes_per_index = 8.0}, n,
        [](index_t i, darray& x_) { x_[i] = 0.0; }, x);
    return {0, 0.0, true};
  }
  double rr = jacc::parallel_reduce(dot_h, n, blas::dot, r, r);
  const double stop = opts.tolerance * opts.tolerance * bb;

  // Capture one iteration.  The kernels read alpha/beta through
  // scalar_bindings that the dots' then-callbacks write, so a replay is
  // fully self-contained: no host round-trip inside the iteration, one
  // *rr_cell read per convergence check after synchronize.
  jacc::queue q("cg.graph");
  const jacc::scalar_binding<double> alpha(0.0);
  const jacc::scalar_binding<double> neg_alpha(0.0);
  const jacc::scalar_binding<double> beta(0.0);
  auto rr_cell = std::make_shared<double>(rr);

  q.begin_capture();
  {
    const jacc::queue_scope in(q);
    apply(p, s);
  }
  auto f_ps = q.parallel_reduce(dot_h, n, blas::dot, p, s);
  f_ps.then(q, [alpha, neg_alpha, rr_cell](double ps) {
    const double a = *rr_cell / ps;
    alpha.set(a);
    neg_alpha.set(-a);
  });
  {
    const jacc::queue_scope in(q);
    jacc::parallel_for(axpy_h, n, blas::axpy, alpha, x, p);
    jacc::parallel_for(axpy_h, n, blas::axpy, neg_alpha, r, s);
  }
  auto f_rr = q.parallel_reduce(dot_h, n, blas::dot, r, r);
  f_rr.then(q, [beta, rr_cell](double rr_new) {
    beta.set(rr_new / *rr_cell);
    *rr_cell = rr_new;
  });
  {
    const jacc::queue_scope in(q);
    jacc::parallel_for(jacc::hints{.name = "cg.xpay", .flops_per_index = 2.0,
                                   .bytes_per_index = 24.0,
                                   .elementwise = true},
                       n, xpay_kernel, beta, r, p);
  }
  jacc::graph g = q.end_capture();

  cg_result out;
  while (out.iterations < opts.max_iterations && rr > stop) {
    g.launch(q);
    q.synchronize();
    rr = *rr_cell;
    ++out.iterations;
  }
  out.relative_residual = std::sqrt(rr / bb);
  out.converged = rr <= stop;
  return out;
}

} // namespace

cg_result cg_solve(const tridiag_system& A, const darray& b, darray& x,
                   const cg_options& opts) {
  JACCX_ASSERT(b.size() == A.n && x.size() == A.n);
  return cg_loop(
      A.n, [&](const darray& in, darray& out) { A.apply(in, out); }, b, x,
      opts);
}

cg_result cg_solve(const csr_system& A, const darray& b, darray& x,
                   const cg_options& opts) {
  JACCX_ASSERT(b.size() == A.rows && x.size() == A.rows);
  return cg_loop(
      A.rows, [&](const darray& in, darray& out) { A.apply(in, out); }, b, x,
      opts);
}

cg_result cg_solve_pipelined(const tridiag_system& A, const darray& b,
                             darray& x, const cg_options& opts) {
  JACCX_ASSERT(b.size() == A.n && x.size() == A.n);
  return cg_loop_pipelined(
      A.n, [&](const darray& in, darray& out) { A.apply(in, out); }, b, x,
      opts);
}

cg_result cg_solve_pipelined(const csr_system& A, const darray& b, darray& x,
                             const cg_options& opts) {
  JACCX_ASSERT(b.size() == A.rows && x.size() == A.rows);
  return cg_loop_pipelined(
      A.rows, [&](const darray& in, darray& out) { A.apply(in, out); }, b, x,
      opts);
}

cg_result cg_solve_graphed(const tridiag_system& A, const darray& b,
                           darray& x, const cg_options& opts) {
  JACCX_ASSERT(b.size() == A.n && x.size() == A.n);
  return cg_loop_graphed(
      A.n, [&](const darray& in, darray& out) { A.apply(in, out); }, b, x,
      opts);
}

cg_result cg_solve_graphed(const csr_system& A, const darray& b, darray& x,
                           const cg_options& opts) {
  JACCX_ASSERT(b.size() == A.rows && x.size() == A.rows);
  return cg_loop_graphed(
      A.rows, [&](const darray& in, darray& out) { A.apply(in, out); }, b, x,
      opts);
}

paper_state::paper_state(index_t n)
    : A(n), r(n), p(n), s(n), x(n), r_old(n), r_aux(n) {
  double* rh = r.host_data();
  double* ph = p.host_data();
  for (index_t i = 0; i < n; ++i) {
    rh[i] = 0.5;
    ph[i] = 0.5;
  }
}

void paper_iteration(paper_state& st) {
  // One Fig. 12 iteration shows up as a single nesting region in traces,
  // bracketing its 1 matvec + 5 dots + 3 axpys + 3 copies.
  const jaccx::prof::scoped_region prof_region("cg.iteration");
  const index_t n = st.A.n;
  const jacc::hints dot_h{.name = "cg.dot", .flops_per_index = 2.0,
                          .bytes_per_index = 16.0};
  const jacc::hints axpy_h{.name = "cg.axpy", .flops_per_index = 2.0,
                           .bytes_per_index = 24.0};

  if (jacc::fuse_expr()) {
    // The same 12 operations regrouped into 5 launches.  Each group keeps
    // the eager per-index statement order, every expression mirrors its
    // eager kernel's arithmetic shape, and r . r never straddles a matvec
    // it depends on — so the iterates are bit-identical to the unfused
    // listing.  BLAS-chain hint bytes drop from 200 to 120 per index.
    // r_old = copy(r), fused with the alpha numerator r . r (legal before
    // the matvec: neither reads s).
    const double alpha0 = jacc::eval_dot("cg.fused_copy_dot", n,
                                         jacc::ex(st.r), jacc::ex(st.r),
                                         jacc::assign(st.r_old, jacc::ex(st.r)));
    // s = A p
    st.A.apply(st.p, st.s);
    const double alpha1 = jacc::dot("cg.dot", n, jacc::ex(st.p), jacc::ex(st.s));
    const double alpha = alpha0 / alpha1;
    // r -= alpha s ; x += alpha p ; beta numerator reads the fresh r.
    const double beta0 = jacc::eval_dot(
        "cg.fused_update_dot", n, jacc::ex(st.r), jacc::ex(st.r),
        jacc::assign(st.r, jacc::ex(st.r) + (-alpha) * jacc::ex(st.s)),
        jacc::assign(st.x, jacc::ex(st.x) + alpha * jacc::ex(st.p)));
    // beta denominator: r_old holds bitwise the r the alpha numerator
    // reduced, and the flat reduction order is identical, so the group-1
    // result IS dot(r_old, r_old) — no extra sweep.
    const double beta1 = alpha0;
    const double beta = beta0 / beta1;
    // r_aux = r + beta p ; p = r_aux ; cond = r . r — the first statement
    // reads the old p at each index before the second overwrites it.
    const double cond = jacc::eval_dot(
        "cg.fused_pupdate_dot", n, jacc::ex(st.r), jacc::ex(st.r),
        jacc::assign(st.r_aux, jacc::ex(st.r) + beta * jacc::ex(st.p)),
        jacc::assign(st.p, jacc::ex(st.r_aux)));
    static_cast<void>(cond);
    return;
  }

  // r_old = copy(r)
  jacc::parallel_for(jacc::hints{.name = "cg.copy", .bytes_per_index = 16.0},
                     n, copy_kernel, st.r, st.r_old);
  // s = A p
  st.A.apply(st.p, st.s);
  // alpha = (r . r) / (p . s)
  const double alpha0 = jacc::parallel_reduce(dot_h, n, blas::dot, st.r, st.r);
  const double alpha1 = jacc::parallel_reduce(dot_h, n, blas::dot, st.p, st.s);
  const double alpha = alpha0 / alpha1;
  // r -= alpha s ; x += alpha p
  jacc::parallel_for(axpy_h, n, blas::axpy, -alpha, st.r, st.s);
  jacc::parallel_for(axpy_h, n, blas::axpy, alpha, st.x, st.p);
  // beta = (r . r) / (r_old . r_old)
  const double beta0 = jacc::parallel_reduce(dot_h, n, blas::dot, st.r, st.r);
  const double beta1 =
      jacc::parallel_reduce(dot_h, n, blas::dot, st.r_old, st.r_old);
  const double beta = beta0 / beta1;
  // r_aux = copy(r) ; r_aux += beta p ; p = copy(r_aux) ; cond = r . r
  // (the listing's exact sequence: 1 matvec, 5 dots, 3 axpys, 3 copies)
  jacc::parallel_for(jacc::hints{.name = "cg.copy", .bytes_per_index = 16.0},
                     n, copy_kernel, st.r, st.r_aux);
  jacc::parallel_for(axpy_h, n, blas::axpy, beta, st.r_aux, st.p);
  jacc::parallel_for(jacc::hints{.name = "cg.copy", .bytes_per_index = 16.0},
                     n, copy_kernel, st.r_aux, st.p);
  const double cond = jacc::parallel_reduce(dot_h, n, blas::dot, st.r, st.r);
  static_cast<void>(cond);
}

} // namespace jaccx::cg
