#include "cg/csr.hpp"

namespace jaccx::cg {

void csr_host::apply_host(const double* x, double* y) const {
  for (index_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (index_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i + 1)]; ++k) {
      acc += values[static_cast<std::size_t>(k)] *
             x[col_idx[static_cast<std::size_t>(k)]];
    }
    y[i] = acc;
  }
}

std::vector<double> csr_host::rhs_for_ones() const {
  std::vector<double> ones(static_cast<std::size_t>(rows), 1.0);
  std::vector<double> b(static_cast<std::size_t>(rows), 0.0);
  apply_host(ones.data(), b.data());
  return b;
}

csr_host make_hpccg_27pt(index_t nx, index_t ny, index_t nz) {
  JACCX_ASSERT(nx > 0 && ny > 0 && nz > 0);
  csr_host m;
  m.rows = nx * ny * nz;
  m.row_ptr.reserve(static_cast<std::size_t>(m.rows) + 1);
  m.row_ptr.push_back(0);
  m.col_idx.reserve(static_cast<std::size_t>(m.rows) * 27);
  m.values.reserve(static_cast<std::size_t>(m.rows) * 27);

  const auto node = [&](index_t ix, index_t iy, index_t iz) {
    return ix + nx * (iy + ny * iz);
  };

  for (index_t iz = 0; iz < nz; ++iz) {
    for (index_t iy = 0; iy < ny; ++iy) {
      for (index_t ix = 0; ix < nx; ++ix) {
        const index_t row = node(ix, iy, iz);
        for (index_t dz = -1; dz <= 1; ++dz) {
          for (index_t dy = -1; dy <= 1; ++dy) {
            for (index_t dx = -1; dx <= 1; ++dx) {
              const index_t jx = ix + dx;
              const index_t jy = iy + dy;
              const index_t jz = iz + dz;
              if (jx < 0 || jx >= nx || jy < 0 || jy >= ny || jz < 0 ||
                  jz >= nz) {
                continue;
              }
              const index_t col = node(jx, jy, jz);
              m.col_idx.push_back(col);
              m.values.push_back(col == row ? 27.0 : -1.0);
            }
          }
        }
        m.row_ptr.push_back(static_cast<index_t>(m.col_idx.size()));
      }
    }
  }
  return m;
}

csr_host make_tridiag_csr(index_t n, double diag, double off) {
  JACCX_ASSERT(n >= 2);
  csr_host m;
  m.rows = n;
  m.row_ptr.reserve(static_cast<std::size_t>(n) + 1);
  m.row_ptr.push_back(0);
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) {
      m.col_idx.push_back(i - 1);
      m.values.push_back(off);
    }
    m.col_idx.push_back(i);
    m.values.push_back(diag);
    if (i + 1 < n) {
      m.col_idx.push_back(i + 1);
      m.values.push_back(off);
    }
    m.row_ptr.push_back(static_cast<index_t>(m.col_idx.size()));
  }
  return m;
}

} // namespace jaccx::cg
