#include "core/queue.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/queue_impl.hpp"
#include "prof/prof.hpp"
#include "sim/device.hpp"
#include "sim/stream.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "threadpool/thread_pool.hpp"

namespace jacc {
namespace detail {

namespace {
thread_local queue* t_active = nullptr;
} // namespace

namespace {

struct lane_task {
  std::function<void(jaccx::pool::thread_pool*)> fn;
  std::shared_ptr<event_state> done;
  std::shared_ptr<queue_impl> owner;
  std::uint64_t flow = 0; ///< prof flow id; 0 when profiling was off at submit
};

/// One async lane: a dispatcher thread draining an in-order task deque into
/// a private slice of the worker budget.  Queues pin to a lane round-robin,
/// so two queues on different lanes genuinely overlap while work within a
/// queue keeps submission order.
struct lane {
  lane(int index, unsigned width)
      : pool(std::make_unique<jaccx::pool::thread_pool>(
            width, "queue.lane" + std::to_string(index))) {
    dispatcher = std::thread([this, index] { loop(index); });
  }
  ~lane() {
    {
      const std::lock_guard lock(mu);
      stop = true;
    }
    cv.notify_all();
    dispatcher.join();
  }

  /// Blocks until every submitted task has finished (deque empty, nothing
  /// in flight).  finalize() calls this before tearing a lane down, so the
  /// destructor never has live work to run — a task executed during static
  /// destruction could dispatch nested sync work into the default pool
  /// while that pool is itself draining.
  void quiesce() {
    std::unique_lock lock(mu);
    cv.wait(lock, [this] { return tasks.empty() && !running; });
  }

  void loop(int index) {
    bool labeled = false;
    for (;;) {
      lane_task t;
      bool discard;
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [this] { return stop || !tasks.empty(); });
        if (tasks.empty()) {
          return; // stop requested and drained
        }
        t = std::move(tasks.front());
        tasks.pop_front();
        // After stop the task's completion state is still honored, but its
        // body is not run: the only way tasks remain here is unsynchronized
        // static teardown, where the worker pools the body would use may
        // already be gone.
        discard = stop;
        running = !discard;
      }
      if (!discard) {
        if (!labeled && jaccx::prof::enabled()) [[unlikely]] {
          jaccx::prof::label_this_thread("queue.lane" + std::to_string(index) +
                                         ".dispatch");
          labeled = true;
        }
        // A task carries a flow id only when profiling was on at submit, so
        // the span and its flow-finish always have a matching flow-start.
        if (t.flow != 0 && jaccx::prof::enabled()) [[unlikely]] {
          const std::uint64_t t0 = jaccx::prof::now_ns();
          t.fn(pool.get());
          jaccx::prof::note_queue_task(t.owner->id, t.flow,
                                       static_cast<unsigned>(index), t0,
                                       jaccx::prof::now_ns());
        } else {
          t.fn(pool.get());
        }
      }
      t.done->mark_complete();
      {
        const std::lock_guard lock(t.owner->mu);
        --t.owner->pending;
      }
      t.owner->cv.notify_all();
      {
        const std::lock_guard lock(mu);
        running = false;
      }
      cv.notify_all();
    }
  }

  std::unique_ptr<jaccx::pool::thread_pool> pool;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<lane_task> tasks;
  bool stop = false;
  bool running = false; ///< a popped task's fn is executing
  std::thread dispatcher;
};

/// Lanes live in a function-local static so their dispatcher threads are
/// joined at static destruction, strictly before the default pool (which
/// ensure_lanes() constructs first) goes down.
struct lane_set {
  std::vector<std::unique_ptr<lane>> lanes;
};

lane_set& lanes() {
  static lane_set ls;
  return ls;
}

/// Registry of live queues (weak: a queue dies when its last handle does).
/// Leaked like the prof/mem state: queue destructors may run from static
/// teardown in arbitrary order.
struct queue_registry {
  std::mutex mu;
  std::vector<std::weak_ptr<queue_impl>> queues;
  std::uint64_t next_id = 1;

  /// Lane configuration.  `lanes_mu` guards resolution, the lane-set
  /// vector, and submission routing; `lane_epoch` is bumped every time the
  /// set is (re)built or torn down so a queue that pinned a lane under an
  /// older set re-resolves instead of indexing a rebuilt vector with a
  /// stale slot (the configuration can shrink across finalize/initialize).
  std::mutex lanes_mu;
  bool lanes_resolved = false;
  std::uint64_t lane_epoch = 0;
  int lane_count = 1;
  unsigned lane_width = 1;
  std::atomic<unsigned> next_lane{0};

  queue_registry() {
    jaccx::prof::register_queue_source([this] { return stats(); });
  }

  std::vector<std::shared_ptr<queue_impl>> live() {
    std::vector<std::shared_ptr<queue_impl>> out;
    const std::lock_guard lock(mu);
    for (auto it = queues.begin(); it != queues.end();) {
      if (auto qi = it->lock()) {
        out.push_back(std::move(qi));
        ++it;
      } else {
        it = queues.erase(it);
      }
    }
    return out;
  }

  std::vector<jaccx::prof::queue_stats> stats() {
    std::vector<jaccx::prof::queue_stats> out;
    for (const auto& qi : live()) {
      jaccx::prof::queue_stats s;
      s.id = qi->id;
      s.label = qi->id == 0     ? "default"
                : !qi->label.empty() ? qi->label
                                     : "q" + std::to_string(qi->id);
      s.launches = qi->launches.load(std::memory_order_relaxed);
      s.copies = qi->copies.load(std::memory_order_relaxed);
      s.async_tasks = qi->async_tasks.load(std::memory_order_relaxed);
      s.waits = qi->waits.load(std::memory_order_relaxed);
      s.syncs = qi->syncs.load(std::memory_order_relaxed);
      {
        const std::lock_guard lock(qi->mu);
        s.lane = qi->lane;
        for (const auto& [dev, stream] : qi->streams) {
          s.sim_us = std::max(s.sim_us, stream->now_us());
        }
      }
      if (s.launches + s.copies + s.waits + s.syncs + s.async_tasks != 0) {
        out.push_back(std::move(s));
      }
    }
    return out;
  }
};

queue_registry& reg() {
  static queue_registry* r = new queue_registry();
  return *r;
}

/// Resolves the lane configuration under r.lanes_mu (held by the caller).
/// The default pool is constructed first on purpose: the width split needs
/// it, and static-destruction order then tears the lanes down before the
/// pool they feed from.  Re-runs after quiesce_lanes() marked the
/// configuration unresolved, re-reading JACC_QUEUES.
void ensure_lanes_locked(queue_registry& r) {
  if (r.lanes_resolved) {
    return;
  }
  const unsigned width = jaccx::pool::default_pool().size();
  r.lane_count = resolve_queue_lanes(width);
  r.lane_width = std::max(1u, width / static_cast<unsigned>(r.lane_count));
  if (r.lane_count > 1) {
    auto& ls = lanes();
    ls.lanes.reserve(static_cast<std::size_t>(r.lane_count));
    for (int i = 0; i < r.lane_count; ++i) {
      ls.lanes.push_back(std::make_unique<lane>(i, r.lane_width));
    }
  }
  ++r.lane_epoch;
  r.lanes_resolved = true;
}

void ensure_lanes() {
  queue_registry& r = reg();
  const std::lock_guard lock(r.lanes_mu);
  ensure_lanes_locked(r);
}

} // namespace

queue* active_queue() { return t_active; }

jaccx::mem::queue_ctx alloc_ctx(jaccx::sim::device* dev) {
  jaccx::mem::queue_ctx c;
  queue* q = t_active;
  if (q != nullptr && !q->is_default()) {
    c.queue = q->id();
    if (dev != nullptr) {
      c.now_us = queue_stream(*q, *dev)->now_us();
    }
  } else if (dev != nullptr) {
    c.now_us = dev->tl().now_us();
  }
  return c;
}

jaccx::mem::queue_ctx release_ctx(jaccx::sim::device* dev) noexcept {
  jaccx::mem::queue_ctx c;
  queue* q = t_active;
  if (q != nullptr && !q->is_default()) {
    c.queue = q->id();
    if (dev != nullptr) {
      // Look up only — a queue that never charged this device has no
      // stream, and the release path must not construct one.
      queue_impl* qi = queue_access::impl(*q);
      const std::lock_guard lock(qi->mu);
      const auto it = qi->streams.find(dev);
      c.now_us = it != qi->streams.end() ? it->second->now_us()
                                         : dev->tl().now_us();
    }
  } else if (dev != nullptr) {
    c.now_us = dev->tl().now_us();
  }
  return c;
}

void note_pool_stall(jaccx::sim::device* dev, double ready_us) {
  if (dev == nullptr) {
    return;
  }
  // The pool handed out a block released on another queue: the consuming
  // clock (the active queue's stream, or the default timeline) cannot use
  // it before the release time — the implicit sync CUDA.jl's pool calls a
  // nonblocking synchronization of the releasing stream.
  jaccx::sim::timeline& tl = dev->active_tl();
  const double behind = ready_us - tl.now_us();
  if (behind > 0.0) {
    tl.record("mem.pool.wait", jaccx::sim::event_kind::kernel, behind);
  }
}

bool queue_is_async(const queue& q) {
  if (q.is_default()) {
    return false;
  }
  ensure_lanes();
  return reg().lane_count > 1;
}

void queue_submit(queue& q,
                  std::function<void(jaccx::pool::thread_pool*)> task,
                  std::shared_ptr<event_state> done) {
  queue_registry& r = reg();
  auto owner = queue_access::impl_ptr(q);
  done->queue_id = owner->id;
  std::uint64_t flow = 0;
  if (jaccx::prof::enabled()) [[unlikely]] {
    flow = jaccx::prof::next_flow_id();
    jaccx::prof::note_queue_submit(owner->id, flow);
  }
  // lanes_mu pins the lane set for the whole routing step: a concurrent
  // quiesce_lanes() either completes before (we rebuild and route into the
  // fresh set) or waits until the task is safely enqueued.
  std::unique_lock lanes_lock(r.lanes_mu);
  ensure_lanes_locked(r);
  if (r.lane_count <= 1 || lanes().lanes.empty()) {
    // The configuration degraded to synchronous between the caller's
    // queue_is_async check and here (re-initialization): run inline.
    lanes_lock.unlock();
    owner->async_tasks.fetch_add(1, std::memory_order_relaxed);
    task(nullptr);
    done->mark_complete();
    return;
  }
  int lane_idx;
  {
    const std::lock_guard lock(owner->mu);
    if (owner->lane < 0 || owner->lane_epoch != r.lane_epoch ||
        owner->lane >= r.lane_count) {
      // First submission, or the lane set was rebuilt since this queue
      // last pinned: a stale index may point past (or into the wrong slot
      // of) the new set, so re-resolve round-robin.
      owner->lane = static_cast<int>(
          r.next_lane.fetch_add(1, std::memory_order_relaxed) %
          static_cast<unsigned>(r.lane_count));
      owner->lane_epoch = r.lane_epoch;
    }
    lane_idx = owner->lane;
    ++owner->pending;
  }
  owner->async_tasks.fetch_add(1, std::memory_order_relaxed);
  lane& l = *lanes().lanes[static_cast<std::size_t>(lane_idx)];
  {
    const std::lock_guard lock(l.mu);
    l.tasks.push_back(lane_task{std::move(task), std::move(done),
                                std::move(owner), flow});
  }
  lanes_lock.unlock();
  l.cv.notify_one();
}

void quiesce_lanes() {
  queue_registry& r = reg();
  std::vector<std::unique_ptr<lane>> doomed;
  {
    const std::lock_guard lock(r.lanes_mu);
    doomed = std::move(lanes().lanes);
    lanes().lanes.clear();
    r.lanes_resolved = false;
    ++r.lane_epoch;
  }
  // Drain outside the lock: a lane task may itself submit (queue::wait
  // dependency tasks), which needs lanes_mu.  The set was detached above,
  // so late submissions rebuild a fresh set instead of racing this one.
  for (auto& l : doomed) {
    l->quiesce();
    const std::lock_guard lock(l->mu);
    JACCX_ASSERT(l->tasks.empty() && !l->running &&
                 "quiesce_lanes: lane still busy after drain");
  }
  doomed.clear(); // joins the dispatchers; deques are empty by now
}

jaccx::sim::stream* queue_stream(const queue& q, jaccx::sim::device& dev) {
  queue_impl* qi = queue_access::impl(q);
  const std::lock_guard lock(qi->mu);
  auto& slot = qi->streams[&dev];
  if (slot == nullptr) {
    slot = std::make_unique<jaccx::sim::stream>(
        dev, dev.model().name + "." +
                 (qi->label.empty() ? "q" + std::to_string(qi->id)
                                    : qi->label));
  }
  return slot.get();
}

event finish_sim_op(queue& q, jaccx::sim::device& dev, bool is_copy) {
  queue_impl* qi = queue_access::impl(q);
  (is_copy ? qi->copies : qi->launches)
      .fetch_add(1, std::memory_order_relaxed);
  auto st = std::make_shared<event_state>();
  st->dev = &dev;
  st->queue_id = qi->id;
  st->sim_done_us = queue_stream(q, dev)->now_us();
  st->complete.store(true, std::memory_order_release);
  return event_access::make(std::move(st));
}

void note_sync_op(queue& q, bool is_copy) {
  queue_impl* qi = queue_access::impl(q);
  (is_copy ? qi->copies : qi->launches)
      .fetch_add(1, std::memory_order_relaxed);
}

bool queue_capturing(const queue& q) {
  queue_impl* qi = queue_access::impl(q);
  return qi != nullptr &&
         qi->cap.load(std::memory_order_acquire) != nullptr;
}

event enqueue_host(queue& q, std::string_view name,
                   std::function<void(jaccx::pool::thread_pool*)> body) {
  if (queue_access::impl(q) == nullptr || q.is_default()) {
    body(nullptr);
    return event{};
  }
  if (queue_capturing(q)) [[unlikely]] {
    return capture_append(q, capture_kind::host, std::string(name),
                          make_replay_body(std::move(body)));
  }
  if (jaccx::sim::device* dev = backend_device(current_backend());
      dev != nullptr) {
    // Functional execution at enqueue: whatever value feeds the callback is
    // final already.  Host work charges no simulated time; the event marks
    // the queue's current stream position, like record().
    body(nullptr);
    auto st = std::make_shared<event_state>();
    st->dev = dev;
    st->queue_id = q.id();
    st->sim_done_us = queue_stream(q, *dev)->now_us();
    st->complete.store(true, std::memory_order_release);
    return event_access::make(std::move(st));
  }
  if (current_backend() == backend::threads && queue_is_async(q)) {
    auto st = std::make_shared<event_state>();
    queue_submit(q, std::move(body), st);
    return event_access::make(std::move(st));
  }
  body(nullptr);
  return event{};
}

queue_bind::queue_bind(queue* q, jaccx::sim::device* dev) {
  prev_active_ = t_active;
  t_active = q;
  if (q != nullptr && !q->is_default() && dev != nullptr) {
    dev_ = dev;
    prev_clock_ = dev->set_clock_target(&queue_stream(*q, *dev)->tl());
  }
}

queue_bind::~queue_bind() {
  if (dev_ != nullptr) {
    dev_->set_clock_target(prev_clock_);
  }
  t_active = prev_active_;
}

} // namespace detail

queue::queue() {
  detail::queue_registry& r = detail::reg();
  auto impl = std::make_shared<detail::queue_impl>();
  {
    const std::lock_guard lock(r.mu);
    impl->id = r.next_id++;
    r.queues.push_back(impl);
  }
  impl_ = std::move(impl);
}

queue::queue(std::string label) : queue() { impl_->label = std::move(label); }

event queue::record() {
  if (impl_ == nullptr || is_default()) {
    return event{}; // sync model: nothing can be outstanding
  }
  if (detail::queue_capturing(*this)) [[unlikely]] {
    return detail::capture_record(*this);
  }
  if (jaccx::sim::device* dev = backend_device(current_backend());
      dev != nullptr) {
    auto st = std::make_shared<detail::event_state>();
    st->dev = dev;
    st->queue_id = impl_->id;
    st->sim_done_us = detail::queue_stream(*this, *dev)->now_us();
    st->complete.store(true, std::memory_order_release);
    return detail::event_access::make(std::move(st));
  }
  if (detail::queue_is_async(*this)) {
    // A marker task: completes when the lane reaches this position.
    auto st = std::make_shared<detail::event_state>();
    detail::queue_submit(*this, [](jaccx::pool::thread_pool*) {}, st);
    return detail::event_access::make(std::move(st));
  }
  return event{};
}

queue& queue::default_queue() {
  static queue* q = [] {
    detail::queue_registry& r = detail::reg();
    auto impl = std::make_shared<detail::queue_impl>(); // id 0
    {
      const std::lock_guard lock(r.mu);
      r.queues.push_back(impl);
    }
    return new queue(detail::queue_access::wrap(std::move(impl)));
  }();
  return *q;
}

std::uint64_t queue::id() const { return impl_ != nullptr ? impl_->id : 0; }

void queue::synchronize() {
  if (impl_ == nullptr) {
    return;
  }
  if (detail::queue_capturing(*this)) [[unlikely]] {
    // cudaStreamSynchronize during stream capture is an error there too:
    // nothing has run, so "wait for it" is unanswerable.
    jaccx::throw_usage_error(
        "queue::synchronize during graph capture; end the capture first");
  }
  impl_->syncs.fetch_add(1, std::memory_order_relaxed);
  // Drain the async lane first (threads back end): everything submitted on
  // this queue has run once pending hits zero.
  std::vector<std::pair<jaccx::sim::device*, jaccx::sim::stream*>> streams;
  {
    std::unique_lock lock(impl_->mu);
    impl_->cv.wait(lock, [this] { return impl_->pending == 0; });
    streams.reserve(impl_->streams.size());
    for (const auto& [dev, s] : impl_->streams) {
      streams.emplace_back(dev, s.get());
    }
  }
  // Then align each touched device's clock with this queue's stream.
  for (const auto& [dev, s] : streams) {
    jaccx::sim::join(*dev, {s});
  }
}

void queue::wait(const event& e) {
  if (impl_ == nullptr) {
    return;
  }
  if (detail::queue_capturing(*this)) [[unlikely]] {
    detail::capture_wait(*this, e);
    return;
  }
  const auto& st = detail::event_access::state(e);
  if (st == nullptr) {
    return;
  }
  impl_->waits.fetch_add(1, std::memory_order_relaxed);
  if (st->dev != nullptr) {
    // Simulated dependency: later work on this queue cannot start before
    // the event's completion time.  All device clocks share the origin
    // (jacc::initialize resets them together), so a cross-device edge is
    // charged on the *consumer's* device — the cudaStreamWaitEvent
    // peer-device semantic — instead of serializing through the host.
    jaccx::sim::device* cur = backend_device(current_backend());
    jaccx::sim::device& dev =
        (cur != nullptr && cur != st->dev) ? *cur : *st->dev;
    const char* label = &dev == st->dev ? "queue.wait" : "queue.wait.xdev";
    jaccx::sim::timeline& tl =
        is_default() ? dev.tl() : detail::queue_stream(*this, dev)->tl();
    const double behind = st->sim_done_us - tl.now_us();
    if (behind > 0.0) {
      tl.record(label, jaccx::sim::event_kind::kernel, behind);
    }
    return;
  }
  if (!st->complete.load(std::memory_order_acquire) &&
      detail::queue_is_async(*this)) {
    // Real async dependency: an in-order lane task that blocks until the
    // event completes, so everything submitted after this wait stays
    // ordered behind it.
    auto dep = std::make_shared<detail::event_state>();
    auto source = st;
    detail::queue_submit(
        *this, [source](jaccx::pool::thread_pool*) { source->wait(); },
        std::move(dep));
    return;
  }
  st->wait();
}

double queue::now_us() const {
  if (impl_ == nullptr) {
    return 0.0;
  }
  jaccx::sim::device* dev = backend_device(current_backend());
  if (dev == nullptr) {
    return 0.0;
  }
  if (is_default()) {
    return dev->tl().now_us();
  }
  return detail::queue_stream(*this, *dev)->now_us();
}

void synchronize() {
  for (const auto& qi : detail::reg().live()) {
    queue q = detail::queue_access::wrap(qi);
    if (detail::queue_capturing(q)) {
      continue; // a recording queue has no outstanding work to wait for
    }
    q.synchronize();
  }
}

int resolve_queue_lanes(unsigned pool_width) {
  if (const auto n = jaccx::get_env_long("JACC_QUEUES"); n && *n >= 1) {
    // Clamp to the worker-pool width as well as the absolute ceiling: every
    // lane owns a private dispatcher thread plus a slice of the pool, so
    // more lanes than workers would oversubscribe the machine with
    // width-one pools.  The width cap has a floor of two so JACC_QUEUES=2
    // can still force genuine async lanes on a narrow machine — the
    // contract the CI/TSan legs rely on (docs/ASYNC.md, "Lane
    // resolution").
    const long width_cap = std::max(2L, static_cast<long>(pool_width));
    return static_cast<int>(std::min({*n, 64L, width_cap}));
  }
  // Auto: split a reasonably wide pool into two lanes; narrow machines keep
  // the synchronous degradation (one lane).
  return pool_width >= 4 ? 2 : 1;
}

int queue_lane_count() {
  detail::ensure_lanes();
  return detail::reg().lane_count;
}

unsigned queue_lane_width() {
  detail::ensure_lanes();
  return detail::reg().lane_width;
}

} // namespace jacc
