// jacc::device_set — N simulated GPUs of one model acting as a single
// execution scope for the auto-sharding layer (docs/SHARDING.md).
//
// The OpenACC JACC work performs kernel-level multi-GPU parallelization
// automatically; this is that idea on the simulator.  A device_set owns N
// instances of one GPU model plus the shard decomposition state: per-device
// weights, the cached chunk boundaries they imply, and the measured
// throughput that re-derives the weights between launches.  Installing a
// device_set_scope makes every synchronous 1/2/3-D parallel_for /
// parallel_reduce inside it execute sharded across the set — kernels keep
// their GLOBAL indices; the runtime applies the decomposition.
//
// Timing semantics match jaccx::multi::context exactly (each device has its
// own clock, sync() is the aligning barrier), because multi's context is now
// a deprecated shim over this class.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/launch_desc.hpp"
#include "sim/stream.hpp"
#include "threadpool/partition.hpp"

namespace jacc {

class device_set {
public:
  /// `be` must be one of the simulated GPU back ends; `devices` >= 1.
  device_set(backend be, int devices);

  device_set(const device_set&) = delete;
  device_set& operator=(const device_set&) = delete;

  int devices() const { return static_cast<int>(devs_.size()); }
  backend target() const { return be_; }
  jaccx::sim::device& dev(int d) const {
    JACCX_ASSERT(d >= 0 && d < devices());
    return *devs_[static_cast<std::size_t>(d)];
  }
  /// "a100" for cuda_a100, etc.
  const std::string& model() const { return model_; }
  /// The achieved-rate registry name of device d: "<model>#<d>".
  std::string instance_target(int d) const;

  /// Wall clock of the set: the furthest-ahead device.
  double now_us() const;
  /// Barrier: folds every shard stream into its device clock, then aligns
  /// every device clock to now_us() and returns it.
  double sync();
  /// Rewinds all device clocks/logs (benchmarks).  Shard streams are
  /// discarded and recreated lazily at the new time origin.  Measured rates
  /// and weights survive — they describe the hardware, not the run.
  void reset_clocks();
  /// Shard d's queue: an independent sim stream ("<model>.shard<d>" in the
  /// Chrome trace) created on first use.
  jaccx::sim::stream& shard_stream(int d);

  // --- decomposition --------------------------------------------------------

  /// Whether launches in this set's scope shard across all devices (JACC_SHARD
  /// resolved at construction; `off` pins everything to device 0).
  bool auto_shard() const { return auto_; }

  /// Chunk boundaries over a slow extent of `n` under the current weights:
  /// devices()+1 monotone values, bounds[d]..bounds[d+1] owned by device d.
  /// Cached per extent until the weights change.
  const std::vector<index_t>& bounds(index_t n);

  /// Device d's owned slow-index range of an extent-n decomposition.
  jaccx::pool::range chunk(index_t n, int d);

  /// Bumps every time the decomposition changes (rebalance, set_weights);
  /// sharded arrays compare this against the plan they were built under.
  std::uint64_t plan_generation() const { return generation_; }

  /// Current per-device weights (size devices(), sum > 0).
  const std::vector<double>& weights() const { return weights_; }
  /// Pins an explicit decomposition and disables measured auto-rebalance
  /// (the escape hatch; also how the bench computes its "ideal" plan).
  void set_weights(std::vector<double> w);

  // --- measured rebalance ---------------------------------------------------

  /// Artificially slows device d: every subsequent launch on it is charged
  /// `factor`x its modeled time ("shard.slow" in the trace).  The skew knob
  /// for rebalance tests and the bench's degraded-device scenario.
  void set_slowdown(int d, double factor);
  double slowdown(int d) const {
    JACCX_ASSERT(d >= 0 && d < devices());
    return slowdown_[static_cast<std::size_t>(d)];
  }

  /// Records one per-device launch observation: smoothed items/us feeds the
  /// rebalancer; when `h` carries bytes/flops estimates the achieved GB/s /
  /// GF/s are published to the prof rate sink under instance_target(d).
  /// Returns the elapsed time after any slowdown inflation.
  double note_launch(int d, double elapsed_us, index_t items, const hints& h);

  /// Smoothed measured throughput of device d in items/us (0 = never
  /// measured since the last clear).
  double rate(int d) const {
    JACCX_ASSERT(d >= 0 && d < devices());
    return rate_[static_cast<std::size_t>(d)];
  }

  /// Re-derives the weights from the measured rates when every device has
  /// been observed and the current plan's worst relative deviation from the
  /// rate-proportional plan exceeds the threshold (JACC_SHARD_REBALANCE,
  /// default 0.2).  Returns true when the plan changed.  The launch path
  /// calls this after every sharded launch; manual set_weights disables it.
  bool maybe_rebalance();

  /// Drops measured rates (bench phase boundaries).
  void clear_rates();

  double rebalance_threshold() const { return threshold_; }

private:
  backend be_;
  std::string model_;
  std::vector<jaccx::sim::device*> devs_;
  std::vector<std::unique_ptr<jaccx::sim::stream>> streams_; // lazily
  bool auto_ = true;
  bool manual_weights_ = false;
  double threshold_ = 0.2;
  std::uint64_t generation_ = 0;
  std::vector<double> weights_;
  std::vector<double> rate_;     ///< EWMA items/us per device
  std::vector<double> slowdown_; ///< >= 1.0
  std::map<index_t, std::vector<index_t>> bounds_cache_;
};

namespace detail {

/// The device_set installed by the innermost live device_set_scope on this
/// thread (nullptr outside any scope).  The synchronous launch front ends
/// check this exactly like active_queue().
device_set* active_shard_set();

/// Test hook: -1 = resolve JACC_SHARD from the environment (default),
/// 0 = force off, 1 = force auto.  Applies to device_sets constructed
/// after the call.
void set_shard_mode_for_test(int mode);

} // namespace detail

/// RAII scope routing synchronous launches through the sharding layer.
class device_set_scope {
public:
  explicit device_set_scope(device_set& ds);
  ~device_set_scope();
  device_set_scope(const device_set_scope&) = delete;
  device_set_scope& operator=(const device_set_scope&) = delete;

private:
  device_set* prev_;
};

} // namespace jacc
