// Transparent device selection, in the spirit of the authors' companion
// work sKokkos [paper ref. 20]: "enabling Kokkos with transparent device
// selection ... using OpenACC", which picks CPU or GPU per kernel from the
// problem's characteristics.  The paper's own Sec. V-A1 observation — the
// CPU wins small DOTs, the GPU wins large streaming kernels — is exactly
// the decision this module automates for JACC-CXX.
//
// The predictor reuses the simulator's cost model: for each candidate
// backend it evaluates kernel_cost_us on the workload descriptor (indices,
// bytes, flops, reduction structure, result transfer) and picks the
// minimum.  Because the figure benches charge the same model, the
// prediction is exact for simulated back ends; for real back ends it is a
// heuristic (documented as such).
#pragma once

#include <vector>

#include "core/backend.hpp"
#include "support/span2d.hpp"

namespace jacc {

/// What the kernel is about to do, in device-independent terms.
struct workload {
  jaccx::index_t indices = 0;   ///< loop iterations
  double bytes_per_index = 0.0; ///< unique memory traffic per iteration
  double flops_per_index = 0.0;
  bool is_reduce = false;       ///< two-kernel scheme + scalar D2H on GPUs
  int launches = 1;             ///< constructs issued back to back
};

/// Predicted duration of `w` on backend `b`, in simulated microseconds.
/// serial/threads are approximated by the Rome model (single- vs all-core).
double predict_us(backend b, const workload& w);

/// The candidate set auto_select considers: the simulated CPU and the three
/// simulated GPUs (matching the paper's four testbeds).
std::vector<backend> auto_candidates();

/// Picks the backend with the lowest predicted time for `w`.
backend auto_select(const workload& w);

/// sKokkos' actual question: a heterogeneous node has a host CPU and one
/// GPU — which should run this kernel?  Returns `gpu` or backend::cpu_rome.
backend auto_select_node(backend gpu, const workload& w);

/// Convenience: auto_select + set_backend; returns the choice.
backend use_auto_backend(const workload& w);

} // namespace jacc
