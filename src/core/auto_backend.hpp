// Transparent device selection, in the spirit of the authors' companion
// work sKokkos [paper ref. 20]: "enabling Kokkos with transparent device
// selection ... using OpenACC", which picks CPU or GPU per kernel from the
// problem's characteristics.  The paper's own Sec. V-A1 observation — the
// CPU wins small DOTs, the GPU wins large streaming kernels — is exactly
// the decision this module automates for JACC-CXX.
//
// The predictor reuses the simulator's cost model: for each candidate
// backend it evaluates kernel_cost_us on the workload descriptor (indices,
// bytes, flops, reduction structure, result transfer) and picks the
// minimum.  Because the figure benches charge the same model, the
// prediction is exact for simulated back ends; for real back ends it is a
// heuristic (documented as such).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/backend.hpp"
#include "support/span2d.hpp"

namespace jacc {

/// What the kernel is about to do, in device-independent terms.
struct workload {
  jaccx::index_t indices = 0;   ///< loop iterations
  double bytes_per_index = 0.0; ///< unique memory traffic per iteration
  double flops_per_index = 0.0;
  bool is_reduce = false;       ///< two-kernel scheme + scalar D2H on GPUs
  int launches = 1;             ///< constructs issued back to back
};

/// Predicted duration of `w` on backend `b`, in simulated microseconds.
/// serial/threads are approximated by the Rome model (single- vs all-core).
double predict_us(backend b, const workload& w);

/// The candidate set auto_select considers: the simulated CPU and the three
/// simulated GPUs (matching the paper's four testbeds).
std::vector<backend> auto_candidates();

/// Picks the backend with the lowest predicted time for `w`.
backend auto_select(const workload& w);

/// sKokkos' actual question: a heterogeneous node has a host CPU and one
/// GPU — which should run this kernel?  Returns `gpu` or backend::cpu_rome.
backend auto_select_node(backend gpu, const workload& w);

/// Convenience: auto_select + set_backend; returns the choice.
backend use_auto_backend(const workload& w);

// --- measured achieved-rate feedback ----------------------------------------
//
// The model-based predictor above answers "what should this device do"; the
// feedback registry answers "what did it actually do".  jaccx::prof pushes
// achieved GB/s / GF/s here (install_rate_feedback registers the sink; the
// roofline rows and the sharding layer's per-launch observations are the
// sources), and the measured variants below prefer those numbers over the
// model peaks — the sKokkos loop closed with real observations.

/// Exponentially-smoothed achieved rates for one execution target
/// ("a100", "a100#2", "threads", ...).  samples == 0 means never observed.
struct achieved_rate {
  double gbps = 0.0;
  double gflops = 0.0;
  std::uint64_t samples = 0;
};

/// Folds one observation into the target's smoothed rate (thread-safe).
void note_achieved_rate(std::string_view target, double gbps, double gflops);

/// The current smoothed rate for `target` (zero-sample default when the
/// target was never observed).
achieved_rate achieved(std::string_view target);

/// Drops every recorded rate (tests, bench phase boundaries).
void clear_achieved_rates();

/// The feedback-registry name for a backend's rates: the roofline target
/// ("serial", "threads", or the sim model name).
std::string target_for(backend b);

/// predict_us, but with the bandwidth/flop terms replaced by `target`'s
/// measured rates when samples exist; falls back to the model otherwise.
double predict_us_measured(backend b, const workload& w);

/// auto_select over predict_us_measured.
backend auto_select_measured(const workload& w);

/// Registers this module as the process-wide jaccx::prof rate sink, so
/// roofline rows and per-shard launch observations land in the registry.
/// Idempotent; jacc::initialize() calls it.
void install_rate_feedback();

} // namespace jacc
