// jacc::expr — lazy elementwise expression templates over jacc::array
// (ROADMAP item 2; the Grid strategy, Boyle et al. 1710.09409).
//
// An expression records an elementwise computation without running it:
//
//   jacc::eval("blas.xpay", n, jacc::assign(p, jacc::ex(r) + beta * jacc::ex(p)));
//
// materializes as ONE parallel_for, and several assign statements fuse
// into a single sweep:
//
//   jacc::eval("cg.setup", n, jacc::assign(r, jacc::ex(b) - jacc::ex(s)),
//                             jacc::assign(p, jacc::ex(r)));
//
// The dot terminal reduces a product expression without materializing any
// intermediate, and eval_dot appends a fused reduction to a statement
// chain (statements run first at each index, then the dot term is read):
//
//   rr = jacc::eval_dot("cg.fused_update", n, jacc::ex(r), jacc::ex(r),
//                       jacc::assign(x, jacc::ex(x) + alpha * jacc::ex(p)),
//                       jacc::assign(r, jacc::ex(r) - alpha * jacc::ex(s)));
//
// Accounting: the fused launch carries summed flops_per_index and
// *deduplicated* bytes_per_index hints (an array read by two operands is
// charged once per direction — MODEL.md, "Fused charges"), and is marked
// hints::elementwise so a captured eval() is also a graph-fuser candidate.
// Evaluation reads/writes through array_base::flat(), i.e. the same
// tracked element references the per-element kernels use, so simulated
// cache-model charges are exact, and per-index statement order matches the
// eager sweep order — fused evaluation is bit-exact against the unfused
// kernel sequence for elementwise chains on every backend.
#pragma once

#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/array.hpp"
#include "core/fuse.hpp"
#include "core/parallel_for.hpp"
#include "core/parallel_reduce.hpp"

namespace jacc {

/// Tag base for expression nodes; the concept every operator and entry
/// point is constrained on.
struct expr_base {};

template <class E>
concept expression = std::is_base_of_v<expr_base, std::remove_cvref_t<E>>;

namespace expr_detail {

using detail::fuse_footprint;

/// A read of one array (any rank) by linear column-major index.
template <class T>
struct leaf : expr_base {
  explicit leaf(const detail::array_base<T>* array) : a(array) {}
  const detail::array_base<T>* a;

  T operator()(index_t i) const { return a->flat(i); }
  double flops() const { return 0.0; }
  void footprints(std::vector<fuse_footprint>& out) const {
    out.push_back({a->host_data(), static_cast<double>(sizeof(T)), true,
                   false});
  }
};

/// A broadcast scalar captured by value.
template <class T>
struct scalar_expr : expr_base {
  explicit scalar_expr(T value) : v(value) {}
  T v;

  T operator()(index_t) const { return v; }
  double flops() const { return 0.0; }
  void footprints(std::vector<fuse_footprint>&) const {}
};

struct add_op {
  static auto apply(auto a, auto b) { return a + b; }
};
struct sub_op {
  static auto apply(auto a, auto b) { return a - b; }
};
struct mul_op {
  static auto apply(auto a, auto b) { return a * b; }
};

template <class L, class R, class Op>
struct binary_expr : expr_base {
  binary_expr(L lhs, R rhs) : l(std::move(lhs)), r(std::move(rhs)) {}
  L l;
  R r;

  auto operator()(index_t i) const { return Op::apply(l(i), r(i)); }
  double flops() const { return l.flops() + r.flops() + 1.0; }
  void footprints(std::vector<fuse_footprint>& out) const {
    l.footprints(out);
    r.footprints(out);
  }
};

template <class E>
struct neg_expr : expr_base {
  explicit neg_expr(E inner) : e(std::move(inner)) {}
  E e;

  auto operator()(index_t i) const { return -e(i); }
  double flops() const { return e.flops() + 1.0; }
  void footprints(std::vector<fuse_footprint>& out) const {
    e.footprints(out);
  }
};

// Operators live here so ADL on any node type finds them; either side of
// +, -, * may be a plain arithmetic value (lifted to a scalar broadcast).

template <expression L, expression R>
auto operator+(L l, R r) {
  return binary_expr<L, R, add_op>(std::move(l), std::move(r));
}
template <expression L, expression R>
auto operator-(L l, R r) {
  return binary_expr<L, R, sub_op>(std::move(l), std::move(r));
}
template <expression L, expression R>
auto operator*(L l, R r) {
  return binary_expr<L, R, mul_op>(std::move(l), std::move(r));
}

template <class S, expression R>
  requires std::is_arithmetic_v<S>
auto operator+(S s, R r) {
  return scalar_expr<S>(s) + std::move(r);
}
template <expression L, class S>
  requires std::is_arithmetic_v<S>
auto operator+(L l, S s) {
  return std::move(l) + scalar_expr<S>(s);
}
template <class S, expression R>
  requires std::is_arithmetic_v<S>
auto operator-(S s, R r) {
  return scalar_expr<S>(s) - std::move(r);
}
template <expression L, class S>
  requires std::is_arithmetic_v<S>
auto operator-(L l, S s) {
  return std::move(l) - scalar_expr<S>(s);
}
template <class S, expression R>
  requires std::is_arithmetic_v<S>
auto operator*(S s, R r) {
  return scalar_expr<S>(s) * std::move(r);
}
template <expression L, class S>
  requires std::is_arithmetic_v<S>
auto operator*(L l, S s) {
  return std::move(l) * scalar_expr<S>(s);
}

template <expression E>
auto operator-(E e) {
  return neg_expr<E>(std::move(e));
}

/// One deferred store: dst[i] = (T)e(i).  The statement shape eval() runs;
/// exposes the capture-layer footprint hook so an eval() recorded into a
/// graph stays fusable with its neighbors.
template <class T, class E>
struct assign_stmt {
  const detail::array_base<T>* dst;
  E e;

  void run(index_t i) const { dst->flat(i) = static_cast<T>(e(i)); }
  double flops() const { return e.flops(); }
  void jacc_fuse_footprints(std::vector<fuse_footprint>& out) const {
    out.push_back({dst->host_data(), static_cast<double>(sizeof(T)), false,
                   true});
    e.footprints(out);
  }
};

} // namespace expr_detail

/// Wraps an array (any rank) as an expression leaf reading by linear
/// column-major index.
template <class T>
auto ex(const array<T>& a) {
  return expr_detail::leaf<T>(&a);
}
template <class T>
auto ex(const array2d<T>& a) {
  return expr_detail::leaf<T>(&a);
}
template <class T>
auto ex(const array3d<T>& a) {
  return expr_detail::leaf<T>(&a);
}

/// A deferred elementwise store into `dst`; run by eval()/eval_dot().
template <class T, expression E>
auto assign(array<T>& dst, E e) {
  return expr_detail::assign_stmt<T, E>{&dst, std::move(e)};
}
template <class T, expression E>
auto assign(array2d<T>& dst, E e) {
  return expr_detail::assign_stmt<T, E>{&dst, std::move(e)};
}
template <class T, expression E>
auto assign(array3d<T>& dst, E e) {
  return expr_detail::assign_stmt<T, E>{&dst, std::move(e)};
}

/// Runs a chain of assign statements over [0, n) as ONE parallel_for with
/// summed flops and deduplicated bytes hints.  `n` is explicit because the
/// BLAS front end routinely operates on a prefix of its arrays.
template <class... St>
void eval(std::string_view name, index_t n, const St&... stmts) {
  std::vector<detail::fuse_footprint> fps;
  (stmts.jacc_fuse_footprints(fps), ...);
  const hints h{.name = name,
                .flops_per_index = (0.0 + ... + stmts.flops()),
                .bytes_per_index = detail::fused_hint_bytes(fps),
                .elementwise = true};
  // Parameters are exactly St... (not auto...): overload resolution over
  // the dims2/dims3 parallel_for signatures probes invocability, and a
  // generic lambda would have to instantiate its body (deduced return
  // type) to answer — a hard error on the probe's index arguments.  With
  // fixed parameter types the arity mismatch fails cleanly instead.
  parallel_for(h, n,
               [](index_t i, const St&... ss) { (ss.run(i), ...); },
               stmts...);
}

/// Fused reduction terminal: sum over i of a(i) * b(i), without
/// materializing either operand expression.
template <expression E1, expression E2>
auto dot(std::string_view name, index_t n, const E1& a, const E2& b) {
  std::vector<detail::fuse_footprint> fps;
  a.footprints(fps);
  b.footprints(fps);
  const hints h{.name = name,
                .flops_per_index = a.flops() + b.flops() + 2.0,
                .bytes_per_index = detail::fused_hint_bytes(fps)};
  return parallel_reduce(
      h, n,
      [](index_t i, const E1& x, const E2& y) { return x(i) * y(i); }, a, b);
}

/// Statement chain + fused dot in ONE launch: at each index the statements
/// run in order, then the dot term a(i) * b(i) is read — so a dot over an
/// array a statement just updated sees the new value, exactly as running
/// the unfused sweeps back to back would.  Every backend's reduction
/// evaluates each index exactly once, which makes this legal (and
/// bit-exact: the reduce tree only sees the term values).
template <expression E1, expression E2, class... St>
auto eval_dot(std::string_view name, index_t n, const E1& a, const E2& b,
              const St&... stmts) {
  std::vector<detail::fuse_footprint> fps;
  (stmts.jacc_fuse_footprints(fps), ...);
  a.footprints(fps);
  b.footprints(fps);
  const hints h{.name = name,
                .flops_per_index =
                    (0.0 + ... + stmts.flops()) + a.flops() + b.flops() + 2.0,
                .bytes_per_index = detail::fused_hint_bytes(fps),
                .elementwise = true};
  return parallel_reduce(
      h, n,
      [](index_t i, const E1& x, const E2& y, const St&... ss) {
        (ss.run(i), ...);
        return x(i) * y(i);
      },
      a, b, stmts...);
}

} // namespace jacc
