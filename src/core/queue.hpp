// jacc::queue — stream-ordered asynchronous execution as a front-end
// concept (paper Sec. VII: "more efficient exploitation of available
// resources").
//
// A queue is an in-order lane of work.  Operations enqueued on the same
// queue execute in submission order; operations on different queues may
// overlap.  The default queue is the synchronous model the paper describes:
// everything issued on it completes before the call returns, which keeps
// every pre-queue JACC program bit-identical.
//
//   jacc::queue q1, q2;                      // two user queues
//   auto e = jacc::parallel_for(q1, n, f, dx);
//   q2.wait(e);                              // cross-queue dependency
//   jacc::parallel_for(q2, n, g, dx);
//   jacc::synchronize();                     // all queues
//
// Backend mapping:
//   simulated back ends   each (queue, device) pair owns a jaccx::sim::stream
//                         ("a100.q1", ...): work executes functionally at
//                         enqueue time but is charged to the stream's clock,
//                         so H2D/kernel/D2H issued on different queues
//                         overlap in simulated time exactly as CUDA streams
//                         would (and appear as per-queue Chrome-trace lanes);
//   threads               queues map round-robin onto JACC_QUEUES async
//                         lanes, each a dispatcher thread driving a private
//                         slice of the worker budget; with one lane (or on
//                         serial) enqueues degrade to synchronous calls and
//                         the returned events are born complete.
//
// Queues are cheap shared handles (copy = same queue).  Thread safety: a
// queue may be used from multiple threads; per-queue order then follows
// submission order.
#pragma once

#include <concepts>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "core/backend.hpp"
#include "core/event.hpp"
#include "core/future.hpp"
#include "core/launch_desc.hpp"
#include "mem/pool.hpp"

namespace jaccx::pool {
class thread_pool;
}
namespace jaccx::sim {
class device;
class stream;
class timeline;
}

namespace jacc {

class queue;
class graph;

namespace detail {

struct queue_impl;
struct queue_access;
struct capture_builder;

/// The queue installed by the innermost live queue_scope / queue_bind on
/// this thread; null means the plain synchronous model.
queue* active_queue();

/// Allocation context for jaccx::mem: the active queue's id plus its
/// simulated stream-clock position on `dev` (device default clock when no
/// queue is active).  This is what makes pool reuse stream-ordered.  May
/// lazily create the queue's stream on `dev` — acquire paths only.
jaccx::mem::queue_ctx alloc_ctx(jaccx::sim::device* dev);

/// Release-path variant of alloc_ctx for noexcept contexts (array
/// destructors): looks up the active queue's stream on `dev` but never
/// creates one, falling back to the device's default clock, so it cannot
/// allocate.
jaccx::mem::queue_ctx release_ctx(jaccx::sim::device* dev) noexcept;

/// Applies the implicit sync a stream-ordered pool performs when a block
/// released on one queue is reused on another: advances the current charge
/// target on `dev` to the releasing queue's release time.
void note_pool_stall(jaccx::sim::device* dev, double ready_us);

/// True when work for `q` on the threads back end should run on an async
/// lane (q is not the default queue and more than one lane is configured).
bool queue_is_async(const queue& q);

/// Hands a type-erased task to q's lane dispatcher.  The task receives the
/// lane's private worker pool; `done` is marked complete after it runs.
void queue_submit(queue& q,
                  std::function<void(jaccx::pool::thread_pool*)> task,
                  std::shared_ptr<event_state> done);

/// The sim stream charges for (q, dev) land on; created on first use.
jaccx::sim::stream* queue_stream(const queue& q, jaccx::sim::device& dev);

/// Mints the completed event for a sim-backend enqueue that just ran under
/// a queue_bind, carrying the stream's completion timestamp.
event finish_sim_op(queue& q, jaccx::sim::device& dev, bool is_copy);

/// Counts an enqueue that degraded to a synchronous call (serial backend,
/// or threads with a single lane).
void note_sync_op(queue& q, bool is_copy);

/// Drains and destroys the threads async lanes (waiting for any task in
/// flight, asserting the deques are empty) and marks the lane configuration
/// unresolved, so the next async submission re-reads JACC_QUEUES against
/// the pool width of that moment.  Called by jacc::finalize() before the
/// mem-pool drain (lane tasks may hold pool blocks and may dispatch nested
/// sync work through the default pool) and by jacc::initialize() so a
/// re-initialization picks up a changed environment.  Safe to call with no
/// lanes built; live queue handles survive and re-resolve their lane on the
/// next submission.
void quiesce_lanes();

// --- graph capture plumbing (jacc::graph, core/graph.{hpp,cpp}) -------------

/// What a captured node replays as.  Kernels and copies run under the
/// queue's stream on simulated back ends; host nodes run bare (no charge);
/// wait nodes replay a recorded cross-queue edge; mem_acquire/mem_release
/// replay a pool acquire/release (core/scratch.hpp), so scratch-allocating
/// DAGs replay allocation-free out of the stream-ordered cache.
enum class capture_kind : std::uint8_t {
  kernel,
  copy,
  host,
  wait,
  mem_acquire,
  mem_release,
};

/// A pre-baked replay body: one raw function-pointer call into
/// shared-ownership state.  Compared to std::function this drops the
/// second indirection on the replay hot loop and makes the "tight loop
/// over pre-baked nodes" contract explicit.  `pl` is the worker-pool
/// override, exactly as in enqueue_common's Runner.
struct replay_body {
  void (*fn)(void* state, jaccx::pool::thread_pool* pl) = nullptr;
  std::shared_ptr<void> state;

  void operator()(jaccx::pool::thread_pool* pl) const { fn(state.get(), pl); }
  explicit operator bool() const { return fn != nullptr; }
};

template <class F>
replay_body make_replay_body(F&& f) {
  using Fn = std::decay_t<F>;
  replay_body b;
  b.state = std::make_shared<Fn>(std::forward<F>(f));
  b.fn = [](void* state, jaccx::pool::thread_pool* pl) {
    (*static_cast<Fn*>(state))(pl);
  };
  return b;
}

/// One relaxed load: is `q` currently recording into a capture?  The hot
/// enqueue paths gate on this exactly like prof::enabled().
bool queue_capturing(const queue& q);

struct fusable_kernel; // core/fuse.hpp

/// Records one node on capturing queue `q` and returns its placeholder
/// event (born complete, carrying the capture marker).  Defined in
/// graph.cpp.
event capture_append(queue& q, capture_kind kind, std::string name,
                     replay_body body);

/// As above, additionally attaching the fused-execution payload a 1D
/// elementwise kernel capture builds (core/fuse.hpp), so the post-capture
/// peephole fuser can merge this node with its neighbors.
event capture_append(queue& q, capture_kind kind, std::string name,
                     replay_body body,
                     std::shared_ptr<fusable_kernel> fusable);

/// queue::wait(e) while capturing: a marker event from the same capture
/// becomes a recorded edge (no-op within one queue, a wait node across
/// queues); external events are resolved at capture time.
void capture_wait(queue& q, const event& e);

/// queue::record() while capturing: a marker for the queue's current
/// recorded position (invalid event when nothing was recorded yet).
event capture_record(queue& q);

/// Enqueues a host callback on `q`: inline on the default queue and on
/// simulated back ends (the value feeding it is final at enqueue there), a
/// lane task under threads async, a recorded host node during capture.
/// Host callbacks charge no simulated time.
event enqueue_host(queue& q, std::string_view name,
                   std::function<void(jaccx::pool::thread_pool*)> body);

/// RAII: while alive, `q` is the thread's active queue and (when dev is a
/// simulated device and q is a real user queue) every charge on dev lands
/// on q's stream.  Null queue/device degrade to plain TLS bookkeeping.
class queue_bind {
public:
  queue_bind(queue* q, jaccx::sim::device* dev);
  ~queue_bind();
  queue_bind(const queue_bind&) = delete;
  queue_bind& operator=(const queue_bind&) = delete;

private:
  queue* prev_active_ = nullptr;
  jaccx::sim::device* dev_ = nullptr;
  jaccx::sim::timeline* prev_clock_ = nullptr;
};

/// Shared enqueue shape for every queued operation.  `run(pool)` performs
/// the operation synchronously on the calling thread (pool = worker pool
/// override, null = default).  Returns the completion handle:
///   default queue   -> run inline, trivially-complete event (sync model)
///   capturing       -> recorded as a graph node, nothing runs
///   simulated       -> run under the queue's stream, event carries the
///                      stream completion time
///   threads + lanes -> task submitted to the queue's lane
///   otherwise       -> run inline (async degrades to sync)
/// `name` labels the recorded node during capture (ignored otherwise).
template <class Runner>
event enqueue_common(queue& q, backend b, bool is_copy, std::string_view name,
                     Runner&& run);

} // namespace detail

/// One in-order execution lane.  Copy = another handle to the same queue.
class queue {
public:
  /// Creates a fresh user queue (id >= 1).
  queue();

  /// Creates a labeled user queue: its simulated streams are named
  /// "<model>.<label>" instead of "<model>.q<id>" (per-lane Chrome-trace
  /// naming; the dist layer uses "rank<r>").
  explicit queue(std::string label);

  /// The process-wide default queue (id 0): the synchronous model.
  static queue& default_queue();

  std::uint64_t id() const;
  bool is_default() const { return id() == 0; }

  /// Blocks until everything enqueued on this queue has completed, and
  /// aligns the queue's simulated streams with their device clocks.
  void synchronize();

  /// Orders all later work on this queue after `e` (which may come from
  /// another queue).  Under simulated back ends this advances the queue's
  /// stream clock on the event's device; under threads lanes it enqueues a
  /// blocking dependency task.  Complete/null events are a no-op.
  void wait(const event& e);

  /// Orders all later work on this queue after the reduction behind `f`
  /// completes — the no-host-round-trip half of a future (the value half
  /// is f.get()).
  template <class T>
  void wait(const future<T>& f) {
    wait(f.done());
  }

  /// Marks this queue's current position (cudaEventRecord): the returned
  /// event completes once everything submitted so far has finished.  On
  /// simulated back ends it is born complete carrying the stream clock; on
  /// the default queue it is the invalid (trivially complete) event.
  event record();

  /// Starts recording this queue's submissions into a jacc::graph
  /// (cudaStreamBeginCapture).  Until end_capture, enqueues on this queue
  /// record nodes instead of running; the front-end dispatch work (capture
  /// policy, hint resolution, descriptor building) is done once here and
  /// never again on replay.  Multi-queue DAGs use jacc::capture_scope.
  /// Throws jaccx::usage_error on the default queue or when a capture is
  /// already recording here.
  void begin_capture();

  /// Finishes recording and returns the immutable, replayable graph.
  /// Throws jaccx::usage_error when no capture is recording on this queue
  /// or when the capture was started by a capture_scope (end it there).
  graph end_capture();

  /// True while a capture is recording this queue's submissions.
  bool capturing() const;

  /// Non-blocking sum-reduction on this queue: runs after everything
  /// already submitted here and returns a jacc::future<R> instead of
  /// blocking the host.  On simulated back ends the value is final
  /// immediately (functional execution at enqueue) and only the *charges*
  /// land on the queue's stream; on threads async lanes the host genuinely
  /// continues while the lane computes.  The free
  /// jacc::parallel_reduce(q, ...) overloads are these calls plus .get().
  template <class F, class... Args>
  auto parallel_reduce(const hints& h, index_t n, F&& f, Args&&... args);

  template <class F, class... Args>
    requires std::invocable<F&, index_t, Args&...>
  auto parallel_reduce(index_t n, F&& f, Args&&... args);

  template <class F, class... Args>
  auto parallel_reduce(const hints& h, dims2 d, F&& f, Args&&... args);

  template <class F, class... Args>
    requires std::invocable<F&, index_t, index_t, Args&...>
  auto parallel_reduce(dims2 d, F&& f, Args&&... args);

  /// Simulated-clock position of this queue on the current backend's
  /// device (0 under real back ends).  Diagnostics and tests.
  double now_us() const;

private:
  friend struct detail::queue_access;
  explicit queue(std::shared_ptr<detail::queue_impl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<detail::queue_impl> impl_;
};

namespace detail {

/// Internal accessor so queue.cpp (and only it) reaches the impl.
struct queue_access {
  static queue_impl* impl(const queue& q) { return q.impl_.get(); }
  static std::shared_ptr<queue_impl> impl_ptr(const queue& q) {
    return q.impl_;
  }
  static queue wrap(std::shared_ptr<queue_impl> impl) {
    return queue(std::move(impl));
  }
};

template <class Runner>
event enqueue_common(queue& q, backend b, bool is_copy, std::string_view name,
                     Runner&& run) {
  if (q.is_default()) {
    // The sync model, untouched: no stream, no TLS, no event state.
    run(static_cast<jaccx::pool::thread_pool*>(nullptr));
    return event{};
  }
  if (queue_capturing(q)) [[unlikely]] {
    return capture_append(q, is_copy ? capture_kind::copy : capture_kind::kernel,
                          std::string(name),
                          make_replay_body(std::forward<Runner>(run)));
  }
  if (jaccx::sim::device* dev = backend_device(b); dev != nullptr) {
    queue_bind bind(&q, dev);
    run(static_cast<jaccx::pool::thread_pool*>(nullptr));
    return finish_sim_op(q, *dev, is_copy);
  }
  if (b == backend::threads && queue_is_async(q)) {
    auto st = std::make_shared<event_state>();
    queue_submit(q, std::forward<Runner>(run), st);
    return event_access::make(std::move(st));
  }
  run(static_cast<jaccx::pool::thread_pool*>(nullptr));
  note_sync_op(q, is_copy);
  return event{};
}

} // namespace detail

/// RAII: routes every jacc construct (and jacc::array charge) issued on
/// this thread through `q` while alive.  Under simulated back ends the
/// current backend's device charges land on q's stream for the whole scope.
class queue_scope {
public:
  explicit queue_scope(queue& q)
      : bind_(&q, backend_device(current_backend())) {}

private:
  detail::queue_bind bind_;
};

/// Lane configuration for the threads back end.  `resolve_queue_lanes` is
/// the pure policy (JACC_QUEUES env beats the width heuristic: 2 lanes when
/// the pool is at least 4 wide, else 1); `queue_lane_count/width` report
/// the installed configuration, resolving it on first call.
int resolve_queue_lanes(unsigned pool_width);
int queue_lane_count();
unsigned queue_lane_width();

} // namespace jacc
