#include "core/auto_backend.hpp"

#include <limits>

#include "sim/device.hpp"
#include "sim/work_tally.hpp"

namespace jacc {
namespace {

/// Assembles the model inputs for one launch of `w` on model `m`.
double one_launch_us(const jaccx::sim::device_model& m, const workload& w,
                     bool via_jacc) {
  jaccx::sim::work_tally t;
  t.indices = static_cast<std::uint64_t>(w.indices);
  t.dram_bytes = static_cast<std::uint64_t>(
      w.bytes_per_index * static_cast<double>(w.indices));
  t.flops = static_cast<std::uint64_t>(
      w.flops_per_index * static_cast<double>(w.indices));
  const std::int64_t block =
      m.kind == jaccx::sim::device_kind::gpu
          ? (w.indices < m.max_threads_per_block ? std::int64_t{1}
                                                 : m.max_threads_per_block)
          : 1;
  t.blocks = m.kind == jaccx::sim::device_kind::gpu
                 ? static_cast<std::uint64_t>(
                       (w.indices + block - 1) / (block > 0 ? block : 1))
                 : static_cast<std::uint64_t>(m.parallel_units);
  jaccx::sim::launch_flavor f;
  f.via_jacc = via_jacc;
  f.is_reduce = w.is_reduce;
  double us = jaccx::sim::kernel_cost_us(m, t, f);
  if (w.is_reduce && m.kind == jaccx::sim::device_kind::gpu) {
    // The GPU reduction's fixed structure: two zero-fill kernels, the
    // second (partials) kernel, two scratch allocations, and the scalar
    // result transfer (see parallel_reduce.hpp).
    jaccx::sim::work_tally t2;
    us += 3.0 * jaccx::sim::kernel_cost_us(m, t2, f);
    us += 2.0 * m.alloc_overhead_us;
    us += jaccx::sim::transfer_cost_us(m, sizeof(double));
  }
  return us;
}

const jaccx::sim::device_model& model_for(backend b) {
  switch (b) {
  case backend::cuda_a100: return jaccx::sim::builtin_model("a100");
  case backend::hip_mi100: return jaccx::sim::builtin_model("mi100");
  case backend::oneapi_max1550: return jaccx::sim::builtin_model("max1550");
  default: return jaccx::sim::builtin_model("rome64");
  }
}

} // namespace

double predict_us(backend b, const workload& w) {
  const auto& m = model_for(b);
  if (b == backend::serial) {
    // One core, no fork/join: scale the parallel estimate back up.
    auto single = m;
    single.parallel_units = 1;
    single.launch_overhead_us = 0.1;
    return w.launches * one_launch_us(single, w, true);
  }
  return w.launches * one_launch_us(m, w, true);
}

std::vector<backend> auto_candidates() {
  return {backend::cpu_rome, backend::cuda_a100, backend::hip_mi100,
          backend::oneapi_max1550};
}

backend auto_select(const workload& w) {
  backend best = backend::cpu_rome;
  double best_us = std::numeric_limits<double>::infinity();
  for (backend b : auto_candidates()) {
    const double us = predict_us(b, w);
    if (us < best_us) {
      best_us = us;
      best = b;
    }
  }
  return best;
}

backend auto_select_node(backend gpu, const workload& w) {
  if (is_simulated(gpu) && gpu != backend::cpu_rome) {
    const double gpu_us = predict_us(gpu, w);
    const double cpu_us = predict_us(backend::cpu_rome, w);
    return gpu_us <= cpu_us ? gpu : backend::cpu_rome;
  }
  jaccx::throw_usage_error("auto_select_node expects a simulated GPU backend");
}

backend use_auto_backend(const workload& w) {
  const backend b = auto_select(w);
  set_backend(b);
  return b;
}

} // namespace jacc
