#include "core/auto_backend.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>

#include "prof/prof.hpp"
#include "sim/device.hpp"
#include "sim/work_tally.hpp"

namespace jacc {
namespace {

/// Assembles the model inputs for one launch of `w` on model `m`.
double one_launch_us(const jaccx::sim::device_model& m, const workload& w,
                     bool via_jacc) {
  jaccx::sim::work_tally t;
  t.indices = static_cast<std::uint64_t>(w.indices);
  t.dram_bytes = static_cast<std::uint64_t>(
      w.bytes_per_index * static_cast<double>(w.indices));
  t.flops = static_cast<std::uint64_t>(
      w.flops_per_index * static_cast<double>(w.indices));
  const std::int64_t block =
      m.kind == jaccx::sim::device_kind::gpu
          ? (w.indices < m.max_threads_per_block ? std::int64_t{1}
                                                 : m.max_threads_per_block)
          : 1;
  t.blocks = m.kind == jaccx::sim::device_kind::gpu
                 ? static_cast<std::uint64_t>(
                       (w.indices + block - 1) / (block > 0 ? block : 1))
                 : static_cast<std::uint64_t>(m.parallel_units);
  jaccx::sim::launch_flavor f;
  f.via_jacc = via_jacc;
  f.is_reduce = w.is_reduce;
  double us = jaccx::sim::kernel_cost_us(m, t, f);
  if (w.is_reduce && m.kind == jaccx::sim::device_kind::gpu) {
    // The GPU reduction's fixed structure: two zero-fill kernels, the
    // second (partials) kernel, two scratch allocations, and the scalar
    // result transfer (see parallel_reduce.hpp).
    jaccx::sim::work_tally t2;
    us += 3.0 * jaccx::sim::kernel_cost_us(m, t2, f);
    us += 2.0 * m.alloc_overhead_us;
    us += jaccx::sim::transfer_cost_us(m, sizeof(double));
  }
  return us;
}

const jaccx::sim::device_model& model_for(backend b) {
  switch (b) {
  case backend::cuda_a100: return jaccx::sim::builtin_model("a100");
  case backend::hip_mi100: return jaccx::sim::builtin_model("mi100");
  case backend::oneapi_max1550: return jaccx::sim::builtin_model("max1550");
  default: return jaccx::sim::builtin_model("rome64");
  }
}

} // namespace

double predict_us(backend b, const workload& w) {
  const auto& m = model_for(b);
  if (b == backend::serial) {
    // One core, no fork/join: scale the parallel estimate back up.
    auto single = m;
    single.parallel_units = 1;
    single.launch_overhead_us = 0.1;
    return w.launches * one_launch_us(single, w, true);
  }
  return w.launches * one_launch_us(m, w, true);
}

std::vector<backend> auto_candidates() {
  return {backend::cpu_rome, backend::cuda_a100, backend::hip_mi100,
          backend::oneapi_max1550};
}

backend auto_select(const workload& w) {
  backend best = backend::cpu_rome;
  double best_us = std::numeric_limits<double>::infinity();
  for (backend b : auto_candidates()) {
    const double us = predict_us(b, w);
    if (us < best_us) {
      best_us = us;
      best = b;
    }
  }
  return best;
}

backend auto_select_node(backend gpu, const workload& w) {
  if (is_simulated(gpu) && gpu != backend::cpu_rome) {
    const double gpu_us = predict_us(gpu, w);
    const double cpu_us = predict_us(backend::cpu_rome, w);
    return gpu_us <= cpu_us ? gpu : backend::cpu_rome;
  }
  jaccx::throw_usage_error("auto_select_node expects a simulated GPU backend");
}

backend use_auto_backend(const workload& w) {
  const backend b = auto_select(w);
  set_backend(b);
  return b;
}

// --- measured achieved-rate feedback ----------------------------------------

namespace {

std::mutex& rates_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, achieved_rate, std::less<>>& rates_map() {
  static std::map<std::string, achieved_rate, std::less<>> r;
  return r;
}

/// EWMA weight for new observations: heavy enough that a device slowing
/// down mid-run shifts its rate within a couple of launches, light enough
/// that one noisy sample does not whipsaw the shard boundaries.
constexpr double rate_alpha = 0.5;

} // namespace

void note_achieved_rate(std::string_view target, double gbps, double gflops) {
  if (gbps <= 0.0 && gflops <= 0.0) {
    return;
  }
  const std::lock_guard<std::mutex> lock(rates_mutex());
  auto& map = rates_map();
  auto it = map.find(target);
  if (it == map.end()) {
    it = map.emplace(std::string(target), achieved_rate{}).first;
  }
  achieved_rate& e = it->second;
  // Blend per component: an unhinted launch reports one rate as zero, which
  // must not decay the other component's history.
  if (gbps > 0.0) {
    e.gbps = e.gbps > 0.0 ? rate_alpha * gbps + (1.0 - rate_alpha) * e.gbps
                          : gbps;
  }
  if (gflops > 0.0) {
    e.gflops = e.gflops > 0.0
                   ? rate_alpha * gflops + (1.0 - rate_alpha) * e.gflops
                   : gflops;
  }
  ++e.samples;
}

achieved_rate achieved(std::string_view target) {
  const std::lock_guard<std::mutex> lock(rates_mutex());
  const auto& map = rates_map();
  const auto it = map.find(target);
  return it != map.end() ? it->second : achieved_rate{};
}

void clear_achieved_rates() {
  const std::lock_guard<std::mutex> lock(rates_mutex());
  rates_map().clear();
}

std::string target_for(backend b) {
  switch (b) {
  case backend::serial: return "serial";
  case backend::threads: return "threads";
  default: return model_for(b).name;
  }
}

double predict_us_measured(backend b, const workload& w) {
  const achieved_rate r = achieved(target_for(b));
  if (r.samples == 0) {
    return predict_us(b, w);
  }
  const auto& m = model_for(b);
  const double total_bytes =
      w.bytes_per_index * static_cast<double>(w.indices);
  const double total_flops =
      w.flops_per_index * static_cast<double>(w.indices);
  // GB/s == bytes/us * 1e-3, so us == bytes / (GB/s * 1e3); the slower of
  // the two measured rates bounds the kernel (roofline max rule).
  double body_us = 0.0;
  bool placed = false;
  if (total_bytes > 0.0 && r.gbps > 0.0) {
    body_us = std::max(body_us, total_bytes / (r.gbps * 1e3));
    placed = true;
  }
  if (total_flops > 0.0 && r.gflops > 0.0) {
    body_us = std::max(body_us, total_flops / (r.gflops * 1e3));
    placed = true;
  }
  if (!placed) {
    return predict_us(b, w); // measured rates say nothing about this kernel
  }
  // Fixed costs stay modeled: measurement covers the streaming body only.
  double fixed_us = b == backend::serial ? 0.1 : m.launch_overhead_us;
  if (w.is_reduce && m.kind == jaccx::sim::device_kind::gpu) {
    fixed_us += 3.0 * m.launch_overhead_us; // fills + partials kernels
    fixed_us += 2.0 * m.alloc_overhead_us;
    fixed_us += jaccx::sim::transfer_cost_us(m, sizeof(double));
  }
  return w.launches * (body_us + fixed_us);
}

backend auto_select_measured(const workload& w) {
  backend best = backend::cpu_rome;
  double best_us = std::numeric_limits<double>::infinity();
  for (backend b : auto_candidates()) {
    const double us = predict_us_measured(b, w);
    if (us < best_us) {
      best_us = us;
      best = b;
    }
  }
  return best;
}

void install_rate_feedback() {
  jaccx::prof::register_rate_sink(
      [](std::string_view target, std::string_view, double gbps,
         double gflops) { note_achieved_rate(target, gbps, gflops); });
}

} // namespace jacc
