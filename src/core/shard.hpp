// jacc::shard — the auto-sharding execution engine (docs/SHARDING.md).
//
// When a device_set_scope is live, the synchronous parallel_for /
// parallel_reduce front ends route here instead of the single-device
// bodies: every sharded array argument is brought up to date with the
// set's plan (reshard / halo growth), halos are exchanged asynchronously
// on the per-shard streams when the launch declares a stencil radius, and
// the kernel then runs once per device over that device's contiguous chunk
// of the slowest dimension — with GLOBAL indices, the runtime applying the
// shard offset.  After each launch the set records the device's measured
// throughput, and the plan rebalances between launches when the measured
// imbalance exceeds the threshold.
//
// NOT a standalone header: parallel_for.hpp includes it after the
// launch-config helpers (gpu_config_*) it reuses, and parallel_reduce.hpp
// builds the sharded reduction on the same visitors.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/array.hpp"
#include "core/device_set.hpp"
#include "core/launch_desc.hpp"
#include "sim/launch.hpp"
#include "sim/stream.hpp"
#include "support/error.hpp"

namespace jacc::detail {

/// Any jacc array shape (1/2/3-D), via the tag base — so the catch-all
/// below cannot out-compete a derived-to-base match.
template <class A>
concept shardable_array =
    std::is_base_of_v<array_marker, std::remove_cvref_t<A>>;

// --- per-argument visitors: arrays participate, everything else passes ------
// Kernels take arrays by const& (the programming model writes elements
// through const arrays via element_ref already), so the visitors strip
// const here: plan currency, ghost refresh and piece binding are runtime
// bookkeeping, not logical mutation of the array's value.

template <class A>
decltype(auto) shard_mutable(A& a) {
  return const_cast<std::remove_cvref_t<A>&>(a);
}

template <class A>
void shard_prepare_arg(device_set& ds, index_t radius, A& a) {
  if constexpr (shardable_array<A>) {
    auto& m = shard_mutable(a);
    if (!m.is_sharded()) {
      jaccx::throw_usage_error(
          "arrays used inside a device_set scope must use sharded "
          "placement (jacc::sharded) so every device owns its chunk");
    }
    if (m.shard_set() != &ds) {
      jaccx::throw_usage_error(
          "sharded array belongs to a different device_set than the "
          "active scope");
    }
    m.shard_sync(radius);
  } else {
    (void)ds;
    (void)radius;
    (void)a;
  }
}

template <class A>
void shard_halo_arg(index_t radius, std::uint64_t* boundary_bytes, A& a) {
  if constexpr (shardable_array<A>) {
    shard_mutable(a).shard_halo_async(radius, boundary_bytes);
  } else {
    (void)radius;
    (void)boundary_bytes;
    (void)a;
  }
}

template <class A>
void shard_bind_arg(int d, A& a) {
  if constexpr (shardable_array<A>) {
    shard_mutable(a).shard_bind(d);
  } else {
    (void)d;
    (void)a;
  }
}

template <class A>
void shard_unbind_arg(A& a) {
  if constexpr (shardable_array<A>) {
    shard_mutable(a).shard_unbind();
  } else {
    (void)a;
  }
}

/// The launch-wide preamble shared by for and reduce: plan/halo currency
/// for every array argument, then the async exchange when a stencil is
/// declared.  Returns the stencil radius.
///
/// Halo cost model (docs/MODEL.md): the ghost traffic of EVERY array in
/// the launch is packed into one message per neighbour pair — the way a
/// tuned stencil code batches all its fields into a single exchange — and
/// the pair's full-duplex hop is charged once per side on the shard
/// streams (the left shard's stream pays the send as d2h, the right
/// shard's stream pays the receive as h2d; the opposite direction rides
/// the same overlapped step, exactly like dist::exchange).  Per-transfer
/// fixed latency is therefore paid once per boundary per launch, not once
/// per array per direction.
template <class... Args>
index_t shard_stage_args(device_set& ds, const hints& h, Args&... args) {
  const index_t radius = h.stencil_radius;
  (shard_prepare_arg(ds, radius, args), ...);
  if (radius > 0 && ds.devices() > 1) {
    std::vector<std::uint64_t> boundary_bytes(
        static_cast<std::size_t>(ds.devices() - 1), 0);
    (shard_halo_arg(radius, boundary_bytes.data(), args), ...);
    for (int d = 0; d + 1 < ds.devices(); ++d) {
      const std::uint64_t bytes =
          boundary_bytes[static_cast<std::size_t>(d)];
      if (bytes == 0) {
        continue;
      }
      {
        const jaccx::sim::stream_scope on(ds.shard_stream(d));
        ds.dev(d).charge_d2h(bytes, "shard.halo");
      }
      {
        const jaccx::sim::stream_scope on(ds.shard_stream(d + 1));
        ds.dev(d + 1).charge_h2d(bytes, "shard.halo");
      }
    }
  }
  return radius;
}

/// Sharded parallel_for body.  One prof scope covers the whole launch; the
/// per-device loop chunks the slowest launch dimension under the set's
/// current weights, binds every array to its local piece, waits for that
/// device's halo stream when ghosts were exchanged, and launches with
/// global indices.  Devices advance concurrently (each on its own clock);
/// ds.sync() is the wall-time barrier.
template <int Rank, class F, class... Args>
void shard_execute_for(device_set& ds, const launch_desc& d, F&& f,
                       Args&&... args) {
  static_assert(Rank == 1 || Rank == 2 || Rank == 3);
  const index_t radius = shard_stage_args(ds, d.h, args...);
  const index_t slow = Rank == 1 ? d.rows : Rank == 2 ? d.cols : d.depth;
  const index_t fast = Rank == 1 ? 1 : Rank == 2 ? d.rows : d.rows * d.cols;
  const jaccx::prof::kernel_scope prof_scope(
      jaccx::prof::construct::parallel_for, d.h.name,
      static_cast<std::uint64_t>(d.count()), d.h.flops_per_index,
      d.h.bytes_per_index, to_string(ds.target()));
  for (int dv = 0; dv < ds.devices(); ++dv) {
    const auto owned = ds.chunk(slow, dv);
    if (owned.empty()) {
      continue;
    }
    auto& dev = ds.dev(dv);
    if (radius > 0) {
      // The kernel may read ghosts: its device clock must not start the
      // launch before this shard's halo stream has delivered them.
      jaccx::sim::join(dev, {&ds.shard_stream(dv)});
    }
    (shard_bind_arg(dv, args), ...);
    const double t0 = dev.tl().now_us();
    const index_t local = owned.size();
    if constexpr (Rank == 1) {
      const auto cfg = gpu_config_1d(dev, local, d.h);
      jaccx::sim::launch(dev, cfg, [&](jaccx::sim::kernel_ctx& ctx) {
        const index_t li = ctx.global_x();
        if (li < local) {
          f(owned.begin + li, args...);
        }
      });
    } else if constexpr (Rank == 2) {
      const auto cfg = gpu_config_2d(d.rows, local, d.h);
      jaccx::sim::launch(dev, cfg, [&](jaccx::sim::kernel_ctx& ctx) {
        const index_t i = ctx.global_x();
        const index_t lj = ctx.global_y();
        if (i < d.rows && lj < local) {
          f(i, owned.begin + lj, args...);
        }
      });
    } else {
      const auto cfg = gpu_config_3d(dims3{d.rows, d.cols, local}, d.h);
      jaccx::sim::launch(dev, cfg, [&](jaccx::sim::kernel_ctx& ctx) {
        const index_t i = ctx.global_x();
        const index_t j = ctx.global_y();
        const index_t lk = ctx.global_z();
        if (i < d.rows && j < d.cols && lk < local) {
          f(i, j, owned.begin + lk, args...);
        }
      });
    }
    (shard_unbind_arg(args), ...);
    ds.note_launch(dv, dev.tl().now_us() - t0, local * fast, d.h);
  }
  ds.maybe_rebalance();
}

} // namespace jacc::detail
