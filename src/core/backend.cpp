#include "core/backend.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>

#include "core/auto_backend.hpp"
#include "core/fuse.hpp"
#include "core/queue.hpp"
#include "mem/pool.hpp"
#include "prof/prof.hpp"
#include "prof/tools.hpp"
#include "sim/device.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "toml/parser.hpp"
#include "toml/writer.hpp"

namespace jacc {
namespace {

std::atomic<int> g_backend{-1}; // -1: not yet initialized

backend resolve_from_preferences() {
  if (const auto env = jaccx::get_env("JACC_BACKEND")) {
    return backend_from_string(*env);
  }
  std::string path = "LocalPreferences.toml";
  if (const auto p = jaccx::get_env("JACC_PREFERENCES_FILE")) {
    path = *p;
  }
  if (std::filesystem::exists(path)) {
    const auto prefs = jaccx::toml::parse_file(path);
    if (const auto name = jaccx::toml::find_string(prefs, "JACC.backend")) {
      return backend_from_string(*name);
    }
  }
  return backend::threads; // paper Sec. III: Base.Threads is the default
}

jaccx::mem::pool_mode resolve_mem_pool() {
  if (const auto env = jaccx::get_env("JACC_MEM_POOL")) {
    if (const auto m = jaccx::mem::parse_mode(*env)) {
      return *m;
    }
    jaccx::throw_config_error("unknown JACC_MEM_POOL '" + *env +
                              "' (known: bucket, none)");
  }
  std::string path = "LocalPreferences.toml";
  if (const auto p = jaccx::get_env("JACC_PREFERENCES_FILE")) {
    path = *p;
  }
  if (std::filesystem::exists(path)) {
    const auto prefs = jaccx::toml::parse_file(path);
    if (const auto name = jaccx::toml::find_string(prefs, "JACC.mem_pool")) {
      if (const auto m = jaccx::mem::parse_mode(*name)) {
        return *m;
      }
      jaccx::throw_config_error("unknown JACC.mem_pool '" + *name +
                                "' (known: bucket, none)");
    }
  }
  return jaccx::mem::pool_mode::bucket;
}

jacc::fuse_mode resolve_fuse() {
  if (const auto env = jaccx::get_env("JACC_FUSE")) {
    if (const auto m = jacc::parse_fuse(*env)) {
      return *m;
    }
    jaccx::throw_config_error("unknown JACC_FUSE '" + *env +
                              "' (known: none, expr, graph, all)");
  }
  std::string path = "LocalPreferences.toml";
  if (const auto p = jaccx::get_env("JACC_PREFERENCES_FILE")) {
    path = *p;
  }
  if (std::filesystem::exists(path)) {
    const auto prefs = jaccx::toml::parse_file(path);
    if (const auto name = jaccx::toml::find_string(prefs, "JACC.fuse")) {
      if (const auto m = jacc::parse_fuse(*name)) {
        return *m;
      }
      jaccx::throw_config_error("unknown JACC.fuse '" + *name +
                                "' (known: none, expr, graph, all)");
    }
  }
  return jacc::fuse_mode::none;
}

// Cache cap in bytes: JACC_MEM_CAP_MB env > TOML `JACC.mem_cap_mb` > 0
// (uncapped).  0/negative disables the cap.
std::int64_t resolve_mem_cap() {
  if (const auto env = jaccx::get_env("JACC_MEM_CAP_MB")) {
    char* end = nullptr;
    const long long mb = std::strtoll(env->c_str(), &end, 10);
    if (end == env->c_str() || *end != '\0') {
      jaccx::throw_config_error("bad JACC_MEM_CAP_MB '" + *env +
                                "' (want an integer MiB count; 0 = uncapped)");
    }
    return mb > 0 ? static_cast<std::int64_t>(mb) * (1ll << 20) : 0;
  }
  std::string path = "LocalPreferences.toml";
  if (const auto p = jaccx::get_env("JACC_PREFERENCES_FILE")) {
    path = *p;
  }
  if (std::filesystem::exists(path)) {
    const auto prefs = jaccx::toml::parse_file(path);
    if (const auto mb = jaccx::toml::find_int(prefs, "JACC.mem_cap_mb")) {
      return *mb > 0 ? static_cast<std::int64_t>(*mb) * (1ll << 20) : 0;
    }
  }
  return 0;
}

} // namespace

backend backend_from_string(std::string_view name) {
  if (name == "serial") {
    return backend::serial;
  }
  if (name == "threads" || name == "Threads" || name == "base.threads") {
    return backend::threads;
  }
  if (name == "cpu_rome" || name == "rome" || name == "rome64") {
    return backend::cpu_rome;
  }
  if (name == "cuda_a100" || name == "cuda" || name == "CUDA" ||
      name == "a100") {
    return backend::cuda_a100;
  }
  if (name == "hip_mi100" || name == "amdgpu" || name == "AMDGPU" ||
      name == "hip" || name == "mi100") {
    return backend::hip_mi100;
  }
  if (name == "oneapi_max1550" || name == "oneapi" || name == "oneAPI" ||
      name == "max1550") {
    return backend::oneapi_max1550;
  }
  jaccx::throw_config_error("unknown JACC backend '" + std::string(name) +
                            "' (known: serial, threads, cpu_rome, cuda_a100, "
                            "hip_mi100, oneapi_max1550)");
}

bool is_simulated(backend b) {
  return b != backend::serial && b != backend::threads;
}

jaccx::sim::device* backend_device(backend b) {
  switch (b) {
  case backend::serial:
  case backend::threads: return nullptr;
  case backend::cpu_rome: return &jaccx::sim::get_device("rome64");
  case backend::cuda_a100: return &jaccx::sim::get_device("a100");
  case backend::hip_mi100: return &jaccx::sim::get_device("mi100");
  case backend::oneapi_max1550: return &jaccx::sim::get_device("max1550");
  }
  return nullptr;
}

void initialize() {
  g_backend.store(static_cast<int>(resolve_from_preferences()),
                  std::memory_order_release);
  jaccx::mem::set_mode(resolve_mem_pool());
  jaccx::mem::set_cache_cap(resolve_mem_cap());
  jacc::set_fuse(resolve_fuse());
  // External profiling tools (JACC_TOOLS_LIBS) attach here, before any
  // kernel can launch; the loader is idempotent across re-initialization.
  jaccx::prof::load_tools_from_env();
  // Close the measured-placement loop: prof's achieved-rate observations
  // (roofline rows, per-shard launches) land in auto_backend's registry.
  install_rate_feedback();
  // Tear down any lanes from a previous initialize/finalize cycle so the
  // lane policy (JACC_QUEUES vs. pool width) is re-read under the current
  // environment.  Surviving queue handles re-resolve on next submission.
  detail::quiesce_lanes();
}

backend current_backend() {
  int b = g_backend.load(std::memory_order_acquire);
  if (b < 0) {
    static std::once_flag once;
    // Unlike an explicit initialize(), the lazy path must not clobber a
    // mem-pool mode that was already pinned programmatically.
    std::call_once(once, [] {
      g_backend.store(static_cast<int>(resolve_from_preferences()),
                      std::memory_order_release);
      jaccx::mem::set_default_mode(resolve_mem_pool());
      jaccx::mem::set_default_cache_cap(resolve_mem_cap());
      jacc::set_default_fuse(resolve_fuse());
      jaccx::prof::load_tools_from_env();
      install_rate_feedback();
    });
    b = g_backend.load(std::memory_order_acquire);
  }
  return static_cast<backend>(b);
}

void set_backend(backend b) {
  g_backend.store(static_cast<int>(b), std::memory_order_release);
}

void save_preferences(backend b, const std::string& path) {
  jaccx::toml::table root;
  if (std::filesystem::exists(path)) {
    root = jaccx::toml::parse_file(path);
  }
  auto [it, inserted] = root.try_emplace(
      "JACC", jaccx::toml::value(std::make_shared<jaccx::toml::table>()));
  if (!it->second.is_table()) {
    jaccx::throw_config_error(
        "existing preferences file has a non-table [JACC] entry");
  }
  it->second.as_table().insert_or_assign(
      "backend", jaccx::toml::value(std::string(to_string(b))));
  jaccx::toml::write_file(root, path);
}

void finalize() {
  // Queues first: outstanding async work may still hold pool blocks, so the
  // drain/live assertions below are only meaningful once every queue is
  // quiescent.  quiesce_lanes() then drains and joins the lane dispatchers
  // themselves (asserting their deques are empty) — a lane thread that
  // outlived finalize could otherwise touch the pool after the drain.  Then
  // the profiling report, so its pool rows still show the cached bytes;
  // then return every cached block and workspace to the backing stores.
  synchronize();
  detail::quiesce_lanes();
  jaccx::prof::finalize();
  jaccx::mem::drain();
  const std::uint64_t live = jaccx::mem::live_blocks();
  if (live != 0) {
    std::fprintf(stderr,
                 "[jacc] warning: %llu jacc::array block(s) still live at "
                 "finalize (freed on release, but cannot be drained)\n",
                 static_cast<unsigned long long>(live));
  }
  JACCX_ASSERT(live == 0 && "jacc::finalize: live jacc::array blocks leaked");
}

} // namespace jacc
