// jacc::graph — capture & replay of queue DAGs (the CUDA-graph analogue
// named by the roadmap's dispatch-overhead item).
//
// The paper's overhead question (Sec. V) is what the high-level front end
// costs per launch beyond the device code itself; bench/abl_dispatch_overhead
// measures exactly that delta.  For the dominant production shape — a CG
// iteration or LBM step that is the *same* DAG a million times over — the
// per-launch answer can be "almost nothing": record the DAG once, replay it
// as a tight loop over pre-baked nodes.
//
//   jacc::queue q;
//   q.begin_capture();                  // nothing runs from here...
//   jacc::parallel_for(q, n, f, dx);    // ...nodes are recorded instead
//   auto fut = q.parallel_reduce(h, n, dot, dx, dy);
//   fut.then(q, [](double v) { ... }); // host node: scalar plumbing in-graph
//   jacc::graph g = q.end_capture();
//   for (int it = 0; it < steps; ++it) g.launch(q);   // replay
//
// Capture does the entire front-end dispatch once: capture policy
// (async_arg_t), hint resolution, launch-descriptor building, and node-name
// ownership all happen at record time.  Replay is one indirect call per
// node.  On serial/threads that skips the whole per-launch dispatch path;
// on simulated back ends replay re-runs the same charge path under the
// queue's stream, so model time is identical to eager issue.
//
// Multi-queue DAGs: jacc::capture_scope{&q1, &q2} records both queues into
// one graph, turning q2.wait(e) on a captured event into a cross-queue
// edge.  Replay honors the edges (stream-time edges on sim back ends,
// blocking dependencies across threads lanes).
//
// Instance update: jacc::binding<jacc::array<double>> / jacc::scalar_binding
// are captured like any kernel argument but hold one extra indirection, so
// g.update(b, other_array) / g.update_scalar(sb, 3.0) re-point every node
// that captured them — one recorded graph serves many inputs (the
// cudaGraphExecUpdate move).
//
// What is capturable: parallel_for (any rank), queue::parallel_reduce
// (futures), future::then host callbacks, queued array copies, and
// queue::wait edges.  Not capturable: host-blocking calls (free
// parallel_reduce(q, ...), future::get before a replay, queue::synchronize)
// — the value they would return does not exist at record time.
//
// Lifetime: a graph is a cheap shared handle; it keeps its recorded queues
// (and their mem-pool leases, e.g. future result slots) alive, so it may
// outlive every original queue handle.  Kernel arguments captured by
// reference (jacc::array lvalues) must outlive the last replay, exactly as
// for plain queued launches.  One replay of a given graph at a time;
// different graphs replay concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <utility>

#include "core/future.hpp"
#include "core/queue.hpp"
#include "support/error.hpp"

namespace jacc {

namespace detail {
struct graph_impl;
struct graph_access;
std::shared_ptr<capture_builder> capture_begin(
    std::initializer_list<queue*> qs, bool scope_owned);
graph capture_finish(std::shared_ptr<capture_builder> b);
void capture_abort(std::shared_ptr<capture_builder> b) noexcept;
} // namespace detail

/// Re-bindable array argument.  Capture it in place of a jacc::array and
/// the graph reads through one extra indirection, so graph::update can
/// re-point every node at another array without re-capturing.  Cheap shared
/// handle; the bound array must outlive replays (binding does not own it).
template <class T>
class binding {
public:
  explicit binding(T& target) : cell_(std::make_shared<T*>(&target)) {}

  /// Kernel-side access: the currently bound target.
  operator T&() const { return **cell_; }
  T& get() const { return **cell_; }

private:
  friend class graph;
  std::shared_ptr<T*> cell_;
};

/// Re-bindable scalar argument (alpha, beta, dt, ...).  Converts to T at
/// each kernel evaluation; set() stores a new value — from
/// graph::update_scalar between replays, or from a future::then host node
/// *inside* the graph (the CG alpha = rr/ps plumbing).
template <class T>
class scalar_binding {
public:
  explicit scalar_binding(T value) : cell_(std::make_shared<T>(value)) {}

  operator T() const { return *cell_; }
  T get() const { return *cell_; }

  /// Stores a new value.  Ordering during replay follows node order: a
  /// host node's set() is visible to every node recorded after it.
  void set(T value) const { *cell_ = value; }

private:
  std::shared_ptr<T> cell_;
};

/// An immutable, replayable recording of one or more queues' submissions.
/// Cheap shared handle (copy = same graph).
class graph {
public:
  graph() = default;

  /// True when this handle refers to a finished capture.
  bool valid() const { return impl_ != nullptr; }

  /// Number of recorded nodes (kernels + copies + host callbacks + waits).
  std::size_t node_count() const;

  /// How many times this graph has been launched.
  std::uint64_t replays() const;

  /// Replays the whole DAG on the queues it was recorded from.  Returns
  /// the completion handle of the primary (first-captured) queue's chain;
  /// as with eager enqueues it completes immediately on sim back ends and
  /// when the lane chains finish on threads.  The current backend must be
  /// the one the capture recorded under (descriptors and lane routing were
  /// pre-resolved for it).
  event launch();

  /// Replays with `q` substituted for the primary captured queue (launch
  /// onto a different stream, CUDA-graph style).  Secondary captured
  /// queues are always replayed as themselves.
  event launch(queue& q);

  /// Re-points `b` at `target` for subsequent launches.
  template <class T>
  void update(const binding<T>& b, T& target) const {
    JACCX_ASSERT(impl_ != nullptr && "update on an empty jacc::graph");
    *b.cell_ = &target;
  }

  /// Stores a new scalar for subsequent launches.
  template <class T>
  void update_scalar(const scalar_binding<T>& b, T value) const {
    JACCX_ASSERT(impl_ != nullptr && "update_scalar on an empty jacc::graph");
    b.set(value);
  }

private:
  friend struct detail::graph_access;
  explicit graph(std::shared_ptr<detail::graph_impl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<detail::graph_impl> impl_;
};

/// Multi-queue capture: records every listed queue into one graph, so
/// cross-queue q.wait(event) calls become graph edges.  The first queue is
/// the primary (graph::launch(q) substitutes it).  end() must be called
/// exactly once; a scope destroyed without end() aborts the capture and
/// discards the recorded nodes.
class capture_scope {
public:
  explicit capture_scope(std::initializer_list<queue*> qs)
      : builder_(detail::capture_begin(qs, /*scope_owned=*/true)) {}
  ~capture_scope() {
    if (builder_ != nullptr) {
      detail::capture_abort(std::move(builder_));
    }
  }
  capture_scope(const capture_scope&) = delete;
  capture_scope& operator=(const capture_scope&) = delete;

  /// Finishes recording on every queue and returns the graph.
  graph end() {
    if (builder_ == nullptr) {
      jaccx::throw_usage_error("capture_scope::end called twice");
    }
    return detail::capture_finish(std::move(builder_));
  }

private:
  std::shared_ptr<detail::capture_builder> builder_;
};

namespace detail {

/// Internal bridge: graph.cpp mints graphs and reaches the impl.
struct graph_access {
  static graph make(std::shared_ptr<graph_impl> impl) {
    return graph(std::move(impl));
  }
  static graph_impl* impl(const graph& g) { return g.impl_.get(); }
};

} // namespace detail

// future::then lives here (not future.hpp) because it needs the queue and
// host-enqueue machinery; jacc.hpp includes everything, so user code sees
// it wherever futures are usable.
template <class T>
template <class Fn>
event future<T>::then(queue& q, Fn&& fn) const {
  JACCX_ASSERT(st_ != nullptr && "then() on an empty jacc::future");
  // Order the callback after the reduction.  Within one queue this is
  // already submission order; across queues (or inside a capture) it is a
  // real edge.
  q.wait(st_->e);
  return detail::enqueue_host(
      q, "jacc.future.then",
      [st = st_, fn = std::decay_t<Fn>(std::forward<Fn>(fn))](
          jaccx::pool::thread_pool*) mutable { fn(*st->value()); });
}

} // namespace jacc
