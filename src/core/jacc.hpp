// Umbrella header for the JACC-CXX programming model.
//
// Mirrors the paper's front end (Fig. 2):
//
//   #include "core/jacc.hpp"
//
//   void axpy(jacc::index_t i, double alpha,
//             const jacc::array<double>& x, const jacc::array<double>& y);
//
//   jacc::array<double> dx(x), dy(y);
//   jacc::parallel_for(n, axpy, alpha, dx, dy);
//   double res = jacc::parallel_reduce(n, dot, dx, dy);
//
// The backend is chosen at configuration time (JACC_BACKEND env var or
// LocalPreferences.toml) — never in application code.
#pragma once

#include "core/array.hpp"          // IWYU pragma: export
#include "core/backend.hpp"        // IWYU pragma: export
#include "core/device_set.hpp"     // IWYU pragma: export
#include "core/event.hpp"          // IWYU pragma: export
#include "core/expr.hpp"           // IWYU pragma: export
#include "core/fuse.hpp"           // IWYU pragma: export
#include "core/graph.hpp"          // IWYU pragma: export
#include "core/parallel_for.hpp"   // IWYU pragma: export
#include "core/parallel_reduce.hpp"// IWYU pragma: export
#include "core/queue.hpp"          // IWYU pragma: export
#include "core/scratch.hpp"        // IWYU pragma: export
