#include "core/fuse.hpp"

#include <atomic>

#include "support/env.hpp"

namespace jacc {
namespace {

// -1: unresolved (first fuse() query reads JACC_FUSE); >= 0: a fuse_mode.
std::atomic<int> g_fuse{-1};
// Set once an explicit set_fuse() happens, so set_default_fuse (the lazy
// current_backend path) cannot clobber a programmatic pin.
std::atomic<bool> g_fuse_pinned{false};

int resolve_from_env() {
  if (const auto env = jaccx::get_env("JACC_FUSE")) {
    if (const auto m = parse_fuse(*env)) {
      return static_cast<int>(*m);
    }
    // The lazy path must not throw from arbitrary call sites; initialize()
    // re-resolves with a throwing parse (backend.cpp) so misconfiguration
    // is still surfaced on the explicit path.
  }
  return static_cast<int>(fuse_mode::none);
}

} // namespace

std::optional<fuse_mode> parse_fuse(std::string_view name) {
  if (name == "none" || name == "off" || name == "0") {
    return fuse_mode::none;
  }
  if (name == "expr") {
    return fuse_mode::expr;
  }
  if (name == "graph") {
    return fuse_mode::graph;
  }
  if (name == "all" || name == "on" || name == "1") {
    return fuse_mode::all;
  }
  return std::nullopt;
}

std::string_view to_string(fuse_mode m) {
  switch (m) {
  case fuse_mode::none: return "none";
  case fuse_mode::expr: return "expr";
  case fuse_mode::graph: return "graph";
  case fuse_mode::all: return "all";
  }
  return "none";
}

fuse_mode fuse() {
  int m = g_fuse.load(std::memory_order_acquire);
  if (m < 0) {
    int expected = -1;
    g_fuse.compare_exchange_strong(expected, resolve_from_env(),
                                   std::memory_order_acq_rel);
    m = g_fuse.load(std::memory_order_acquire);
  }
  return static_cast<fuse_mode>(m);
}

void set_fuse(fuse_mode m) {
  g_fuse_pinned.store(true, std::memory_order_release);
  g_fuse.store(static_cast<int>(m), std::memory_order_release);
}

void set_default_fuse(fuse_mode m) {
  if (!g_fuse_pinned.load(std::memory_order_acquire)) {
    g_fuse.store(static_cast<int>(m), std::memory_order_release);
  }
}

namespace detail {

double fused_hint_bytes(const std::vector<fuse_footprint>& fps) {
  double bytes = 0.0;
  for (std::size_t i = 0; i < fps.size(); ++i) {
    // First occurrence of this pointer owns the charge; later mentions of
    // the same array only widen the direction set.
    bool first = true;
    for (std::size_t j = 0; j < i; ++j) {
      if (fps[j].ptr == fps[i].ptr) {
        first = false;
        break;
      }
    }
    if (!first) {
      continue;
    }
    bool r = false;
    bool w = false;
    for (std::size_t j = i; j < fps.size(); ++j) {
      if (fps[j].ptr == fps[i].ptr) {
        r = r || fps[j].read;
        w = w || fps[j].write;
      }
    }
    bytes += fps[i].elem_bytes * ((r ? 1.0 : 0.0) + (w ? 1.0 : 0.0));
  }
  return bytes;
}

} // namespace detail
} // namespace jacc
