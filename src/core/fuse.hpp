// Kernel-fusion policy and the shared fused-kernel payload shape.
//
// JACC fuses at two levels (docs/FUSION.md):
//   * expr  — the lazy expression layer (core/expr.hpp) collapses an
//             elementwise statement chain into ONE parallel_for at the
//             call site (jacc_blas.cpp, cg solver hot chains).
//   * graph — a post-capture peephole pass (core/graph.cpp) merges
//             adjacent fusable kernel nodes of a captured DAG into one
//             pre-baked node, so replays launch the fused chain.
//
// Selection is `JACC_FUSE=none|expr|graph|all` (env > TOML `JACC.fuse`,
// resolved at initialize(); lazily from the env on first query otherwise).
// The default is `none`: fusion is opt-in and `none` reproduces the seed's
// launch sequence and sim charges bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "core/launch_desc.hpp"

namespace jacc {

/// Bitmask: expr = bit 0, graph = bit 1.
enum class fuse_mode : int { none = 0, expr = 1, graph = 2, all = 3 };

/// "none" / "expr" / "graph" / "all" (also "off"/"0" for none, "1"/"on"
/// for all).  nullopt on anything else.
std::optional<fuse_mode> parse_fuse(std::string_view name);
std::string_view to_string(fuse_mode m);

/// Current fusion policy.  Resolved lazily from JACC_FUSE on first query
/// when neither initialize() nor set_fuse() ran first.
fuse_mode fuse();

/// Pins the policy programmatically (initialize() calls this with the
/// env/TOML resolution; tests use scoped_fuse).
void set_fuse(fuse_mode m);

/// Like set_fuse, but only takes effect if no explicit set_fuse happened
/// yet — the lazy current_backend() path uses this so it cannot clobber a
/// programmatic pin.
void set_default_fuse(fuse_mode m);

/// Whether the expression layer may fuse statement chains.
inline bool fuse_expr() {
  return (static_cast<int>(fuse()) & static_cast<int>(fuse_mode::expr)) != 0;
}

/// Whether the graph peephole fuser runs at capture-finish.
inline bool fuse_graph() {
  return (static_cast<int>(fuse()) & static_cast<int>(fuse_mode::graph)) != 0;
}

/// RAII pin for tests and ablation benches.
class scoped_fuse {
public:
  explicit scoped_fuse(fuse_mode m) : saved_(fuse()) { set_fuse(m); }
  ~scoped_fuse() { set_fuse(saved_); }
  scoped_fuse(const scoped_fuse&) = delete;
  scoped_fuse& operator=(const scoped_fuse&) = delete;

private:
  fuse_mode saved_;
};

namespace detail {

/// One array touched by a fusable kernel: its footprint pointer (the host
/// mirror address identifies the array uniquely regardless of backend),
/// the element width, and the access mode.  The fused hint model charges
/// each distinct array once per direction, so a vector read by two fused
/// operands counts 8 bytes, not 16 (MODEL.md, "Fused charges").
struct fuse_footprint {
  const void* ptr = nullptr;
  double elem_bytes = 0.0;
  bool read = false;
  bool write = false;
};

/// Side payload a 1D elementwise capture attaches to its graph node: the
/// index count, the accounting hints, the arrays it touches, and a
/// per-index body that runs the kernel for exactly one index.  The graph
/// fuser concatenates per_index bodies of adjacent fusable nodes into one
/// launch.
struct fusable_kernel {
  index_t n = 0;
  double flops_per_index = 0.0;
  std::vector<fuse_footprint> footprints;
  std::function<void(index_t)> per_index;
};

/// Deduplicated bytes-per-index over a fused footprint set: each distinct
/// array pointer is charged elem_bytes once per direction it is accessed
/// (read and write count separately, matching the eager hint convention
/// where an RW vector contributes 16 bytes).
double fused_hint_bytes(const std::vector<fuse_footprint>& fps);

} // namespace detail
} // namespace jacc
