// jacc::array — the JACC.Array analogue (paper Sec. III).
//
// JACC.Array is the unified, backend-transparent memory type: on
// Base.Threads it is a plain Julia Array, on CUDA a CuArray, and so on, and
// constructing one from host data performs the host->device copy.  Here:
//
//   * under the real back ends (serial/threads) an array is plain aligned
//     host memory with zero-overhead access;
//   * under a simulated back end the array is bound to that backend's device
//     at construction (charging allocation + H2D), and every element access
//     made while a kernel is running is routed through the device's cache
//     model via a proxy reference.
//
// An array is bound to the backend that was current when it was built,
// mirroring how a CuArray cannot be consumed by an AMDGPU kernel.
#pragma once

#include <initializer_list>
#include <vector>

#include "core/backend.hpp"
#include "prof/prof.hpp"
#include "sim/device.hpp"
#include "support/aligned_buffer.hpp"
#include "support/span2d.hpp"

namespace jacc {

using jaccx::index_t;

namespace detail {

/// Tracked-when-simulated element reference.  Converting to T counts a
/// read, assigning counts a write; with a null device it degrades to a plain
/// load/store the optimizer sees through.
template <class T>
class element_ref {
public:
  element_ref(T* p, jaccx::sim::device* dev) : p_(p), dev_(dev) {}

  operator T() const {
    if (dev_ != nullptr) {
      dev_->track(p_, sizeof(T));
    }
    return *p_;
  }

  T operator=(T v) const {
    if (dev_ != nullptr) {
      dev_->track(p_, sizeof(T));
    }
    *p_ = v;
    return v;
  }

  T operator=(const element_ref& o) const { return *this = static_cast<T>(o); }

  T operator+=(T v) const { return *this = static_cast<T>(*this) + v; }
  T operator-=(T v) const { return *this = static_cast<T>(*this) - v; }
  T operator*=(T v) const { return *this = static_cast<T>(*this) * v; }
  T operator/=(T v) const { return *this = static_cast<T>(*this) / v; }

private:
  T* p_;
  jaccx::sim::device* dev_;
};

/// Storage + device binding shared by the 1/2/3-D array shapes.
template <class T>
class array_base {
public:
  explicit array_base(index_t count)
      : dev_(backend_device(current_backend())) {
    acquire(count);
    for (index_t i = 0; i < count; ++i) {
      data_[i] = T{};
    }
    if (dev_ != nullptr) {
      dev_->charge_alloc(bytes(), "jacc.array");
    }
    if (jaccx::prof::enabled()) [[unlikely]] {
      jaccx::prof::note_alloc("jacc.array", bytes());
    }
  }

  array_base(const T* host, index_t count)
      : dev_(backend_device(current_backend())) {
    acquire(count);
    for (index_t i = 0; i < count; ++i) {
      data_[i] = host[i];
    }
    if (dev_ != nullptr) {
      dev_->charge_alloc(bytes(), "jacc.array");
      dev_->charge_h2d(bytes(), "jacc.array");
    }
    if (jaccx::prof::enabled()) [[unlikely]] {
      jaccx::prof::note_alloc("jacc.array", bytes());
      jaccx::prof::note_copy("jacc.array", /*to_device=*/true, bytes());
    }
  }

  array_base(const array_base&) = delete;
  array_base& operator=(const array_base&) = delete;
  array_base(array_base&& other) noexcept
      : dev_(std::exchange(other.dev_, nullptr)),
        host_buf_(std::move(other.host_buf_)),
        data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)) {}
  array_base& operator=(array_base&& other) noexcept {
    if (this != &other) {
      release();
      dev_ = std::exchange(other.dev_, nullptr);
      host_buf_ = std::move(other.host_buf_);
      data_ = std::exchange(other.data_, nullptr);
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }
  ~array_base() { release(); }

  index_t size() const { return count_; }
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(count_) * sizeof(T);
  }
  jaccx::sim::device* device() const { return dev_; }
  bool is_simulated() const { return dev_ != nullptr; }

  /// Copies the contents back to host storage; on a simulated GPU this
  /// charges the D2H transfer (the semantic path for results).
  void copy_to_host(T* dst) const {
    for (index_t i = 0; i < count_; ++i) {
      dst[i] = data_[i];
    }
    if (dev_ != nullptr) {
      dev_->charge_d2h(bytes(), "jacc.array");
    }
    if (jaccx::prof::enabled()) [[unlikely]] {
      jaccx::prof::note_copy("jacc.array", /*to_device=*/false, bytes());
    }
  }

  std::vector<T> to_host() const {
    std::vector<T> out(static_cast<std::size_t>(count_));
    copy_to_host(out.data());
    return out;
  }

  /// Untracked, uncharged debug access for test assertions; not part of the
  /// portable programming model.
  const T* host_data() const { return data_; }
  T* host_data() { return data_; }

protected:
  element_ref<T> ref(index_t linear) const {
    JACCX_ASSERT(linear >= 0 && linear < count_);
    return element_ref<T>(data_ + linear, dev_);
  }

private:
  /// Storage: simulated back ends draw from the device's deterministic
  /// arena (so cache-model conflicts are reproducible); real back ends use
  /// plain aligned host memory.
  void acquire(index_t count) {
    JACCX_ASSERT(count >= 0);
    count_ = count;
    if (dev_ != nullptr) {
      data_ = static_cast<T*>(
          dev_->arena_allocate(static_cast<std::size_t>(count) * sizeof(T)));
    } else {
      host_buf_ = jaccx::aligned_buffer<T>(static_cast<std::size_t>(count));
      data_ = host_buf_.data();
    }
  }

  void release() noexcept {
    if (dev_ != nullptr) {
      dev_->charge_free(bytes());
      dev_->arena_release();
    }
    if (data_ != nullptr && jaccx::prof::enabled()) [[unlikely]] {
      jaccx::prof::note_free(bytes());
    }
    dev_ = nullptr;
    data_ = nullptr;
    count_ = 0;
  }

  jaccx::sim::device* dev_ = nullptr;
  jaccx::aligned_buffer<T> host_buf_; ///< backing store for real back ends
  T* data_ = nullptr;
  index_t count_ = 0;
};

} // namespace detail

/// 1D JACC array; `dx = JACC.Array(x)` becomes `jacc::array<double> dx(x)`.
template <class T>
class array : public detail::array_base<T> {
public:
  using base = detail::array_base<T>;

  /// Zero-initialized array of n elements.
  explicit array(index_t n) : base(n) {}
  /// Host -> device construction (charges H2D under simulated back ends).
  array(const T* host, index_t n) : base(host, n) {}
  explicit array(const std::vector<T>& host)
      : base(host.data(), static_cast<index_t>(host.size())) {}
  array(std::initializer_list<T> init)
      : base(init.begin(), static_cast<index_t>(init.size())) {}

  detail::element_ref<T> operator[](index_t i) const { return this->ref(i); }
};

/// 2D JACC array, column-major like Julia: (i, j) with i fastest.
template <class T>
class array2d : public detail::array_base<T> {
public:
  using base = detail::array_base<T>;

  array2d(index_t rows, index_t cols) : base(rows * cols), rows_(rows),
                                        cols_(cols) {}
  /// Host data interpreted column-major.
  array2d(const T* host, index_t rows, index_t cols)
      : base(host, rows * cols), rows_(rows), cols_(cols) {}
  array2d(const std::vector<T>& host, index_t rows, index_t cols)
      : base(host.data(), rows * cols), rows_(rows), cols_(cols) {
    JACCX_ASSERT(static_cast<index_t>(host.size()) == rows * cols);
  }

  detail::element_ref<T> operator()(index_t i, index_t j) const {
    JACCX_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return this->ref(i + j * rows_);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

private:
  index_t rows_ = 0;
  index_t cols_ = 0;
};

/// 3D JACC array, column-major: (i, j, k) with i fastest.
template <class T>
class array3d : public detail::array_base<T> {
public:
  using base = detail::array_base<T>;

  array3d(index_t rows, index_t cols, index_t depth)
      : base(rows * cols * depth), rows_(rows), cols_(cols), depth_(depth) {}
  array3d(const T* host, index_t rows, index_t cols, index_t depth)
      : base(host, rows * cols * depth), rows_(rows), cols_(cols),
        depth_(depth) {}

  detail::element_ref<T> operator()(index_t i, index_t j, index_t k) const {
    JACCX_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_ && k >= 0 &&
                 k < depth_);
    return this->ref(i + rows_ * (j + cols_ * k));
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t depth() const { return depth_; }

private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t depth_ = 0;
};

} // namespace jacc
