// jacc::array — the JACC.Array analogue (paper Sec. III).
//
// JACC.Array is the unified, backend-transparent memory type: on
// Base.Threads it is a plain Julia Array, on CUDA a CuArray, and so on, and
// constructing one from host data performs the host->device copy.  Here:
//
//   * under the real back ends (serial/threads) an array is plain aligned
//     host memory with zero-overhead access;
//   * under a simulated back end the array is bound to that backend's device
//     at construction (charging allocation + H2D), and every element access
//     made while a kernel is running is routed through the device's cache
//     model via a proxy reference.
//
// An array is bound to the backend that was current when it was built,
// mirroring how a CuArray cannot be consumed by an AMDGPU kernel.
#pragma once

#include <algorithm>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/backend.hpp"
#include "core/device_set.hpp"
#include "core/event.hpp"
#include "core/queue.hpp"
#include "mem/pool.hpp"
#include "mem/typed_buffer.hpp"
#include "prof/prof.hpp"
#include "sim/device.hpp"
#include "support/aligned_buffer.hpp"
#include "support/span2d.hpp"
#include "threadpool/thread_pool.hpp"

namespace jacc {

using jaccx::index_t;

/// Tag selecting uninitialized construction — the CuArray{T}(undef, n)
/// analogue: storage is acquired (and charged) but not filled, so every
/// element must be written before it is read.  Pairs with the caching
/// allocator: recycled scratch need not be zeroed just to be overwritten.
struct uninit_t {
  explicit uninit_t() = default;
};
inline constexpr uninit_t uninit{};

/// Placement tag selecting sharded construction: the array's storage is
/// split contiguously across a device_set's devices along its slowest
/// dimension (docs/SHARDING.md).  `jacc::array<double> a(jacc::sharded(ds),
/// n)` replaces the deprecated `jaccx::multi::marray`.
struct sharded_t {
  device_set* set = nullptr;
};
inline sharded_t sharded(device_set& ds) { return sharded_t{&ds}; }

namespace detail {

/// Host arrays at or above this size zero-fill / copy through the PR-1
/// worker pool on the threads back end, so pages are first-touched by the
/// workers that will process them (NUMA first-touch placement).
inline constexpr std::uint64_t parallel_init_min_bytes = 256u * 1024u;

} // namespace detail

namespace detail {

/// Tracked-when-simulated element reference.  Converting to T counts a
/// read, assigning counts a write; with a null device it degrades to a plain
/// load/store the optimizer sees through.
template <class T>
class element_ref {
public:
  element_ref(T* p, jaccx::sim::device* dev) : p_(p), dev_(dev) {}

  operator T() const {
    if (dev_ != nullptr) {
      dev_->track(p_, sizeof(T));
    }
    return *p_;
  }

  T operator=(T v) const {
    if (dev_ != nullptr) {
      dev_->track(p_, sizeof(T));
    }
    *p_ = v;
    return v;
  }

  T operator=(const element_ref& o) const { return *this = static_cast<T>(o); }

  T operator+=(T v) const { return *this = static_cast<T>(*this) + v; }
  T operator-=(T v) const { return *this = static_cast<T>(*this) - v; }
  T operator*=(T v) const { return *this = static_cast<T>(*this) * v; }
  T operator/=(T v) const { return *this = static_cast<T>(*this) / v; }

private:
  T* p_;
  jaccx::sim::device* dev_;
};

/// Tag base marking every jacc array shape, so the sharding layer's
/// argument visitors can constrain on "is a jacc array" without naming the
/// template (a generic catch-all overload would otherwise win resolution
/// against a derived-to-base conversion).
struct array_marker {};

/// One device's slice of a sharded array: the owned linear element range
/// [lo, hi) plus `ghost` slow-units of halo on each side, all in one
/// pool-backed buffer laid out [left ghost | owned | right ghost].
template <class T>
struct shard_piece {
  jaccx::mem::pooled_buffer<T> buf;
  index_t lo = 0; ///< first owned linear element
  index_t hi = 0; ///< one past the last owned linear element
};

/// Decomposition state of a sharded array.  Ownership is along the slowest
/// dimension (1D: i, 2D: j, 3D: k), so every piece is a contiguous linear
/// element range and the same machinery serves every rank.
template <class T>
struct shard_state {
  device_set* set = nullptr;
  index_t slow_extent = 0; ///< extent of the partitioned dimension
  index_t slow_stride = 1; ///< elements per slow unit (1, rows, rows*cols)
  index_t ghost = 0;       ///< halo width per side, in slow units
  std::uint64_t generation = 0; ///< the set's plan this layout was built for
  int bound = -1; ///< piece routing kernel access, -1 = host-side mode
  std::vector<shard_piece<T>> pieces;
};

/// Storage + device binding shared by the 1/2/3-D array shapes.
template <class T>
class array_base : public array_marker {
public:
  explicit array_base(index_t count)
      : dev_(backend_device(current_backend())) {
    acquire(count);
    fill_default();
    note_construct(/*h2d=*/false);
  }

  array_base(const T* host, index_t count)
      : dev_(backend_device(current_backend())) {
    acquire(count);
    copy_in(host);
    if (dev_ != nullptr) {
      dev_->charge_h2d(bytes(), "jacc.array");
    }
    note_construct(/*h2d=*/true);
  }

  array_base(uninit_t, index_t count)
      : dev_(backend_device(current_backend())) {
    acquire(count);
    note_construct(/*h2d=*/false);
  }

  /// Sharded construction: storage splits across `ds` along the slowest
  /// dimension under the set's current weights.  `host` may be null
  /// (zero-initialized); otherwise each device is charged the H2D of its
  /// own shard.
  array_base(device_set& ds, const T* host, index_t count,
             index_t slow_extent, index_t slow_stride) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "sharded arrays move shards with memcpy");
    JACCX_ASSERT(count >= 0 && slow_stride > 0 &&
                 count == slow_extent * slow_stride);
    count_ = count;
    shard_ = std::make_unique<shard_state<T>>();
    auto& st = *shard_;
    st.set = &ds;
    st.slow_extent = slow_extent;
    st.slow_stride = slow_stride;
    st.generation = ds.plan_generation();
    st.pieces = shard_make_pieces(0);
    for (auto& p : st.pieces) {
      if (host != nullptr) {
        if (p.hi > p.lo) {
          const auto b =
              static_cast<std::uint64_t>(p.hi - p.lo) * sizeof(T);
          std::memcpy(p.buf.data(), host + p.lo,
                      static_cast<std::size_t>(b));
          p.buf.owner()->charge_h2d(b, "shard.scatter");
        }
      } else {
        p.buf.fill_untracked(T{});
      }
    }
    note_construct(/*h2d=*/host != nullptr);
  }

  array_base(const array_base&) = delete;
  array_base& operator=(const array_base&) = delete;
  array_base(array_base&& other) noexcept
      : dev_(std::exchange(other.dev_, nullptr)),
        blk_(std::exchange(other.blk_, jaccx::mem::block{})),
        data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)),
        shard_(std::move(other.shard_)) {}
  array_base& operator=(array_base&& other) noexcept {
    if (this != &other) {
      release();
      dev_ = std::exchange(other.dev_, nullptr);
      blk_ = std::exchange(other.blk_, jaccx::mem::block{});
      data_ = std::exchange(other.data_, nullptr);
      count_ = std::exchange(other.count_, 0);
      shard_ = std::move(other.shard_);
    }
    return *this;
  }
  ~array_base() { release(); }

  index_t size() const { return count_; }
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(count_) * sizeof(T);
  }
  jaccx::sim::device* device() const { return dev_; }
  bool is_simulated() const { return dev_ != nullptr; }

  /// Copies the contents back to host storage; on a simulated GPU this
  /// charges the D2H transfer (the semantic path for results).  Large
  /// host arrays on the threads back end copy out through the worker pool
  /// in parallel chunks, mirroring the copy-in path.
  void copy_to_host(T* dst) const { copy_out(dst, nullptr); }

  /// Overwrites the contents from host storage; on a simulated GPU this
  /// charges the H2D transfer — the post-construction update path
  /// (`copyto!(JACC.Array, host)`), symmetric with copy_to_host.
  void copy_from_host(const T* src) { copy_in_full(src, nullptr); }

  /// Queued copies: enqueued on `q`, returning the completion event.  On
  /// the default queue these are exactly the synchronous copies above.
  /// `dst`/`src` must stay valid until the event completes.
  event copy_to_host(queue& q, T* dst) const {
    return detail::enqueue_common(
        q, current_backend(), /*is_copy=*/true, "jacc.array.d2h",
        [this, dst](jaccx::pool::thread_pool* pl) { copy_out(dst, pl); });
  }
  event copy_from_host(queue& q, const T* src) {
    return detail::enqueue_common(
        q, current_backend(), /*is_copy=*/true, "jacc.array.h2d",
        [this, src](jaccx::pool::thread_pool* pl) { copy_in_full(src, pl); });
  }

  std::vector<T> to_host() const {
    std::vector<T> out(static_cast<std::size_t>(count_));
    copy_to_host(out.data());
    return out;
  }

  /// Untracked, uncharged debug access for test assertions; not part of the
  /// portable programming model.
  const T* host_data() const { return data_; }
  T* host_data() { return data_; }

  /// Tracked access by linear (column-major) index, valid for every rank —
  /// the expression layer's element hook (core/expr.hpp): a leaf over any
  /// array shape reads/writes through this so fused evaluation charges the
  /// cache model exactly like the per-element kernels it replaces.
  element_ref<T> flat(index_t i) const { return this->ref(i); }

  // --- sharding hooks (core/shard.hpp drives these; not user API) -----------

  bool is_sharded() const { return shard_ != nullptr; }
  device_set* shard_set() const {
    return shard_ != nullptr ? shard_->set : nullptr;
  }
  index_t shard_ghost() const { return shard_->ghost; }
  index_t shard_slow_extent() const { return shard_->slow_extent; }

  /// Brings the layout up to date before a launch: re-shards when the set's
  /// plan moved since this array was built (owner-changing cells are
  /// charged as device-to-device hops, "shard.reshard"), and grows the
  /// ghost capacity when a launch declares a wider stencil than any before.
  void shard_sync(index_t radius) {
    JACCX_ASSERT(shard_ != nullptr && radius >= 0);
    auto& st = *shard_;
    if (st.generation != st.set->plan_generation()) {
      shard_replan(radius);
    } else if (radius > st.ghost) {
      shard_regrow(radius);
    }
  }

  /// Routes kernel access to piece d: every ref() must then fall inside
  /// d's owned range extended by the ghost capacity.
  void shard_bind(int d) {
    JACCX_ASSERT(shard_ != nullptr && d >= 0 &&
                 d < static_cast<int>(shard_->pieces.size()));
    shard_->bound = d;
  }
  void shard_unbind() {
    JACCX_ASSERT(shard_ != nullptr);
    shard_->bound = -1;
  }

  /// Exchanges `radius` slow-units of boundary cells between neighbouring
  /// pieces on the set's per-shard streams — data movement now, the four
  /// transfer charges per boundary on the two adjacent streams, exactly
  /// like the deprecated marray::exchange_halos_async.
  /// Moves this array's boundary cells into the neighbouring pieces' ghosts
  /// (both directions) and accumulates the per-boundary one-direction
  /// payload into `boundary_bytes[d]` (size devices()-1).  No time is
  /// charged here: the launch engine coalesces every array's ghost traffic
  /// for one launch into a single packed message per neighbour pair and
  /// charges that once per side (see shard.hpp / docs/MODEL.md), the way a
  /// tuned stencil code packs all its fields into one exchange.
  void shard_halo_async(index_t radius, std::uint64_t* boundary_bytes) {
    JACCX_ASSERT(shard_ != nullptr && radius >= 0 && radius <= shard_->ghost);
    auto& st = *shard_;
    if (radius == 0 || st.pieces.size() < 2) {
      return;
    }
    const index_t stride = st.slow_stride;
    const index_t ge = st.ghost * stride;
    for (std::size_t d = 0; d + 1 < st.pieces.size(); ++d) {
      auto& left = st.pieces[d];
      auto& right = st.pieces[d + 1];
      const index_t left_len = (left.hi - left.lo) / stride;
      const index_t right_len = (right.hi - right.lo) / stride;
      const index_t g = std::min({radius, left_len, right_len});
      if (g == 0) {
        continue;
      }
      const index_t ne = g * stride; // elements exchanged per direction
      const auto bytes = static_cast<std::uint64_t>(ne) * sizeof(T);
      // left's last owned cells -> right's left ghost
      std::memcpy(right.buf.data() + (ge - ne),
                  left.buf.data() + ge + (left.hi - left.lo) - ne,
                  static_cast<std::size_t>(bytes));
      // right's first owned cells -> left's right ghost
      std::memcpy(left.buf.data() + ge + (left.hi - left.lo),
                  right.buf.data() + ge, static_cast<std::size_t>(bytes));
      boundary_bytes[d] += bytes;
    }
  }

protected:
  element_ref<T> ref(index_t linear) const {
    JACCX_ASSERT(linear >= 0 && linear < count_);
    if (shard_ != nullptr) [[unlikely]] {
      return shard_ref(linear);
    }
    return element_ref<T>(data_ + linear, dev_);
  }

private:
  /// Storage goes through the jaccx::mem caching pool: simulated back ends
  /// draw from the device's deterministic arena (so cache-model conflicts
  /// are reproducible), real back ends from aligned host memory; under
  /// JACC_MEM_POOL=bucket a recycled block skips the backing store (and the
  /// simulated allocation charge) entirely.
  void acquire(index_t count) {
    JACCX_ASSERT(count >= 0);
    count_ = count;
    blk_ = jaccx::mem::acquire(dev_,
                               static_cast<std::size_t>(count) * sizeof(T),
                               "jacc.array", detail::alloc_ctx(dev_));
    data_ = static_cast<T*>(blk_.ptr);
    if (blk_.stall_us > 0.0) {
      // Pool reuse across queues: the consuming clock waits for the
      // releasing queue (the implicit sync of a stream-ordered pool).
      detail::note_pool_stall(dev_, blk_.stall_us);
    }
  }

  void release() noexcept {
    if ((data_ != nullptr || shard_ != nullptr) && jaccx::prof::enabled())
        [[unlikely]] {
      jaccx::prof::note_free(bytes());
    }
    shard_.reset(); // pieces release to the pool through pooled_buffer
    jaccx::mem::release(blk_, detail::release_ctx(dev_));
    dev_ = nullptr;
    data_ = nullptr;
    count_ = 0;
  }

  // --- sharded layout plumbing ----------------------------------------------

  element_ref<T> shard_ref(index_t linear) const {
    auto& st = *shard_;
    const index_t ge = st.ghost * st.slow_stride;
    if (st.bound >= 0) {
      auto& p = st.pieces[static_cast<std::size_t>(st.bound)];
      // Kernel access on the bound device: owned range plus halo reach.
      JACCX_ASSERT(linear >= p.lo - ge && linear < p.hi + ge);
      return element_ref<T>(p.buf.data() + ge + (linear - p.lo),
                            p.buf.owner());
    }
    // Host-side access (tests, expr fallback): find the owner; track() is
    // a no-op outside launches, so this never mistracks.
    for (auto& p : st.pieces) {
      if (linear >= p.lo && linear < p.hi) {
        return element_ref<T>(p.buf.data() + ge + (linear - p.lo),
                              p.buf.owner());
      }
    }
    JACCX_ASSERT(false && "sharded pieces must cover the index space");
    return element_ref<T>(nullptr, nullptr);
  }

  /// One piece per device under the set's CURRENT bounds, with `ghost`
  /// slow-units of capacity each side.  Contents are uninitialized (pool
  /// recycling); every caller fills or copies over them.
  std::vector<shard_piece<T>> shard_make_pieces(index_t ghost) {
    auto& st = *shard_;
    const auto& b = st.set->bounds(st.slow_extent);
    const index_t ge = ghost * st.slow_stride;
    std::vector<shard_piece<T>> out;
    out.reserve(b.size() - 1);
    for (int d = 0; d < st.set->devices(); ++d) {
      const index_t lo = b[static_cast<std::size_t>(d)] * st.slow_stride;
      const index_t hi = b[static_cast<std::size_t>(d) + 1] * st.slow_stride;
      out.push_back(shard_piece<T>{
          jaccx::mem::pooled_buffer<T>(st.set->dev(d), (hi - lo) + 2 * ge,
                                       "shard.piece"),
          lo, hi});
    }
    return out;
  }

  /// Same plan, wider halo: owned data moves locally (no transfer charge;
  /// allocation charges come from the pool as usual).
  void shard_regrow(index_t radius) {
    auto& st = *shard_;
    auto old = std::move(st.pieces);
    const index_t old_ge = st.ghost * st.slow_stride;
    st.pieces = shard_make_pieces(radius);
    const index_t ge = radius * st.slow_stride;
    for (std::size_t d = 0; d < st.pieces.size(); ++d) {
      auto& np = st.pieces[d];
      np.buf.fill_untracked(T{});
      if (np.hi > np.lo) {
        std::memcpy(np.buf.data() + ge, old[d].buf.data() + old_ge,
                    static_cast<std::size_t>(np.hi - np.lo) * sizeof(T));
      }
    }
    st.ghost = radius;
  }

  /// The set's plan moved: rebuild pieces under the new bounds.  Cells
  /// whose owner changed are charged as a device-to-device hop (D2H on the
  /// old owner, H2D on the new), name "shard.reshard".
  void shard_replan(index_t radius) {
    auto& st = *shard_;
    auto old = std::move(st.pieces);
    const index_t old_ge = st.ghost * st.slow_stride;
    const index_t ghost = std::max(st.ghost, radius);
    st.pieces = shard_make_pieces(ghost);
    const index_t ge = ghost * st.slow_stride;
    for (std::size_t d = 0; d < st.pieces.size(); ++d) {
      auto& np = st.pieces[d];
      np.buf.fill_untracked(T{});
      for (std::size_t e = 0; e < old.size(); ++e) {
        auto& op = old[e];
        const index_t lo = std::max(np.lo, op.lo);
        const index_t hi = std::min(np.hi, op.hi);
        if (lo >= hi) {
          continue;
        }
        std::memcpy(np.buf.data() + ge + (lo - np.lo),
                    op.buf.data() + old_ge + (lo - op.lo),
                    static_cast<std::size_t>(hi - lo) * sizeof(T));
        if (d != e) {
          const auto bytes = static_cast<std::uint64_t>(hi - lo) * sizeof(T);
          op.buf.owner()->charge_d2h(bytes, "shard.reshard");
          np.buf.owner()->charge_h2d(bytes, "shard.reshard");
        }
      }
    }
    st.ghost = ghost;
    st.generation = st.set->plan_generation();
  }

  /// D2H gather over every piece (the sharded body of copy_to_host).
  void shard_copy_out(T* dst) const {
    const auto& st = *shard_;
    const index_t ge = st.ghost * st.slow_stride;
    for (const auto& p : st.pieces) {
      if (p.hi > p.lo) {
        const auto b = static_cast<std::uint64_t>(p.hi - p.lo) * sizeof(T);
        std::memcpy(dst + p.lo, p.buf.data() + ge,
                    static_cast<std::size_t>(b));
        p.buf.owner()->charge_d2h(b, "jacc.array");
      }
    }
  }

  /// H2D scatter over every piece (the sharded body of copy_from_host).
  void shard_copy_in(const T* src) {
    auto& st = *shard_;
    const index_t ge = st.ghost * st.slow_stride;
    for (auto& p : st.pieces) {
      if (p.hi > p.lo) {
        const auto b = static_cast<std::uint64_t>(p.hi - p.lo) * sizeof(T);
        std::memcpy(p.buf.data() + ge, src + p.lo,
                    static_cast<std::size_t>(b));
        p.buf.owner()->charge_h2d(b, "jacc.array");
      }
    }
  }

  /// Full D2H path (memcpy + device charge + prof note).  `pl` overrides
  /// the worker pool (queue lanes); null = default pool.
  void copy_out(T* dst, jaccx::pool::thread_pool* pl) const {
    if (shard_ != nullptr) [[unlikely]] {
      shard_copy_out(dst);
      if (jaccx::prof::enabled()) [[unlikely]] {
        jaccx::prof::note_copy("jacc.array", /*to_device=*/false, bytes());
      }
      return;
    }
    if (use_workers()) {
      const T* src = data_;
      auto& pool = pl != nullptr ? *pl : jaccx::pool::default_pool();
      pool.parallel_chunks(count_, [src, dst](unsigned, jaccx::pool::range r) {
        std::memcpy(dst + r.begin, src + r.begin,
                    static_cast<std::size_t>(r.size()) * sizeof(T));
      });
    } else {
      for (index_t i = 0; i < count_; ++i) {
        dst[i] = data_[i];
      }
    }
    if (dev_ != nullptr) {
      dev_->charge_d2h(bytes(), "jacc.array");
    }
    if (jaccx::prof::enabled()) [[unlikely]] {
      jaccx::prof::note_copy("jacc.array", /*to_device=*/false, bytes());
    }
  }

  /// Full H2D path, symmetric with copy_out.
  void copy_in_full(const T* src, jaccx::pool::thread_pool* pl) {
    if (shard_ != nullptr) [[unlikely]] {
      shard_copy_in(src);
      if (jaccx::prof::enabled()) [[unlikely]] {
        jaccx::prof::note_copy("jacc.array", /*to_device=*/true, bytes());
      }
      return;
    }
    copy_in(src, pl);
    if (dev_ != nullptr) {
      dev_->charge_h2d(bytes(), "jacc.array");
    }
    if (jaccx::prof::enabled()) [[unlikely]] {
      jaccx::prof::note_copy("jacc.array", /*to_device=*/true, bytes());
    }
  }

  /// True when initialization / copies should run on the worker pool:
  /// large host arrays under the threads back end (first-touch placement
  /// plus memory-bandwidth parallelism).
  bool use_workers() const {
    if constexpr (!std::is_trivially_copyable_v<T>) {
      return false;
    }
    return dev_ == nullptr && bytes() >= detail::parallel_init_min_bytes &&
           current_backend() == backend::threads;
  }

  void fill_default() {
    if (use_workers()) {
      T* d = data_;
      jaccx::pool::default_pool().parallel_chunks(
          count_, [d](unsigned, jaccx::pool::range r) {
            for (index_t i = r.begin; i < r.end; ++i) {
              d[i] = T{};
            }
          });
    } else {
      for (index_t i = 0; i < count_; ++i) {
        data_[i] = T{};
      }
    }
  }

  void copy_in(const T* host, jaccx::pool::thread_pool* pl = nullptr) {
    if (use_workers()) {
      T* d = data_;
      auto& pool = pl != nullptr ? *pl : jaccx::pool::default_pool();
      pool.parallel_chunks(
          count_, [d, host](unsigned, jaccx::pool::range r) {
            std::memcpy(d + r.begin, host + r.begin,
                        static_cast<std::size_t>(r.size()) * sizeof(T));
          });
    } else {
      for (index_t i = 0; i < count_; ++i) {
        data_[i] = host[i];
      }
    }
  }

  void note_construct(bool h2d) {
    if (jaccx::prof::enabled()) [[unlikely]] {
      jaccx::prof::note_alloc("jacc.array", bytes());
      if (h2d) {
        jaccx::prof::note_copy("jacc.array", /*to_device=*/true, bytes());
      }
    }
  }

  jaccx::sim::device* dev_ = nullptr;
  jaccx::mem::block blk_; ///< pool claim ticket owning the storage
  T* data_ = nullptr;
  index_t count_ = 0;
  /// Non-null exactly for sharded placement (jacc::sharded); the monolithic
  /// dev_/blk_/data_ trio stays empty then and storage lives in the pieces.
  std::unique_ptr<shard_state<T>> shard_;
};

} // namespace detail

/// 1D JACC array; `dx = JACC.Array(x)` becomes `jacc::array<double> dx(x)`.
template <class T>
class array : public detail::array_base<T> {
public:
  using base = detail::array_base<T>;

  /// Zero-initialized array of n elements.
  explicit array(index_t n) : base(n) {}
  /// Uninitialized array (scratch that is fully overwritten before use).
  array(uninit_t, index_t n) : base(uninit, n) {}
  /// Host -> device construction (charges H2D under simulated back ends).
  array(const T* host, index_t n) : base(host, n) {}
  explicit array(const std::vector<T>& host)
      : base(host.data(), static_cast<index_t>(host.size())) {}
  array(std::initializer_list<T> init)
      : base(init.begin(), static_cast<index_t>(init.size())) {}

  /// Sharded placement across a device_set (zero-initialized).
  array(sharded_t s, index_t n) : base(*s.set, nullptr, n, n, 1) {}
  /// Sharded host -> device construction (per-device H2D of each shard).
  array(sharded_t s, const T* host, index_t n) : base(*s.set, host, n, n, 1) {}
  array(sharded_t s, const std::vector<T>& host)
      : base(*s.set, host.data(), static_cast<index_t>(host.size()),
             static_cast<index_t>(host.size()), 1) {}

  detail::element_ref<T> operator[](index_t i) const { return this->ref(i); }
};

/// 2D JACC array, column-major like Julia: (i, j) with i fastest.
template <class T>
class array2d : public detail::array_base<T> {
public:
  using base = detail::array_base<T>;

  array2d(index_t rows, index_t cols) : base(rows * cols), rows_(rows),
                                        cols_(cols) {}
  /// Host data interpreted column-major.
  array2d(const T* host, index_t rows, index_t cols)
      : base(host, rows * cols), rows_(rows), cols_(cols) {}
  array2d(const std::vector<T>& host, index_t rows, index_t cols)
      : base(host.data(), rows * cols), rows_(rows), cols_(cols) {
    JACCX_ASSERT(static_cast<index_t>(host.size()) == rows * cols);
  }

  /// Sharded placement: columns (the slow dimension) split across the set.
  array2d(sharded_t s, index_t rows, index_t cols)
      : base(*s.set, nullptr, rows * cols, cols, rows), rows_(rows),
        cols_(cols) {}
  array2d(sharded_t s, const T* host, index_t rows, index_t cols)
      : base(*s.set, host, rows * cols, cols, rows), rows_(rows),
        cols_(cols) {}
  array2d(sharded_t s, const std::vector<T>& host, index_t rows, index_t cols)
      : base(*s.set, host.data(), rows * cols, cols, rows), rows_(rows),
        cols_(cols) {
    JACCX_ASSERT(static_cast<index_t>(host.size()) == rows * cols);
  }

  detail::element_ref<T> operator()(index_t i, index_t j) const {
    JACCX_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return this->ref(i + j * rows_);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

private:
  index_t rows_ = 0;
  index_t cols_ = 0;
};

/// 3D JACC array, column-major: (i, j, k) with i fastest.
template <class T>
class array3d : public detail::array_base<T> {
public:
  using base = detail::array_base<T>;

  array3d(index_t rows, index_t cols, index_t depth)
      : base(rows * cols * depth), rows_(rows), cols_(cols), depth_(depth) {}
  array3d(const T* host, index_t rows, index_t cols, index_t depth)
      : base(host, rows * cols * depth), rows_(rows), cols_(cols),
        depth_(depth) {}

  /// Sharded placement: depth planes (the slow dimension) split across the
  /// set.
  array3d(sharded_t s, index_t rows, index_t cols, index_t depth)
      : base(*s.set, nullptr, rows * cols * depth, depth, rows * cols),
        rows_(rows), cols_(cols), depth_(depth) {}
  array3d(sharded_t s, const T* host, index_t rows, index_t cols,
          index_t depth)
      : base(*s.set, host, rows * cols * depth, depth, rows * cols),
        rows_(rows), cols_(cols), depth_(depth) {}

  detail::element_ref<T> operator()(index_t i, index_t j, index_t k) const {
    JACCX_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_ && k >= 0 &&
                 k < depth_);
    return this->ref(i + rows_ * (j + cols_ * k));
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t depth() const { return depth_; }

private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t depth_ = 0;
};

} // namespace jacc
