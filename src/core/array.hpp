// jacc::array — the JACC.Array analogue (paper Sec. III).
//
// JACC.Array is the unified, backend-transparent memory type: on
// Base.Threads it is a plain Julia Array, on CUDA a CuArray, and so on, and
// constructing one from host data performs the host->device copy.  Here:
//
//   * under the real back ends (serial/threads) an array is plain aligned
//     host memory with zero-overhead access;
//   * under a simulated back end the array is bound to that backend's device
//     at construction (charging allocation + H2D), and every element access
//     made while a kernel is running is routed through the device's cache
//     model via a proxy reference.
//
// An array is bound to the backend that was current when it was built,
// mirroring how a CuArray cannot be consumed by an AMDGPU kernel.
#pragma once

#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <vector>

#include "core/backend.hpp"
#include "core/event.hpp"
#include "core/queue.hpp"
#include "mem/pool.hpp"
#include "prof/prof.hpp"
#include "sim/device.hpp"
#include "support/aligned_buffer.hpp"
#include "support/span2d.hpp"
#include "threadpool/thread_pool.hpp"

namespace jacc {

using jaccx::index_t;

/// Tag selecting uninitialized construction — the CuArray{T}(undef, n)
/// analogue: storage is acquired (and charged) but not filled, so every
/// element must be written before it is read.  Pairs with the caching
/// allocator: recycled scratch need not be zeroed just to be overwritten.
struct uninit_t {
  explicit uninit_t() = default;
};
inline constexpr uninit_t uninit{};

namespace detail {

/// Host arrays at or above this size zero-fill / copy through the PR-1
/// worker pool on the threads back end, so pages are first-touched by the
/// workers that will process them (NUMA first-touch placement).
inline constexpr std::uint64_t parallel_init_min_bytes = 256u * 1024u;

} // namespace detail

namespace detail {

/// Tracked-when-simulated element reference.  Converting to T counts a
/// read, assigning counts a write; with a null device it degrades to a plain
/// load/store the optimizer sees through.
template <class T>
class element_ref {
public:
  element_ref(T* p, jaccx::sim::device* dev) : p_(p), dev_(dev) {}

  operator T() const {
    if (dev_ != nullptr) {
      dev_->track(p_, sizeof(T));
    }
    return *p_;
  }

  T operator=(T v) const {
    if (dev_ != nullptr) {
      dev_->track(p_, sizeof(T));
    }
    *p_ = v;
    return v;
  }

  T operator=(const element_ref& o) const { return *this = static_cast<T>(o); }

  T operator+=(T v) const { return *this = static_cast<T>(*this) + v; }
  T operator-=(T v) const { return *this = static_cast<T>(*this) - v; }
  T operator*=(T v) const { return *this = static_cast<T>(*this) * v; }
  T operator/=(T v) const { return *this = static_cast<T>(*this) / v; }

private:
  T* p_;
  jaccx::sim::device* dev_;
};

/// Storage + device binding shared by the 1/2/3-D array shapes.
template <class T>
class array_base {
public:
  explicit array_base(index_t count)
      : dev_(backend_device(current_backend())) {
    acquire(count);
    fill_default();
    note_construct(/*h2d=*/false);
  }

  array_base(const T* host, index_t count)
      : dev_(backend_device(current_backend())) {
    acquire(count);
    copy_in(host);
    if (dev_ != nullptr) {
      dev_->charge_h2d(bytes(), "jacc.array");
    }
    note_construct(/*h2d=*/true);
  }

  array_base(uninit_t, index_t count)
      : dev_(backend_device(current_backend())) {
    acquire(count);
    note_construct(/*h2d=*/false);
  }

  array_base(const array_base&) = delete;
  array_base& operator=(const array_base&) = delete;
  array_base(array_base&& other) noexcept
      : dev_(std::exchange(other.dev_, nullptr)),
        blk_(std::exchange(other.blk_, jaccx::mem::block{})),
        data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)) {}
  array_base& operator=(array_base&& other) noexcept {
    if (this != &other) {
      release();
      dev_ = std::exchange(other.dev_, nullptr);
      blk_ = std::exchange(other.blk_, jaccx::mem::block{});
      data_ = std::exchange(other.data_, nullptr);
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }
  ~array_base() { release(); }

  index_t size() const { return count_; }
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(count_) * sizeof(T);
  }
  jaccx::sim::device* device() const { return dev_; }
  bool is_simulated() const { return dev_ != nullptr; }

  /// Copies the contents back to host storage; on a simulated GPU this
  /// charges the D2H transfer (the semantic path for results).  Large
  /// host arrays on the threads back end copy out through the worker pool
  /// in parallel chunks, mirroring the copy-in path.
  void copy_to_host(T* dst) const { copy_out(dst, nullptr); }

  /// Overwrites the contents from host storage; on a simulated GPU this
  /// charges the H2D transfer — the post-construction update path
  /// (`copyto!(JACC.Array, host)`), symmetric with copy_to_host.
  void copy_from_host(const T* src) { copy_in_full(src, nullptr); }

  /// Queued copies: enqueued on `q`, returning the completion event.  On
  /// the default queue these are exactly the synchronous copies above.
  /// `dst`/`src` must stay valid until the event completes.
  event copy_to_host(queue& q, T* dst) const {
    return detail::enqueue_common(
        q, current_backend(), /*is_copy=*/true, "jacc.array.d2h",
        [this, dst](jaccx::pool::thread_pool* pl) { copy_out(dst, pl); });
  }
  event copy_from_host(queue& q, const T* src) {
    return detail::enqueue_common(
        q, current_backend(), /*is_copy=*/true, "jacc.array.h2d",
        [this, src](jaccx::pool::thread_pool* pl) { copy_in_full(src, pl); });
  }

  std::vector<T> to_host() const {
    std::vector<T> out(static_cast<std::size_t>(count_));
    copy_to_host(out.data());
    return out;
  }

  /// Untracked, uncharged debug access for test assertions; not part of the
  /// portable programming model.
  const T* host_data() const { return data_; }
  T* host_data() { return data_; }

  /// Tracked access by linear (column-major) index, valid for every rank —
  /// the expression layer's element hook (core/expr.hpp): a leaf over any
  /// array shape reads/writes through this so fused evaluation charges the
  /// cache model exactly like the per-element kernels it replaces.
  element_ref<T> flat(index_t i) const { return this->ref(i); }

protected:
  element_ref<T> ref(index_t linear) const {
    JACCX_ASSERT(linear >= 0 && linear < count_);
    return element_ref<T>(data_ + linear, dev_);
  }

private:
  /// Storage goes through the jaccx::mem caching pool: simulated back ends
  /// draw from the device's deterministic arena (so cache-model conflicts
  /// are reproducible), real back ends from aligned host memory; under
  /// JACC_MEM_POOL=bucket a recycled block skips the backing store (and the
  /// simulated allocation charge) entirely.
  void acquire(index_t count) {
    JACCX_ASSERT(count >= 0);
    count_ = count;
    blk_ = jaccx::mem::acquire(dev_,
                               static_cast<std::size_t>(count) * sizeof(T),
                               "jacc.array", detail::alloc_ctx(dev_));
    data_ = static_cast<T*>(blk_.ptr);
    if (blk_.stall_us > 0.0) {
      // Pool reuse across queues: the consuming clock waits for the
      // releasing queue (the implicit sync of a stream-ordered pool).
      detail::note_pool_stall(dev_, blk_.stall_us);
    }
  }

  void release() noexcept {
    if (data_ != nullptr && jaccx::prof::enabled()) [[unlikely]] {
      jaccx::prof::note_free(bytes());
    }
    jaccx::mem::release(blk_, detail::release_ctx(dev_));
    dev_ = nullptr;
    data_ = nullptr;
    count_ = 0;
  }

  /// Full D2H path (memcpy + device charge + prof note).  `pl` overrides
  /// the worker pool (queue lanes); null = default pool.
  void copy_out(T* dst, jaccx::pool::thread_pool* pl) const {
    if (use_workers()) {
      const T* src = data_;
      auto& pool = pl != nullptr ? *pl : jaccx::pool::default_pool();
      pool.parallel_chunks(count_, [src, dst](unsigned, jaccx::pool::range r) {
        std::memcpy(dst + r.begin, src + r.begin,
                    static_cast<std::size_t>(r.size()) * sizeof(T));
      });
    } else {
      for (index_t i = 0; i < count_; ++i) {
        dst[i] = data_[i];
      }
    }
    if (dev_ != nullptr) {
      dev_->charge_d2h(bytes(), "jacc.array");
    }
    if (jaccx::prof::enabled()) [[unlikely]] {
      jaccx::prof::note_copy("jacc.array", /*to_device=*/false, bytes());
    }
  }

  /// Full H2D path, symmetric with copy_out.
  void copy_in_full(const T* src, jaccx::pool::thread_pool* pl) {
    copy_in(src, pl);
    if (dev_ != nullptr) {
      dev_->charge_h2d(bytes(), "jacc.array");
    }
    if (jaccx::prof::enabled()) [[unlikely]] {
      jaccx::prof::note_copy("jacc.array", /*to_device=*/true, bytes());
    }
  }

  /// True when initialization / copies should run on the worker pool:
  /// large host arrays under the threads back end (first-touch placement
  /// plus memory-bandwidth parallelism).
  bool use_workers() const {
    if constexpr (!std::is_trivially_copyable_v<T>) {
      return false;
    }
    return dev_ == nullptr && bytes() >= detail::parallel_init_min_bytes &&
           current_backend() == backend::threads;
  }

  void fill_default() {
    if (use_workers()) {
      T* d = data_;
      jaccx::pool::default_pool().parallel_chunks(
          count_, [d](unsigned, jaccx::pool::range r) {
            for (index_t i = r.begin; i < r.end; ++i) {
              d[i] = T{};
            }
          });
    } else {
      for (index_t i = 0; i < count_; ++i) {
        data_[i] = T{};
      }
    }
  }

  void copy_in(const T* host, jaccx::pool::thread_pool* pl = nullptr) {
    if (use_workers()) {
      T* d = data_;
      auto& pool = pl != nullptr ? *pl : jaccx::pool::default_pool();
      pool.parallel_chunks(
          count_, [d, host](unsigned, jaccx::pool::range r) {
            std::memcpy(d + r.begin, host + r.begin,
                        static_cast<std::size_t>(r.size()) * sizeof(T));
          });
    } else {
      for (index_t i = 0; i < count_; ++i) {
        data_[i] = host[i];
      }
    }
  }

  void note_construct(bool h2d) {
    if (jaccx::prof::enabled()) [[unlikely]] {
      jaccx::prof::note_alloc("jacc.array", bytes());
      if (h2d) {
        jaccx::prof::note_copy("jacc.array", /*to_device=*/true, bytes());
      }
    }
  }

  jaccx::sim::device* dev_ = nullptr;
  jaccx::mem::block blk_; ///< pool claim ticket owning the storage
  T* data_ = nullptr;
  index_t count_ = 0;
};

} // namespace detail

/// 1D JACC array; `dx = JACC.Array(x)` becomes `jacc::array<double> dx(x)`.
template <class T>
class array : public detail::array_base<T> {
public:
  using base = detail::array_base<T>;

  /// Zero-initialized array of n elements.
  explicit array(index_t n) : base(n) {}
  /// Uninitialized array (scratch that is fully overwritten before use).
  array(uninit_t, index_t n) : base(uninit, n) {}
  /// Host -> device construction (charges H2D under simulated back ends).
  array(const T* host, index_t n) : base(host, n) {}
  explicit array(const std::vector<T>& host)
      : base(host.data(), static_cast<index_t>(host.size())) {}
  array(std::initializer_list<T> init)
      : base(init.begin(), static_cast<index_t>(init.size())) {}

  detail::element_ref<T> operator[](index_t i) const { return this->ref(i); }
};

/// 2D JACC array, column-major like Julia: (i, j) with i fastest.
template <class T>
class array2d : public detail::array_base<T> {
public:
  using base = detail::array_base<T>;

  array2d(index_t rows, index_t cols) : base(rows * cols), rows_(rows),
                                        cols_(cols) {}
  /// Host data interpreted column-major.
  array2d(const T* host, index_t rows, index_t cols)
      : base(host, rows * cols), rows_(rows), cols_(cols) {}
  array2d(const std::vector<T>& host, index_t rows, index_t cols)
      : base(host.data(), rows * cols), rows_(rows), cols_(cols) {
    JACCX_ASSERT(static_cast<index_t>(host.size()) == rows * cols);
  }

  detail::element_ref<T> operator()(index_t i, index_t j) const {
    JACCX_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return this->ref(i + j * rows_);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

private:
  index_t rows_ = 0;
  index_t cols_ = 0;
};

/// 3D JACC array, column-major: (i, j, k) with i fastest.
template <class T>
class array3d : public detail::array_base<T> {
public:
  using base = detail::array_base<T>;

  array3d(index_t rows, index_t cols, index_t depth)
      : base(rows * cols * depth), rows_(rows), cols_(cols), depth_(depth) {}
  array3d(const T* host, index_t rows, index_t cols, index_t depth)
      : base(host, rows * cols * depth), rows_(rows), cols_(cols),
        depth_(depth) {}

  detail::element_ref<T> operator()(index_t i, index_t j, index_t k) const {
    JACCX_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_ && k >= 0 &&
                 k < depth_);
    return this->ref(i + rows_ * (j + cols_ * k));
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t depth() const { return depth_; }

private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t depth_ = 0;
};

} // namespace jacc
