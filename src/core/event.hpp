// jacc::event — the completion handle returned by queued launches.
//
// An event is a lightweight shared handle (copyable, two pointer-size
// members) marking one enqueued operation.  On the simulated back ends the
// operation executes functionally at enqueue time and only its *charge*
// lands in the future, so the event completes immediately and carries the
// simulated completion timestamp of the queue's stream; on the real threads
// back end with async lanes the event completes when the lane task finishes
// and wait() blocks the host.  A default-constructed event (and everything
// launched on the default queue) is trivially complete — the sync model's
// "there is never outstanding work" invariant expressed as a value.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

namespace jaccx::sim {
class device;
}

namespace jacc {

namespace detail {

/// Shared completion state.  `complete` is the fast flag; the mutex/cv pair
/// only exists for host-blocking waits on the async threads lanes.
struct event_state {
  std::atomic<bool> complete{false};
  std::mutex mu;
  std::condition_variable cv;
  /// Simulated stream clock at completion (0 for real back ends).
  double sim_done_us = 0.0;
  /// The simulated device the operation charged, when any.
  jaccx::sim::device* dev = nullptr;
  /// Id of the queue that issued the operation (0 = default queue).
  std::uint64_t queue_id = 0;
  /// Graph-capture placeholder marker: nonzero capture_id means this event
  /// was minted while its queue was recording into that capture, and
  /// capture_node is the recorded node's index.  Such events are born
  /// complete (nothing ran; replay completion is observed through the event
  /// graph::launch returns) but queue::wait recognizes them during capture
  /// and records a cross-queue edge instead of blocking.
  std::uint64_t capture_id = 0;
  std::int64_t capture_node = -1;

  void mark_complete() {
    {
      const std::lock_guard lock(mu);
      complete.store(true, std::memory_order_release);
    }
    cv.notify_all();
  }
  void wait() {
    if (complete.load(std::memory_order_acquire)) {
      return;
    }
    std::unique_lock lock(mu);
    cv.wait(lock, [this] {
      return complete.load(std::memory_order_acquire);
    });
  }
};

struct event_access;

} // namespace detail

/// Completion handle for one queued operation.  Null (default-constructed)
/// events are trivially complete, so sync code can treat every launch as
/// returning an event without ever touching shared state.
class event {
public:
  event() = default;

  /// True once the operation has finished (always true for null events and
  /// for anything issued on the default queue or a simulated back end).
  bool complete() const {
    return state_ == nullptr ||
           state_->complete.load(std::memory_order_acquire);
  }

  /// Host-blocks until complete (no-op when already complete).
  void wait() const {
    if (state_ != nullptr) {
      state_->wait();
    }
  }

  /// Simulated-clock position of the issuing queue's stream when this
  /// operation completes; 0 for real back ends and null events.  Used by
  /// queue::wait() to order cross-queue dependencies, and by tests.
  double sim_time_us() const {
    return state_ != nullptr ? state_->sim_done_us : 0.0;
  }

  /// True when this handle refers to an actual enqueued operation.
  bool valid() const { return state_ != nullptr; }

private:
  friend class queue;
  friend struct detail::event_access;
  explicit event(std::shared_ptr<detail::event_state> s)
      : state_(std::move(s)) {}

  std::shared_ptr<detail::event_state> state_;
};

namespace detail {

/// Internal constructor/accessor bridge: the dispatch layer (template code
/// in parallel_for.hpp) mints events without being a friend of each
/// instantiation site.
struct event_access {
  static event make(std::shared_ptr<event_state> s) {
    return event(std::move(s));
  }
  static const std::shared_ptr<event_state>& state(const event& e) {
    return e.state_;
  }
};

} // namespace detail
} // namespace jacc
