#include "core/device_set.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "prof/prof.hpp"
#include "support/env.hpp"
#include "support/error.hpp"

namespace jacc {
namespace {

std::string model_of(backend be) {
  switch (be) {
  case backend::cuda_a100: return "a100";
  case backend::hip_mi100: return "mi100";
  case backend::oneapi_max1550: return "max1550";
  default:
    jaccx::throw_usage_error(
        "jacc::device_set targets the simulated GPU back ends "
        "(cuda_a100, hip_mi100, oneapi_max1550)");
  }
}

/// Test override for the JACC_SHARD resolution; see set_shard_mode_for_test.
int g_shard_mode_override = -1;

bool resolve_auto_shard() {
  if (g_shard_mode_override >= 0) {
    return g_shard_mode_override != 0;
  }
  const auto v = jaccx::get_env("JACC_SHARD");
  if (!v || v->empty() || *v == "auto") {
    return true;
  }
  if (*v == "off") {
    return false;
  }
  jaccx::throw_config_error("JACC_SHARD must be 'auto' or 'off', got '" + *v +
                            "'");
}

double resolve_threshold() {
  const auto v = jaccx::get_env("JACC_SHARD_REBALANCE");
  if (!v || v->empty()) {
    return 0.2;
  }
  char* end = nullptr;
  const double t = std::strtod(v->c_str(), &end);
  if (end == nullptr || *end != '\0' || !(t > 0.0)) {
    jaccx::throw_config_error(
        "JACC_SHARD_REBALANCE must be a positive fraction, got '" + *v + "'");
  }
  return t;
}

/// EWMA weight for per-launch throughput observations; matches the
/// auto_backend registry's smoothing so the two views agree.
constexpr double rate_alpha = 0.5;

thread_local device_set* t_active_shard_set = nullptr;

} // namespace

device_set::device_set(backend be, int devices) : be_(be) {
  if (devices < 1) {
    jaccx::throw_usage_error("jacc::device_set needs at least one device");
  }
  model_ = model_of(be);
  auto_ = resolve_auto_shard();
  threshold_ = resolve_threshold();
  devs_.reserve(static_cast<std::size_t>(devices));
  for (int d = 0; d < devices; ++d) {
    devs_.push_back(&jaccx::sim::get_device_instance(model_, d));
  }
  const auto n = static_cast<std::size_t>(devices);
  // `off` degenerates to the single-device plan: all weight on device 0,
  // every other shard empty — results identical, no distribution.
  weights_.assign(n, auto_ ? 1.0 : 0.0);
  if (!auto_) {
    weights_[0] = 1.0;
  }
  rate_.assign(n, 0.0);
  slowdown_.assign(n, 1.0);
}

std::string device_set::instance_target(int d) const {
  JACCX_ASSERT(d >= 0 && d < devices());
  return model_ + "#" + std::to_string(d);
}

double device_set::now_us() const {
  double t = 0.0;
  for (const auto* d : devs_) {
    t = std::max(t, d->tl().now_us());
  }
  return t;
}

double device_set::sync() {
  for (std::size_t d = 0; d < streams_.size(); ++d) {
    if (streams_[d] != nullptr) {
      jaccx::sim::join(*devs_[d], {streams_[d].get()});
    }
  }
  const double t = now_us();
  for (auto* d : devs_) {
    const double behind = t - d->tl().now_us();
    if (behind > 0.0) {
      d->tl().record("shard.sync", jaccx::sim::event_kind::kernel, behind);
    }
  }
  return t;
}

void device_set::reset_clocks() {
  streams_.clear(); // recreated lazily at the new time origin
  for (auto* d : devs_) {
    d->reset_clock();
    d->cache().reset();
  }
}

jaccx::sim::stream& device_set::shard_stream(int d) {
  JACCX_ASSERT(d >= 0 && d < devices());
  if (streams_.size() != devs_.size()) {
    streams_.resize(devs_.size());
  }
  auto& s = streams_[static_cast<std::size_t>(d)];
  if (s == nullptr) {
    auto& dev = *devs_[static_cast<std::size_t>(d)];
    s = std::make_unique<jaccx::sim::stream>(
        dev, dev.model().name + ".shard" + std::to_string(d));
  }
  return *s;
}

const std::vector<index_t>& device_set::bounds(index_t n) {
  JACCX_ASSERT(n >= 0);
  auto it = bounds_cache_.find(n);
  if (it == bounds_cache_.end()) {
    it = bounds_cache_.emplace(n, jaccx::pool::weighted_bounds(n, weights_))
             .first;
  }
  return it->second;
}

jaccx::pool::range device_set::chunk(index_t n, int d) {
  JACCX_ASSERT(d >= 0 && d < devices());
  const auto& b = bounds(n);
  return {b[static_cast<std::size_t>(d)], b[static_cast<std::size_t>(d) + 1]};
}

void device_set::set_weights(std::vector<double> w) {
  if (static_cast<int>(w.size()) != devices()) {
    jaccx::throw_usage_error("set_weights needs one weight per device");
  }
  double total = 0.0;
  for (double x : w) {
    if (x < 0.0) {
      jaccx::throw_usage_error("shard weights must be non-negative");
    }
    total += x;
  }
  if (!(total > 0.0)) {
    jaccx::throw_usage_error("shard weights must not all be zero");
  }
  weights_ = std::move(w);
  manual_weights_ = true;
  bounds_cache_.clear();
  ++generation_;
}

void device_set::set_slowdown(int d, double factor) {
  JACCX_ASSERT(d >= 0 && d < devices());
  if (!(factor >= 1.0)) {
    jaccx::throw_usage_error("slowdown factor must be >= 1.0");
  }
  slowdown_[static_cast<std::size_t>(d)] = factor;
}

double device_set::note_launch(int d, double elapsed_us, index_t items,
                               const hints& h) {
  JACCX_ASSERT(d >= 0 && d < devices());
  const auto di = static_cast<std::size_t>(d);
  const double f = slowdown_[di];
  if (f > 1.0 && elapsed_us > 0.0) {
    // The degraded device really is slower: charge the extra time on its
    // clock so wall time, traces, and the measured rate all agree.
    const double extra = (f - 1.0) * elapsed_us;
    devs_[di]->tl().record("shard.slow", jaccx::sim::event_kind::kernel,
                           extra);
    elapsed_us += extra;
  }
  if (elapsed_us > 0.0 && items > 0) {
    const double observed = static_cast<double>(items) / elapsed_us;
    rate_[di] = rate_[di] > 0.0
                    ? rate_alpha * observed + (1.0 - rate_alpha) * rate_[di]
                    : observed;
    // Publish achieved rates for the measured placement policies whenever
    // the launch was hinted.  bytes/us * 1e-3 == GB/s.
    const double gbps =
        h.bytes_per_index * static_cast<double>(items) / elapsed_us * 1e-3;
    const double gflops =
        h.flops_per_index * static_cast<double>(items) / elapsed_us * 1e-3;
    if (gbps > 0.0 || gflops > 0.0) {
      jaccx::prof::note_rate(instance_target(d), h.name, gbps, gflops);
    }
  }
  return elapsed_us;
}

bool device_set::maybe_rebalance() {
  if (!auto_ || manual_weights_ || devices() < 2) {
    return false;
  }
  double rate_total = 0.0;
  double weight_total = 0.0;
  for (int d = 0; d < devices(); ++d) {
    const auto di = static_cast<std::size_t>(d);
    if (rate_[di] <= 0.0) {
      return false; // not every device measured yet
    }
    rate_total += rate_[di];
    weight_total += weights_[di];
  }
  double worst = 0.0;
  for (int d = 0; d < devices(); ++d) {
    const auto di = static_cast<std::size_t>(d);
    const double wf = weights_[di] / weight_total;
    const double rf = rate_[di] / rate_total;
    worst = std::max(worst, std::abs(wf - rf) / rf);
  }
  if (worst <= threshold_) {
    return false;
  }
  for (int d = 0; d < devices(); ++d) {
    const auto di = static_cast<std::size_t>(d);
    weights_[di] = rate_[di] / rate_total;
  }
  bounds_cache_.clear();
  ++generation_;
  return true;
}

void device_set::clear_rates() {
  std::fill(rate_.begin(), rate_.end(), 0.0);
}

namespace detail {

device_set* active_shard_set() { return t_active_shard_set; }

void set_shard_mode_for_test(int mode) { g_shard_mode_override = mode; }

} // namespace detail

device_set_scope::device_set_scope(device_set& ds)
    : prev_(t_active_shard_set) {
  t_active_shard_set = &ds;
}

device_set_scope::~device_set_scope() { t_active_shard_set = prev_; }

} // namespace jacc
