// jacc::graph capture & replay engine (see graph.hpp for the model).
//
// Capture: each recording queue's impl carries an atomic builder pointer;
// the enqueue hot paths check it with one relaxed load and, when set,
// append a pre-baked node instead of running.  Placeholder events minted
// during capture are born complete and carry (capture_id, node index), so
// queue::wait can turn them into recorded edges.
//
// Replay: one pass over the immutable node list.
//   simulated back ends  every kernel/copy body re-runs under its queue's
//                        stream via queue_bind, so the charge path — and
//                        therefore model time — is identical to eager
//                        issue; recorded wait edges advance the consumer
//                        stream to the producer node's completion time.
//   serial / 1-lane      a tight inline loop: one indirect call per node,
//                        no descriptor building, no capture policy, no
//                        routing — the dispatch work was done at capture.
//   threads async lanes  ONE lane task per captured queue runs that
//                        queue's nodes in order (N nodes cost one
//                        submission round-trip), with per-replay completion
//                        events realizing recorded cross-queue edges.
#include "core/graph.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/fuse.hpp"
#include "core/parallel_for.hpp"
#include "core/queue_impl.hpp"
#include "prof/prof.hpp"
#include "sim/device.hpp"
#include "sim/stream.hpp"
#include "support/error.hpp"
#include "threadpool/thread_pool.hpp"

namespace jacc {
namespace detail {

namespace {
std::atomic<std::uint64_t> g_capture_ids{0};
} // namespace

/// One recorded node.  `dep` (wait nodes only) indexes the producer node.
struct graph_node {
  capture_kind kind = capture_kind::kernel;
  int slot = 0;             ///< which captured queue issued it
  std::int64_t dep = -1;    ///< producer node for wait edges
  bool needs_event = false; ///< some wait node depends on this one
  std::string name;
  replay_body body;
  /// Fused-execution payload for 1D elementwise kernel captures
  /// (core/fuse.hpp); null for everything else.  Consumed by the
  /// post-capture chain fuser, inert on the replay paths.
  std::shared_ptr<fusable_kernel> fusable;
};

/// Mutable state while a capture is recording.  `mu` guards the node list
/// (captures may record from several host threads, like queues).
struct capture_builder {
  std::uint64_t id = 0;
  backend captured_backend{};
  bool scope_owned = false; ///< started by capture_scope; end there
  std::mutex mu;
  std::vector<graph_node> nodes;
  std::vector<std::shared_ptr<queue_impl>> slots;

  int slot_of(const queue_impl* qi) const {
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s].get() == qi) {
        return static_cast<int>(s);
      }
    }
    return -1;
  }
};

/// The immutable replayable recording.
struct graph_impl {
  std::uint64_t capture_id = 0;
  backend captured_backend{};
  std::vector<graph_node> nodes;
  std::vector<std::shared_ptr<queue_impl>> slots;
  std::vector<std::vector<std::uint32_t>> per_slot; ///< node ids, in order
  /// Per-slot op counts, charged to the queue counters on every replay so
  /// prof's queue table stays truthful under replay.
  std::vector<std::uint64_t> slot_kernels, slot_copies, slot_waits;
  std::atomic<std::uint64_t> replays{0};
};

std::shared_ptr<capture_builder> capture_begin(
    std::initializer_list<queue*> qs, bool scope_owned) {
  if (qs.size() == 0) {
    jaccx::throw_usage_error("graph capture needs at least one queue");
  }
  auto b = std::make_shared<capture_builder>();
  b->id = 1 + g_capture_ids.fetch_add(1, std::memory_order_relaxed);
  b->captured_backend = current_backend();
  b->scope_owned = scope_owned;
  for (queue* q : qs) {
    if (q == nullptr || queue_access::impl(*q) == nullptr || q->is_default()) {
      jaccx::throw_usage_error(
          "graph capture requires non-default user queues");
    }
    if (b->slot_of(queue_access::impl(*q)) >= 0) {
      jaccx::throw_usage_error("graph capture lists a queue twice");
    }
    b->slots.push_back(queue_access::impl_ptr(*q));
  }
  // Install under every queue's mutex, taken in address order so two
  // concurrent begins over overlapping queue sets cannot deadlock; a
  // conflict throws before anything was installed.
  std::vector<queue_impl*> order;
  order.reserve(b->slots.size());
  for (const auto& sp : b->slots) {
    order.push_back(sp.get());
  }
  std::sort(order.begin(), order.end());
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(order.size());
  for (queue_impl* qi : order) {
    locks.emplace_back(qi->mu);
  }
  for (queue_impl* qi : order) {
    if (qi->cap_owner != nullptr) {
      jaccx::throw_usage_error("queue is already recording a graph capture");
    }
  }
  for (queue_impl* qi : order) {
    qi->cap_owner = b;
    qi->cap.store(b.get(), std::memory_order_release);
  }
  return b;
}

namespace {

/// Detaches the builder from its queues (capture over, recording stops).
void capture_detach(capture_builder& b) {
  for (const auto& qi : b.slots) {
    const std::lock_guard lock(qi->mu);
    if (qi->cap_owner.get() == &b) {
      qi->cap.store(nullptr, std::memory_order_release);
      qi->cap_owner.reset();
    }
  }
}

/// Shared state of one fused chain node: the joined name (the replay hint
/// string_view points into it), the fused accounting, and the member
/// kernels' per-index bodies in original submission order.
struct fused_chain {
  std::string name;
  index_t n = 0;
  double flops = 0.0;
  double bytes = 0.0;
  std::vector<std::function<void(index_t)>> parts;
};

/// The JACC_FUSE=graph|all peephole pass (docs/FUSION.md).  Merges maximal
/// runs of *consecutive* nodes that are 1D elementwise kernels with a
/// fusable payload, on the same slot, over the same index space, into one
/// pre-baked node that runs all member bodies per index in submission
/// order.  Consecutive-in-the-global-list is the legality test: ANY
/// intervening node — a copy, a host node, another queue's kernel, a wait
/// edge — breaks the chain, which is exactly what makes cross-queue edges
/// and non-elementwise hazards block fusion.  RAW between members (a later
/// member reading an array an earlier member wrote) is allowed — per-index
/// the statements run in order, so the dataflow matches the unfused sweeps
/// for elementwise kernels.  A node some wait edge depends on always ends
/// its chain, so the merged node's completion coincides with the recorded
/// edge's producer and the dep can be remapped soundly.
void fuse_chains(graph_impl& g) {
  std::vector<graph_node> old = std::move(g.nodes);
  g.nodes.clear();
  g.nodes.reserve(old.size());
  std::vector<char> has_waiter(old.size(), 0);
  for (const graph_node& nd : old) {
    if (nd.kind == capture_kind::wait && nd.dep >= 0) {
      has_waiter[static_cast<std::size_t>(nd.dep)] = 1;
    }
  }
  std::vector<std::int64_t> remap(old.size(), -1);
  std::vector<std::size_t> chain;

  const auto flush = [&] {
    if (chain.empty()) {
      return;
    }
    const auto out = static_cast<std::int64_t>(g.nodes.size());
    for (const std::size_t m : chain) {
      remap[m] = out;
    }
    if (chain.size() == 1) {
      g.nodes.push_back(std::move(old[chain[0]]));
      chain.clear();
      return;
    }
    auto fc = std::make_shared<fused_chain>();
    fc->n = old[chain[0]].fusable->n;
    std::vector<fuse_footprint> fps;
    for (const std::size_t m : chain) {
      if (!fc->name.empty()) {
        fc->name += '+';
      }
      fc->name += old[m].name;
      fc->flops += old[m].fusable->flops_per_index;
      fps.insert(fps.end(), old[m].fusable->footprints.begin(),
                 old[m].fusable->footprints.end());
      fc->parts.push_back(old[m].fusable->per_index);
    }
    fc->bytes = fused_hint_bytes(fps);
    graph_node fused;
    fused.kind = capture_kind::kernel;
    fused.slot = old[chain[0]].slot;
    fused.name = fc->name;
    fused.body = make_replay_body(
        [fc, b = g.captured_backend](jaccx::pool::thread_pool* pl) {
          hints h;
          h.name = fc->name;
          h.flops_per_index = fc->flops;
          h.bytes_per_index = fc->bytes;
          h.elementwise = true;
          execute_for_1d(b, pl, launch_desc::d1(h, fc->n), [&](index_t i) {
            for (const auto& p : fc->parts) {
              p(i);
            }
          });
        });
    g.nodes.push_back(std::move(fused));
    chain.clear();
  };

  for (std::size_t i = 0; i < old.size(); ++i) {
    graph_node& nd = old[i];
    const bool fusable_node = nd.kind == capture_kind::kernel &&
                              nd.fusable != nullptr &&
                              nd.fusable->per_index != nullptr;
    const bool extends = fusable_node && !chain.empty() &&
                         old[chain.back()].slot == nd.slot &&
                         old[chain.back()].fusable->n == nd.fusable->n;
    if (!extends) {
      flush();
    }
    if (fusable_node) {
      chain.push_back(i);
      if (has_waiter[i]) {
        flush();
      }
      continue;
    }
    if (nd.kind == capture_kind::wait) {
      nd.dep = remap[static_cast<std::size_t>(nd.dep)];
      JACCX_ASSERT(nd.dep >= 0 && "wait edge on a not-yet-emitted node");
    }
    remap[i] = static_cast<std::int64_t>(g.nodes.size());
    g.nodes.push_back(std::move(nd));
  }
  flush();
}

} // namespace

graph capture_finish(std::shared_ptr<capture_builder> b) {
  capture_detach(*b);
  auto g = std::make_shared<graph_impl>();
  g->capture_id = b->id;
  g->captured_backend = b->captured_backend;
  g->nodes = std::move(b->nodes);
  g->slots = std::move(b->slots);
  // Scratch lifetimes must close inside the capture: an unbalanced
  // acquire would leak one pool block per replay.
  std::int64_t mem_balance = 0;
  for (const graph_node& nd : g->nodes) {
    if (nd.kind == capture_kind::mem_acquire) {
      ++mem_balance;
    } else if (nd.kind == capture_kind::mem_release) {
      --mem_balance;
    }
  }
  if (mem_balance != 0) {
    jaccx::throw_usage_error(
        "graph capture has unbalanced scratch acquire/release nodes");
  }
  if (jacc::fuse_graph()) {
    fuse_chains(*g);
  }
  const std::size_t nslots = g->slots.size();
  g->per_slot.resize(nslots);
  g->slot_kernels.assign(nslots, 0);
  g->slot_copies.assign(nslots, 0);
  g->slot_waits.assign(nslots, 0);
  for (std::size_t i = 0; i < g->nodes.size(); ++i) {
    graph_node& nd = g->nodes[i];
    const auto s = static_cast<std::size_t>(nd.slot);
    g->per_slot[s].push_back(static_cast<std::uint32_t>(i));
    switch (nd.kind) {
    case capture_kind::kernel:
      ++g->slot_kernels[s];
      break;
    case capture_kind::copy:
      ++g->slot_copies[s];
      break;
    case capture_kind::host:
      break;
    case capture_kind::wait:
      ++g->slot_waits[s];
      g->nodes[static_cast<std::size_t>(nd.dep)].needs_event = true;
      break;
    case capture_kind::mem_acquire:
    case capture_kind::mem_release:
      // Pool traffic, not queue work: neither a kernel nor a copy in the
      // per-queue counters.
      break;
    }
  }
  return graph_access::make(std::move(g));
}

void capture_abort(std::shared_ptr<capture_builder> b) noexcept {
  capture_detach(*b);
  // Nodes (and any future slots their bodies lease) die with the builder.
}

event capture_append(queue& q, capture_kind kind, std::string name,
                     replay_body body) {
  queue_impl* qi = queue_access::impl(q);
  capture_builder* b = qi->cap.load(std::memory_order_acquire);
  JACCX_ASSERT(b != nullptr && "capture_append on a non-capturing queue");
  std::int64_t idx;
  {
    const std::lock_guard lock(b->mu);
    idx = static_cast<std::int64_t>(b->nodes.size());
    graph_node nd;
    nd.kind = kind;
    nd.slot = b->slot_of(qi);
    nd.name = std::move(name);
    nd.body = std::move(body);
    b->nodes.push_back(std::move(nd));
  }
  auto st = std::make_shared<event_state>();
  st->queue_id = qi->id;
  st->capture_id = b->id;
  st->capture_node = idx;
  st->complete.store(true, std::memory_order_release);
  return event_access::make(std::move(st));
}

event capture_append(queue& q, capture_kind kind, std::string name,
                     replay_body body,
                     std::shared_ptr<fusable_kernel> fusable) {
  queue_impl* qi = queue_access::impl(q);
  capture_builder* b = qi->cap.load(std::memory_order_acquire);
  JACCX_ASSERT(b != nullptr && "capture_append on a non-capturing queue");
  std::int64_t idx;
  {
    const std::lock_guard lock(b->mu);
    idx = static_cast<std::int64_t>(b->nodes.size());
    graph_node nd;
    nd.kind = kind;
    nd.slot = b->slot_of(qi);
    nd.name = std::move(name);
    nd.body = std::move(body);
    nd.fusable = std::move(fusable);
    b->nodes.push_back(std::move(nd));
  }
  auto st = std::make_shared<event_state>();
  st->queue_id = qi->id;
  st->capture_id = b->id;
  st->capture_node = idx;
  st->complete.store(true, std::memory_order_release);
  return event_access::make(std::move(st));
}

void capture_wait(queue& q, const event& e) {
  const auto& st = event_access::state(e);
  if (st == nullptr) {
    return; // null events are trivially complete, in capture too
  }
  queue_impl* qi = queue_access::impl(q);
  capture_builder* b = qi->cap.load(std::memory_order_acquire);
  JACCX_ASSERT(b != nullptr && "capture_wait on a non-capturing queue");
  if (st->capture_id == b->id && st->capture_node >= 0) {
    const std::lock_guard lock(b->mu);
    const int my_slot = b->slot_of(qi);
    const auto dep = static_cast<std::size_t>(st->capture_node);
    if (b->nodes[dep].slot == my_slot) {
      return; // same queue: submission order already covers it
    }
    graph_node nd;
    nd.kind = capture_kind::wait;
    nd.slot = my_slot;
    nd.dep = st->capture_node;
    nd.name = "queue.wait";
    b->nodes.push_back(std::move(nd));
    return;
  }
  // An event from outside the capture (another capture's marker included —
  // its capture_id differs).  It is resolved at record time: wait here so
  // the graph is recorded as starting strictly after it; replays assume
  // the dependency still holds (the caller re-establishes it if not).
  st->wait();
}

event capture_record(queue& q) {
  queue_impl* qi = queue_access::impl(q);
  capture_builder* b = qi->cap.load(std::memory_order_acquire);
  JACCX_ASSERT(b != nullptr && "capture_record on a non-capturing queue");
  const std::lock_guard lock(b->mu);
  const int my_slot = b->slot_of(qi);
  for (std::size_t i = b->nodes.size(); i-- > 0;) {
    if (b->nodes[i].slot == my_slot) {
      auto st = std::make_shared<event_state>();
      st->queue_id = qi->id;
      st->capture_id = b->id;
      st->capture_node = static_cast<std::int64_t>(i);
      st->complete.store(true, std::memory_order_release);
      return event_access::make(std::move(st));
    }
  }
  return event{}; // nothing recorded on this queue yet
}

} // namespace detail

void queue::begin_capture() {
  detail::capture_begin({this}, /*scope_owned=*/false);
  // The builder's ownership lives in the queue impl (cap_owner); the
  // returned shared_ptr is deliberately dropped.
}

graph queue::end_capture() {
  if (impl_ == nullptr || is_default()) {
    jaccx::throw_usage_error("end_capture on the default queue");
  }
  std::shared_ptr<detail::capture_builder> b;
  {
    const std::lock_guard lock(impl_->mu);
    b = impl_->cap_owner;
  }
  if (b == nullptr) {
    jaccx::throw_usage_error("end_capture without begin_capture");
  }
  if (b->scope_owned) {
    jaccx::throw_usage_error(
        "capture was started by a capture_scope; end it there");
  }
  if (b->slots[0].get() != impl_.get()) {
    jaccx::throw_usage_error("end_capture on a non-primary capture queue");
  }
  return detail::capture_finish(std::move(b));
}

bool queue::capturing() const { return detail::queue_capturing(*this); }

std::size_t graph::node_count() const {
  return impl_ != nullptr ? impl_->nodes.size() : 0;
}

std::uint64_t graph::replays() const {
  return impl_ != nullptr
             ? impl_->replays.load(std::memory_order_relaxed)
             : 0;
}

event graph::launch() {
  if (impl_ == nullptr) {
    jaccx::throw_usage_error("launch on an empty jacc::graph");
  }
  queue primary = detail::queue_access::wrap(impl_->slots[0]);
  return launch(primary);
}

event graph::launch(queue& q) {
  detail::graph_impl* g = impl_.get();
  if (g == nullptr) {
    jaccx::throw_usage_error("launch on an empty jacc::graph");
  }
  if (detail::queue_access::impl(q) == nullptr || q.is_default()) {
    jaccx::throw_usage_error("graph::launch requires a non-default queue");
  }
  if (detail::queue_capturing(q)) {
    jaccx::throw_usage_error(
        "graph::launch on a capturing queue (nested graphs not supported)");
  }
  const backend b = current_backend();
  if (b != g->captured_backend) {
    jaccx::throw_usage_error(
        "graph replayed under a different backend than it was captured on");
  }
  g->replays.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t kernel_count = 0;
  for (const std::uint64_t k : g->slot_kernels) {
    kernel_count += k;
  }
  // One span per replay (all three replay paths return through this scope),
  // carrying the node and kernel-node counts into the trace and summary.
  const jaccx::prof::graph_replay_scope replay_scope(g->nodes.size(),
                                                     kernel_count);

  // Slot 0 is substituted by the launch queue; secondary captured queues
  // replay as themselves.  Per-queue counters are bulk-added from the
  // per-slot node counts — no per-node accounting on the replay path.
  for (std::size_t s = 0; s < g->slots.size(); ++s) {
    detail::queue_impl* qi =
        s == 0 ? detail::queue_access::impl(q) : g->slots[s].get();
    qi->launches.fetch_add(g->slot_kernels[s], std::memory_order_relaxed);
    qi->copies.fetch_add(g->slot_copies[s], std::memory_order_relaxed);
    qi->waits.fetch_add(g->slot_waits[s], std::memory_order_relaxed);
  }
  // The queue-handle table is only needed by the paths that route work per
  // slot; the inline loop below never touches it (it is a heap allocation
  // per replay, visible at this bench's nanosecond scale).
  const auto make_qs = [&] {
    std::vector<queue> qs;
    qs.reserve(g->slots.size());
    qs.push_back(q);
    for (std::size_t s = 1; s < g->slots.size(); ++s) {
      qs.push_back(detail::queue_access::wrap(g->slots[s]));
    }
    return qs;
  };

  if (jaccx::sim::device* dev = backend_device(b); dev != nullptr) {
    std::vector<queue> qs = make_qs();
    // Same charge path as eager issue: each body runs under its queue's
    // stream, so model time per node is identical; recorded edges advance
    // the consumer stream exactly as queue::wait would have.
    std::vector<double> done(g->nodes.size(), 0.0);
    for (std::size_t i = 0; i < g->nodes.size(); ++i) {
      const detail::graph_node& nd = g->nodes[i];
      queue& nq = qs[static_cast<std::size_t>(nd.slot)];
      switch (nd.kind) {
      case detail::capture_kind::wait: {
        jaccx::sim::timeline& tl = detail::queue_stream(nq, *dev)->tl();
        const double behind =
            done[static_cast<std::size_t>(nd.dep)] - tl.now_us();
        if (behind > 0.0) {
          tl.record("queue.wait", jaccx::sim::event_kind::kernel, behind);
        }
        done[i] = tl.now_us();
        break;
      }
      case detail::capture_kind::host: {
        nd.body(nullptr); // host work charges nothing
        done[i] = detail::queue_stream(nq, *dev)->now_us();
        break;
      }
      default: {
        const detail::queue_bind bind(&nq, dev);
        nd.body(nullptr);
        done[i] = detail::queue_stream(nq, *dev)->now_us();
        break;
      }
      }
    }
    auto st = std::make_shared<detail::event_state>();
    st->dev = dev;
    st->queue_id = q.id();
    st->sim_done_us = detail::queue_stream(q, *dev)->now_us();
    st->complete.store(true, std::memory_order_release);
    return detail::event_access::make(std::move(st));
  }

  if (b == backend::threads && detail::queue_is_async(q)) {
    std::vector<queue> qs = make_qs();
    // One lane task per captured queue replays that queue's nodes in
    // order: a whole chain costs one submission round-trip instead of one
    // per node.  Recorded cross-queue edges block on per-replay producer
    // events; deps always point at earlier-recorded nodes, so chains on
    // distinct lanes cannot cycle.
    auto prod = std::make_shared<
        std::vector<std::shared_ptr<detail::event_state>>>(g->nodes.size());
    for (std::size_t i = 0; i < g->nodes.size(); ++i) {
      if (g->nodes[i].needs_event) {
        (*prod)[i] = std::make_shared<detail::event_state>();
      }
    }
    std::shared_ptr<detail::event_state> primary_done;
    std::vector<std::shared_ptr<detail::event_state>> others;
    for (std::size_t s = 0; s < qs.size(); ++s) {
      if (g->per_slot[s].empty() && s != 0) {
        continue;
      }
      auto es = std::make_shared<detail::event_state>();
      detail::queue_submit(
          qs[s],
          [gimpl = impl_, s, prod](jaccx::pool::thread_pool* pl) {
            for (const std::uint32_t idx : gimpl->per_slot[s]) {
              const detail::graph_node& nd = gimpl->nodes[idx];
              if (nd.kind == detail::capture_kind::wait) {
                if (const auto& pe =
                        (*prod)[static_cast<std::size_t>(nd.dep)]) {
                  pe->wait();
                }
              } else {
                nd.body(pl);
              }
              if (const auto& pe = (*prod)[idx]) {
                pe->mark_complete();
              }
            }
          },
          es);
      if (s == 0) {
        primary_done = std::move(es);
      } else {
        others.push_back(std::move(es));
      }
    }
    if (!others.empty()) {
      // The returned event completes when every chain has: a fence task on
      // the primary queue joins the secondary chains.
      auto fence = std::make_shared<detail::event_state>();
      detail::queue_submit(
          qs[0],
          [others](jaccx::pool::thread_pool*) {
            for (const auto& e : others) {
              e->wait();
            }
          },
          fence);
      return detail::event_access::make(std::move(fence));
    }
    return detail::event_access::make(std::move(primary_done));
  }

  // Serial / single-lane threads: the tight inline loop the roadmap item
  // names — one indirect call per pre-baked node.
  for (const detail::graph_node& nd : g->nodes) {
    if (nd.body) {
      nd.body(nullptr);
    }
  }
  return event{};
}

} // namespace jacc
