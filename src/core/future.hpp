// jacc::future<T> — the value-carrying completion handle returned by
// queue::parallel_reduce.
//
// A queued reduction produces a scalar; pre-future code had to block the
// host on every DOT, which is exactly the stall the paper's CG traces show
// (Figs. 12/13: one reduction per dot product, four per iteration).  A
// future decouples the two halves of that round-trip:
//
//   * the event half orders *work*: `q2.wait(f)` makes later kernels on any
//     queue start after the reduction, with no host involvement;
//   * the value half is read only when the host actually needs the number:
//     `f.get()` waits (no-op if already complete) and returns it.
//
// The result lives in a pooled host slot drawn from jaccx::mem (the PR-3
// caching-allocator subsystem whose persistent workspaces already back the
// device side of every reduction), not in a per-call heap allocation: at
// steady state a CG iteration's futures recycle the same few cache lines.
// Under JACC_MEM_POOL=none the acquire degrades to the seed's plain
// aligned allocation — futures work in both modes.
//
// Lifetime: the slot lives as long as the last future handle, so a future
// may outlive its queue (and the arrays the reduction read — the *value*
// was extracted before completion was signaled).  Futures are cheap shared
// handles; copying shares the same slot and event.
#pragma once

#include <memory>
#include <type_traits>

#include "core/event.hpp"
#include "mem/pool.hpp"
#include "prof/prof.hpp"
#include "support/error.hpp"

namespace jacc {

class queue;

namespace detail {

/// Shared state behind a future: the pooled result slot plus the completion
/// event.  The slot is written exactly once (by the enqueue path or the
/// lane task) before the event is marked complete; event completion is the
/// release edge that makes the value readable.
template <class T>
struct future_state {
  static_assert(std::is_arithmetic_v<T>,
                "jacc::future carries arithmetic reduction results");

  jaccx::mem::block slot;
  event e; ///< invalid = born complete (sync/sim paths)

  future_state()
      : slot(jaccx::mem::acquire(nullptr, sizeof(T), "jacc.future.slot")) {
    *value() = T{};
  }
  ~future_state() { jaccx::mem::release(slot); }
  future_state(const future_state&) = delete;
  future_state& operator=(const future_state&) = delete;

  T* value() { return static_cast<T*>(slot.ptr); }
};

template <class T>
struct future_access;

} // namespace detail

/// Completion-plus-value handle for one queued reduction.  A
/// default-constructed future is empty (`valid() == false`); every future
/// minted by queue::parallel_reduce is valid and its `get()` is repeatable.
template <class T>
class future {
public:
  future() = default;

  /// True when this handle refers to an actual enqueued reduction.
  bool valid() const { return st_ != nullptr; }

  /// Non-blocking poll: has the reduction finished?  (Empty futures and
  /// everything produced on the default queue or a simulated backend are
  /// born ready.)
  bool ready() const { return st_ == nullptr || st_->e.complete(); }

  /// The ordering half: the event marking the reduction's completion.
  /// Feed it to `q.wait(...)` to order later kernels after the reduction
  /// without touching the host value.
  event done() const { return st_ != nullptr ? st_->e : event{}; }

  /// The value half: blocks until complete (no-op when already done) and
  /// returns the result.  Repeatable.  The profiler records how long the
  /// host blocked here (0 for a ready future) — disabled cost is the usual
  /// one relaxed load and predictable branch.
  T get() const {
    JACCX_ASSERT(st_ != nullptr && "get() on an empty jacc::future");
    if (jaccx::prof::enabled()) [[unlikely]] {
      const std::uint64_t t0 = jaccx::prof::now_ns();
      st_->e.wait();
      jaccx::prof::note_future_wait(t0, jaccx::prof::now_ns());
      return *st_->value();
    }
    st_->e.wait();
    return *st_->value();
  }

  /// Simulated stream clock at completion (0 for real back ends / empty).
  double sim_time_us() const {
    return st_ != nullptr ? st_->e.sim_time_us() : 0.0;
  }

  /// Host-callback continuation: enqueues `fn(value)` on `q` as a host node
  /// ordered after this reduction (and after everything already on q), and
  /// returns the callback's completion event.  Inside a graph capture the
  /// callback is recorded and re-runs on every replay — the scalar plumbing
  /// between a dot and the kernel that consumes it (alpha = rr/ps) lives in
  /// the graph instead of forcing a host round-trip per iteration.  Defined
  /// in core/graph.hpp.
  template <class Fn>
  event then(queue& q, Fn&& fn) const;

private:
  friend struct detail::future_access<T>;
  explicit future(std::shared_ptr<detail::future_state<T>> st)
      : st_(std::move(st)) {}

  std::shared_ptr<detail::future_state<T>> st_;
};

namespace detail {

/// Internal bridge so the enqueue paths (template code in
/// parallel_reduce.hpp and the dist communicator) mint futures and fill
/// their slots without befriending every instantiation.
template <class T>
struct future_access {
  static future<T> make(std::shared_ptr<future_state<T>> st) {
    return future<T>(std::move(st));
  }
  static const std::shared_ptr<future_state<T>>& state(const future<T>& f) {
    return f.st_;
  }
};

/// Convenience for the sim/dist paths: a future that is already complete,
/// carrying `value` and (optionally) a simulated completion timestamp.
template <class T>
future<T> make_ready_future(T value, double sim_done_us = 0.0,
                            jaccx::sim::device* dev = nullptr) {
  auto st = std::make_shared<future_state<T>>();
  *st->value() = value;
  if (sim_done_us > 0.0 || dev != nullptr) {
    auto es = std::make_shared<event_state>();
    es->sim_done_us = sim_done_us;
    es->dev = dev;
    es->complete.store(true, std::memory_order_release);
    st->e = event_access::make(std::move(es));
  }
  return future_access<T>::make(std::move(st));
}

} // namespace detail
} // namespace jacc
