// Launch descriptors shared by every jacc dispatch front end.
//
// The public overload surface (1D/2D/3D x hinted/unhinted x sync/queued)
// funnels into one internal shape, detail::launch_desc: an iteration range,
// its rank, and the accounting hints.  Each public signature only fills the
// descriptor; the per-backend execution bodies in parallel_for.hpp /
// parallel_reduce.hpp consume it.  Adding a queue, a new rank, or a new
// hint therefore touches the descriptor once instead of nine overloads.
#pragma once

#include <string_view>

#include "support/span2d.hpp"

namespace jacc {

using jaccx::index_t;

/// Optional accounting hints: a kernel name for traces, a flops-per-index
/// estimate for the simulator's roofline term, and a bytes-per-index
/// estimate for profiler bandwidth columns.  Purely observational — they
/// never change results.
struct hints {
  std::string_view name = "jacc.parallel_for";
  double flops_per_index = 0.0;
  double bytes_per_index = 0.0;
  /// Promise that the kernel touches its array arguments only at the
  /// launch index, and only through those arguments (no captured aliases,
  /// no neighbor access).  Opt-in: it marks a 1D launch as a candidate for
  /// the graph-level chain fuser (core/fuse.hpp); never changes results.
  bool elementwise = false;
  /// Stencil reach along the slowest (partitioned) dimension: the kernel at
  /// index i may read array elements up to `stencil_radius` slow-dimension
  /// units away.  Under a device_set scope the auto-sharding layer infers
  /// the halo width from this and exchanges ghost cells before the launch;
  /// single-device execution ignores it entirely.
  index_t stencil_radius = 0;

  /// `hints::stencil(r)` — the shorthand the sharding layer documents for
  /// marking a radius-r stencil launch.
  static hints stencil(index_t r) {
    return hints{.name = "jacc.stencil", .stencil_radius = r};
  }
  /// Copy of these hints with a stencil radius attached (for call sites
  /// that already carry a name and accounting estimates).
  hints with_stencil(index_t r) const {
    hints h = *this;
    h.stencil_radius = r;
    return h;
  }
};

struct dims2 {
  index_t rows = 0; ///< M: the fast, column-major index (i)
  index_t cols = 0; ///< N: the slow index (j)
};

struct dims3 {
  index_t rows = 0;
  index_t cols = 0;
  index_t depth = 0;
};

namespace detail {

/// The one internal launch shape every public overload lowers to.  Unused
/// trailing dimensions are 1 so count() is always the product.
struct launch_desc {
  hints h;
  index_t rows = 0;
  index_t cols = 1;
  index_t depth = 1;
  int rank = 1;

  index_t count() const { return rows * cols * depth; }
  dims2 as_2d() const { return dims2{rows, cols}; }
  dims3 as_3d() const { return dims3{rows, cols, depth}; }

  static launch_desc d1(const hints& h, index_t n) {
    return launch_desc{h, n, 1, 1, 1};
  }
  static launch_desc d2(const hints& h, dims2 d) {
    return launch_desc{h, d.rows, d.cols, 1, 2};
  }
  static launch_desc d3(const hints& h, dims3 d) {
    return launch_desc{h, d.rows, d.cols, d.depth, 3};
  }
};

} // namespace detail
} // namespace jacc
