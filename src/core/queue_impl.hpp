// Shared state behind a jacc::queue handle, split out of queue.cpp so the
// graph capture/replay engine (graph.cpp) can reach the same counters,
// stream map, and pending-task bookkeeping without widening the public
// detail surface in queue.hpp.  Everything outside queue.cpp and graph.cpp
// keeps going through the queue_access bridge.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace jaccx::sim {
class device;
class stream;
}

namespace jacc {
namespace detail {

struct capture_builder;

/// Shared state behind a queue handle.  `mu` guards the stream map, the
/// lane assignment, the pending-task count, and the capture owner; the
/// counters are plain atomics so the hot enqueue paths never take the mutex
/// for accounting.
struct queue_impl {
  std::uint64_t id = 0;
  std::string label; ///< optional stream-name override ("<model>.<label>")

  std::mutex mu;
  std::condition_variable cv;
  std::map<jaccx::sim::device*, std::unique_ptr<jaccx::sim::stream>> streams;
  std::uint64_t pending = 0; ///< lane tasks submitted but not yet finished
  int lane = -1;             ///< threads lane, assigned on first async submit
  std::uint64_t lane_epoch = 0; ///< lane-set generation `lane` indexes into

  /// Graph capture.  While a capture is recording into this queue,
  /// `cap_owner` (guarded by mu) keeps the builder alive and `cap` mirrors
  /// it as a lock-free flag the hot enqueue paths read with one relaxed
  /// load — exactly the cost contract of the prof::enabled() gate.
  std::shared_ptr<capture_builder> cap_owner;
  std::atomic<capture_builder*> cap{nullptr};

  std::atomic<std::uint64_t> launches{0};
  std::atomic<std::uint64_t> copies{0};
  std::atomic<std::uint64_t> async_tasks{0};
  std::atomic<std::uint64_t> waits{0};
  std::atomic<std::uint64_t> syncs{0};
};

} // namespace detail
} // namespace jacc
