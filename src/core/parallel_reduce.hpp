// jacc::parallel_reduce — the paper's second construct (Sec. III, Fig. 2).
//
//   res = jacc::parallel_reduce(n, f, args...)           sum of f(i, args...)
//   res = jacc::parallel_reduce(dims2{M,N}, f, args...)  sum of f(i, j, ...)
//
// plus min/max variants (a JACC.jl extension).  The result is returned on
// the host; under simulated GPU back ends that implies the same two-kernel
// shared-memory tree reduction + scalar D2H transfer the paper's Fig. 3
// shows — which is exactly why DOT trails AXPY on every GPU in Figs. 8/9.
//
// Under JACC_MEM_POOL=none the GPU path allocates its partials/result
// buffers per call, as both JACC.jl and the paper's hand-written comparator
// do (CUDA.zeros in Fig. 3); that allocation traffic is part of the
// measured small-size overhead.  Under the default bucket mode the scratch
// persists per (device, element size) — no per-call allocation, and the
// two zero-fill kernels are skipped (see mem/workspace.hpp).
#pragma once

#include <cstring>
#include <limits>
#include <type_traits>

#include "core/parallel_for.hpp"
#include "mem/pool.hpp"
#include "mem/workspace.hpp"

namespace jacc {

/// Built-in reduction operators.  A reducer supplies an identity and a
/// binary combine; both are used on every backend so results agree across
/// targets (up to floating-point association order).
struct plus_reducer {
  template <class R>
  static constexpr R identity() {
    return R{};
  }
  template <class R>
  R operator()(R a, R b) const {
    return a + b;
  }
};

struct min_reducer {
  template <class R>
  static constexpr R identity() {
    return std::numeric_limits<R>::max();
  }
  template <class R>
  R operator()(R a, R b) const {
    return b < a ? b : a;
  }
};

struct max_reducer {
  template <class R>
  static constexpr R identity() {
    return std::numeric_limits<R>::lowest();
  }
  template <class R>
  R operator()(R a, R b) const {
    return a < b ? b : a;
  }
};

namespace detail {

/// Number of lanes per block in the generic GPU reduction: 512, the same
/// fixed power-of-two JACC.jl and the paper's Fig. 3 native code use; the
/// tree loop below requires the power of two.
inline constexpr std::int64_t reduce_block = 512;

/// Zero-fill kernel standing in for CUDA.zeros / AMDGPU.zeros /
/// oneAPI.zeros: real work on real devices, so it is charged as a kernel.
template <class R>
void fill_zero_sim(jaccx::sim::device& dev, jaccx::sim::device_span<R> s) {
  jaccx::sim::launch_config cfg;
  const std::int64_t n = s.size();
  const std::int64_t maxt = dev.model().max_threads_per_block;
  const std::int64_t threads = n < maxt ? (n > 0 ? n : 1) : maxt;
  cfg.block = jaccx::sim::dim3{threads};
  cfg.grid = jaccx::sim::dim3{jaccx::sim::ceil_div(n > 0 ? n : 1, threads)};
  cfg.name = "jacc.zeros";
  cfg.flavor.via_jacc = true;
  jaccx::sim::launch(dev, cfg, [s, n](jaccx::sim::kernel_ctx& ctx) {
    const index_t i = ctx.global_x();
    if (i < n) {
      s[i] = R{};
    }
  });
}

/// Two-kernel shared-memory tree reduction on a simulated GPU.  `eval(idx)`
/// produces the element value for linear index idx in [0, n).
template <class R, class Op, class Eval>
R reduce_sim_gpu(jaccx::sim::device& dev, const hints& h, index_t n, Op op,
                 const Eval& eval) {
  const std::int64_t blocks = jaccx::sim::ceil_div(n, reduce_block);
  const bool pooled = jaccx::mem::pooling();
  jaccx::sim::device_buffer<R> partials;
  jaccx::sim::device_buffer<R> result;
  jaccx::sim::device_span<R> ps;
  jaccx::sim::device_span<R> rs;
  if (pooled) {
    // Persistent workspace: no per-call allocation, and no fill kernels —
    // the first kernel overwrites every partial slot it owns and the
    // combine kernel reads only those; the tail was zeroed at growth.
    const auto ws =
        jaccx::mem::device_reduce_workspace(dev, sizeof(R), blocks);
    ps = jaccx::sim::device_span<R>(static_cast<R*>(ws.partials), blocks,
                                    &dev);
    rs = jaccx::sim::device_span<R>(static_cast<R*>(ws.result), 1, &dev);
  } else {
    partials =
        jaccx::sim::device_buffer<R>(dev, blocks, "jacc.reduce.partials");
    result = jaccx::sim::device_buffer<R>(dev, 1, "jacc.reduce.result");
    ps = partials.span();
    rs = result.span();
    // JACC.jl materializes its scratch with <vendor>.zeros, paying two fill
    // kernels per reduction just like the hand-written Fig. 3 code.
    fill_zero_sim(dev, ps);
    fill_zero_sim(dev, rs);
  }

  jaccx::sim::launch_config cfg;
  cfg.grid = jaccx::sim::dim3{blocks};
  cfg.block = jaccx::sim::dim3{reduce_block};
  cfg.shmem_bytes = static_cast<std::size_t>(reduce_block) * sizeof(R);
  cfg.name = h.name;
  cfg.flavor.via_jacc = true;
  cfg.flavor.is_reduce = true;
  cfg.flops_per_index = h.flops_per_index;

  jaccx::sim::launch_cooperative(dev, cfg, [&](jaccx::sim::kernel_ctx& ctx) {
    R* sh = ctx.shared_mem<R>();
    const std::int64_t ti = ctx.thread_idx.x;
    const index_t i = ctx.global_x();
    sh[ti] = i < n ? eval(i) : Op::template identity<R>();
    ctx.sync_threads();
    for (std::int64_t s = reduce_block / 2; s > 0; s >>= 1) {
      if (ti < s) {
        sh[ti] = op(sh[ti], sh[ti + s]);
      }
      ctx.sync_threads();
    }
    if (ti == 0) {
      ps[ctx.block_idx.x] = sh[0];
    }
  });

  jaccx::sim::launch_config cfg2 = cfg;
  cfg2.grid = jaccx::sim::dim3{1};
  cfg2.flops_per_index = 0.0;
  jaccx::sim::launch_cooperative(dev, cfg2, [&](jaccx::sim::kernel_ctx& ctx) {
    R* sh = ctx.shared_mem<R>();
    const std::int64_t ti = ctx.thread_idx.x;
    R v = Op::template identity<R>();
    for (std::int64_t k = ti; k < blocks; k += reduce_block) {
      v = op(v, static_cast<R>(ps[k]));
    }
    sh[ti] = v;
    ctx.sync_threads();
    for (std::int64_t s = reduce_block / 2; s > 0; s >>= 1) {
      if (ti < s) {
        sh[ti] = op(sh[ti], sh[ti + s]);
      }
      ctx.sync_threads();
    }
    if (ti == 0) {
      rs[0] = sh[0];
    }
  });

  R out{};
  if (pooled) {
    std::memcpy(&out, rs.data(), sizeof(R));
    dev.charge_d2h(sizeof(R), "jacc.reduce.d2h");
  } else {
    result.copy_to_host(&out, "jacc.reduce.d2h");
  }
  return out;
}

/// Real thread-pool reduction plumbing: one cache-line-padded partial per
/// worker, with `fold(acc, chunk)` accumulating one chunk into a worker's
/// slot.  Under dynamic scheduling a worker receives several chunks, so
/// each chunk folds into the slot rather than overwriting it; the slot
/// stays worker-private either way.  Under JACC_MEM_POOL=bucket the slot
/// array is the persistent mem scratch (leased for the whole reduction);
/// under none it is the seed's per-call vector.
template <class R, class Op, class Fold>
R reduce_threads_impl(index_t n, Op op, const Fold& fold,
                      jaccx::pool::thread_pool* pl = nullptr) {
  static_assert(sizeof(R) <= jaccx::cache_line_bytes);
  auto& pool = pl != nullptr ? *pl : jaccx::pool::default_pool();
  const unsigned width = pool.size();
  if (jaccx::mem::pooling()) {
    jaccx::mem::host_scratch_lease lease(static_cast<std::size_t>(width) *
                                         jaccx::cache_line_bytes);
    auto* base = static_cast<std::byte*>(lease.data());
    const auto slot = [base](unsigned w) -> R* {
      return reinterpret_cast<R*>(base +
                                  std::size_t{w} * jaccx::cache_line_bytes);
    };
    for (unsigned w = 0; w < width; ++w) {
      *slot(w) = Op::template identity<R>();
    }
    pool.parallel_chunks(n, [&](unsigned worker, jaccx::pool::range chunk) {
      *slot(worker) = fold(*slot(worker), chunk);
    });
    R out = Op::template identity<R>();
    for (unsigned w = 0; w < width; ++w) {
      out = op(out, *slot(w));
    }
    return out;
  }
  struct alignas(jaccx::cache_line_bytes) slot_t {
    R value;
  };
  std::vector<slot_t> partials(width, slot_t{Op::template identity<R>()});
  pool.parallel_chunks(n, [&](unsigned worker, jaccx::pool::range chunk) {
    partials[worker].value = fold(partials[worker].value, chunk);
  });
  R out = Op::template identity<R>();
  for (const auto& s : partials) {
    out = op(out, s.value);
  }
  return out;
}

template <class R, class Op, class Eval>
R reduce_threads(index_t n, Op op, const Eval& eval,
                 jaccx::pool::thread_pool* pl = nullptr) {
  return reduce_threads_impl<R>(
      n, op,
      [&](R acc, jaccx::pool::range chunk) {
        for (index_t i = chunk.begin; i < chunk.end; ++i) {
          acc = op(acc, eval(i));
        }
        return acc;
      },
      pl);
}

/// 2D threads reduction: chunks of the flattened (i fastest) space walked
/// row-stepped — one div/mod per chunk instead of two per element.
template <class R, class Op, class Eval2>
R reduce_threads_2d(dims2 d, Op op, const Eval2& eval,
                    jaccx::pool::thread_pool* pl = nullptr) {
  return reduce_threads_impl<R>(
      d.rows * d.cols, op,
      [&](R acc, jaccx::pool::range chunk) {
        jaccx::pool::walk_flat_2d(chunk, d.rows, [&](index_t i, index_t j) {
          acc = op(acc, eval(i, j));
        });
        return acc;
      },
      pl);
}

/// 3D threads reduction: chunks of the flattened (i fastest) space walked
/// with walk_flat_3d, mirroring reduce_threads_2d.
template <class R, class Op, class Eval3>
R reduce_threads_3d(dims3 d, Op op, const Eval3& eval,
                    jaccx::pool::thread_pool* pl = nullptr) {
  return reduce_threads_impl<R>(
      d.rows * d.cols * d.depth, op,
      [&](R acc, jaccx::pool::range chunk) {
        jaccx::pool::walk_flat_3d(chunk, d.rows, d.cols,
                                  [&](index_t i, index_t j, index_t k) {
          acc = op(acc, eval(i, j, k));
        });
        return acc;
      },
      pl);
}

/// Core dispatch shared by the 1D/2D front ends.  `pl` overrides the
/// worker pool on the threads backend (queue lanes); null = default pool.
template <class Op, class Eval>
auto reduce_dispatch(const hints& h, index_t n, Op op, const Eval& eval,
                     jaccx::pool::thread_pool* pl = nullptr) {
  using R = std::remove_cvref_t<decltype(eval(index_t{0}))>;
  static_assert(std::is_arithmetic_v<R>,
                "parallel_reduce kernels must return an arithmetic value");
  if (n == 0) {
    return Op::template identity<R>();
  }
  const backend b = current_backend();
  const jaccx::prof::kernel_scope prof_scope(
      jaccx::prof::construct::parallel_reduce, h.name,
      static_cast<std::uint64_t>(n), h.flops_per_index, h.bytes_per_index,
      to_string(b));
  switch (b) {
  case backend::serial: {
    R acc = Op::template identity<R>();
    for (index_t i = 0; i < n; ++i) {
      acc = op(acc, eval(i));
    }
    return acc;
  }
  case backend::threads:
    return reduce_threads<R>(n, op, eval, pl);
  case backend::cpu_rome: {
    auto& dev = *backend_device(b);
    auto cfg = detail::cpu_config(h);
    cfg.flavor.is_reduce = true;
    R acc = Op::template identity<R>();
    jaccx::sim::cpu_parallel_range(dev, cfg, n,
                                   [&](index_t i) { acc = op(acc, eval(i)); });
    return acc;
  }
  case backend::cuda_a100:
  case backend::hip_mi100:
  case backend::oneapi_max1550:
    return reduce_sim_gpu<R>(*backend_device(b), h, n, op, eval);
  }
  return Op::template identity<R>();
}

/// Row-stepped 2D reduction for the real CPU back ends: serial runs a
/// plain column-major double loop, threads walks each flattened chunk with
/// walk_flat_2d.  The linearized path (kept for the simulated-GPU lanes,
/// where it mirrors the paper's index mapping) pays `idx % rows` and
/// `idx / rows` per element; here that is one div/mod per chunk.  Visit
/// order (i fastest) is identical, so sums associate in the same order and
/// results match the linearized path bit for bit.
template <class Op, class Eval2>
auto reduce_cpu_2d(const hints& h, dims2 d, backend b, Op op,
                   const Eval2& eval, jaccx::pool::thread_pool* pl = nullptr) {
  using R = std::remove_cvref_t<decltype(eval(index_t{0}, index_t{0}))>;
  static_assert(std::is_arithmetic_v<R>,
                "parallel_reduce kernels must return an arithmetic value");
  const index_t total = d.rows * d.cols;
  if (total == 0) {
    return Op::template identity<R>();
  }
  const jaccx::prof::kernel_scope prof_scope(
      jaccx::prof::construct::parallel_reduce, h.name,
      static_cast<std::uint64_t>(total), h.flops_per_index, h.bytes_per_index,
      to_string(b));
  if (b == backend::serial) {
    R acc = Op::template identity<R>();
    for (index_t j = 0; j < d.cols; ++j) {
      for (index_t i = 0; i < d.rows; ++i) {
        acc = op(acc, eval(i, j));
      }
    }
    return acc;
  }
  return reduce_threads_2d<R>(d, op, eval, pl);
}

/// 2D dispatch shared by the sync and queued front ends: real CPU back
/// ends take the row-stepped path, simulated lanes the linearized one.
template <class Op, class Eval2>
auto reduce_2d_dispatch(const hints& h, dims2 d, backend b, Op op,
                        const Eval2& eval,
                        jaccx::pool::thread_pool* pl = nullptr) {
  if (b == backend::serial || b == backend::threads) {
    return reduce_cpu_2d(h, d, b, op, eval, pl);
  }
  const index_t total = d.rows * d.cols;
  return reduce_dispatch(
      h, total, op,
      [&](index_t idx) {
        const index_t i = idx % d.rows;
        const index_t j = idx / d.rows;
        return eval(i, j);
      },
      pl);
}

/// Row-stepped 3D reduction for the real CPU back ends: serial runs the
/// column-major triple loop (i fastest), threads walks each flattened
/// chunk with walk_flat_3d.  Visit order matches the linearized simulated
/// path, so results agree bit for bit.
template <class Op, class Eval3>
auto reduce_cpu_3d(const hints& h, dims3 d, backend b, Op op,
                   const Eval3& eval, jaccx::pool::thread_pool* pl = nullptr) {
  using R =
      std::remove_cvref_t<decltype(eval(index_t{0}, index_t{0}, index_t{0}))>;
  static_assert(std::is_arithmetic_v<R>,
                "parallel_reduce kernels must return an arithmetic value");
  const index_t total = d.rows * d.cols * d.depth;
  if (total == 0) {
    return Op::template identity<R>();
  }
  const jaccx::prof::kernel_scope prof_scope(
      jaccx::prof::construct::parallel_reduce, h.name,
      static_cast<std::uint64_t>(total), h.flops_per_index, h.bytes_per_index,
      to_string(b));
  if (b == backend::serial) {
    R acc = Op::template identity<R>();
    for (index_t k = 0; k < d.depth; ++k) {
      for (index_t j = 0; j < d.cols; ++j) {
        for (index_t i = 0; i < d.rows; ++i) {
          acc = op(acc, eval(i, j, k));
        }
      }
    }
    return acc;
  }
  return reduce_threads_3d<R>(d, op, eval, pl);
}

/// 3D dispatch: real CPU back ends take the row-stepped path, simulated
/// lanes the linearized one (i fastest, then j, then k — the same mapping
/// parallel_for's 3D launch uses).
template <class Op, class Eval3>
auto reduce_3d_dispatch(const hints& h, dims3 d, backend b, Op op,
                        const Eval3& eval,
                        jaccx::pool::thread_pool* pl = nullptr) {
  if (b == backend::serial || b == backend::threads) {
    return reduce_cpu_3d(h, d, b, op, eval, pl);
  }
  const index_t total = d.rows * d.cols * d.depth;
  return reduce_dispatch(
      h, total, op,
      [&](index_t idx) {
        const index_t i = idx % d.rows;
        const index_t j = (idx / d.rows) % d.cols;
        const index_t k = idx / (d.rows * d.cols);
        return eval(i, j, k);
      },
      pl);
}

// --- sharded reductions (device_set_scope) ----------------------------------

/// Per-device loop shared by the sharded 1/2/3-D reductions: stage the
/// array arguments against the set's plan, then let each device tree-reduce
/// its owned chunk of the slowest dimension and combine the partials on the
/// host in device order.  For equal weights the chunks, the per-device
/// engine (reduce_sim_gpu) and the combination order are all identical to
/// the deprecated jaccx::multi::parallel_reduce, so results match bit for
/// bit.  `partial(dev, owned)` runs the device-local reduction.
template <class R, class Op, class Partial, class... Args>
R shard_reduce_loop(device_set& ds, const hints& h, std::uint64_t count,
                    index_t slow, index_t fast, Op op, const Partial& partial,
                    Args&... args) {
  const index_t radius = shard_stage_args(ds, h, args...);
  const jaccx::prof::kernel_scope prof_scope(
      jaccx::prof::construct::parallel_reduce, h.name, count,
      h.flops_per_index, h.bytes_per_index, to_string(ds.target()));
  R total = Op::template identity<R>();
  for (int dv = 0; dv < ds.devices(); ++dv) {
    const auto owned = ds.chunk(slow, dv);
    if (owned.empty()) {
      continue;
    }
    auto& dev = ds.dev(dv);
    if (radius > 0) {
      jaccx::sim::join(dev, {&ds.shard_stream(dv)});
    }
    (shard_bind_arg(dv, args), ...);
    const double t0 = dev.tl().now_us();
    const R p = partial(dev, owned);
    (shard_unbind_arg(args), ...);
    ds.note_launch(dv, dev.tl().now_us() - t0, owned.size() * fast, h);
    total = op(total, p);
  }
  ds.maybe_rebalance();
  return total;
}

/// Sharded 1D reduction with global indices.
template <class Op, class F, class... Args>
auto shard_reduce_1d(device_set& ds, const hints& h, index_t n, Op op, F&& f,
                     Args&&... args) {
  using R = std::remove_cvref_t<decltype(f(index_t{0}, args...))>;
  static_assert(std::is_arithmetic_v<R>,
                "parallel_reduce kernels must return an arithmetic value");
  if (n == 0) {
    return Op::template identity<R>();
  }
  return shard_reduce_loop<R>(
      ds, h, static_cast<std::uint64_t>(n), n, index_t{1}, op,
      [&](jaccx::sim::device& dev, auto owned) {
        return reduce_sim_gpu<R>(dev, h, owned.size(), op, [&](index_t li) {
          return f(owned.begin + li, args...);
        });
      },
      args...);
}

/// Sharded 2D reduction: columns are chunked, each device reduces its
/// linearized rows × local-cols block (i fastest), j is global.
template <class Op, class F, class... Args>
auto shard_reduce_2d(device_set& ds, const hints& h, dims2 d, Op op, F&& f,
                     Args&&... args) {
  using R = std::remove_cvref_t<decltype(f(index_t{0}, index_t{0}, args...))>;
  static_assert(std::is_arithmetic_v<R>,
                "parallel_reduce kernels must return an arithmetic value");
  const index_t total = d.rows * d.cols;
  if (total == 0) {
    return Op::template identity<R>();
  }
  return shard_reduce_loop<R>(
      ds, h, static_cast<std::uint64_t>(total), d.cols, d.rows, op,
      [&](jaccx::sim::device& dev, auto owned) {
        return reduce_sim_gpu<R>(
            dev, h, d.rows * owned.size(), op, [&](index_t idx) {
              const index_t i = idx % d.rows;
              const index_t lj = idx / d.rows;
              return f(i, owned.begin + lj, args...);
            });
      },
      args...);
}

/// Sharded 3D reduction: depth planes are chunked, i/j are global.
template <class Op, class F, class... Args>
auto shard_reduce_3d(device_set& ds, const hints& h, dims3 d, Op op, F&& f,
                     Args&&... args) {
  using R = std::remove_cvref_t<decltype(f(index_t{0}, index_t{0}, index_t{0},
                                           args...))>;
  static_assert(std::is_arithmetic_v<R>,
                "parallel_reduce kernels must return an arithmetic value");
  const index_t total = d.rows * d.cols * d.depth;
  if (total == 0) {
    return Op::template identity<R>();
  }
  const index_t plane = d.rows * d.cols;
  return shard_reduce_loop<R>(
      ds, h, static_cast<std::uint64_t>(total), d.depth, plane, op,
      [&](jaccx::sim::device& dev, auto owned) {
        return reduce_sim_gpu<R>(
            dev, h, plane * owned.size(), op, [&](index_t idx) {
              const index_t i = idx % d.rows;
              const index_t j = (idx / d.rows) % d.cols;
              const index_t lk = idx / plane;
              return f(i, j, owned.begin + lk, args...);
            });
      },
      args...);
}

} // namespace detail

// --- queue members: non-blocking (future-returning) reductions --------------
// The member forms are the primitive: they return a jacc::future<R> whose
// event orders later work (q.wait(f)) and whose slot carries the value
// (f.get()).  On simulated back ends the value is final at enqueue and the
// charges (kernels + scalar D2H) land on the queue's stream; on threads
// async lanes the host genuinely continues while the lane computes.  The
// free parallel_reduce(q, ...) overloads below are these calls plus .get().

template <class F, class... Args>
auto queue::parallel_reduce(const hints& h, index_t n, F&& f, Args&&... args) {
  using R = std::remove_cvref_t<decltype(f(index_t{0}, args...))>;
  const backend b = current_backend();
  if (is_default()) {
    // The sync model: compute in place, future born ready.
    return detail::make_ready_future<R>(detail::reduce_dispatch(
        h, n, plus_reducer{}, [&](index_t i) { return f(i, args...); }));
  }
  if (detail::queue_capturing(*this)) [[unlikely]] {
    // Recorded reduction: the future's pooled result slot is leased for the
    // graph's lifetime and rewritten by every replay; its event is the
    // capture marker (get() returns the most recent replay's value).
    auto fs = std::make_shared<detail::future_state<R>>();
    auto body = detail::make_replay_body(
        [fs, hname = std::string(h.name), hflops = h.flops_per_index,
         hbytes = h.bytes_per_index, n,
         fn = std::decay_t<F>(std::forward<F>(f)),
         tup = std::tuple<detail::async_arg_t<Args&&>...>(
             std::forward<Args>(args)...)](
            jaccx::pool::thread_pool* pl) mutable {
          const hints hh{.name = hname, .flops_per_index = hflops,
                         .bytes_per_index = hbytes};
          std::apply(
              [&](auto&... as) {
                *fs->value() = detail::reduce_dispatch(
                    hh, n, plus_reducer{},
                    [&](index_t i) { return fn(i, as...); }, pl);
              },
              tup);
        });
    fs->e = detail::capture_append(*this, detail::capture_kind::kernel,
                                   std::string(h.name), std::move(body));
    return detail::future_access<R>::make(std::move(fs));
  }
  if (jaccx::sim::device* dev = backend_device(b); dev != nullptr) {
    auto fs = std::make_shared<detail::future_state<R>>();
    {
      const detail::queue_bind bind(this, dev);
      *fs->value() = detail::reduce_dispatch(
          h, n, plus_reducer{}, [&](index_t i) { return f(i, args...); });
    }
    fs->e = detail::finish_sim_op(*this, *dev, /*is_copy=*/false);
    return detail::future_access<R>::make(std::move(fs));
  }
  if (b == backend::threads && detail::queue_is_async(*this)) {
    auto fs = std::make_shared<detail::future_state<R>>();
    auto es = std::make_shared<detail::event_state>();
    fs->e = detail::event_access::make(es);
    detail::queue_submit(
        *this,
        // The hint name is re-owned (a temporary at the call site must not
        // dangle on the lane thread) and args follow the async_arg_t
        // policy: arrays by reference, copyables by value.
        [fs, hname = std::string(h.name), hflops = h.flops_per_index,
         hbytes = h.bytes_per_index, n,
         fn = std::decay_t<F>(std::forward<F>(f)),
         tup = std::tuple<detail::async_arg_t<Args&&>...>(
             std::forward<Args>(args)...)](
            jaccx::pool::thread_pool* pl) mutable {
          const hints hh{.name = hname, .flops_per_index = hflops,
                         .bytes_per_index = hbytes};
          std::apply(
              [&](auto&... as) {
                *fs->value() = detail::reduce_dispatch(
                    hh, n, plus_reducer{},
                    [&](index_t i) { return fn(i, as...); }, pl);
              },
              tup);
        },
        std::move(es));
    return detail::future_access<R>::make(std::move(fs));
  }
  detail::note_sync_op(*this, /*is_copy=*/false);
  return detail::make_ready_future<R>(detail::reduce_dispatch(
      h, n, plus_reducer{}, [&](index_t i) { return f(i, args...); }));
}

template <class F, class... Args>
  requires std::invocable<F&, index_t, Args&...>
auto queue::parallel_reduce(index_t n, F&& f, Args&&... args) {
  return parallel_reduce(hints{.name = "jacc.parallel_reduce"}, n,
                         std::forward<F>(f), std::forward<Args>(args)...);
}

template <class F, class... Args>
auto queue::parallel_reduce(const hints& h, dims2 d, F&& f, Args&&... args) {
  JACCX_ASSERT(d.rows >= 0 && d.cols >= 0);
  using R = std::remove_cvref_t<decltype(f(index_t{0}, index_t{0}, args...))>;
  const backend b = current_backend();
  const auto eval = [&](index_t i, index_t j) { return f(i, j, args...); };
  if (is_default()) {
    return detail::make_ready_future<R>(
        detail::reduce_2d_dispatch(h, d, b, plus_reducer{}, eval));
  }
  if (detail::queue_capturing(*this)) [[unlikely]] {
    auto fs = std::make_shared<detail::future_state<R>>();
    auto body = detail::make_replay_body(
        [fs, hname = std::string(h.name), hflops = h.flops_per_index,
         hbytes = h.bytes_per_index, d, b,
         fn = std::decay_t<F>(std::forward<F>(f)),
         tup = std::tuple<detail::async_arg_t<Args&&>...>(
             std::forward<Args>(args)...)](
            jaccx::pool::thread_pool* pl) mutable {
          const hints hh{.name = hname, .flops_per_index = hflops,
                         .bytes_per_index = hbytes};
          std::apply(
              [&](auto&... as) {
                *fs->value() = detail::reduce_2d_dispatch(
                    hh, d, b, plus_reducer{},
                    [&](index_t i, index_t j) { return fn(i, j, as...); },
                    pl);
              },
              tup);
        });
    fs->e = detail::capture_append(*this, detail::capture_kind::kernel,
                                   std::string(h.name), std::move(body));
    return detail::future_access<R>::make(std::move(fs));
  }
  if (jaccx::sim::device* dev = backend_device(b); dev != nullptr) {
    auto fs = std::make_shared<detail::future_state<R>>();
    {
      const detail::queue_bind bind(this, dev);
      *fs->value() = detail::reduce_2d_dispatch(h, d, b, plus_reducer{}, eval);
    }
    fs->e = detail::finish_sim_op(*this, *dev, /*is_copy=*/false);
    return detail::future_access<R>::make(std::move(fs));
  }
  if (b == backend::threads && detail::queue_is_async(*this)) {
    auto fs = std::make_shared<detail::future_state<R>>();
    auto es = std::make_shared<detail::event_state>();
    fs->e = detail::event_access::make(es);
    detail::queue_submit(
        *this,
        [fs, hname = std::string(h.name), hflops = h.flops_per_index,
         hbytes = h.bytes_per_index, d, b,
         fn = std::decay_t<F>(std::forward<F>(f)),
         tup = std::tuple<detail::async_arg_t<Args&&>...>(
             std::forward<Args>(args)...)](
            jaccx::pool::thread_pool* pl) mutable {
          const hints hh{.name = hname, .flops_per_index = hflops,
                         .bytes_per_index = hbytes};
          std::apply(
              [&](auto&... as) {
                *fs->value() = detail::reduce_2d_dispatch(
                    hh, d, b, plus_reducer{},
                    [&](index_t i, index_t j) { return fn(i, j, as...); },
                    pl);
              },
              tup);
        },
        std::move(es));
    return detail::future_access<R>::make(std::move(fs));
  }
  detail::note_sync_op(*this, /*is_copy=*/false);
  return detail::make_ready_future<R>(
      detail::reduce_2d_dispatch(h, d, b, plus_reducer{}, eval));
}

template <class F, class... Args>
  requires std::invocable<F&, index_t, index_t, Args&...>
auto queue::parallel_reduce(dims2 d, F&& f, Args&&... args) {
  return parallel_reduce(hints{.name = "jacc.parallel_reduce2d"}, d,
                         std::forward<F>(f), std::forward<Args>(args)...);
}

// --- queued overloads (host-blocking forms) ---------------------------------
// Queue-ordered but host-blocking: the member future plus an immediate
// .get().  Kept because "run after this queue's pipeline and hand me the
// number" is the common closing step; counters and charges are identical to
// the future form.

/// 1D sum-reduction on a queue, with hints.
template <class F, class... Args>
auto parallel_reduce(queue& q, const hints& h, index_t n, F&& f,
                     Args&&... args) {
  if (detail::queue_capturing(q)) [[unlikely]] {
    // The value does not exist at record time, so returning it here would
    // silently hand back zero.  Capturable form: q.parallel_reduce(...)
    // futures, read via future::then or after a replay.
    jaccx::throw_usage_error(
        "host-blocking parallel_reduce is not capturable; use the "
        "future-returning queue::parallel_reduce inside graph capture");
  }
  return q.parallel_reduce(h, n, std::forward<F>(f),
                           std::forward<Args>(args)...)
      .get();
}

/// 1D sum-reduction on a queue.
template <class F, class... Args>
  requires std::invocable<F&, index_t, Args&...>
auto parallel_reduce(queue& q, index_t n, F&& f, Args&&... args) {
  return parallel_reduce(q, hints{.name = "jacc.parallel_reduce"}, n,
                         std::forward<F>(f), std::forward<Args>(args)...);
}

/// 2D sum-reduction on a queue, with hints.
template <class F, class... Args>
auto parallel_reduce(queue& q, const hints& h, dims2 d, F&& f,
                     Args&&... args) {
  if (detail::queue_capturing(q)) [[unlikely]] {
    jaccx::throw_usage_error(
        "host-blocking parallel_reduce is not capturable; use the "
        "future-returning queue::parallel_reduce inside graph capture");
  }
  return q.parallel_reduce(h, d, std::forward<F>(f),
                           std::forward<Args>(args)...)
      .get();
}

/// 2D sum-reduction on a queue.
template <class F, class... Args>
  requires std::invocable<F&, index_t, index_t, Args&...>
auto parallel_reduce(queue& q, dims2 d, F&& f, Args&&... args) {
  return parallel_reduce(q, hints{.name = "jacc.parallel_reduce2d"}, d,
                         std::forward<F>(f), std::forward<Args>(args)...);
}

// --- synchronous overloads (the paper's API) --------------------------------
// Inside a queue_scope these route to the scope's queue.

/// 1D sum-reduction with hints: returns sum over i of f(i, args...).
template <class F, class... Args>
auto parallel_reduce(const hints& h, index_t n, F&& f, Args&&... args) {
  if (queue* q = detail::active_queue(); q != nullptr) [[unlikely]] {
    return parallel_reduce(*q, h, n, std::forward<F>(f),
                           std::forward<Args>(args)...);
  }
  if (device_set* ds = detail::active_shard_set(); ds != nullptr) [[unlikely]] {
    return detail::shard_reduce_1d(*ds, h, n, plus_reducer{},
                                   std::forward<F>(f),
                                   std::forward<Args>(args)...);
  }
  return detail::reduce_dispatch(h, n, plus_reducer{},
                                 [&](index_t i) { return f(i, args...); });
}

/// 1D sum-reduction: `res = JACC.parallel_reduce(SIZE, dot, dx, dy)`.
template <class F, class... Args>
  requires std::invocable<F&, index_t, Args&...>
auto parallel_reduce(index_t n, F&& f, Args&&... args) {
  return parallel_reduce(hints{.name = "jacc.parallel_reduce"}, n,
                         std::forward<F>(f), std::forward<Args>(args)...);
}

/// 1D min/max reductions (JACC.jl extension).
template <class F, class... Args>
auto parallel_reduce_min(index_t n, F&& f, Args&&... args) {
  const hints h{.name = "jacc.parallel_reduce_min"};
  if (device_set* ds = detail::active_shard_set(); ds != nullptr) [[unlikely]] {
    return detail::shard_reduce_1d(*ds, h, n, min_reducer{},
                                   std::forward<F>(f),
                                   std::forward<Args>(args)...);
  }
  return detail::reduce_dispatch(h, n, min_reducer{},
                                 [&](index_t i) { return f(i, args...); });
}

template <class F, class... Args>
auto parallel_reduce_max(index_t n, F&& f, Args&&... args) {
  const hints h{.name = "jacc.parallel_reduce_max"};
  if (device_set* ds = detail::active_shard_set(); ds != nullptr) [[unlikely]] {
    return detail::shard_reduce_1d(*ds, h, n, max_reducer{},
                                   std::forward<F>(f),
                                   std::forward<Args>(args)...);
  }
  return detail::reduce_dispatch(h, n, max_reducer{},
                                 [&](index_t i) { return f(i, args...); });
}

/// 2D sum-reduction with hints: sum over (i, j) of f(i, j, args...).  The
/// index space is linearized with i fastest, so simulated-GPU lanes access
/// column-major arrays coalesced, as the paper's multidimensional mapping
/// does.
template <class F, class... Args>
auto parallel_reduce(const hints& h, dims2 d, F&& f, Args&&... args) {
  if (queue* q = detail::active_queue(); q != nullptr) [[unlikely]] {
    return parallel_reduce(*q, h, d, std::forward<F>(f),
                           std::forward<Args>(args)...);
  }
  if (device_set* ds = detail::active_shard_set(); ds != nullptr) [[unlikely]] {
    return detail::shard_reduce_2d(*ds, h, d, plus_reducer{},
                                   std::forward<F>(f),
                                   std::forward<Args>(args)...);
  }
  JACCX_ASSERT(d.rows >= 0 && d.cols >= 0);
  return detail::reduce_2d_dispatch(
      h, d, current_backend(), plus_reducer{},
      [&](index_t i, index_t j) { return f(i, j, args...); });
}

/// 2D sum-reduction: `res = JACC.parallel_reduce((M, N), dot, dx, dy)`.
template <class F, class... Args>
  requires std::invocable<F&, index_t, index_t, Args&...>
auto parallel_reduce(dims2 d, F&& f, Args&&... args) {
  return parallel_reduce(hints{.name = "jacc.parallel_reduce2d"}, d,
                         std::forward<F>(f), std::forward<Args>(args)...);
}

/// 3D sum-reduction with hints: sum over (i, j, k) of f(i, j, k, args...),
/// linearized i fastest — the same mapping parallel_for's 3D launch uses.
/// There is no queued form yet: inside a queue_scope this throws rather
/// than silently running out of order with the enqueued work.
template <class F, class... Args>
auto parallel_reduce(const hints& h, dims3 d, F&& f, Args&&... args) {
  if (detail::active_queue() != nullptr) [[unlikely]] {
    jaccx::throw_usage_error(
        "3D parallel_reduce has no queued form; run it outside the "
        "queue_scope or linearize onto dims2");
  }
  if (device_set* ds = detail::active_shard_set(); ds != nullptr) [[unlikely]] {
    return detail::shard_reduce_3d(*ds, h, d, plus_reducer{},
                                   std::forward<F>(f),
                                   std::forward<Args>(args)...);
  }
  JACCX_ASSERT(d.rows >= 0 && d.cols >= 0 && d.depth >= 0);
  return detail::reduce_3d_dispatch(
      h, d, current_backend(), plus_reducer{},
      [&](index_t i, index_t j, index_t k) { return f(i, j, k, args...); });
}

/// 3D sum-reduction: `res = jacc::parallel_reduce({M, N, K}, f, args...)`.
template <class F, class... Args>
  requires std::invocable<F&, index_t, index_t, index_t, Args&...>
auto parallel_reduce(dims3 d, F&& f, Args&&... args) {
  return parallel_reduce(hints{.name = "jacc.parallel_reduce3d"}, d,
                         std::forward<F>(f), std::forward<Args>(args)...);
}

} // namespace jacc
