// jacc::parallel_reduce — the paper's second construct (Sec. III, Fig. 2).
//
//   res = jacc::parallel_reduce(n, f, args...)           sum of f(i, args...)
//   res = jacc::parallel_reduce(dims2{M,N}, f, args...)  sum of f(i, j, ...)
//
// plus min/max variants (a JACC.jl extension).  The result is returned on
// the host; under simulated GPU back ends that implies the same two-kernel
// shared-memory tree reduction + scalar D2H transfer the paper's Fig. 3
// shows — which is exactly why DOT trails AXPY on every GPU in Figs. 8/9.
//
// The GPU path allocates its partials/result buffers per call, as both
// JACC.jl and the paper's hand-written comparator do (CUDA.zeros in Fig. 3);
// that allocation traffic is part of the measured small-size overhead.
#pragma once

#include <limits>
#include <type_traits>

#include "core/parallel_for.hpp"

namespace jacc {

/// Built-in reduction operators.  A reducer supplies an identity and a
/// binary combine; both are used on every backend so results agree across
/// targets (up to floating-point association order).
struct plus_reducer {
  template <class R>
  static constexpr R identity() {
    return R{};
  }
  template <class R>
  R operator()(R a, R b) const {
    return a + b;
  }
};

struct min_reducer {
  template <class R>
  static constexpr R identity() {
    return std::numeric_limits<R>::max();
  }
  template <class R>
  R operator()(R a, R b) const {
    return b < a ? b : a;
  }
};

struct max_reducer {
  template <class R>
  static constexpr R identity() {
    return std::numeric_limits<R>::lowest();
  }
  template <class R>
  R operator()(R a, R b) const {
    return a < b ? b : a;
  }
};

namespace detail {

/// Number of lanes per block in the generic GPU reduction: 512, the same
/// fixed power-of-two JACC.jl and the paper's Fig. 3 native code use; the
/// tree loop below requires the power of two.
inline constexpr std::int64_t reduce_block = 512;

/// Zero-fill kernel standing in for CUDA.zeros / AMDGPU.zeros /
/// oneAPI.zeros: real work on real devices, so it is charged as a kernel.
template <class R>
void fill_zero_sim(jaccx::sim::device& dev, jaccx::sim::device_span<R> s) {
  jaccx::sim::launch_config cfg;
  const std::int64_t n = s.size();
  const std::int64_t maxt = dev.model().max_threads_per_block;
  const std::int64_t threads = n < maxt ? (n > 0 ? n : 1) : maxt;
  cfg.block = jaccx::sim::dim3{threads};
  cfg.grid = jaccx::sim::dim3{jaccx::sim::ceil_div(n > 0 ? n : 1, threads)};
  cfg.name = "jacc.zeros";
  cfg.flavor.via_jacc = true;
  jaccx::sim::launch(dev, cfg, [s, n](jaccx::sim::kernel_ctx& ctx) {
    const index_t i = ctx.global_x();
    if (i < n) {
      s[i] = R{};
    }
  });
}

/// Two-kernel shared-memory tree reduction on a simulated GPU.  `eval(idx)`
/// produces the element value for linear index idx in [0, n).
template <class R, class Op, class Eval>
R reduce_sim_gpu(jaccx::sim::device& dev, const hints& h, index_t n, Op op,
                 const Eval& eval) {
  const std::int64_t blocks = jaccx::sim::ceil_div(n, reduce_block);
  jaccx::sim::device_buffer<R> partials(dev, blocks, "jacc.reduce.partials");
  jaccx::sim::device_buffer<R> result(dev, 1, "jacc.reduce.result");
  auto ps = partials.span();
  auto rs = result.span();
  // JACC.jl materializes its scratch with <vendor>.zeros, paying two fill
  // kernels per reduction just like the hand-written Fig. 3 code.
  fill_zero_sim(dev, ps);
  fill_zero_sim(dev, rs);

  jaccx::sim::launch_config cfg;
  cfg.grid = jaccx::sim::dim3{blocks};
  cfg.block = jaccx::sim::dim3{reduce_block};
  cfg.shmem_bytes = static_cast<std::size_t>(reduce_block) * sizeof(R);
  cfg.name = h.name;
  cfg.flavor.via_jacc = true;
  cfg.flavor.is_reduce = true;
  cfg.flops_per_index = h.flops_per_index;

  jaccx::sim::launch_cooperative(dev, cfg, [&](jaccx::sim::kernel_ctx& ctx) {
    R* sh = ctx.shared_mem<R>();
    const std::int64_t ti = ctx.thread_idx.x;
    const index_t i = ctx.global_x();
    sh[ti] = i < n ? eval(i) : Op::template identity<R>();
    ctx.sync_threads();
    for (std::int64_t s = reduce_block / 2; s > 0; s >>= 1) {
      if (ti < s) {
        sh[ti] = op(sh[ti], sh[ti + s]);
      }
      ctx.sync_threads();
    }
    if (ti == 0) {
      ps[ctx.block_idx.x] = sh[0];
    }
  });

  jaccx::sim::launch_config cfg2 = cfg;
  cfg2.grid = jaccx::sim::dim3{1};
  cfg2.flops_per_index = 0.0;
  jaccx::sim::launch_cooperative(dev, cfg2, [&](jaccx::sim::kernel_ctx& ctx) {
    R* sh = ctx.shared_mem<R>();
    const std::int64_t ti = ctx.thread_idx.x;
    R v = Op::template identity<R>();
    for (std::int64_t k = ti; k < blocks; k += reduce_block) {
      v = op(v, static_cast<R>(ps[k]));
    }
    sh[ti] = v;
    ctx.sync_threads();
    for (std::int64_t s = reduce_block / 2; s > 0; s >>= 1) {
      if (ti < s) {
        sh[ti] = op(sh[ti], sh[ti + s]);
      }
      ctx.sync_threads();
    }
    if (ti == 0) {
      rs[0] = sh[0];
    }
  });

  R out{};
  result.copy_to_host(&out, "jacc.reduce.d2h");
  return out;
}

/// Real thread-pool reduction: one cache-line-padded partial per worker.
/// Under dynamic scheduling a worker receives several chunks, so each
/// chunk folds into the worker's slot rather than overwriting it; the slot
/// stays worker-private either way.
template <class R, class Op, class Eval>
R reduce_threads(index_t n, Op op, const Eval& eval) {
  auto& pool = jaccx::pool::default_pool();
  struct alignas(jaccx::cache_line_bytes) slot {
    R value;
  };
  std::vector<slot> partials(pool.size(),
                             slot{Op::template identity<R>()});
  pool.parallel_chunks(n, [&](unsigned worker, jaccx::pool::range chunk) {
    R acc = partials[worker].value;
    for (index_t i = chunk.begin; i < chunk.end; ++i) {
      acc = op(acc, eval(i));
    }
    partials[worker].value = acc;
  });
  R out = Op::template identity<R>();
  for (const auto& s : partials) {
    out = op(out, s.value);
  }
  return out;
}

/// Core dispatch shared by the 1D/2D front ends.
template <class Op, class Eval>
auto reduce_dispatch(const hints& h, index_t n, Op op, const Eval& eval) {
  using R = std::remove_cvref_t<decltype(eval(index_t{0}))>;
  static_assert(std::is_arithmetic_v<R>,
                "parallel_reduce kernels must return an arithmetic value");
  if (n == 0) {
    return Op::template identity<R>();
  }
  const backend b = current_backend();
  const jaccx::prof::kernel_scope prof_scope(
      jaccx::prof::construct::parallel_reduce, h.name,
      static_cast<std::uint64_t>(n), h.flops_per_index, h.bytes_per_index,
      to_string(b));
  switch (b) {
  case backend::serial: {
    R acc = Op::template identity<R>();
    for (index_t i = 0; i < n; ++i) {
      acc = op(acc, eval(i));
    }
    return acc;
  }
  case backend::threads:
    return reduce_threads<R>(n, op, eval);
  case backend::cpu_rome: {
    auto& dev = *backend_device(b);
    auto cfg = detail::cpu_config(h);
    cfg.flavor.is_reduce = true;
    R acc = Op::template identity<R>();
    jaccx::sim::cpu_parallel_range(dev, cfg, n,
                                   [&](index_t i) { acc = op(acc, eval(i)); });
    return acc;
  }
  case backend::cuda_a100:
  case backend::hip_mi100:
  case backend::oneapi_max1550:
    return reduce_sim_gpu<R>(*backend_device(b), h, n, op, eval);
  }
  return Op::template identity<R>();
}

} // namespace detail

/// 1D sum-reduction with hints: returns sum over i of f(i, args...).
template <class F, class... Args>
auto parallel_reduce(const hints& h, index_t n, F&& f, Args&&... args) {
  return detail::reduce_dispatch(h, n, plus_reducer{},
                                 [&](index_t i) { return f(i, args...); });
}

/// 1D sum-reduction: `res = JACC.parallel_reduce(SIZE, dot, dx, dy)`.
template <class F, class... Args>
  requires std::invocable<F&, index_t, Args&...>
auto parallel_reduce(index_t n, F&& f, Args&&... args) {
  return parallel_reduce(hints{.name = "jacc.parallel_reduce"}, n,
                         std::forward<F>(f), std::forward<Args>(args)...);
}

/// 1D min/max reductions (JACC.jl extension).
template <class F, class... Args>
auto parallel_reduce_min(index_t n, F&& f, Args&&... args) {
  return detail::reduce_dispatch(hints{.name = "jacc.parallel_reduce_min"}, n,
                                 min_reducer{},
                                 [&](index_t i) { return f(i, args...); });
}

template <class F, class... Args>
auto parallel_reduce_max(index_t n, F&& f, Args&&... args) {
  return detail::reduce_dispatch(hints{.name = "jacc.parallel_reduce_max"}, n,
                                 max_reducer{},
                                 [&](index_t i) { return f(i, args...); });
}

/// 2D sum-reduction with hints: sum over (i, j) of f(i, j, args...).  The
/// index space is linearized with i fastest, so simulated-GPU lanes access
/// column-major arrays coalesced, as the paper's multidimensional mapping
/// does.
template <class F, class... Args>
auto parallel_reduce(const hints& h, dims2 d, F&& f, Args&&... args) {
  JACCX_ASSERT(d.rows >= 0 && d.cols >= 0);
  const index_t total = d.rows * d.cols;
  return detail::reduce_dispatch(h, total, plus_reducer{}, [&](index_t idx) {
    const index_t i = idx % d.rows;
    const index_t j = idx / d.rows;
    return f(i, j, args...);
  });
}

/// 2D sum-reduction: `res = JACC.parallel_reduce((M, N), dot, dx, dy)`.
template <class F, class... Args>
  requires std::invocable<F&, index_t, index_t, Args&...>
auto parallel_reduce(dims2 d, F&& f, Args&&... args) {
  return parallel_reduce(hints{.name = "jacc.parallel_reduce2d"}, d,
                         std::forward<F>(f), std::forward<Args>(args)...);
}

} // namespace jacc
