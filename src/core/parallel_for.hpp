// jacc::parallel_for — the paper's primary construct (Sec. III, Fig. 2).
//
// Canonical forms (each also takes a leading `jacc::hints`):
//
//   jacc::parallel_for(n, f, args...)            calls f(i, args...)
//   jacc::parallel_for(dims2{M, N}, f, args...)  calls f(i, j, args...)
//   jacc::parallel_for(dims3{M,N,K}, f, args...) calls f(i, j, k, args...)
//   jacc::parallel_for(q, ..., f, args...)       enqueues on jacc::queue q
//                                                and returns a jacc::event
//
// Indices are 0-based (Julia's are 1-based; everything else matches the
// paper).  The kernel function is defined separately and passed with its
// parameters, exactly as JACC prescribes.  Synchronous calls are the
// paper's model: each completes before returning.  Queue calls are the
// stream-ordered extension (queue.hpp); on the default queue they are
// exactly the synchronous calls.
//
// Internally every public overload lowers to one detail::launch_desc and
// one per-rank execution body, so the 1D/2D/3D x hinted/unhinted x
// sync/queued surface shares a single dispatch switch per rank.
//
// Back-end mapping (paper Sec. IV):
//   serial/threads      coarse chunks; 2D/3D decompose over the slowest
//                       (column-major) dimension while it covers the pool
//                       width, else tile the flattened iteration space
//   cpu_rome            same structure on the simulated Rome cost model
//   GPU back ends       fine-grained: 1 thread per index; 1D blocks of up to
//                       max_block_dim_x, 2D blocks of 16x16, 3D of 8x8x4,
//                       with thread x mapped to the fastest index for
//                       coalescing
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/array.hpp"
#include "core/backend.hpp"
#include "core/fuse.hpp"
#include "core/launch_desc.hpp"
#include "core/queue.hpp"
#include "prof/prof.hpp"
#include "sim/launch.hpp"
#include "threadpool/thread_pool.hpp"

namespace jacc {
namespace detail {

/// How a queued launch captures its trailing kernel arguments: copyable
/// types (scalars, views, jacc::array2d/3d shells) are copied into the
/// task; move-only lvalues (jacc::array) are held by reference and must
/// outlive completion — the natural contract for device data that the
/// queue's synchronize point already guards.  Rvalues are moved in.
template <class A>
using async_arg_t = std::conditional_t<
    std::is_lvalue_reference_v<A> &&
        !std::is_copy_constructible_v<std::remove_cvref_t<A>>,
    std::remove_reference_t<A>&, std::remove_cvref_t<A>>;

// --- fusable-argument classification (graph chain fuser, core/fuse.hpp) -----
// Keyed on the *stored* tuple element type from async_arg_t: values
// (scalars, scalar_bindings, views) are fusable — the elementwise hint is
// the caller's promise that they alias no array storage — and may expose
// footprints via a `jacc_fuse_footprints(out)` member; reference-stored
// move-only types are opaque and block fusion unless specialized below.

template <class U>
struct fuse_arg_traits {
  static constexpr bool fusable = true;
  static void add_footprints(const U& v,
                             std::vector<fuse_footprint>& out) {
    if constexpr (requires { v.jacc_fuse_footprints(out); }) {
      v.jacc_fuse_footprints(out);
    }
  }
};

template <class U>
struct fuse_arg_traits<U&> {
  static constexpr bool fusable = false;
  static void add_footprints(const U&, std::vector<fuse_footprint>&) {}
};

/// A mutable 1D array: conservatively read+write (the fused hint model
/// never undercharges a kernel that only reads it).
template <class T>
struct fuse_arg_traits<array<T>&> {
  static constexpr bool fusable = std::is_arithmetic_v<T>;
  static void add_footprints(const array<T>& a,
                             std::vector<fuse_footprint>& out) {
    out.push_back({a.host_data(), static_cast<double>(sizeof(T)), true, true});
  }
};

template <class T>
struct fuse_arg_traits<const array<T>&> {
  static constexpr bool fusable = std::is_arithmetic_v<T>;
  static void add_footprints(const array<T>& a,
                             std::vector<fuse_footprint>& out) {
    out.push_back({a.host_data(), static_cast<double>(sizeof(T)), true, false});
  }
};

/// Builds the chain-fuser payload for a captured 1D elementwise kernel:
/// nullptr when any stored argument is opaque.  The payload shares the
/// captured argument tuple with the replay body, so instance updates via
/// jacc::binding rebind both paths at once.
template <class F, class... As>
std::shared_ptr<fusable_kernel>
make_fusable_payload(const launch_desc& d, const F& fn,
                     const std::shared_ptr<std::tuple<As...>>& tup) {
  if constexpr ((fuse_arg_traits<As>::fusable && ...)) {
    auto k = std::make_shared<fusable_kernel>();
    k->n = d.rows;
    k->flops_per_index = d.h.flops_per_index;
    std::apply(
        [&](const auto&... as) {
          (fuse_arg_traits<As>::add_footprints(as, k->footprints), ...);
        },
        *tup);
    k->per_index = [fn, tup](index_t i) {
      std::apply([&](auto&... as) { fn(i, as...); }, *tup);
    };
    return k;
  } else {
    return nullptr;
  }
}

inline jaccx::sim::launch_config gpu_config_1d(const jaccx::sim::device& dev,
                                               index_t n, const hints& h) {
  jaccx::sim::launch_config cfg;
  const std::int64_t maxt = dev.model().max_threads_per_block;
  const std::int64_t threads = n < maxt ? (n > 0 ? n : 1) : maxt;
  cfg.block = jaccx::sim::dim3{threads};
  cfg.grid = jaccx::sim::dim3{jaccx::sim::ceil_div(n > 0 ? n : 1, threads)};
  cfg.name = h.name;
  cfg.flavor.via_jacc = true;
  cfg.flops_per_index = h.flops_per_index;
  return cfg;
}

inline jaccx::sim::launch_config gpu_config_2d(index_t rows, index_t cols,
                                               const hints& h) {
  // Paper Fig. 6: numThreads = 16 per dimension.
  jaccx::sim::launch_config cfg;
  const std::int64_t tile = 16;
  const std::int64_t mt = rows < tile ? (rows > 0 ? rows : 1) : tile;
  const std::int64_t nt = cols < tile ? (cols > 0 ? cols : 1) : tile;
  cfg.block = jaccx::sim::dim3{mt, nt};
  cfg.grid = jaccx::sim::dim3{jaccx::sim::ceil_div(rows > 0 ? rows : 1, mt),
                              jaccx::sim::ceil_div(cols > 0 ? cols : 1, nt)};
  cfg.name = h.name;
  cfg.flavor.via_jacc = true;
  cfg.flops_per_index = h.flops_per_index;
  return cfg;
}

inline jaccx::sim::launch_config gpu_config_3d(const dims3& d,
                                               const hints& h) {
  jaccx::sim::launch_config cfg;
  const std::int64_t tx = d.rows < 8 ? (d.rows > 0 ? d.rows : 1) : 8;
  const std::int64_t ty = d.cols < 8 ? (d.cols > 0 ? d.cols : 1) : 8;
  const std::int64_t tz = d.depth < 4 ? (d.depth > 0 ? d.depth : 1) : 4;
  cfg.block = jaccx::sim::dim3{tx, ty, tz};
  cfg.grid =
      jaccx::sim::dim3{jaccx::sim::ceil_div(d.rows > 0 ? d.rows : 1, tx),
                       jaccx::sim::ceil_div(d.cols > 0 ? d.cols : 1, ty),
                       jaccx::sim::ceil_div(d.depth > 0 ? d.depth : 1, tz)};
  cfg.name = h.name;
  cfg.flavor.via_jacc = true;
  cfg.flops_per_index = h.flops_per_index;
  return cfg;
}

inline jaccx::sim::cpu_region_config cpu_config(const hints& h) {
  jaccx::sim::cpu_region_config cfg;
  cfg.name = h.name;
  cfg.flavor.via_jacc = true;
  cfg.flops_per_index = h.flops_per_index;
  return cfg;
}

/// Threads-backend 2D decomposition.  Coarse column-wise chunks (paper
/// Sec. IV: parallel over j, contiguous i within each worker) while there
/// are at least as many columns as workers; narrower grids tile the
/// flattened iteration space instead, so a 1'000'000 x 2 grid still feeds
/// every worker rather than at most two.
template <class F, class... Args>
void threads_for_2d(jaccx::pool::thread_pool& pool, dims2 d, F&& f,
                    Args&&... args) {
  if (d.cols >= static_cast<index_t>(pool.size())) {
    pool.parallel_for_index(d.cols, [&](index_t j) {
      for (index_t i = 0; i < d.rows; ++i) {
        f(i, j, args...);
      }
    });
    return;
  }
  pool.parallel_chunks(d.rows * d.cols, [&](unsigned, jaccx::pool::range r) {
    jaccx::pool::walk_flat_2d(r, d.rows, [&](index_t i, index_t j) {
      f(i, j, args...);
    });
  });
}

/// Threads-backend 3D decomposition: over depth planes while depth covers
/// the pool, then over flattened (j, k) columns, then over the fully
/// flattened space for extreme shapes like {1e6, 2, 2}.
template <class F, class... Args>
void threads_for_3d(jaccx::pool::thread_pool& pool, dims3 d, F&& f,
                    Args&&... args) {
  const auto width = static_cast<index_t>(pool.size());
  if (d.depth >= width) {
    pool.parallel_for_index(d.depth, [&](index_t k) {
      for (index_t j = 0; j < d.cols; ++j) {
        for (index_t i = 0; i < d.rows; ++i) {
          f(i, j, k, args...);
        }
      }
    });
    return;
  }
  if (d.cols * d.depth >= width) {
    pool.parallel_chunks(d.cols * d.depth,
                         [&](unsigned, jaccx::pool::range r) {
      jaccx::pool::walk_flat_2d(r, d.cols, [&](index_t j, index_t k) {
        for (index_t i = 0; i < d.rows; ++i) {
          f(i, j, k, args...);
        }
      });
    });
    return;
  }
  pool.parallel_chunks(d.rows * d.cols * d.depth,
                       [&](unsigned, jaccx::pool::range r) {
    jaccx::pool::walk_flat_3d(r, d.rows, d.cols,
                              [&](index_t i, index_t j, index_t k) {
      f(i, j, k, args...);
    });
  });
}

// --- per-rank execution bodies: one dispatch switch each --------------------
// `pl` overrides the worker pool on the threads backend (queue lanes hand
// their private pool in); null means the default pool, the sync path.

template <class F, class... Args>
void execute_for_1d(backend b, jaccx::pool::thread_pool* pl,
                    const launch_desc& d, F&& f, Args&&... args) {
  const index_t n = d.rows;
  const jaccx::prof::kernel_scope prof_scope(
      jaccx::prof::construct::parallel_for, d.h.name,
      static_cast<std::uint64_t>(n), d.h.flops_per_index,
      d.h.bytes_per_index, to_string(b));
  switch (b) {
  case backend::serial: {
    for (index_t i = 0; i < n; ++i) {
      f(i, args...);
    }
    return;
  }
  case backend::threads: {
    auto& pool = pl != nullptr ? *pl : jaccx::pool::default_pool();
    pool.parallel_for_index(n, [&](index_t i) { f(i, args...); });
    return;
  }
  case backend::cpu_rome: {
    auto& dev = *backend_device(b);
    jaccx::sim::cpu_parallel_range(dev, cpu_config(d.h), n,
                                   [&](index_t i) { f(i, args...); });
    return;
  }
  case backend::cuda_a100:
  case backend::hip_mi100:
  case backend::oneapi_max1550: {
    auto& dev = *backend_device(b);
    const auto cfg = gpu_config_1d(dev, n, d.h);
    jaccx::sim::launch(dev, cfg, [&](jaccx::sim::kernel_ctx& ctx) {
      const index_t i = ctx.global_x();
      if (i < n) {
        f(i, args...);
      }
    });
    return;
  }
  }
}

template <class F, class... Args>
void execute_for_2d(backend b, jaccx::pool::thread_pool* pl,
                    const launch_desc& d, F&& f, Args&&... args) {
  const dims2 d2 = d.as_2d();
  const jaccx::prof::kernel_scope prof_scope(
      jaccx::prof::construct::parallel_for, d.h.name,
      static_cast<std::uint64_t>(d2.rows * d2.cols), d.h.flops_per_index,
      d.h.bytes_per_index, to_string(b));
  switch (b) {
  case backend::serial: {
    for (index_t j = 0; j < d2.cols; ++j) {
      for (index_t i = 0; i < d2.rows; ++i) {
        f(i, j, args...);
      }
    }
    return;
  }
  case backend::threads: {
    auto& pool = pl != nullptr ? *pl : jaccx::pool::default_pool();
    threads_for_2d(pool, d2, f, args...);
    return;
  }
  case backend::cpu_rome: {
    auto& dev = *backend_device(b);
    jaccx::sim::cpu_parallel_range_2d(
        dev, cpu_config(d.h), d2.rows, d2.cols,
        [&](index_t i, index_t j) { f(i, j, args...); });
    return;
  }
  case backend::cuda_a100:
  case backend::hip_mi100:
  case backend::oneapi_max1550: {
    auto& dev = *backend_device(b);
    const auto cfg = gpu_config_2d(d2.rows, d2.cols, d.h);
    jaccx::sim::launch(dev, cfg, [&](jaccx::sim::kernel_ctx& ctx) {
      const index_t i = ctx.global_x();
      const index_t j = ctx.global_y();
      if (i < d2.rows && j < d2.cols) {
        f(i, j, args...);
      }
    });
    return;
  }
  }
}

template <class F, class... Args>
void execute_for_3d(backend b, jaccx::pool::thread_pool* pl,
                    const launch_desc& d, F&& f, Args&&... args) {
  const dims3 d3 = d.as_3d();
  const jaccx::prof::kernel_scope prof_scope(
      jaccx::prof::construct::parallel_for, d.h.name,
      static_cast<std::uint64_t>(d3.rows * d3.cols * d3.depth),
      d.h.flops_per_index, d.h.bytes_per_index, to_string(b));
  switch (b) {
  case backend::serial: {
    for (index_t k = 0; k < d3.depth; ++k) {
      for (index_t j = 0; j < d3.cols; ++j) {
        for (index_t i = 0; i < d3.rows; ++i) {
          f(i, j, k, args...);
        }
      }
    }
    return;
  }
  case backend::threads: {
    auto& pool = pl != nullptr ? *pl : jaccx::pool::default_pool();
    threads_for_3d(pool, d3, f, args...);
    return;
  }
  case backend::cpu_rome: {
    auto& dev = *backend_device(b);
    jaccx::sim::cpu_parallel_range_3d(
        dev, cpu_config(d.h), d3.rows, d3.cols, d3.depth,
        [&](index_t i, index_t j, index_t k) { f(i, j, k, args...); });
    return;
  }
  case backend::cuda_a100:
  case backend::hip_mi100:
  case backend::oneapi_max1550: {
    auto& dev = *backend_device(b);
    const auto cfg = gpu_config_3d(d3, d.h);
    jaccx::sim::launch(dev, cfg, [&](jaccx::sim::kernel_ctx& ctx) {
      const index_t i = ctx.global_x();
      const index_t j = ctx.global_y();
      const index_t k = ctx.global_z();
      if (i < d3.rows && j < d3.cols && k < d3.depth) {
        f(i, j, k, args...);
      }
    });
    return;
  }
  }
}

} // namespace detail
} // namespace jacc

// The sharding engine reuses the launch-config helpers above, so it must
// land after them (core/shard.hpp documents it is not standalone).
#include "core/shard.hpp"

namespace jacc {
namespace detail {

/// Graph capture of a parallel_for: the whole front end — capture policy,
/// hint resolution, descriptor building, name ownership — runs once, here,
/// and the recorded node body is the residue.  The serial and threads 1D
/// shapes (the dispatch-overhead benchmark's subject) get specialized
/// bodies that skip even the per-rank dispatch switch on replay: a plain
/// loop (or pool fan-out) guarded by the usual one-load prof gate.  Every
/// other shape pre-bakes the generic runner, whose sim charge path is
/// identical to eager issue.
template <int Rank, class F, class... Args>
event capture_for(queue& q, backend b, const launch_desc& d, F&& f,
                  Args&&... args) {
  std::string name(d.h.name);
  auto fn = std::decay_t<F>(std::forward<F>(f));
  auto tup = std::make_shared<std::tuple<async_arg_t<Args&&>...>>(
      std::forward<Args>(args)...);
  // The fused-execution payload shares `tup` with the replay body below;
  // built before `fn` is moved out (per_index takes its own copy).
  std::shared_ptr<fusable_kernel> fusable;
  if constexpr (Rank == 1) {
    if (d.h.elementwise) {
      fusable = make_fusable_payload(d, fn, tup);
    }
  }
  replay_body body;
  if constexpr (Rank == 1) {
    if (b == backend::serial) {
      body = make_replay_body(
          [n = d.rows, hf = d.h.flops_per_index, hb = d.h.bytes_per_index,
           name, fn = std::move(fn),
           tup](jaccx::pool::thread_pool*) mutable {
            const auto run = [&] {
              std::apply(
                  [&](auto&... as) {
                    for (index_t i = 0; i < n; ++i) {
                      fn(i, as...);
                    }
                  },
                  *tup);
            };
            if (jaccx::prof::enabled()) [[unlikely]] {
              const jaccx::prof::kernel_scope ks(
                  jaccx::prof::construct::parallel_for, name,
                  static_cast<std::uint64_t>(n), hf, hb,
                  to_string(backend::serial));
              run();
            } else {
              run();
            }
          });
    } else if (b == backend::threads) {
      body = make_replay_body(
          [n = d.rows, hf = d.h.flops_per_index, hb = d.h.bytes_per_index,
           name, fn = std::move(fn),
           tup](jaccx::pool::thread_pool* pl) mutable {
            auto& pool = pl != nullptr ? *pl : jaccx::pool::default_pool();
            const auto run = [&] {
              std::apply(
                  [&](auto&... as) {
                    pool.parallel_for_index(n,
                                            [&](index_t i) { fn(i, as...); });
                  },
                  *tup);
            };
            if (jaccx::prof::enabled()) [[unlikely]] {
              const jaccx::prof::kernel_scope ks(
                  jaccx::prof::construct::parallel_for, name,
                  static_cast<std::uint64_t>(n), hf, hb,
                  to_string(backend::threads));
              run();
            } else {
              run();
            }
          });
    }
  }
  if (!body) {
    body = make_replay_body(
        [d, b, name, fn = std::move(fn),
         tup](jaccx::pool::thread_pool* pl) mutable {
          launch_desc desc = d;
          desc.h.name = name;
          std::apply(
              [&](auto&... as) {
                if constexpr (Rank == 1) {
                  execute_for_1d(b, pl, desc, fn, as...);
                } else if constexpr (Rank == 2) {
                  execute_for_2d(b, pl, desc, fn, as...);
                } else {
                  execute_for_3d(b, pl, desc, fn, as...);
                }
              },
              *tup);
        });
  }
  if (fusable != nullptr) {
    return capture_append(q, capture_kind::kernel, std::move(name),
                          std::move(body), std::move(fusable));
  }
  return capture_append(q, capture_kind::kernel, std::move(name),
                        std::move(body));
}

/// Builds the queued runner: the descriptor and kernel are copied, the hint
/// name is captured as an owned std::string (so a caller-provided temporary
/// is safe even when the task runs later on a lane thread), trailing args
/// captured per async_arg_t, and the per-rank body is invoked with the
/// lane's pool (null outside lanes).
template <int Rank, class F, class... Args>
event enqueue_for(queue& q, backend b, const launch_desc& d, F&& f,
                  Args&&... args) {
  if (queue_capturing(q)) [[unlikely]] {
    return capture_for<Rank>(q, b, d, std::forward<F>(f),
                             std::forward<Args>(args)...);
  }
  return enqueue_common(
      q, b, /*is_copy=*/false, d.h.name,
      [d, b, name = std::string(d.h.name),
       fn = std::decay_t<F>(std::forward<F>(f)),
       tup = std::tuple<async_arg_t<Args&&>...>(std::forward<Args>(args)...)](
          jaccx::pool::thread_pool* pl) mutable {
        // Re-point the descriptor's name view at the closure-owned copy on
        // every run: the closure may have been moved since capture.
        launch_desc desc = d;
        desc.h.name = name;
        std::apply(
            [&](auto&... as) {
              if constexpr (Rank == 1) {
                execute_for_1d(b, pl, desc, fn, as...);
              } else if constexpr (Rank == 2) {
                execute_for_2d(b, pl, desc, fn, as...);
              } else {
                execute_for_3d(b, pl, desc, fn, as...);
              }
            },
            tup);
      });
}

} // namespace detail

// --- queued overloads: enqueue on `q`, return a jacc::event -----------------

/// 1D parallel_for on a queue, with accounting hints.
template <class F, class... Args>
event parallel_for(queue& q, const hints& h, index_t n, F&& f,
                   Args&&... args) {
  JACCX_ASSERT(n >= 0);
  if (n == 0) {
    return event{};
  }
  const backend b = current_backend();
  const detail::launch_desc d = detail::launch_desc::d1(h, n);
  if (q.is_default()) {
    // The sync model verbatim: run in place, full reference semantics.
    detail::execute_for_1d(b, nullptr, d, std::forward<F>(f),
                           std::forward<Args>(args)...);
    return event{};
  }
  return detail::enqueue_for<1>(q, b, d, std::forward<F>(f),
                                std::forward<Args>(args)...);
}

/// 1D parallel_for on a queue: f(i, args...) for i in [0, n).
template <class F, class... Args>
  requires std::invocable<F&, index_t, Args&...>
event parallel_for(queue& q, index_t n, F&& f, Args&&... args) {
  return parallel_for(q, hints{}, n, std::forward<F>(f),
                      std::forward<Args>(args)...);
}

/// 2D parallel_for on a queue, with hints.
template <class F, class... Args>
event parallel_for(queue& q, const hints& h, dims2 d, F&& f, Args&&... args) {
  JACCX_ASSERT(d.rows >= 0 && d.cols >= 0);
  if (d.rows == 0 || d.cols == 0) {
    return event{};
  }
  const backend b = current_backend();
  const detail::launch_desc desc = detail::launch_desc::d2(h, d);
  if (q.is_default()) {
    detail::execute_for_2d(b, nullptr, desc, std::forward<F>(f),
                           std::forward<Args>(args)...);
    return event{};
  }
  return detail::enqueue_for<2>(q, b, desc, std::forward<F>(f),
                                std::forward<Args>(args)...);
}

/// 2D parallel_for on a queue.
template <class F, class... Args>
  requires std::invocable<F&, index_t, index_t, Args&...>
event parallel_for(queue& q, dims2 d, F&& f, Args&&... args) {
  return parallel_for(q, hints{}, d, std::forward<F>(f),
                      std::forward<Args>(args)...);
}

/// 3D parallel_for on a queue, with hints.
template <class F, class... Args>
event parallel_for(queue& q, const hints& h, dims3 d, F&& f, Args&&... args) {
  JACCX_ASSERT(d.rows >= 0 && d.cols >= 0 && d.depth >= 0);
  if (d.rows == 0 || d.cols == 0 || d.depth == 0) {
    return event{};
  }
  const backend b = current_backend();
  const detail::launch_desc desc = detail::launch_desc::d3(h, d);
  if (q.is_default()) {
    detail::execute_for_3d(b, nullptr, desc, std::forward<F>(f),
                           std::forward<Args>(args)...);
    return event{};
  }
  return detail::enqueue_for<3>(q, b, desc, std::forward<F>(f),
                                std::forward<Args>(args)...);
}

/// 3D parallel_for on a queue.
template <class F, class... Args>
  requires std::invocable<F&, index_t, index_t, index_t, Args&...>
event parallel_for(queue& q, dims3 d, F&& f, Args&&... args) {
  return parallel_for(q, hints{}, d, std::forward<F>(f),
                      std::forward<Args>(args)...);
}

// --- synchronous overloads (the paper's API) --------------------------------
// Inside a queue_scope these route to the scope's queue; otherwise they are
// the direct execution bodies, unchanged from the pre-queue model.

/// 1D parallel_for with accounting hints.
template <class F, class... Args>
void parallel_for(const hints& h, index_t n, F&& f, Args&&... args) {
  if (queue* q = detail::active_queue(); q != nullptr) [[unlikely]] {
    parallel_for(*q, h, n, std::forward<F>(f), std::forward<Args>(args)...);
    return;
  }
  JACCX_ASSERT(n >= 0);
  if (n == 0) {
    return;
  }
  if (device_set* ds = detail::active_shard_set(); ds != nullptr)
      [[unlikely]] {
    detail::shard_execute_for<1>(*ds, detail::launch_desc::d1(h, n),
                                 std::forward<F>(f),
                                 std::forward<Args>(args)...);
    return;
  }
  detail::execute_for_1d(current_backend(), nullptr,
                         detail::launch_desc::d1(h, n), std::forward<F>(f),
                         std::forward<Args>(args)...);
}

/// 1D parallel_for: f(i, args...) for i in [0, n).
template <class F, class... Args>
  requires std::invocable<F&, index_t, Args&...>
void parallel_for(index_t n, F&& f, Args&&... args) {
  parallel_for(hints{}, n, std::forward<F>(f), std::forward<Args>(args)...);
}

/// 2D parallel_for with hints: f(i, j, args...) over rows x cols.
template <class F, class... Args>
void parallel_for(const hints& h, dims2 d, F&& f, Args&&... args) {
  if (queue* q = detail::active_queue(); q != nullptr) [[unlikely]] {
    parallel_for(*q, h, d, std::forward<F>(f), std::forward<Args>(args)...);
    return;
  }
  JACCX_ASSERT(d.rows >= 0 && d.cols >= 0);
  if (d.rows == 0 || d.cols == 0) {
    return;
  }
  if (device_set* ds = detail::active_shard_set(); ds != nullptr)
      [[unlikely]] {
    detail::shard_execute_for<2>(*ds, detail::launch_desc::d2(h, d),
                                 std::forward<F>(f),
                                 std::forward<Args>(args)...);
    return;
  }
  detail::execute_for_2d(current_backend(), nullptr,
                         detail::launch_desc::d2(h, d), std::forward<F>(f),
                         std::forward<Args>(args)...);
}

/// 2D parallel_for: f(i, j, args...); i is the fast (column-major) index.
template <class F, class... Args>
  requires std::invocable<F&, index_t, index_t, Args&...>
void parallel_for(dims2 d, F&& f, Args&&... args) {
  parallel_for(hints{}, d, std::forward<F>(f), std::forward<Args>(args)...);
}

/// 3D parallel_for with hints: f(i, j, k, args...).
template <class F, class... Args>
void parallel_for(const hints& h, dims3 d, F&& f, Args&&... args) {
  if (queue* q = detail::active_queue(); q != nullptr) [[unlikely]] {
    parallel_for(*q, h, d, std::forward<F>(f), std::forward<Args>(args)...);
    return;
  }
  JACCX_ASSERT(d.rows >= 0 && d.cols >= 0 && d.depth >= 0);
  if (d.rows == 0 || d.cols == 0 || d.depth == 0) {
    return;
  }
  if (device_set* ds = detail::active_shard_set(); ds != nullptr)
      [[unlikely]] {
    detail::shard_execute_for<3>(*ds, detail::launch_desc::d3(h, d),
                                 std::forward<F>(f),
                                 std::forward<Args>(args)...);
    return;
  }
  detail::execute_for_3d(current_backend(), nullptr,
                         detail::launch_desc::d3(h, d), std::forward<F>(f),
                         std::forward<Args>(args)...);
}

/// 3D parallel_for: f(i, j, k, args...).
template <class F, class... Args>
  requires std::invocable<F&, index_t, index_t, index_t, Args&...>
void parallel_for(dims3 d, F&& f, Args&&... args) {
  parallel_for(hints{}, d, std::forward<F>(f), std::forward<Args>(args)...);
}

} // namespace jacc
