// jacc::parallel_for — the paper's primary construct (Sec. III, Fig. 2).
//
//   jacc::parallel_for(n, f, args...)            calls f(i, args...)
//   jacc::parallel_for(dims2{M, N}, f, args...)  calls f(i, j, args...)
//   jacc::parallel_for(dims3{M,N,K}, f, args...) calls f(i, j, k, args...)
//
// Indices are 0-based (Julia's are 1-based; everything else matches the
// paper).  The kernel function is defined separately and passed with its
// parameters, exactly as JACC prescribes.  Each call is synchronous and
// dispatches on jacc::current_backend(); the kernel is compiled once per
// backend family by the switch below, which is how a JIT-free language gets
// JACC's "one source, every target" property.
//
// Back-end mapping (paper Sec. IV):
//   serial/threads      coarse chunks; 2D/3D decompose over the slowest
//                       (column-major) dimension while it covers the pool
//                       width, else tile the flattened iteration space
//   cpu_rome            same structure on the simulated Rome cost model
//   GPU back ends       fine-grained: 1 thread per index; 1D blocks of up to
//                       max_block_dim_x, 2D blocks of 16x16, 3D of 8x8x4,
//                       with thread x mapped to the fastest index for
//                       coalescing
#pragma once

#include <string_view>

#include "core/array.hpp"
#include "core/backend.hpp"
#include "prof/prof.hpp"
#include "sim/launch.hpp"
#include "threadpool/thread_pool.hpp"

namespace jacc {

/// Optional accounting hints: a kernel name for traces, a flops-per-index
/// estimate for the simulator's roofline term, and a bytes-per-index
/// estimate for profiler bandwidth columns.  Purely observational — they
/// never change results.
struct hints {
  std::string_view name = "jacc.parallel_for";
  double flops_per_index = 0.0;
  double bytes_per_index = 0.0;
};

struct dims2 {
  index_t rows = 0; ///< M: the fast, column-major index (i)
  index_t cols = 0; ///< N: the slow index (j)
};

struct dims3 {
  index_t rows = 0;
  index_t cols = 0;
  index_t depth = 0;
};

namespace detail {

inline jaccx::sim::launch_config gpu_config_1d(const jaccx::sim::device& dev,
                                               index_t n, const hints& h) {
  jaccx::sim::launch_config cfg;
  const std::int64_t maxt = dev.model().max_threads_per_block;
  const std::int64_t threads = n < maxt ? (n > 0 ? n : 1) : maxt;
  cfg.block = jaccx::sim::dim3{threads};
  cfg.grid = jaccx::sim::dim3{jaccx::sim::ceil_div(n > 0 ? n : 1, threads)};
  cfg.name = h.name;
  cfg.flavor.via_jacc = true;
  cfg.flops_per_index = h.flops_per_index;
  return cfg;
}

inline jaccx::sim::launch_config gpu_config_2d(index_t rows, index_t cols,
                                               const hints& h) {
  // Paper Fig. 6: numThreads = 16 per dimension.
  jaccx::sim::launch_config cfg;
  const std::int64_t tile = 16;
  const std::int64_t mt = rows < tile ? (rows > 0 ? rows : 1) : tile;
  const std::int64_t nt = cols < tile ? (cols > 0 ? cols : 1) : tile;
  cfg.block = jaccx::sim::dim3{mt, nt};
  cfg.grid = jaccx::sim::dim3{jaccx::sim::ceil_div(rows > 0 ? rows : 1, mt),
                              jaccx::sim::ceil_div(cols > 0 ? cols : 1, nt)};
  cfg.name = h.name;
  cfg.flavor.via_jacc = true;
  cfg.flops_per_index = h.flops_per_index;
  return cfg;
}

inline jaccx::sim::launch_config gpu_config_3d(const dims3& d,
                                               const hints& h) {
  jaccx::sim::launch_config cfg;
  const std::int64_t tx = d.rows < 8 ? (d.rows > 0 ? d.rows : 1) : 8;
  const std::int64_t ty = d.cols < 8 ? (d.cols > 0 ? d.cols : 1) : 8;
  const std::int64_t tz = d.depth < 4 ? (d.depth > 0 ? d.depth : 1) : 4;
  cfg.block = jaccx::sim::dim3{tx, ty, tz};
  cfg.grid =
      jaccx::sim::dim3{jaccx::sim::ceil_div(d.rows > 0 ? d.rows : 1, tx),
                       jaccx::sim::ceil_div(d.cols > 0 ? d.cols : 1, ty),
                       jaccx::sim::ceil_div(d.depth > 0 ? d.depth : 1, tz)};
  cfg.name = h.name;
  cfg.flavor.via_jacc = true;
  cfg.flops_per_index = h.flops_per_index;
  return cfg;
}

inline jaccx::sim::cpu_region_config cpu_config(const hints& h) {
  jaccx::sim::cpu_region_config cfg;
  cfg.name = h.name;
  cfg.flavor.via_jacc = true;
  cfg.flops_per_index = h.flops_per_index;
  return cfg;
}

/// Threads-backend 2D decomposition.  Coarse column-wise chunks (paper
/// Sec. IV: parallel over j, contiguous i within each worker) while there
/// are at least as many columns as workers; narrower grids tile the
/// flattened iteration space instead, so a 1'000'000 x 2 grid still feeds
/// every worker rather than at most two.
template <class F, class... Args>
void threads_for_2d(jaccx::pool::thread_pool& pool, dims2 d, F&& f,
                    Args&&... args) {
  if (d.cols >= static_cast<index_t>(pool.size())) {
    pool.parallel_for_index(d.cols, [&](index_t j) {
      for (index_t i = 0; i < d.rows; ++i) {
        f(i, j, args...);
      }
    });
    return;
  }
  pool.parallel_chunks(d.rows * d.cols, [&](unsigned, jaccx::pool::range r) {
    jaccx::pool::walk_flat_2d(r, d.rows, [&](index_t i, index_t j) {
      f(i, j, args...);
    });
  });
}

/// Threads-backend 3D decomposition: over depth planes while depth covers
/// the pool, then over flattened (j, k) columns, then over the fully
/// flattened space for extreme shapes like {1e6, 2, 2}.
template <class F, class... Args>
void threads_for_3d(jaccx::pool::thread_pool& pool, dims3 d, F&& f,
                    Args&&... args) {
  const auto width = static_cast<index_t>(pool.size());
  if (d.depth >= width) {
    pool.parallel_for_index(d.depth, [&](index_t k) {
      for (index_t j = 0; j < d.cols; ++j) {
        for (index_t i = 0; i < d.rows; ++i) {
          f(i, j, k, args...);
        }
      }
    });
    return;
  }
  if (d.cols * d.depth >= width) {
    pool.parallel_chunks(d.cols * d.depth,
                         [&](unsigned, jaccx::pool::range r) {
      jaccx::pool::walk_flat_2d(r, d.cols, [&](index_t j, index_t k) {
        for (index_t i = 0; i < d.rows; ++i) {
          f(i, j, k, args...);
        }
      });
    });
    return;
  }
  pool.parallel_chunks(d.rows * d.cols * d.depth,
                       [&](unsigned, jaccx::pool::range r) {
    jaccx::pool::walk_flat_3d(r, d.rows, d.cols,
                              [&](index_t i, index_t j, index_t k) {
      f(i, j, k, args...);
    });
  });
}

} // namespace detail

/// 1D parallel_for with accounting hints.
template <class F, class... Args>
void parallel_for(const hints& h, index_t n, F&& f, Args&&... args) {
  JACCX_ASSERT(n >= 0);
  if (n == 0) {
    return;
  }
  const backend b = current_backend();
  const jaccx::prof::kernel_scope prof_scope(
      jaccx::prof::construct::parallel_for, h.name,
      static_cast<std::uint64_t>(n), h.flops_per_index, h.bytes_per_index,
      to_string(b));
  switch (b) {
  case backend::serial: {
    for (index_t i = 0; i < n; ++i) {
      f(i, args...);
    }
    return;
  }
  case backend::threads: {
    jaccx::pool::default_pool().parallel_for_index(
        n, [&](index_t i) { f(i, args...); });
    return;
  }
  case backend::cpu_rome: {
    auto& dev = *backend_device(b);
    jaccx::sim::cpu_parallel_range(dev, detail::cpu_config(h), n,
                                   [&](index_t i) { f(i, args...); });
    return;
  }
  case backend::cuda_a100:
  case backend::hip_mi100:
  case backend::oneapi_max1550: {
    auto& dev = *backend_device(b);
    const auto cfg = detail::gpu_config_1d(dev, n, h);
    jaccx::sim::launch(dev, cfg, [&](jaccx::sim::kernel_ctx& ctx) {
      const index_t i = ctx.global_x();
      if (i < n) {
        f(i, args...);
      }
    });
    return;
  }
  }
}

/// 1D parallel_for: f(i, args...) for i in [0, n).
template <class F, class... Args>
  requires std::invocable<F&, index_t, Args&...>
void parallel_for(index_t n, F&& f, Args&&... args) {
  parallel_for(hints{}, n, std::forward<F>(f), std::forward<Args>(args)...);
}

/// 2D parallel_for with hints: f(i, j, args...) over rows x cols.
template <class F, class... Args>
void parallel_for(const hints& h, dims2 d, F&& f, Args&&... args) {
  JACCX_ASSERT(d.rows >= 0 && d.cols >= 0);
  if (d.rows == 0 || d.cols == 0) {
    return;
  }
  const backend b = current_backend();
  const jaccx::prof::kernel_scope prof_scope(
      jaccx::prof::construct::parallel_for, h.name,
      static_cast<std::uint64_t>(d.rows * d.cols), h.flops_per_index,
      h.bytes_per_index, to_string(b));
  switch (b) {
  case backend::serial: {
    for (index_t j = 0; j < d.cols; ++j) {
      for (index_t i = 0; i < d.rows; ++i) {
        f(i, j, args...);
      }
    }
    return;
  }
  case backend::threads: {
    detail::threads_for_2d(jaccx::pool::default_pool(), d, f, args...);
    return;
  }
  case backend::cpu_rome: {
    auto& dev = *backend_device(b);
    jaccx::sim::cpu_parallel_range_2d(
        dev, detail::cpu_config(h), d.rows, d.cols,
        [&](index_t i, index_t j) { f(i, j, args...); });
    return;
  }
  case backend::cuda_a100:
  case backend::hip_mi100:
  case backend::oneapi_max1550: {
    auto& dev = *backend_device(b);
    const auto cfg = detail::gpu_config_2d(d.rows, d.cols, h);
    jaccx::sim::launch(dev, cfg, [&](jaccx::sim::kernel_ctx& ctx) {
      const index_t i = ctx.global_x();
      const index_t j = ctx.global_y();
      if (i < d.rows && j < d.cols) {
        f(i, j, args...);
      }
    });
    return;
  }
  }
}

/// 2D parallel_for: f(i, j, args...); i is the fast (column-major) index.
template <class F, class... Args>
  requires std::invocable<F&, index_t, index_t, Args&...>
void parallel_for(dims2 d, F&& f, Args&&... args) {
  parallel_for(hints{}, d, std::forward<F>(f), std::forward<Args>(args)...);
}

/// 3D parallel_for with hints: f(i, j, k, args...).
template <class F, class... Args>
void parallel_for(const hints& h, dims3 d, F&& f, Args&&... args) {
  JACCX_ASSERT(d.rows >= 0 && d.cols >= 0 && d.depth >= 0);
  if (d.rows == 0 || d.cols == 0 || d.depth == 0) {
    return;
  }
  const backend b = current_backend();
  const jaccx::prof::kernel_scope prof_scope(
      jaccx::prof::construct::parallel_for, h.name,
      static_cast<std::uint64_t>(d.rows * d.cols * d.depth),
      h.flops_per_index, h.bytes_per_index, to_string(b));
  switch (b) {
  case backend::serial: {
    for (index_t k = 0; k < d.depth; ++k) {
      for (index_t j = 0; j < d.cols; ++j) {
        for (index_t i = 0; i < d.rows; ++i) {
          f(i, j, k, args...);
        }
      }
    }
    return;
  }
  case backend::threads: {
    detail::threads_for_3d(jaccx::pool::default_pool(), d, f, args...);
    return;
  }
  case backend::cpu_rome: {
    auto& dev = *backend_device(b);
    jaccx::sim::cpu_parallel_range_3d(
        dev, detail::cpu_config(h), d.rows, d.cols, d.depth,
        [&](index_t i, index_t j, index_t k) { f(i, j, k, args...); });
    return;
  }
  case backend::cuda_a100:
  case backend::hip_mi100:
  case backend::oneapi_max1550: {
    auto& dev = *backend_device(b);
    const auto cfg = detail::gpu_config_3d(d, h);
    jaccx::sim::launch(dev, cfg, [&](jaccx::sim::kernel_ctx& ctx) {
      const index_t i = ctx.global_x();
      const index_t j = ctx.global_y();
      const index_t k = ctx.global_z();
      if (i < d.rows && j < d.cols && k < d.depth) {
        f(i, j, k, args...);
      }
    });
    return;
  }
  }
}

/// 3D parallel_for: f(i, j, k, args...).
template <class F, class... Args>
  requires std::invocable<F&, index_t, index_t, index_t, Args&...>
void parallel_for(dims3 d, F&& f, Args&&... args) {
  parallel_for(hints{}, d, std::forward<F>(f), std::forward<Args>(args)...);
}

} // namespace jacc
