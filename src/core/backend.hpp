// Backend selection for the JACC front end.
//
// The paper (Sec. III) makes a point of *how* the back end is chosen: not in
// code, but through Julia's Preferences.jl, which persists the choice in
// LocalPreferences.toml before precompilation; vendor back ends coexist as
// weak dependencies.  JACC-CXX mirrors this: jacc::initialize() resolves the
// backend from (highest priority first)
//
//   1. the JACC_BACKEND environment variable,
//   2. the [JACC] backend = "..." key of a LocalPreferences.toml found at
//      JACC_PREFERENCES_FILE or ./LocalPreferences.toml,
//   3. the built-in default, "threads" (the paper's default back end).
//
// Six back ends are compiled in:
//
//   serial          real execution, single thread (reference semantics)
//   threads         real execution on the Base.Threads-style pool
//   cpu_rome        simulated AMD EPYC 7742 (Base.Threads cost model)
//   cuda_a100       simulated NVIDIA A100 via the CUDA.jl-style layer
//   hip_mi100       simulated AMD MI100 via the AMDGPU.jl-style layer
//   oneapi_max1550  simulated Intel Max 1550 via the oneAPI.jl-style layer
//
// The first two run at wall-clock speed and are what a downstream user
// adopts; the last four execute functionally while charging a calibrated
// simulated clock, standing in for the paper's DOE testbeds.
#pragma once

#include <string>
#include <string_view>

namespace jaccx::sim {
class device;
}

namespace jacc {

enum class backend {
  serial,
  threads,
  cpu_rome,
  cuda_a100,
  hip_mi100,
  oneapi_max1550,
};

inline constexpr backend all_backends[] = {
    backend::serial,        backend::threads,   backend::cpu_rome,
    backend::cuda_a100,     backend::hip_mi100, backend::oneapi_max1550,
};

/// Canonical name ("threads", "cuda_a100", ...).  Constexpr + pure so a
/// profiling-disabled dispatch (which passes the name to a never-taken
/// cold branch) pays nothing for it — the compiler sinks it entirely.
constexpr std::string_view to_string(backend b) noexcept {
  switch (b) {
  case backend::serial: return "serial";
  case backend::threads: return "threads";
  case backend::cpu_rome: return "cpu_rome";
  case backend::cuda_a100: return "cuda_a100";
  case backend::hip_mi100: return "hip_mi100";
  case backend::oneapi_max1550: return "oneapi_max1550";
  }
  return "?";
}

/// Parses a backend name; accepts canonical names plus the vendor aliases
/// used in the paper ("cuda", "amdgpu", "oneapi", "rome").  Throws
/// jaccx::config_error on unknown names.
backend backend_from_string(std::string_view name);

/// True for the four backends that run on the device simulator.
bool is_simulated(backend b);

/// The simulated device behind b, or nullptr for serial/threads.
jaccx::sim::device* backend_device(backend b);

/// Resolves the preference chain (env var, LocalPreferences.toml, default)
/// and installs the result.  Called implicitly by the first
/// current_backend(); call explicitly to re-read preferences.
void initialize();

/// The backend all jacc constructs currently dispatch to.
backend current_backend();

/// Overrides the backend at runtime (tests and benches sweep this).
void set_backend(backend b);

/// Persists a backend choice to a LocalPreferences.toml, merging with any
/// existing content — the Preferences.set_preferences! analogue.  The next
/// initialize() in a process run from that directory picks it up.
void save_preferences(backend b,
                      const std::string& path = "LocalPreferences.toml");

/// RAII backend override.
class scoped_backend {
public:
  explicit scoped_backend(backend b) : saved_(current_backend()) {
    set_backend(b);
  }
  ~scoped_backend() { set_backend(saved_); }
  scoped_backend(const scoped_backend&) = delete;
  scoped_backend& operator=(const scoped_backend&) = delete;

private:
  backend saved_;
};

/// Waits for every jacc::queue's outstanding work and aligns all simulated
/// queue streams with their device clocks (see core/queue.hpp).  Under the
/// paper's fully synchronous model — no user queues — there is never
/// outstanding work and this stays a cheap no-op, so ported code keeps its
/// structure.
void synchronize();

/// Synchronizes every queue, then flushes the profiling layer: prints the
/// JACC_PROFILE=summary table and/or writes the JACC_TRACE_FILE Chrome
/// trace.  Safe to call any number of times; programs that never call it
/// still get their report from an atexit hook.
void finalize();

} // namespace jacc
