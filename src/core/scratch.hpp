// jacc::scratch — pool-backed temporary storage whose acquire/release can
// be *captured* into a jacc::graph (the carried ROADMAP extension from the
// graph PR: scratch-allocating DAGs replay allocation-free).
//
//   q.begin_capture();
//   jacc::scratch<double> tmp(q, n);         // records a mem_acquire node
//   jacc::parallel_for(q, h, n, k, tmp.view(), ...);
//   tmp.release();                           // records a mem_release node
//   jacc::graph g = q.end_capture();
//
// At capture time nothing is allocated: the acquire node's replay body
// draws from jaccx::mem under the replaying queue's context, and the
// release node parks the block back, so the second replay onward is served
// entirely from the stream-ordered cache (pool miss count stays flat —
// pinned by Fusion.ScratchReplayHitsPoolOnly).  capture_finish throws
// jaccx::usage_error when acquires and releases don't balance inside one
// capture, since an unbalanced graph would leak a block per replay.
//
// Outside a capture the same object is an ordinary eager pool allocation
// (acquired in the constructor, released in release()/the destructor).
#pragma once

#include <memory>
#include <vector>

#include "core/array.hpp"
#include "core/backend.hpp"
#include "core/fuse.hpp"
#include "core/queue.hpp"
#include "mem/pool.hpp"
#include "support/error.hpp"

namespace jacc {
namespace detail {

/// Shared between the owning jacc::scratch, its views, and the recorded
/// acquire/release bodies: replays rebind `blk` in place, so views made at
/// capture time see the storage of the current replay.
template <class T>
struct scratch_cell {
  jaccx::mem::block blk;
  jaccx::sim::device* dev = nullptr;
  index_t count = 0;
};

} // namespace detail

/// Copyable, capture-safe handle kernels index into.  Element access is
/// tracked exactly like jacc::array's, so simulated cache charges match a
/// real array of the same size.
template <class T>
class scratch_view {
public:
  explicit scratch_view(std::shared_ptr<detail::scratch_cell<T>> cell)
      : cell_(std::move(cell)) {}

  detail::element_ref<T> operator[](index_t i) const {
    JACCX_ASSERT(cell_->blk.ptr != nullptr && i >= 0 && i < cell_->count);
    return detail::element_ref<T>(static_cast<T*>(cell_->blk.ptr) + i,
                                  cell_->dev);
  }
  index_t size() const { return cell_->count; }

  /// Chain-fuser footprint hook (parallel_for.hpp): the cell address is
  /// the identity — the storage pointer is not known until replay.
  void jacc_fuse_footprints(std::vector<detail::fuse_footprint>& out) const {
    out.push_back({cell_.get(), static_cast<double>(sizeof(T)), true, true});
  }

private:
  std::shared_ptr<detail::scratch_cell<T>> cell_;
};

template <class T>
class scratch {
public:
  /// Capturing `q`: records a mem_acquire node, nothing allocated now.
  /// Otherwise: an eager pool acquire on the current backend.
  scratch(queue& q, index_t n)
      : q_(q), cell_(std::make_shared<detail::scratch_cell<T>>()) {
    JACCX_ASSERT(n >= 0);
    cell_->dev = backend_device(current_backend());
    cell_->count = n;
    if (detail::queue_capturing(q_)) {
      captured_ = true;
      detail::capture_append(
          q_, detail::capture_kind::mem_acquire, "jacc.scratch.acquire",
          detail::make_replay_body(
              [cell = cell_](jaccx::pool::thread_pool*) {
                const std::size_t bytes =
                    static_cast<std::size_t>(cell->count) * sizeof(T);
                cell->blk = jaccx::mem::acquire(cell->dev, bytes,
                                                "jacc.scratch",
                                                detail::alloc_ctx(cell->dev));
                if (cell->blk.stall_us > 0.0) {
                  detail::note_pool_stall(cell->dev, cell->blk.stall_us);
                }
              }));
    } else {
      acquire_now();
    }
  }

  /// Eager scratch bound to the default queue (no capture possible).
  explicit scratch(index_t n) : scratch(queue::default_queue(), n) {}

  scratch(const scratch&) = delete;
  scratch& operator=(const scratch&) = delete;

  ~scratch() { release(); }

  scratch_view<T> view() const { return scratch_view<T>(cell_); }
  index_t size() const { return cell_->count; }

  /// Ends the scratch lifetime: records the mem_release node while the
  /// capture is still recording, or releases the eager block.  Idempotent.
  /// A captured scratch destroyed after its capture already ended records
  /// nothing — capture_finish's balance check has already accepted or
  /// rejected the graph.
  void release() {
    if (released_) {
      return;
    }
    released_ = true;
    if (captured_) {
      if (detail::queue_capturing(q_)) {
        detail::capture_append(
            q_, detail::capture_kind::mem_release, "jacc.scratch.release",
            detail::make_replay_body([cell = cell_](jaccx::pool::thread_pool*) {
              jaccx::mem::release(cell->blk, detail::release_ctx(cell->dev));
            }));
      }
      return;
    }
    jaccx::mem::release(cell_->blk, detail::release_ctx(cell_->dev));
  }

private:
  void acquire_now() {
    const std::size_t bytes =
        static_cast<std::size_t>(cell_->count) * sizeof(T);
    cell_->blk = jaccx::mem::acquire(cell_->dev, bytes, "jacc.scratch",
                                     detail::alloc_ctx(cell_->dev));
    if (cell_->blk.stall_us > 0.0) {
      detail::note_pool_stall(cell_->dev, cell_->blk.stall_us);
    }
  }

  queue q_;
  std::shared_ptr<detail::scratch_cell<T>> cell_;
  bool captured_ = false;
  bool released_ = false;
};

} // namespace jacc
