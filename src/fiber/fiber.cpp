#include "fiber/fiber.hpp"

#include <cstdint>

namespace jaccx::fiber {
namespace {

/// Rounds p down to a 16-byte boundary (System V stack alignment unit).
char* align_down_16(char* p) {
  return reinterpret_cast<char*>(reinterpret_cast<std::uintptr_t>(p) &
                                 ~std::uintptr_t{15});
}

} // namespace

fiber::fiber(std::size_t stack_bytes) : stack_(stack_bytes, 64) {
  JACCX_ASSERT(stack_bytes >= 4096);
}

void fiber::reset(entry_fn entry, void* arg) {
  JACCX_ASSERT(done_ && "reset() while fiber is suspended mid-run");
  entry_ = entry;
  arg_ = arg;
  done_ = false;

  // Seed the stack so the first jaccx_fiber_swap into the fiber pops the
  // fiber pointer into %rbx and returns into jaccx_fiber_entry_thunk with
  // %rsp == T (16-aligned) at the thunk's call instruction:
  //
  //   [T-8]  jaccx_fiber_entry_thunk   <- consumed by ret
  //   [T-16] rbp slot (zero)
  //   [T-24] rbx slot = this
  //   [T-32] r12 slot (zero)
  //   [T-40] r13 slot (zero)
  //   [T-48] r14 slot (zero)
  //   [T-56] r15 slot (zero)         <- initial saved rsp
  char* top = align_down_16(stack_.data() + stack_.size());
  auto* slots = reinterpret_cast<void**>(top);
  slots[-1] = reinterpret_cast<void*>(&jaccx_fiber_entry_thunk);
  slots[-2] = nullptr;                 // rbp
  slots[-3] = static_cast<void*>(this); // rbx -> fiber*
  slots[-4] = nullptr;                 // r12
  slots[-5] = nullptr;                 // r13
  slots[-6] = nullptr;                 // r14
  slots[-7] = nullptr;                 // r15
  fiber_sp_ = static_cast<void*>(slots - 7);
}

void fiber::resume() {
  JACCX_ASSERT(!done_ && "resume() on a finished fiber");
  jaccx_fiber_swap(&owner_sp_, fiber_sp_);
}

void fiber::yield() {
  jaccx_fiber_swap(&fiber_sp_, owner_sp_);
}

} // namespace jaccx::fiber

extern "C" void jaccx_fiber_run(void* self) {
  auto* f = static_cast<jaccx::fiber::fiber*>(self);
  f->entry_(f->arg_);
  f->done_ = true;
  // Park: return control to the owner.  The fiber must not be resumed again
  // until reset(); resume() asserts on done_.
  jaccx_fiber_swap(&f->fiber_sp_, f->owner_sp_);
  // Unreachable: a finished fiber is never swapped back in.
  ::jaccx::detail::assert_fail("finished fiber resumed", __FILE__, __LINE__);
}
