// Stackful fibers for the SIMT simulator.
//
// A simulated GPU block runs each of its threads ("lanes") as a fiber on the
// host.  Lanes execute sequentially until one calls sync_threads(), which
// yields back to the block scheduler; the scheduler resumes the next lane,
// and once every lane has reached the barrier the whole block advances to
// the next phase.  This gives CUDA-exact barrier + shared-memory semantics
// without one OS thread per GPU thread.
//
// The context switch itself is ~20 ns of assembly (context_switch.S); a
// fiber's stack is reusable across runs, so a kernel launch allocates
// stacks only the first time a given block width is seen.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "support/aligned_buffer.hpp"
#include "support/error.hpp"

extern "C" {
/// Saves the current context's callee-saved registers, publishes its stack
/// pointer through save_sp, and switches to restore_sp (see context_switch.S).
void jaccx_fiber_swap(void** save_sp, void* restore_sp);
void jaccx_fiber_entry_thunk();
/// Trampoline target (called from assembly): runs the fiber body and parks
/// the fiber in the finished state.
void jaccx_fiber_run(void* self);
}

namespace jaccx::fiber {

/// Default lane stack: simulated kernels are shallow (a functor plus a few
/// library frames) but debug iostream/assert paths can be deep.
inline constexpr std::size_t default_stack_bytes = 64 * 1024;

/// One resumable execution context with its own stack.
///
/// Lifecycle: construct (allocates the stack), reset(entry, arg), then
/// resume() until done().  reset() may be called again to reuse the stack
/// for a different entry.  Not thread-safe; a fiber is owned by exactly one
/// scheduler thread.
class fiber {
public:
  using entry_fn = void (*)(void* arg);

  explicit fiber(std::size_t stack_bytes = default_stack_bytes);

  fiber(const fiber&) = delete;
  fiber& operator=(const fiber&) = delete;

  /// Arms the fiber to run entry(arg) on the next resume().  Must not be
  /// called while the fiber is suspended mid-run.
  void reset(entry_fn entry, void* arg);

  /// True once entry() has returned (or before the first reset()).
  bool done() const { return done_; }

  /// Switches from the caller into the fiber.  Returns when the fiber
  /// yields or its entry returns.  Must not be called when done().
  void resume();

  /// Switches from inside the fiber back to whoever resumed it.  Must only
  /// be called from within the running fiber.
  void yield();

private:
  friend void ::jaccx_fiber_run(void*);

  aligned_buffer<char> stack_;
  void* fiber_sp_ = nullptr; // suspended fiber context
  void* owner_sp_ = nullptr; // context of the resume() caller
  entry_fn entry_ = nullptr;
  void* arg_ = nullptr;
  bool done_ = true;
};

} // namespace jaccx::fiber
