#include "threadpool/thread_pool.hpp"

#include <chrono>
#include <string>

#include "prof/prof.hpp"
#include "support/env.hpp"

namespace jaccx::pool {

namespace {

/// Default spin budget before a waiter parks.  Chosen to cover the typical
/// inter-region gap of a hot solver loop without burning meaningful CPU
/// when the pool goes idle.
constexpr long default_spin_us = 50;

/// Polite busy-wait hint: de-pipelines the spin loop so a hyperthread
/// sibling (or, with the periodic yield below, another runnable thread)
/// can make progress.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#endif
}

} // namespace

std::optional<schedule> parse_schedule(std::string_view spec) {
  schedule s;
  const auto comma = spec.find(',');
  const std::string_view head = spec.substr(0, comma);
  if (head == "static") {
    s.kind = schedule_kind::static_chunks;
  } else if (head == "dynamic") {
    s.kind = schedule_kind::dynamic_chunks;
  } else {
    return std::nullopt;
  }
  if (comma != std::string_view::npos) {
    if (s.kind != schedule_kind::dynamic_chunks) {
      return std::nullopt; // a grain only makes sense for dynamic
    }
    const auto grain = parse_long(spec.substr(comma + 1));
    if (!grain || *grain <= 0) {
      return std::nullopt;
    }
    s.grain = static_cast<index_t>(*grain);
  }
  return s;
}

thread_pool::thread_pool(unsigned threads, std::string label)
    : label_(std::move(label)) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) {
      threads = 1;
    }
  }
  width_ = threads;

  // Spinning is only productive when every worker can actually run at
  // once; on an oversubscribed machine a spinning caller just steals the
  // core its workers need, so park immediately there.
  const unsigned cores = std::thread::hardware_concurrency();
  long spin = (cores != 0 && width_ > cores) ? 0 : default_spin_us;
  if (const auto us = get_env_long("JACC_SPIN_US"); us && *us >= 0) {
    spin = *us;
  }
  spin_us_.store(spin, std::memory_order_relaxed);
  if (const auto spec = get_env("JACC_SCHEDULE")) {
    if (const auto s = parse_schedule(*spec)) {
      sched_ = *s;
    }
  }

  counters_ = std::make_unique<worker_counters[]>(width_);

  workers_.reserve(width_ - 1);
  for (unsigned w = 1; w < width_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }

  jaccx::prof::register_pool(this, [this] { return stats(); });
}

thread_pool::~thread_pool() {
  shutdown_.store(true, std::memory_order_seq_cst);
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  epoch_.notify_all();
  for (auto& t : workers_) {
    t.join();
  }
  // Freezes a final stats snapshot in the profiler; must come after the
  // joins so every worker's accounting is complete.
  jaccx::prof::unregister_pool(this);
}

jaccx::prof::pool_stats thread_pool::stats() const {
  jaccx::prof::pool_stats s;
  s.label = label_;
  s.width = width_;
  const schedule sc = sched_;
  if (sc.kind == schedule_kind::static_chunks) {
    s.schedule = "static";
  } else {
    s.schedule = "dynamic";
    if (sc.grain > 0) {
      s.schedule += "," + std::to_string(sc.grain);
    }
  }
  s.regions = regions_.load(std::memory_order_relaxed);
  s.workers.reserve(width_);
  for (unsigned w = 0; w < width_; ++w) {
    const worker_counters& c = counters_[w];
    jaccx::prof::pool_worker_stat ws;
    ws.worker = w;
    ws.busy_ns = c.busy_ns.load(std::memory_order_relaxed);
    ws.spin_ns = c.spin_ns.load(std::memory_order_relaxed);
    ws.park_ns = c.park_ns.load(std::memory_order_relaxed);
    ws.parks = c.parks.load(std::memory_order_relaxed);
    ws.chunks = c.chunks.load(std::memory_order_relaxed);
    ws.regions = c.regions.load(std::memory_order_relaxed);
    s.workers.push_back(ws);
  }
  return s;
}

bool thread_pool::spin_while_epoch_is(std::uint64_t seen) const {
  const long budget = spin_us_.load(std::memory_order_relaxed);
  if (budget <= 0) {
    return epoch_.load(std::memory_order_seq_cst) != seen;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(budget);
  int polls = 0;
  for (;;) {
    for (int i = 0; i < 64; ++i) {
      if (epoch_.load(std::memory_order_seq_cst) != seen) {
        return true;
      }
      cpu_relax();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    if ((++polls & 7) == 0) {
      std::this_thread::yield();
    }
  }
}

bool thread_pool::spin_until_done(unsigned target) const {
  const long budget = spin_us_.load(std::memory_order_relaxed);
  if (budget <= 0) {
    return done_.load(std::memory_order_seq_cst) == target;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(budget);
  int polls = 0;
  for (;;) {
    for (int i = 0; i < 64; ++i) {
      if (done_.load(std::memory_order_seq_cst) == target) {
        return true;
      }
      cpu_relax();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    if ((++polls & 7) == 0) {
      std::this_thread::yield();
    }
  }
}

std::uint64_t thread_pool::run_chunks(region_fn fn, void* ctx, index_t n,
                                      unsigned worker, schedule s) {
  if (s.kind == schedule_kind::static_chunks) {
    const range r = static_chunk(n, width_, worker);
    if (!r.empty()) {
      fn(ctx, worker, r);
      return 1;
    }
    return 0;
  }
  const index_t grain = s.grain;
  std::uint64_t claimed = 0;
  for (;;) {
    const index_t begin = cursor_.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= n) {
      return claimed;
    }
    const index_t end = begin + grain < n ? begin + grain : n;
    fn(ctx, worker, range{begin, end});
    ++claimed;
  }
}

void thread_pool::run_region(index_t n, region_fn fn, void* ctx) {
  JACCX_ASSERT(n >= 0);
  if (n == 0) {
    return;
  }
  // Fewer indices than workers: forking costs more than the region.  The
  // caller runs the whole range as worker 0 in one chunk, which is a legal
  // distribution under either schedule.
  if (width_ == 1 || n < static_cast<index_t>(width_)) {
    fn(ctx, 0, range{0, n});
    return;
  }

  schedule s = sched_;
  if (s.kind == schedule_kind::dynamic_chunks && s.grain <= 0) {
    const index_t auto_grain = n / (8 * static_cast<index_t>(width_));
    s.grain = auto_grain > 0 ? auto_grain : 1;
  }

  // Publish the region: descriptor stores happen-before the release
  // increment of epoch_, which is the start signal workers acquire.
  fn_ = fn;
  ctx_ = ctx;
  n_ = n;
  region_sched_ = s;
  done_.store(0, std::memory_order_relaxed);
  cursor_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  // Wake parked workers only when someone is actually parked; the seq_cst
  // ordering against the parked_ increment in worker_loop guarantees a
  // worker either observes the new epoch before sleeping or is counted
  // here and woken.
  if (parked_.load(std::memory_order_seq_cst) != 0) {
    epoch_.notify_all();
  }

  regions_.fetch_add(1, std::memory_order_relaxed);
  const bool instrument = jaccx::prof::enabled();
  std::uint64_t t_busy0 = 0;
  if (instrument) [[unlikely]] {
    t_busy0 = jaccx::prof::now_ns();
  }

  // The caller is worker 0 and executes chunks in place.
  const std::uint64_t claimed = run_chunks(fn, ctx, n, 0, s);

  std::uint64_t t_busy1 = 0;
  if (instrument) [[unlikely]] {
    t_busy1 = jaccx::prof::now_ns();
    worker_counters& c = counters_[0];
    c.busy_ns.fetch_add(t_busy1 - t_busy0, std::memory_order_relaxed);
    c.chunks.fetch_add(claimed, std::memory_order_relaxed);
    c.regions.fetch_add(1, std::memory_order_relaxed);
    jaccx::prof::emit_pool_slice(jaccx::prof::construct::pool_busy, 0,
                                 t_busy0, t_busy1, claimed);
  }

  // Join: atomic countdown, spin first, park on the slow path.  The
  // acquire-reads of done_ synchronize with every worker's release
  // increment, so all kernel writes are visible once the count is full.
  const unsigned target = width_ - 1;
  if (done_.load(std::memory_order_seq_cst) != target &&
      !spin_until_done(target)) {
    caller_waiting_.store(1, std::memory_order_seq_cst);
    for (;;) {
      const unsigned d = done_.load(std::memory_order_seq_cst);
      if (d == target) {
        break;
      }
      done_.wait(d, std::memory_order_seq_cst);
    }
    caller_waiting_.store(0, std::memory_order_relaxed);
  }
  if (instrument) [[unlikely]] {
    // Caller-side join wait (spin + park) books as spin time: from the
    // caller's view it is all "waiting for the barrier".
    counters_[0].spin_ns.fetch_add(jaccx::prof::now_ns() - t_busy1,
                                   std::memory_order_relaxed);
  }
}

void thread_pool::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  bool labeled = false;
  for (;;) {
    // Sampled once per region; a mode flip mid-wait books that one wait to
    // the old mode, which is fine for accounting.
    const bool instrument = jaccx::prof::enabled();
    std::uint64_t t_wait0 = 0;
    if (instrument) [[unlikely]] {
      t_wait0 = jaccx::prof::now_ns();
      if (!labeled) {
        jaccx::prof::label_this_thread(label_ + ".worker." +
                                       std::to_string(worker));
        labeled = true;
      }
    }
    if (!spin_while_epoch_is(seen)) {
      std::uint64_t t_park0 = 0;
      if (instrument) [[unlikely]] {
        t_park0 = jaccx::prof::now_ns();
      }
      // Park.  parked_ is incremented before the epoch re-check inside
      // wait(); combined with the caller's seq_cst epoch increment this
      // makes "sleep forever while a region is pending" impossible.
      parked_.fetch_add(1, std::memory_order_seq_cst);
      while (epoch_.load(std::memory_order_seq_cst) == seen) {
        epoch_.wait(seen, std::memory_order_seq_cst);
      }
      parked_.fetch_sub(1, std::memory_order_relaxed);
      if (instrument) [[unlikely]] {
        const std::uint64_t t_park1 = jaccx::prof::now_ns();
        worker_counters& c = counters_[worker];
        c.spin_ns.fetch_add(t_park0 - t_wait0, std::memory_order_relaxed);
        c.park_ns.fetch_add(t_park1 - t_park0, std::memory_order_relaxed);
        c.parks.fetch_add(1, std::memory_order_relaxed);
        jaccx::prof::emit_pool_slice(jaccx::prof::construct::pool_park,
                                     worker, t_park0, t_park1, 0);
      }
    } else if (instrument) [[unlikely]] {
      counters_[worker].spin_ns.fetch_add(jaccx::prof::now_ns() - t_wait0,
                                          std::memory_order_relaxed);
    }
    // The epoch moves at most one step past `seen` while this worker has
    // not finished the current region, so the new epoch is exactly seen+1.
    ++seen;
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }

    std::uint64_t t_busy0 = 0;
    if (instrument) [[unlikely]] {
      t_busy0 = jaccx::prof::now_ns();
    }
    const std::uint64_t claimed =
        run_chunks(fn_, ctx_, n_, worker, region_sched_);
    if (instrument) [[unlikely]] {
      const std::uint64_t t_busy1 = jaccx::prof::now_ns();
      worker_counters& c = counters_[worker];
      c.busy_ns.fetch_add(t_busy1 - t_busy0, std::memory_order_relaxed);
      c.chunks.fetch_add(claimed, std::memory_order_relaxed);
      c.regions.fetch_add(1, std::memory_order_relaxed);
      jaccx::prof::emit_pool_slice(jaccx::prof::construct::pool_busy, worker,
                                   t_busy0, t_busy1, claimed);
    }

    // seq_cst (not acq_rel) so this increment is ordered against the
    // caller's caller_waiting_ store / done_ load pair: either the caller
    // sees the full count before parking or the last finisher sees the
    // waiting flag and issues the wake.
    const unsigned finished = done_.fetch_add(1, std::memory_order_seq_cst) + 1;
    if (finished == width_ - 1 &&
        caller_waiting_.load(std::memory_order_seq_cst) != 0) {
      done_.notify_one();
    }
  }
}

thread_pool& default_pool() {
  static thread_pool pool([] {
    const auto n = get_env_long("JACC_NUM_THREADS");
    if (n && *n > 0) {
      return static_cast<unsigned>(*n);
    }
    return 0u; // hardware concurrency
  }());
  return pool;
}

} // namespace jaccx::pool
