#include "threadpool/thread_pool.hpp"

#include "support/env.hpp"

namespace jaccx::pool {

thread_pool::thread_pool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) {
      threads = 1;
    }
  }
  width_ = threads;
  workers_.reserve(width_ - 1);
  for (unsigned w = 1; w < width_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) {
    t.join();
  }
}

void thread_pool::run_region(index_t n, region_fn fn, void* ctx) {
  JACCX_ASSERT(n >= 0);
  if (n == 0) {
    return;
  }
  if (width_ == 1) {
    fn(ctx, 0, range{0, n});
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = fn;
    ctx_ = ctx;
    n_ = n;
    remaining_ = width_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();

  // The caller is worker 0 and executes its chunk in place.
  fn(ctx, 0, static_chunk(n, width_, 0));

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
}

void thread_pool::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  while (true) {
    region_fn fn = nullptr;
    void* ctx = nullptr;
    index_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      fn = fn_;
      ctx = ctx_;
      n = n_;
    }

    fn(ctx, worker, static_chunk(n, width_, worker));

    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last = --remaining_ == 0;
    }
    if (last) {
      done_cv_.notify_one();
    }
  }
}

thread_pool& default_pool() {
  static thread_pool pool([] {
    const auto n = get_env_long("JACC_NUM_THREADS");
    if (n && *n > 0) {
      return static_cast<unsigned>(*n);
    }
    return 0u; // hardware concurrency
  }());
  return pool;
}

} // namespace jaccx::pool
