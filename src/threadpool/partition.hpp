// Index-range partitioning helpers shared by the threads back end and the
// simulated Rome CPU executor.
//
// The paper (Sec. IV) maps Julia's Base.Threads model onto coarse-grained
// contiguous chunks — column-wise for 2D arrays because Julia is
// column-major.  These helpers compute those chunks.
#pragma once

#include <vector>

#include "support/error.hpp"
#include "support/span2d.hpp"

namespace jaccx::pool {

/// A half-open index range [begin, end).
struct range {
  index_t begin = 0;
  index_t end = 0;

  index_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
  friend bool operator==(const range&, const range&) = default;
};

/// Splits [0, n) into `parts` contiguous chunks whose sizes differ by at
/// most one; chunk `which` is returned.  When n < parts, trailing chunks are
/// empty.  `which` must be in [0, parts).
inline range static_chunk(index_t n, index_t parts, index_t which) {
  JACCX_ASSERT(n >= 0 && parts > 0 && which >= 0 && which < parts);
  const index_t base = n / parts;
  const index_t rem = n % parts;
  // The first `rem` chunks get base+1 elements.
  const index_t begin =
      which * base + (which < rem ? which : rem);
  const index_t size = base + (which < rem ? 1 : 0);
  return {begin, begin + size};
}

/// Splits [0, n) into `weights.size()` contiguous chunks proportional to the
/// (non-negative, not-all-zero) weights, returning the `size() + 1` chunk
/// boundaries.  Apportionment is largest-remainder with ties broken toward
/// the lowest index, which makes equal weights reproduce static_chunk
/// exactly — the property the auto-sharding layer's bit-exactness pins rely
/// on (an equal-weight shard plan IS the hand-sharded multi plan).
inline std::vector<index_t> weighted_bounds(index_t n,
                                            const std::vector<double>& w) {
  JACCX_ASSERT(n >= 0 && !w.empty());
  const auto parts = static_cast<index_t>(w.size());
  std::vector<index_t> bounds(static_cast<std::size_t>(parts) + 1, 0);
  bool equal = true;
  double total = 0.0;
  for (double x : w) {
    JACCX_ASSERT(x >= 0.0);
    total += x;
    equal = equal && x == w.front();
  }
  JACCX_ASSERT(total > 0.0);
  if (equal) {
    // The guaranteed path: identical to static_chunk by construction.
    for (index_t p = 0; p < parts; ++p) {
      bounds[static_cast<std::size_t>(p) + 1] =
          static_chunk(n, parts, p).end;
    }
    return bounds;
  }
  std::vector<index_t> sizes(static_cast<std::size_t>(parts), 0);
  std::vector<double> frac(static_cast<std::size_t>(parts), 0.0);
  index_t assigned = 0;
  for (index_t p = 0; p < parts; ++p) {
    const double ideal =
        static_cast<double>(n) * (w[static_cast<std::size_t>(p)] / total);
    const auto base = static_cast<index_t>(ideal);
    sizes[static_cast<std::size_t>(p)] = base;
    frac[static_cast<std::size_t>(p)] = ideal - static_cast<double>(base);
    assigned += base;
  }
  for (index_t leftover = n - assigned; leftover > 0; --leftover) {
    index_t best = 0;
    for (index_t p = 1; p < parts; ++p) {
      if (frac[static_cast<std::size_t>(p)] >
          frac[static_cast<std::size_t>(best)]) {
        best = p;
      }
    }
    ++sizes[static_cast<std::size_t>(best)];
    frac[static_cast<std::size_t>(best)] = -1.0; // one extra element at most
  }
  for (index_t p = 0; p < parts; ++p) {
    bounds[static_cast<std::size_t>(p) + 1] =
        bounds[static_cast<std::size_t>(p)] +
        sizes[static_cast<std::size_t>(p)];
  }
  return bounds;
}

/// Chunk `which` of a weighted_bounds partition.
inline range weighted_chunk(index_t n, const std::vector<double>& w,
                            index_t which) {
  JACCX_ASSERT(which >= 0 && which < static_cast<index_t>(w.size()));
  const auto bounds = weighted_bounds(n, w);
  return {bounds[static_cast<std::size_t>(which)],
          bounds[static_cast<std::size_t>(which) + 1]};
}

/// Number of chunks of size `grain` needed to cover n indices.
inline index_t chunk_count(index_t n, index_t grain) {
  JACCX_ASSERT(grain > 0);
  return (n + grain - 1) / grain;
}

/// The `which`-th chunk of size `grain` over [0, n), clipped at n.
inline range grain_chunk(index_t n, index_t grain, index_t which) {
  JACCX_ASSERT(grain > 0 && which >= 0);
  const index_t begin = which * grain;
  const index_t end = begin + grain < n ? begin + grain : n;
  JACCX_ASSERT(begin <= n);
  return {begin, end};
}

/// Walks the flattened chunk `r` of a column-major `fast x slow` space,
/// calling visit(fast_idx, slow_idx) with the fast index innermost.  Used
/// by the threads backend when the slow extent alone is too narrow to feed
/// every worker, so chunks must cut across column (or plane) boundaries
/// without paying a div/mod per index.
template <class Visit>
void walk_flat_2d(range r, index_t fast, Visit&& visit) {
  JACCX_ASSERT(fast > 0);
  index_t i = r.begin % fast;
  index_t j = r.begin / fast;
  for (index_t idx = r.begin; idx < r.end; ++idx) {
    visit(i, j);
    if (++i == fast) {
      i = 0;
      ++j;
    }
  }
}

/// 3D variant over a `fast x mid x slow` space flattened with fast
/// innermost: visit(fast_idx, mid_idx, slow_idx).
template <class Visit>
void walk_flat_3d(range r, index_t fast, index_t mid, Visit&& visit) {
  JACCX_ASSERT(fast > 0 && mid > 0);
  index_t i = r.begin % fast;
  const index_t rest = r.begin / fast;
  index_t j = rest % mid;
  index_t k = rest / mid;
  for (index_t idx = r.begin; idx < r.end; ++idx) {
    visit(i, j, k);
    if (++i == fast) {
      i = 0;
      if (++j == mid) {
        j = 0;
        ++k;
      }
    }
  }
}

} // namespace jaccx::pool
