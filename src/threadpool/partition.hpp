// Index-range partitioning helpers shared by the threads back end and the
// simulated Rome CPU executor.
//
// The paper (Sec. IV) maps Julia's Base.Threads model onto coarse-grained
// contiguous chunks — column-wise for 2D arrays because Julia is
// column-major.  These helpers compute those chunks.
#pragma once

#include "support/error.hpp"
#include "support/span2d.hpp"

namespace jaccx::pool {

/// A half-open index range [begin, end).
struct range {
  index_t begin = 0;
  index_t end = 0;

  index_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
  friend bool operator==(const range&, const range&) = default;
};

/// Splits [0, n) into `parts` contiguous chunks whose sizes differ by at
/// most one; chunk `which` is returned.  When n < parts, trailing chunks are
/// empty.  `which` must be in [0, parts).
inline range static_chunk(index_t n, index_t parts, index_t which) {
  JACCX_ASSERT(n >= 0 && parts > 0 && which >= 0 && which < parts);
  const index_t base = n / parts;
  const index_t rem = n % parts;
  // The first `rem` chunks get base+1 elements.
  const index_t begin =
      which * base + (which < rem ? which : rem);
  const index_t size = base + (which < rem ? 1 : 0);
  return {begin, begin + size};
}

/// Number of chunks of size `grain` needed to cover n indices.
inline index_t chunk_count(index_t n, index_t grain) {
  JACCX_ASSERT(grain > 0);
  return (n + grain - 1) / grain;
}

/// The `which`-th chunk of size `grain` over [0, n), clipped at n.
inline range grain_chunk(index_t n, index_t grain, index_t which) {
  JACCX_ASSERT(grain > 0 && which >= 0);
  const index_t begin = which * grain;
  const index_t end = begin + grain < n ? begin + grain : n;
  JACCX_ASSERT(begin <= n);
  return {begin, end};
}

/// Walks the flattened chunk `r` of a column-major `fast x slow` space,
/// calling visit(fast_idx, slow_idx) with the fast index innermost.  Used
/// by the threads backend when the slow extent alone is too narrow to feed
/// every worker, so chunks must cut across column (or plane) boundaries
/// without paying a div/mod per index.
template <class Visit>
void walk_flat_2d(range r, index_t fast, Visit&& visit) {
  JACCX_ASSERT(fast > 0);
  index_t i = r.begin % fast;
  index_t j = r.begin / fast;
  for (index_t idx = r.begin; idx < r.end; ++idx) {
    visit(i, j);
    if (++i == fast) {
      i = 0;
      ++j;
    }
  }
}

/// 3D variant over a `fast x mid x slow` space flattened with fast
/// innermost: visit(fast_idx, mid_idx, slow_idx).
template <class Visit>
void walk_flat_3d(range r, index_t fast, index_t mid, Visit&& visit) {
  JACCX_ASSERT(fast > 0 && mid > 0);
  index_t i = r.begin % fast;
  const index_t rest = r.begin / fast;
  index_t j = rest % mid;
  index_t k = rest / mid;
  for (index_t idx = r.begin; idx < r.end; ++idx) {
    visit(i, j, k);
    if (++i == fast) {
      i = 0;
      if (++j == mid) {
        j = 0;
        ++k;
      }
    }
  }
}

} // namespace jaccx::pool
