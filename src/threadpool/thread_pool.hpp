// Persistent fork/join thread pool: the C++ stand-in for Julia's
// Base.Threads runtime (paper Sec. II and IV).
//
// Semantics match `Threads.@sync Threads.@threads for`: the caller blocks
// until every worker finishes its static chunk.  Workers are started once
// and parked on a condition variable between parallel regions, so each
// region pays only a wake/join handshake (measured by the
// abl_dispatch_overhead benchmark).
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "support/span2d.hpp"
#include "threadpool/partition.hpp"

namespace jaccx::pool {

class thread_pool {
public:
  /// Creates `threads` workers.  0 means use std::thread::hardware_concurrency
  /// (minimum 1).  The calling thread also executes a share of every region,
  /// so the effective parallel width is threads (callers count as worker 0).
  explicit thread_pool(unsigned threads = 0);

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;
  ~thread_pool();

  /// Number of workers participating in each region (>= 1).
  unsigned size() const { return width_; }

  /// Raw fork/join entry point: calls fn(ctx, worker, chunk) once per worker,
  /// where chunk = static_chunk(n, size(), worker).  Blocks until all chunks
  /// complete.  `fn` must not throw; kernels with failure modes should record
  /// status out-of-band (E.28 is out of scope for hot loops).
  using region_fn = void (*)(void* ctx, unsigned worker, range chunk);
  void run_region(index_t n, region_fn fn, void* ctx);

  /// Runs body(i) for every i in [0, n) with static chunking.
  template <class Body>
  void parallel_for_index(index_t n, Body&& body) {
    auto trampoline = [](void* c, unsigned, range chunk) {
      auto& b = *static_cast<std::remove_reference_t<Body>*>(c);
      for (index_t i = chunk.begin; i < chunk.end; ++i) {
        b(i);
      }
    };
    run_region(n, trampoline, const_cast<void*>(static_cast<const void*>(&body)));
  }

  /// Runs body(worker, chunk) once per worker.  Used for reductions, where
  /// each worker accumulates into its own cache-line-padded slot.
  template <class Body>
  void parallel_chunks(index_t n, Body&& body) {
    auto trampoline = [](void* c, unsigned worker, range chunk) {
      auto& b = *static_cast<std::remove_reference_t<Body>*>(c);
      b(worker, chunk);
    };
    run_region(n, trampoline, const_cast<void*>(static_cast<const void*>(&body)));
  }

private:
  void worker_loop(unsigned worker);

  // Region descriptor, valid while generation_ is odd-stepped by run_region.
  region_fn fn_ = nullptr;
  void* ctx_ = nullptr;
  index_t n_ = 0;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0; // incremented per region
  unsigned remaining_ = 0;       // workers still running current region
  bool shutdown_ = false;

  unsigned width_ = 1;
  std::vector<std::thread> workers_; // width_ - 1 helper threads
};

/// The process-wide pool used by the `threads` back end.  Width is taken
/// from JACC_NUM_THREADS when set, otherwise hardware concurrency.  Created
/// on first use.
thread_pool& default_pool();

} // namespace jaccx::pool
