// Persistent fork/join thread pool: the C++ stand-in for Julia's
// Base.Threads runtime (paper Sec. II and IV).
//
// Semantics match `Threads.@sync Threads.@threads for`: the caller blocks
// until every worker finishes its chunk(s).  Workers are started once and
// wait between parallel regions on a cache-line-padded, sense-reversing
// atomic barrier: the region epoch counter IS the sense.  A waiting worker
// spins for a bounded budget (JACC_SPIN_US, default ~50us on machines with
// enough cores) and then parks on the epoch word via the C++20 atomic
// wait/notify futex path, so back-to-back regions pay no syscall while an
// idle pool burns no CPU.  Region descriptors are published with a single
// release increment of the epoch (no mutex), and the join is an atomic
// countdown the caller spins on before parking, with at most one futex
// wake on the slow path (measured by the abl_dispatch_overhead benchmark).
//
// Work distribution is a policy (JACC_SCHEDULE): `static` splits [0, n)
// into one contiguous chunk per worker; `dynamic[,grain]` has workers claim
// grain-sized chunks off a shared atomic cursor, which fixes load imbalance
// for kernels whose per-index cost varies (CSR SpMV rows, LBM boundary
// work; measured by the abl_imbalance benchmark).  Results are identical
// across schedules: the same index set is visited exactly once either way.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "prof/prof.hpp"
#include "support/aligned_buffer.hpp"
#include "support/span2d.hpp"
#include "threadpool/partition.hpp"

namespace jaccx::pool {

/// How a parallel region's [0, n) index space is handed to workers.
enum class schedule_kind : unsigned char {
  static_chunks,  ///< one contiguous chunk per worker (default)
  dynamic_chunks, ///< workers claim grain-sized chunks off an atomic cursor
};

struct schedule {
  schedule_kind kind = schedule_kind::static_chunks;
  /// Indices claimed per cursor bump under dynamic scheduling; 0 means
  /// auto (n / (8 * width), at least 1).  Ignored for static.
  index_t grain = 0;

  friend bool operator==(const schedule&, const schedule&) = default;
};

/// Parses a JACC_SCHEDULE-style spec: "static", "dynamic", or
/// "dynamic,<grain>" with grain > 0.  Returns nullopt for anything else.
std::optional<schedule> parse_schedule(std::string_view spec);

class thread_pool {
public:
  /// Creates `threads` workers.  0 means use std::thread::hardware_concurrency
  /// (minimum 1).  The calling thread also executes a share of every region,
  /// so the effective parallel width is threads (callers count as worker 0).
  /// The initial schedule comes from JACC_SCHEDULE and the spin budget from
  /// JACC_SPIN_US when set.  `label` names the pool in profiler output
  /// ("pool" for the default pool; queue lanes use "queue.lane<N>") and
  /// prefixes its workers' trace-lane names.
  explicit thread_pool(unsigned threads = 0, std::string label = "pool");

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;
  ~thread_pool();

  /// Number of workers participating in each region (>= 1).
  unsigned size() const { return width_; }

  /// The scheduling policy applied to subsequent regions.  Must not be
  /// changed while a region is in flight.
  schedule current_schedule() const { return sched_; }
  void set_schedule(schedule s) { sched_ = s; }

  /// Microseconds a waiter burns spinning before parking on the futex.
  /// Atomic because idle workers re-read the budget on every wait while
  /// the owner may retune it between regions.
  long spin_budget_us() const {
    return spin_us_.load(std::memory_order_relaxed);
  }
  void set_spin_budget_us(long us) {
    spin_us_.store(us, std::memory_order_relaxed);
  }

  /// Raw fork/join entry point: calls fn(ctx, worker, chunk) with disjoint
  /// chunks covering [0, n) exactly once.  Under static scheduling each
  /// worker receives at most one chunk; under dynamic scheduling a worker
  /// may receive several.  Blocks until all chunks complete.  `fn` must not
  /// throw; kernels with failure modes should record status out-of-band
  /// (E.28 is out of scope for hot loops).
  using region_fn = void (*)(void* ctx, unsigned worker, range chunk);
  void run_region(index_t n, region_fn fn, void* ctx);

  /// Runs body(i) for every i in [0, n) under the current schedule.
  template <class Body>
  void parallel_for_index(index_t n, Body&& body) {
    auto trampoline = [](void* c, unsigned, range chunk) {
      auto& b = *static_cast<std::remove_reference_t<Body>*>(c);
      for (index_t i = chunk.begin; i < chunk.end; ++i) {
        b(i);
      }
    };
    run_region(n, trampoline, const_cast<void*>(static_cast<const void*>(&body)));
  }

  /// Runs body(worker, chunk) for every chunk handed out.  Used for
  /// reductions, where each worker accumulates into its own
  /// cache-line-padded slot; under dynamic scheduling a worker's slot must
  /// therefore be combined across calls, not overwritten.
  template <class Body>
  void parallel_chunks(index_t n, Body&& body) {
    auto trampoline = [](void* c, unsigned worker, range chunk) {
      auto& b = *static_cast<std::remove_reference_t<Body>*>(c);
      b(worker, chunk);
    };
    run_region(n, trampoline, const_cast<void*>(static_cast<const void*>(&body)));
  }

  /// Profiling snapshot: pool width, schedule, region count, and per-worker
  /// busy/spin/park accounting.  The time counters only advance while
  /// jaccx::prof::enabled(); region and chunk counts always advance (one
  /// relaxed increment per region on the barrier path — noise next to the
  /// barrier itself, and the sub-width inline path skips even that).
  jaccx::prof::pool_stats stats() const;

private:
  /// Per-worker accounting, one cache line each so workers never share.
  struct alignas(cache_line_bytes) worker_counters {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> spin_ns{0};
    std::atomic<std::uint64_t> park_ns{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> regions{0};
  };

  void worker_loop(unsigned worker);
  /// Returns the number of chunks this worker executed.
  std::uint64_t run_chunks(region_fn fn, void* ctx, index_t n,
                           unsigned worker, schedule s);
  bool spin_while_epoch_is(std::uint64_t seen) const;
  bool spin_until_done(unsigned target) const;

  // Region descriptor: written by the caller between regions, published to
  // workers by the release increment of epoch_ and read after the matching
  // acquire load.  Never touched while a region is in flight.
  region_fn fn_ = nullptr;
  void* ctx_ = nullptr;
  index_t n_ = 0;
  schedule region_sched_{};

  // Barrier state.  Each word gets its own cache line so a worker spinning
  // on epoch_ does not steal the line the finish countdown or the dynamic
  // cursor is bouncing on.
  alignas(cache_line_bytes) std::atomic<std::uint64_t> epoch_{0};
  alignas(cache_line_bytes) std::atomic<index_t> cursor_{0};
  alignas(cache_line_bytes) std::atomic<unsigned> done_{0};
  alignas(cache_line_bytes) std::atomic<unsigned> parked_{0};
  alignas(cache_line_bytes) std::atomic<std::uint32_t> caller_waiting_{0};
  alignas(cache_line_bytes) std::atomic<bool> shutdown_{false};

  unsigned width_ = 1;
  std::string label_;
  std::atomic<long> spin_us_{0};
  schedule sched_{};
  std::unique_ptr<worker_counters[]> counters_; // width_ entries
  alignas(cache_line_bytes) std::atomic<std::uint64_t> regions_{0};
  std::vector<std::thread> workers_; // width_ - 1 helper threads
};

/// The process-wide pool used by the `threads` back end.  Width is taken
/// from JACC_NUM_THREADS when set, otherwise hardware concurrency.  Created
/// on first use.
thread_pool& default_pool();

} // namespace jaccx::pool
