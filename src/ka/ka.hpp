// KernelAbstractions-style comparison API (paper Sec. III-A, Fig. 4).
//
// The paper contrasts JACC with KernelAbstractions.jl (KA): KA also targets
// multiple back ends, but the *user* must obtain a backend object, choose a
// group size per backend kind (256 on GPUs, 1024 on CPUs in Fig. 4), build a
// kernel for that backend, and synchronize explicitly.  This module
// reproduces that programming model on top of the same substrates so the
// abl_ka_granularity benchmark can quantify what a wrong manual group size
// costs — the burden JACC removes.
//
//   auto be = ka::get_backend(jacc::backend::cuda_a100);
//   ka::run(be, ka::default_groupsize(be), n, axpy_body, alpha, x, y);
//   ka::synchronize(be);
#pragma once

#include "core/backend.hpp"
#include "sim/launch.hpp"
#include "support/span2d.hpp"
#include "threadpool/thread_pool.hpp"

namespace jaccx::ka {

using jaccx::index_t;

/// A KA backend object: thin value wrapper over a jacc backend id.
struct backend_t {
  jacc::backend target = jacc::backend::threads;

  friend bool operator==(const backend_t&, const backend_t&) = default;
};

inline backend_t get_backend(jacc::backend b) { return backend_t{b}; }

/// KernelAbstractions.isgpu analogue.
inline bool isgpu(const backend_t& be) {
  return be.target == jacc::backend::cuda_a100 ||
         be.target == jacc::backend::hip_mi100 ||
         be.target == jacc::backend::oneapi_max1550;
}

/// The Fig. 4 heuristic the KA user writes by hand.
inline index_t default_groupsize(const backend_t& be) {
  return isgpu(be) ? 256 : 1024;
}

/// KA requires explicit synchronization after a kernel; all our substrates
/// are synchronous, so this is a no-op kept for model fidelity.
inline void synchronize(const backend_t&) {}

/// Launches body(i, args...) over ndrange [0, n) with the user-chosen
/// group size.  On GPU back ends groupsize is the block size; on CPU back
/// ends it is the chunk grain.  Unlike jacc::parallel_for, a bad choice is
/// the caller's problem — that asymmetry is the point of the comparison.
template <class F, class... Args>
void run(const backend_t& be, index_t groupsize, index_t n, F&& f,
         Args&&... args) {
  JACCX_ASSERT(n >= 0);
  if (n == 0) {
    return;
  }
  if (groupsize <= 0) {
    throw_usage_error("KernelAbstractions groupsize must be positive");
  }
  switch (be.target) {
  case jacc::backend::serial: {
    for (index_t i = 0; i < n; ++i) {
      f(i, args...);
    }
    return;
  }
  case jacc::backend::threads: {
    // Grain-sized chunks, round-robin over workers (KA's CPU mapping).
    auto& pool = jaccx::pool::default_pool();
    const index_t chunks = pool::chunk_count(n, groupsize);
    pool.parallel_for_index(chunks, [&](index_t c) {
      const auto r = pool::grain_chunk(n, groupsize, c);
      for (index_t i = r.begin; i < r.end; ++i) {
        f(i, args...);
      }
    });
    return;
  }
  case jacc::backend::cpu_rome: {
    auto& dev = *jacc::backend_device(be.target);
    sim::cpu_region_config cfg;
    cfg.name = "ka.kernel";
    cfg.chunks = static_cast<std::uint64_t>(pool::chunk_count(n, groupsize));
    sim::cpu_parallel_range(dev, cfg, n, [&](index_t i) { f(i, args...); });
    return;
  }
  case jacc::backend::cuda_a100:
  case jacc::backend::hip_mi100:
  case jacc::backend::oneapi_max1550: {
    auto& dev = *jacc::backend_device(be.target);
    if (groupsize > dev.model().max_threads_per_block) {
      throw_usage_error("KernelAbstractions groupsize exceeds device limit");
    }
    sim::launch_config cfg;
    cfg.block = sim::dim3{groupsize};
    cfg.grid = sim::dim3{sim::ceil_div(n, groupsize)};
    cfg.name = "ka.kernel";
    sim::launch(dev, cfg, [&](sim::kernel_ctx& ctx) {
      const index_t i = ctx.global_x(); // @index(Global)
      if (i < n) {
        f(i, args...);
      }
    });
    return;
  }
  }
}

/// 2D ndrange: body(i, j, args...) over rows x cols with a user-chosen
/// square group edge (KA kernels pick their workgroup shape explicitly).
/// i is the fast index, as everywhere in this codebase.
template <class F, class... Args>
void run2d(const backend_t& be, index_t group_edge, index_t rows,
           index_t cols, F&& f, Args&&... args) {
  JACCX_ASSERT(rows >= 0 && cols >= 0);
  if (rows == 0 || cols == 0) {
    return;
  }
  if (group_edge <= 0) {
    throw_usage_error("KernelAbstractions group edge must be positive");
  }
  switch (be.target) {
  case jacc::backend::serial: {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        f(i, j, args...);
      }
    }
    return;
  }
  case jacc::backend::threads: {
    auto& pool = jaccx::pool::default_pool();
    pool.parallel_for_index(cols, [&](index_t j) {
      for (index_t i = 0; i < rows; ++i) {
        f(i, j, args...);
      }
    });
    return;
  }
  case jacc::backend::cpu_rome: {
    auto& dev = *jacc::backend_device(be.target);
    sim::cpu_region_config cfg;
    cfg.name = "ka.kernel2d";
    cfg.chunks = static_cast<std::uint64_t>(
        pool::chunk_count(cols, group_edge));
    sim::cpu_parallel_range_2d(dev, cfg, rows, cols,
                               [&](index_t i, index_t j) { f(i, j, args...); });
    return;
  }
  case jacc::backend::cuda_a100:
  case jacc::backend::hip_mi100:
  case jacc::backend::oneapi_max1550: {
    auto& dev = *jacc::backend_device(be.target);
    if (group_edge * group_edge > dev.model().max_threads_per_block) {
      throw_usage_error("KernelAbstractions group exceeds device limit");
    }
    sim::launch_config cfg;
    const index_t gi = rows < group_edge ? rows : group_edge;
    const index_t gj = cols < group_edge ? cols : group_edge;
    cfg.block = sim::dim3{gi, gj};
    cfg.grid = sim::dim3{sim::ceil_div(rows, gi), sim::ceil_div(cols, gj)};
    cfg.name = "ka.kernel2d";
    sim::launch(dev, cfg, [&](sim::kernel_ctx& ctx) {
      const index_t i = ctx.global_x();
      const index_t j = ctx.global_y();
      if (i < rows && j < cols) {
        f(i, j, args...);
      }
    });
    return;
  }
  }
}

} // namespace jaccx::ka
