// Kernel launch executors for the SIMT simulator.
//
// Three entry points:
//   launch             — fast path: lanes run sequentially to completion;
//                        sync_threads() is a contract violation here.
//   launch_cooperative — each lane is a fiber; sync_threads() yields to the
//                        block scheduler, giving real barrier semantics for
//                        shared-memory kernels (the paper's Fig. 3 DOT).
//   cpu_parallel_range / cpu_parallel_range_2d — the coarse-grained chunked
//                        execution of the Base.Threads model, column-major
//                        for 2D as the paper requires (Sec. IV).
//
// All executors are synchronous, matching JACC's guarantee that computation
// has finished when any construct returns (paper Sec. IV).
#pragma once

#include <string_view>
#include <vector>

#include "sim/kernel_ctx.hpp"
#include "sim/memspace.hpp"
#include "support/aligned_buffer.hpp"

namespace jaccx::sim {

/// Geometry plus accounting hints for one kernel launch.
struct launch_config {
  dim3 grid;
  dim3 block;
  std::size_t shmem_bytes = 0;
  std::string_view name = "kernel";
  launch_flavor flavor;
  double flops_per_index = 0.0; ///< flop hint per executed thread/iteration
};

namespace detail {

inline void validate_geometry(const device& dev, const launch_config& cfg) {
  const auto& m = dev.model();
  if (m.kind != device_kind::gpu) {
    throw_usage_error("SIMT launch on a non-GPU device model");
  }
  if (cfg.block.count() <= 0 || cfg.grid.count() <= 0) {
    throw_usage_error("launch with empty grid or block");
  }
  if (cfg.block.count() > m.max_threads_per_block) {
    throw_usage_error("block exceeds max_threads_per_block");
  }
  if (cfg.shmem_bytes > m.shared_mem_per_block) {
    throw_usage_error("dynamic shared memory exceeds device limit");
  }
}

/// Aborts the launch if the kernel throws, so the device stays usable.
class launch_guard {
public:
  explicit launch_guard(device& dev) : dev_(&dev) { dev.begin_launch(); }
  ~launch_guard() {
    if (dev_ != nullptr) {
      dev_->abort_launch();
    }
  }
  launch_guard(const launch_guard&) = delete;
  launch_guard& operator=(const launch_guard&) = delete;

  /// Disarms the guard for the normal end_launch path.
  device& commit() {
    device& d = *dev_;
    dev_ = nullptr;
    return d;
  }

private:
  device* dev_;
};

template <class K>
struct lane_arg {
  const K* kernel = nullptr;
  kernel_ctx* ctx = nullptr;
};

template <class K>
void lane_entry(void* p) {
  auto* a = static_cast<lane_arg<K>*>(p);
  (*a->kernel)(*a->ctx);
}

} // namespace detail

/// Fast non-cooperative launch: every thread of every block runs to
/// completion in sequence.  Kernels must not call sync_threads().
template <class K>
void launch(device& dev, const launch_config& cfg, const K& kernel) {
  detail::validate_geometry(dev, cfg);
  aligned_buffer<std::byte> shmem(cfg.shmem_bytes > 0 ? cfg.shmem_bytes : 1);

  detail::launch_guard guard(dev);
  kernel_ctx ctx;
  kernel_ctx_access::init(ctx, &dev, shmem.data(), cfg.shmem_bytes);
  ctx.block_dim = cfg.block;
  ctx.grid_dim = cfg.grid;
  for (std::int64_t bz = 0; bz < cfg.grid.z; ++bz) {
    for (std::int64_t by = 0; by < cfg.grid.y; ++by) {
      for (std::int64_t bx = 0; bx < cfg.grid.x; ++bx) {
        ctx.block_idx = dim3{bx, by, bz};
        for (std::int64_t tz = 0; tz < cfg.block.z; ++tz) {
          for (std::int64_t ty = 0; ty < cfg.block.y; ++ty) {
            for (std::int64_t tx = 0; tx < cfg.block.x; ++tx) {
              ctx.thread_idx = dim3{tx, ty, tz};
              kernel(ctx);
            }
          }
        }
      }
    }
  }
  guard.commit().end_launch(cfg.name, cfg.flavor,
                 static_cast<std::uint64_t>(cfg.grid.count()) *
                     static_cast<std::uint64_t>(cfg.block.count()),
                 cfg.flops_per_index,
                 static_cast<std::uint64_t>(cfg.grid.count()));
}

/// Cooperative launch: lanes are fibers, sync_threads() is a real block-wide
/// barrier.  One pass over the lane list equals one barrier phase.
template <class K>
void launch_cooperative(device& dev, const launch_config& cfg,
                        const K& kernel) {
  detail::validate_geometry(dev, cfg);
  const auto lanes = static_cast<std::size_t>(cfg.block.count());
  aligned_buffer<std::byte> shmem(cfg.shmem_bytes > 0 ? cfg.shmem_bytes : 1);

  std::vector<kernel_ctx> ctxs(lanes);
  std::vector<detail::lane_arg<K>> args(lanes);

  detail::launch_guard guard(dev);
  for (std::int64_t bz = 0; bz < cfg.grid.z; ++bz) {
    for (std::int64_t by = 0; by < cfg.grid.y; ++by) {
      for (std::int64_t bx = 0; bx < cfg.grid.x; ++bx) {
        // Arm all lanes of this block.
        std::size_t lane = 0;
        for (std::int64_t tz = 0; tz < cfg.block.z; ++tz) {
          for (std::int64_t ty = 0; ty < cfg.block.y; ++ty) {
            for (std::int64_t tx = 0; tx < cfg.block.x; ++tx, ++lane) {
              kernel_ctx& ctx = ctxs[lane];
              kernel_ctx_access::init(ctx, &dev, shmem.data(),
                                      cfg.shmem_bytes);
              ctx.block_dim = cfg.block;
              ctx.grid_dim = cfg.grid;
              ctx.block_idx = dim3{bx, by, bz};
              ctx.thread_idx = dim3{tx, ty, tz};
              fiber::fiber& f = dev.lane_fiber(lane);
              kernel_ctx_access::set_lane(ctx, &f);
              args[lane] = detail::lane_arg<K>{&kernel, &ctx};
              f.reset(&detail::lane_entry<K>, &args[lane]);
            }
          }
        }
        // Run barrier phases: each pass resumes every live lane once; a lane
        // stops at the next sync_threads() or at kernel completion.
        std::size_t remaining = lanes;
        while (remaining > 0) {
          for (std::size_t l = 0; l < lanes; ++l) {
            fiber::fiber& f = dev.lane_fiber(l);
            if (!f.done()) {
              f.resume();
              if (f.done()) {
                --remaining;
              }
            }
          }
        }
      }
    }
  }
  guard.commit().end_launch(cfg.name, cfg.flavor,
                 static_cast<std::uint64_t>(cfg.grid.count()) *
                     static_cast<std::uint64_t>(cfg.block.count()),
                 cfg.flops_per_index,
                 static_cast<std::uint64_t>(cfg.grid.count()));
}

/// Accounting hints for a CPU parallel region.
struct cpu_region_config {
  std::string_view name = "region";
  launch_flavor flavor;
  double flops_per_index = 0.0;
  /// Number of scheduled chunks; 0 means one static chunk per core (the
  /// Base.Threads default).  KernelAbstractions-style explicit group sizes
  /// override this (see ka::).
  std::uint64_t chunks = 0;
};

namespace detail {
inline std::uint64_t cpu_chunks(const device& dev,
                                const cpu_region_config& cfg,
                                std::uint64_t n) {
  if (cfg.chunks > 0) {
    return cfg.chunks;
  }
  const auto units = static_cast<std::uint64_t>(dev.model().parallel_units);
  return n < units ? n : units;
}
} // namespace detail

/// Coarse-grained 1D region on a CPU device model: body(i) for i in [0, n).
/// Functionally sequential; the cost model charges per-index runtime
/// overhead divided across the model's cores.
template <class Body>
void cpu_parallel_range(device& dev, const cpu_region_config& cfg, index_t n,
                        const Body& body) {
  if (dev.model().kind != device_kind::cpu) {
    throw_usage_error("cpu_parallel_range on a non-CPU device model");
  }
  JACCX_ASSERT(n >= 0);
  detail::launch_guard guard(dev);
  for (index_t i = 0; i < n; ++i) {
    body(i);
  }
  guard.commit().end_launch(cfg.name, cfg.flavor, static_cast<std::uint64_t>(n),
                 cfg.flops_per_index,
                 detail::cpu_chunks(dev, cfg, static_cast<std::uint64_t>(n)));
}

/// Coarse-grained 2D region, column-major: body(i, j) with j (columns) as
/// the parallel/outer dimension, i contiguous — the decomposition the paper
/// prescribes for Julia's column-major arrays (Sec. IV).
template <class Body>
void cpu_parallel_range_2d(device& dev, const cpu_region_config& cfg,
                           index_t rows, index_t cols, const Body& body) {
  if (dev.model().kind != device_kind::cpu) {
    throw_usage_error("cpu_parallel_range_2d on a non-CPU device model");
  }
  JACCX_ASSERT(rows >= 0 && cols >= 0);
  detail::launch_guard guard(dev);
  for (index_t j = 0; j < cols; ++j) {
    for (index_t i = 0; i < rows; ++i) {
      body(i, j);
    }
  }
  const auto total2 =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
  guard.commit().end_launch(cfg.name, cfg.flavor, total2, cfg.flops_per_index,
                 detail::cpu_chunks(dev, cfg, static_cast<std::uint64_t>(cols)));
}

/// Coarse-grained 3D region, column-major: body(i, j, k) with k as the
/// parallel/outer dimension.  All rows*cols*depth iterations are charged.
template <class Body>
void cpu_parallel_range_3d(device& dev, const cpu_region_config& cfg,
                           index_t rows, index_t cols, index_t depth,
                           const Body& body) {
  if (dev.model().kind != device_kind::cpu) {
    throw_usage_error("cpu_parallel_range_3d on a non-CPU device model");
  }
  JACCX_ASSERT(rows >= 0 && cols >= 0 && depth >= 0);
  detail::launch_guard guard(dev);
  for (index_t k = 0; k < depth; ++k) {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        body(i, j, k);
      }
    }
  }
  const auto total3 = static_cast<std::uint64_t>(rows) *
                      static_cast<std::uint64_t>(cols) *
                      static_cast<std::uint64_t>(depth);
  guard.commit().end_launch(cfg.name, cfg.flavor, total3, cfg.flops_per_index,
                 detail::cpu_chunks(dev, cfg, static_cast<std::uint64_t>(depth)));
}

} // namespace jaccx::sim
