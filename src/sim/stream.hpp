// Asynchronous streams for the device simulator.
//
// JACC itself is synchronous (paper Sec. IV), but the paper's future-work
// list includes "more efficient exploitation of available resources"; on
// real GPUs the first such tool is the stream: independent in-order queues
// whose transfers and kernels overlap.  A sim::stream is an independent
// clock on one device — work issued inside its scope executes functionally
// right away (host order) but is *charged* to the stream's timeline, so two
// streams' operations overlap in simulated time exactly as CUDA streams
// would.  join() is the device-wide synchronize: every stream clock and the
// default clock align to the maximum.
//
//   sim::stream s1(dev), s2(dev);
//   { sim::stream_scope in(s1); buf1.copy_from_host(...); launch(...); }
//   { sim::stream_scope in(s2); buf2.copy_from_host(...); launch(...); }
//   double wall = sim::join(dev, {&s1, &s2});
//
// Fidelity note: the model lets a stream's transfer overlap another
// stream's transfer as well as compute (i.e. it does not serialize the
// PCIe link between streams); treat multi-stream transfer overlap as
// optimistic by up to 2x.
#pragma once

#include <initializer_list>
#include <string>
#include <utility>

#include "sim/device.hpp"

namespace jaccx::sim {

/// One in-order queue with its own clock.  The optional label names the
/// stream's Chrome-trace lane; it defaults to "<model>.stream".
class stream {
public:
  explicit stream(device& dev, std::string label = {}) : dev_(&dev) {
    tl_.set_label(label.empty() ? dev.model().name + ".stream"
                                : std::move(label));
    // Work enqueued on a fresh stream cannot start before device time.
    const double origin = dev.tl().now_us();
    if (origin > 0.0) {
      tl_.record("stream.origin", event_kind::kernel, origin);
    }
  }

  device& dev() const { return *dev_; }
  timeline& tl() { return tl_; }
  double now_us() const { return tl_.now_us(); }

private:
  device* dev_;
  timeline tl_;
};

/// While alive, every charge on the stream's device lands on the stream's
/// clock.  Scopes nest (the previous target is restored).
class stream_scope {
public:
  explicit stream_scope(stream& s)
      : dev_(&s.dev()), prev_(dev_->set_clock_target(&s.tl())) {}
  ~stream_scope() { dev_->set_clock_target(prev_); }
  stream_scope(const stream_scope&) = delete;
  stream_scope& operator=(const stream_scope&) = delete;

private:
  device* dev_;
  timeline* prev_;
};

/// Device-wide synchronize: aligns the device clock and every listed stream
/// to the furthest-ahead of them; returns that wall time.
inline double join(device& dev, std::initializer_list<stream*> streams) {
  double t = dev.tl().now_us();
  for (stream* s : streams) {
    t = t < s->now_us() ? s->now_us() : t;
  }
  const double behind_dev = t - dev.tl().now_us();
  if (behind_dev > 0.0) {
    dev.tl().record("stream.join", event_kind::kernel, behind_dev);
  }
  for (stream* s : streams) {
    const double behind = t - s->now_us();
    if (behind > 0.0) {
      s->tl().record("stream.join", event_kind::kernel, behind);
    }
  }
  return t;
}

} // namespace jaccx::sim
