#include "sim/device_model.hpp"

#include <array>

#include "prof/prof.hpp"
#include "support/error.hpp"

namespace jaccx::sim {
namespace {

// Calibration notes (full derivation in EXPERIMENTS.md):
//  * Bandwidths are "achieved" figures (STREAM-like), not peaks.
//  * per_index_overhead_ns on the CPU models Julia Base.Threads' dynamic
//    per-iteration cost; it is what makes streaming 1D kernels on the Rome
//    CPU ~70x slower than a GPU (paper Sec. V-A1) while the flop-heavy LBM
//    stays within ~14-20x (paper Sec. V-B).
//  * GPU launch latencies: ROCm (MI100) highest, CUDA (A100) lowest, oneAPI
//    in between, mirroring the latency discussion in Sec. V-A1.
//  * reduce_efficiency models the two-kernel DOT structure's extra partials
//    traffic and device-side sync cost; jacc_reduce_derate the measured gap
//    between JACC's generic reduction and the hand-tuned native one.

device_model make_rome64() {
  device_model m;
  m.name = "rome64";
  m.description = "AMD EPYC 7742 Rome, 64 cores (Base.Threads model)";
  m.kind = device_kind::cpu;
  m.parallel_units = 64;
  m.max_threads_per_block = 1; // unused on CPUs
  m.shared_mem_per_block = 0;
  m.dram_bw_gbps = 100.0;   // achieved by Julia-era threaded kernels (8ch DDR4)
  m.cache_bw_gbps = 1500.0; // aggregate L3
  m.cache_bytes = std::size_t{32} << 20; // 16 disjoint 16 MiB CCX L3 slices; ~32 MiB effective reach
  m.cache_line_bytes = 64;
  m.cache_assoc = 16;
  m.flops_gflops = 2300.0; // 64c * 2.25 GHz * 16 DP flop/cycle
  m.launch_overhead_us = 25.0;     // @threads fork/join
  m.per_index_overhead_ns = 150.0; // Julia dynamic per-iteration cost
  m.per_block_overhead_ns = 500.0;  // per-chunk fork cost
  m.xfer_bw_gbps = 1e9;  // no host<->device copies on the CPU
  m.xfer_latency_us = 0.0;
  m.alloc_overhead_us = 0.5;
  m.jacc_dispatch_us = 0.5;
  m.reduce_efficiency = 1.0;
  return m;
}

device_model make_mi100() {
  device_model m;
  m.name = "mi100";
  m.description = "AMD MI100 GPU (AMDGPU.jl / ROCm model)";
  m.kind = device_kind::gpu;
  m.parallel_units = 120; // CUs
  m.max_threads_per_block = 1024;
  m.shared_mem_per_block = 64 * 1024;
  m.dram_bw_gbps = 900.0; // HBM2, 1228 peak derated
  m.cache_bw_gbps = 2500.0;
  m.cache_bytes = std::size_t{8} << 20; // L2
  m.cache_line_bytes = 64;
  m.cache_assoc = 16;
  m.flops_gflops = 11500.0;
  m.launch_overhead_us = 10.0; // ROCm-era launch latency
  m.per_index_overhead_ns = 0.01;
  m.per_block_overhead_ns = 250.0;
  m.xfer_bw_gbps = 16.0; // PCIe4 achieved
  m.xfer_latency_us = 40.0; // ROCm-era sync cost
  m.alloc_overhead_us = 2.0;
  m.jacc_dispatch_us = 2.0;
  m.reduce_efficiency = 0.35; // paper Fig. 8: large AXPY/DOT gap on MI100
  m.jacc_reduce_derate = 1.0;
  return m;
}

device_model make_a100() {
  device_model m;
  m.name = "a100";
  m.description = "NVIDIA A100 GPU (CUDA.jl model)";
  m.kind = device_kind::gpu;
  m.parallel_units = 108; // SMs
  m.max_threads_per_block = 1024;
  m.shared_mem_per_block = 48 * 1024;
  m.dram_bw_gbps = 1400.0; // HBM2e, 1555 peak derated
  m.cache_bw_gbps = 4000.0;
  m.cache_bytes = std::size_t{40} << 20; // L2
  m.cache_line_bytes = 128;
  m.cache_assoc = 16;
  m.flops_gflops = 9700.0;
  m.launch_overhead_us = 4.0;
  m.per_index_overhead_ns = 0.01;
  m.per_block_overhead_ns = 200.0;
  m.xfer_bw_gbps = 22.0;
  m.xfer_latency_us = 10.0; // paper: "faster CPU-GPU connection"
  m.alloc_overhead_us = 1.0;
  m.jacc_dispatch_us = 2.0;
  m.reduce_efficiency = 0.8;
  m.jacc_reduce_derate = 1.0;
  return m;
}

device_model make_max1550() {
  device_model m;
  m.name = "max1550";
  m.description = "Intel Data Center Max 1550 GPU (oneAPI.jl model)";
  m.kind = device_kind::gpu;
  m.parallel_units = 128; // Xe cores per stack
  m.max_threads_per_block = 1024;
  m.shared_mem_per_block = 128 * 1024;
  m.dram_bw_gbps = 350.0; // oneAPI.jl-era achieved, far below HBM peak
  m.cache_bw_gbps = 3000.0;
  m.cache_bytes = std::size_t{32} << 20; // effective L2 reach per stack
  m.cache_line_bytes = 64;
  m.cache_assoc = 16;
  m.flops_gflops = 8000.0;
  m.launch_overhead_us = 15.0;
  m.per_index_overhead_ns = 0.01;
  m.per_block_overhead_ns = 300.0;
  m.xfer_bw_gbps = 12.0;
  m.xfer_latency_us = 30.0;
  m.alloc_overhead_us = 2.0;
  m.jacc_dispatch_us = 2.0;
  m.reduce_efficiency = 0.5;
  m.jacc_reduce_derate = 0.74; // paper Sec. V-A1: ~35% JACC DOT overhead
  return m;
}

const std::array<device_model, 4>& models() {
  static const std::array<device_model, 4> all = {
      make_rome64(), make_mi100(), make_a100(), make_max1550()};
  return all;
}

} // namespace

namespace {

/// Hands the model peak rates to the profiler so JACC_PROFILE=roofline can
/// place simulated kernels without prof linking against sim (the dependency
/// already runs sim → prof through the timeline tee).
struct roof_source_registrar {
  roof_source_registrar() {
    jaccx::prof::register_roof_source(
        [](std::string_view name)
            -> std::optional<jaccx::prof::roof_rates> {
          const auto peak = model_peak_rates(name);
          if (!peak) {
            return std::nullopt;
          }
          return jaccx::prof::roof_rates{peak->dram_gbps, peak->gflops};
        });
  }
};

const roof_source_registrar g_roof_source_registrar;

} // namespace

const device_model& builtin_model(std::string_view name) {
  for (const auto& m : models()) {
    if (m.name == name) {
      return m;
    }
  }
  throw_config_error(std::string("unknown device model '") +
                     std::string(name) +
                     "' (known: rome64, mi100, a100, max1550)");
}

const device_model* find_builtin_model(std::string_view name) {
  for (const auto& m : models()) {
    if (m.name == name) {
      return &m;
    }
  }
  return nullptr;
}

std::optional<peak_rates> model_peak_rates(std::string_view name) {
  const device_model* m = find_builtin_model(name);
  if (m == nullptr) {
    return std::nullopt;
  }
  return peak_rates{m->dram_bw_gbps, m->flops_gflops};
}

std::vector<std::string> builtin_model_names() {
  std::vector<std::string> names;
  names.reserve(models().size());
  for (const auto& m : models()) {
    names.push_back(m.name);
  }
  return names;
}

} // namespace jaccx::sim
