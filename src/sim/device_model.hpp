// Parametric performance models for the simulated devices.
//
// The paper evaluates four architectures (AMD EPYC 7742 "Rome" CPU, AMD
// MI100, NVIDIA A100, Intel Data Center Max 1550).  No such hardware exists
// in this environment, so each is represented by a small analytic model: the
// functional behaviour (kernels, barriers, transfers) executes for real on
// the host while the *clock* advances according to these parameters.
//
// Parameter provenance and the calibration procedure are documented in
// EXPERIMENTS.md.  Headline sources: vendor peak specs derated to typical
// achieved STREAM/launch-latency figures, then nudged so the four figure
// benches reproduce the paper's qualitative ratios.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jaccx::sim {

enum class device_kind {
  cpu, ///< coarse-grained chunked execution, no host<->device transfers
  gpu  ///< fine-grained SIMT execution, explicit transfers over a link
};

/// All knobs of the analytic cost model for one device.
struct device_model {
  std::string name;        ///< registry key, e.g. "a100"
  std::string description; ///< human-readable label used in bench output
  device_kind kind = device_kind::gpu;

  // --- parallel structure -------------------------------------------------
  int parallel_units = 1;          ///< CPU cores or GPU SMs/CUs
  int max_threads_per_block = 1024;///< CUDA_MAX_BLOCK_DIM_X analogue
  std::size_t shared_mem_per_block = 48 * 1024;

  // --- memory system ------------------------------------------------------
  double dram_bw_gbps = 100.0;  ///< achievable device-memory bandwidth
  double cache_bw_gbps = 500.0; ///< bandwidth for modeled-cache hits
  std::size_t cache_bytes = 8u << 20; ///< modeled last-level cache capacity
  int cache_line_bytes = 64;
  int cache_assoc = 8;

  // --- compute --------------------------------------------------------------
  double flops_gflops = 1000.0; ///< peak double-precision rate

  // --- overheads ------------------------------------------------------------
  double launch_overhead_us = 5.0;   ///< per kernel launch / parallel region
  double per_index_overhead_ns = 0.0;///< runtime scheduling cost per index,
                                     ///< charged as indices * this / units.
                                     ///< Models Julia Base.Threads' per-
                                     ///< iteration dynamic overhead on CPUs.
  double per_block_overhead_ns = 0.0; ///< cost to schedule one GPU block /
                                      ///< CPU chunk, amortized over
                                      ///< parallel_units.  This is what makes
                                      ///< a badly chosen KernelAbstractions
                                      ///< group size expensive (Sec. III-A
                                      ///< ablation).
  double atomic_overhead_ns = 8.0; ///< serialization cost per atomic RMW,
                                   ///< amortized over parallel_units; hot
                                   ///< single-address atomics contend far
                                   ///< worse than this average models, so
                                   ///< treat results as a lower bound
  double xfer_bw_gbps = 25.0;   ///< host<->device link bandwidth
  double xfer_latency_us = 8.0; ///< per-transfer fixed latency
  double alloc_overhead_us = 1.0; ///< per device allocation

  // --- portable-layer model -------------------------------------------------
  double jacc_dispatch_us = 0.0;  ///< extra cost when a launch goes through
                                  ///< the JACC front end (Julia's function-
                                  ///< as-argument allocations, paper Sec. V-A2)
  double reduce_efficiency = 1.0; ///< bandwidth derating for reduction
                                  ///< kernels on this device (two-kernel
                                  ///< structure, partials traffic; paper
                                  ///< Sec. V-A1 discusses the AXPY/DOT gap)
  double jacc_reduce_derate = 1.0;///< additional derating when the reduction
                                  ///< goes through JACC's generic
                                  ///< parallel_reduce rather than the
                                  ///< hand-tuned native kernel (paper
                                  ///< Sec. V-A1: ~35% JACC DOT overhead on
                                  ///< the Intel Max 1550)
};

/// Returns the built-in model for `name` ("rome64", "mi100", "a100",
/// "max1550").  Throws jaccx::config_error for unknown names.
const device_model& builtin_model(std::string_view name);

/// Non-throwing lookup: nullptr for unknown names.
const device_model* find_builtin_model(std::string_view name);

/// Names of all built-in models, in the order the paper lists them.
std::vector<std::string> builtin_model_names();

/// Roofline ceilings of one model, as used by JACC_PROFILE=roofline and
/// tools/jacc_info: achievable DRAM bandwidth and peak DP rate.
struct peak_rates {
  double dram_gbps = 0.0;
  double gflops = 0.0;
};

/// Peak rates for `name`; nullopt for unknown names.
std::optional<peak_rates> model_peak_rates(std::string_view name);

} // namespace jaccx::sim
