// Set-associative LRU cache model.
//
// Every simulated-device memory access is classified as a modeled-cache hit
// or a DRAM line fill; the cost model charges the two at different
// bandwidths.  This is what gives kernels with spatial/temporal reuse (LBM
// reads nine neighbouring distributions per site) their fair advantage over
// pure streaming kernels, and what makes GPU coalescing emerge naturally:
// 32 consecutive lanes touching one 128-byte line pay one fill, not 32.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace jaccx::sim {

class cache_model {
public:
  struct stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t accesses() const { return hits + misses; }
    double hit_rate() const {
      return accesses() == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(accesses());
    }
  };

  /// capacity is rounded down to a whole number of sets; line_bytes must be
  /// a power of two.
  cache_model(std::size_t capacity_bytes, int line_bytes, int associativity);

  /// Classifies an access to `addr` and updates LRU state.  Returns true on
  /// hit.  Accesses spanning a line boundary are charged to the first line
  /// (kernel data here is naturally aligned, so this is exact in practice).
  bool access(std::uintptr_t addr);

  /// Invalidates all lines and zeroes statistics.
  void reset();

  const stats& totals() const { return stats_; }
  int line_bytes() const { return line_bytes_; }
  std::size_t capacity_bytes() const;

private:
  struct way {
    std::uintptr_t tag = 0;
    std::uint64_t last_use = 0; // global LRU clock value
    bool valid = false;
  };

  int line_bytes_ = 64;
  int line_shift_ = 6;
  int assoc_ = 8;
  std::size_t num_sets_ = 1;
  std::vector<way> ways_; // num_sets_ * assoc_, set-major
  std::uint64_t clock_ = 0;
  stats stats_;
};

} // namespace jaccx::sim
