// Launch geometry for the SIMT simulator (CUDA-style).
#pragma once

#include <cstdint>

#include "support/error.hpp"

namespace jaccx::sim {

/// CUDA-style 3-component extent.  Components default to 1 so dim3(n) is a
/// 1D geometry and dim3(m, n) a 2D one.
struct dim3 {
  std::int64_t x = 1;
  std::int64_t y = 1;
  std::int64_t z = 1;

  constexpr dim3() = default;
  constexpr dim3(std::int64_t x_) : x(x_) {}
  constexpr dim3(std::int64_t x_, std::int64_t y_) : x(x_), y(y_) {}
  constexpr dim3(std::int64_t x_, std::int64_t y_, std::int64_t z_)
      : x(x_), y(y_), z(z_) {}

  constexpr std::int64_t count() const { return x * y * z; }

  friend constexpr bool operator==(const dim3&, const dim3&) = default;
};

/// ceil(n / d) for positive d.
constexpr std::int64_t ceil_div(std::int64_t n, std::int64_t d) {
  JACCX_ASSERT(d > 0);
  return (n + d - 1) / d;
}

} // namespace jaccx::sim
