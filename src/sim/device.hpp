// One simulated device instance: model parameters + clock + cache state +
// launch bookkeeping.
//
// Functional execution happens on the host; every memory access made through
// a device_span / jacc::array while a launch is active is routed through
// track(), classified by the cache model, and accumulated into the launch's
// work tally.  end_launch() converts the tally into simulated time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "sim/cache_model.hpp"
#include "support/aligned_buffer.hpp"
#include "sim/device_model.hpp"
#include "sim/timeline.hpp"
#include "sim/work_tally.hpp"
#include "support/error.hpp"

namespace jaccx::fiber {
class fiber;
}

namespace jaccx::sim {

class device {
public:
  explicit device(device_model model);
  device(const device&) = delete;
  device& operator=(const device&) = delete;
  ~device();

  const device_model& model() const { return model_; }
  timeline& tl() { return timeline_; }
  const timeline& tl() const { return timeline_; }
  cache_model& cache() { return cache_; }

  /// The timeline charges currently land on: the device's own by default, a
  /// stream's while a stream scope is active (see sim/stream.hpp).
  timeline& active_tl() { return *clock_; }

  /// Redirects charges to `t` (nullptr restores the default timeline).
  /// Returns the previous target so scopes can nest.
  timeline* set_clock_target(timeline* t) {
    timeline* prev = clock_;
    clock_ = t != nullptr ? t : &timeline_;
    return prev;
  }

  // --- memory charging (storage itself is owned by device_buffer) ---------
  void charge_alloc(std::uint64_t bytes, std::string_view name);
  void charge_free(std::uint64_t bytes) noexcept;
  void charge_h2d(std::uint64_t bytes, std::string_view name);
  void charge_d2h(std::uint64_t bytes, std::string_view name);

  /// The host<->device link is one shared resource modeled as a busy-
  /// interval calendar: a transfer becomes ready at its stream's clock and
  /// occupies the earliest gap that fits, so copies from different streams
  /// serialize while compute overlaps them.  Returns the scheduled
  /// completion time.
  double reserve_link(double ready_us, double cost_us);

  /// Rewinds the default timeline AND the link calendar.  Use this (not
  /// tl().reset()) when re-zeroing a device between measurements.
  void reset_clock() {
    timeline_.reset();
    link_busy_.clear();
  }

  std::uint64_t bytes_live() const { return bytes_live_; }
  std::uint64_t bytes_allocated_total() const { return bytes_alloc_total_; }

  // --- device memory arena ---------------------------------------------------
  // Simulated device memory comes from a per-device bump arena rather than
  // the host heap: identical allocation sequences then land at identical
  // addresses, which makes the cache model's conflict behaviour — and hence
  // every simulated time — reproducible run to run.  The arena rewinds once
  // every allocation has been released (device memory is drained), keeping
  // its chunks for reuse.

  /// Returns device-arena storage; stable until released.  Alignment is
  /// fixed at 256 bytes (typical device allocation granularity).
  void* arena_allocate(std::size_t bytes);

  /// Releases one arena allocation.  When the last live allocation goes,
  /// the arena rewinds to its origin.
  void arena_release() noexcept;

  std::size_t arena_chunks() const { return arena_.chunks.size(); }

  /// Caps the arena's outstanding bytes at `bytes` (0 = unlimited, the
  /// default).  Past the cap arena_allocate throws std::bad_alloc — the
  /// exhaustion signal real device allocators emit — which lets tests and
  /// admission control exercise the pool's trim-and-retry path on a device
  /// whose simulated memory is otherwise a growable host vector.
  void set_arena_limit(std::size_t bytes) { arena_.limit = bytes; }
  std::size_t arena_limit() const { return arena_.limit; }
  /// Outstanding (live + rounding) arena bytes counted against the limit.
  std::size_t arena_used() const { return arena_.used; }

  // --- access tracking ------------------------------------------------------
  bool launch_active() const { return tally_active_; }

  /// Classifies one memory access during an active launch; no-op otherwise.
  void track(const void* addr, std::size_t bytes) {
    if (!tally_active_) {
      return;
    }
    if (cache_.access(reinterpret_cast<std::uintptr_t>(addr))) {
      tally_.cache_bytes += bytes;
    } else {
      tally_.dram_bytes += static_cast<std::uint64_t>(cache_.line_bytes());
    }
  }

  /// Adds explicitly counted flops to the active launch.
  void add_flops(std::uint64_t n) {
    if (tally_active_) {
      tally_.flops += n;
    }
  }

  /// Counts one atomic read-modify-write in the active launch.
  void count_atomic() {
    if (tally_active_) {
      ++tally_.atomics;
    }
  }

  // --- launch bookkeeping (used by launch.hpp) ------------------------------
  /// Starts accumulating a fresh tally.  Launches do not nest.
  void begin_launch();

  /// Finishes the launch: records indices, scheduled blocks/chunks and the
  /// flop hint, charges kernel_cost_us, and returns the final tally.
  work_tally end_launch(std::string_view name, const launch_flavor& flavor,
                        std::uint64_t indices, double flops_per_index,
                        std::uint64_t blocks);

  /// Abandons an in-flight launch without charging time (exception unwind).
  void abort_launch() noexcept { tally_active_ = false; }

  /// The tally of the last completed launch (for tests and traces).
  const work_tally& last_tally() const { return last_tally_; }

  /// Lane-fiber pool reused across cooperative launches; grows on demand.
  fiber::fiber& lane_fiber(std::size_t lane);

private:
  device_model model_;
  timeline timeline_;
  cache_model cache_;

  timeline* clock_ = &timeline_;
  std::vector<std::pair<double, double>> link_busy_; ///< sorted [start, end)
  bool tally_active_ = false;
  work_tally tally_;
  work_tally last_tally_;

  std::uint64_t bytes_live_ = 0;
  std::uint64_t bytes_alloc_total_ = 0;

  struct arena_state {
    std::vector<aligned_buffer<std::byte>> chunks;
    std::size_t current = 0; ///< chunk being bumped
    std::size_t offset = 0;  ///< within the current chunk
    std::size_t live = 0;    ///< outstanding allocations
    std::size_t limit = 0;   ///< exhaustion cap in bytes (0 = unlimited)
    std::size_t used = 0;    ///< rounded bytes outstanding against `limit`
  };
  arena_state arena_;

  std::vector<std::unique_ptr<fiber::fiber>> fibers_;
};

/// Process-wide registry: one lazily constructed device per built-in model
/// name ("rome64", "mi100", "a100", "max1550").
device& get_device(std::string_view model_name);

/// Additional instances of one model for multi-device work (paper Sec. VII
/// future work: "heterogeneous multi-device nodes").  Index 0 is the same
/// instance get_device returns; higher indices are peers ("a100#1", ...).
device& get_device_instance(std::string_view model_name, int index);

} // namespace jaccx::sim
