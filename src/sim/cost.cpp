#include "sim/work_tally.hpp"

#include <algorithm>

namespace jaccx::sim {

double kernel_cost_us(const device_model& m, const work_tally& t,
                      const launch_flavor& f) {
  double us = m.launch_overhead_us;
  if (f.via_jacc) {
    us += m.jacc_dispatch_us;
  }

  us += static_cast<double>(t.indices) * m.per_index_overhead_ns /
        (1000.0 * static_cast<double>(m.parallel_units));
  us += static_cast<double>(t.blocks) * m.per_block_overhead_ns /
        (1000.0 * static_cast<double>(m.parallel_units));
  us += static_cast<double>(t.atomics) * m.atomic_overhead_ns /
        (1000.0 * static_cast<double>(m.parallel_units));

  double bw_scale = 1.0;
  if (f.is_reduce) {
    bw_scale *= m.reduce_efficiency;
    if (f.via_jacc) {
      bw_scale *= m.jacc_reduce_derate;
    }
  }

  // GB/s == bytes/microsecond * 1e-3, so bytes / (gbps * 1e3) gives us.
  const double mem_us =
      static_cast<double>(t.dram_bytes) / (m.dram_bw_gbps * bw_scale * 1e3) +
      static_cast<double>(t.cache_bytes) / (m.cache_bw_gbps * bw_scale * 1e3);
  const double flop_us =
      static_cast<double>(t.flops) / (m.flops_gflops * 1e3);

  us += std::max(mem_us, flop_us);
  return us;
}

double transfer_cost_us(const device_model& m, std::uint64_t bytes) {
  if (m.kind == device_kind::cpu) {
    return 0.0; // host memory is device memory
  }
  return m.xfer_latency_us + static_cast<double>(bytes) / (m.xfer_bw_gbps * 1e3);
}

} // namespace jaccx::sim
