#include "sim/device.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "fiber/fiber.hpp"

namespace jaccx::sim {

device::device(device_model model)
    : model_(std::move(model)),
      cache_(model_.cache_bytes, model_.cache_line_bytes, model_.cache_assoc) {
  timeline_.set_label(model_.name);
}

device::~device() = default;

void device::charge_alloc(std::uint64_t bytes, std::string_view name) {
  bytes_live_ += bytes;
  bytes_alloc_total_ += bytes;
  work_tally t;
  t.dram_bytes = bytes;
  clock_->record("alloc " + std::string(name), event_kind::alloc,
                 model_.alloc_overhead_us, t);
}

void device::charge_free(std::uint64_t bytes) noexcept {
  bytes_live_ -= bytes < bytes_live_ ? bytes : bytes_live_;
}

double device::reserve_link(double ready_us, double cost_us) {
  // Earliest-gap scheduling over the sorted busy calendar.
  double start = ready_us;
  std::size_t at = 0;
  for (; at < link_busy_.size(); ++at) {
    const auto& [s, e] = link_busy_[at];
    if (start + cost_us <= s) {
      break; // fits in the gap before this interval
    }
    if (start < e) {
      start = e; // pushed past this interval
    }
  }
  link_busy_.insert(link_busy_.begin() + static_cast<std::ptrdiff_t>(at),
                    {start, start + cost_us});
  return start + cost_us;
}

namespace {

/// Shared-link transfer: ready at the issuing clock, scheduled into the
/// link calendar; the event on the issuing clock covers any wait plus the
/// transfer itself.
double charge_transfer(device& dev, timeline& clock, const device_model& m,
                       std::uint64_t bytes, std::string name,
                       event_kind kind) {
  const double cost = transfer_cost_us(m, bytes);
  const double now = clock.now_us();
  const double done =
      m.kind == device_kind::cpu ? now : dev.reserve_link(now, cost);
  work_tally t;
  t.dram_bytes = bytes;
  clock.record(std::move(name), kind, done - now, t);
  return done;
}

} // namespace

void device::charge_h2d(std::uint64_t bytes, std::string_view name) {
  charge_transfer(*this, *clock_, model_, bytes, "h2d " + std::string(name),
                  event_kind::transfer_h2d);
}

void device::charge_d2h(std::uint64_t bytes, std::string_view name) {
  charge_transfer(*this, *clock_, model_, bytes, "d2h " + std::string(name),
                  event_kind::transfer_d2h);
}

void device::begin_launch() {
  if (tally_active_) {
    throw_usage_error("nested launches on one simulated device");
  }
  tally_ = work_tally{};
  tally_active_ = true;
}

work_tally device::end_launch(std::string_view name,
                              const launch_flavor& flavor,
                              std::uint64_t indices, double flops_per_index,
                              std::uint64_t blocks) {
  JACCX_ASSERT(tally_active_);
  tally_active_ = false;
  tally_.indices = indices;
  tally_.blocks = blocks;
  tally_.flops += static_cast<std::uint64_t>(
      flops_per_index * static_cast<double>(indices));
  const double us = kernel_cost_us(model_, tally_, flavor);
  clock_->record(std::string(name), event_kind::kernel, us, tally_);
  last_tally_ = tally_;
  return tally_;
}

namespace {
constexpr std::size_t arena_align = 256;
constexpr std::size_t arena_default_chunk = std::size_t{256} << 20;

std::size_t round_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}
} // namespace

void* device::arena_allocate(std::size_t bytes) {
  const std::size_t need = round_up(bytes > 0 ? bytes : 1, arena_align);
  if (arena_.limit != 0 && arena_.used + need > arena_.limit) {
    // Bump arenas reclaim only on full rewind, so `used` is monotone while
    // anything is live — exactly the exhaustion shape a caching pool must
    // handle by releasing its parked blocks and retrying.
    throw std::bad_alloc();
  }
  arena_.used += need;
  while (true) {
    if (arena_.current < arena_.chunks.size()) {
      auto& chunk = arena_.chunks[arena_.current];
      const std::size_t at = round_up(arena_.offset, arena_align);
      if (at + need <= chunk.size()) {
        arena_.offset = at + need;
        ++arena_.live;
        return chunk.data() + at;
      }
      ++arena_.current;
      arena_.offset = 0;
      continue;
    }
    arena_.chunks.emplace_back(std::max(need, arena_default_chunk),
                               arena_align);
    arena_.current = arena_.chunks.size() - 1;
    arena_.offset = 0;
  }
}

void device::arena_release() noexcept {
  JACCX_ASSERT(arena_.live > 0);
  if (--arena_.live == 0) {
    arena_.current = 0;
    arena_.offset = 0;
    arena_.used = 0;
  }
}

fiber::fiber& device::lane_fiber(std::size_t lane) {
  while (fibers_.size() <= lane) {
    fibers_.push_back(std::make_unique<fiber::fiber>());
  }
  return *fibers_[lane];
}

namespace {

device& registry_lookup(std::string_view key, std::string_view model_name) {
  static std::mutex mutex;
  static std::map<std::string, std::unique_ptr<device>, std::less<>> devices;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = devices.find(key);
  if (it == devices.end()) {
    auto dev = std::make_unique<device>(builtin_model(model_name));
    it = devices.emplace(std::string(key), std::move(dev)).first;
  }
  return *it->second;
}

} // namespace

device& get_device(std::string_view model_name) {
  return registry_lookup(model_name, model_name);
}

device& get_device_instance(std::string_view model_name, int index) {
  if (index < 0) {
    throw_usage_error("device instance index must be non-negative");
  }
  if (index == 0) {
    return get_device(model_name);
  }
  const std::string key =
      std::string(model_name) + "#" + std::to_string(index);
  return registry_lookup(key, model_name);
}

} // namespace jaccx::sim
