#include "sim/cache_model.hpp"

#include <bit>

namespace jaccx::sim {

cache_model::cache_model(std::size_t capacity_bytes, int line_bytes,
                         int associativity)
    : line_bytes_(line_bytes), assoc_(associativity) {
  JACCX_ASSERT(line_bytes > 0 &&
               std::has_single_bit(static_cast<unsigned>(line_bytes)));
  JACCX_ASSERT(associativity > 0);
  line_shift_ = std::countr_zero(static_cast<unsigned>(line_bytes));
  const std::size_t lines = capacity_bytes / static_cast<std::size_t>(line_bytes);
  num_sets_ = lines / static_cast<std::size_t>(assoc_);
  if (num_sets_ == 0) {
    num_sets_ = 1;
  }
  // Power-of-two set count lets the index be a mask.
  num_sets_ = std::bit_floor(num_sets_);
  ways_.assign(num_sets_ * static_cast<std::size_t>(assoc_), way{});
}

std::size_t cache_model::capacity_bytes() const {
  return num_sets_ * static_cast<std::size_t>(assoc_) *
         static_cast<std::size_t>(line_bytes_);
}

bool cache_model::access(std::uintptr_t addr) {
  const std::uintptr_t line = addr >> line_shift_;
  // XOR-folded set index, as real last-level caches hash addresses: plain
  // modulo mapping makes power-of-two-strided streams (e.g. the 2 MiB
  // planes of an LBM lattice) alias into one set and thrash it.
  const std::uintptr_t folded = line ^ (line >> 13) ^ (line >> 27);
  const std::size_t set = static_cast<std::size_t>(folded) & (num_sets_ - 1);
  way* base = ways_.data() + set * static_cast<std::size_t>(assoc_);
  ++clock_;

  way* victim = base;
  for (int w = 0; w < assoc_; ++w) {
    way& cand = base[w];
    if (cand.valid && cand.tag == line) {
      cand.last_use = clock_;
      ++stats_.hits;
      return true;
    }
    if (!cand.valid) {
      victim = &cand; // prefer an invalid way
    } else if (victim->valid && cand.last_use < victim->last_use) {
      victim = &cand;
    }
  }

  victim->tag = line;
  victim->valid = true;
  victim->last_use = clock_;
  ++stats_.misses;
  return false;
}

void cache_model::reset() {
  for (auto& w : ways_) {
    w = way{};
  }
  clock_ = 0;
  stats_ = stats{};
}

} // namespace jaccx::sim
