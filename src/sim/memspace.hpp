// Simulated device memory: owning buffers, tracked views, and the access
// proxy that classifies every read and write through the cache model.
//
// This is the layer jacc::array sits on for GPU back ends, and the layer the
// native vendor-style APIs (cudasim/hipsim/onesim) expose directly, mirroring
// CuArray / ROCArray / oneArray in the paper.
#pragma once

#include <cstring>
#include <type_traits>

#include "sim/device.hpp"
#include "support/aligned_buffer.hpp"
#include "support/span2d.hpp"

namespace jaccx::sim {

/// Proxy returned by tracked views.  Converting to T counts a read; the
/// assignment operators count a write (compound assignments count both, as
/// the hardware would).  Restricted to arithmetic T, which is all simulated
/// kernels use.
template <class T>
class device_ref {
  static_assert(std::is_arithmetic_v<T>);

public:
  device_ref(T* p, device* dev) : p_(p), dev_(dev) {}

  operator T() const {
    dev_->track(p_, sizeof(T));
    return *p_;
  }

  T operator=(T v) const {
    dev_->track(p_, sizeof(T));
    *p_ = v;
    return v;
  }

  T operator=(const device_ref& other) const { return *this = static_cast<T>(other); }

  T operator+=(T v) const { return *this = static_cast<T>(*this) + v; }
  T operator-=(T v) const { return *this = static_cast<T>(*this) - v; }
  T operator*=(T v) const { return *this = static_cast<T>(*this) * v; }
  T operator/=(T v) const { return *this = static_cast<T>(*this) / v; }

private:
  T* p_;
  device* dev_;
};

/// Tracked 1D view of device memory (0-based indexing).
template <class T>
class device_span {
public:
  device_span() = default;
  device_span(T* data, index_t size, device* dev)
      : data_(data), size_(size), dev_(dev) {}

  device_ref<T> operator[](index_t i) const {
    JACCX_ASSERT(i >= 0 && i < size_);
    return device_ref<T>(data_ + i, dev_);
  }

  /// Untracked escape hatch for host-side verification in tests.
  T raw(index_t i) const {
    JACCX_ASSERT(i >= 0 && i < size_);
    return data_[i];
  }

  T* data() const { return data_; }
  index_t size() const { return size_; }
  device* owner() const { return dev_; }

private:
  T* data_ = nullptr;
  index_t size_ = 0;
  device* dev_ = nullptr;
};

/// Tracked column-major 2D view (0-based (i, j), i fastest) matching
/// jaccx::span2d's layout.
template <class T>
class device_span2d {
public:
  device_span2d() = default;
  device_span2d(T* data, index_t rows, index_t cols, device* dev)
      : data_(data), rows_(rows), cols_(cols), dev_(dev) {}

  device_ref<T> operator()(index_t i, index_t j) const {
    JACCX_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return device_ref<T>(data_ + i + j * rows_, dev_);
  }

  T raw(index_t i, index_t j) const {
    JACCX_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * rows_];
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }
  T* data() const { return data_; }
  device* owner() const { return dev_; }

private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  device* dev_ = nullptr;
};

/// Owning simulated-device allocation.  Allocation, host->device and
/// device->host copies charge simulated time on the owning device; the
/// storage itself is host memory so kernels can execute functionally.
template <class T>
class device_buffer {
public:
  device_buffer() = default;

  device_buffer(device& dev, index_t count, std::string_view name = "buffer")
      : dev_(&dev),
        data_(static_cast<T*>(
            dev.arena_allocate(static_cast<std::size_t>(count) * sizeof(T)))),
        count_(count) {
    JACCX_ASSERT(count >= 0);
    dev_->charge_alloc(bytes(), name);
  }

  device_buffer(const device_buffer&) = delete;
  device_buffer& operator=(const device_buffer&) = delete;
  device_buffer(device_buffer&& other) noexcept
      : dev_(std::exchange(other.dev_, nullptr)),
        data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)) {}
  device_buffer& operator=(device_buffer&& other) noexcept {
    if (this != &other) {
      release();
      dev_ = std::exchange(other.dev_, nullptr);
      data_ = std::exchange(other.data_, nullptr);
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }

  ~device_buffer() { release(); }

  /// Copies count() elements from host memory, charging an H2D transfer.
  void copy_from_host(const T* src, std::string_view name = "h2d") {
    JACCX_ASSERT(dev_ != nullptr);
    std::memcpy(data_, src, bytes());
    dev_->charge_h2d(bytes(), name);
  }

  /// Copies count() elements to host memory, charging a D2H transfer.
  void copy_to_host(T* dst, std::string_view name = "d2h") const {
    JACCX_ASSERT(dev_ != nullptr);
    std::memcpy(dst, data_, bytes());
    dev_->charge_d2h(bytes(), name);
  }

  /// Sets every element to `value` on the host side without charging time;
  /// use a fill kernel when the cost matters (CUDA.zeros does real work).
  void fill_untracked(T value) {
    for (index_t i = 0; i < count_; ++i) {
      data_[i] = value;
    }
  }

  device_span<T> span() { return {data_, count_, dev_}; }
  device_span2d<T> span2d(index_t rows, index_t cols) {
    JACCX_ASSERT(rows * cols == count_);
    return {data_, rows, cols, dev_};
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  index_t size() const { return count_; }
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(count_) * sizeof(T);
  }
  bool empty() const { return count_ == 0; }
  device* owner() const { return dev_; }

private:
  void release() noexcept {
    if (dev_ != nullptr) {
      dev_->charge_free(bytes());
      dev_->arena_release();
    }
    dev_ = nullptr;
    data_ = nullptr;
    count_ = 0;
  }

  device* dev_ = nullptr;
  T* data_ = nullptr; ///< arena storage owned via dev_
  index_t count_ = 0;
};

} // namespace jaccx::sim
