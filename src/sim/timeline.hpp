// Simulated clock and event log for one device.
//
// Every charged operation (kernel launch, transfer, allocation) advances the
// clock and appends an event.  Benchmarks read clock deltas; the event log
// can be exported as a Chrome-trace JSON for inspection with about:tracing
// or Perfetto.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/work_tally.hpp"

namespace jaccx::sim {

enum class event_kind { kernel, transfer_h2d, transfer_d2h, alloc };

const char* to_string(event_kind k);

struct event {
  std::string name;
  event_kind kind = event_kind::kernel;
  double start_us = 0.0;
  double duration_us = 0.0;
  work_tally tally; // zero for transfers/allocs except dram_bytes=size
};

class timeline {
public:
  /// Current simulated time in microseconds.
  double now_us() const { return now_us_; }

  /// Advances the clock by `duration_us` and records the event.
  void record(std::string name, event_kind kind, double duration_us,
              const work_tally& tally = {});

  const std::vector<event>& events() const { return events_; }
  std::size_t event_count() const { return events_.size(); }

  /// Clears events and rewinds the clock to zero.
  void reset();

  /// Stops/starts appending to the event log (the clock always advances).
  /// Benchmarks disable logging so multi-thousand-launch sweeps stay lean.
  void set_logging(bool enabled) { logging_ = enabled; }
  bool logging() const { return logging_; }

  /// Device label used by the profiler's unified trace ("a100",
  /// "a100.stream", ...).  Empty timelines stay anonymous and are teed as
  /// "sim".
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// Serializes the event log in Chrome trace-event JSON format.
  std::string to_chrome_trace() const;

private:
  double now_us_ = 0.0;
  bool logging_ = true;
  std::string label_;
  std::vector<event> events_;
};

} // namespace jaccx::sim
