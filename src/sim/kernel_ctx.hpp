// Per-lane kernel execution context: the CUDA-builtin equivalents
// (threadIdx/blockIdx/blockDim/gridDim), dynamic shared memory, barriers and
// flop hints.  Indices are 0-based as in CUDA; the Julia-facing front ends
// add 1 where the paper's listings do.
#pragma once

#include <cstddef>

#include "fiber/fiber.hpp"
#include "sim/device.hpp"
#include "sim/dim3.hpp"

namespace jaccx::sim {

class kernel_ctx {
public:
  dim3 thread_idx; ///< 0-based position within the block
  dim3 block_idx;  ///< 0-based position within the grid
  dim3 block_dim;
  dim3 grid_dim;

  /// Global linear x index: blockIdx.x * blockDim.x + threadIdx.x.
  std::int64_t global_x() const {
    return block_idx.x * block_dim.x + thread_idx.x;
  }
  std::int64_t global_y() const {
    return block_idx.y * block_dim.y + thread_idx.y;
  }
  std::int64_t global_z() const {
    return block_idx.z * block_dim.z + thread_idx.z;
  }

  /// Dynamic shared memory, typed.  Valid for the current block only; not
  /// zero-initialized (as on real hardware).
  template <class T>
  T* shared_mem() const {
    JACCX_ASSERT(shmem_ != nullptr);
    return reinterpret_cast<T*>(shmem_);
  }

  std::size_t shared_mem_bytes() const { return shmem_bytes_; }

  /// Block-wide barrier.  Only valid inside launch_cooperative; the fast
  /// non-cooperative path cannot honor barrier semantics and throws.
  void sync_threads() {
    if (lane_ == nullptr) {
      throw_usage_error(
          "sync_threads() requires launch_cooperative (fiber lanes)");
    }
    lane_->yield();
  }

  /// Adds explicitly counted flops to the launch tally (optional; most
  /// kernels use the launch-level flops-per-index hint instead).
  void add_flops(std::uint64_t n) const { dev_->add_flops(n); }

  /// Atomic add to device memory.  Functionally safe in the simulator —
  /// lanes execute sequentially — but charged with per-atomic serialization
  /// cost, so algorithms built on hot atomics pay for it (abl_reduction's
  /// third strategy).
  template <class T>
  T atomic_add(T* addr, T value) const {
    dev_->track(addr, sizeof(T));
    dev_->count_atomic();
    const T old = *addr;
    *addr = old + value;
    return old;
  }

  device& dev() const { return *dev_; }

private:
  friend struct kernel_ctx_access;

  std::byte* shmem_ = nullptr;
  std::size_t shmem_bytes_ = 0;
  fiber::fiber* lane_ = nullptr;
  device* dev_ = nullptr;
};

/// Executor-internal initializer; keeps kernel_ctx's mutable innards out of
/// kernel code.
struct kernel_ctx_access {
  static void init(kernel_ctx& c, device* dev, std::byte* shmem,
                   std::size_t shmem_bytes) {
    c.dev_ = dev;
    c.shmem_ = shmem;
    c.shmem_bytes_ = shmem_bytes;
  }
  static void set_lane(kernel_ctx& c, fiber::fiber* lane) { c.lane_ = lane; }
};

} // namespace jaccx::sim
