#include "sim/timeline.hpp"

#include <sstream>

#include "prof/prof.hpp"

namespace jaccx::sim {

const char* to_string(event_kind k) {
  switch (k) {
  case event_kind::kernel: return "kernel";
  case event_kind::transfer_h2d: return "h2d";
  case event_kind::transfer_d2h: return "d2h";
  case event_kind::alloc: return "alloc";
  }
  return "?";
}

void timeline::record(std::string name, event_kind kind, double duration_us,
                      const work_tally& tally) {
  // Tee into the profiler's unified trace, independent of the logging_
  // flag: benchmarks disable logging and reset clocks between samples,
  // which must not lose the events a JACC_PROFILE=trace run asked for.
  // Roofline mode needs the same stream (modeled DRAM/flop tallies at
  // simulated time) to place simulated kernels on their roofs.
  if (jaccx::prof::trace_enabled() || jaccx::prof::roofline_enabled())
      [[unlikely]] {
    jaccx::prof::note_sim_event(label_.empty() ? "sim" : label_, name,
                                to_string(kind), now_us_, duration_us,
                                tally.dram_bytes, tally.cache_bytes,
                                tally.flops, tally.indices);
  }
  if (logging_) {
    events_.push_back(
        event{std::move(name), kind, now_us_, duration_us, tally});
  }
  now_us_ += duration_us;
}

void timeline::reset() {
  now_us_ = 0.0;
  events_.clear();
}

std::string timeline::to_chrome_trace() const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\n  {\"name\": \"" << e.name << "\", \"cat\": \""
       << to_string(e.kind) << "\", \"ph\": \"X\", \"ts\": " << e.start_us
       << ", \"dur\": " << e.duration_us
       << ", \"pid\": 1, \"tid\": 1, \"args\": {\"dram_bytes\": "
       << e.tally.dram_bytes << ", \"cache_bytes\": " << e.tally.cache_bytes
       << ", \"flops\": " << e.tally.flops
       << ", \"indices\": " << e.tally.indices << "}}";
  }
  os << "\n]\n";
  return os.str();
}

} // namespace jaccx::sim
