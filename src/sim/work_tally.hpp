// Work accounting for one simulated kernel launch, and the analytic cost
// function that converts a tally into simulated time.
#pragma once

#include <cstdint>

#include "sim/device_model.hpp"

namespace jaccx::sim {

/// What a kernel actually did, measured during functional execution.
struct work_tally {
  std::uint64_t dram_bytes = 0;  ///< line fills charged at dram_bw
  std::uint64_t cache_bytes = 0; ///< modeled-cache hits charged at cache_bw
  std::uint64_t flops = 0;       ///< from the launch's flops-per-index hint
  std::uint64_t indices = 0;     ///< loop iterations / GPU threads executed
  std::uint64_t blocks = 0;      ///< GPU blocks / CPU chunks scheduled
  std::uint64_t atomics = 0;     ///< atomic read-modify-write operations

  work_tally& operator+=(const work_tally& o) {
    dram_bytes += o.dram_bytes;
    cache_bytes += o.cache_bytes;
    flops += o.flops;
    indices += o.indices;
    blocks += o.blocks;
    atomics += o.atomics;
    return *this;
  }
};

/// Knobs describing how the launch was issued; they select which overhead
/// terms apply.
struct launch_flavor {
  bool via_jacc = false; ///< went through the portable front end
  bool is_reduce = false;///< reduction-type kernel (two-kernel scheme)
};

/// Simulated kernel duration in microseconds:
///
///   launch_overhead (+ jacc dispatch)                     fixed
/// + indices * per_index_overhead / parallel_units          runtime scheduling
/// + max(memory time, compute time)                        roofline
///
/// where memory time charges DRAM fills and cache hits at their respective
/// bandwidths (derated for reductions), and compute time charges the flop
/// hint at the peak rate.
double kernel_cost_us(const device_model& m, const work_tally& t,
                      const launch_flavor& f);

/// Simulated host<->device transfer duration in microseconds.
double transfer_cost_us(const device_model& m, std::uint64_t bytes);

} // namespace jaccx::sim
