// Value model for the TOML subset used by JACC-CXX preferences files.
//
// Julia's JACC selects its back end through Preferences.jl, which persists
// the choice in LocalPreferences.toml before precompilation (paper Sec. III).
// JACC-CXX reproduces that configuration-time mechanism, so it ships a small
// TOML reader.  The subset covers what preferences files need: tables
// (including dotted headers), key/value pairs with basic strings, integers,
// floats, booleans, and homogeneous arrays.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "support/error.hpp"

namespace jaccx::toml {

class value;

/// A TOML table: ordered not required, lookups by exact key.
using table = std::map<std::string, value, std::less<>>;
using array = std::vector<value>;

/// One TOML value.  Tables are held by shared_ptr so `value` stays regular
/// despite the recursive type.
class value {
public:
  using table_ptr = std::shared_ptr<table>;
  using variant_t =
      std::variant<std::monostate, bool, std::int64_t, double, std::string,
                   array, table_ptr>;

  value() = default;
  value(bool b) : v_(b) {}
  value(std::int64_t i) : v_(i) {}
  value(double d) : v_(d) {}
  value(std::string s) : v_(std::move(s)) {}
  value(const char* s) : v_(std::string(s)) {}
  value(array a) : v_(std::move(a)) {}
  value(table_ptr t) : v_(std::move(t)) {}

  bool is_none() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_float() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<array>(v_); }
  bool is_table() const { return std::holds_alternative<table_ptr>(v_); }

  bool as_bool() const { return get<bool>("bool"); }
  std::int64_t as_int() const { return get<std::int64_t>("integer"); }
  /// Floats accept integer literals too (TOML spec allows 1 vs 1.0 to be
  /// distinct, but preferences readers want the lenient behaviour).
  double as_float() const {
    if (is_int()) {
      return static_cast<double>(std::get<std::int64_t>(v_));
    }
    return get<double>("float");
  }
  const std::string& as_string() const { return get<std::string>("string"); }
  const array& as_array() const { return get<array>("array"); }
  const table& as_table() const {
    const auto* p = std::get_if<table_ptr>(&v_);
    if (p == nullptr || *p == nullptr) {
      throw_usage_error("toml value is not a table");
    }
    return **p;
  }
  table& as_table() {
    auto* p = std::get_if<table_ptr>(&v_);
    if (p == nullptr || *p == nullptr) {
      throw_usage_error("toml value is not a table");
    }
    return **p;
  }

  const variant_t& raw() const { return v_; }

private:
  template <class T>
  const T& get(const char* what) const {
    const auto* p = std::get_if<T>(&v_);
    if (p == nullptr) {
      throw_usage_error(std::string("toml value is not a ") + what);
    }
    return *p;
  }

  variant_t v_;
};

/// Looks up a dotted path ("Section.key") in `root`; returns nullopt when any
/// component is missing.
std::optional<value> find(const table& root, std::string_view dotted_path);

/// Convenience typed lookups; return nullopt on missing key or wrong type.
std::optional<std::string> find_string(const table& root,
                                       std::string_view dotted_path);
std::optional<std::int64_t> find_int(const table& root,
                                     std::string_view dotted_path);
std::optional<double> find_float(const table& root,
                                 std::string_view dotted_path);
std::optional<bool> find_bool(const table& root, std::string_view dotted_path);

} // namespace jaccx::toml
