#include "toml/writer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace jaccx::toml {
namespace {

bool is_bare_key(const std::string& key) {
  if (key.empty()) {
    return false;
  }
  for (char c : key) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

void emit_key(std::ostringstream& os, const std::string& key) {
  if (is_bare_key(key)) {
    os << key;
    return;
  }
  os << '"';
  for (char c : key) {
    switch (c) {
    case '"': os << "\\\""; break;
    case '\\': os << "\\\\"; break;
    case '\n': os << "\\n"; break;
    case '\t': os << "\\t"; break;
    case '\r': os << "\\r"; break;
    default: os << c;
    }
  }
  os << '"';
}

void emit_scalar(std::ostringstream& os, const value& v) {
  if (v.is_bool()) {
    os << (v.as_bool() ? "true" : "false");
  } else if (v.is_int()) {
    os << v.as_int();
  } else if (v.is_float()) {
    std::ostringstream num;
    num.precision(17);
    num << v.as_float();
    std::string s = num.str();
    // Keep the value a TOML float on re-parse.
    if (s.find('.') == std::string::npos &&
        s.find('e') == std::string::npos &&
        s.find("inf") == std::string::npos &&
        s.find("nan") == std::string::npos) {
      s += ".0";
    }
    os << s;
  } else if (v.is_string()) {
    os << '"';
    for (char c : v.as_string()) {
      switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default: os << c;
      }
    }
    os << '"';
  } else if (v.is_array()) {
    os << '[';
    bool first = true;
    for (const auto& e : v.as_array()) {
      if (!first) {
        os << ", ";
      }
      first = false;
      emit_scalar(os, e);
    }
    os << ']';
  } else {
    throw_usage_error("cannot serialize this toml value as a scalar");
  }
}

void emit_table(std::ostringstream& os, const table& t,
                const std::string& prefix) {
  // Scalars/arrays of this table first...
  for (const auto& [key, v] : t) {
    if (v.is_table()) {
      continue;
    }
    emit_key(os, key);
    os << " = ";
    emit_scalar(os, v);
    os << '\n';
  }
  // ...then subtables with dotted headers.
  for (const auto& [key, v] : t) {
    if (!v.is_table()) {
      continue;
    }
    const std::string full = prefix.empty() ? key : prefix + "." + key;
    os << "\n[" << full << "]\n";
    emit_table(os, v.as_table(), full);
  }
}

} // namespace

std::string serialize(const table& root) {
  std::ostringstream os;
  emit_table(os, root, "");
  return os.str();
}

void write_file(const table& root, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw config_error("cannot write preferences file: " + path);
  }
  out << serialize(root);
  if (!out) {
    throw config_error("failed writing preferences file: " + path);
  }
}

} // namespace jaccx::toml
