// Serializer for the TOML subset: the write side of the Preferences.jl
// mechanism (Preferences.set_preferences! rewrites LocalPreferences.toml).
#pragma once

#include <string>

#include "toml/value.hpp"

namespace jaccx::toml {

/// Serializes `root` as TOML: top-level scalars/arrays first, then one
/// [header] (dotted for nesting) per table, recursively.  The output parses
/// back to an equal table.
std::string serialize(const table& root);

/// Serializes and writes to `path`, replacing the file.  Throws
/// jaccx::config_error when the file cannot be written.
void write_file(const table& root, const std::string& path);

} // namespace jaccx::toml
