// Parser for the TOML subset (see value.hpp for scope).
#pragma once

#include <string_view>

#include "toml/value.hpp"

namespace jaccx::toml {

/// Parses TOML text.  Throws jaccx::config_error with a line number on
/// malformed input.
table parse(std::string_view text);

/// Parses the file at `path`.  Throws jaccx::config_error when the file is
/// unreadable or malformed.
table parse_file(const std::string& path);

} // namespace jaccx::toml
