#include "toml/parser.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace jaccx::toml {
namespace {

bool is_bare_key_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '-';
}

class parser {
public:
  explicit parser(std::string_view text) : text_(text) {}

  table run() {
    table root;
    table* current = &root;
    while (!at_end()) {
      skip_ws_and_comments_to_content();
      if (at_end()) {
        break;
      }
      if (peek() == '[') {
        current = parse_table_header(root);
      } else {
        parse_key_value(*current);
      }
      expect_line_end();
    }
    return root;
  }

private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw config_error("toml parse error at line " + std::to_string(line_) +
                       ": " + msg);
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
    }
    return c;
  }

  void skip_inline_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t')) {
      ++pos_;
    }
  }

  void skip_comment() {
    while (!at_end() && peek() != '\n') {
      ++pos_;
    }
  }

  /// Skips whitespace, newlines and comments until the next content char.
  void skip_ws_and_comments_to_content() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '\n') {
        advance();
      } else if (c == '#') {
        skip_comment();
      } else {
        break;
      }
    }
  }

  /// After a key/value or header: only whitespace/comment may remain on the
  /// line.
  void expect_line_end() {
    skip_inline_ws();
    if (at_end()) {
      return;
    }
    if (peek() == '#') {
      skip_comment();
    }
    if (at_end()) {
      return;
    }
    if (peek() == '\r') {
      ++pos_;
    }
    if (at_end()) {
      return;
    }
    if (peek() != '\n') {
      fail("unexpected trailing characters");
    }
    advance();
  }

  std::string parse_key() {
    skip_inline_ws();
    if (at_end()) {
      fail("expected key");
    }
    if (peek() == '"') {
      return parse_basic_string();
    }
    std::string key;
    while (!at_end() && is_bare_key_char(peek())) {
      key.push_back(advance());
    }
    if (key.empty()) {
      fail("expected key");
    }
    return key;
  }

  std::vector<std::string> parse_dotted_key() {
    std::vector<std::string> parts;
    parts.push_back(parse_key());
    skip_inline_ws();
    while (!at_end() && peek() == '.') {
      advance();
      parts.push_back(parse_key());
      skip_inline_ws();
    }
    return parts;
  }

  table* parse_table_header(table& root) {
    advance(); // '['
    if (!at_end() && peek() == '[') {
      fail("arrays of tables ([[...]]) are outside the supported subset");
    }
    const auto parts = parse_dotted_key();
    skip_inline_ws();
    if (at_end() || peek() != ']') {
      fail("expected ']' to close table header");
    }
    advance();
    table* t = &root;
    for (const auto& part : parts) {
      auto [it, inserted] =
          t->try_emplace(part, value(std::make_shared<table>()));
      if (!inserted && !it->second.is_table()) {
        fail("table header '" + part + "' collides with a non-table key");
      }
      t = &it->second.as_table();
    }
    return t;
  }

  void parse_key_value(table& t) {
    const auto parts = parse_dotted_key();
    skip_inline_ws();
    if (at_end() || peek() != '=') {
      fail("expected '=' after key");
    }
    advance();
    skip_inline_ws();
    value v = parse_value();

    table* target = &t;
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
      auto [it, inserted] =
          target->try_emplace(parts[i], value(std::make_shared<table>()));
      if (!inserted && !it->second.is_table()) {
        fail("dotted key '" + parts[i] + "' collides with a non-table key");
      }
      target = &it->second.as_table();
    }
    auto [it, inserted] = target->try_emplace(parts.back(), std::move(v));
    if (!inserted) {
      fail("duplicate key '" + parts.back() + "'");
    }
  }

  std::string parse_basic_string() {
    advance(); // opening quote
    std::string out;
    while (true) {
      if (at_end()) {
        fail("unterminated string");
      }
      const char c = advance();
      if (c == '"') {
        break;
      }
      if (c == '\n') {
        fail("newline inside basic string");
      }
      if (c == '\\') {
        if (at_end()) {
          fail("dangling escape");
        }
        const char e = advance();
        switch (e) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        default: fail(std::string("unsupported escape '\\") + e + "'");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  value parse_array() {
    advance(); // '['
    array arr;
    while (true) {
      skip_ws_and_comments_to_content();
      if (at_end()) {
        fail("unterminated array");
      }
      if (peek() == ']') {
        advance();
        break;
      }
      arr.push_back(parse_value());
      skip_ws_and_comments_to_content();
      if (at_end()) {
        fail("unterminated array");
      }
      if (peek() == ',') {
        advance();
      } else if (peek() != ']') {
        fail("expected ',' or ']' in array");
      }
    }
    return value(std::move(arr));
  }

  value parse_value() {
    if (at_end()) {
      fail("expected value");
    }
    const char c = peek();
    if (c == '"') {
      return value(parse_basic_string());
    }
    if (c == '[') {
      return parse_array();
    }
    if (c == 't' || c == 'f') {
      return parse_bool();
    }
    return parse_number();
  }

  value parse_bool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return value(true);
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return value(false);
    }
    fail("expected boolean");
  }

  value parse_number() {
    std::string tok;
    bool is_float = false;
    while (!at_end()) {
      const char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '+' ||
          c == '-') {
        tok.push_back(advance());
      } else if (c == '_') {
        advance(); // TOML digit separator, as in SIZE = 1_000_000
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_float = true;
        tok.push_back(advance());
      } else {
        break;
      }
    }
    if (tok.empty()) {
      fail("expected value");
    }
    if (is_float) {
      char* end = nullptr;
      const double d = std::strtod(tok.c_str(), &end);
      if (end != tok.c_str() + tok.size()) {
        fail("malformed float '" + tok + "'");
      }
      return value(d);
    }
    std::int64_t i = 0;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), i);
    if (ec != std::errc() || ptr != tok.data() + tok.size()) {
      fail("malformed integer '" + tok + "'");
    }
    return value(i);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

} // namespace

table parse(std::string_view text) { return parser(text).run(); }

table parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw config_error("cannot open preferences file: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  return parse(text);
}

std::optional<value> find(const table& root, std::string_view dotted_path) {
  const table* t = &root;
  std::string_view rest = dotted_path;
  while (true) {
    const auto dot = rest.find('.');
    const std::string_view part =
        dot == std::string_view::npos ? rest : rest.substr(0, dot);
    const auto it = t->find(part);
    if (it == t->end()) {
      return std::nullopt;
    }
    if (dot == std::string_view::npos) {
      return it->second;
    }
    if (!it->second.is_table()) {
      return std::nullopt;
    }
    t = &it->second.as_table();
    rest = rest.substr(dot + 1);
  }
}

std::optional<std::string> find_string(const table& root,
                                       std::string_view dotted_path) {
  const auto v = find(root, dotted_path);
  if (!v || !v->is_string()) {
    return std::nullopt;
  }
  return v->as_string();
}

std::optional<std::int64_t> find_int(const table& root,
                                     std::string_view dotted_path) {
  const auto v = find(root, dotted_path);
  if (!v || !v->is_int()) {
    return std::nullopt;
  }
  return v->as_int();
}

std::optional<double> find_float(const table& root,
                                 std::string_view dotted_path) {
  const auto v = find(root, dotted_path);
  if (!v || (!v->is_float() && !v->is_int())) {
    return std::nullopt;
  }
  return v->as_float();
}

std::optional<bool> find_bool(const table& root,
                              std::string_view dotted_path) {
  const auto v = find(root, dotted_path);
  if (!v || !v->is_bool()) {
    return std::nullopt;
  }
  return v->as_bool();
}

} // namespace jaccx::toml
