// BLAS level-1 kernel functions in the paper's style (Fig. 2): free
// functions defined separately from — and in advance of — the parallel_for /
// parallel_reduce call that runs them, taking the loop index first and the
// operation parameters after.
#pragma once

#include "core/array.hpp"

namespace jaccx::blas {

using jacc::index_t;
using darray = jacc::array<double>;
using darray2d = jacc::array2d<double>;

/// x[i] += alpha * y[i]
inline void axpy(index_t i, double alpha, darray& x, const darray& y) {
  x[i] += alpha * static_cast<double>(y[i]);
}

/// Contribution of element i to x . y
inline double dot(index_t i, const darray& x, const darray& y) {
  return static_cast<double>(x[i]) * static_cast<double>(y[i]);
}

/// x[i,j] += alpha * y[i,j]
inline void axpy2d(index_t i, index_t j, double alpha, darray2d& x,
                   const darray2d& y) {
  x(i, j) += alpha * static_cast<double>(y(i, j));
}

/// Contribution of element (i,j) to <x, y>
inline double dot2d(index_t i, index_t j, const darray2d& x,
                    const darray2d& y) {
  return static_cast<double>(x(i, j)) * static_cast<double>(y(i, j));
}

// --- extended level-1 set (beyond the paper's AXPY/DOT) ---------------------

/// x[i] *= alpha
inline void scal(index_t i, double alpha, darray& x) { x[i] *= alpha; }

/// y[i] = x[i]
inline void copy(index_t i, const darray& x, darray& y) {
  y[i] = static_cast<double>(x[i]);
}

/// x[i] <-> y[i]
inline void swap(index_t i, darray& x, darray& y) {
  const double t = x[i];
  x[i] = static_cast<double>(y[i]);
  y[i] = t;
}

/// |x[i]| (asum term)
inline double abs_term(index_t i, const darray& x) {
  const double v = x[i];
  return v < 0 ? -v : v;
}

/// x[i]^2 (nrm2 term)
inline double square_term(index_t i, const darray& x) {
  const double v = x[i];
  return v * v;
}

/// One GEMV row: y[i] = beta*y[i] + alpha * sum_j A(i,j) * x[j].
/// A is column-major; the row walk is strided, which is exactly the access
/// pattern a column-major dense matrix imposes on a row-parallel kernel —
/// the cache model charges it accordingly.
inline void gemv_row(index_t i, double alpha, const darray2d& a,
                     const darray& x, double beta, darray& y,
                     index_t cols) {
  double acc = 0.0;
  for (index_t j = 0; j < cols; ++j) {
    acc += static_cast<double>(a(i, j)) * static_cast<double>(x[j]);
  }
  y[i] = beta * static_cast<double>(y[i]) + alpha * acc;
}

} // namespace jaccx::blas
