// Device-specific CPU comparators.
//
// Two flavours:
//   * threads_* — real Base.Threads-style code on the live thread pool
//     (used by tests and the wall-clock dispatch-overhead benchmark);
//   * rome_*    — the same structure on the simulated Rome cost model, with
//     via_jacc = false.  These are the "device-specific" CPU series of the
//     paper's figures.
#pragma once

#include "sim/launch.hpp"
#include "sim/memspace.hpp"

namespace jaccx::blas {

// --- real execution (wall clock) -------------------------------------------

/// x[i] += alpha * y[i] on the live pool.
void threads_axpy(index_t n, double alpha, double* x, const double* y);

/// x . y on the live pool (per-worker padded partials).
double threads_dot(index_t n, const double* x, const double* y);

/// 2D column-major AXPY, coarse column-wise decomposition.
void threads_axpy2d(index_t rows, index_t cols, double alpha, double* x,
                    const double* y);

/// 2D column-major DOT.
double threads_dot2d(index_t rows, index_t cols, const double* x,
                     const double* y);

// --- simulated Rome (figure series) -----------------------------------------

void rome_axpy(sim::device& dev, index_t n, double alpha,
               sim::device_span<double> x, sim::device_span<double> y);

double rome_dot(sim::device& dev, index_t n, sim::device_span<double> x,
                sim::device_span<double> y);

void rome_axpy2d(sim::device& dev, index_t rows, index_t cols, double alpha,
                 sim::device_span2d<double> x, sim::device_span2d<double> y);

double rome_dot2d(sim::device& dev, index_t rows, index_t cols,
                  sim::device_span2d<double> x, sim::device_span2d<double> y);

} // namespace jaccx::blas
