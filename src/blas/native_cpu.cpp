#include "blas/native_cpu.hpp"

#include <vector>

#include "support/aligned_buffer.hpp"
#include "threadpool/thread_pool.hpp"

namespace jaccx::blas {

void threads_axpy(index_t n, double alpha, double* x, const double* y) {
  pool::default_pool().parallel_for_index(
      n, [&](index_t i) { x[i] += alpha * y[i]; });
}

double threads_dot(index_t n, const double* x, const double* y) {
  auto& p = pool::default_pool();
  struct alignas(cache_line_bytes) slot {
    double v = 0.0;
  };
  std::vector<slot> partials(p.size());
  // Fold each chunk into the worker's slot: under JACC_SCHEDULE=dynamic a
  // worker handles several chunks per region.
  p.parallel_chunks(n, [&](unsigned worker, pool::range chunk) {
    double acc = partials[worker].v;
    for (index_t i = chunk.begin; i < chunk.end; ++i) {
      acc += x[i] * y[i];
    }
    partials[worker].v = acc;
  });
  double out = 0.0;
  for (const auto& s : partials) {
    out += s.v;
  }
  return out;
}

void threads_axpy2d(index_t rows, index_t cols, double alpha, double* x,
                    const double* y) {
  pool::default_pool().parallel_for_index(cols, [&](index_t j) {
    double* xc = x + j * rows;
    const double* yc = y + j * rows;
    for (index_t i = 0; i < rows; ++i) {
      xc[i] += alpha * yc[i];
    }
  });
}

double threads_dot2d(index_t rows, index_t cols, const double* x,
                     const double* y) {
  auto& p = pool::default_pool();
  struct alignas(cache_line_bytes) slot {
    double v = 0.0;
  };
  std::vector<slot> partials(p.size());
  p.parallel_chunks(cols, [&](unsigned worker, pool::range chunk) {
    double acc = partials[worker].v;
    for (index_t j = chunk.begin; j < chunk.end; ++j) {
      const double* xc = x + j * rows;
      const double* yc = y + j * rows;
      for (index_t i = 0; i < rows; ++i) {
        acc += xc[i] * yc[i];
      }
    }
    partials[worker].v = acc;
  });
  double out = 0.0;
  for (const auto& s : partials) {
    out += s.v;
  }
  return out;
}

void rome_axpy(sim::device& dev, index_t n, double alpha,
               sim::device_span<double> x, sim::device_span<double> y) {
  sim::cpu_region_config cfg;
  cfg.name = "threads.axpy";
  cfg.flops_per_index = 2.0;
  sim::cpu_parallel_range(dev, cfg, n, [&](index_t i) {
    x[i] += alpha * static_cast<double>(y[i]);
  });
}

double rome_dot(sim::device& dev, index_t n, sim::device_span<double> x,
                sim::device_span<double> y) {
  sim::cpu_region_config cfg;
  cfg.name = "threads.dot";
  cfg.flops_per_index = 2.0;
  cfg.flavor.is_reduce = true;
  double acc = 0.0;
  sim::cpu_parallel_range(dev, cfg, n, [&](index_t i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  });
  return acc;
}

void rome_axpy2d(sim::device& dev, index_t rows, index_t cols, double alpha,
                 sim::device_span2d<double> x, sim::device_span2d<double> y) {
  sim::cpu_region_config cfg;
  cfg.name = "threads.axpy2d";
  cfg.flops_per_index = 2.0;
  sim::cpu_parallel_range_2d(dev, cfg, rows, cols, [&](index_t i, index_t j) {
    x(i, j) += alpha * static_cast<double>(y(i, j));
  });
}

double rome_dot2d(sim::device& dev, index_t rows, index_t cols,
                  sim::device_span2d<double> x, sim::device_span2d<double> y) {
  sim::cpu_region_config cfg;
  cfg.name = "threads.dot2d";
  cfg.flops_per_index = 2.0;
  cfg.flavor.is_reduce = true;
  double acc = 0.0;
  sim::cpu_parallel_range_2d(dev, cfg, rows, cols, [&](index_t i, index_t j) {
    acc += static_cast<double>(x(i, j)) * static_cast<double>(y(i, j));
  });
  return acc;
}

} // namespace jaccx::blas
