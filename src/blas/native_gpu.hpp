// Device-specific GPU comparators, written once against the vendor policy
// (backends/vendor_api.hpp) and instantiated for cuda/hip/oneapi — the C++
// rendering of the paper's hand-written CUDA.jl code (Fig. 3):
//
//   * AXPY: one bounds-checked fine-grained kernel;
//   * DOT: the exact two-kernel scheme of Fig. 3 — 512-thread blocks with
//     512 doubles of dynamic shared memory, a barrier tree reduction to one
//     partial per block, a second 512-thread single-block kernel that
//     grid-strides over the partials, and a scalar device->host read.  Both
//     partials buffers come from <vendor>.zeros, which is a real fill kernel
//     exactly as CUDA.zeros is.
//   * 2D variants use 16x16 blocks (paper Fig. 6's numThreads = 16).
#pragma once

#include "backends/vendor_api.hpp"

namespace jaccx::blas {

inline constexpr std::int64_t native_dot_block = 512; // Fig. 3's block size

template <class Api>
void native_gpu_axpy(index_t n, double alpha, sim::device_span<double> x,
                     sim::device_span<double> y) {
  const std::int64_t maxt = Api::max_threads();
  const std::int64_t threads = n < maxt ? n : maxt;
  Api::launch1d(
      sim::ceil_div(n, threads), threads,
      [=](sim::kernel_ctx& ctx) {
        const index_t i = ctx.global_x();
        if (i < n) {
          x[i] += alpha * static_cast<double>(y[i]);
        }
      },
      "native.axpy", 2.0);
}

template <class Api>
double native_gpu_dot(index_t n, sim::device_span<double> x,
                      sim::device_span<double> y) {
  const std::int64_t blocks = sim::ceil_div(n, native_dot_block);
  auto ret = Api::template zeros<double>(blocks);   // CUDA.zeros(Float64, blocks)
  auto rret = Api::template zeros<double>(1);       // CUDA.zeros(Float64, 1)
  auto rs = ret.span();
  auto rrs = rret.span();

  Api::launch_shared(
      blocks, native_dot_block, native_dot_block * sizeof(double),
      [=](sim::kernel_ctx& ctx) {
        double* shared = ctx.shared_mem<double>();
        const std::int64_t ti = ctx.thread_idx.x;
        const index_t i = ctx.global_x();
        shared[ti] =
            i < n ? static_cast<double>(x[i]) * static_cast<double>(y[i])
                  : 0.0;
        ctx.sync_threads();
        for (std::int64_t s = native_dot_block / 2; s > 0; s >>= 1) {
          if (ti < s) {
            shared[ti] += shared[ti + s];
          }
          ctx.sync_threads();
        }
        if (ti == 0) {
          rs[ctx.block_idx.x] = shared[0];
        }
      },
      "native.dot.partial", /*is_reduce=*/true, 2.0);

  Api::launch_shared(
      1, native_dot_block, native_dot_block * sizeof(double),
      [=](sim::kernel_ctx& ctx) {
        double* shared = ctx.shared_mem<double>();
        const std::int64_t ti = ctx.thread_idx.x;
        double tmp = 0.0;
        for (std::int64_t k = ti; k < blocks; k += native_dot_block) {
          tmp += static_cast<double>(rs[k]);
        }
        shared[ti] = tmp;
        ctx.sync_threads();
        for (std::int64_t s = native_dot_block / 2; s > 0; s >>= 1) {
          if (ti < s) {
            shared[ti] += shared[ti + s];
          }
          ctx.sync_threads();
        }
        if (ti == 0) {
          rrs[0] = shared[0];
        }
      },
      "native.dot.final", /*is_reduce=*/true);

  double out = 0.0;
  rret.copy_to_host(&out, "native.dot.d2h");
  return out;
}

template <class Api>
void native_gpu_axpy2d(index_t rows, index_t cols, double alpha,
                       sim::device_span2d<double> x,
                       sim::device_span2d<double> y) {
  const std::int64_t tile = 16; // paper Fig. 6: numThreads = 16
  const std::int64_t mt = rows < tile ? rows : tile;
  const std::int64_t nt = cols < tile ? cols : tile;
  Api::launch2d(
      sim::dim3{sim::ceil_div(rows, mt), sim::ceil_div(cols, nt)},
      sim::dim3{mt, nt},
      [=](sim::kernel_ctx& ctx) {
        const index_t i = ctx.global_x();
        const index_t j = ctx.global_y();
        if (i < rows && j < cols) {
          x(i, j) += alpha * static_cast<double>(y(i, j));
        }
      },
      "native.axpy2d", 2.0);
}

template <class Api>
double native_gpu_dot2d(index_t rows, index_t cols,
                        sim::device_span2d<double> x,
                        sim::device_span2d<double> y) {
  const std::int64_t tile = 16;
  const std::int64_t mt = rows < tile ? rows : tile;
  const std::int64_t nt = cols < tile ? cols : tile;
  const std::int64_t mblocks = sim::ceil_div(rows, mt);
  const std::int64_t nblocks = sim::ceil_div(cols, nt);
  const std::int64_t blocks = mblocks * nblocks;
  const std::int64_t lanes = mt * nt;

  auto ret = Api::template zeros<double>(blocks);
  auto rret = Api::template zeros<double>(1);
  auto rs = ret.span();
  auto rrs = rret.span();

  // Kernel 1: 16x16 tile reduction into one partial per block.  The tree
  // works over the flattened tile index; lanes outside the array contribute
  // zero.  The tile is 256 lanes (a power of two) except at edges, where the
  // flattened width still rounds the tree over lanes (identity-padded).
  sim::launch_config cfg;
  cfg.grid = sim::dim3{mblocks, nblocks};
  cfg.block = sim::dim3{mt, nt};
  cfg.shmem_bytes = static_cast<std::size_t>(lanes) * sizeof(double);
  cfg.name = "native.dot2d.partial";
  cfg.flavor.is_reduce = true;
  cfg.flops_per_index = 2.0;
  sim::launch_cooperative(Api::device(), cfg, [=](sim::kernel_ctx& ctx) {
    double* shared = ctx.shared_mem<double>();
    const std::int64_t ti =
        ctx.thread_idx.x + ctx.thread_idx.y * ctx.block_dim.x;
    const index_t i = ctx.global_x();
    const index_t j = ctx.global_y();
    shared[ti] = (i < rows && j < cols)
                     ? static_cast<double>(x(i, j)) *
                           static_cast<double>(y(i, j))
                     : 0.0;
    ctx.sync_threads();
    // Linear tree over the tile; `half` rounds up so non-power-of-two edge
    // tiles still fold completely.
    std::int64_t width = ctx.block_dim.x * ctx.block_dim.y;
    while (width > 1) {
      const std::int64_t half = (width + 1) / 2;
      if (ti < width / 2) {
        shared[ti] += shared[ti + half];
      }
      ctx.sync_threads();
      width = half;
    }
    if (ti == 0) {
      rs[ctx.block_idx.x + ctx.block_idx.y * ctx.grid_dim.x] = shared[0];
    }
  });

  // Kernel 2: same single-block grid-stride finish as the 1D case.
  Api::launch_shared(
      1, native_dot_block, native_dot_block * sizeof(double),
      [=](sim::kernel_ctx& ctx) {
        double* shared = ctx.shared_mem<double>();
        const std::int64_t ti = ctx.thread_idx.x;
        double tmp = 0.0;
        for (std::int64_t k = ti; k < blocks; k += native_dot_block) {
          tmp += static_cast<double>(rs[k]);
        }
        shared[ti] = tmp;
        ctx.sync_threads();
        for (std::int64_t s = native_dot_block / 2; s > 0; s >>= 1) {
          if (ti < s) {
            shared[ti] += shared[ti + s];
          }
          ctx.sync_threads();
        }
        if (ti == 0) {
          rrs[0] = shared[0];
        }
      },
      "native.dot2d.final", /*is_reduce=*/true);

  double out = 0.0;
  rret.copy_to_host(&out, "native.dot2d.d2h");
  return out;
}

} // namespace jaccx::blas
