#include "blas/jacc_blas.hpp"

#include <cmath>

#include "core/jacc.hpp"

namespace jaccx::blas {

// The level-1 drivers route through the jacc::expr layer under
// JACC_FUSE=expr|all; each expression mirrors the eager kernel's exact
// arithmetic shape (same operand order, same contractions), so the two
// paths are bitwise-identical per element and only the launch accounting
// differs (docs/FUSION.md).  The 2-D forms take the expr path only when
// (rows, cols) covers the whole array — a sub-block is not contiguous
// under the flat column-major read the expression leaves use.

void jacc_axpy(index_t n, double alpha, darray& x, const darray& y) {
  if (jacc::fuse_expr()) {
    jacc::eval("jacc.axpy", n,
               jacc::assign(x, jacc::ex(x) + alpha * jacc::ex(y)));
    return;
  }
  jacc::parallel_for(jacc::hints{.name = "jacc.axpy",
                                 .flops_per_index = 2.0,
                                 .bytes_per_index = 24.0},
                     n, axpy, alpha, x, y);
}

double jacc_dot(index_t n, const darray& x, const darray& y) {
  if (jacc::fuse_expr()) {
    return jacc::dot("jacc.dot", n, jacc::ex(x), jacc::ex(y));
  }
  return jacc::parallel_reduce(
      jacc::hints{.name = "jacc.dot", .flops_per_index = 2.0,
                  .bytes_per_index = 16.0},
      n, dot, x, y);
}

void jacc_axpy2d(index_t rows, index_t cols, double alpha, darray2d& x,
                 const darray2d& y) {
  if (jacc::fuse_expr() && rows == x.rows() && cols == x.cols() &&
      rows == y.rows() && cols == y.cols()) {
    jacc::eval("jacc.axpy2d", rows * cols,
               jacc::assign(x, jacc::ex(x) + alpha * jacc::ex(y)));
    return;
  }
  jacc::parallel_for(
      jacc::hints{.name = "jacc.axpy2d", .flops_per_index = 2.0,
                  .bytes_per_index = 24.0},
      jacc::dims2{rows, cols}, axpy2d, alpha, x, y);
}

double jacc_dot2d(index_t rows, index_t cols, const darray2d& x,
                  const darray2d& y) {
  // The canonical 2-D reduce flattens to idx = j*rows + i, so the flat
  // expression dot accumulates in the identical order: bit-exact.
  if (jacc::fuse_expr() && rows == x.rows() && cols == x.cols() &&
      rows == y.rows() && cols == y.cols()) {
    return jacc::dot("jacc.dot2d", rows * cols, jacc::ex(x), jacc::ex(y));
  }
  return jacc::parallel_reduce(
      jacc::hints{.name = "jacc.dot2d", .flops_per_index = 2.0,
                  .bytes_per_index = 16.0},
      jacc::dims2{rows, cols}, dot2d, x, y);
}

void jacc_scal(index_t n, double alpha, darray& x) {
  if (jacc::fuse_expr()) {
    jacc::eval("jacc.scal", n, jacc::assign(x, jacc::ex(x) * alpha));
    return;
  }
  jacc::parallel_for(jacc::hints{.name = "jacc.scal",
                                 .flops_per_index = 1.0,
                                 .bytes_per_index = 16.0},
                     n, scal, alpha, x);
}

void jacc_copy(index_t n, const darray& x, darray& y) {
  if (jacc::fuse_expr()) {
    jacc::eval("jacc.copy", n, jacc::assign(y, jacc::ex(x)));
    return;
  }
  jacc::parallel_for(jacc::hints{.name = "jacc.copy", .bytes_per_index = 16.0},
                     n, copy, x, y);
}

void jacc_swap(index_t n, darray& x, darray& y) {
  jacc::parallel_for(jacc::hints{.name = "jacc.swap", .bytes_per_index = 32.0},
                     n, swap, x, y);
}

double jacc_asum(index_t n, const darray& x) {
  return jacc::parallel_reduce(
      jacc::hints{.name = "jacc.asum", .flops_per_index = 1.0,
                  .bytes_per_index = 8.0},
      n, abs_term,
      x);
}

double jacc_nrm2(index_t n, const darray& x) {
  return std::sqrt(jacc::parallel_reduce(
      jacc::hints{.name = "jacc.nrm2", .flops_per_index = 2.0,
                  .bytes_per_index = 8.0},
      n,
      square_term, x));
}

double jacc_amax(index_t n, const darray& x) {
  return jacc::parallel_reduce_max(n, abs_term, x);
}

void jacc_gemv(index_t rows, index_t cols, double alpha, const darray2d& a,
               const darray& x, double beta, darray& y) {
  jacc::parallel_for(
      jacc::hints{.name = "jacc.gemv",
                  .flops_per_index = 2.0 * static_cast<double>(cols) + 2.0,
                  .bytes_per_index = 16.0 * static_cast<double>(cols) + 24.0},
      rows, gemv_row, alpha, a, x, beta, y, cols);
}

} // namespace jaccx::blas
