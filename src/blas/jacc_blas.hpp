// Portable BLAS-1 drivers over the JACC front end: the code measured as
// "JACC" in every figure of the paper.  One source; the backend is whatever
// jacc::current_backend() says.
#pragma once

#include "blas/kernels.hpp"

namespace jaccx::blas {

/// AXPY via jacc::parallel_for (paper Fig. 2, 1D).
void jacc_axpy(index_t n, double alpha, darray& x, const darray& y);

/// DOT via jacc::parallel_reduce (paper Fig. 2, 1D).
double jacc_dot(index_t n, const darray& x, const darray& y);

/// AXPY via the multidimensional API (paper Fig. 2, 2D).
void jacc_axpy2d(index_t rows, index_t cols, double alpha, darray2d& x,
                 const darray2d& y);

/// DOT via the multidimensional API (paper Fig. 2, 2D).
double jacc_dot2d(index_t rows, index_t cols, const darray2d& x,
                  const darray2d& y);

// --- extended level-1 drivers ------------------------------------------------

/// x *= alpha
void jacc_scal(index_t n, double alpha, darray& x);

/// y = x
void jacc_copy(index_t n, const darray& x, darray& y);

/// x <-> y
void jacc_swap(index_t n, darray& x, darray& y);

/// sum_i |x[i]|
double jacc_asum(index_t n, const darray& x);

/// sqrt(sum_i x[i]^2)
double jacc_nrm2(index_t n, const darray& x);

/// max_i |x[i]| (the value, not the index — reducers are value-typed)
double jacc_amax(index_t n, const darray& x);

/// Dense y = beta*y + alpha*A*x with column-major A (level-2 extension).
void jacc_gemv(index_t rows, index_t cols, double alpha, const darray2d& a,
               const darray& x, double beta, darray& y);

} // namespace jaccx::blas
