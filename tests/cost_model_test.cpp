// Unit tests for the analytic cost model and the built-in device models.
#include <gtest/gtest.h>

#include "sim/device_model.hpp"
#include "sim/work_tally.hpp"
#include "support/error.hpp"

namespace jaccx::sim {
namespace {

device_model simple_gpu() {
  device_model m;
  m.name = "test_gpu";
  m.kind = device_kind::gpu;
  m.parallel_units = 10;
  m.dram_bw_gbps = 1000.0;  // 1 byte/ns
  m.cache_bw_gbps = 4000.0;
  m.flops_gflops = 2000.0;
  m.launch_overhead_us = 5.0;
  m.per_index_overhead_ns = 0.0;
  m.per_block_overhead_ns = 0.0;
  m.xfer_bw_gbps = 10.0;
  m.xfer_latency_us = 20.0;
  m.jacc_dispatch_us = 2.0;
  m.reduce_efficiency = 0.5;
  m.jacc_reduce_derate = 0.8;
  return m;
}

TEST(CostModel, LaunchOverheadOnly) {
  const auto m = simple_gpu();
  EXPECT_DOUBLE_EQ(kernel_cost_us(m, work_tally{}, launch_flavor{}), 5.0);
}

TEST(CostModel, JaccDispatchAdds) {
  const auto m = simple_gpu();
  launch_flavor f;
  f.via_jacc = true;
  EXPECT_DOUBLE_EQ(kernel_cost_us(m, work_tally{}, f), 7.0);
}

TEST(CostModel, MemoryTimeFromBandwidth) {
  const auto m = simple_gpu();
  work_tally t;
  t.dram_bytes = 1'000'000; // at 1000 GB/s -> 1 us
  EXPECT_DOUBLE_EQ(kernel_cost_us(m, t, launch_flavor{}), 6.0);
  t.dram_bytes = 0;
  t.cache_bytes = 4'000'000; // at 4000 GB/s -> 1 us
  EXPECT_DOUBLE_EQ(kernel_cost_us(m, t, launch_flavor{}), 6.0);
}

TEST(CostModel, RooflineTakesMaxOfMemAndFlops) {
  const auto m = simple_gpu();
  work_tally t;
  t.dram_bytes = 1'000'000;  // 1 us of memory
  t.flops = 20'000'000;      // 10 us of compute at 2000 GF/s
  EXPECT_DOUBLE_EQ(kernel_cost_us(m, t, launch_flavor{}), 15.0);
  t.flops = 200'000; // 0.1 us -> memory bound again
  EXPECT_DOUBLE_EQ(kernel_cost_us(m, t, launch_flavor{}), 6.0);
}

TEST(CostModel, PerIndexOverheadDividedAcrossUnits) {
  auto m = simple_gpu();
  m.per_index_overhead_ns = 100.0; // 100 ns * 1000 idx / 10 units = 10 us
  work_tally t;
  t.indices = 1000;
  EXPECT_DOUBLE_EQ(kernel_cost_us(m, t, launch_flavor{}), 15.0);
}

TEST(CostModel, PerBlockOverheadDividedAcrossUnits) {
  auto m = simple_gpu();
  m.per_block_overhead_ns = 500.0; // 500 ns * 100 blocks / 10 units = 5 us
  work_tally t;
  t.blocks = 100;
  EXPECT_DOUBLE_EQ(kernel_cost_us(m, t, launch_flavor{}), 10.0);
}

TEST(CostModel, ReduceEfficiencyDeratesBandwidth) {
  const auto m = simple_gpu();
  work_tally t;
  t.dram_bytes = 1'000'000; // 1 us at full bandwidth
  launch_flavor reduce;
  reduce.is_reduce = true;
  // reduce_efficiency = 0.5 -> 2 us of memory time.
  EXPECT_DOUBLE_EQ(kernel_cost_us(m, t, reduce), 7.0);
  // via JACC: additional 0.8 derate -> 2.5 us + dispatch 2.
  reduce.via_jacc = true;
  EXPECT_DOUBLE_EQ(kernel_cost_us(m, t, reduce), 5.0 + 2.0 + 2.5);
}

TEST(CostModel, JaccReduceDerateOnlyAppliesToReduces) {
  const auto m = simple_gpu();
  work_tally t;
  t.dram_bytes = 1'000'000;
  launch_flavor f;
  f.via_jacc = true;
  // Not a reduce: full bandwidth despite derate field.
  EXPECT_DOUBLE_EQ(kernel_cost_us(m, t, f), 5.0 + 2.0 + 1.0);
}

TEST(CostModel, TransferLatencyPlusBandwidth) {
  const auto m = simple_gpu();
  // 20 us latency + 1 MB / 10 GB/s = 100 us.
  EXPECT_DOUBLE_EQ(transfer_cost_us(m, 1'000'000), 120.0);
  // Scalar transfers are latency-dominated.
  EXPECT_NEAR(transfer_cost_us(m, 8), 20.0, 0.01);
}

TEST(CostModel, CpuHasFreeTransfers) {
  auto m = simple_gpu();
  m.kind = device_kind::cpu;
  EXPECT_DOUBLE_EQ(transfer_cost_us(m, 1'000'000'000), 0.0);
}

TEST(DeviceModels, FourBuiltinsExist) {
  const auto names = builtin_model_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "rome64");
  EXPECT_EQ(names[1], "mi100");
  EXPECT_EQ(names[2], "a100");
  EXPECT_EQ(names[3], "max1550");
}

TEST(DeviceModels, KindsMatchThePaper) {
  EXPECT_EQ(builtin_model("rome64").kind, device_kind::cpu);
  EXPECT_EQ(builtin_model("mi100").kind, device_kind::gpu);
  EXPECT_EQ(builtin_model("a100").kind, device_kind::gpu);
  EXPECT_EQ(builtin_model("max1550").kind, device_kind::gpu);
}

TEST(DeviceModels, QualitativeOrderings) {
  const auto& rome = builtin_model("rome64");
  const auto& mi100 = builtin_model("mi100");
  const auto& a100 = builtin_model("a100");
  const auto& max1550 = builtin_model("max1550");
  // GPUs have (much) higher achieved bandwidth than the CPU.
  EXPECT_GT(mi100.dram_bw_gbps, rome.dram_bw_gbps);
  EXPECT_GT(a100.dram_bw_gbps, mi100.dram_bw_gbps);
  // Sec. V-A1: the A100 node has the fastest CPU-GPU connection.
  EXPECT_LT(a100.xfer_latency_us, mi100.xfer_latency_us);
  // Only the CPU model has meaningful per-iteration runtime overhead.
  EXPECT_GT(rome.per_index_overhead_ns, 10 * a100.per_index_overhead_ns);
  // Sec. V-A1: ~35% JACC DOT overhead observed only on the Intel GPU.
  EXPECT_LT(max1550.jacc_reduce_derate, 1.0);
  EXPECT_DOUBLE_EQ(a100.jacc_reduce_derate, 1.0);
}

TEST(DeviceModels, UnknownNameThrows) {
  EXPECT_THROW(builtin_model("h100"), config_error);
}

} // namespace
} // namespace jaccx::sim
