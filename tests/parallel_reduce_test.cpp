// Correctness tests for jacc::parallel_reduce: sum/min/max, 1D/2D, on every
// back end, including the fiber-based two-kernel GPU scheme.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "core/jacc.hpp"

namespace jacc {
namespace {

double dot_kernel(index_t i, const array<double>& x, const array<double>& y) {
  return static_cast<double>(x[i]) * static_cast<double>(y[i]);
}

class ReduceAllBackends : public ::testing::TestWithParam<backend> {
protected:
  void SetUp() override { set_backend(GetParam()); }
  void TearDown() override { set_backend(backend::threads); }
};

TEST_P(ReduceAllBackends, SumOfOnes) {
  const index_t n = 1000;
  array<double> x(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  const double s = parallel_reduce(
      n, [](index_t i, const array<double>& v) {
        return static_cast<double>(v[i]);
      }, x);
  EXPECT_DOUBLE_EQ(s, 1000.0);
}

TEST_P(ReduceAllBackends, DotProduct) {
  const index_t n = 777; // not a block multiple
  std::vector<double> xs(static_cast<std::size_t>(n), 2.0);
  std::vector<double> ys(static_cast<std::size_t>(n), 3.0);
  array<double> x(xs), y(ys);
  EXPECT_DOUBLE_EQ(parallel_reduce(n, dot_kernel, x, y),
                   6.0 * static_cast<double>(n));
}

TEST_P(ReduceAllBackends, SumOfIota) {
  const index_t n = 4097;
  std::vector<double> xs(static_cast<std::size_t>(n));
  std::iota(xs.begin(), xs.end(), 0.0);
  array<double> x(xs);
  const double s = parallel_reduce(
      n, [](index_t i, const array<double>& v) {
        return static_cast<double>(v[i]);
      }, x);
  EXPECT_DOUBLE_EQ(s, static_cast<double>(n - 1) * static_cast<double>(n) / 2);
}

TEST_P(ReduceAllBackends, SizeOne) {
  array<double> x{7.5};
  EXPECT_DOUBLE_EQ(parallel_reduce(1, dot_kernel, x, x), 56.25);
}

TEST_P(ReduceAllBackends, SizeZeroReturnsIdentity) {
  array<double> x(0);
  EXPECT_DOUBLE_EQ(parallel_reduce(0, dot_kernel, x, x), 0.0);
}

TEST_P(ReduceAllBackends, MinAndMax) {
  const index_t n = 513;
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    xs[static_cast<std::size_t>(i)] =
        std::cos(static_cast<double>(i)) * 100.0;
  }
  array<double> x(xs);
  auto get = [](index_t i, const array<double>& v) {
    return static_cast<double>(v[i]);
  };
  const double mn = parallel_reduce_min(n, get, x);
  const double mx = parallel_reduce_max(n, get, x);
  EXPECT_DOUBLE_EQ(mn, *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(mx, *std::max_element(xs.begin(), xs.end()));
  EXPECT_LE(mn, mx);
}

TEST_P(ReduceAllBackends, TwoDDot) {
  const index_t rows = 37;
  const index_t cols = 21;
  std::vector<double> xs(static_cast<std::size_t>(rows * cols), 1.5);
  std::vector<double> ys(static_cast<std::size_t>(rows * cols), 2.0);
  array2d<double> x(xs, rows, cols), y(ys, rows, cols);
  const double r = parallel_reduce(
      dims2{rows, cols},
      [](index_t i, index_t j, const array2d<double>& a,
         const array2d<double>& b) {
        return static_cast<double>(a(i, j)) * static_cast<double>(b(i, j));
      },
      x, y);
  EXPECT_DOUBLE_EQ(r, 3.0 * static_cast<double>(rows * cols));
}

TEST_P(ReduceAllBackends, TwoDVisitsEveryPair) {
  // Sum of (i + j*rows) over all (i, j) equals sum of 0..rows*cols-1.
  const index_t rows = 19;
  const index_t cols = 23;
  const double r = parallel_reduce(
      dims2{rows, cols},
      [rows](index_t i, index_t j) {
        return static_cast<double>(i + j * rows);
      });
  const double n = static_cast<double>(rows * cols);
  EXPECT_DOUBLE_EQ(r, (n - 1.0) * n / 2.0);
}

TEST_P(ReduceAllBackends, IntegerReduction) {
  const index_t n = 100;
  const auto s = parallel_reduce(n, [](index_t i) { return i; });
  EXPECT_EQ(s, 99 * 100 / 2);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ReduceAllBackends,
                         ::testing::ValuesIn(all_backends),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// Property sweep: every backend must agree with the serial sum to a tight
// relative tolerance (association order differs, so not bitwise).
class ReduceAgreement
    : public ::testing::TestWithParam<std::tuple<backend, index_t>> {};

TEST_P(ReduceAgreement, MatchesSerialWithinTolerance) {
  const auto [b, n] = GetParam();
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    xs[static_cast<std::size_t>(i)] =
        std::sin(0.1 * static_cast<double>(i)) + 0.01;
  }
  auto get = [](index_t i, const array<double>& v) {
    return static_cast<double>(v[i]);
  };

  set_backend(backend::serial);
  double ref;
  {
    array<double> x(xs);
    ref = parallel_reduce(n, get, x);
  }
  set_backend(b);
  double got;
  {
    array<double> x(xs);
    got = parallel_reduce(n, get, x);
  }
  set_backend(backend::threads);
  EXPECT_NEAR(got, ref, 1e-9 * std::max(1.0, std::abs(ref)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReduceAgreement,
    ::testing::Combine(::testing::ValuesIn(all_backends),
                       ::testing::Values<index_t>(1, 3, 255, 256, 257, 1000,
                                                  65'536)),
    [](const auto& info) {
      return std::string(jacc::to_string(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ReduceCharging, GpuReduceChargesTwoKernelsAndD2h) {
  // Paper-fidelity charging (Fig. 3: per-call scratch + two zero fills) is
  // the JACC_MEM_POOL=none contract; the pooled counterpart lives in
  // mem_pool_test.cpp.
  const jaccx::mem::scoped_mode fidelity(jaccx::mem::pool_mode::none);
  scoped_backend sb(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  array<double> x(std::vector<double>(1000, 1.0));
  dev.reset_clock();
  const double s = parallel_reduce(
      1000, [](index_t i, const array<double>& v) {
        return static_cast<double>(v[i]);
      }, x);
  EXPECT_DOUBLE_EQ(s, 1000.0);
  int kernels = 0;
  int d2h = 0;
  int allocs = 0;
  for (const auto& e : dev.tl().events()) {
    if (e.kind == jaccx::sim::event_kind::kernel) {
      ++kernels;
    }
    if (e.kind == jaccx::sim::event_kind::transfer_d2h) {
      ++d2h;
    }
    if (e.kind == jaccx::sim::event_kind::alloc) {
      ++allocs;
    }
  }
  EXPECT_EQ(kernels, 4) << "2 zero-fills + the two-kernel scheme (Fig. 3)";
  EXPECT_EQ(d2h, 1) << "scalar result transfer";
  EXPECT_EQ(allocs, 2) << "partials + result buffers per call";
}

} // namespace
} // namespace jacc
