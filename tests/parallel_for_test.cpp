// Correctness tests for jacc::parallel_for on every back end: the same
// kernel source must produce identical results everywhere (the paper's core
// portability claim).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "core/jacc.hpp"

namespace jacc {
namespace {

// Paper-style kernels: free functions, index first, parameters after.
void axpy_kernel(index_t i, double alpha, array<double>& x,
                 const array<double>& y) {
  x[i] += alpha * static_cast<double>(y[i]);
}

void scale2d_kernel(index_t i, index_t j, double s, array2d<double>& a) {
  a(i, j) *= s;
}

void ident3d_kernel(index_t i, index_t j, index_t k, array3d<double>& a,
                    index_t rows, index_t cols) {
  a(i, j, k) = static_cast<double>(i + rows * (j + cols * k));
}

class ParallelForAllBackends : public ::testing::TestWithParam<backend> {
protected:
  void SetUp() override { set_backend(GetParam()); }
  void TearDown() override { set_backend(backend::threads); }
};

TEST_P(ParallelForAllBackends, Axpy1D) {
  const index_t n = 1000;
  std::vector<double> xs(static_cast<std::size_t>(n), 1.0);
  std::vector<double> ys(static_cast<std::size_t>(n));
  std::iota(ys.begin(), ys.end(), 0.0);
  array<double> x(xs), y(ys);
  parallel_for(n, axpy_kernel, 2.0, x, y);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(x.host_data()[i], 1.0 + 2.0 * static_cast<double>(i));
  }
}

TEST_P(ParallelForAllBackends, LambdaKernel) {
  const index_t n = 257; // deliberately not a multiple of any block size
  array<double> a(n);
  parallel_for(n, [](index_t i, array<double>& out) {
    out[i] = static_cast<double>(i * i);
  }, a);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(a.host_data()[i], static_cast<double>(i * i));
  }
}

TEST_P(ParallelForAllBackends, SizeOne) {
  array<double> a(1);
  parallel_for(1, [](index_t i, array<double>& out) { out[i] = 5.0; }, a);
  EXPECT_DOUBLE_EQ(a.host_data()[0], 5.0);
}

TEST_P(ParallelForAllBackends, SizeZeroIsNoop) {
  array<double> a(4);
  parallel_for(0, [](index_t, array<double>& out) { out[0] = 1.0; }, a);
  EXPECT_DOUBLE_EQ(a.host_data()[0], 0.0);
}

TEST_P(ParallelForAllBackends, TwoD) {
  const index_t rows = 33;
  const index_t cols = 17; // not multiples of the 16x16 GPU tile
  std::vector<double> host(static_cast<std::size_t>(rows * cols), 2.0);
  array2d<double> a(host, rows, cols);
  parallel_for(dims2{rows, cols}, scale2d_kernel, 3.0, a);
  for (index_t idx = 0; idx < rows * cols; ++idx) {
    EXPECT_DOUBLE_EQ(a.host_data()[idx], 6.0);
  }
}

TEST_P(ParallelForAllBackends, TwoDIndexIdentity) {
  const index_t rows = 8;
  const index_t cols = 5;
  array2d<double> a(rows, cols);
  parallel_for(dims2{rows, cols},
               [](index_t i, index_t j, array2d<double>& out, index_t r) {
                 out(i, j) = static_cast<double>(i + j * r);
               },
               a, rows);
  for (index_t idx = 0; idx < rows * cols; ++idx) {
    EXPECT_DOUBLE_EQ(a.host_data()[idx], static_cast<double>(idx));
  }
}

TEST_P(ParallelForAllBackends, ThreeD) {
  const index_t rows = 5;
  const index_t cols = 9;
  const index_t depth = 7; // exercise non-divisible 8x8x4 tiles
  array3d<double> a(rows, cols, depth);
  parallel_for(dims3{rows, cols, depth}, ident3d_kernel, a, rows, cols);
  for (index_t idx = 0; idx < rows * cols * depth; ++idx) {
    EXPECT_DOUBLE_EQ(a.host_data()[idx], static_cast<double>(idx));
  }
}

TEST_P(ParallelForAllBackends, ChainedConstructsCompose) {
  const index_t n = 128;
  array<double> a(n);
  parallel_for(n, [](index_t i, array<double>& v) {
    v[i] = static_cast<double>(i);
  }, a);
  parallel_for(n, [](index_t i, array<double>& v) { v[i] *= 2.0; }, a);
  parallel_for(n, [](index_t i, array<double>& v) { v[i] += 1.0; }, a);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(a.host_data()[i], 2.0 * static_cast<double>(i) + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ParallelForAllBackends,
                         ::testing::ValuesIn(all_backends),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// Property-style sweep: results must be identical (bitwise, for parallel_for
// — no reduction reordering is involved) across every backend and size.
class ParallelForAgreement
    : public ::testing::TestWithParam<std::tuple<backend, index_t>> {};

TEST_P(ParallelForAgreement, MatchesSerialBitwise) {
  const auto [b, n] = GetParam();
  std::vector<double> init(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    init[static_cast<std::size_t>(i)] =
        std::sin(0.37 * static_cast<double>(i));
  }
  auto body = [](index_t i, array<double>& v) {
    v[i] = std::fma(static_cast<double>(v[i]), 1.0000001, 0.25);
  };

  set_backend(backend::serial);
  array<double> ref(init);
  parallel_for(n, body, ref);

  set_backend(b);
  array<double> got(init);
  parallel_for(n, body, got);
  set_backend(backend::threads);

  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(got.host_data()[i], ref.host_data()[i]) << "i=" << i;
  }
}

// Regression tests for the threads decomposition when the slow dimension is
// narrower than the pool: the seed serialized dims2{big, 2} onto two of N
// workers.  These drive the detail helpers with an explicit 4-wide pool so
// they are meaningful regardless of this machine's core count or the
// default pool's width.

TEST(ThreadsDecomposition, WideShort2DUsesAllWorkers) {
  jaccx::pool::thread_pool p(4);
  // Static chunking so "every worker gets a chunk" is deterministic even
  // when JACC_SCHEDULE=dynamic is exported into the test run.
  p.set_schedule({jaccx::pool::schedule_kind::static_chunks, 0});
  const index_t rows = 1'000'000;
  const index_t cols = 2;

  std::atomic<long> checksum{0};
  std::mutex m;
  std::set<std::thread::id> participants;
  detail::threads_for_2d(p, dims2{rows, cols}, [&](index_t i, index_t j) {
    checksum.fetch_add(i + j * rows, std::memory_order_relaxed);
    if ((i & 8191) == 0) {
      std::lock_guard<std::mutex> lock(m);
      participants.insert(std::this_thread::get_id());
    }
  });

  // Exact coverage: sum over the flattened space of its own linear index.
  const long total = rows * cols;
  EXPECT_EQ(checksum.load(), total * (total - 1) / 2);
  // All four workers observe work (each owns a quarter of the flattened
  // space, which spans many multiples of the sampling stride).
  EXPECT_EQ(participants.size(), 4u);
}

TEST(ThreadsDecomposition, WideShort3DUsesAllWorkers) {
  jaccx::pool::thread_pool p(4);
  p.set_schedule({jaccx::pool::schedule_kind::static_chunks, 0});
  const dims3 d{100'000, 2, 2};

  std::atomic<long> checksum{0};
  std::mutex m;
  std::set<std::thread::id> participants;
  detail::threads_for_3d(p, d, [&](index_t i, index_t j, index_t k) {
    checksum.fetch_add(i + d.rows * (j + d.cols * k),
                       std::memory_order_relaxed);
    if ((i & 4095) == 0) {
      std::lock_guard<std::mutex> lock(m);
      participants.insert(std::this_thread::get_id());
    }
  });

  const long total = d.rows * d.cols * d.depth;
  EXPECT_EQ(checksum.load(), total * (total - 1) / 2);
  EXPECT_EQ(participants.size(), 4u);
}

TEST(ThreadsDecomposition, FullyFlattened3DCoversEveryCell) {
  // depth < width and cols*depth < width forces the fully-flattened path.
  jaccx::pool::thread_pool p(8);
  const dims3 d{1000, 2, 2};
  std::vector<std::atomic<int>> hits(
      static_cast<std::size_t>(d.rows * d.cols * d.depth));
  detail::threads_for_3d(p, d, [&](index_t i, index_t j, index_t k) {
    hits[static_cast<std::size_t>(i + d.rows * (j + d.cols * k))].fetch_add(
        1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadsDecomposition, TiledMatchesColumnwise2D) {
  // The same kernel through a 4-wide pool (tiled, cols < width) and a
  // 1-wide pool (columnwise) must write identical arrays.
  const index_t rows = 4097;
  const index_t cols = 3;
  std::vector<double> tiled(static_cast<std::size_t>(rows * cols));
  std::vector<double> columnwise(tiled.size());

  jaccx::pool::thread_pool wide(4);
  detail::threads_for_2d(wide, dims2{rows, cols}, [&](index_t i, index_t j) {
    tiled[static_cast<std::size_t>(i + j * rows)] =
        std::sin(0.1 * static_cast<double>(i)) + static_cast<double>(j);
  });
  jaccx::pool::thread_pool narrow(1);
  detail::threads_for_2d(narrow, dims2{rows, cols},
                         [&](index_t i, index_t j) {
    columnwise[static_cast<std::size_t>(i + j * rows)] =
        std::sin(0.1 * static_cast<double>(i)) + static_cast<double>(j);
  });
  EXPECT_EQ(tiled, columnwise);
}

TEST(ThreadsDecomposition, DynamicScheduleCovers2D) {
  jaccx::pool::thread_pool p(4);
  p.set_schedule({jaccx::pool::schedule_kind::dynamic_chunks, 16});
  const dims2 d{512, 2};
  std::vector<std::atomic<int>> hits(
      static_cast<std::size_t>(d.rows * d.cols));
  detail::threads_for_2d(p, d, [&](index_t i, index_t j) {
    hits[static_cast<std::size_t>(i + j * d.rows)].fetch_add(
        1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelForAgreement,
    ::testing::Combine(::testing::ValuesIn(all_backends),
                       ::testing::Values<index_t>(1, 2, 255, 256, 257, 4096,
                                                  10'000)),
    [](const auto& info) {
      return std::string(jacc::to_string(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace jacc
