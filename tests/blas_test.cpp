// Tests for the BLAS module: the JACC drivers on every backend and the
// native device-specific comparators, cross-checked against each other.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "blas/jacc_blas.hpp"
#include "blas/native_cpu.hpp"
#include "blas/native_gpu.hpp"
#include "core/jacc.hpp"

namespace jaccx::blas {
namespace {

using jacc::backend;

std::vector<double> iota_vec(index_t n, double start = 0.0) {
  std::vector<double> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), start);
  return v;
}

double ref_dot(const std::vector<double>& x, const std::vector<double>& y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i] * y[i];
  }
  return acc;
}

class JaccBlasAllBackends : public ::testing::TestWithParam<backend> {
protected:
  void SetUp() override { jacc::set_backend(GetParam()); }
  void TearDown() override { jacc::set_backend(backend::threads); }
};

TEST_P(JaccBlasAllBackends, Axpy) {
  const index_t n = 1234;
  darray x(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  darray y(iota_vec(n));
  jacc_axpy(n, 2.5, x, y);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(x.host_data()[i], 1.0 + 2.5 * static_cast<double>(i));
  }
}

TEST_P(JaccBlasAllBackends, Dot) {
  const index_t n = 1234;
  const auto xs = iota_vec(n, 1.0);
  const auto ys = iota_vec(n, 2.0);
  darray x(xs), y(ys);
  EXPECT_NEAR(jacc_dot(n, x, y), ref_dot(xs, ys),
              1e-9 * ref_dot(xs, ys));
}

TEST_P(JaccBlasAllBackends, Axpy2d) {
  const index_t rows = 31;
  const index_t cols = 19;
  darray2d x(std::vector<double>(static_cast<std::size_t>(rows * cols), 1.0),
             rows, cols);
  darray2d y(iota_vec(rows * cols), rows, cols);
  jacc_axpy2d(rows, cols, 2.0, x, y);
  for (index_t idx = 0; idx < rows * cols; ++idx) {
    EXPECT_DOUBLE_EQ(x.host_data()[idx],
                     1.0 + 2.0 * static_cast<double>(idx));
  }
}

TEST_P(JaccBlasAllBackends, Dot2d) {
  const index_t rows = 31;
  const index_t cols = 19;
  const auto xs = iota_vec(rows * cols, 1.0);
  const auto ys = iota_vec(rows * cols, 0.5);
  darray2d x(xs, rows, cols), y(ys, rows, cols);
  EXPECT_NEAR(jacc_dot2d(rows, cols, x, y), ref_dot(xs, ys),
              1e-9 * ref_dot(xs, ys));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, JaccBlasAllBackends,
                         ::testing::ValuesIn(jacc::all_backends),
                         [](const auto& info) {
                           return std::string(jacc::to_string(info.param));
                         });

TEST(ThreadsBlas, AxpyAndDot) {
  const index_t n = 100'000;
  auto x = iota_vec(n);
  const auto y = iota_vec(n, 1.0);
  threads_axpy(n, 3.0, x.data(), y.data());
  for (index_t i = 0; i < n; i += 9973) {
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)],
                     static_cast<double>(i) +
                         3.0 * (static_cast<double>(i) + 1.0));
  }
  const auto xs = iota_vec(1000);
  const auto ys = iota_vec(1000, 5.0);
  EXPECT_NEAR(threads_dot(1000, xs.data(), ys.data()), ref_dot(xs, ys),
              1e-6);
}

TEST(ThreadsBlas, TwoDVariants) {
  const index_t rows = 64;
  const index_t cols = 32;
  auto x = iota_vec(rows * cols);
  const auto y = std::vector<double>(static_cast<std::size_t>(rows * cols),
                                     2.0);
  threads_axpy2d(rows, cols, 0.5, x.data(), y.data());
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[100], 101.0);
  const auto xs = iota_vec(rows * cols);
  EXPECT_NEAR(threads_dot2d(rows, cols, xs.data(), xs.data()),
              ref_dot(xs, xs), 1e-6 * ref_dot(xs, xs));
}

TEST(RomeBlas, MatchesReference) {
  auto& dev = sim::get_device("rome64");
  const index_t n = 5000;
  auto xs = iota_vec(n);
  const auto ys = iota_vec(n, 3.0);
  sim::device_buffer<double> dx(dev, n), dy(dev, n);
  dx.copy_from_host(xs.data());
  dy.copy_from_host(ys.data());
  rome_axpy(dev, n, 2.0, dx.span(), dy.span());
  std::vector<double> out(static_cast<std::size_t>(n));
  dx.copy_to_host(out.data());
  for (index_t i = 0; i < n; i += 101) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)],
                     static_cast<double>(i) +
                         2.0 * (static_cast<double>(i) + 3.0));
  }
  EXPECT_NEAR(rome_dot(dev, n, dy.span(), dy.span()), ref_dot(ys, ys),
              1e-9 * ref_dot(ys, ys));
}

template <class Api>
struct NativeGpuBlasTest : public ::testing::Test {};

using VendorApis =
    ::testing::Types<vendor::cuda_api, vendor::hip_api, vendor::oneapi_api>;
TYPED_TEST_SUITE(NativeGpuBlasTest, VendorApis);

TYPED_TEST(NativeGpuBlasTest, AxpyMatchesReference) {
  using Api = TypeParam;
  const index_t n = 3000;
  auto xs = iota_vec(n);
  const auto ys = iota_vec(n, 1.0);
  auto dx = Api::template to_device<double>(xs.data(), n);
  auto dy = Api::template to_device<double>(ys.data(), n);
  native_gpu_axpy<Api>(n, 1.5, dx.span(), dy.span());
  std::vector<double> out(static_cast<std::size_t>(n));
  dx.copy_to_host(out.data());
  for (index_t i = 0; i < n; i += 97) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)],
                     static_cast<double>(i) +
                         1.5 * (static_cast<double>(i) + 1.0));
  }
}

TYPED_TEST(NativeGpuBlasTest, DotMatchesReference) {
  using Api = TypeParam;
  for (index_t n : {index_t{1}, index_t{511}, index_t{512}, index_t{513},
                    index_t{4096}, index_t{10'000}}) {
    const auto xs = iota_vec(n, 0.25);
    const auto ys = iota_vec(n, 0.75);
    auto dx = Api::template to_device<double>(xs.data(), n);
    auto dy = Api::template to_device<double>(ys.data(), n);
    const double got = native_gpu_dot<Api>(n, dx.span(), dy.span());
    const double want = ref_dot(xs, ys);
    EXPECT_NEAR(got, want, 1e-9 * std::max(1.0, want)) << "n=" << n;
  }
}

TYPED_TEST(NativeGpuBlasTest, TwoDVariantsMatchReference) {
  using Api = TypeParam;
  const index_t rows = 45; // forces ragged 16x16 edge tiles
  const index_t cols = 23;
  const index_t n = rows * cols;
  auto xs = iota_vec(n, 0.5);
  const auto ys = iota_vec(n, 1.5);
  auto dx = Api::template to_device<double>(xs.data(), n);
  auto dy = Api::template to_device<double>(ys.data(), n);
  native_gpu_axpy2d<Api>(rows, cols, 2.0, dx.span2d(rows, cols),
                         dy.span2d(rows, cols));
  std::vector<double> out(static_cast<std::size_t>(n));
  dx.copy_to_host(out.data());
  for (index_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(out[static_cast<std::size_t>(i)],
                     (static_cast<double>(i) + 0.5) +
                         2.0 * (static_cast<double>(i) + 1.5));
  }
  const double got =
      native_gpu_dot2d<Api>(rows, cols, dy.span2d(rows, cols),
                            dy.span2d(rows, cols));
  EXPECT_NEAR(got, ref_dot(ys, ys), 1e-9 * ref_dot(ys, ys));
}

TEST(BlasCrossCheck, JaccAndNativeAgreeOnEveryDevice) {
  const index_t n = 2048;
  const auto xs = iota_vec(n, 0.1);
  const auto ys = iota_vec(n, 0.9);
  const double want = ref_dot(xs, ys);

  // JACC on cuda backend vs native cuda code.
  {
    jacc::scoped_backend sb(backend::cuda_a100);
    darray x(xs), y(ys);
    EXPECT_NEAR(jacc_dot(n, x, y), want, 1e-9 * want);
  }
  {
    auto dx = vendor::cuda_api::to_device<double>(xs.data(), n);
    auto dy = vendor::cuda_api::to_device<double>(ys.data(), n);
    EXPECT_NEAR(native_gpu_dot<vendor::cuda_api>(n, dx.span(), dy.span()),
                want, 1e-9 * want);
  }
}

} // namespace
} // namespace jaccx::blas
