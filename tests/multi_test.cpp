// Tests for the multi-device extension (paper Sec. VII future work):
// sharding, scatter/gather, multi-device parallel_for/parallel_reduce,
// halo exchange, and the overlapping-clock timing semantics.
//
// The whole front end is a deprecated shim over jacc::device_set now
// (docs/SHARDING.md); these tests deliberately exercise the old API to pin
// the compatibility guarantee, so the deprecation warnings are silenced.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "multi/multi.hpp"

namespace jaccx::multi {
namespace {

using jacc::backend;

std::vector<double> iota_vec(index_t n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0.0);
  return v;
}

TEST(MultiContext, RejectsRealAndCpuBackends) {
  EXPECT_THROW(context(backend::threads, 2), usage_error);
  EXPECT_THROW(context(backend::serial, 2), usage_error);
  EXPECT_THROW(context(backend::cpu_rome, 2), usage_error);
  EXPECT_THROW(context(backend::cuda_a100, 0), usage_error);
}

TEST(MultiContext, DeviceInstancesAreDistinctPeers) {
  context ctx(backend::cuda_a100, 3);
  EXPECT_EQ(ctx.devices(), 3);
  EXPECT_NE(&ctx.dev(0), &ctx.dev(1));
  EXPECT_NE(&ctx.dev(1), &ctx.dev(2));
  EXPECT_EQ(ctx.dev(0).model().name, "a100");
  EXPECT_EQ(ctx.dev(2).model().name, "a100");
  // Index 0 is the shared single-device instance.
  EXPECT_EQ(&ctx.dev(0), &sim::get_device("a100"));
}

class MultiSharding : public ::testing::TestWithParam<int> {};

TEST_P(MultiSharding, ShardRangesTileTheArray) {
  context ctx(backend::hip_mi100, GetParam());
  ctx.reset_clocks();
  marray<double> a(ctx, 1001);
  index_t covered = 0;
  index_t prev_end = 0;
  for (int d = 0; d < a.shards(); ++d) {
    const auto r = a.shard_range(d);
    EXPECT_EQ(r.begin, prev_end);
    covered += r.size();
    prev_end = r.end;
  }
  EXPECT_EQ(covered, 1001);
}

TEST_P(MultiSharding, ScatterGatherRoundTrip) {
  context ctx(backend::cuda_a100, GetParam());
  ctx.reset_clocks();
  const auto host = iota_vec(777);
  marray<double> a(ctx, host);
  EXPECT_EQ(a.gather(), host);
}

TEST_P(MultiSharding, AxpyMatchesSingleDeviceResult) {
  context ctx(backend::cuda_a100, GetParam());
  ctx.reset_clocks();
  const index_t n = 10'000;
  marray<double> x(ctx, std::vector<double>(static_cast<std::size_t>(n), 1.0));
  marray<double> y(ctx, iota_vec(n));
  parallel_for(ctx, n,
               [](index_t i, sim::device_span<double> xs,
                  sim::device_span<double> ys) {
                 xs[i] += 2.0 * static_cast<double>(ys[i]);
               },
               x, y);
  ctx.sync();
  const auto out = x.gather();
  // Element at global position g held y = g, so x must be 1 + 2g — for
  // every shard count the result is the single-device result.
  for (index_t g = 0; g < n; ++g) {
    ASSERT_DOUBLE_EQ(out[static_cast<std::size_t>(g)],
                     1.0 + 2.0 * static_cast<double>(g));
  }
}

TEST_P(MultiSharding, ReduceMatchesHostSum) {
  context ctx(backend::oneapi_max1550, GetParam());
  ctx.reset_clocks();
  const index_t n = 4097;
  const auto host = iota_vec(n);
  marray<double> x(ctx, host);
  const double got = parallel_reduce(
      ctx, n, [](index_t i, sim::device_span<double> xs) {
        return static_cast<double>(xs[i]);
      },
      x);
  EXPECT_DOUBLE_EQ(got, std::accumulate(host.begin(), host.end(), 0.0));
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, MultiSharding,
                         ::testing::Values(1, 2, 3, 4, 8),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(MultiHalo, ExchangeMovesBoundaryCells) {
  context ctx(backend::cuda_a100, 2);
  ctx.reset_clocks();
  const index_t n = 10;
  marray<double> a(ctx, iota_vec(n), /*ghost=*/2);
  a.exchange_halos();
  // Shard 0 owns [0,5), shard 1 owns [5,10).  After exchange, shard 0's
  // right ghost holds {5, 6}; shard 1's left ghost holds {3, 4}.
  const double* s0 = a.shard_host_data(0); // layout: [g g | 0 1 2 3 4 | g g]
  EXPECT_DOUBLE_EQ(s0[2 + 5], 5.0);
  EXPECT_DOUBLE_EQ(s0[2 + 6], 6.0);
  const double* s1 = a.shard_host_data(1); // layout: [g g | 5 6 7 8 9 | g g]
  EXPECT_DOUBLE_EQ(s1[0], 3.0);
  EXPECT_DOUBLE_EQ(s1[1], 4.0);
}

TEST(MultiHalo, AsyncExchangeMovesTheSameCellsOnShardStreams) {
  context ctx(backend::cuda_a100, 3);
  ctx.reset_clocks();
  const index_t n = 12;
  marray<double> sync_a(ctx, iota_vec(n), /*ghost=*/1);
  sync_a.exchange_halos();
  std::vector<std::vector<double>> expect;
  for (int d = 0; d < sync_a.shards(); ++d) {
    const double* p = sync_a.shard_host_data(d);
    expect.emplace_back(p, p + sync_a.shard_len(d) + 2);
  }

  ctx.reset_clocks();
  marray<double> async_a(ctx, iota_vec(n), /*ghost=*/1);
  const double dev0_before = ctx.dev(0).tl().now_us();
  async_a.exchange_halos_async();
  // Data identical to the synchronous exchange...
  for (int d = 0; d < async_a.shards(); ++d) {
    const double* p = async_a.shard_host_data(d);
    for (index_t i = 0; i < async_a.shard_len(d) + 2; ++i) {
      EXPECT_DOUBLE_EQ(p[i], expect[static_cast<std::size_t>(d)]
                                   [static_cast<std::size_t>(i)]);
    }
  }
  // ...but the charges landed on the shard streams, not the device clocks.
  EXPECT_DOUBLE_EQ(ctx.dev(0).tl().now_us(), dev0_before);
  EXPECT_GT(ctx.shard_stream(0).now_us(), dev0_before);
  ctx.sync(); // folds streams back; device clocks catch up
  EXPECT_GE(ctx.dev(0).tl().now_us(), ctx.shard_stream(0).now_us());
  ctx.reset_clocks();
}

TEST(MultiHalo, ShardStreamsAreLabeledPerShard) {
  context ctx(backend::cuda_a100, 2);
  ctx.reset_clocks();
  EXPECT_EQ(ctx.shard_stream(0).tl().label(), "a100.shard0");
  EXPECT_EQ(ctx.shard_stream(1).tl().label(), "a100.shard1");
  ctx.reset_clocks();
}

TEST(MultiHalo, StencilAcrossShardsMatchesSerial) {
  // 1D 3-point smoother over 2 and 4 devices must equal the serial result
  // when halos are exchanged before each sweep.
  const index_t n = 256;
  const auto init = iota_vec(n);
  auto serial = init;
  for (int sweep = 0; sweep < 3; ++sweep) {
    auto next = serial;
    for (index_t i = 1; i + 1 < n; ++i) {
      next[static_cast<std::size_t>(i)] =
          (serial[static_cast<std::size_t>(i - 1)] +
           serial[static_cast<std::size_t>(i)] +
           serial[static_cast<std::size_t>(i + 1)]) /
          3.0;
    }
    serial = next;
  }

  for (int ndev : {2, 4}) {
    context ctx(backend::cuda_a100, ndev);
    ctx.reset_clocks();
    marray<double> u(ctx, init, /*ghost=*/1);
    marray<double> next(ctx, init, /*ghost=*/1);
    for (int sweep = 0; sweep < 3; ++sweep) {
      u.exchange_halos();
      parallel_for(ctx, n,
                   [n](index_t i, sim::device_span<double> us,
                       sim::device_span<double> ns, index_t base) {
                     const index_t g = base + i; // global position
                     if (g == 0 || g == n - 1) {
                       ns[i + 1] = static_cast<double>(us[i + 1]);
                       return;
                     }
                     // Shard-local +1 is the ghost offset; us[i] is the
                     // left neighbour (a ghost cell at shard edges).
                     ns[i + 1] = (static_cast<double>(us[i]) +
                                  static_cast<double>(us[i + 1]) +
                                  static_cast<double>(us[i + 2])) /
                                 3.0;
                   },
                   u, next, with_base);
      std::swap(u, next);
    }
    const auto got = u.gather();
    for (index_t i = 0; i < n; ++i) {
      ASSERT_NEAR(got[static_cast<std::size_t>(i)],
                  serial[static_cast<std::size_t>(i)], 1e-12)
          << "ndev=" << ndev << " i=" << i;
    }
  }
}

TEST(MultiTiming, DevicesOverlap) {
  // The same total work on 1 vs 4 devices must take ~1/4 the wall time
  // (bandwidth-bound region, one kernel per device, clocks overlap).
  const index_t n = 1 << 20;
  auto run = [&](int ndev) {
    context ctx(backend::cuda_a100, ndev);
    ctx.reset_clocks();
    marray<double> x(ctx, std::vector<double>(static_cast<std::size_t>(n),
                                              1.0));
    marray<double> y(ctx, std::vector<double>(static_cast<std::size_t>(n),
                                              2.0));
    ctx.reset_clocks(); // exclude the scatter
    parallel_for(ctx, n,
                 [](index_t i, sim::device_span<double> xs,
                    sim::device_span<double> ys) {
                   xs[i] += 2.0 * static_cast<double>(ys[i]);
                 },
                 x, y);
    return ctx.sync();
  };
  const double t1 = run(1);
  const double t4 = run(4);
  EXPECT_LT(t4, t1 / 2.0);
  EXPECT_GT(t4, t1 / 8.0); // launch overheads keep it from perfect scaling
}

TEST(MultiTiming, SyncAlignsClocks) {
  context ctx(backend::hip_mi100, 2);
  ctx.reset_clocks();
  // Unbalanced explicit work on device 0 only.
  ctx.dev(0).charge_h2d(1 << 20, "skew");
  EXPECT_GT(ctx.dev(0).tl().now_us(), ctx.dev(1).tl().now_us());
  const double t = ctx.sync();
  EXPECT_DOUBLE_EQ(ctx.dev(0).tl().now_us(), t);
  EXPECT_DOUBLE_EQ(ctx.dev(1).tl().now_us(), t);
}

TEST(MultiArray, EmptyAndTinyArrays) {
  context ctx(backend::cuda_a100, 4);
  ctx.reset_clocks();
  marray<double> empty(ctx, 0);
  EXPECT_TRUE(empty.gather().empty());
  // Fewer elements than devices: trailing shards are empty.
  marray<double> tiny(ctx, std::vector<double>{1.0, 2.0});
  EXPECT_EQ(tiny.shard_len(0), 1);
  EXPECT_EQ(tiny.shard_len(3), 0);
  EXPECT_EQ(tiny.gather(), (std::vector<double>{1.0, 2.0}));
  double s = parallel_reduce(ctx, 2,
                             [](index_t i, sim::device_span<double> xs) {
                               return static_cast<double>(xs[i]);
                             },
                             tiny);
  EXPECT_DOUBLE_EQ(s, 3.0);
}

} // namespace
} // namespace jaccx::multi
