// Tests for the two fusion levels (docs/FUSION.md) and the satellites
// that landed with them: jacc::expr evaluation must be bit-exact against
// the eager kernel sequence on serial and simulated backends (NEAR across
// threads lane counts), the graph chain fuser must merge exactly the
// legal runs and nothing else, JACC_FUSE=none must reproduce the seed's
// simulated charges bit for bit, captured jacc::scratch must replay
// allocation-free, and the pool's LRU cap must evict oldest-first without
// perturbing uncapped behavior.  Suite name "Fusion" keeps these runnable
// as a unit (scripts/verify.sh runs Fusion.* under TSan: fused threads
// launches are the new race surface).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "blas/jacc_blas.hpp"
#include "cg/solver.hpp"
#include "core/jacc.hpp"
#include "mem/pool.hpp"
#include "sim/device.hpp"
#include "support/error.hpp"

namespace jacc {
namespace {

using jaccx::mem::pool_mode;
using jaccx::mem::scoped_mode;

void axpy_k(index_t i, double alpha, array<double>& x,
            const array<double>& y) {
  x[i] += alpha * static_cast<double>(y[i]);
}

std::vector<double> iota_vec(index_t n, double start) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = start + 0.25 * static_cast<double>(i);
  }
  return v;
}

class Fusion : public ::testing::Test {
protected:
  void SetUp() override { saved_ = current_backend(); }
  void TearDown() override { set_backend(saved_); }
  backend saved_ = backend::threads;
};

// --- mode plumbing ----------------------------------------------------------

TEST_F(Fusion, ParseAndScopedMode) {
  EXPECT_EQ(parse_fuse("none"), fuse_mode::none);
  EXPECT_EQ(parse_fuse("off"), fuse_mode::none);
  EXPECT_EQ(parse_fuse("expr"), fuse_mode::expr);
  EXPECT_EQ(parse_fuse("graph"), fuse_mode::graph);
  EXPECT_EQ(parse_fuse("all"), fuse_mode::all);
  EXPECT_EQ(parse_fuse("bogus"), std::nullopt);

  const fuse_mode before = fuse();
  {
    const scoped_fuse sf(fuse_mode::expr);
    EXPECT_TRUE(fuse_expr());
    EXPECT_FALSE(fuse_graph());
    {
      const scoped_fuse inner(fuse_mode::all);
      EXPECT_TRUE(fuse_expr());
      EXPECT_TRUE(fuse_graph());
    }
    EXPECT_EQ(fuse(), fuse_mode::expr);
  }
  EXPECT_EQ(fuse(), before);
}

// --- expr layer: bit-exact vs the eager kernels -----------------------------

TEST_F(Fusion, ExprBlasBitExactSerial) {
  set_backend(backend::serial);
  const index_t n = 1000;
  const auto hx = iota_vec(n, 1.0);
  const auto hy = iota_vec(n, -3.5);

  array<double> xe(hx), ye(hy), xf(hx), yf(hy);
  double dot_e = 0.0;
  double dot_f = 0.0;
  {
    const scoped_fuse sf(fuse_mode::none);
    jaccx::blas::jacc_axpy(n, 1.0 / 3.0, xe, ye);
    jaccx::blas::jacc_scal(n, 0.7, xe);
    jaccx::blas::jacc_copy(n, xe, ye);
    dot_e = jaccx::blas::jacc_dot(n, xe, ye);
  }
  {
    const scoped_fuse sf(fuse_mode::expr);
    jaccx::blas::jacc_axpy(n, 1.0 / 3.0, xf, yf);
    jaccx::blas::jacc_scal(n, 0.7, xf);
    jaccx::blas::jacc_copy(n, xf, yf);
    dot_f = jaccx::blas::jacc_dot(n, xf, yf);
  }
  EXPECT_EQ(dot_e, dot_f);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(xe.host_data()[i], xf.host_data()[i]) << i;
    EXPECT_EQ(ye.host_data()[i], yf.host_data()[i]) << i;
  }
}

TEST_F(Fusion, ExprBlas2dBitExactFullAndPrefix) {
  set_backend(backend::serial);
  const index_t rows = 24;
  const index_t cols = 17;
  const auto h = iota_vec(rows * cols, 2.0);

  // Full-extent: the fused flat sweep covers the same elements in the
  // same canonical order (idx = j*rows + i) as the eager 2-D launch.
  array2d<double> xe(h, rows, cols), ye(h, rows, cols);
  array2d<double> xf(h, rows, cols), yf(h, rows, cols);
  double de = 0.0;
  double df = 0.0;
  {
    const scoped_fuse sf(fuse_mode::none);
    jaccx::blas::jacc_axpy2d(rows, cols, -0.3, xe, ye);
    de = jaccx::blas::jacc_dot2d(rows, cols, xe, ye);
  }
  {
    const scoped_fuse sf(fuse_mode::expr);
    jaccx::blas::jacc_axpy2d(rows, cols, -0.3, xf, yf);
    df = jaccx::blas::jacc_dot2d(rows, cols, xf, yf);
  }
  EXPECT_EQ(de, df);
  for (index_t i = 0; i < rows * cols; ++i) {
    EXPECT_EQ(xe.host_data()[i], xf.host_data()[i]) << i;
  }

  // Prefix extents are not flat-contiguous: the expr path must decline
  // (fall back to the eager 2-D kernel) and stay correct.
  array2d<double> pe(h, rows, cols), pf(h, rows, cols);
  {
    const scoped_fuse sf(fuse_mode::none);
    jaccx::blas::jacc_axpy2d(rows - 3, cols - 2, 2.0, pe, ye);
  }
  {
    const scoped_fuse sf(fuse_mode::expr);
    jaccx::blas::jacc_axpy2d(rows - 3, cols - 2, 2.0, pf, yf);
  }
  for (index_t i = 0; i < rows * cols; ++i) {
    EXPECT_EQ(pe.host_data()[i], pf.host_data()[i]) << i;
  }
}

TEST_F(Fusion, ExprEvalDotMatchesUnfusedSweeps) {
  set_backend(backend::serial);
  const index_t n = 2048;
  const auto hr = iota_vec(n, 0.5);
  const auto hs = iota_vec(n, 1.5);
  const auto hx = iota_vec(n, -2.0);
  const auto hp = iota_vec(n, 3.0);
  const double alpha = 0.37;

  // Eager reference: x += alpha p; r -= alpha s; rr = r . r.
  array<double> re(hr), se(hs), xe(hx), pe(hp);
  parallel_for(n, axpy_k, alpha, xe, pe);
  parallel_for(n, axpy_k, -alpha, re, se);
  const double rr_e = parallel_reduce(
      n,
      [](index_t i, const array<double>& a, const array<double>& b) {
        return static_cast<double>(a[i]) * static_cast<double>(b[i]);
      },
      re, re);

  array<double> rf(hr), sf(hs), xf(hx), pf(hp);
  const double rr_f = eval_dot(
      "test.fused_update", n, ex(rf), ex(rf),
      assign(xf, ex(xf) + alpha * ex(pf)),
      assign(rf, ex(rf) + (-alpha) * ex(sf)));
  EXPECT_EQ(rr_e, rr_f);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(re.host_data()[i], rf.host_data()[i]) << i;
    EXPECT_EQ(xe.host_data()[i], xf.host_data()[i]) << i;
  }
}

TEST_F(Fusion, CgSolveExprBitExactSerialAndSim) {
  for (const backend be : {backend::serial, backend::cuda_a100}) {
    set_backend(be);
    const index_t n = 300;
    jaccx::cg::tridiag_system A(n);
    const std::vector<double> bh(static_cast<std::size_t>(n), 1.0);

    jaccx::cg::darray b1(bh), b2(bh);
    jaccx::cg::darray x1(n), x2(n);
    jaccx::cg::cg_result r1, r2;
    {
      const scoped_fuse sf(fuse_mode::none);
      r1 = jaccx::cg::cg_solve(A, b1, x1, {});
    }
    {
      const scoped_fuse sf(fuse_mode::expr);
      r2 = jaccx::cg::cg_solve(A, b2, x2, {});
    }
    EXPECT_TRUE(r1.converged);
    EXPECT_EQ(r1.iterations, r2.iterations) << to_string(be);
    EXPECT_EQ(r1.relative_residual, r2.relative_residual) << to_string(be);
    for (index_t i = 0; i < n; ++i) {
      EXPECT_EQ(x1.host_data()[i], x2.host_data()[i])
          << to_string(be) << " i=" << i;
    }
  }
}

TEST_F(Fusion, CgSolveExprThreadsNear) {
  set_backend(backend::threads);
  const index_t n = 400;
  jaccx::cg::tridiag_system A(n);
  const std::vector<double> bh(static_cast<std::size_t>(n), 1.0);

  jaccx::cg::darray b1(bh), b2(bh);
  jaccx::cg::darray x1(n), x2(n);
  jaccx::cg::cg_result r1, r2;
  {
    const scoped_fuse sf(fuse_mode::none);
    r1 = jaccx::cg::cg_solve(A, b1, x1, {});
  }
  {
    const scoped_fuse sf(fuse_mode::expr);
    r2 = jaccx::cg::cg_solve(A, b2, x2, {});
  }
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x1.host_data()[i], x2.host_data()[i], 1e-9) << i;
  }
}

TEST_F(Fusion, PaperIterationExprBitExactSerial) {
  set_backend(backend::serial);
  const index_t n = 512;
  jaccx::cg::paper_state se(n), sf(n);
  {
    const scoped_fuse none(fuse_mode::none);
    jaccx::cg::paper_iteration(se);
    jaccx::cg::paper_iteration(se);
  }
  {
    const scoped_fuse expr(fuse_mode::expr);
    jaccx::cg::paper_iteration(sf);
    jaccx::cg::paper_iteration(sf);
  }
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(se.r.host_data()[i], sf.r.host_data()[i]) << i;
    EXPECT_EQ(se.p.host_data()[i], sf.p.host_data()[i]) << i;
    EXPECT_EQ(se.x.host_data()[i], sf.x.host_data()[i]) << i;
    EXPECT_EQ(se.r_old.host_data()[i], sf.r_old.host_data()[i]) << i;
    EXPECT_EQ(se.r_aux.host_data()[i], sf.r_aux.host_data()[i]) << i;
  }
}

TEST_F(Fusion, ExprSimChargesLessDram) {
  // mi100: the smallest modeled cache (8 MiB), so 16 MiB vectors make
  // every sweep stream from DRAM — the same regime the bench measures at
  // n = 1<<22 (a larger cache would retain the working set between
  // kernels here and hide the chain traffic).
  set_backend(backend::hip_mi100);
  auto& dev = jaccx::sim::get_device("mi100");
  const index_t n = index_t{1} << 21;

  const auto chain_dram = [&](fuse_mode m) {
    const scoped_fuse sf(m);
    jaccx::cg::paper_state st(n);
    dev.tl().set_logging(false);
    dev.cache().reset();
    jaccx::cg::paper_iteration(st); // warm
    dev.reset_clock();
    dev.tl().set_logging(true);
    jaccx::cg::paper_iteration(st);
    std::uint64_t bytes = 0;
    for (const auto& e : dev.tl().events()) {
      if (e.kind == jaccx::sim::event_kind::kernel &&
          e.name.rfind("cg.", 0) == 0) {
        bytes += e.tally.dram_bytes;
      }
    }
    dev.reset_clock();
    return bytes;
  };

  const std::uint64_t eager = chain_dram(fuse_mode::none);
  const std::uint64_t fused = chain_dram(fuse_mode::expr);
  EXPECT_GT(eager, 0u);
  // The acceptance bar bench/abl_cg_fusion enforces per-arch.
  EXPECT_GE(static_cast<double>(eager), 1.5 * static_cast<double>(fused))
      << "eager=" << eager << " fused=" << fused;
}

// --- JACC_FUSE=none: the seed's charges, bit for bit ------------------------

TEST_F(Fusion, NoneModeMatchesSeedChargesExactly) {
  set_backend(backend::cuda_a100);
  auto& dev = jaccx::sim::get_device("a100");
  const index_t n = 4096;

  struct charge_log {
    std::vector<std::string> names;
    std::vector<std::uint64_t> dram;
    double clock_us = 0.0;
  };
  const auto run = [&](auto&& iter) {
    jaccx::cg::paper_state st(n);
    dev.tl().set_logging(false);
    dev.cache().reset();
    iter(st); // warm: pool and workspaces reach steady state
    dev.reset_clock();
    dev.tl().set_logging(true);
    iter(st);
    charge_log out;
    out.clock_us = dev.tl().now_us();
    for (const auto& e : dev.tl().events()) {
      out.names.push_back(e.name);
      out.dram.push_back(e.tally.dram_bytes);
    }
    dev.reset_clock();
    return out;
  };

  // The seed's exact Fig. 12 sequence, written out by hand.
  const auto seed = run([](jaccx::cg::paper_state& st) {
    const index_t nn = st.A.n;
    const hints dot_h{.name = "cg.dot", .flops_per_index = 2.0,
                      .bytes_per_index = 16.0};
    const hints axpy_h{.name = "cg.axpy", .flops_per_index = 2.0,
                       .bytes_per_index = 24.0};
    const hints copy_h{.name = "cg.copy", .bytes_per_index = 16.0};
    parallel_for(copy_h, nn, jaccx::cg::copy_kernel, st.r, st.r_old);
    st.A.apply(st.p, st.s);
    const double a0 =
        parallel_reduce(dot_h, nn, jaccx::blas::dot, st.r, st.r);
    const double a1 =
        parallel_reduce(dot_h, nn, jaccx::blas::dot, st.p, st.s);
    const double alpha = a0 / a1;
    parallel_for(axpy_h, nn, jaccx::blas::axpy, -alpha, st.r, st.s);
    parallel_for(axpy_h, nn, jaccx::blas::axpy, alpha, st.x, st.p);
    const double b0 =
        parallel_reduce(dot_h, nn, jaccx::blas::dot, st.r, st.r);
    const double b1 =
        parallel_reduce(dot_h, nn, jaccx::blas::dot, st.r_old, st.r_old);
    const double beta = b0 / b1;
    parallel_for(copy_h, nn, jaccx::cg::copy_kernel, st.r, st.r_aux);
    parallel_for(axpy_h, nn, jaccx::blas::axpy, beta, st.r_aux, st.p);
    parallel_for(copy_h, nn, jaccx::cg::copy_kernel, st.r_aux, st.p);
    const double cond =
        parallel_reduce(dot_h, nn, jaccx::blas::dot, st.r, st.r);
    static_cast<void>(cond);
  });

  const auto none = run([](jaccx::cg::paper_state& st) {
    const scoped_fuse sf(fuse_mode::none);
    jaccx::cg::paper_iteration(st);
  });

  ASSERT_EQ(seed.names.size(), none.names.size());
  for (std::size_t k = 0; k < seed.names.size(); ++k) {
    EXPECT_EQ(seed.names[k], none.names[k]) << "event " << k;
    EXPECT_EQ(seed.dram[k], none.dram[k]) << "event " << k;
  }
  EXPECT_DOUBLE_EQ(seed.clock_us, none.clock_us);
}

// --- graph chain fuser ------------------------------------------------------

TEST_F(Fusion, GraphFuserMergesAdjacentElementwise) {
  set_backend(backend::serial);
  const index_t n = 4096;
  const auto hx = iota_vec(n, 1.0);
  const auto hy = iota_vec(n, 0.5);
  const hints ew{.name = "f.axpy", .flops_per_index = 2.0,
                 .bytes_per_index = 24.0, .elementwise = true};

  // Eager reference.
  array<double> xe(hx), ye(hy);
  parallel_for(ew, n, axpy_k, 2.0, xe, ye);
  parallel_for(ew, n, axpy_k, 3.0, ye, xe);
  const std::vector<double> once_x = xe.to_host();
  parallel_for(ew, n, axpy_k, 2.0, xe, ye);
  parallel_for(ew, n, axpy_k, 3.0, ye, xe);

  array<double> x(hx), y(hy);
  const scoped_fuse sf(fuse_mode::graph);
  queue q("fuse.merge");
  q.begin_capture();
  parallel_for(q, ew, n, axpy_k, 2.0, x, y);
  parallel_for(q, ew, n, axpy_k, 3.0, y, x);
  graph g = q.end_capture();
  EXPECT_EQ(g.node_count(), 1u) << "adjacent elementwise pair must merge";

  g.launch(q);
  q.synchronize();
  EXPECT_EQ(x.to_host(), once_x);
  g.launch(q);
  q.synchronize();
  EXPECT_EQ(x.to_host(), xe.to_host());
  EXPECT_EQ(y.to_host(), ye.to_host());
}

TEST_F(Fusion, GraphFuserRequiresSameIndexSpace) {
  set_backend(backend::serial);
  const index_t n = 1024;
  array<double> x(iota_vec(n, 1.0)), y(iota_vec(n, 0.5));
  const hints ew{.name = "f.axpy", .flops_per_index = 2.0,
                 .bytes_per_index = 24.0, .elementwise = true};

  const scoped_fuse sf(fuse_mode::graph);
  queue q("fuse.mismatch");
  q.begin_capture();
  parallel_for(q, ew, n, axpy_k, 2.0, x, y);
  parallel_for(q, ew, n / 2, axpy_k, 3.0, x, y);
  graph g = q.end_capture();
  EXPECT_EQ(g.node_count(), 2u) << "different index spaces must not merge";
}

TEST_F(Fusion, GraphFuserRequiresElementwiseHint) {
  set_backend(backend::serial);
  const index_t n = 1024;
  array<double> x(iota_vec(n, 1.0)), y(iota_vec(n, 0.5));
  const hints ew{.name = "f.axpy", .flops_per_index = 2.0,
                 .bytes_per_index = 24.0, .elementwise = true};
  const hints plain{.name = "f.axpy", .flops_per_index = 2.0,
                    .bytes_per_index = 24.0};

  const scoped_fuse sf(fuse_mode::graph);
  queue q("fuse.hint");
  q.begin_capture();
  parallel_for(q, ew, n, axpy_k, 2.0, x, y);
  parallel_for(q, plain, n, axpy_k, 3.0, x, y);
  parallel_for(q, ew, n, axpy_k, 4.0, x, y);
  graph g = q.end_capture();
  EXPECT_EQ(g.node_count(), 3u)
      << "a non-elementwise node blocks the chain on both sides";
}

TEST_F(Fusion, GraphFuserWaitEdgeBlocksMerge) {
  set_backend(backend::serial);
  const index_t n = 1024;
  array<double> x(iota_vec(n, 1.0)), y(iota_vec(n, 0.5));
  array<double> z(iota_vec(n, 2.0)), w(iota_vec(n, 0.25));
  const hints ew{.name = "f.axpy", .flops_per_index = 2.0,
                 .bytes_per_index = 24.0, .elementwise = true};

  const scoped_fuse sf(fuse_mode::graph);
  queue qa("fuse.wa");
  queue qb("fuse.wb");
  capture_scope sc{&qa, &qb};
  parallel_for(qa, ew, n, axpy_k, 2.0, x, y);
  const event mid = qa.record();
  parallel_for(qa, ew, n, axpy_k, 3.0, x, y);
  qb.wait(mid);
  parallel_for(qb, ew, n, axpy_k, 4.0, z, w);
  graph g = sc.end();
  // qa's pair must NOT merge: qb's recorded edge targets the first node's
  // completion.  4 nodes: k1, k2, wait, k3.
  EXPECT_EQ(g.node_count(), 4u);
  const event done = g.launch(qa);
  done.wait();
  qa.synchronize();
  qb.synchronize();
}

TEST_F(Fusion, GraphFuserCrossQueueNodesNeverMerge) {
  set_backend(backend::serial);
  const index_t n = 1024;
  array<double> x(iota_vec(n, 1.0)), y(iota_vec(n, 0.5));
  array<double> z(iota_vec(n, 2.0)), w(iota_vec(n, 0.25));
  const hints ew{.name = "f.axpy", .flops_per_index = 2.0,
                 .bytes_per_index = 24.0, .elementwise = true};

  const scoped_fuse sf(fuse_mode::graph);
  queue qa("fuse.xa");
  queue qb("fuse.xb");
  capture_scope sc{&qa, &qb};
  parallel_for(qa, ew, n, axpy_k, 2.0, x, y);
  parallel_for(qb, ew, n, axpy_k, 3.0, z, w);
  graph g = sc.end();
  EXPECT_EQ(g.node_count(), 2u) << "different queues must not merge";
}

TEST_F(Fusion, GraphFuserOffByDefaultAndUnderNone) {
  set_backend(backend::serial);
  const index_t n = 1024;
  array<double> x(iota_vec(n, 1.0)), y(iota_vec(n, 0.5));
  const hints ew{.name = "f.axpy", .flops_per_index = 2.0,
                 .bytes_per_index = 24.0, .elementwise = true};

  const scoped_fuse sf(fuse_mode::none);
  queue q("fuse.none");
  q.begin_capture();
  parallel_for(q, ew, n, axpy_k, 2.0, x, y);
  parallel_for(q, ew, n, axpy_k, 3.0, x, y);
  graph g = q.end_capture();
  EXPECT_EQ(g.node_count(), 2u)
      << "JACC_FUSE=none keeps the seed node structure";
}

TEST_F(Fusion, GraphFuserThreadsReplayMatchesEager) {
  set_backend(backend::threads);
  const index_t n = 20'000;
  const auto hx = iota_vec(n, 1.0);
  const auto hy = iota_vec(n, 0.5);
  const hints ew{.name = "f.axpy", .flops_per_index = 2.0,
                 .bytes_per_index = 24.0, .elementwise = true};

  array<double> xe(hx), ye(hy);
  parallel_for(ew, n, axpy_k, 2.0, xe, ye);
  parallel_for(ew, n, axpy_k, 3.0, ye, xe);

  array<double> x(hx), y(hy);
  const scoped_fuse sf(fuse_mode::all);
  queue q("fuse.threads");
  q.begin_capture();
  parallel_for(q, ew, n, axpy_k, 2.0, x, y);
  parallel_for(q, ew, n, axpy_k, 3.0, y, x);
  graph g = q.end_capture();
  EXPECT_EQ(g.node_count(), 1u);
  g.launch(q);
  q.synchronize();
  EXPECT_EQ(x.to_host(), xe.to_host());
  EXPECT_EQ(y.to_host(), ye.to_host());
}

TEST_F(Fusion, CgGraphedFusedMatchesUnfusedSolve) {
  set_backend(backend::serial);
  const index_t n = 256;
  jaccx::cg::tridiag_system A(n);
  const std::vector<double> bh(static_cast<std::size_t>(n), 1.0);
  jaccx::cg::darray b1(bh), b2(bh);
  jaccx::cg::darray x1(n), x2(n);

  jaccx::cg::cg_result r1, r2;
  {
    const scoped_fuse sf(fuse_mode::none);
    r1 = jaccx::cg::cg_solve(A, b1, x1, {});
  }
  {
    // graph mode: cg_solve_graphed's captured axpy pair replays as one
    // fused node; iterates must stay bit-identical.
    const scoped_fuse sf(fuse_mode::graph);
    r2 = jaccx::cg::cg_solve_graphed(A, b2, x2, {});
  }
  EXPECT_TRUE(r1.converged);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(r1.relative_residual, r2.relative_residual);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(x1.host_data()[i], x2.host_data()[i]) << i;
  }
}

// --- captured scratch -------------------------------------------------------

TEST_F(Fusion, ScratchEagerRoundTrip) {
  set_backend(backend::serial);
  const index_t n = 512;
  array<double> x(iota_vec(n, 1.0)), out(n);
  {
    scratch<double> tmp(n);
    parallel_for(
        n,
        [](index_t i, const array<double>& in, scratch_view<double> t) {
          t[i] = 2.0 * static_cast<double>(in[i]);
        },
        x, tmp.view());
    parallel_for(
        n,
        [](index_t i, scratch_view<double> t, array<double>& o) {
          o[i] = static_cast<double>(t[i]) + 1.0;
        },
        tmp.view(), out);
  }
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(out.host_data()[i], 2.0 * x.host_data()[i] + 1.0) << i;
  }
}

TEST_F(Fusion, ScratchReplayHitsPoolOnly) {
  set_backend(backend::serial);
  const scoped_mode pooled(pool_mode::bucket);
  const index_t n = 512;
  array<double> x(iota_vec(n, 1.0)), out(n);

  queue q("fuse.scratch");
  q.begin_capture();
  scratch<double> tmp(q, n);
  parallel_for(
      q, n,
      [](index_t i, const array<double>& in, scratch_view<double> t) {
        t[i] = 2.0 * static_cast<double>(in[i]);
      },
      x, tmp.view());
  parallel_for(
      q, n,
      [](index_t i, scratch_view<double> t, array<double>& o) {
        o[i] = static_cast<double>(t[i]) + 1.0;
      },
      tmp.view(), out);
  tmp.release();
  graph g = q.end_capture();
  EXPECT_EQ(g.node_count(), 4u); // acquire, kernel, kernel, release

  const auto total_misses = [] {
    std::uint64_t m = 0;
    for (const auto& s : jaccx::mem::stats()) {
      m += s.misses;
    }
    return m;
  };

  g.launch(q); // warm replay: may miss once, then parks the block
  q.synchronize();
  const std::uint64_t warm = total_misses();
  for (int rep = 0; rep < 3; ++rep) {
    g.launch(q);
    q.synchronize();
  }
  EXPECT_EQ(total_misses(), warm)
      << "warm replays must be served entirely from the pool cache";
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(out.host_data()[i], 2.0 * x.host_data()[i] + 1.0) << i;
  }
}

TEST_F(Fusion, ScratchUnbalancedCaptureThrows) {
  set_backend(backend::serial);
  queue q("fuse.unbalanced");
  q.begin_capture();
  scratch<double> tmp(q, 64);
  EXPECT_THROW(static_cast<void>(q.end_capture()), jaccx::usage_error);
}

// --- pool LRU cap -----------------------------------------------------------

TEST_F(Fusion, MemTrimEmptiesCaches) {
  const scoped_mode pooled(pool_mode::bucket);
  jaccx::mem::trim(0);
  auto a = jaccx::mem::acquire(nullptr, 1000, "t");
  auto b = jaccx::mem::acquire(nullptr, 5000, "t");
  jaccx::mem::release(a);
  jaccx::mem::release(b);
  EXPECT_GT(jaccx::mem::cached_bytes(), 0u);
  jaccx::mem::trim(0);
  EXPECT_EQ(jaccx::mem::cached_bytes(), 0u);
}

TEST_F(Fusion, MemCapEvictsOldestReleasedFirst) {
  const scoped_mode pooled(pool_mode::bucket);
  jaccx::mem::trim(0);
  const jaccx::mem::scoped_cache_cap cap(768);

  auto a = jaccx::mem::acquire(nullptr, 256, "t");  // 256-B bucket
  auto b = jaccx::mem::acquire(nullptr, 512, "t");  // 512-B bucket
  auto c = jaccx::mem::acquire(nullptr, 200, "t");  // 256-B bucket
  jaccx::mem::release(a); // parked: 256
  jaccx::mem::release(b); // parked: 768 == cap, nothing evicted
  EXPECT_EQ(jaccx::mem::cached_bytes(), 768u);
  jaccx::mem::release(c); // 1024 > cap: evicts a (oldest), not b
  EXPECT_EQ(jaccx::mem::cached_bytes(), 768u);

  auto hit512 = jaccx::mem::acquire(nullptr, 512, "t");
  EXPECT_TRUE(hit512.from_cache) << "b survived (younger than a)";
  auto hit256 = jaccx::mem::acquire(nullptr, 256, "t");
  EXPECT_TRUE(hit256.from_cache) << "c survived (youngest)";
  auto miss256 = jaccx::mem::acquire(nullptr, 256, "t");
  EXPECT_FALSE(miss256.from_cache) << "a was evicted oldest-first";
  jaccx::mem::release(hit512);
  jaccx::mem::release(hit256);
  jaccx::mem::release(miss256);
  jaccx::mem::trim(0);
}

TEST_F(Fusion, MemUncappedKeepsEveryBlock) {
  const scoped_mode pooled(pool_mode::bucket);
  jaccx::mem::trim(0);
  ASSERT_EQ(jaccx::mem::cache_cap(), 0u) << "tests run uncapped by default";
  std::vector<jaccx::mem::block> blocks;
  for (int i = 0; i < 8; ++i) {
    blocks.push_back(jaccx::mem::acquire(nullptr, 1 << (8 + i), "t"));
  }
  for (auto& blk : blocks) {
    jaccx::mem::release(blk);
  }
  std::uint64_t expect = 0;
  for (int i = 0; i < 8; ++i) {
    expect += std::uint64_t{1} << (8 + i);
  }
  EXPECT_EQ(jaccx::mem::cached_bytes(), expect);
  jaccx::mem::trim(0);
}

} // namespace
} // namespace jacc
