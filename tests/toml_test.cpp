// Unit tests for the TOML-subset parser backing the preferences mechanism.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "toml/parser.hpp"

namespace jaccx::toml {
namespace {

TEST(Toml, ParsesTopLevelScalars) {
  const auto t = parse(R"(
name = "jacc"
threads = 64
ratio = 1.5
fast = true
slow = false
)");
  EXPECT_EQ(find_string(t, "name"), "jacc");
  EXPECT_EQ(find_int(t, "threads"), 64);
  EXPECT_EQ(find_float(t, "ratio"), 1.5);
  EXPECT_EQ(find_bool(t, "fast"), true);
  EXPECT_EQ(find_bool(t, "slow"), false);
}

TEST(Toml, ParsesTables) {
  const auto t = parse(R"(
[JACC]
backend = "cuda"

[JACC.tuning]
block = 256
)");
  EXPECT_EQ(find_string(t, "JACC.backend"), "cuda");
  EXPECT_EQ(find_int(t, "JACC.tuning.block"), 256);
}

TEST(Toml, DottedKeysCreateNestedTables) {
  const auto t = parse("a.b.c = 3\n");
  EXPECT_EQ(find_int(t, "a.b.c"), 3);
  EXPECT_FALSE(find_int(t, "a.b").has_value());
}

TEST(Toml, CommentsAndBlankLines) {
  const auto t = parse(R"(
# full-line comment
key = 1  # trailing comment

other = 2
)");
  EXPECT_EQ(find_int(t, "key"), 1);
  EXPECT_EQ(find_int(t, "other"), 2);
}

TEST(Toml, UnderscoreDigitSeparators) {
  const auto t = parse("size = 1_000_000\n");
  EXPECT_EQ(find_int(t, "size"), 1000000);
}

TEST(Toml, NegativeAndExponentNumbers) {
  const auto t = parse("a = -42\nb = 2.5e3\nc = -1.25\n");
  EXPECT_EQ(find_int(t, "a"), -42);
  EXPECT_EQ(find_float(t, "b"), 2500.0);
  EXPECT_EQ(find_float(t, "c"), -1.25);
}

TEST(Toml, FloatLookupAcceptsInt) {
  const auto t = parse("n = 3\n");
  EXPECT_EQ(find_float(t, "n"), 3.0);
  EXPECT_EQ(find_int(t, "n"), 3);
}

TEST(Toml, StringEscapes) {
  const auto t = parse(R"(s = "a\tb\nc\"d\\e")"
                       "\n");
  EXPECT_EQ(find_string(t, "s"), "a\tb\nc\"d\\e");
}

TEST(Toml, Arrays) {
  const auto t = parse("xs = [1, 2, 3]\nys = [\"a\", \"b\"]\nempty = []\n");
  const auto xs = find(t, "xs");
  ASSERT_TRUE(xs && xs->is_array());
  ASSERT_EQ(xs->as_array().size(), 3u);
  EXPECT_EQ(xs->as_array()[2].as_int(), 3);
  const auto ys = find(t, "ys");
  ASSERT_TRUE(ys && ys->is_array());
  EXPECT_EQ(ys->as_array()[0].as_string(), "a");
  const auto empty = find(t, "empty");
  ASSERT_TRUE(empty && empty->is_array());
  EXPECT_TRUE(empty->as_array().empty());
}

TEST(Toml, MultilineArraysWithTrailingComma) {
  const auto t = parse(R"(xs = [
  1,
  2,  # comment
]
)");
  ASSERT_TRUE(find(t, "xs").has_value());
  EXPECT_EQ(find(t, "xs")->as_array().size(), 2u);
}

TEST(Toml, QuotedKeys) {
  const auto t = parse("\"weird key\" = 1\n");
  EXPECT_EQ(find_int(t, "weird key"), 1);
}

TEST(Toml, MissingLookupsReturnNullopt) {
  const auto t = parse("[A]\nx = 1\n");
  EXPECT_FALSE(find(t, "B").has_value());
  EXPECT_FALSE(find(t, "A.y").has_value());
  EXPECT_FALSE(find(t, "A.x.z").has_value());
  EXPECT_FALSE(find_string(t, "A.x").has_value()); // wrong type
}

TEST(TomlErrors, DuplicateKey) {
  EXPECT_THROW(parse("a = 1\na = 2\n"), config_error);
}

TEST(TomlErrors, MissingEquals) {
  EXPECT_THROW(parse("key 1\n"), config_error);
}

TEST(TomlErrors, UnterminatedString) {
  EXPECT_THROW(parse("s = \"abc\n"), config_error);
}

TEST(TomlErrors, UnterminatedArray) {
  EXPECT_THROW(parse("xs = [1, 2\n"), config_error);
}

TEST(TomlErrors, UnclosedTableHeader) {
  EXPECT_THROW(parse("[JACC\n"), config_error);
}

TEST(TomlErrors, ArraysOfTablesRejected) {
  EXPECT_THROW(parse("[[points]]\nx = 1\n"), config_error);
}

TEST(TomlErrors, TrailingGarbage) {
  EXPECT_THROW(parse("a = 1 nonsense\n"), config_error);
}

TEST(TomlErrors, HeaderCollidesWithScalar) {
  EXPECT_THROW(parse("a = 1\n[a]\nb = 2\n"), config_error);
}

TEST(TomlErrors, ReportsLineNumber) {
  try {
    parse("ok = 1\nbad =\n");
    FAIL() << "expected config_error";
  } catch (const config_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(TomlErrors, MissingFile) {
  EXPECT_THROW(parse_file("/nonexistent/prefs.toml"), config_error);
}

TEST(Toml, ValueTypePredicates) {
  value v(std::int64_t{3});
  EXPECT_TRUE(v.is_int());
  EXPECT_FALSE(v.is_float());
  EXPECT_THROW(v.as_string(), usage_error);
  value s("text");
  EXPECT_TRUE(s.is_string());
  EXPECT_THROW(s.as_int(), usage_error);
}

} // namespace
} // namespace jaccx::toml
