// Tests for jacc::queue / jacc::event: default-queue equivalence with the
// synchronous model, per-queue sim streams and their overlap, cross-queue
// event ordering, stream-ordered memory-pool reuse, and the threads-backend
// async lanes (also the TSan stress target; see scripts/verify.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/jacc.hpp"
#include "mem/pool.hpp"
#include "sim/device.hpp"

namespace jacc {
namespace {

void axpy(index_t i, double alpha, const array<double>& x, array<double>& y) {
  y[i] = y[i] + alpha * x[i];
}

double dot_term(index_t i, const array<double>& x, const array<double>& y) {
  return x[i] * y[i];
}

std::vector<double> iota_vec(index_t n, double start) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = start + static_cast<double>(i);
  }
  return v;
}

class QueueTest : public ::testing::Test {
protected:
  void SetUp() override { saved_ = current_backend(); }
  void TearDown() override { set_backend(saved_); }
  backend saved_ = backend::threads;
};

// --- default-queue == synchronous model -------------------------------------

TEST_F(QueueTest, DefaultQueueIsIdZero) {
  EXPECT_EQ(queue::default_queue().id(), 0u);
  EXPECT_TRUE(queue::default_queue().is_default());
  queue q;
  EXPECT_GE(q.id(), 1u);
  EXPECT_FALSE(q.is_default());
}

TEST_F(QueueTest, DefaultQueueBitExactWithSyncCall) {
  set_backend(backend::threads);
  const index_t n = 10'000;
  const auto hx = iota_vec(n, 1.0);
  const auto hy = iota_vec(n, 0.5);

  array<double> x1(hx), y1(hy);
  parallel_for(n, axpy, 2.0, x1, y1);

  array<double> x2(hx), y2(hy);
  const event e = parallel_for(queue::default_queue(), n, axpy, 2.0, x2, y2);
  EXPECT_TRUE(e.complete());
  EXPECT_FALSE(e.valid()); // sync model: no shared state minted

  EXPECT_EQ(y1.to_host(), y2.to_host()); // bit-exact
}

TEST_F(QueueTest, DefaultQueueSimChargesMatchSyncCharges) {
  // The acceptance bar: a default-queue run reproduces the seed's simulated
  // time bit-for-bit.  Run under JACC_MEM_POOL=none in verify.sh too.
  set_backend(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  const index_t n = 1 << 16;
  const auto hx = iota_vec(n, 1.0);

  // Warm the mem pool so both measured runs see identical hit patterns.
  {
    array<double> x(hx), y(hx);
    parallel_for(n, axpy, 2.0, x, y);
  }

  dev.reset_clock();
  {
    array<double> x(hx), y(hx);
    parallel_for(n, axpy, 2.0, x, y);
    std::vector<double> out(static_cast<std::size_t>(n));
    y.copy_to_host(out.data());
  }
  const double sync_us = dev.tl().now_us();

  dev.reset_clock();
  {
    queue& q0 = queue::default_queue();
    array<double> x(hx), y(hx);
    parallel_for(q0, n, axpy, 2.0, x, y);
    std::vector<double> out(static_cast<std::size_t>(n));
    y.copy_to_host(q0, out.data());
  }
  const double queued_us = dev.tl().now_us();

  EXPECT_DOUBLE_EQ(sync_us, queued_us);
  dev.reset_clock();
}

TEST_F(QueueTest, DefaultQueueReduceMatchesSyncReduce) {
  set_backend(backend::threads);
  const index_t n = 4096;
  array<double> x(iota_vec(n, 1.0)), y(iota_vec(n, 2.0));
  const double direct = parallel_reduce(n, dot_term, x, y);
  const double queued =
      parallel_reduce(queue::default_queue(), n, dot_term, x, y);
  EXPECT_DOUBLE_EQ(direct, queued);
}

// --- simulated back ends: per-queue streams ---------------------------------

TEST_F(QueueTest, UserQueueChargesLandOnItsStreamNotTheDeviceClock) {
  set_backend(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  dev.reset_clock();

  array<double> x(iota_vec(1 << 14, 1.0)), y(iota_vec(1 << 14, 0.0));
  const double dev_before = dev.tl().now_us();

  queue q;
  const event e = parallel_for(q, 1 << 14, axpy, 3.0, x, y);
  EXPECT_TRUE(e.complete()); // sim ops execute functionally at enqueue
  EXPECT_TRUE(e.valid());
  EXPECT_GT(e.sim_time_us(), 0.0);

  // The kernel charge advanced the queue's stream, not the device clock.
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), dev_before);
  EXPECT_GE(q.now_us(), e.sim_time_us());

  // Results are still visible immediately (functional execution):
  // y[1] = y0[1] + 3 * x[1] = 1.0 + 3 * 2.0.
  EXPECT_DOUBLE_EQ(y.host_data()[1], 7.0);

  q.synchronize(); // folds the stream into the device clock
  EXPECT_GE(dev.tl().now_us(), e.sim_time_us());
  dev.reset_clock();
}

TEST_F(QueueTest, TwoQueuesOverlapInSimulatedTime) {
  set_backend(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  const index_t n = 1 << 16;
  const auto host = iota_vec(n, 1.0);
  const hints h{.name = "queue_test.kernel", .flops_per_index = 4000.0};

  // Same data in both runs; construction charges are excluded by resetting
  // the clock after the uploads.
  array<double> a(host), b(host), c(host), d(host);

  // Serial: both kernels on the default clock.
  dev.reset_clock();
  parallel_for(h, n, axpy, 2.0, a, b);
  parallel_for(h, n, axpy, 2.0, c, d);
  const double serial_us = dev.tl().now_us();

  // Two queues: kernels charge independent streams and overlap.
  dev.reset_clock();
  {
    queue q1, q2;
    parallel_for(q1, h, n, axpy, 2.0, a, b);
    parallel_for(q2, h, n, axpy, 2.0, c, d);
    synchronize();
  }
  const double overlapped_us = dev.tl().now_us();

  EXPECT_LT(overlapped_us, serial_us * 0.75);
  EXPECT_GT(overlapped_us, serial_us * 0.40); // can't beat perfect 2x
  dev.reset_clock();
}

TEST_F(QueueTest, CrossQueueEventOrdering) {
  set_backend(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  dev.reset_clock();

  const index_t n = 1 << 14;
  array<double> x(iota_vec(n, 1.0)), y(iota_vec(n, 0.0));
  const hints h{.name = "queue_test.dep", .flops_per_index = 2000.0};

  queue producer, consumer;
  const event e = parallel_for(producer, h, n, axpy, 1.0, x, y);
  ASSERT_TRUE(e.valid());

  // Before the wait the consumer's clock is behind the producer's event.
  EXPECT_LT(consumer.now_us(), e.sim_time_us());
  consumer.wait(e);
  // After it, nothing enqueued on `consumer` can start before e completed.
  EXPECT_GE(consumer.now_us(), e.sim_time_us());

  const event after = parallel_for(consumer, h, n, axpy, 1.0, x, y);
  EXPECT_GE(after.sim_time_us(), e.sim_time_us());

  synchronize();
  dev.reset_clock();
}

TEST_F(QueueTest, WaitOnCompleteOrNullEventIsNoOp) {
  queue q;
  q.wait(event{}); // null event
  set_backend(backend::threads);
  array<double> a(8);
  const event sync_e = parallel_for(queue::default_queue(), 8,
                                    [](index_t i, array<double>& v) {
                                      v[i] = 1.0;
                                    },
                                    a);
  q.wait(sync_e); // born-complete event
  q.synchronize();
}

TEST_F(QueueTest, QueueScopeRoutesSyncCallsThroughTheQueue) {
  set_backend(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  dev.reset_clock();

  const index_t n = 1 << 12;
  array<double> x(iota_vec(n, 1.0)), y(iota_vec(n, 0.0));
  const double dev_before = dev.tl().now_us();

  queue q;
  {
    queue_scope scope(q);
    parallel_for(n, axpy, 2.0, x, y); // plain sync call, redirected
  }
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), dev_before); // charged to q's stream
  EXPECT_GT(q.now_us(), dev_before);
  EXPECT_DOUBLE_EQ(y.host_data()[0], 2.0);

  q.synchronize();
  dev.reset_clock();
}

TEST_F(QueueTest, QueuedReduceIsQueueOrderedButHostBlocking) {
  set_backend(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  dev.reset_clock();

  const index_t n = 4096;
  array<double> x(iota_vec(n, 1.0)), y(iota_vec(n, 1.0));
  const double direct = parallel_reduce(n, dot_term, x, y);

  queue q;
  const double before = q.now_us();
  const double queued = parallel_reduce(q, n, dot_term, x, y);
  EXPECT_DOUBLE_EQ(direct, queued);
  EXPECT_GT(q.now_us(), before); // charges landed on the queue's stream

  q.synchronize();
  dev.reset_clock();
}

TEST_F(QueueTest, AsyncArrayCopiesChargeTheQueueStream) {
  set_backend(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  dev.reset_clock();

  const index_t n = 1 << 14;
  const auto host = iota_vec(n, 1.0);
  std::vector<double> out(static_cast<std::size_t>(n));

  array<double> a(n);
  const double dev_before = dev.tl().now_us();

  queue q;
  const event up = a.copy_from_host(q, host.data());
  const event down = a.copy_to_host(q, out.data());
  EXPECT_TRUE(up.valid());
  EXPECT_TRUE(down.valid());
  EXPECT_GE(down.sim_time_us(), up.sim_time_us()); // in-order queue
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), dev_before);
  EXPECT_EQ(out, host);

  q.synchronize();
  dev.reset_clock();
}

// --- stream-ordered memory pool ----------------------------------------------

TEST_F(QueueTest, StreamOrderedPoolReuseAcrossQueuesRecordsStall) {
  if (jaccx::mem::mode() != jaccx::mem::pool_mode::bucket) {
    GTEST_SKIP() << "pool disabled (JACC_MEM_POOL=none)";
  }
  set_backend(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  dev.reset_clock();

  const index_t n = 1 << 15;
  const auto host = iota_vec(n, 1.0);
  const hints h{.name = "queue_test.pool", .flops_per_index = 3000.0};
  const auto stalls_before = [&] {
    for (const auto& s : jaccx::mem::stats()) {
      if (s.label == "a100") {
        return s.stalls;
      }
    }
    return std::uint64_t{0};
  }();

  queue q1, q2;
  {
    // q1 releases its scratch at a late stream time...
    queue_scope scope(q1);
    array<double> scratch(host);
    parallel_for(h, n, axpy, 2.0, scratch, scratch);
  }
  {
    // ...q2 (clock at 0) acquires the same bucket without a sync: the pool
    // hands the block over and charges the implicit wait on q2.
    queue_scope scope(q2);
    array<double> reuse(host);
    parallel_for(h, n, axpy, 2.0, reuse, reuse);
  }
  const auto stalls_after = [&] {
    for (const auto& s : jaccx::mem::stats()) {
      if (s.label == "a100") {
        return s.stalls;
      }
    }
    return std::uint64_t{0};
  }();
  EXPECT_GT(stalls_after, stalls_before);
  // The implicit sync ordered q2 at/after q1's release point.
  EXPECT_GE(q2.now_us(), 0.0);

  synchronize();
  dev.reset_clock();
}

TEST_F(QueueTest, SameQueuePoolReuseDoesNotStall) {
  if (jaccx::mem::mode() != jaccx::mem::pool_mode::bucket) {
    GTEST_SKIP() << "pool disabled (JACC_MEM_POOL=none)";
  }
  set_backend(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  dev.reset_clock();

  const index_t n = 1 << 15;
  const auto host = iota_vec(n, 1.0);
  const auto stalls_of = [&] {
    for (const auto& s : jaccx::mem::stats()) {
      if (s.label == "a100") {
        return s.stalls;
      }
    }
    return std::uint64_t{0};
  };

  queue q;
  {
    // Primer: adopts whatever block is cached (possibly stalling once) and
    // releases it back tagged with q's id.
    queue_scope scope(q);
    array<double> primer(host);
  }
  const auto before = stalls_of();
  {
    queue_scope scope(q);
    array<double> second(host); // same bucket, same queue: plain LIFO hit
  }
  EXPECT_EQ(stalls_of(), before);

  synchronize();
  dev.reset_clock();
}

// --- threads back end: async lanes -------------------------------------------

TEST_F(QueueTest, LanePolicyResolvesFromEnv) {
  // Pure policy (the installed lane count is fixed per process).
  ::setenv("JACC_QUEUES", "8", 1);
  EXPECT_EQ(resolve_queue_lanes(16), 8);
  ::setenv("JACC_QUEUES", "1", 1);
  EXPECT_EQ(resolve_queue_lanes(16), 1);
  ::setenv("JACC_QUEUES", "500", 1);
  EXPECT_EQ(resolve_queue_lanes(128), 64); // absolute ceiling
  // Pool-width clamp: a lane needs a worker to be a lane, so JACC_QUEUES
  // beyond the pool width must not build width-one oversubscribed lanes.
  EXPECT_EQ(resolve_queue_lanes(16), 16);
  ::setenv("JACC_QUEUES", "64", 1);
  EXPECT_EQ(resolve_queue_lanes(8), 8);
  // ...except the floor of two: forcing minimal asynchrony must keep
  // working on a single-core machine (the CI/TSan JACC_QUEUES=2 legs).
  EXPECT_EQ(resolve_queue_lanes(1), 2);
  ::setenv("JACC_QUEUES", "2", 1);
  EXPECT_EQ(resolve_queue_lanes(1), 2);
  ::unsetenv("JACC_QUEUES");
  EXPECT_EQ(resolve_queue_lanes(16), 2); // width heuristic
  EXPECT_EQ(resolve_queue_lanes(2), 1);  // narrow: sync degradation
}

TEST_F(QueueTest, ThreadsQueueRunsWorkAndCompletes) {
  set_backend(backend::threads);
  const index_t n = 50'000;
  const auto hx = iota_vec(n, 1.0);
  const auto hy = iota_vec(n, 0.5);

  array<double> xs(hx), ys(hy);
  parallel_for(n, axpy, 2.0, xs, ys);
  const auto expect = ys.to_host();

  array<double> x(hx), y(hy);
  queue q;
  const event e = parallel_for(q, n, axpy, 2.0, x, y);
  e.wait();
  EXPECT_TRUE(e.complete());
  q.synchronize();
  EXPECT_EQ(y.to_host(), expect);
}

TEST_F(QueueTest, QueuedLaunchCopiesTemporaryHintName) {
  // The hint name is captured as an owned string: a name whose storage dies
  // right after the enqueue must not dangle when the lane task (and its
  // profiler scope) runs later.  Sanitizer legs catch the use-after-free.
  set_backend(backend::threads);
  const index_t n = 20'000;
  const auto hx = iota_vec(n, 1.0);
  const auto hy = iota_vec(n, 0.5);

  array<double> xs(hx), ys(hy);
  parallel_for(n, axpy, 2.0, xs, ys);
  const auto expect = ys.to_host();

  array<double> x(hx), y(hy);
  queue q;
  event e;
  {
    std::string name = "queue_test.temporary_name_";
    name += std::to_string(n);
    e = parallel_for(q, hints{.name = name}, n, axpy, 2.0, x, y);
    name.assign(name.size(), 'x'); // scribble, then destroy, the storage
  }
  e.wait();
  q.synchronize();
  EXPECT_EQ(y.to_host(), expect);
}

TEST_F(QueueTest, ThreadsQueueKeepsSubmissionOrder) {
  set_backend(backend::threads);
  const index_t n = 1000;
  array<double> a(std::vector<double>(static_cast<std::size_t>(n), 0.0));

  queue q;
  // Each step depends on the previous one; any reordering breaks the sum.
  for (int step = 0; step < 8; ++step) {
    parallel_for(q, n, [](index_t i, array<double>& v) { v[i] = v[i] + 1.0; },
                 a);
  }
  q.synchronize();
  for (index_t i = 0; i < n; i += 97) {
    EXPECT_DOUBLE_EQ(a.host_data()[i], 8.0);
  }
}

TEST_F(QueueTest, ThreadsQueuedReduceReturnsCorrectValue) {
  set_backend(backend::threads);
  const index_t n = 8192;
  array<double> x(iota_vec(n, 1.0)), y(iota_vec(n, 1.0));
  const double direct = parallel_reduce(n, dot_term, x, y);
  queue q;
  EXPECT_DOUBLE_EQ(parallel_reduce(q, n, dot_term, x, y), direct);
  q.synchronize();
}

TEST_F(QueueTest, TwoQueuesStressFromTwoHostThreads) {
  // The TSan target: two host threads driving two queues (and the shared
  // registry/lanes) concurrently.  Correctness check is per-queue ordering.
  set_backend(backend::threads);
  const index_t n = 20'000;
  constexpr int steps = 16;

  auto worker = [n](array<double>& a) {
    queue q;
    for (int s = 0; s < steps; ++s) {
      parallel_for(q, n,
                   [](index_t i, array<double>& v) { v[i] = v[i] + 1.0; }, a);
    }
    q.synchronize();
  };

  array<double> a(std::vector<double>(static_cast<std::size_t>(n), 0.0));
  array<double> b(std::vector<double>(static_cast<std::size_t>(n), 0.0));
  std::thread ta([&] { worker(a); });
  std::thread tb([&] { worker(b); });
  ta.join();
  tb.join();

  for (index_t i = 0; i < n; i += 101) {
    EXPECT_DOUBLE_EQ(a.host_data()[i], static_cast<double>(steps));
    EXPECT_DOUBLE_EQ(b.host_data()[i], static_cast<double>(steps));
  }
}

TEST_F(QueueTest, GlobalSynchronizeCoversAllQueues) {
  set_backend(backend::threads);
  const index_t n = 10'000;
  array<double> a(std::vector<double>(static_cast<std::size_t>(n), 0.0));
  array<double> b(std::vector<double>(static_cast<std::size_t>(n), 0.0));

  queue q1, q2;
  parallel_for(q1, n, [](index_t i, array<double>& v) { v[i] = 1.0; }, a);
  parallel_for(q2, n, [](index_t i, array<double>& v) { v[i] = 2.0; }, b);
  synchronize(); // all queues
  EXPECT_DOUBLE_EQ(a.host_data()[n - 1], 1.0);
  EXPECT_DOUBLE_EQ(b.host_data()[n - 1], 2.0);
}

// --- overlap acceptance (deterministic, simulated) ---------------------------

TEST_F(QueueTest, FourQueuePipelineBeatsSingleQueue) {
  // Miniature of bench/abl_queue_overlap: chunked h2d+kernel+d2h pipeline,
  // 4 queues vs 1, on the a100 model.  Transfers serialize on the shared
  // link; compute overlaps them, so 4 queues must win clearly.
  set_backend(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  const index_t chunk = 1 << 15;
  const int chunks = 8;
  const auto host = iota_vec(chunk, 1.0);
  // Kernel cost a bit above the three per-chunk transfers on the a100 link
  // (~81us vs ~66us): the link calendar serializes copies across queues, so
  // the kernel must be large enough for other queues' transfers to hide
  // under it (same regime as bench/abl_queue_overlap).
  const hints h{.name = "queue_test.pipeline", .flops_per_index = 24'000.0};

  const auto run = [&](int nqueues) {
    dev.reset_clock();
    dev.cache().reset();
    std::vector<queue> queues(static_cast<std::size_t>(nqueues));
    std::vector<double> out(static_cast<std::size_t>(chunk));
    for (int c = 0; c < chunks; ++c) {
      queue& q = queues[static_cast<std::size_t>(c % nqueues)];
      array<double> x(chunk), y(chunk);
      x.copy_from_host(q, host.data());
      y.copy_from_host(q, host.data());
      parallel_for(q, h, chunk, axpy, 2.0, x, y);
      y.copy_to_host(q, out.data());
    }
    synchronize();
    const double wall = dev.tl().now_us();
    dev.reset_clock();
    return wall;
  };

  const double one_q = run(1);
  const double four_q = run(4);
  EXPECT_LT(four_q, one_q / 1.3) << "expected >= 1.3x overlap win";
}

// --- non-blocking reductions (jacc::future) ----------------------------------

TEST_F(QueueTest, EmptyFutureIsInvalidAndBornReady) {
  future<double> f;
  EXPECT_FALSE(f.valid());
  EXPECT_TRUE(f.ready());
  EXPECT_FALSE(f.done().valid());
  EXPECT_DOUBLE_EQ(f.sim_time_us(), 0.0);
}

TEST_F(QueueTest, FutureGetBitExactWithSyncReduceOnSim) {
  set_backend(backend::cuda_a100);
  const index_t n = 1 << 15;
  const auto hx = iota_vec(n, 1.0);
  const auto hy = iota_vec(n, 0.25);
  const hints h{.name = "queue_test.dot"};

  array<double> x1(hx), y1(hy);
  const double sync = parallel_reduce(h, n, dot_term, x1, y1);

  array<double> x2(hx), y2(hy);
  queue q;
  future<double> f = q.parallel_reduce(h, n, dot_term, x2, y2);
  EXPECT_TRUE(f.valid());
  EXPECT_TRUE(f.ready()); // sim backends compute at enqueue
  EXPECT_GT(f.sim_time_us(), 0.0);
  EXPECT_EQ(f.get(), sync); // same reduction tree: bit-exact
  EXPECT_EQ(f.get(), sync); // get() is repeatable
}

TEST_F(QueueTest, FutureGetMatchesSyncReduceOnThreads) {
  set_backend(backend::threads);
  const index_t n = 10'000;
  // Integer-valued terms with an exactly representable sum: any reduction
  // association gives the identical double, so EXPECT_EQ is safe even if
  // the lane pool is narrower than the main pool.
  const auto hx = iota_vec(n, 1.0);
  const auto hy = iota_vec(n, 2.0);

  array<double> x1(hx), y1(hy);
  const double sync = parallel_reduce(n, dot_term, x1, y1);

  array<double> x2(hx), y2(hy);
  queue q;
  auto f = q.parallel_reduce(n, dot_term, x2, y2);
  EXPECT_TRUE(f.valid());
  const double async_val = f.get();
  EXPECT_TRUE(f.ready()); // get() implies complete
  EXPECT_EQ(async_val, sync);
}

TEST_F(QueueTest, DefaultQueueReduceReturnsReadyFuture) {
  set_backend(backend::threads);
  const index_t n = 4096;
  const auto hx = iota_vec(n, 1.0);
  array<double> x(hx), y(hx);
  auto f = queue::default_queue().parallel_reduce(n, dot_term, x, y);
  EXPECT_TRUE(f.valid());
  EXPECT_TRUE(f.ready()); // synchronous model: complete on return
  array<double> x2(hx), y2(hx);
  EXPECT_EQ(f.get(), parallel_reduce(n, dot_term, x2, y2));
}

TEST_F(QueueTest, WaitOnFutureOrdersCrossQueueSimWork) {
  set_backend(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  dev.reset_clock();
  const index_t n = 1 << 14;
  const auto hx = iota_vec(n, 1.0);
  array<double> x(hx), y(hx);
  queue qp("qt.producer"), qc("qt.consumer");
  auto f = qp.parallel_reduce(
      hints{.name = "qt.dot", .flops_per_index = 2000.0}, n, dot_term, x, y);
  EXPECT_GT(f.sim_time_us(), 0.0);
  qc.wait(f); // q.wait(future) = q.wait(future.done())
  const event after = qc.record();
  EXPECT_GE(after.sim_time_us(), f.sim_time_us());
  dev.reset_clock();
}

// --- destruction races (TSan stress targets; see scripts/verify.sh) ----------

TEST_F(QueueTest, FutureOutlivesItsQueue) {
  set_backend(backend::threads);
  const index_t n = 50'000;
  const auto hx = iota_vec(n, 1.0);
  array<double> x(hx), y(hx);
  future<double> f;
  {
    queue q;
    f = q.parallel_reduce(n, dot_term, x, y);
  } // last queue handle dropped; the future still owns slot + event
  array<double> x2(hx), y2(hx);
  EXPECT_EQ(f.get(), parallel_reduce(n, dot_term, x2, y2));
}

TEST_F(QueueTest, LastHandleDroppedWithInFlightWork) {
  set_backend(backend::threads);
  const index_t n = 100'000;
  array<double> a(std::vector<double>(static_cast<std::size_t>(n), 0.0));
  {
    queue q;
    for (int step = 0; step < 8; ++step) {
      parallel_for(
          q, n, [](index_t i, array<double>& v) { v[i] = v[i] + 1.0; }, a);
    }
  } // destructor must neither lose nor race the in-flight chain
  synchronize();
  EXPECT_DOUBLE_EQ(a.host_data()[0], 8.0);
  EXPECT_DOUBLE_EQ(a.host_data()[n - 1], 8.0);
}

TEST_F(QueueTest, SynchronizeConcurrentWithQueueCreation) {
  set_backend(backend::threads);
  const index_t n = 20'000;
  std::atomic<bool> stop{false};
  std::thread syncer([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      synchronize();
    }
  });
  for (int round = 0; round < 50; ++round) {
    queue q;
    array<double> v(std::vector<double>(static_cast<std::size_t>(n), 0.0));
    parallel_for(
        q, n, [](index_t i, array<double>& a) { a[i] = 1.0; }, v);
    q.synchronize();
    EXPECT_DOUBLE_EQ(v.host_data()[n - 1], 1.0);
  }
  stop.store(true, std::memory_order_relaxed);
  syncer.join();
}

// --- lane re-initialization --------------------------------------------------

TEST_F(QueueTest, QueueSurvivesLaneReinitCycle) {
  set_backend(backend::threads);
  const char* old_env = std::getenv("JACC_QUEUES");
  const std::string saved_env = old_env != nullptr ? old_env : "";
  const index_t n = 10'000;
  {
    array<double> v(std::vector<double>(static_cast<std::size_t>(n), 0.0));
    queue q; // handle created under the initial lane layout
    parallel_for(
        q, n, [](index_t i, array<double>& a) { a[i] = a[i] + 1.0; }, v);
    q.synchronize();

    ::setenv("JACC_QUEUES", "1", 1);
    initialize(); // quiesces lanes and re-reads the lane policy
    set_backend(backend::threads);
    EXPECT_EQ(queue_lane_count(), 1);
    // The surviving handle's cached lane index is stale; its next
    // submission must re-resolve against the new layout, not index a
    // drained lane.
    parallel_for(
        q, n, [](index_t i, array<double>& a) { a[i] = a[i] + 1.0; }, v);
    q.synchronize();

    ::setenv("JACC_QUEUES", "2", 1);
    initialize();
    set_backend(backend::threads);
    EXPECT_EQ(queue_lane_count(), 2);
    parallel_for(
        q, n, [](index_t i, array<double>& a) { a[i] = a[i] + 1.0; }, v);
    q.synchronize();

    EXPECT_DOUBLE_EQ(v.host_data()[0], 3.0);
    EXPECT_DOUBLE_EQ(v.host_data()[n - 1], 3.0);
  }
  if (old_env != nullptr) {
    ::setenv("JACC_QUEUES", saved_env.c_str(), 1);
  } else {
    ::unsetenv("JACC_QUEUES");
  }
  initialize();
}

} // namespace
} // namespace jacc
