// Unit tests for the support layer: views, buffers, partitioning, env,
// errors.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <vector>

#include "support/aligned_buffer.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/span2d.hpp"
#include "support/stopwatch.hpp"
#include "threadpool/partition.hpp"

namespace jaccx {
namespace {

TEST(Span2d, ColumnMajorLayout) {
  std::vector<double> data(6);
  std::iota(data.begin(), data.end(), 0.0); // 0..5
  span2d<double> v(data.data(), 2, 3);      // 2 rows, 3 cols
  // (i, j) -> data[i + j*rows]
  EXPECT_EQ(v(0, 0), 0.0);
  EXPECT_EQ(v(1, 0), 1.0);
  EXPECT_EQ(v(0, 1), 2.0);
  EXPECT_EQ(v(1, 2), 5.0);
}

TEST(Span2d, ColumnPointerIsContiguous) {
  std::vector<int> data(12, 0);
  span2d<int> v(data.data(), 3, 4);
  EXPECT_EQ(v.column(2), data.data() + 6);
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v.cols(), 4);
  EXPECT_EQ(v.size(), 12);
}

TEST(Span2d, WritesLandInBackingStore) {
  std::vector<double> data(4, 0.0);
  span2d<double> v(data.data(), 2, 2);
  v(1, 1) = 7.0;
  EXPECT_EQ(data[3], 7.0);
}

TEST(Span3d, ColumnMajorLayout) {
  std::vector<int> data(24);
  std::iota(data.begin(), data.end(), 0);
  span3d<int> v(data.data(), 2, 3, 4);
  EXPECT_EQ(v(0, 0, 0), 0);
  EXPECT_EQ(v(1, 0, 0), 1);
  EXPECT_EQ(v(0, 1, 0), 2);
  EXPECT_EQ(v(0, 0, 1), 6);
  EXPECT_EQ(v(1, 2, 3), 23);
}

TEST(AlignedBuffer, RespectsAlignment) {
  aligned_buffer<double> buf(33, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
  EXPECT_EQ(buf.size(), 33u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  aligned_buffer<int> a(8);
  a[0] = 42;
  int* p = a.data();
  aligned_buffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, MoveAssignReleasesOld) {
  aligned_buffer<int> a(8);
  aligned_buffer<int> b(4);
  b = std::move(a);
  EXPECT_EQ(b.size(), 8u);
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, EmptyIsValid) {
  aligned_buffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(Partition, StaticChunkCoversRangeExactly) {
  for (index_t n : {0, 1, 7, 64, 1000, 1023}) {
    for (index_t parts : {1, 2, 7, 64}) {
      index_t covered = 0;
      index_t prev_end = 0;
      for (index_t w = 0; w < parts; ++w) {
        const auto r = pool::static_chunk(n, parts, w);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_GE(r.size(), 0);
        covered += r.size();
        prev_end = r.end;
      }
      EXPECT_EQ(covered, n) << "n=" << n << " parts=" << parts;
    }
  }
}

TEST(Partition, StaticChunkBalanced) {
  // Sizes differ by at most one.
  const index_t n = 103;
  const index_t parts = 10;
  index_t lo = n;
  index_t hi = 0;
  for (index_t w = 0; w < parts; ++w) {
    const auto s = pool::static_chunk(n, parts, w).size();
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(Partition, GrainChunks) {
  EXPECT_EQ(pool::chunk_count(10, 3), 4);
  EXPECT_EQ(pool::chunk_count(9, 3), 3);
  EXPECT_EQ(pool::chunk_count(0, 3), 0);
  const auto r = pool::grain_chunk(10, 3, 3);
  EXPECT_EQ(r.begin, 9);
  EXPECT_EQ(r.end, 10);
}

TEST(Env, ReadsSetVariable) {
  ::setenv("JACCX_TEST_ENV", "hello", 1);
  EXPECT_EQ(get_env("JACCX_TEST_ENV"), "hello");
  ::unsetenv("JACCX_TEST_ENV");
  EXPECT_FALSE(get_env("JACCX_TEST_ENV").has_value());
}

TEST(Env, ParsesLong) {
  ::setenv("JACCX_TEST_ENV", "42", 1);
  EXPECT_EQ(get_env_long("JACCX_TEST_ENV"), 42);
  ::setenv("JACCX_TEST_ENV", "nope", 1);
  EXPECT_FALSE(get_env_long("JACCX_TEST_ENV").has_value());
  ::unsetenv("JACCX_TEST_ENV");
}

TEST(Error, ThrowHelpersCarryMessage) {
  EXPECT_THROW(
      {
        try {
          throw_config_error("bad config");
        } catch (const config_error& e) {
          EXPECT_STREQ(e.what(), "bad config");
          throw;
        }
      },
      config_error);
  EXPECT_THROW(throw_usage_error("bad usage"), usage_error);
}

TEST(Stopwatch, AdvancesMonotonically) {
  stopwatch sw;
  const auto a = sw.elapsed_ns();
  const auto b = sw.elapsed_ns();
  EXPECT_GE(b, a);
  sw.reset();
  EXPECT_GE(sw.elapsed_ns(), 0);
}

} // namespace
} // namespace jaccx
