// Unit tests for simulated device memory: buffers, spans, tracked proxies.
#include <gtest/gtest.h>

#include <vector>

#include "sim/memspace.hpp"

namespace jaccx::sim {
namespace {

device_model gpu_model() {
  device_model m;
  m.name = "memtest";
  m.kind = device_kind::gpu;
  m.dram_bw_gbps = 1000.0;
  m.cache_bw_gbps = 4000.0;
  m.cache_bytes = 1 << 16;
  m.cache_line_bytes = 64;
  m.cache_assoc = 8;
  m.launch_overhead_us = 1.0;
  m.alloc_overhead_us = 1.0;
  m.xfer_bw_gbps = 10.0;
  m.xfer_latency_us = 5.0;
  return m;
}

TEST(DeviceBuffer, AllocationChargesTimeAndBytes) {
  device dev(gpu_model());
  device_buffer<double> buf(dev, 100, "b");
  EXPECT_EQ(buf.size(), 100);
  EXPECT_EQ(buf.bytes(), 800u);
  EXPECT_EQ(dev.bytes_live(), 800u);
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), 1.0);
}

TEST(DeviceBuffer, DestructionReleasesBytes) {
  device dev(gpu_model());
  {
    device_buffer<double> buf(dev, 10);
    EXPECT_EQ(dev.bytes_live(), 80u);
  }
  EXPECT_EQ(dev.bytes_live(), 0u);
}

TEST(DeviceBuffer, MoveDoesNotDoubleFree) {
  device dev(gpu_model());
  device_buffer<double> a(dev, 10);
  device_buffer<double> b(std::move(a));
  EXPECT_EQ(b.size(), 10);
  EXPECT_EQ(dev.bytes_live(), 80u);
  device_buffer<double> c(dev, 4);
  c = std::move(b);
  EXPECT_EQ(dev.bytes_live(), 80u); // the 4-element buffer was released
  EXPECT_EQ(c.size(), 10);
}

TEST(DeviceBuffer, HostRoundTrip) {
  device dev(gpu_model());
  std::vector<double> host = {1, 2, 3, 4};
  device_buffer<double> buf(dev, 4);
  const double before = dev.tl().now_us();
  buf.copy_from_host(host.data());
  EXPECT_GT(dev.tl().now_us(), before + 4.9); // at least the latency
  std::vector<double> out(4, 0.0);
  buf.copy_to_host(out.data());
  EXPECT_EQ(out, host);
}

TEST(DeviceBuffer, FillUntrackedIsFree) {
  device dev(gpu_model());
  device_buffer<double> buf(dev, 16);
  const double before = dev.tl().now_us();
  buf.fill_untracked(3.5);
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), before);
  EXPECT_DOUBLE_EQ(buf.data()[7], 3.5);
}

TEST(DeviceSpan, ProxyReadsAndWritesValue) {
  device dev(gpu_model());
  device_buffer<double> buf(dev, 8);
  buf.fill_untracked(2.0);
  auto s = buf.span();
  s[3] = 5.0;
  EXPECT_DOUBLE_EQ(s.raw(3), 5.0);
  const double v = s[3];
  EXPECT_DOUBLE_EQ(v, 5.0);
  s[3] += 1.5;
  EXPECT_DOUBLE_EQ(s.raw(3), 6.5);
  s[3] -= 0.5;
  s[3] *= 2.0;
  s[3] /= 3.0;
  EXPECT_DOUBLE_EQ(s.raw(3), 4.0);
}

TEST(DeviceSpan, AccessesTrackedOnlyDuringLaunch) {
  device dev(gpu_model());
  device_buffer<double> buf(dev, 8);
  auto s = buf.span();
  s[0] = 1.0; // outside launch: untracked
  dev.begin_launch();
  s[0] = 2.0;
  const double v = s[0];
  static_cast<void>(v);
  const auto t = dev.end_launch("k", launch_flavor{}, 1, 0.0, 1);
  // One line fill (first write) + one in-line hit (read).
  EXPECT_EQ(t.dram_bytes, 64u);
  EXPECT_EQ(t.cache_bytes, 8u);
}

TEST(DeviceSpan, CompoundAssignCountsReadAndWrite) {
  device dev(gpu_model());
  device_buffer<double> buf(dev, 8);
  auto s = buf.span();
  dev.begin_launch();
  s[0] += 1.0; // read + write = 2 accesses, second hits the line
  const auto t = dev.end_launch("k", launch_flavor{}, 1, 0.0, 1);
  EXPECT_EQ(t.dram_bytes, 64u);
  EXPECT_EQ(t.cache_bytes, 8u);
}

TEST(DeviceSpan2d, ColumnMajorAndTracked) {
  device dev(gpu_model());
  device_buffer<double> buf(dev, 6);
  buf.fill_untracked(0.0);
  auto s = buf.span2d(2, 3);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.cols(), 3);
  s(1, 2) = 9.0;
  EXPECT_DOUBLE_EQ(buf.data()[5], 9.0); // i + j*rows = 1 + 2*2
  EXPECT_DOUBLE_EQ(s.raw(1, 2), 9.0);
}

TEST(DeviceRef, ProxyAssignFromProxy) {
  device dev(gpu_model());
  device_buffer<double> buf(dev, 4);
  buf.fill_untracked(0.0);
  auto s = buf.span();
  s[0] = 7.0;
  s[1] = s[0]; // proxy = proxy
  EXPECT_DOUBLE_EQ(s.raw(1), 7.0);
}

} // namespace
} // namespace jaccx::sim
