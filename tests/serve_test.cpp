// jaccx::serve scheduler invariants under contention (docs/SERVING.md):
// fair-share dispatch (no tenant starved at 2/4/8 tenants), strict
// priority ordering, admission deferral + completion after memory pressure
// clears, graph-replay jobs interleaved with eager jobs, overload
// rejection, per-tenant sim streams, and lane re-resolution across
// initialize() mid-serving.  Suite name "ServeTest" is the verify.sh /
// ci.yml filter (including the TSan leg: the scheduler's dispatch loop
// and the job handles are a genuine multi-threaded surface).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/jacc.hpp"
#include "mem/pool.hpp"
#include "serve/serve.hpp"

namespace jacc {
namespace {

using jaccx::serve::job_handle;
using jaccx::serve::job_status;
using jaccx::serve::options;
using jaccx::serve::priority;
using jaccx::serve::scheduler;

void bump(index_t i, array<double>& a) { a[i] = a[i] + 1.0; }

/// Spin until the job leaves the queued state (bounded).
void wait_until_running(const job_handle& h) {
  for (int spins = 0; spins < 20000; ++spins) {
    if (h.status() == job_status::running || h.terminal()) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  FAIL() << "job never started";
}

class ServeTest : public ::testing::Test {
protected:
  void SetUp() override { saved_ = current_backend(); }
  void TearDown() override { set_backend(saved_); }
  backend saved_ = backend::threads;
};

TEST_F(ServeTest, SlotsResolveFromEnvAndOptions) {
  set_backend(backend::serial);
  ::setenv("JACC_SERVE_SLOTS", "3", 1);
  {
    scheduler sched;
    EXPECT_EQ(sched.slots(), 3);
  }
  {
    // Explicit options beat the environment.
    scheduler sched(options{.slots = 2});
    EXPECT_EQ(sched.slots(), 2);
  }
  ::unsetenv("JACC_SERVE_SLOTS");
}

TEST_F(ServeTest, FairShareNoTenantStarved) {
  set_backend(backend::serial);
  const index_t n = 20'000;
  for (const int tenants : {2, 4, 8}) {
    scheduler sched(options{.slots = 2});
    std::vector<jaccx::serve::tenant> ts;
    for (int t = 0; t < tenants; ++t) {
      ts.push_back(sched.open_tenant("t" + std::to_string(t)));
    }
    std::mutex order_mu;
    std::vector<int> order; // tenant index per completion, append order
    constexpr int jobs_per_tenant = 6;
    for (int j = 0; j < jobs_per_tenant; ++j) {
      for (int t = 0; t < tenants; ++t) {
        sched.submit(ts[static_cast<std::size_t>(t)], [&, t](queue& q) {
          array<double> v(std::vector<double>(static_cast<std::size_t>(n),
                                              0.0));
          parallel_for(q, n, bump, v);
          q.synchronize();
          const std::lock_guard lock(order_mu);
          order.push_back(t);
        });
      }
    }
    sched.drain();
    const auto stats = sched.stats();
    ASSERT_EQ(stats.tenants.size(), static_cast<std::size_t>(tenants));
    for (const auto& row : stats.tenants) {
      EXPECT_EQ(row.completed, static_cast<std::uint64_t>(jobs_per_tenant))
          << row.name;
      EXPECT_EQ(row.failed, 0u) << row.name;
    }
    // Weighted fair queueing with equal weights interleaves: every tenant
    // must appear within the first 2*T completions — a starved tenant
    // would sit at the back until the others finished everything.
    const std::size_t window =
        std::min(order.size(), static_cast<std::size_t>(2 * tenants));
    std::vector<bool> seen(static_cast<std::size_t>(tenants), false);
    for (std::size_t i = 0; i < window; ++i) {
      seen[static_cast<std::size_t>(order[i])] = true;
    }
    for (int t = 0; t < tenants; ++t) {
      EXPECT_TRUE(seen[static_cast<std::size_t>(t)])
          << "tenant " << t << " starved at T=" << tenants;
    }
  }
}

TEST_F(ServeTest, PriorityClassesDispatchStrictlyOrdered) {
  set_backend(backend::serial);
  scheduler sched(options{.slots = 1}); // one worker: dispatch order == run order
  auto blocker_t = sched.open_tenant("blocker");
  auto low = sched.open_tenant("low", 1.0, priority::low);
  auto high = sched.open_tenant("high", 1.0, priority::high);

  std::atomic<bool> gate{false};
  std::mutex order_mu;
  std::vector<std::string> order;
  const auto logged = [&](const char* tag) {
    return [&, tag](queue&) {
      const std::lock_guard lock(order_mu);
      order.emplace_back(tag);
    };
  };

  const job_handle b = sched.submit(blocker_t, [&](queue&) {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  wait_until_running(b);
  // Low-class jobs are submitted FIRST; the later high-class jobs must
  // still dispatch before every one of them.
  for (int i = 0; i < 3; ++i) {
    sched.submit(low, logged("low"));
  }
  for (int i = 0; i < 3; ++i) {
    sched.submit(high, logged("high"));
  }
  gate.store(true, std::memory_order_release);
  sched.drain();

  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(order[i], "high") << i;
  }
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_EQ(order[i], "low") << i;
  }
}

TEST_F(ServeTest, AdmissionDefersUnderBudgetThenCompletes) {
  set_backend(backend::serial);
  const jaccx::mem::scoped_mode pooled(jaccx::mem::pool_mode::bucket);
  jaccx::mem::drain();
  const std::uint64_t baseline =
      jaccx::mem::live_bytes() + jaccx::mem::cached_bytes();
  constexpr std::uint64_t hint = 2u << 20;
  scheduler sched(
      options{.slots = 1, .mem_budget_bytes = baseline + 3 * (1u << 20)});
  auto t = sched.open_tenant("greedy");

  std::atomic<bool> gate{false};
  const index_t n = (1 << 20) / sizeof(double); // a 1 MiB pooled block
  const auto body = [&](queue& q) {
    array<double> v(std::vector<double>(static_cast<std::size_t>(n), 0.0));
    parallel_for(q, n, bump, v);
    q.synchronize();
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  };

  const job_handle first = sched.submit(t, body, hint);
  wait_until_running(first);
  std::vector<job_handle> rest;
  for (int i = 0; i < 3; ++i) {
    rest.push_back(sched.submit(t, body, hint));
  }
  // With 2 MiB hinted in flight against a 3 MiB budget, every later job
  // must be parked by admission control, not queued.
  for (const job_handle& h : rest) {
    EXPECT_EQ(h.status(), job_status::deferred);
  }
  gate.store(true, std::memory_order_release);
  sched.drain();

  EXPECT_FALSE(first.was_deferred());
  for (const job_handle& h : rest) {
    EXPECT_EQ(h.status(), job_status::done) << h.error();
    EXPECT_TRUE(h.was_deferred());
  }
  const auto stats = sched.stats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].completed, 4u);
  EXPECT_EQ(stats.tenants[0].deferred, 3u);
  EXPECT_EQ(stats.tenants[0].deferred_admitted, 3u);
  jaccx::mem::drain();
}

TEST_F(ServeTest, RejectsBeyondMaxPending) {
  set_backend(backend::serial);
  scheduler sched(options{.slots = 1, .max_pending = 2});
  auto t = sched.open_tenant("bursty");
  std::atomic<bool> gate{false};
  const job_handle blocker = sched.submit(t, [&](queue&) {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  wait_until_running(blocker);
  const job_handle a = sched.submit(t, [](queue&) {});
  const job_handle b = sched.submit(t, [](queue&) {});
  const job_handle shed = sched.submit(t, [](queue&) {});
  EXPECT_EQ(shed.status(), job_status::rejected);
  EXPECT_TRUE(shed.terminal());
  gate.store(true, std::memory_order_release);
  sched.drain();
  EXPECT_EQ(a.status(), job_status::done);
  EXPECT_EQ(b.status(), job_status::done);
  const auto stats = sched.stats();
  EXPECT_EQ(stats.tenants[0].rejected, 1u);
  EXPECT_EQ(stats.tenants[0].completed, 3u);
}

TEST_F(ServeTest, JobExceptionsAreCapturedNotFatal) {
  set_backend(backend::serial);
  scheduler sched(options{.slots = 1});
  auto t = sched.open_tenant("flaky");
  const job_handle bad = sched.submit(
      t, [](queue&) { throw std::runtime_error("boom"); });
  const job_handle good = sched.submit(t, [](queue&) {});
  sched.drain();
  EXPECT_EQ(bad.status(), job_status::failed);
  EXPECT_EQ(bad.error(), "boom");
  EXPECT_EQ(good.status(), job_status::done);
  const auto stats = sched.stats();
  EXPECT_EQ(stats.tenants[0].failed, 1u);
  EXPECT_EQ(stats.tenants[0].completed, 1u);
}

TEST_F(ServeTest, GraphReplayJobsInterleaveWithEagerJobs) {
  set_backend(backend::serial);
  const index_t n = 10'000;
  constexpr int jobs = 4;
  // Graph-tenant arrays and graphs live for the whole batch (one graph per
  // submission: one replay of a given graph at a time).  Captured kernels
  // hold move-only args (jacc::array) by reference, so the arrays must
  // stay at stable addresses until the last replay: reserve before
  // capturing anything.
  std::vector<array<double>> gv;
  std::vector<graph> graphs;
  gv.reserve(jobs);
  graphs.reserve(jobs);
  for (int j = 0; j < jobs; ++j) {
    gv.emplace_back(std::vector<double>(static_cast<std::size_t>(n), 0.0));
    queue qc;
    qc.begin_capture();
    parallel_for(qc, n, bump, gv.back());
    parallel_for(qc, n, bump, gv.back());
    graphs.push_back(qc.end_capture());
  }
  std::vector<array<double>> ev;
  for (int j = 0; j < jobs; ++j) {
    ev.emplace_back(std::vector<double>(static_cast<std::size_t>(n), 0.0));
  }

  scheduler sched(options{.slots = 2});
  auto replayer = sched.open_tenant("replayer");
  auto eager = sched.open_tenant("eager");
  for (int j = 0; j < jobs; ++j) {
    sched.submit(replayer, graphs[static_cast<std::size_t>(j)]);
    sched.submit(eager, [&, j](queue& q) {
      parallel_for(q, n, bump, ev[static_cast<std::size_t>(j)]);
      q.synchronize();
    });
  }
  sched.drain();

  const auto stats = sched.stats();
  for (const auto& row : stats.tenants) {
    EXPECT_EQ(row.completed, static_cast<std::uint64_t>(jobs)) << row.name;
    EXPECT_EQ(row.failed, 0u) << row.name;
  }
  for (int j = 0; j < jobs; ++j) {
    EXPECT_DOUBLE_EQ(gv[static_cast<std::size_t>(j)].to_host()[0], 2.0) << j;
    EXPECT_DOUBLE_EQ(ev[static_cast<std::size_t>(j)].to_host()[0], 1.0) << j;
  }
}

TEST_F(ServeTest, SimTenantsLandOnPerTenantSlotStreams) {
  set_backend(backend::cuda_a100);
  const index_t n = 4'096;
  constexpr int jobs = 3;
  scheduler sched(options{.slots = 4});
  EXPECT_EQ(sched.workers(), 1); // sim devices: one runner, many streams
  auto t0 = sched.open_tenant("sim0");
  auto t1 = sched.open_tenant("sim1");
  std::vector<array<double>> vs;
  for (int j = 0; j < 2 * jobs; ++j) {
    vs.emplace_back(std::vector<double>(static_cast<std::size_t>(n), 0.0));
  }
  for (int j = 0; j < jobs; ++j) {
    sched.submit(t0, [&, j](queue& q) {
      parallel_for(q, n, bump, vs[static_cast<std::size_t>(2 * j)]);
    });
    sched.submit(t1, [&, j](queue& q) {
      parallel_for(q, n, bump, vs[static_cast<std::size_t>(2 * j + 1)]);
    });
  }
  sched.drain();
  const auto stats = sched.stats();
  // Tenant index mod slots pins each tenant to its own sim stream.
  ASSERT_GE(stats.slots.size(), 2u);
  EXPECT_EQ(stats.slots[0].jobs, static_cast<std::uint64_t>(jobs));
  EXPECT_EQ(stats.slots[1].jobs, static_cast<std::uint64_t>(jobs));
  for (const auto& v : vs) {
    EXPECT_DOUBLE_EQ(v.to_host()[n - 1], 1.0);
  }
}

TEST_F(ServeTest, LaneReresolutionAcrossInitializeMidServing) {
  set_backend(backend::threads);
  const char* old_env = std::getenv("JACC_QUEUES");
  const std::string saved_env = old_env != nullptr ? old_env : "";
  const index_t n = 10'000;

  {
    scheduler sched(options{.slots = 2});
    auto t = sched.open_tenant("survivor");
    const auto batch = [&] {
      std::vector<array<double>> vs;
      for (int j = 0; j < 4; ++j) {
        vs.emplace_back(
            std::vector<double>(static_cast<std::size_t>(n), 0.0));
      }
      std::vector<job_handle> hs;
      for (int j = 0; j < 4; ++j) {
        hs.push_back(sched.submit(t, [&, j](queue& q) {
          parallel_for(q, n, bump, vs[static_cast<std::size_t>(j)]);
          q.synchronize();
        }));
      }
      sched.drain();
      for (const auto& h : hs) {
        EXPECT_EQ(h.status(), job_status::done) << h.error();
      }
      for (const auto& v : vs) {
        EXPECT_DOUBLE_EQ(v.to_host()[0], 1.0);
      }
    };

    batch(); // under the initial lane layout

    // Re-initialize mid-serving: lanes are quiesced and the policy
    // re-read; the scheduler's idle worker queues must re-resolve their
    // lanes on the next submission instead of indexing drained ones.
    ::setenv("JACC_QUEUES", "2", 1);
    initialize();
    set_backend(backend::threads);
    batch();

    ::setenv("JACC_QUEUES", "1", 1);
    initialize();
    set_backend(backend::threads);
    batch(); // degraded to the synchronous path mid-serving
  }

  if (!saved_env.empty()) {
    ::setenv("JACC_QUEUES", saved_env.c_str(), 1);
  } else {
    ::unsetenv("JACC_QUEUES");
  }
  initialize();
}

} // namespace
} // namespace jacc
