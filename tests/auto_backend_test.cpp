// Tests for the sKokkos-style transparent device selection, the KA 2D
// ndrange, and the level-2 GEMV extension.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "blas/jacc_blas.hpp"
#include "core/auto_backend.hpp"
#include "ka/ka.hpp"

namespace {

using jacc::backend;
using jacc::index_t;
using jacc::workload;

TEST(AutoBackend, PredictionsArePositiveAndFinite) {
  const workload w{.indices = 1 << 16, .bytes_per_index = 16.0,
                   .flops_per_index = 2.0};
  for (backend b : jacc::auto_candidates()) {
    const double us = jacc::predict_us(b, w);
    EXPECT_GT(us, 0.0);
    EXPECT_LT(us, 1e9);
  }
}

TEST(AutoBackend, NodeSelectionFindsTheDotCrossover) {
  // Paper Sec. V-A1: the CPU wins small DOTs against the AMD GPU, the GPU
  // wins large ones; the selector must flip between the two.
  const auto dot_wl = [](index_t n) {
    return workload{.indices = n, .bytes_per_index = 16.0,
                    .flops_per_index = 2.0, .is_reduce = true};
  };
  EXPECT_EQ(jacc::auto_select_node(backend::hip_mi100, dot_wl(1 << 12)),
            backend::cpu_rome);
  EXPECT_EQ(jacc::auto_select_node(backend::hip_mi100, dot_wl(1 << 22)),
            backend::hip_mi100);
}

TEST(AutoBackend, LargeStreamingKernelsGoToTheGpu) {
  const workload axpy{.indices = 1 << 22, .bytes_per_index = 16.0,
                      .flops_per_index = 2.0};
  for (backend gpu : {backend::cuda_a100, backend::hip_mi100,
                      backend::oneapi_max1550}) {
    EXPECT_EQ(jacc::auto_select_node(gpu, axpy), gpu);
  }
}

TEST(AutoBackend, NodeSelectionRejectsNonGpuTargets) {
  EXPECT_THROW(jacc::auto_select_node(backend::threads, workload{}),
               jaccx::usage_error);
  EXPECT_THROW(jacc::auto_select_node(backend::cpu_rome, workload{}),
               jaccx::usage_error);
}

TEST(AutoBackend, GlobalSelectionMatchesMinimumPrediction) {
  const workload w{.indices = 1 << 20, .bytes_per_index = 16.0,
                   .flops_per_index = 2.0};
  const backend chosen = jacc::auto_select(w);
  const double chosen_us = jacc::predict_us(chosen, w);
  for (backend b : jacc::auto_candidates()) {
    EXPECT_LE(chosen_us, jacc::predict_us(b, w) + 1e-9);
  }
}

TEST(AutoBackend, PredictionTracksSimulatedReality) {
  // For the backends the model drives directly, prediction and measurement
  // must agree within a factor ~2 (the prediction skips cache effects).
  const index_t n = 1 << 20;
  const workload axpy{.indices = n, .bytes_per_index = 16.0,
                      .flops_per_index = 2.0};
  jacc::scoped_backend sb(backend::cuda_a100);
  auto* dev = jacc::backend_device(backend::cuda_a100);
  std::vector<double> host(static_cast<std::size_t>(n), 1.0);
  jacc::array<double> x(host), y(host);
  dev->reset_clock();
  dev->cache().reset();
  jaccx::blas::jacc_axpy(n, 2.0, x, y);
  const double measured = dev->tl().now_us();
  const double predicted = jacc::predict_us(backend::cuda_a100, axpy);
  EXPECT_GT(predicted, measured * 0.5);
  EXPECT_LT(predicted, measured * 2.0);
}

TEST(AutoBackend, UseAutoBackendInstallsTheChoice) {
  const backend saved = jacc::current_backend();
  const workload w{.indices = 1 << 22, .bytes_per_index = 16.0};
  const backend chosen = jacc::use_auto_backend(w);
  EXPECT_EQ(jacc::current_backend(), chosen);
  jacc::set_backend(saved);
}

// --- KA 2D -------------------------------------------------------------------

class Ka2dAllBackends : public ::testing::TestWithParam<backend> {};

TEST_P(Ka2dAllBackends, CoversEveryCellOnce) {
  const auto be = jaccx::ka::get_backend(GetParam());
  const index_t rows = 37;
  const index_t cols = 21;
  std::vector<int> hits(static_cast<std::size_t>(rows * cols), 0);
  jaccx::ka::run2d(be, 8, rows, cols,
                   [&hits, rows](index_t i, index_t j) {
                     hits[static_cast<std::size_t>(i + j * rows)]++;
                   });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(Ka2d, RejectsOversizedGroups) {
  const auto be = jaccx::ka::get_backend(backend::cuda_a100);
  EXPECT_THROW(jaccx::ka::run2d(be, 64, 128, 128, [](index_t, index_t) {}),
               jaccx::usage_error); // 64*64 > 1024 threads
  EXPECT_THROW(jaccx::ka::run2d(be, 0, 8, 8, [](index_t, index_t) {}),
               jaccx::usage_error);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, Ka2dAllBackends,
                         ::testing::ValuesIn(jacc::all_backends),
                         [](const auto& info) {
                           return std::string(jacc::to_string(info.param));
                         });

// --- GEMV --------------------------------------------------------------------

class GemvAllBackends : public ::testing::TestWithParam<backend> {
protected:
  void SetUp() override { jacc::set_backend(GetParam()); }
  void TearDown() override { jacc::set_backend(backend::threads); }
};

TEST_P(GemvAllBackends, MatchesHostReference) {
  using jaccx::blas::darray;
  using jaccx::blas::darray2d;
  const index_t rows = 33;
  const index_t cols = 17;
  std::vector<double> ah(static_cast<std::size_t>(rows * cols));
  std::iota(ah.begin(), ah.end(), 1.0);
  std::vector<double> xh(static_cast<std::size_t>(cols));
  std::iota(xh.begin(), xh.end(), 0.5);
  std::vector<double> yh(static_cast<std::size_t>(rows), 2.0);

  darray2d a(ah, rows, cols);
  darray x(xh);
  darray y(yh);
  jaccx::blas::jacc_gemv(rows, cols, 1.5, a, x, 0.25, y);

  for (index_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (index_t j = 0; j < cols; ++j) {
      acc += ah[static_cast<std::size_t>(i + j * rows)] *
             xh[static_cast<std::size_t>(j)];
    }
    const double want = 0.25 * 2.0 + 1.5 * acc;
    EXPECT_NEAR(y.host_data()[i], want, 1e-9 * std::abs(want)) << i;
  }
}

TEST_P(GemvAllBackends, IdentityMatrixActsAsCopy) {
  using jaccx::blas::darray;
  using jaccx::blas::darray2d;
  const index_t n = 24;
  std::vector<double> eye(static_cast<std::size_t>(n * n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    eye[static_cast<std::size_t>(i + i * n)] = 1.0;
  }
  std::vector<double> xh(static_cast<std::size_t>(n));
  std::iota(xh.begin(), xh.end(), 3.0);
  darray2d a(eye, n, n);
  darray x(xh);
  darray y(n);
  jaccx::blas::jacc_gemv(n, n, 1.0, a, x, 0.0, y);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(y.host_data()[i], xh[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, GemvAllBackends,
                         ::testing::ValuesIn(jacc::all_backends),
                         [](const auto& info) {
                           return std::string(jacc::to_string(info.param));
                         });

} // namespace
