// Tests for simulated streams: clock independence, scoping, join semantics,
// and the classic transfer/compute overlap win.
#include <gtest/gtest.h>

#include <vector>

#include "sim/launch.hpp"
#include "sim/stream.hpp"

namespace jaccx::sim {
namespace {

device_model gpu_model() {
  device_model m;
  m.name = "stream_test_gpu";
  m.kind = device_kind::gpu;
  m.parallel_units = 8;
  m.max_threads_per_block = 256;
  m.shared_mem_per_block = 16 * 1024;
  m.dram_bw_gbps = 1000.0;
  m.cache_bw_gbps = 4000.0;
  m.cache_bytes = 1 << 18;
  m.cache_line_bytes = 64;
  m.cache_assoc = 8;
  m.launch_overhead_us = 2.0;
  m.per_block_overhead_ns = 0.0;
  m.alloc_overhead_us = 0.0;
  m.xfer_bw_gbps = 10.0;
  m.xfer_latency_us = 5.0;
  return m;
}

void empty_kernel_on(device& dev) {
  launch_config cfg;
  cfg.block = dim3{32};
  cfg.grid = dim3{1};
  launch(dev, cfg, [](kernel_ctx&) {});
}

TEST(Stream, ScopedChargesLandOnTheStream) {
  device dev(gpu_model());
  stream s(dev);
  {
    stream_scope in(s);
    empty_kernel_on(dev);
  }
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), 0.0); // device clock untouched
  EXPECT_DOUBLE_EQ(s.now_us(), 2.0);        // launch overhead on the stream
}

TEST(Stream, ScopeRestoresDefaultTarget) {
  device dev(gpu_model());
  stream s(dev);
  {
    stream_scope in(s);
  }
  empty_kernel_on(dev);
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), 2.0);
  EXPECT_DOUBLE_EQ(s.now_us(), 0.0);
}

TEST(Stream, ScopesNest) {
  device dev(gpu_model());
  stream a(dev);
  stream b(dev);
  {
    stream_scope in_a(a);
    empty_kernel_on(dev);
    {
      stream_scope in_b(b);
      empty_kernel_on(dev);
      empty_kernel_on(dev);
    }
    empty_kernel_on(dev);
  }
  EXPECT_DOUBLE_EQ(a.now_us(), 4.0);
  EXPECT_DOUBLE_EQ(b.now_us(), 4.0);
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), 0.0);
}

TEST(Stream, StartsAtDeviceTime) {
  device dev(gpu_model());
  empty_kernel_on(dev); // device clock at 2us before the stream exists
  stream s(dev);
  EXPECT_DOUBLE_EQ(s.now_us(), 2.0);
}

TEST(Stream, JoinAlignsEverything) {
  device dev(gpu_model());
  stream a(dev);
  stream b(dev);
  {
    stream_scope in(a);
    empty_kernel_on(dev);
    empty_kernel_on(dev);
    empty_kernel_on(dev); // a at 6us
  }
  {
    stream_scope in(b);
    empty_kernel_on(dev); // b at 2us
  }
  const double wall = join(dev, {&a, &b});
  EXPECT_DOUBLE_EQ(wall, 6.0);
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), 6.0);
  EXPECT_DOUBLE_EQ(a.now_us(), 6.0);
  EXPECT_DOUBLE_EQ(b.now_us(), 6.0);
}

TEST(Stream, TwoStreamPrefetchPipelineBeatsSerial) {
  // The classic overlap pattern: K chunks of (H2D + kernel), software-
  // pipelined: chunk c+1's copy is ENQUEUED on the other stream before
  // chunk c's kernel, so the link works while the SMs compute.  The shared
  // link bounds the gain at serial/transfer-only time.
  device dev(gpu_model());
  const index_t n = 1 << 16; // 512 KiB per chunk
  const int chunks = 8;
  std::vector<double> host(static_cast<std::size_t>(n), 1.0);

  const auto upload = [&](device_buffer<double>& buf) {
    buf.copy_from_host(host.data());
  };
  const auto compute = [&](device_buffer<double>& buf) {
    auto s = buf.span();
    launch_config cfg;
    cfg.block = dim3{256};
    cfg.grid = dim3{ceil_div(n, 256)};
    cfg.name = "pipeline.kernel";
    // Compute roughly as expensive as the transfer: the regime where
    // overlap pays.
    cfg.flops_per_index = 800.0;
    launch(dev, cfg, [s, n](kernel_ctx& ctx) {
      const index_t i = ctx.global_x();
      if (i < n) {
        s[i] *= 2.0;
      }
    });
  };

  // Serial baseline.
  dev.reset_clock();
  dev.cache().reset();
  {
    device_buffer<double> buf(dev, n);
    for (int c = 0; c < chunks; ++c) {
      upload(buf);
      compute(buf);
    }
  }
  const double serial_us = dev.tl().now_us();

  // Two-stream prefetch pipeline.
  dev.reset_clock();
  dev.cache().reset();
  {
    device_buffer<double> bufs[2] = {device_buffer<double>(dev, n),
                                     device_buffer<double>(dev, n)};
    stream streams[2] = {stream(dev), stream(dev)};
    {
      stream_scope in(streams[0]);
      upload(bufs[0]);
    }
    for (int c = 0; c < chunks; ++c) {
      if (c + 1 < chunks) {
        stream_scope in(streams[(c + 1) % 2]);
        upload(bufs[(c + 1) % 2]);
      }
      stream_scope in(streams[c % 2]);
      compute(bufs[c % 2]);
    }
    const double piped_us = join(dev, {&streams[0], &streams[1]});
    EXPECT_LT(piped_us, serial_us * 0.80);
    EXPECT_GT(piped_us, serial_us * 0.45); // can't beat perfect 2x overlap
  }
}

TEST(Stream, SharedLinkSerializesConcurrentTransfers) {
  // Two streams issuing only transfers must gain (almost) nothing: the
  // host<->device link is one resource.
  device dev(gpu_model());
  const index_t n = 1 << 16;
  std::vector<double> host(static_cast<std::size_t>(n), 1.0);
  device_buffer<double> a(dev, n), b(dev, n);

  dev.reset_clock();
  a.copy_from_host(host.data());
  b.copy_from_host(host.data());
  const double serial_us = dev.tl().now_us();

  dev.reset_clock();
  stream sa(dev);
  stream sb(dev);
  {
    stream_scope in(sa);
    a.copy_from_host(host.data());
  }
  {
    stream_scope in(sb);
    b.copy_from_host(host.data());
  }
  const double piped_us = join(dev, {&sa, &sb});
  EXPECT_GT(piped_us, serial_us * 0.9);
}

} // namespace
} // namespace jaccx::sim
