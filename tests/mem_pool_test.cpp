// jaccx::mem caching-pool tests: bucket rounding/alignment, hit-after-free
// reuse, per-backend isolation, workspace growth + tail zeroing, drain/leak
// accounting, none-mode seed fidelity, and reduce-result regressions across
// every back end in both pool modes.  Test-suite name "Mem" keeps these
// runnable as a unit (scripts/verify.sh runs Mem.* under TSan: concurrent
// alloc/free from many threads is the pool's new race surface).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/jacc.hpp"
#include "mem/workspace.hpp"

namespace jacc {
namespace {

using jaccx::mem::pool_mode;
using jaccx::mem::scoped_mode;

double dot_kernel(index_t i, const array<double>& x, const array<double>& y) {
  return static_cast<double>(x[i]) * static_cast<double>(y[i]);
}

TEST(Mem, BucketRounding) {
  using jaccx::mem::bucket_bytes;
  EXPECT_EQ(bucket_bytes(1), 256u);
  EXPECT_EQ(bucket_bytes(255), 256u);
  EXPECT_EQ(bucket_bytes(256), 256u);
  EXPECT_EQ(bucket_bytes(257), 512u);
  EXPECT_EQ(bucket_bytes(300000), std::size_t{1} << 19);
  EXPECT_EQ(bucket_bytes(std::size_t{64} << 20), std::size_t{64} << 20);
  // Above the largest power-of-two bucket: exact size at arena granularity.
  EXPECT_EQ(bucket_bytes((std::size_t{64} << 20) + 1),
            (std::size_t{64} << 20) + 256);
  EXPECT_EQ(bucket_bytes((std::size_t{100} << 20) + 17),
            ((std::size_t{100} << 20) + 17 + 255) / 256 * 256);
}

TEST(Mem, AcquireAlignment) {
  const scoped_mode pooled(pool_mode::bucket);
  auto host = jaccx::mem::acquire(nullptr, 1000, "test");
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(host.ptr) % 64, 0u);
  EXPECT_EQ(host.bytes, 1024u);
  jaccx::mem::release(host);

  auto& dev = jaccx::sim::get_device("a100");
  auto blk = jaccx::mem::acquire(&dev, 1000, "test");
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(blk.ptr) % 256, 0u);
  jaccx::mem::release(blk);
  jaccx::mem::drain();
}

TEST(Mem, HitAfterFreeReusesBlock) {
  const scoped_mode pooled(pool_mode::bucket);
  auto a = jaccx::mem::acquire(nullptr, 1000, "test");
  void* first = a.ptr;
  EXPECT_FALSE(a.from_cache);
  jaccx::mem::release(a);
  EXPECT_GE(jaccx::mem::cached_bytes(), 1024u);

  auto b = jaccx::mem::acquire(nullptr, 900, "test"); // same 1 KiB bucket
  EXPECT_TRUE(b.from_cache);
  EXPECT_EQ(b.ptr, first);
  jaccx::mem::release(b);
  jaccx::mem::drain();
  EXPECT_EQ(jaccx::mem::cached_bytes(), 0u);
}

TEST(Mem, PerBackendPoolsAreIsolated) {
  const scoped_mode pooled(pool_mode::bucket);
  auto& dev = jaccx::sim::get_device("a100");
  auto blk = jaccx::mem::acquire(&dev, 8192, "test");
  void* device_ptr = blk.ptr;
  jaccx::mem::release(blk); // cached under cuda_a100

  // A host allocation of the same size class must NOT be satisfied by the
  // block cached under the device pool.
  auto host = jaccx::mem::acquire(nullptr, 8192, "test");
  EXPECT_FALSE(host.from_cache);
  EXPECT_NE(host.ptr, device_ptr);
  jaccx::mem::release(host);

  // The device pool still holds its block and serves it back.
  auto again = jaccx::mem::acquire(&dev, 8192, "test");
  EXPECT_TRUE(again.from_cache);
  EXPECT_EQ(again.ptr, device_ptr);
  jaccx::mem::release(again);
  jaccx::mem::drain();
}

TEST(Mem, PooledArrayConstructionHitsCache) {
  const scoped_mode pooled(pool_mode::bucket);
  jaccx::mem::drain();
  const scoped_backend sb(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  const std::uint64_t alloc_before = dev.bytes_allocated_total();
  {
    array<double> x(1024); // miss: charges the 8 KiB bucket
  }
  EXPECT_EQ(dev.bytes_allocated_total() - alloc_before, 8192u);
  {
    array<double> y(1024); // hit: no new device charge
  }
  EXPECT_EQ(dev.bytes_allocated_total() - alloc_before, 8192u);
  jaccx::mem::drain();
}

TEST(Mem, WorkspaceGrowthZeroesTail) {
  const scoped_mode pooled(pool_mode::bucket);
  jaccx::mem::drain();
  auto& dev = jaccx::sim::get_device("a100");
  const scoped_backend sb(backend::cuda_a100);

  // Small reduce first: workspace created at its floor capacity.
  array<double> x(std::vector<double>(1000, 1.0));
  EXPECT_DOUBLE_EQ(parallel_reduce(1000, dot_kernel, x, x), 1000.0);

  // Larger reduce: forces geometric growth (fresh buffer, memset 0) to a
  // capacity above its own write extent, leaving a real tail to check.
  const index_t n = 600 * 512; // 600 partial blocks; capacity grows to 1024
  array<double> big(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  EXPECT_DOUBLE_EQ(parallel_reduce(n, dot_kernel, big, big),
                   static_cast<double>(n));

  // Inspect without growing (min_elems = 1): live slots hold the partial
  // sums, and everything past the last growth's write extent is zero.
  const auto ws = jaccx::mem::device_reduce_workspace(dev, sizeof(double), 1);
  const std::int64_t blocks = (n + 511) / 512;
  ASSERT_GT(ws.capacity, blocks) << "growth should overshoot the request";
  const auto* partials = static_cast<const double*>(ws.partials);
  double sum = 0.0;
  for (std::int64_t k = 0; k < blocks; ++k) {
    sum += partials[k];
  }
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(n));
  for (std::int64_t k = blocks; k < ws.capacity; ++k) {
    EXPECT_EQ(partials[k], 0.0) << "tail slot " << k << " not zeroed";
  }
  jaccx::mem::drain();
}

TEST(Mem, DrainReturnsEverythingAndCountsLiveBlocks) {
  const scoped_mode pooled(pool_mode::bucket);
  jaccx::mem::drain();
  const std::uint64_t live_before = jaccx::mem::live_blocks();
  {
    const scoped_backend sb(backend::cuda_a100);
    array<double> x(4096);
    array<double> y(4096);
    EXPECT_EQ(jaccx::mem::live_blocks(), live_before + 2);
    // Draining with live blocks outstanding must not free them...
    jaccx::mem::drain();
    EXPECT_EQ(jaccx::mem::live_blocks(), live_before + 2);
    x[0] = 1.0; // ...and the storage must still be writable.
  }
  // Released after the drain: re-cached, then returned by the next drain.
  EXPECT_EQ(jaccx::mem::live_blocks(), live_before);
  EXPECT_GT(jaccx::mem::cached_bytes(), 0u);
  jaccx::mem::drain();
  EXPECT_EQ(jaccx::mem::cached_bytes(), 0u);
}

TEST(Mem, ThreadsReduceScratchPersistsAcrossCalls) {
  const scoped_mode pooled(pool_mode::bucket);
  jaccx::mem::drain();
  const scoped_backend sb(backend::threads);
  array<double> x(std::vector<double>(10000, 2.0));
  EXPECT_DOUBLE_EQ(parallel_reduce(10000, dot_kernel, x, x), 40000.0);
  const std::uint64_t scratch = jaccx::mem::host_scratch_bytes();
  EXPECT_GT(scratch, 0u);
  // Subsequent reductions reuse the same slot array: no growth, no
  // per-call heap allocation.
  for (int rep = 0; rep < 8; ++rep) {
    EXPECT_DOUBLE_EQ(parallel_reduce(10000, dot_kernel, x, x), 40000.0);
  }
  EXPECT_EQ(jaccx::mem::host_scratch_bytes(), scratch);
  jaccx::mem::drain();
}

TEST(Mem, NoneModeMatchesSeedChargingExactly) {
  const scoped_mode fidelity(pool_mode::none);
  const scoped_backend sb(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);

  const std::uint64_t before = dev.bytes_allocated_total();
  array<double> x(std::vector<double>(1000, 1.0));
  EXPECT_DOUBLE_EQ(parallel_reduce(1000, dot_kernel, x, x), 1000.0);
  // Seed accounting: 8000 B array + ceil(1000/512)=2 partial slots + the
  // 1-element result buffer, charged at exact (unrounded) sizes.
  EXPECT_EQ(dev.bytes_allocated_total() - before, 8000u + 2 * 8u + 8u);
}

TEST(Mem, NoneModeArenaAddressesAreDeterministic) {
  const scoped_mode fidelity(pool_mode::none);
  const scoped_backend sb(backend::cuda_a100);
  // Identical allocation sequences land at identical arena addresses once
  // everything from the first round is released (the arena rewinds).
  std::vector<const void*> first;
  {
    array<double> a(100), b(4000);
    first = {a.host_data(), b.host_data()};
  }
  {
    array<double> a(100), b(4000);
    EXPECT_EQ(a.host_data(), first[0]);
    EXPECT_EQ(b.host_data(), first[1]);
  }
}

TEST(Mem, PooledGpuReduceSkipsZeroFillKernels) {
  const scoped_mode pooled(pool_mode::bucket);
  jaccx::mem::drain();
  const scoped_backend sb(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  array<double> x(std::vector<double>(1000, 1.0));
  // Warm the workspace so the steady state is measured.
  parallel_reduce(1000, dot_kernel, x, x);
  dev.reset_clock();
  EXPECT_DOUBLE_EQ(parallel_reduce(1000, dot_kernel, x, x), 1000.0);
  int kernels = 0;
  int d2h = 0;
  int allocs = 0;
  for (const auto& e : dev.tl().events()) {
    if (e.kind == jaccx::sim::event_kind::kernel) {
      ++kernels;
    }
    if (e.kind == jaccx::sim::event_kind::transfer_d2h) {
      ++d2h;
    }
    if (e.kind == jaccx::sim::event_kind::alloc) {
      ++allocs;
    }
  }
  EXPECT_EQ(kernels, 2) << "two-kernel tree only: zero fills skipped";
  EXPECT_EQ(d2h, 1) << "scalar result transfer still charged";
  EXPECT_EQ(allocs, 0) << "workspace recycled: no per-call allocation";
  jaccx::mem::drain();
}

TEST(Mem, ReduceResultsAgreeAcrossBackendsAndModes) {
  const index_t n = 3000;
  std::vector<double> xs(static_cast<std::size_t>(n));
  std::iota(xs.begin(), xs.end(), 1.0);
  const double expected_sum =
      static_cast<double>(n) * static_cast<double>(n + 1) / 2.0;

  for (const pool_mode mode : {pool_mode::bucket, pool_mode::none}) {
    const scoped_mode pin(mode);
    for (const backend b :
         {backend::serial, backend::threads, backend::cpu_rome,
          backend::cuda_a100, backend::hip_mi100, backend::oneapi_max1550}) {
      const scoped_backend sb(b);
      array<double> x(xs);
      const double s = parallel_reduce(
          n, [](index_t i, const array<double>& v) {
            return static_cast<double>(v[i]);
          }, x);
      EXPECT_DOUBLE_EQ(s, expected_sum)
          << to_string(b) << " mode=" << jaccx::mem::to_string(mode);
      const double mn = parallel_reduce_min(
          n, [](index_t i, const array<double>& v) {
            return static_cast<double>(v[i]);
          }, x);
      EXPECT_DOUBLE_EQ(mn, 1.0)
          << to_string(b) << " mode=" << jaccx::mem::to_string(mode);
    }
  }
  jaccx::mem::drain();
}

TEST(Mem, TwoDimensionalReduceMatchesLinearizedPath) {
  // The row-stepped CPU path must associate sums in the same order as the
  // linearized div/mod path, so every backend agrees bit for bit.
  const index_t rows = 37;
  const index_t cols = 53;
  std::vector<double> host(static_cast<std::size_t>(rows * cols));
  std::iota(host.begin(), host.end(), 0.25);

  double reference = 0.0;
  bool have_reference = false;
  for (const pool_mode mode : {pool_mode::bucket, pool_mode::none}) {
    const scoped_mode pin(mode);
    for (const backend b :
         {backend::serial, backend::threads, backend::cuda_a100}) {
      const scoped_backend sb(b);
      array2d<double> m(host, rows, cols);
      const double s = parallel_reduce(
          dims2{rows, cols},
          [](index_t i, index_t j, const array2d<double>& v) {
            return static_cast<double>(v(i, j));
          }, m);
      if (!have_reference) {
        reference = s;
        have_reference = true;
      }
      EXPECT_DOUBLE_EQ(s, reference)
          << to_string(b) << " mode=" << jaccx::mem::to_string(mode);
    }
  }
  jaccx::mem::drain();
}

TEST(Mem, UninitArraysSkipZeroFillButStayUsable) {
  for (const pool_mode mode : {pool_mode::bucket, pool_mode::none}) {
    const scoped_mode pin(mode);
    const scoped_backend sb(backend::threads);
    array<double> x(jacc::uninit, 1000);
    parallel_for(1000, [](index_t i, array<double>& v) {
      v[i] = static_cast<double>(i);
    }, x);
    const double s = parallel_reduce(
        1000, [](index_t i, const array<double>& v) {
          return static_cast<double>(v[i]);
        }, x);
    EXPECT_DOUBLE_EQ(s, 999.0 * 1000.0 / 2.0);
  }
  jaccx::mem::drain();
}

TEST(Mem, ConcurrentAcquireReleaseIsRaceFree) {
  const scoped_mode pooled(pool_mode::bucket);
  // Concurrent alloc/free traffic against the shared host pool and one
  // device pool: the surface scripts/verify.sh exercises under TSan.
  auto& dev = jaccx::sim::get_device("a100");
  constexpr int threads = 4;
  constexpr int iters = 200;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([t, &dev] {
      for (int i = 0; i < iters; ++i) {
        auto h = jaccx::mem::acquire(nullptr,
                                     512u * static_cast<unsigned>(t + 1),
                                     "stress");
        static_cast<void>(h.ptr);
        jaccx::mem::release(h);
        if (t % 2 == 0) {
          auto d = jaccx::mem::acquire(&dev, 4096, "stress");
          jaccx::mem::release(d);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(jaccx::mem::live_blocks(), 0u);
  jaccx::mem::drain();
}

TEST(Mem, ArenaExhaustionTrimsAndRetriesOnce) {
  const scoped_mode pooled(pool_mode::bucket);
  jaccx::mem::drain();
  auto& dev = jaccx::sim::get_device("a100");
  dev.set_arena_limit(std::size_t{1} << 20); // cap the sim arena at 1 MiB

  // Park a 512 KiB block in the cache.  Cached blocks keep their arena
  // chunk live, so the arena cannot rewind and stays half charged.
  auto parked = jaccx::mem::acquire(&dev, 512u << 10, "tenant");
  jaccx::mem::release(parked);
  ASSERT_GE(dev.arena_used(), std::size_t{512} << 10);

  std::atomic<int> pressure_fired{0};
  const auto token =
      jaccx::mem::add_pressure_callback([&] { ++pressure_fired; });
  const std::uint64_t retries_before = jaccx::mem::alloc_retries();

  // 768 KiB rounds to the 1 MiB bucket; with 512 KiB already charged the
  // raw arena allocation throws bad_alloc.  The pool must trim(0) — the
  // cached block drops, the arena rewinds — and retry ONCE, succeeding,
  // instead of surfacing the exception to the tenant.
  auto big = jaccx::mem::acquire(&dev, 768u << 10, "tenant");
  EXPECT_NE(big.ptr, nullptr);
  EXPECT_GT(jaccx::mem::alloc_retries(), retries_before);
  EXPECT_GE(pressure_fired.load(), 1)
      << "trim-and-retry must report memory pressure to subscribers";
  jaccx::mem::release(big);

  jaccx::mem::remove_pressure_callback(token);
  dev.set_arena_limit(0);
  jaccx::mem::drain();
}

TEST(Mem, ScratchLeasesDoNotSerializeConcurrentHolders) {
  const scoped_mode pooled(pool_mode::bucket);
  jaccx::mem::drain();
  {
    // Two live leases at once: the old single-buffer design held the
    // scratch mutex for the whole lease lifetime, so this pair deadlocked.
    const jaccx::mem::host_scratch_lease a(4096);
    const jaccx::mem::host_scratch_lease b(4096);
    ASSERT_NE(a.data(), nullptr);
    ASSERT_NE(b.data(), nullptr);
    EXPECT_NE(a.data(), b.data());
    EXPECT_GE(a.capacity(), 4096u);
  }
  // Both slabs parked; a same-size re-lease reuses one without growth.
  const std::uint64_t parked = jaccx::mem::host_scratch_bytes();
  EXPECT_GE(parked, 2u * 4096u);
  {
    const jaccx::mem::host_scratch_lease c(4096);
    EXPECT_EQ(jaccx::mem::host_scratch_bytes(), parked);
  }
  // Concurrent lease/fill/verify traffic (the ServeTest-adjacent TSan
  // surface): leases on different threads hold distinct slabs, so each
  // thread's writes are private to its slab.
  constexpr int threads = 4;
  constexpr int iters = 64;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < iters; ++i) {
        const std::size_t bytes = 1024u * static_cast<unsigned>(t + 1);
        const jaccx::mem::host_scratch_lease lease(bytes);
        auto* p = static_cast<unsigned char*>(lease.data());
        std::memset(p, t + 1, bytes);
        for (std::size_t k = 0; k < bytes; k += 257) {
          ASSERT_EQ(p[k], static_cast<unsigned char>(t + 1));
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  jaccx::mem::drain();
  EXPECT_EQ(jaccx::mem::host_scratch_bytes(), 0u);
}

TEST(Mem, ProfSummaryShowsPoolHitRate) {
  const scoped_mode pooled(pool_mode::bucket);
  jaccx::mem::drain();
  const scoped_backend sb(backend::threads);
  for (int rep = 0; rep < 3; ++rep) {
    array<double> x(1 << 10);
    static_cast<void>(x);
  }
  const auto pools = jaccx::prof::aggregate_mem_pools();
  ASSERT_FALSE(pools.empty());
  const auto host = std::find_if(pools.begin(), pools.end(), [](const auto& p) {
    return p.label == "host";
  });
  ASSERT_NE(host, pools.end());
  EXPECT_EQ(host->mode, "bucket");
  EXPECT_GE(host->hits, 2u) << "second and third arrays reuse the bucket";
  const std::string text = jaccx::prof::summary_text();
  EXPECT_NE(text.find("memory pool (mode bucket)"), std::string::npos);
  EXPECT_NE(text.find("host"), std::string::npos);
  jaccx::mem::drain();
}

} // namespace
} // namespace jacc
