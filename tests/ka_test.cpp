// Tests for the KernelAbstractions-style comparison API (paper Sec. III-A).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/jacc.hpp"
#include "ka/ka.hpp"

namespace jaccx::ka {
namespace {

using jacc::backend;

TEST(Ka, BackendPredicates) {
  EXPECT_FALSE(isgpu(get_backend(backend::serial)));
  EXPECT_FALSE(isgpu(get_backend(backend::threads)));
  EXPECT_FALSE(isgpu(get_backend(backend::cpu_rome)));
  EXPECT_TRUE(isgpu(get_backend(backend::cuda_a100)));
  EXPECT_TRUE(isgpu(get_backend(backend::hip_mi100)));
  EXPECT_TRUE(isgpu(get_backend(backend::oneapi_max1550)));
}

TEST(Ka, DefaultGroupsizeFollowsFig4) {
  // Fig. 4: groupsize = isgpu(backend) ? 256 : 1024.
  EXPECT_EQ(default_groupsize(get_backend(backend::cuda_a100)), 256);
  EXPECT_EQ(default_groupsize(get_backend(backend::threads)), 1024);
}

class KaAllBackends : public ::testing::TestWithParam<backend> {};

TEST_P(KaAllBackends, AxpyMatchesExpected) {
  const auto be = get_backend(GetParam());
  const index_t n = 1000;
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n));
  std::iota(y.begin(), y.end(), 0.0);
  // KA kernels index raw memory; give simulated devices tracked spans.
  if (jacc::is_simulated(GetParam())) {
    auto& dev = *jacc::backend_device(GetParam());
    sim::device_buffer<double> dx(dev, n), dy(dev, n);
    dx.copy_from_host(x.data());
    dy.copy_from_host(y.data());
    auto sx = dx.span();
    auto sy = dy.span();
    run(be, default_groupsize(be), n,
        [sx, sy](index_t i) {
          sx[i] += 2.0 * static_cast<double>(sy[i]);
        });
    synchronize(be);
    dx.copy_to_host(x.data());
  } else {
    run(be, default_groupsize(be), n,
        [&x, &y](index_t i) { x[static_cast<std::size_t>(i)] +=
                                  2.0 * y[static_cast<std::size_t>(i)]; });
    synchronize(be);
  }
  for (index_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)],
                     1.0 + 2.0 * static_cast<double>(i));
  }
}

TEST_P(KaAllBackends, OddGroupsizesCoverRange) {
  std::vector<int> hits(1003, 0);
  const auto be = get_backend(GetParam());
  if (jacc::is_simulated(GetParam()) && isgpu(be)) {
    // GPU groupsize must divide into blocks; use a modest odd size.
    run(be, 7, 1003, [&hits](index_t i) {
      hits[static_cast<std::size_t>(i)]++;
    });
  } else {
    run(be, 13, 1003, [&hits](index_t i) {
      hits[static_cast<std::size_t>(i)]++;
    });
  }
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, KaAllBackends,
                         ::testing::ValuesIn(jacc::all_backends),
                         [](const auto& info) {
                           return std::string(jacc::to_string(info.param));
                         });

TEST(Ka, RejectsNonPositiveGroupsize) {
  EXPECT_THROW(run(get_backend(backend::serial), 0, 10, [](index_t) {}),
               usage_error);
}

TEST(Ka, RejectsOversizedGpuGroup) {
  const auto be = get_backend(backend::cuda_a100);
  EXPECT_THROW(run(be, 1 << 20, 10, [](index_t) {}), usage_error);
}

TEST(Ka, GroupsizeChangesScheduledBlocks) {
  const auto be = get_backend(backend::cuda_a100);
  auto& dev = *jacc::backend_device(backend::cuda_a100);
  run(be, 32, 4096, [](index_t) {});
  EXPECT_EQ(dev.last_tally().blocks, 128u);
  run(be, 256, 4096, [](index_t) {});
  EXPECT_EQ(dev.last_tally().blocks, 16u);
}

TEST(Ka, SmallGroupsizeCostsMoreOnGpu) {
  // The granularity burden the paper attributes to KA: a badly chosen
  // groupsize slows the same kernel down.
  const auto be = get_backend(backend::cuda_a100);
  auto& dev = *jacc::backend_device(backend::cuda_a100);
  const index_t n = 1 << 20;

  dev.reset_clock();
  run(be, 256, n, [](index_t) {});
  const double good = dev.tl().now_us();

  dev.reset_clock();
  run(be, 8, n, [](index_t) {});
  const double bad = dev.tl().now_us();

  EXPECT_GT(bad, good * 2.0);
}

} // namespace
} // namespace jaccx::ka
