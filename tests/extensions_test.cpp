// Tests for the extension surface: the TOML writer + save_preferences
// round-trip, device atomics, the extended BLAS-1 set, and the D3Q19 3D
// lattice-Boltzmann mini-app.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "blas/jacc_blas.hpp"
#include "lbm/lattice.hpp"
#include "lbm/simulation3d.hpp"
#include "sim/launch.hpp"
#include "toml/parser.hpp"
#include "toml/writer.hpp"

namespace {

using jacc::backend;
using jacc::index_t;

// --- TOML writer -------------------------------------------------------------

TEST(TomlWriter, RoundTripsScalarsAndTables) {
  const auto original = jaccx::toml::parse(R"(
name = "jacc"
count = 3
ratio = 1.5
on = true
xs = [1, 2, 3]

[JACC]
backend = "cuda"

[JACC.tuning]
block = 256
)");
  const std::string text = jaccx::toml::serialize(original);
  const auto reparsed = jaccx::toml::parse(text);
  EXPECT_EQ(jaccx::toml::find_string(reparsed, "name"), "jacc");
  EXPECT_EQ(jaccx::toml::find_int(reparsed, "count"), 3);
  EXPECT_EQ(jaccx::toml::find_float(reparsed, "ratio"), 1.5);
  EXPECT_EQ(jaccx::toml::find_bool(reparsed, "on"), true);
  EXPECT_EQ(jaccx::toml::find_string(reparsed, "JACC.backend"), "cuda");
  EXPECT_EQ(jaccx::toml::find_int(reparsed, "JACC.tuning.block"), 256);
  EXPECT_EQ(jaccx::toml::find(reparsed, "xs")->as_array().size(), 3u);
}

TEST(TomlWriter, EscapesStringsAndQuotedKeys) {
  jaccx::toml::table t;
  t.emplace("weird key", jaccx::toml::value("a\"b\\c\nd"));
  const auto back = jaccx::toml::parse(jaccx::toml::serialize(t));
  EXPECT_EQ(jaccx::toml::find_string(back, "weird key"), "a\"b\\c\nd");
}

TEST(TomlWriter, FloatStaysFloatOnReparse) {
  jaccx::toml::table t;
  t.emplace("x", jaccx::toml::value(2.0)); // would print as "2" naively
  const auto back = jaccx::toml::parse(jaccx::toml::serialize(t));
  EXPECT_TRUE(jaccx::toml::find(back, "x")->is_float());
}

TEST(Preferences, SaveThenInitializeRoundTrip) {
  const std::string path = ::testing::TempDir() + "/SavePrefs.toml";
  jacc::save_preferences(backend::hip_mi100, path);
  ::setenv("JACC_PREFERENCES_FILE", path.c_str(), 1);
  ::unsetenv("JACC_BACKEND");
  jacc::initialize();
  EXPECT_EQ(jacc::current_backend(), backend::hip_mi100);
  // Merging: an existing unrelated section survives a re-save.
  {
    auto t = jaccx::toml::parse_file(path);
    t.emplace("Other", jaccx::toml::value("keepme"));
    jaccx::toml::write_file(t, path);
  }
  jacc::save_preferences(backend::oneapi_max1550, path);
  const auto t = jaccx::toml::parse_file(path);
  EXPECT_EQ(jaccx::toml::find_string(t, "JACC.backend"), "oneapi_max1550");
  EXPECT_EQ(jaccx::toml::find_string(t, "Other"), "keepme");
  ::unsetenv("JACC_PREFERENCES_FILE");
  jacc::set_backend(backend::threads);
  std::remove(path.c_str());
}

// --- atomics -----------------------------------------------------------------

TEST(Atomics, AtomicAddAccumulatesAndIsCharged) {
  auto& dev = jaccx::sim::get_device("a100");
  jaccx::sim::device_buffer<double> acc(dev, 1);
  acc.fill_untracked(0.0);
  double* p = acc.data();
  jaccx::sim::launch_config cfg;
  cfg.block = jaccx::sim::dim3{256};
  cfg.grid = jaccx::sim::dim3{4};
  cfg.name = "atomic_test";
  jaccx::sim::launch(dev, cfg, [p](jaccx::sim::kernel_ctx& ctx) {
    ctx.atomic_add(p, 1.0);
  });
  EXPECT_DOUBLE_EQ(acc.data()[0], 1024.0);
  EXPECT_EQ(dev.last_tally().atomics, 1024u);
}

TEST(Atomics, AtomicsRaiseCost) {
  auto& dev = jaccx::sim::get_device("a100");
  jaccx::sim::device_buffer<double> acc(dev, 1);
  const auto run = [&](bool atomic) {
    double* p = acc.data();
    jaccx::sim::launch_config cfg;
    cfg.block = jaccx::sim::dim3{1024};
    cfg.grid = jaccx::sim::dim3{512};
    const double t0 = dev.tl().now_us();
    jaccx::sim::launch(dev, cfg, [p, atomic](jaccx::sim::kernel_ctx& ctx) {
      if (atomic) {
        ctx.atomic_add(p, 1.0);
      }
    });
    return dev.tl().now_us() - t0;
  };
  EXPECT_GT(run(true), run(false) * 1.5);
}

// --- extended BLAS ------------------------------------------------------------

class BlasExtAllBackends : public ::testing::TestWithParam<backend> {
protected:
  void SetUp() override { jacc::set_backend(GetParam()); }
  void TearDown() override { jacc::set_backend(backend::threads); }
};

TEST_P(BlasExtAllBackends, ScalCopySwap) {
  using jaccx::blas::darray;
  const index_t n = 513;
  std::vector<double> xs(static_cast<std::size_t>(n));
  std::iota(xs.begin(), xs.end(), 1.0);
  darray x(xs);
  darray y(n);
  jaccx::blas::jacc_scal(n, 2.0, x);
  EXPECT_DOUBLE_EQ(x.host_data()[10], 22.0);
  jaccx::blas::jacc_copy(n, x, y);
  EXPECT_DOUBLE_EQ(y.host_data()[10], 22.0);
  jaccx::blas::jacc_scal(n, 0.5, y);
  jaccx::blas::jacc_swap(n, x, y);
  EXPECT_DOUBLE_EQ(x.host_data()[10], 11.0);
  EXPECT_DOUBLE_EQ(y.host_data()[10], 22.0);
}

TEST_P(BlasExtAllBackends, NormsAndAmax) {
  using jaccx::blas::darray;
  const index_t n = 1000;
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    xs[static_cast<std::size_t>(i)] =
        std::sin(static_cast<double>(i)) * (i % 2 == 0 ? 1.0 : -1.0);
  }
  darray x(xs);
  double asum_ref = 0.0;
  double nrm2_ref = 0.0;
  double amax_ref = 0.0;
  for (double v : xs) {
    asum_ref += std::abs(v);
    nrm2_ref += v * v;
    amax_ref = std::max(amax_ref, std::abs(v));
  }
  nrm2_ref = std::sqrt(nrm2_ref);
  EXPECT_NEAR(jaccx::blas::jacc_asum(n, x), asum_ref, 1e-9 * asum_ref);
  EXPECT_NEAR(jaccx::blas::jacc_nrm2(n, x), nrm2_ref, 1e-12 * nrm2_ref);
  EXPECT_DOUBLE_EQ(jaccx::blas::jacc_amax(n, x), amax_ref);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BlasExtAllBackends,
                         ::testing::ValuesIn(jacc::all_backends),
                         [](const auto& info) {
                           return std::string(jacc::to_string(info.param));
                         });

// --- fused LBM variant ---------------------------------------------------------

TEST(LbmFusion, FusedVariantIsBitIdenticalToFig10) {
  const index_t size = 24;
  const double tau = 0.85;
  const index_t total = jaccx::lbm::q * size * size;
  std::vector<double> init(static_cast<std::size_t>(total));
  for (index_t i = 0; i < total; ++i) {
    init[static_cast<std::size_t>(i)] =
        jaccx::lbm::weights[static_cast<std::size_t>(
            i / (size * size))] *
        (1.0 + 0.02 * std::sin(0.21 * static_cast<double>(i)));
  }
  std::vector<double> scratch(static_cast<std::size_t>(total), 0.0);
  std::vector<double> out_paper(static_cast<std::size_t>(total), 0.0);
  std::vector<double> out_fused(static_cast<std::size_t>(total), 0.0);
  for (index_t x = 0; x < size; ++x) {
    for (index_t y = 0; y < size; ++y) {
      jaccx::lbm::site_update(x, y, scratch.data(), init.data(),
                              out_paper.data(), tau, jaccx::lbm::weights,
                              jaccx::lbm::vel_x, jaccx::lbm::vel_y, size);
      jaccx::lbm::site_update_fused(x, y, init.data(), out_fused.data(),
                                    tau, jaccx::lbm::weights,
                                    jaccx::lbm::vel_x, jaccx::lbm::vel_y,
                                    size);
    }
  }
  for (index_t i = 0; i < total; ++i) {
    ASSERT_EQ(out_fused[static_cast<std::size_t>(i)],
              out_paper[static_cast<std::size_t>(i)])
        << i;
  }
}

// --- D3Q19 3D LBM --------------------------------------------------------------

TEST(Lbm3, WeightsAndVelocitiesAreConsistent) {
  double s = 0.0;
  double sx = 0.0;
  double sxx = 0.0;
  for (int k = 0; k < jaccx::lbm3::q; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    s += jaccx::lbm3::weights[ks];
    sx += jaccx::lbm3::weights[ks] * jaccx::lbm3::vel_x[ks];
    sxx += jaccx::lbm3::weights[ks] * jaccx::lbm3::vel_x[ks] *
           jaccx::lbm3::vel_x[ks];
  }
  EXPECT_NEAR(s, 1.0, 1e-15);
  EXPECT_NEAR(sx, 0.0, 1e-15);
  EXPECT_NEAR(sxx, 1.0 / 3.0, 1e-15); // lattice speed of sound squared
}

TEST(Lbm3, EquilibriumMomentsAreExact) {
  const double rho = 1.1;
  const double u = 0.04;
  const double v = -0.03;
  const double w = 0.02;
  double m0 = 0.0;
  double mx = 0.0;
  double my = 0.0;
  double mz = 0.0;
  for (int k = 0; k < jaccx::lbm3::q; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const double fe = jaccx::lbm3::equilibrium(k, rho, u, v, w);
    m0 += fe;
    mx += fe * jaccx::lbm3::vel_x[ks];
    my += fe * jaccx::lbm3::vel_y[ks];
    mz += fe * jaccx::lbm3::vel_z[ks];
  }
  EXPECT_NEAR(m0, rho, 1e-12);
  EXPECT_NEAR(mx, rho * u, 1e-12);
  EXPECT_NEAR(my, rho * v, 1e-12);
  EXPECT_NEAR(mz, rho * w, 1e-12);
}

class Lbm3AllBackends : public ::testing::TestWithParam<backend> {
protected:
  void SetUp() override { jacc::set_backend(GetParam()); }
  void TearDown() override { jacc::set_backend(backend::threads); }
};

TEST_P(Lbm3AllBackends, UniformStateIsFixedPoint) {
  jaccx::lbm3::simulation3d sim(jaccx::lbm3::params{.size = 10, .tau = 0.8});
  sim.init_uniform(1.0);
  sim.run(3);
  for (double d : sim.density()) {
    EXPECT_NEAR(d, 1.0, 1e-12);
  }
}

TEST_P(Lbm3AllBackends, PulseConservesMassWhileInterior) {
  // The pulse must be narrow relative to the box: its Gaussian tail at the
  // frozen boundary is the only mass leak (see the 2D test for the same
  // bound in detail).
  jaccx::lbm3::simulation3d sim(jaccx::lbm3::params{.size = 20, .tau = 0.9});
  sim.init_pulse(1.0, 0.05, 0.08);
  const double m0 = sim.total_mass();
  sim.run(3);
  EXPECT_NEAR(sim.total_mass(), m0, 1e-7 * m0);
}

TEST_P(Lbm3AllBackends, MatchesSerialEvolutionBitwise) {
  // init_pulse is deterministic, so constructing both simulations with the
  // same parameters gives bit-identical starting lattices.
  jaccx::lbm3::simulation3d sim(jaccx::lbm3::params{.size = 8, .tau = 0.8});
  sim.init_pulse(1.0, 0.08, 0.2);
  sim.run(3);
  std::vector<double> got(sim.distributions().host_data(),
                          sim.distributions().host_data() +
                              sim.distributions().size());

  jacc::set_backend(backend::serial);
  jaccx::lbm3::simulation3d ref(jaccx::lbm3::params{.size = 8, .tau = 0.8});
  ref.init_pulse(1.0, 0.08, 0.2);
  ref.run(3);
  const double* want = ref.distributions().host_data();
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, Lbm3AllBackends,
                         ::testing::ValuesIn(jacc::all_backends),
                         [](const auto& info) {
                           return std::string(jacc::to_string(info.param));
                         });

} // namespace
