// Unit tests for the set-associative LRU cache model.
#include <gtest/gtest.h>

#include "sim/cache_model.hpp"

namespace jaccx::sim {
namespace {

TEST(CacheModel, FirstTouchMissesThenHits) {
  cache_model c(1 << 16, 64, 8);
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1008)); // same 64B line
  EXPECT_FALSE(c.access(0x1040)); // next line
  EXPECT_EQ(c.totals().hits, 2u);
  EXPECT_EQ(c.totals().misses, 2u);
}

TEST(CacheModel, StreamingMissRatePerLine) {
  cache_model c(1 << 20, 64, 8);
  // 8 doubles per 64B line: 1 miss + 7 hits per line.
  std::uint64_t addr = 1 << 22;
  for (int i = 0; i < 8 * 100; ++i) {
    c.access(addr + static_cast<std::uint64_t>(i) * 8);
  }
  EXPECT_EQ(c.totals().misses, 100u);
  EXPECT_EQ(c.totals().hits, 700u);
}

TEST(CacheModel, CapacityEviction) {
  // 64 lines total capacity; touching 128 distinct lines then re-touching
  // the first must miss again.
  cache_model c(64 * 64, 64, 8);
  for (std::uint64_t l = 0; l < 128; ++l) {
    c.access(l * 64);
  }
  c.access(0); // evicted by now
  EXPECT_EQ(c.totals().hits, 0u);
  EXPECT_EQ(c.totals().misses, 129u);
}

TEST(CacheModel, LruKeepsHotLine) {
  // Direct-mapped-per-set conflict: with assoc 2 and repeated touches of A,
  // A must survive one conflicting line B but die after B and C.
  cache_model c(2 * 64, 64, 2); // one set, two ways
  const std::uint64_t A = 0;
  const std::uint64_t B = 1 << 20;
  const std::uint64_t C = 1 << 21;
  EXPECT_FALSE(c.access(A));
  EXPECT_FALSE(c.access(B));
  EXPECT_TRUE(c.access(A));  // refresh A's recency
  EXPECT_FALSE(c.access(C)); // evicts B (LRU)
  EXPECT_TRUE(c.access(A));
  EXPECT_FALSE(c.access(B));
}

TEST(CacheModel, TemporalReuseWithinCapacityAllHits) {
  cache_model c(1 << 20, 64, 16);
  // 512 lines working set fits in 1 MiB cache.
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t l = 0; l < 512; ++l) {
      c.access(l * 64);
    }
  }
  EXPECT_EQ(c.totals().misses, 512u);
  EXPECT_EQ(c.totals().hits, 2u * 512u);
}

TEST(CacheModel, ResetClearsStateAndStats) {
  cache_model c(1 << 16, 64, 8);
  c.access(0);
  c.access(0);
  c.reset();
  EXPECT_EQ(c.totals().accesses(), 0u);
  EXPECT_FALSE(c.access(0)); // cold again
}

TEST(CacheModel, CapacityRoundsToPowerOfTwoSets) {
  cache_model c(100 * 64, 64, 4); // 25 sets -> floors to 16
  EXPECT_EQ(c.capacity_bytes(), 16u * 4u * 64u);
  EXPECT_EQ(c.line_bytes(), 64);
}

TEST(CacheModel, HitRateHelper) {
  cache_model c(1 << 16, 64, 8);
  EXPECT_EQ(c.totals().hit_rate(), 0.0);
  c.access(0);
  c.access(0);
  c.access(0);
  EXPECT_NEAR(c.totals().hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(CacheModel, LargeLineGpuStyle) {
  cache_model c(1 << 20, 128, 16);
  // 16 doubles per 128B line.
  for (int i = 0; i < 16; ++i) {
    c.access(0x10000 + static_cast<std::uint64_t>(i) * 8);
  }
  EXPECT_EQ(c.totals().misses, 1u);
  EXPECT_EQ(c.totals().hits, 15u);
}

} // namespace
} // namespace jaccx::sim
