// Tests for the conjugate-gradient module: solver correctness on the
// paper's tridiagonal system and the HPCCG 27-point problem, across all
// back ends, plus the Fig. 12 iteration drivers.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "cg/native.hpp"
#include "cg/solver.hpp"

namespace jaccx::cg {
namespace {

using jacc::backend;

class CgAllBackends : public ::testing::TestWithParam<backend> {
protected:
  void SetUp() override { jacc::set_backend(GetParam()); }
  void TearDown() override { jacc::set_backend(backend::threads); }
};

TEST_P(CgAllBackends, TridiagSolveRecoversKnownSolution) {
  const index_t n = 200;
  tridiag_system A(n);
  // Build b = A * x_true with x_true[i] = sin(i).
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    x_true[static_cast<std::size_t>(i)] =
        std::sin(static_cast<double>(i));
  }
  std::vector<double> b_host(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    double acc = 4.0 * x_true[static_cast<std::size_t>(i)];
    if (i > 0) {
      acc += x_true[static_cast<std::size_t>(i - 1)];
    }
    if (i + 1 < n) {
      acc += x_true[static_cast<std::size_t>(i + 1)];
    }
    b_host[static_cast<std::size_t>(i)] = acc;
  }
  darray b(b_host);
  darray x(n); // zero initial guess
  const auto res = cg_solve(A, b, x, {.max_iterations = 300,
                                      .tolerance = 1e-12});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.relative_residual, 1e-11);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x.host_data()[i], x_true[static_cast<std::size_t>(i)], 1e-8);
  }
}

TEST_P(CgAllBackends, CsrTridiagMatchesSpecializedPath) {
  const index_t n = 150;
  const auto host = make_tridiag_csr(n);
  csr_system A_csr(host);
  tridiag_system A_tri(n);
  std::vector<double> b_host(static_cast<std::size_t>(n), 1.0);
  darray b1(b_host), b2(b_host);
  darray x1(n), x2(n);
  const auto r1 = cg_solve(A_csr, b1, x1, {});
  const auto r2 = cg_solve(A_tri, b2, x2, {});
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x1.host_data()[i], x2.host_data()[i], 1e-9);
  }
}

TEST_P(CgAllBackends, HpccgProblemSolvesToAllOnes) {
  const auto host = make_hpccg_27pt(6, 5, 4);
  csr_system A(host);
  darray b(host.rhs_for_ones());
  darray x(A.rows);
  const auto res = cg_solve(A, b, x, {.max_iterations = 500,
                                      .tolerance = 1e-12});
  EXPECT_TRUE(res.converged);
  for (index_t i = 0; i < A.rows; ++i) {
    EXPECT_NEAR(x.host_data()[i], 1.0, 1e-7);
  }
}

TEST_P(CgAllBackends, ZeroRhsGivesZeroSolution) {
  tridiag_system A(50);
  darray b(50);
  darray x(std::vector<double>(50, 3.0)); // nonzero guess
  const auto res = cg_solve(A, b, x, {});
  EXPECT_TRUE(res.converged);
  for (index_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(x.host_data()[i], 0.0);
  }
}

TEST_P(CgAllBackends, PaperIterationReducesResidual) {
  // The Fig. 12 working set starts at r = p = 0.5; running iterations of
  // the benchmark driver must strictly decrease ||r||^2 (it is CG on the
  // SPD tridiagonal system even if the listing's bookkeeping is odd).
  paper_state st(256);
  auto rr = [&] {
    double acc = 0.0;
    for (index_t i = 0; i < 256; ++i) {
      acc += st.r.host_data()[i] * st.r.host_data()[i];
    }
    return acc;
  };
  const double rr0 = rr();
  paper_iteration(st);
  const double rr1 = rr();
  paper_iteration(st);
  const double rr2 = rr();
  EXPECT_LT(rr1, rr0);
  EXPECT_LT(rr2, rr1);
}

TEST_P(CgAllBackends, PipelinedSolveMatchesBlockingSolve) {
  // cg_solve_pipelined runs the dots as future-returning reductions on a
  // second queue.  On simulated back ends the reduction tree is identical,
  // so iterates match bit-for-bit; on threads the dot lane may be narrower
  // than the main pool (different association), hence the loose bound.
  const index_t n = 200;
  tridiag_system A1(n), A2(n);
  std::vector<double> b_host(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    b_host[static_cast<std::size_t>(i)] = std::sin(static_cast<double>(i));
  }
  darray b1(b_host), b2(b_host);
  darray x1(n), x2(n);
  const auto r1 = cg_solve(A1, b1, x1, {.tolerance = 1e-12});
  const auto r2 = cg_solve_pipelined(A2, b2, x2, {.tolerance = 1e-12});
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x2.host_data()[i], x1.host_data()[i], 1e-9);
  }
}

TEST(CgPipelined, BitExactWithBlockingSolveOnSimBackend) {
  // On a simulated device both variants compute every reduction at enqueue
  // through the same dispatch: identical iterates, iteration counts, and
  // residuals — only the simulated charge structure differs.
  jacc::scoped_backend sb(backend::cuda_a100);
  const auto host = make_hpccg_27pt(5, 4, 3);
  csr_system A1(host), A2(host);
  darray b1(host.rhs_for_ones()), b2(host.rhs_for_ones());
  darray x1(A1.rows), x2(A2.rows);
  const auto r1 = cg_solve(A1, b1, x1, {.tolerance = 1e-12});
  const auto r2 = cg_solve_pipelined(A2, b2, x2, {.tolerance = 1e-12});
  EXPECT_TRUE(r2.converged);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(r1.relative_residual, r2.relative_residual);
  for (index_t i = 0; i < A1.rows; ++i) {
    EXPECT_EQ(x2.host_data()[i], x1.host_data()[i]);
  }
}

TEST_P(CgAllBackends, GraphedSolveMatchesBlockingSolve) {
  // cg_solve_graphed captures one iteration into a jacc::graph and replays
  // it to convergence.  The operation sequence on the data is cg_solve's,
  // so iterates match bit-for-bit except across threads async lanes, where
  // the captured dots run on a narrower pool (different association) —
  // hence the loose bound, as for the pipelined variant.
  const index_t n = 200;
  tridiag_system A1(n), A2(n);
  std::vector<double> b_host(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    b_host[static_cast<std::size_t>(i)] = std::sin(static_cast<double>(i));
  }
  darray b1(b_host), b2(b_host);
  darray x1(n), x2(n);
  const auto r1 = cg_solve(A1, b1, x1, {.tolerance = 1e-12});
  const auto r2 = cg_solve_graphed(A2, b2, x2, {.tolerance = 1e-12});
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x2.host_data()[i], x1.host_data()[i], 1e-9);
  }
}

TEST(CgGraphed, BitExactWithBlockingSolveOnSimBackend) {
  // On a simulated device the replayed nodes run the same reduction tree
  // through the same dispatch as the blocking solver: identical iterates,
  // iteration counts, and residuals.
  jacc::scoped_backend sb(backend::cuda_a100);
  const auto host = make_hpccg_27pt(5, 4, 3);
  csr_system A1(host), A2(host);
  darray b1(host.rhs_for_ones()), b2(host.rhs_for_ones());
  darray x1(A1.rows), x2(A2.rows);
  const auto r1 = cg_solve(A1, b1, x1, {.tolerance = 1e-12});
  const auto r2 = cg_solve_graphed(A2, b2, x2, {.tolerance = 1e-12});
  EXPECT_TRUE(r2.converged);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(r1.relative_residual, r2.relative_residual);
  for (index_t i = 0; i < A1.rows; ++i) {
    EXPECT_EQ(x2.host_data()[i], x1.host_data()[i]);
  }
}

TEST(CgGraphed, ZeroRhsShortCircuits) {
  jacc::scoped_backend sb(backend::threads);
  tridiag_system A(64);
  darray b(64);
  darray x(std::vector<double>(64, 2.0));
  const auto res = cg_solve_graphed(A, b, x, {});
  EXPECT_TRUE(res.converged);
  for (index_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(x.host_data()[i], 0.0);
  }
}

TEST(CgPipelined, ZeroRhsShortCircuits) {
  jacc::scoped_backend sb(backend::threads);
  tridiag_system A(64);
  darray b(64);
  darray x(std::vector<double>(64, 2.0));
  const auto res = cg_solve_pipelined(A, b, x, {});
  EXPECT_TRUE(res.converged);
  for (index_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(x.host_data()[i], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CgAllBackends,
                         ::testing::ValuesIn(jacc::all_backends),
                         [](const auto& info) {
                           return std::string(jacc::to_string(info.param));
                         });

TEST(Csr, TridiagStructure) {
  const auto m = make_tridiag_csr(5);
  EXPECT_EQ(m.rows, 5);
  EXPECT_EQ(m.nnz(), 13); // 3*5 - 2
  EXPECT_EQ(m.row_ptr.front(), 0);
  EXPECT_EQ(m.row_ptr.back(), 13);
}

TEST(Csr, Hpccg27ptStructure) {
  const auto m = make_hpccg_27pt(3, 3, 3);
  EXPECT_EQ(m.rows, 27);
  // The centre node has all 27 neighbours; corners have 8.
  const index_t centre = 1 + 3 * (1 + 3 * 1);
  EXPECT_EQ(m.row_ptr[static_cast<std::size_t>(centre + 1)] -
                m.row_ptr[static_cast<std::size_t>(centre)],
            27);
  EXPECT_EQ(m.row_ptr[1] - m.row_ptr[0], 8);
  // Row sums: diagonal 27 minus one per neighbour.
  const auto b = m.rhs_for_ones();
  EXPECT_DOUBLE_EQ(b[static_cast<std::size_t>(centre)], 27.0 - 26.0);
  EXPECT_DOUBLE_EQ(b[0], 27.0 - 7.0);
}

TEST(Csr, HostApplyMatchesDense) {
  const auto m = make_tridiag_csr(4, 2.0, -1.0);
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y(4, 0.0);
  m.apply_host(x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 1 - 2);       // 2x0 - x1
  EXPECT_DOUBLE_EQ(y[1], -1 + 4 - 3);        // -x0 + 2x1 - x2
  EXPECT_DOUBLE_EQ(y[3], -3 + 8);            // -x2 + 2x3
}

TEST(NativeCg, RomeIterationMatchesJaccIteration) {
  const index_t n = 128;
  // JACC reference under the serial backend (exact arithmetic order may
  // differ from the rome-native path only in reductions; compare loosely).
  jacc::set_backend(backend::serial);
  paper_state ref(n);
  paper_iteration(ref);
  jacc::set_backend(backend::threads);

  auto& dev = sim::get_device("rome64");
  std::vector<double> half(static_cast<std::size_t>(n), 0.5);
  std::vector<double> zero(static_cast<std::size_t>(n), 0.0);
  std::vector<double> ones(static_cast<std::size_t>(n), 1.0);
  std::vector<double> fours(static_cast<std::size_t>(n), 4.0);
  sim::device_buffer<double> sub(dev, n), diag(dev, n), super(dev, n),
      r(dev, n), p(dev, n), s(dev, n), x(dev, n), r_old(dev, n),
      r_aux(dev, n);
  sub.copy_from_host(ones.data());
  diag.copy_from_host(fours.data());
  super.copy_from_host(ones.data());
  r.copy_from_host(half.data());
  p.copy_from_host(half.data());
  s.copy_from_host(zero.data());
  x.copy_from_host(zero.data());
  r_old.copy_from_host(zero.data());
  r_aux.copy_from_host(zero.data());

  native_workset st{sub.span(), diag.span(), super.span(), r.span(),
                    p.span(),   s.span(),    x.span(),     r_old.span(),
                    r_aux.span(), n};
  rome_iteration(dev, st);

  std::vector<double> got(static_cast<std::size_t>(n));
  x.copy_to_host(got.data());
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[static_cast<std::size_t>(i)], ref.x.host_data()[i],
                1e-12);
  }
  r.copy_to_host(got.data());
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[static_cast<std::size_t>(i)], ref.r.host_data()[i],
                1e-12);
  }
}

template <class Api>
struct NativeGpuCgTest : public ::testing::Test {};

using VendorApis =
    ::testing::Types<vendor::cuda_api, vendor::hip_api, vendor::oneapi_api>;
TYPED_TEST_SUITE(NativeGpuCgTest, VendorApis);

TYPED_TEST(NativeGpuCgTest, IterationMatchesJaccReference) {
  using Api = TypeParam;
  const index_t n = 100;
  jacc::set_backend(backend::serial);
  paper_state ref(n);
  paper_iteration(ref);
  jacc::set_backend(backend::threads);

  auto& dev = Api::device();
  std::vector<double> half(static_cast<std::size_t>(n), 0.5);
  std::vector<double> zero(static_cast<std::size_t>(n), 0.0);
  std::vector<double> ones(static_cast<std::size_t>(n), 1.0);
  std::vector<double> fours(static_cast<std::size_t>(n), 4.0);
  sim::device_buffer<double> sub(dev, n), diag(dev, n), super(dev, n),
      r(dev, n), p(dev, n), s(dev, n), x(dev, n), r_old(dev, n),
      r_aux(dev, n);
  sub.copy_from_host(ones.data());
  diag.copy_from_host(fours.data());
  super.copy_from_host(ones.data());
  r.copy_from_host(half.data());
  p.copy_from_host(half.data());
  s.copy_from_host(zero.data());
  x.copy_from_host(zero.data());
  r_old.copy_from_host(zero.data());
  r_aux.copy_from_host(zero.data());

  native_workset st{sub.span(), diag.span(), super.span(), r.span(),
                    p.span(),   s.span(),    x.span(),     r_old.span(),
                    r_aux.span(), n};
  native_gpu_iteration<Api>(st);

  std::vector<double> got(static_cast<std::size_t>(n));
  x.copy_to_host(got.data());
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[static_cast<std::size_t>(i)], ref.x.host_data()[i],
                1e-12);
  }
}

} // namespace
} // namespace jaccx::cg
